// GradGCL objective across the full (loss family × weight) grid — every
// combination the Fig. 11 loss-type ablation and the backbone plug-ins
// exercise must be finite and differentiable, and the gradient loss
// must react to its inputs (no silently-constant branches).

#include <tuple>

#include <gtest/gtest.h>

#include "core/grad_gcl_loss.h"
#include "tensor/ops.h"

namespace gradgcl {
namespace {

Variable Param(int rows, int cols, uint64_t seed) {
  Rng rng(seed);
  return Variable(Matrix::RandomNormal(rows, cols, rng), true);
}

class LossKindWeightGrid
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(LossKindWeightGrid, FiniteAndDifferentiable) {
  const auto [kind_idx, weight] = GetParam();
  const LossKind kind = static_cast<LossKind>(kind_idx);
  GradGclConfig config;
  config.loss = kind;
  config.weight = weight;
  GradGclLoss loss(config);

  Variable u = Param(5, 4, 11 + kind_idx);
  Variable v = Param(5, 4, 23 + kind_idx);
  u.ZeroGrad();
  v.ZeroGrad();
  TwoViewBatch views{u, v};
  Variable l = loss(views);
  ASSERT_EQ(l.value().size(), 1);
  EXPECT_TRUE(l.value().AllFinite());
  Backward(l);
  EXPECT_TRUE(u.grad().AllFinite());
  EXPECT_TRUE(v.grad().AllFinite());
  if (weight > 0.0) {
    // The gradient branch must contribute a real signal.
    EXPECT_GT(u.grad().FrobeniusNorm() + v.grad().FrobeniusNorm(), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LossKindWeightGrid,
    ::testing::Combine(::testing::Values(0, 1, 2),  // InfoNCE, JSD, SCE
                       ::testing::Values(0.0, 0.3, 0.7, 1.0)));

TEST(GradientLossVariants, ReactsToInputChange) {
  // For every loss family, the gradient loss must change when the
  // inputs change (it is a function of u, v, not a constant).
  for (LossKind kind :
       {LossKind::kInfoNce, LossKind::kJsd, LossKind::kSce}) {
    GradGclConfig config;
    config.loss = kind;
    config.weight = 1.0;
    GradGclLoss loss(config);
    TwoViewBatch a{Param(4, 3, 31), Param(4, 3, 37)};
    TwoViewBatch b{Param(4, 3, 41), Param(4, 3, 43)};
    EXPECT_NE(loss.GradientLoss(a).scalar(), loss.GradientLoss(b).scalar())
        << "kind " << static_cast<int>(kind);
  }
}

TEST(GradientLossVariants, RepresentationLossMatchesDispatch) {
  for (LossKind kind :
       {LossKind::kInfoNce, LossKind::kJsd, LossKind::kSce}) {
    GradGclConfig config;
    config.loss = kind;
    GradGclLoss loss(config);
    Variable u = Param(5, 4, 47);
    Variable v = Param(5, 4, 53);
    TwoViewBatch views{u, v};
    EXPECT_DOUBLE_EQ(loss.RepresentationLoss(views).scalar(),
                     ContrastiveLoss(kind, u, v, config.tau).scalar());
  }
}

TEST(GradientLossVariants, WeightInterpolationIsExactForAllKinds) {
  for (LossKind kind :
       {LossKind::kInfoNce, LossKind::kJsd, LossKind::kSce}) {
    GradGclConfig config;
    config.loss = kind;
    config.weight = 0.4;
    GradGclLoss loss(config);
    TwoViewBatch views{Param(5, 4, 59), Param(5, 4, 61)};
    EXPECT_NEAR(loss(views).scalar(),
                0.6 * loss.RepresentationLoss(views).scalar() +
                    0.4 * loss.GradientLoss(views).scalar(),
                1e-10);
  }
}

}  // namespace
}  // namespace gradgcl
