// Autograd fuzzing: builds random op DAGs from a seeded generator and
// gradient-checks the result. This catches interaction bugs (gradient
// accumulation across shared subexpressions, shape plumbing through
// structural ops) that per-op tests cannot.

#include <cmath>
#include <functional>
#include <optional>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "autograd/gradcheck.h"
#include "autograd/ops.h"
#include "tensor/ops.h"
#include "tensor/pool.h"
#include "tensor/simd.h"

namespace gradgcl {
namespace {

using VarList = std::vector<Variable>;

// Builds a random differentiable expression over `inputs` (all n x d)
// and reduces it to a scalar. Deterministic in `rng`'s state. Only
// smooth ops are used (no relu/abs kinks, no dropout), so central
// differences converge cleanly.
Variable RandomExpression(const VarList& inputs, int depth, Rng& rng) {
  GRADGCL_CHECK(!inputs.empty());
  // Working set starts as the inputs; each step combines two entries.
  std::vector<Variable> pool = inputs;
  for (int step = 0; step < depth; ++step) {
    const Variable a = pool[rng.UniformInt(static_cast<int>(pool.size()))];
    const Variable b = pool[rng.UniformInt(static_cast<int>(pool.size()))];
    Variable next;
    switch (rng.UniformInt(8)) {
      case 0:
        next = ag::Add(a, b);
        break;
      case 1:
        next = ag::Sub(a, b);
        break;
      case 2:
        next = ag::Hadamard(a, b);
        break;
      case 3:
        next = ag::Tanh(a);
        break;
      case 4:
        next = ag::Sigmoid(a);
        break;
      case 5:
        next = ag::ScalarMul(a, rng.Uniform(-1.5, 1.5));
        break;
      case 6:
        next = ag::RowNormalize(a);
        break;
      default:
        next = ag::MatMulTransB(a, b);  // n x n
        // Bring back to n x d through a product with b.
        next = ag::MatMul(next, b);
        break;
    }
    pool.push_back(next);
  }
  // Scalarise: mean of squares keeps everything smooth and bounded.
  Variable total = ag::Mean(ag::Square(pool.back()));
  // Mix in every input so all of them receive gradients.
  for (const Variable& v : pool) {
    total = ag::Add(total, ag::ScalarMul(ag::Mean(ag::Square(v)), 0.01));
  }
  return total;
}

class AutogradFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AutogradFuzz, RandomCompositeGradChecks) {
  const uint64_t seed = GetParam();
  Rng init(seed);
  const int n = 2 + init.UniformInt(3);
  const int d = 2 + init.UniformInt(3);
  VarList inputs;
  for (int k = 0; k < 3; ++k) {
    inputs.emplace_back(Matrix::RandomNormal(n, d, init, 0.0, 0.8),
                        /*requires_grad=*/true);
  }
  // The expression structure must be identical on every re-evaluation:
  // rebuild the RNG from the same seed inside the forward lambda.
  auto forward = [seed, n, d](const VarList& in) {
    Rng expr_rng(seed * 7919 + 13);
    (void)n;
    (void)d;
    return RandomExpression(in, /*depth=*/6, expr_rng);
  };
  const ag::GradCheckResult result =
      ag::CheckGradients(forward, inputs, 1e-5, 2e-4);
  EXPECT_TRUE(result.ok) << "seed " << seed << ": max error "
                         << result.max_abs_error << " at "
                         << result.worst_entry;
}

INSTANTIATE_TEST_SUITE_P(Seeds, AutogradFuzz,
                         ::testing::Range<uint64_t>(0, 24));

// Shared-subexpression stress: the same node used k times must receive
// k-fold gradient.
class SharedSubexpression : public ::testing::TestWithParam<int> {};

TEST_P(SharedSubexpression, GradientScalesWithFanout) {
  const int fanout = GetParam();
  Rng rng(31 + fanout);
  Variable x(Matrix::RandomNormal(3, 3, rng), true);
  x.ZeroGrad();
  Variable sum = ag::Sum(x);
  for (int k = 1; k < fanout; ++k) sum = ag::Add(sum, ag::Sum(x));
  Backward(sum);
  EXPECT_TRUE(
      AllClose(x.grad(), Matrix(3, 3, static_cast<double>(fanout)), 1e-10));
}

INSTANTIATE_TEST_SUITE_P(Fanouts, SharedSubexpression,
                         ::testing::Values(1, 2, 3, 8, 32));

// --- Fused-kernel fuzzing ---------------------------------------------------
//
// The six fused kernels of the loss pipeline, gradient-checked on
// random shapes, with the matrix pool both on and off (pooled buffers
// are recycled mid-graph, so a stale-aliasing bug would only show up
// on the pooled leg). Each kernel output is scalarised through a
// fixed random probe (Sum(Hadamard(out, probe))) so every output
// entry contributes its own weight to the gradient.

constexpr const char* kFusedKernels[] = {
    "MatMulTransBScaled", "CosineGram",     "MaskedExpRowSum",
    "ScaleRowsMatMul",    "OffDiagSigmoid", "LogSumExpOffDiag",
};

// inputs = {u (n x d), v (n x d), c (n x 1)}. Probes are rebuilt from
// `rng` on every call so re-evaluations see identical constants.
Variable FusedKernelExpression(int kernel, const VarList& inputs, int n,
                               int d, Rng& rng) {
  const Variable& u = inputs[0];
  const Variable& v = inputs[1];
  const Variable& c = inputs[2];
  const Variable probe_nn(Matrix::RandomNormal(n, n, rng));
  const Variable probe_nd(Matrix::RandomNormal(n, d, rng));
  const Variable probe_n1(Matrix::RandomNormal(n, 1, rng));

  Variable out;
  Variable probe;
  switch (kernel) {
    case 0:
      out = ag::MatMulTransBScaled(u, v, 1.3);
      probe = probe_nn;
      break;
    case 1:
      out = ag::CosineGram(u, /*inv_tau=*/2.0);
      probe = probe_nn;
      break;
    case 2:
      out = ag::MaskedExpRowSum(ag::MatMulTransBScaled(u, v, 0.7));
      probe = probe_n1;
      break;
    case 3:
      out = ag::ScaleRowsMatMul(ag::MatMulTransB(u, v), c, v, 0.3);
      probe = probe_nd;
      break;
    case 4:
      out = ag::OffDiagSigmoid(ag::MatMulTransBScaled(u, v, 0.5));
      probe = probe_nn;
      break;
    default:
      out = ag::LogSumExpOffDiag(ag::MatMulTransBScaled(u, v, 0.9));
      probe = probe_n1;
      break;
  }
  Variable total = ag::Sum(ag::Hadamard(out, probe));
  // Mix in every input so all three receive gradients even for
  // kernels that only consume u and v.
  for (const Variable& in : inputs) {
    total = ag::Add(total, ag::ScalarMul(ag::Mean(ag::Square(in)), 0.01));
  }
  return total;
}

class FusedKernelFuzz
    : public ::testing::TestWithParam<std::tuple<uint64_t, bool, bool>> {
 protected:
  void SetUp() override {
    pooled_ = PoolingEnabled();
    simd_ = simd::Enabled();
  }
  void TearDown() override {
    SetPoolingEnabled(pooled_);
    simd::SetEnabled(simd_);
  }

 private:
  bool pooled_ = false;
  bool simd_ = true;
};

TEST_P(FusedKernelFuzz, FusedKernelsGradCheck) {
  const auto [seed, pooled, simd_on] = GetParam();
  SetPoolingEnabled(pooled);
  // The SIMD leg drives gradcheck through the vectorized fused kernels
  // (FMA-chain GEMM, laned dots); the scalar leg pins the fallback.
  simd::SetEnabled(simd_on);

  Rng init(seed * 104729 + 7);
  const int n = 3 + init.UniformInt(3);
  const int d = 2 + init.UniformInt(3);
  VarList inputs;
  inputs.emplace_back(Matrix::RandomNormal(n, d, init, 0.0, 0.8),
                      /*requires_grad=*/true);
  inputs.emplace_back(Matrix::RandomNormal(n, d, init, 0.0, 0.8),
                      /*requires_grad=*/true);
  inputs.emplace_back(Matrix::RandomNormal(n, 1, init, 0.0, 0.8),
                      /*requires_grad=*/true);

  for (int kernel = 0; kernel < 6; ++kernel) {
    const uint64_t probe_seed = seed * 6007 + kernel * 271 + 1;
    auto forward = [kernel, probe_seed, n, d](const VarList& in) {
      Rng probe_rng(probe_seed);
      return FusedKernelExpression(kernel, in, n, d, probe_rng);
    };
    // The pooled leg recycles tape temporaries through the pool across
    // the re-evaluations gradcheck performs.
    std::optional<TapeScope> tape;
    if (pooled) tape.emplace();
    const ag::GradCheckResult result =
        ag::CheckGradients(forward, inputs, 1e-5, 2e-4);
    EXPECT_TRUE(result.ok)
        << kFusedKernels[kernel] << " seed " << seed
        << (pooled ? " (pooled)" : " (unpooled)") << " n=" << n << " d=" << d
        << ": max error " << result.max_abs_error << " at "
        << result.worst_entry;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndPooling, FusedKernelFuzz,
    ::testing::Combine(::testing::Range<uint64_t>(0, 8), ::testing::Bool(),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<FusedKernelFuzz::ParamType>& info) {
      return "Seed" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "Pooled" : "Unpooled") +
             (std::get<2>(info.param) ? "Simd" : "NoSimd");
    });

}  // namespace
}  // namespace gradgcl
