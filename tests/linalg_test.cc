#include "tensor/linalg.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/ops.h"

namespace gradgcl {
namespace {

TEST(EigenTest, DiagonalMatrix) {
  Matrix a{{3, 0, 0}, {0, 1, 0}, {0, 0, 2}};
  EigenResult eig = SymmetricEigen(a);
  EXPECT_NEAR(eig.eigenvalues[0], 3.0, 1e-10);
  EXPECT_NEAR(eig.eigenvalues[1], 2.0, 1e-10);
  EXPECT_NEAR(eig.eigenvalues[2], 1.0, 1e-10);
}

TEST(EigenTest, TwoByTwoAnalytic) {
  // Eigenvalues of [[2, 1], [1, 2]] are 3 and 1.
  Matrix a{{2, 1}, {1, 2}};
  EigenResult eig = SymmetricEigen(a);
  EXPECT_NEAR(eig.eigenvalues[0], 3.0, 1e-10);
  EXPECT_NEAR(eig.eigenvalues[1], 1.0, 1e-10);
  // Eigenvector for 3 is (1, 1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::abs(eig.eigenvectors(0, 0)), 1.0 / std::sqrt(2.0), 1e-8);
}

TEST(EigenTest, ReconstructsMatrix) {
  Rng rng(3);
  Matrix base = Matrix::RandomNormal(6, 6, rng);
  Matrix a = MatMulTransB(base, base);  // symmetric PSD
  EigenResult eig = SymmetricEigen(a);
  // A = V diag(λ) V^T.
  Matrix lam(6, 6, 0.0);
  for (int i = 0; i < 6; ++i) lam(i, i) = eig.eigenvalues[i];
  Matrix rebuilt =
      MatMul(MatMul(eig.eigenvectors, lam), eig.eigenvectors.Transposed());
  EXPECT_TRUE(AllClose(rebuilt, a, 1e-8));
}

TEST(EigenTest, EigenvectorsOrthonormal) {
  Rng rng(5);
  Matrix base = Matrix::RandomNormal(5, 5, rng);
  Matrix a = base + base.Transposed();
  EigenResult eig = SymmetricEigen(a);
  Matrix gram = MatMulTransA(eig.eigenvectors, eig.eigenvectors);
  EXPECT_TRUE(AllClose(gram, Matrix::Identity(5), 1e-8));
}

TEST(SvdTest, KnownSingularValues) {
  // diag(3, 2) embedded in 3x2: singular values 3, 2.
  Matrix a{{3, 0}, {0, 2}, {0, 0}};
  std::vector<double> sv = SingularValues(a);
  ASSERT_EQ(sv.size(), 2u);
  EXPECT_NEAR(sv[0], 3.0, 1e-8);
  EXPECT_NEAR(sv[1], 2.0, 1e-8);
}

TEST(SvdTest, RankDeficiencyDetected) {
  // Rank-1 matrix: second singular value ~0.
  Matrix a{{1, 2}, {2, 4}, {3, 6}};
  std::vector<double> sv = SingularValues(a);
  EXPECT_GT(sv[0], 1.0);
  EXPECT_NEAR(sv[1], 0.0, 1e-7);
}

TEST(SvdTest, FrobeniusIdentity) {
  Rng rng(7);
  Matrix a = Matrix::RandomNormal(8, 5, rng);
  std::vector<double> sv = SingularValues(a);
  double sum_sq = 0.0;
  for (double s : sv) sum_sq += s * s;
  EXPECT_NEAR(std::sqrt(sum_sq), a.FrobeniusNorm(), 1e-8);
}

TEST(CovarianceTest, KnownTwoPointCloud) {
  // Points (1, 0) and (-1, 0): covariance diag(1, 0).
  Matrix x{{1, 0}, {-1, 0}};
  Matrix c = Covariance(x);
  EXPECT_TRUE(AllClose(c, Matrix{{1, 0}, {0, 0}}, 1e-12));
}

TEST(CovarianceTest, MeanInvariant) {
  Rng rng(9);
  Matrix x = Matrix::RandomNormal(20, 4, rng);
  Matrix shifted = AddRowBroadcast(x, Matrix{{5, -3, 2, 100}});
  EXPECT_TRUE(AllClose(Covariance(x), Covariance(shifted), 1e-9));
}

TEST(SpectrumTest, LowRankDataCollapses) {
  // 40 points spanning only 2 of 6 dimensions -> 4 zero singular values.
  Rng rng(11);
  Matrix basis = Matrix::RandomNormal(2, 6, rng);
  Matrix coeffs = Matrix::RandomNormal(40, 2, rng);
  Matrix x = MatMul(coeffs, basis);
  std::vector<double> spectrum = CovarianceSpectrum(x);
  ASSERT_EQ(spectrum.size(), 6u);
  EXPECT_GT(spectrum[1], 1e-6);
  for (int i = 2; i < 6; ++i) EXPECT_NEAR(spectrum[i], 0.0, 1e-8);
  EXPECT_EQ(RankAtThreshold(spectrum, 1e-6), 2);
}

TEST(SpectrumTest, FullRankDataSurvives) {
  Rng rng(13);
  Matrix x = Matrix::RandomNormal(100, 6, rng);
  std::vector<double> spectrum = CovarianceSpectrum(x);
  EXPECT_EQ(RankAtThreshold(spectrum, 1e-3), 6);
}

TEST(EffectiveRankTest, UniformSpectrumEqualsDimension) {
  EXPECT_NEAR(EffectiveRank({1, 1, 1, 1}), 4.0, 1e-9);
}

TEST(EffectiveRankTest, SingleDirectionIsOne) {
  EXPECT_NEAR(EffectiveRank({5, 0, 0, 0}), 1.0, 1e-9);
}

TEST(EffectiveRankTest, MonotoneInSpread) {
  const double balanced = EffectiveRank({1, 1, 1, 1});
  const double skewed = EffectiveRank({10, 1, 1, 1});
  EXPECT_GT(balanced, skewed);
  EXPECT_GT(skewed, 1.0);
}

TEST(EffectiveRankTest, ZeroSpectrumIsZero) {
  EXPECT_DOUBLE_EQ(EffectiveRank({0, 0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(EffectiveRank({}), 0.0);
}

TEST(RankAtThresholdTest, EmptyAndZeroInputs) {
  EXPECT_EQ(RankAtThreshold({}, 0.5), 0);
  EXPECT_EQ(RankAtThreshold({0, 0}, 0.5), 0);
}

TEST(SolveLinearTest, KnownSystem) {
  Matrix a{{2, 1}, {1, 3}};
  Matrix b{{5}, {10}};
  Matrix x = SolveLinear(a, b);
  EXPECT_NEAR(x(0, 0), 1.0, 1e-10);
  EXPECT_NEAR(x(1, 0), 3.0, 1e-10);
}

TEST(SolveLinearTest, MultipleRightHandSides) {
  Rng rng(15);
  Matrix a = Matrix::RandomNormal(5, 5, rng);
  a += Matrix::Identity(5) * 5.0;  // ensure well-conditioned
  Matrix x_true = Matrix::RandomNormal(5, 3, rng);
  Matrix b = MatMul(a, x_true);
  EXPECT_TRUE(AllClose(SolveLinear(a, b), x_true, 1e-8));
}

TEST(SolveLinearDeathTest, SingularMatrixAborts) {
  Matrix a{{1, 2}, {2, 4}};
  Matrix b{{1}, {1}};
  EXPECT_DEATH(SolveLinear(a, b), "singular");
}

// Spectrum diagnostics must be stable across representation sizes —
// the paper's Fig. 1 sweeps dimensions {80, 160, 320, 640}.
class SpectrumDimSweep : public ::testing::TestWithParam<int> {};

TEST_P(SpectrumDimSweep, RankMatchesPlantedSubspace) {
  const int dim = GetParam();
  const int rank = dim / 4;
  Rng rng(17);
  Matrix basis = Matrix::RandomNormal(rank, dim, rng);
  Matrix coeffs = Matrix::RandomNormal(3 * dim, rank, rng);
  std::vector<double> spectrum = CovarianceSpectrum(MatMul(coeffs, basis));
  EXPECT_EQ(RankAtThreshold(spectrum, 1e-6), rank);
  EXPECT_LE(EffectiveRank(spectrum), rank + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Dims, SpectrumDimSweep,
                         ::testing::Values(8, 16, 32, 64));

}  // namespace
}  // namespace gradgcl
