#include "graph/graph.h"

#include <cmath>

#include <gtest/gtest.h>

#include "graph/batch.h"
#include "graph/diffusion.h"
#include "graph/stats.h"
#include "tensor/ops.h"

namespace gradgcl {
namespace {

// Path graph 0-1-2-3 with 2-dim features = node index.
Graph PathGraph(int n = 4) {
  Graph g;
  g.num_nodes = n;
  for (int i = 0; i + 1 < n; ++i) g.edges.emplace_back(i, i + 1);
  g.features = Matrix(n, 2);
  for (int i = 0; i < n; ++i) {
    g.features(i, 0) = i;
    g.features(i, 1) = 1.0;
  }
  g.label = 0;
  return g;
}

Graph TriangleGraph() {
  Graph g;
  g.num_nodes = 3;
  g.edges = {{0, 1}, {1, 2}, {0, 2}};
  g.features = Matrix::Ones(3, 2);
  g.label = 1;
  return g;
}

TEST(GraphTest, ValidateAcceptsWellFormed) {
  ValidateGraph(PathGraph());
  ValidateGraph(TriangleGraph());
}

TEST(GraphDeathTest, ValidateRejectsBadGraphs) {
  Graph g = PathGraph();
  g.edges.emplace_back(0, 7);
  EXPECT_DEATH(ValidateGraph(g), "out of range");
  Graph h = PathGraph();
  h.edges.emplace_back(1, 1);
  EXPECT_DEATH(ValidateGraph(h), "self loop");
  Graph f = PathGraph();
  f.features = Matrix(2, 2, 0.0);
  EXPECT_DEATH(ValidateGraph(f), "num_nodes");
}

TEST(GraphTest, DegreesOfPath) {
  const std::vector<int> deg = Degrees(PathGraph());
  EXPECT_EQ(deg, (std::vector<int>{1, 2, 2, 1}));
}

TEST(GraphTest, CsrNeighborsComplete) {
  const CsrAdjacency csr = BuildCsr(PathGraph());
  EXPECT_EQ(csr.neighbors.size(), 6u);  // 2 * 3 edges
  // Node 1's neighbours are {0, 2}.
  std::vector<int> n1(csr.neighbors.begin() + csr.offsets[1],
                      csr.neighbors.begin() + csr.offsets[2]);
  std::sort(n1.begin(), n1.end());
  EXPECT_EQ(n1, (std::vector<int>{0, 2}));
}

TEST(GraphTest, NormalizedAdjacencySymmetricRows) {
  const Graph g = TriangleGraph();
  const Matrix a_hat = NormalizedAdjacency(g).ToDense();
  // All nodes have degree 2 -> D~ = 3I; every entry of the triangle
  // block is 1/3.
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_NEAR(a_hat(i, j), 1.0 / 3.0, 1e-12);
    }
  }
}

TEST(GraphTest, NormalizedAdjacencyEigenvalueBound) {
  // The spectral radius of D~^{-1/2}(A+I)D~^{-1/2} is exactly 1.
  const Graph g = PathGraph(6);
  const Matrix a_hat = NormalizedAdjacency(g).ToDense();
  Matrix x = Matrix::Ones(6, 1);
  // Power iteration.
  for (int it = 0; it < 200; ++it) {
    x = MatMul(a_hat, x);
    x *= 1.0 / x.FrobeniusNorm();
  }
  const Matrix ax = MatMul(a_hat, x);
  double lambda = 0.0;
  for (int i = 0; i < 6; ++i) lambda += ax(i, 0) * x(i, 0);
  EXPECT_NEAR(lambda, 1.0, 1e-6);
}

TEST(GraphTest, AdjacencyVariants) {
  const Graph g = PathGraph(3);
  EXPECT_TRUE(AllClose(Adjacency(g).ToDense(),
                       Matrix{{0, 1, 0}, {1, 0, 1}, {0, 1, 0}}));
  EXPECT_TRUE(AllClose(AdjacencyWithSelfLoops(g).ToDense(),
                       Matrix{{1, 1, 0}, {1, 1, 1}, {0, 1, 1}}));
}

TEST(GraphTest, HasEdgeBothDirections) {
  const Graph g = PathGraph();
  EXPECT_TRUE(HasEdge(g, 0, 1));
  EXPECT_TRUE(HasEdge(g, 1, 0));
  EXPECT_FALSE(HasEdge(g, 0, 2));
}

TEST(GraphTest, ConnectedComponents) {
  EXPECT_EQ(CountConnectedComponents(PathGraph()), 1);
  Graph g = PathGraph(5);
  g.edges.clear();
  g.edges.emplace_back(0, 1);  // {0,1} {2} {3} {4}
  EXPECT_EQ(CountConnectedComponents(g), 4);
}

TEST(GraphTest, InducedSubgraphRemaps) {
  const Graph g = PathGraph(4);
  const Graph sub = InducedSubgraph(g, {1, 2});
  EXPECT_EQ(sub.num_nodes, 2);
  ASSERT_EQ(sub.edges.size(), 1u);
  EXPECT_TRUE(HasEdge(sub, 0, 1));
  EXPECT_DOUBLE_EQ(sub.features(0, 0), 1.0);  // old node 1
  EXPECT_DOUBLE_EQ(sub.features(1, 0), 2.0);  // old node 2
  EXPECT_EQ(sub.label, g.label);
}

TEST(GraphTest, InducedSubgraphDropsCrossEdges) {
  const Graph g = PathGraph(4);
  const Graph sub = InducedSubgraph(g, {0, 2});  // nodes not adjacent
  EXPECT_EQ(sub.num_nodes, 2);
  EXPECT_TRUE(sub.edges.empty());
}

// --- Batching ----------------------------------------------------------------

TEST(BatchTest, DisjointUnionShapes) {
  const std::vector<Graph> graphs = {PathGraph(4), TriangleGraph()};
  const GraphBatch batch = MakeBatch(graphs);
  EXPECT_EQ(batch.num_graphs, 2);
  EXPECT_EQ(batch.total_nodes, 7);
  EXPECT_EQ(batch.features.rows(), 7);
  EXPECT_EQ(batch.segments,
            (std::vector<int>{0, 0, 0, 0, 1, 1, 1}));
  EXPECT_EQ(batch.labels, (std::vector<int>{0, 1}));
}

TEST(BatchTest, BlockDiagonalNoCrossEdges) {
  const std::vector<Graph> graphs = {PathGraph(4), TriangleGraph()};
  const Matrix adj = MakeBatch(graphs).adj_self.ToDense();
  // No entry may connect the two blocks.
  for (int i = 0; i < 4; ++i) {
    for (int j = 4; j < 7; ++j) {
      EXPECT_DOUBLE_EQ(adj(i, j), 0.0);
      EXPECT_DOUBLE_EQ(adj(j, i), 0.0);
    }
  }
}

TEST(BatchTest, NormAdjMatchesPerGraphOperator) {
  const std::vector<Graph> graphs = {TriangleGraph(), PathGraph(3)};
  const Matrix batched = MakeBatch(graphs).norm_adj.ToDense();
  const Matrix g0 = NormalizedAdjacency(graphs[0]).ToDense();
  const Matrix g1 = NormalizedAdjacency(graphs[1]).ToDense();
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_NEAR(batched(i, j), g0(i, j), 1e-12);
      EXPECT_NEAR(batched(3 + i, 3 + j), g1(i, j), 1e-12);
    }
  }
}

TEST(BatchTest, IndexSubsetSelection) {
  const std::vector<Graph> graphs = {PathGraph(4), TriangleGraph(),
                                     PathGraph(2)};
  const GraphBatch batch = MakeBatch(graphs, {2, 0});
  EXPECT_EQ(batch.num_graphs, 2);
  EXPECT_EQ(batch.total_nodes, 6);
  EXPECT_EQ(batch.labels[0], graphs[2].label);
}

TEST(BatchDeathTest, EmptyBatchAborts) {
  std::vector<Graph> empty;
  EXPECT_DEATH(MakeBatch(empty), "zero graphs");
}

// --- Diffusion ----------------------------------------------------------------

TEST(DiffusionTest, PprRowsSumToOne) {
  // Â is doubly stochastic-like only in special cases, but PPR rows of
  // S = α(I − (1−α)Â)^{-1} sum to α Σ_k (1−α)^k (row sums of Â^k)... for
  // the triangle, Â is exactly doubly stochastic, so row sums are 1.
  const Matrix s = PprDiffusion(TriangleGraph(), 0.2);
  for (int i = 0; i < 3; ++i) {
    double sum = 0.0;
    for (int j = 0; j < 3; ++j) sum += s(i, j);
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(DiffusionTest, PprDiagonalDominant) {
  const Matrix s = PprDiffusion(PathGraph(5), 0.2);
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 5; ++j) {
      if (i != j) EXPECT_GT(s(i, i), s(i, j));
    }
  }
}

TEST(DiffusionTest, HigherAlphaMoreLocal) {
  const Matrix s_local = PprDiffusion(PathGraph(6), 0.8);
  const Matrix s_global = PprDiffusion(PathGraph(6), 0.1);
  // Mass on distant pairs grows as alpha shrinks.
  EXPECT_GT(s_global(0, 5), s_local(0, 5));
}

TEST(DiffusionTest, SparsifyKeepsDiagonalAndNormalises) {
  const Matrix s = PprDiffusion(PathGraph(6), 0.2);
  const SparseMatrix sp = SparsifyDiffusion(s, 0.05);
  const Matrix d = sp.ToDense();
  for (int i = 0; i < 6; ++i) {
    EXPECT_GT(d(i, i), 0.0);
    double sum = 0.0;
    for (int j = 0; j < 6; ++j) sum += d(i, j);
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

// --- Stats ----------------------------------------------------------------------

TEST(StatsTest, ComputeStatsAggregates) {
  const std::vector<Graph> graphs = {PathGraph(4), TriangleGraph()};
  const DatasetStats stats = ComputeStats(graphs);
  EXPECT_EQ(stats.num_graphs, 2);
  EXPECT_EQ(stats.num_classes, 2);
  EXPECT_DOUBLE_EQ(stats.avg_nodes, 3.5);
  EXPECT_DOUBLE_EQ(stats.avg_edges, 3.0);
  EXPECT_EQ(stats.feature_dim, 2);
}

TEST(StatsTest, EmptyDatasetIsZero) {
  const DatasetStats stats = ComputeStats({});
  EXPECT_EQ(stats.num_graphs, 0);
  EXPECT_EQ(stats.num_classes, 0);
}

TEST(StatsTest, FormatRowContainsNameAndCounts) {
  const DatasetStats stats = ComputeStats({PathGraph(4)});
  const std::string row = FormatStatsRow("MUTAG", "Biochemical", stats);
  EXPECT_NE(row.find("MUTAG"), std::string::npos);
  EXPECT_NE(row.find("Biochemical"), std::string::npos);
}

}  // namespace
}  // namespace gradgcl
