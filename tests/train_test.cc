#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "datasets/node_synthetic.h"
#include "datasets/tu_synthetic.h"
#include "models/grace.h"
#include "models/graphcl.h"
#include "train/optimizer.h"
#include "train/trainer.h"

namespace gradgcl {
namespace {

// Quadratic bowl: loss = |w - target|^2. Any sane optimiser drives w
// to the target.
double RunOptimizerOnQuadratic(Optimizer& opt, Variable& w,
                               const Matrix& target, int steps) {
  for (int i = 0; i < steps; ++i) {
    opt.ZeroGrad();
    Variable diff = ag::Sub(w, Variable(target));
    Backward(ag::Sum(ag::Square(diff)));
    opt.Step();
  }
  Matrix residual = w.value();
  residual -= target;
  return residual.FrobeniusNorm();
}

TEST(SgdTest, ConvergesOnQuadratic) {
  Rng rng(1);
  Variable w(Matrix::RandomNormal(3, 3, rng), true);
  const Matrix target = Matrix::RandomNormal(3, 3, rng);
  Sgd opt({w}, 0.1);
  EXPECT_LT(RunOptimizerOnQuadratic(opt, w, target, 100), 1e-6);
}

TEST(SgdTest, MomentumAcceleratesConvergence) {
  Rng rng(2);
  const Matrix start = Matrix::RandomNormal(3, 3, rng);
  const Matrix target = Matrix::RandomNormal(3, 3, rng);
  Variable w_plain(start, true);
  Variable w_momentum(start, true);
  Sgd plain({w_plain}, 0.02);
  Sgd momentum({w_momentum}, 0.02, 0.9);
  const double plain_res =
      RunOptimizerOnQuadratic(plain, w_plain, target, 30);
  const double momentum_res =
      RunOptimizerOnQuadratic(momentum, w_momentum, target, 30);
  EXPECT_LT(momentum_res, plain_res);
}

TEST(SgdTest, WeightDecayShrinksWeights) {
  Variable w(Matrix(2, 2, 10.0), true);
  Sgd opt({w}, 0.1, 0.0, 0.5);
  for (int i = 0; i < 50; ++i) {
    opt.ZeroGrad();
    // No data gradient; only decay acts.
    Backward(ag::ScalarMul(ag::Sum(w), 0.0));
    opt.Step();
  }
  EXPECT_LT(std::abs(w.value()(0, 0)), 1.0);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Rng rng(3);
  Variable w(Matrix::RandomNormal(3, 3, rng), true);
  const Matrix target = Matrix::RandomNormal(3, 3, rng);
  Adam opt({w}, 0.1);
  EXPECT_LT(RunOptimizerOnQuadratic(opt, w, target, 300), 1e-4);
}

TEST(AdamTest, HandlesBadlyScaledGradients) {
  // One coordinate's gradient is 1e4 times the other's; Adam's
  // per-coordinate scaling still converges both.
  Variable w(Matrix{{5.0, 5.0}}, true);
  Adam opt({w}, 0.05);
  for (int i = 0; i < 800; ++i) {
    opt.ZeroGrad();
    Variable scaled = ag::Hadamard(w, Variable(Matrix{{1e4, 1.0}}));
    Backward(ag::Sum(ag::Square(scaled)));
    opt.Step();
  }
  EXPECT_NEAR(w.value()(0, 0), 0.0, 1e-2);
  EXPECT_NEAR(w.value()(0, 1), 0.0, 1e-2);
}

TEST(OptimizerDeathTest, NonParameterInputAborts) {
  Variable constant(Matrix(2, 2, 0.0));  // requires_grad = false
  EXPECT_DEATH(Sgd({constant}, 0.1), "require gradients");
}

TEST(MiniBatchTest, CoversAllIndicesExactlyOnce) {
  Rng rng(4);
  const std::vector<std::vector<int>> batches = MakeMiniBatches(23, 5, rng);
  std::set<int> seen;
  int total = 0;
  for (const auto& batch : batches) {
    EXPECT_GE(batch.size(), 2u);
    total += static_cast<int>(batch.size());
    seen.insert(batch.begin(), batch.end());
  }
  EXPECT_EQ(total, 23);
  EXPECT_EQ(seen.size(), 23u);
}

TEST(MiniBatchTest, TrailingSingletonFolded) {
  Rng rng(5);
  // 11 items at batch size 5: 5 + 5 + 1 -> last singleton folds in.
  const std::vector<std::vector<int>> batches = MakeMiniBatches(11, 5, rng);
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[1].size(), 6u);
}

TEST(TrainerTest, LossDecreasesOnTinyDataset) {
  TuProfile profile = TuProfileByName("MUTAG");
  profile.num_graphs = 48;
  const std::vector<Graph> data = GenerateTuDataset(profile, 2);

  Rng rng(6);
  GraphClConfig config;
  config.encoder.in_dim = profile.feature_dim;
  config.encoder.hidden_dim = 8;
  config.encoder.out_dim = 8;
  config.proj_dim = 8;
  GraphCl model(config, rng);

  TrainOptions options;
  options.epochs = 20;
  options.batch_size = 16;
  options.lr = 0.02;
  const std::vector<EpochStats> history =
      TrainGraphSsl(model, data, options);
  ASSERT_EQ(history.size(), 20u);
  // Average of the last 5 epochs below the average of the first 2.
  double late = 0.0;
  for (int e = 15; e < 20; ++e) late += history[e].loss / 5.0;
  const double early = (history[0].loss + history[1].loss) / 2.0;
  EXPECT_LT(late, early);
  for (const EpochStats& stats : history) {
    EXPECT_TRUE(std::isfinite(stats.loss));
    EXPECT_GE(stats.seconds, 0.0);
  }
}

TEST(TrainerTest, NodeLossDecreasesOnTinyDataset) {
  NodeProfile profile = NodeProfileByName("Cora");
  profile.num_nodes = 60;
  profile.feature_dim = 12;
  const NodeDataset data = GenerateNodeDataset(profile, 9);

  Rng rng(10);
  GraceConfig config;
  config.encoder.kind = EncoderKind::kGcn;
  config.encoder.in_dim = profile.feature_dim;
  config.encoder.hidden_dim = 8;
  config.encoder.out_dim = 8;
  Grace model(config, rng);

  TrainOptions options;
  options.epochs = 25;
  options.lr = 0.02;
  const std::vector<EpochStats> history = TrainNodeSsl(model, data, options);
  double early = (history[0].loss + history[1].loss) / 2.0;
  double late = 0.0;
  for (int e = 20; e < 25; ++e) late += history[e].loss / 5.0;
  EXPECT_LT(late, early);
}

TEST(TrainerTest, SeedReproducesHistoryExactly) {
  TuProfile profile = TuProfileByName("MUTAG");
  profile.num_graphs = 16;
  const std::vector<Graph> data = GenerateTuDataset(profile, 3);

  auto run = [&]() {
    Rng rng(7);
    GraphClConfig config;
    config.encoder.in_dim = profile.feature_dim;
    config.encoder.hidden_dim = 8;
    config.encoder.out_dim = 8;
    GraphCl model(config, rng);
    TrainOptions options;
    options.epochs = 4;
    options.batch_size = 8;
    options.seed = 11;
    return TrainGraphSsl(model, data, options);
  };
  const std::vector<EpochStats> a = run();
  const std::vector<EpochStats> b = run();
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].loss, b[i].loss);
  }
}

TEST(TrainerTest, EpochCallbackInvokedInOrder) {
  TuProfile profile = TuProfileByName("MUTAG");
  profile.num_graphs = 12;
  const std::vector<Graph> data = GenerateTuDataset(profile, 4);
  Rng rng(8);
  GraphClConfig config;
  config.encoder.in_dim = profile.feature_dim;
  config.encoder.hidden_dim = 8;
  config.encoder.out_dim = 8;
  GraphCl model(config, rng);
  TrainOptions options;
  options.epochs = 3;
  std::vector<int> epochs_seen;
  TrainGraphSsl(model, data, options, [&](const EpochStats& stats) {
    epochs_seen.push_back(stats.epoch);
  });
  EXPECT_EQ(epochs_seen, (std::vector<int>{0, 1, 2}));
}

}  // namespace
}  // namespace gradgcl
