#include <cmath>

#include <gtest/gtest.h>

#include "autograd/gradcheck.h"
#include "graph/batch.h"
#include "nn/encoders.h"
#include "tensor/ops.h"

namespace gradgcl {
namespace {

Graph SmallGraph() {
  Graph g;
  g.num_nodes = 3;
  g.edges = {{0, 1}, {1, 2}};
  g.features = Matrix{{1, 0}, {0, 1}, {1, 1}};
  g.label = 0;
  return g;
}

TEST(LinearTest, ShapesAndBias) {
  Rng rng(1);
  Linear lin(3, 2, rng);
  Variable x(Matrix::Ones(4, 3));
  Variable y = lin.Forward(x);
  EXPECT_EQ(y.rows(), 4);
  EXPECT_EQ(y.cols(), 2);
  EXPECT_EQ(lin.parameters().size(), 2u);  // weight + bias
}

TEST(LinearTest, GradientsFlowToParameters) {
  Rng rng(2);
  Linear lin(3, 2, rng);
  Variable x(Matrix::Ones(4, 3));
  Backward(ag::Sum(lin.Forward(x)));
  for (const Variable& p : lin.parameters()) {
    EXPECT_GT(p.grad().FrobeniusNorm(), 0.0);
  }
}

TEST(LinearTest, GradCheckThroughLayer) {
  Rng rng(3);
  Linear lin(3, 2, rng);
  std::vector<Variable> inputs = lin.parameters();
  const Matrix x = Matrix::RandomNormal(4, 3, rng);
  const ag::GradCheckResult result = ag::CheckGradients(
      [&lin, &x](const std::vector<Variable>&) {
        return ag::Sum(ag::Square(lin.Forward(Variable(x))));
      },
      inputs);
  EXPECT_TRUE(result.ok) << result.worst_entry;
}

TEST(MlpTest, HiddenReluShapes) {
  Rng rng(4);
  Mlp mlp({3, 8, 8, 2}, rng);
  Variable y = mlp.Forward(Variable(Matrix::Ones(5, 3)));
  EXPECT_EQ(y.rows(), 5);
  EXPECT_EQ(y.cols(), 2);
  EXPECT_EQ(mlp.parameters().size(), 6u);  // 3 layers x (W, b)
}

TEST(MlpDeathTest, TooFewDimsAborts) {
  Rng rng(5);
  EXPECT_DEATH(Mlp({4}, rng), "at least");
}

TEST(GcnConvTest, PropagatesNeighborhood) {
  Rng rng(6);
  const Graph g = SmallGraph();
  GcnConv conv(2, 2, rng);
  const SparseMatrix a_hat = NormalizedAdjacency(g);
  Variable h = conv.Forward(a_hat, Variable(g.features), false);
  // Manual: Â (X W + b).
  Variable lin_out = ag::AddRowBroadcast(
      ag::MatMul(Variable(g.features), conv.parameters()[0]),
      conv.parameters()[1]);
  const Matrix expected = a_hat.Multiply(lin_out.value());
  EXPECT_TRUE(AllClose(h.value(), expected, 1e-10));
}

TEST(GinConvTest, OutputFinite) {
  Rng rng(7);
  const Graph g = SmallGraph();
  GinConv conv(2, 4, rng);
  Variable h = conv.Forward(AdjacencyWithSelfLoops(g), Variable(g.features));
  EXPECT_EQ(h.rows(), 3);
  EXPECT_EQ(h.cols(), 4);
  EXPECT_TRUE(h.value().AllFinite());
}

TEST(EncoderTest, NodeAndGraphShapes) {
  Rng rng(8);
  EncoderConfig config;
  config.in_dim = 2;
  config.hidden_dim = 8;
  config.out_dim = 4;
  config.num_layers = 2;
  GraphEncoder encoder(config, rng);

  const std::vector<Graph> graphs = {SmallGraph(), SmallGraph()};
  const GraphBatch batch = MakeBatch(graphs);
  GraphEncoder::Output out = encoder.Forward(batch);
  EXPECT_EQ(out.nodes.rows(), 6);
  EXPECT_EQ(out.nodes.cols(), 4);
  EXPECT_EQ(out.graphs.rows(), 2);
  EXPECT_EQ(out.graphs.cols(), 4);
}

TEST(EncoderTest, GcnAndGinBothWork) {
  for (EncoderKind kind : {EncoderKind::kGcn, EncoderKind::kGin}) {
    Rng rng(9);
    EncoderConfig config;
    config.kind = kind;
    config.in_dim = 2;
    GraphEncoder encoder(config, rng);
    const GraphBatch batch = MakeBatch({SmallGraph()});
    EXPECT_TRUE(encoder.ForwardGraphs(batch).value().AllFinite());
  }
}

TEST(EncoderTest, IdenticalGraphsGetIdenticalEmbeddings) {
  Rng rng(10);
  EncoderConfig config;
  config.in_dim = 2;
  GraphEncoder encoder(config, rng);
  const GraphBatch batch = MakeBatch({SmallGraph(), SmallGraph()});
  const Matrix graphs = encoder.ForwardGraphs(batch).value();
  EXPECT_TRUE(AllClose(graphs.Row(0), graphs.Row(1), 1e-10));
}

TEST(EncoderTest, ReadoutMeanVsSum) {
  Variable nodes(Matrix{{1, 1}, {3, 3}, {5, 5}});
  const std::vector<int> segments = {0, 0, 1};
  const Matrix mean = Readout(nodes, segments, 2, ReadoutKind::kMean).value();
  const Matrix sum = Readout(nodes, segments, 2, ReadoutKind::kSum).value();
  EXPECT_DOUBLE_EQ(mean(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(sum(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(mean(1, 0), 5.0);
}

TEST(EncoderTest, OperatorOverrideChangesOutput) {
  Rng rng(11);
  EncoderConfig config;
  config.in_dim = 2;
  GraphEncoder encoder(config, rng);
  const Graph g = SmallGraph();
  const GraphBatch batch = MakeBatch({g});
  const Matrix via_adj = encoder.ForwardNodes(batch).value();
  // Identity operator: no message passing.
  std::vector<Triplet> eye;
  for (int i = 0; i < 3; ++i) eye.push_back({i, i, 1.0});
  const Matrix via_eye =
      encoder
          .ForwardNodesWithOperator(SparseMatrix(3, 3, eye),
                                    Variable(g.features))
          .value();
  EXPECT_FALSE(AllClose(via_adj, via_eye, 1e-6));
}

TEST(GatConvTest, OutputShapeAndFinite) {
  Rng rng(30);
  const Graph g = SmallGraph();
  GatConv conv(2, 4, rng);
  Variable h = conv.Forward(DenseAttentionMask(g), Variable(g.features));
  EXPECT_EQ(h.rows(), 3);
  EXPECT_EQ(h.cols(), 4);
  EXPECT_TRUE(h.value().AllFinite());
}

TEST(GatConvTest, AttentionMaskStructure) {
  const Graph g = SmallGraph();  // path 0-1-2
  const Matrix mask = DenseAttentionMask(g);
  EXPECT_DOUBLE_EQ(mask(0, 0), 1.0);  // self loop
  EXPECT_DOUBLE_EQ(mask(0, 1), 1.0);  // edge
  EXPECT_DOUBLE_EQ(mask(0, 2), 0.0);  // non-edge
  EXPECT_DOUBLE_EQ(mask(2, 1), 1.0);  // symmetric
}

TEST(GatConvTest, GradientsReachAttentionParameters) {
  Rng rng(31);
  const Graph g = SmallGraph();
  GatConv conv(2, 4, rng);
  conv.ZeroGrad();
  Backward(ag::Sum(
      ag::Square(conv.Forward(DenseAttentionMask(g), Variable(g.features)))));
  // All four parameters (W, b, a_src, a_dst) must receive gradients.
  int touched = 0;
  for (const Variable& p : conv.parameters()) {
    if (p.grad().FrobeniusNorm() > 0.0) ++touched;
  }
  EXPECT_EQ(touched, 4);
}

TEST(GatConvTest, IsolatedNodeAttendsOnlyToItself) {
  Graph g;
  g.num_nodes = 3;
  g.edges = {{0, 1}};  // node 2 isolated
  g.features = Matrix{{1, 0}, {0, 1}, {1, 1}};
  Rng rng(32);
  GatConv conv(2, 2, rng);
  // Node 2's output must equal its own transformed features (attention
  // weight 1 on the self loop).
  Variable z = conv.Forward(DenseAttentionMask(g), Variable(g.features),
                            /*apply_relu=*/false);
  // `twin` shares conv's seed, hence identical parameters; compare the
  // isolated node against a 1-node graph with the same features.
  Rng rng2(32);
  GatConv twin(2, 2, rng2);
  Graph solo;
  solo.num_nodes = 1;
  solo.features = Matrix{{1, 1}};
  Variable z_solo = twin.Forward(DenseAttentionMask(solo),
                                 Variable(solo.features), false);
  EXPECT_TRUE(AllClose(z.value().Row(2), z_solo.value().Row(0), 1e-10));
}

TEST(GatEncoderTest, NodeEmbeddingsShape) {
  Rng rng(33);
  const Graph g = SmallGraph();
  GatNodeEncoder encoder({2, 8, 4}, rng);
  Variable h = encoder.Forward(g);
  EXPECT_EQ(h.rows(), 3);
  EXPECT_EQ(h.cols(), 4);
  EXPECT_TRUE(h.value().AllFinite());
}

TEST(GatEncoderTest, TrainableEndToEnd) {
  // A 2-layer GAT must be able to fit a trivial node-regression target.
  Rng rng(34);
  const Graph g = SmallGraph();
  GatNodeEncoder encoder({2, 8, 1}, rng);
  const Matrix target{{1}, {0}, {1}};
  std::vector<Variable> params = encoder.parameters();
  double first_loss = 0.0, last_loss = 0.0;
  for (int step = 0; step < 60; ++step) {
    for (Variable& p : params) p.ZeroGrad();
    Variable loss =
        ag::Mean(ag::Square(ag::Sub(encoder.Forward(g), Variable(target))));
    if (step == 0) first_loss = loss.scalar();
    last_loss = loss.scalar();
    Backward(loss);
    for (Variable& p : params) {
      Matrix update = p.grad();
      update *= 0.1;
      Matrix value = p.value();
      value -= update;
      p.set_value(value);
    }
  }
  EXPECT_LT(last_loss, first_loss * 0.5);
}

// --- Module state management ----------------------------------------------------

TEST(ModuleTest, StateRoundTrip) {
  Rng rng(12);
  Mlp mlp({3, 4, 2}, rng);
  const std::vector<Matrix> saved = mlp.StateCopy();
  // Clobber, then restore.
  for (Variable& p : mlp.parameters()) {
    p.set_value(Matrix(p.rows(), p.cols(), 9.0));
  }
  mlp.LoadState(saved);
  const std::vector<Matrix> restored = mlp.StateCopy();
  for (size_t i = 0; i < saved.size(); ++i) {
    EXPECT_TRUE(AllClose(saved[i], restored[i]));
  }
}

TEST(ModuleTest, NumScalarParameters) {
  Rng rng(13);
  Linear lin(3, 2, rng);
  EXPECT_EQ(lin.NumScalarParameters(), 3 * 2 + 2);
}

TEST(ModuleTest, ZeroGradClearsAll) {
  Rng rng(14);
  Linear lin(2, 2, rng);
  Backward(ag::Sum(lin.Forward(Variable(Matrix::Ones(3, 2)))));
  lin.ZeroGrad();
  for (const Variable& p : lin.parameters()) {
    EXPECT_DOUBLE_EQ(p.grad().FrobeniusNorm(), 0.0);
  }
}

TEST(ModuleDeathTest, LoadStateCountMismatchAborts) {
  Rng rng(15);
  Linear lin(2, 2, rng);
  EXPECT_DEATH(lin.LoadState({Matrix(2, 2, 0.0)}), "mismatch");
}

TEST(PerturbStateTest, ZeroMagnitudeIsIdentity) {
  Rng rng(16);
  Mlp mlp({3, 4, 2}, rng);
  Rng noise(17);
  const std::vector<Matrix> perturbed =
      PerturbState(mlp.StateCopy(), 0.0, noise);
  const std::vector<Matrix> original = mlp.StateCopy();
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_TRUE(AllClose(original[i], perturbed[i]));
  }
}

TEST(PerturbStateTest, MagnitudeScalesNoise) {
  Rng rng(18);
  Mlp mlp({8, 16, 8}, rng);
  const std::vector<Matrix> state = mlp.StateCopy();
  Rng n1(19), n2(19);
  const std::vector<Matrix> small = PerturbState(state, 0.1, n1);
  const std::vector<Matrix> large = PerturbState(state, 1.0, n2);
  double small_delta = 0.0, large_delta = 0.0;
  for (size_t i = 0; i < state.size(); ++i) {
    Matrix ds = small[i];
    ds -= state[i];
    Matrix dl = large[i];
    dl -= state[i];
    small_delta += ds.FrobeniusNorm();
    large_delta += dl.FrobeniusNorm();
  }
  EXPECT_NEAR(large_delta / small_delta, 10.0, 0.5);
}

TEST(EmaUpdateTest, ConvergesTowardOnline) {
  std::vector<Matrix> target = {Matrix(2, 2, 0.0)};
  const std::vector<Matrix> online = {Matrix(2, 2, 1.0)};
  EmaUpdate(target, online, 0.9);
  EXPECT_NEAR(target[0](0, 0), 0.1, 1e-12);
  for (int i = 0; i < 200; ++i) EmaUpdate(target, online, 0.9);
  EXPECT_NEAR(target[0](0, 0), 1.0, 1e-6);
}

TEST(EmaUpdateTest, DecayOneFreezesTarget) {
  std::vector<Matrix> target = {Matrix(2, 2, 3.0)};
  EmaUpdate(target, {Matrix(2, 2, -5.0)}, 1.0);
  EXPECT_DOUBLE_EQ(target[0](0, 0), 3.0);
}

}  // namespace
}  // namespace gradgcl
