// Tests for the serving subsystem (src/serve/): bitwise parity of the
// tape-free InferenceSession forward against the trainer-side encoder
// (graph + node paths, snapshot load path) across worker counts, SIMD
// modes, and pooling modes; sharded-ingress correctness (parity across
// shard counts, per-shard admission splits with the single-shard
// degenerate case pinned to the legacy semantics, work stealing into
// workerless shards); ModelRegistry versioning and RCU hot-swap under
// load (>= 100 snapshot swaps, zero dropped / version-mismatched
// requests, at 1, 2, and 8 shards); multi-model serving; and
// multi-producer hammers intended to run under TSAN (ctest -L serve on
// the build-tsan tree, with GRADGCL_SERVE_SHARDS=2 and =8 legs).
//
// Tests that depend on exact batch composition or exact admission
// arithmetic pin num_shards explicitly so the GRADGCL_SERVE_SHARDS
// environment legs cannot change their semantics.

#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/rng.h"
#include "datasets/tu_synthetic.h"
#include "nn/encoders.h"
#include "nn/serialize.h"
#include "obs/metrics.h"
#include "serve/engine.h"
#include "serve/registry.h"
#include "serve/session.h"
#include "tensor/pool.h"
#include "tensor/simd.h"

namespace gradgcl {
namespace {

using serve::EmbeddingEngine;
using serve::EmbedResult;
using serve::InferenceSession;
using serve::ModelHandle;
using serve::ModelRegistry;
using serve::ModelSnapshot;
using serve::ServeOptions;
using serve::ServeStatus;
using serve::ServeStatusName;

std::vector<Graph> TestGraphs(int n) {
  TuProfile profile = TuProfileByName("MUTAG");
  profile.num_graphs = n;
  return GenerateTuDataset(profile, 7);
}

bool BitIdentical(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  if (a.empty()) return true;
  return std::memcmp(a.data(), b.data(),
                     sizeof(double) * static_cast<size_t>(a.size())) == 0;
}

// Saves and restores the runtime mode switches the parity tests sweep.
struct ModeGuard {
  bool simd = simd::Enabled();
  bool pooling = PoolingEnabled();
  ~ModeGuard() {
    simd::SetEnabled(simd);
    SetPoolingEnabled(pooling);
  }
};

EncoderConfig TestConfig(EncoderKind kind, ReadoutKind readout) {
  EncoderConfig config;
  config.kind = kind;
  config.readout = readout;
  config.in_dim = 8;
  config.hidden_dim = 16;
  config.out_dim = 12;
  config.num_layers = 2;
  return config;
}

// --- InferenceSession parity -------------------------------------------------

TEST(ServeSessionTest, GraphEmbeddingsBitIdenticalToEncoder) {
  ModeGuard guard;
  const std::vector<Graph> graphs = TestGraphs(12);
  const GraphBatch batch = MakeBatch(graphs);
  for (EncoderKind kind : {EncoderKind::kGcn, EncoderKind::kGin}) {
    for (ReadoutKind readout : {ReadoutKind::kMean, ReadoutKind::kSum}) {
      Rng rng(11);
      GraphEncoder encoder(TestConfig(kind, readout), rng);
      const std::unique_ptr<InferenceSession> session =
          InferenceSession::FromEncoder(encoder);
      ASSERT_NE(session, nullptr);
      for (bool simd_on : {false, true}) {
        for (bool pooled : {false, true}) {
          simd::SetEnabled(simd_on);
          SetPoolingEnabled(pooled);
          const Matrix ref = encoder.ForwardGraphs(batch).value();
          const Matrix got = session->EmbedGraphs(batch);
          EXPECT_TRUE(BitIdentical(got, ref))
              << "kind=" << static_cast<int>(kind)
              << " readout=" << static_cast<int>(readout)
              << " simd=" << simd_on << " pooled=" << pooled;
        }
      }
    }
  }
}

TEST(ServeSessionTest, NodeEmbeddingsBitIdenticalToEncoder) {
  ModeGuard guard;
  const std::vector<Graph> graphs = TestGraphs(6);
  const GraphBatch batch = MakeBatch(graphs);
  for (EncoderKind kind : {EncoderKind::kGcn, EncoderKind::kGin}) {
    Rng rng(13);
    GraphEncoder encoder(TestConfig(kind, ReadoutKind::kMean), rng);
    const std::unique_ptr<InferenceSession> session =
        InferenceSession::FromEncoder(encoder);
    ASSERT_NE(session, nullptr);
    for (bool simd_on : {false, true}) {
      for (bool pooled : {false, true}) {
        simd::SetEnabled(simd_on);
        SetPoolingEnabled(pooled);
        const Matrix ref = encoder.ForwardNodes(batch).value();
        const Matrix got = session->EmbedNodes(batch);
        EXPECT_TRUE(BitIdentical(got, ref));
      }
    }
  }
}

TEST(ServeSessionTest, SnapshotLoadMatchesLiveEncoder) {
  const EncoderConfig config = TestConfig(EncoderKind::kGin, ReadoutKind::kSum);
  Rng rng(17);
  GraphEncoder encoder(config, rng);
  const std::string path =
      std::string(::testing::TempDir()) + "/serve_snapshot.ggcl";
  ASSERT_TRUE(SaveModule(path, encoder));

  const std::unique_ptr<InferenceSession> loaded =
      InferenceSession::Load(config, path);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->NumScalarParameters(), encoder.NumScalarParameters());

  const std::vector<Graph> graphs = TestGraphs(8);
  const GraphBatch batch = MakeBatch(graphs);
  EXPECT_TRUE(BitIdentical(loaded->EmbedGraphs(batch),
                           encoder.ForwardGraphs(batch).value()));
  std::remove(path.c_str());
}

TEST(ServeSessionTest, LoadRejectsWrongConfigAndCorruptSnapshot) {
  const EncoderConfig config = TestConfig(EncoderKind::kGcn, ReadoutKind::kMean);
  Rng rng(19);
  GraphEncoder encoder(config, rng);
  const std::string path =
      std::string(::testing::TempDir()) + "/serve_bad_snapshot.ggcl";
  ASSERT_TRUE(SaveModule(path, encoder));

  // Wrong architecture for the same snapshot: shape mismatch -> nullptr.
  EncoderConfig wider = config;
  wider.hidden_dim = 32;
  EXPECT_EQ(InferenceSession::Load(wider, path), nullptr);
  EncoderConfig gin = config;
  gin.kind = EncoderKind::kGin;
  EXPECT_EQ(InferenceSession::Load(gin, path), nullptr);

  // Missing and corrupt files -> nullptr, no abort.
  EXPECT_EQ(InferenceSession::Load(config, path + ".missing"), nullptr);
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_SET);
  std::fwrite("XXXX", 1, 4, f);
  std::fclose(f);
  EXPECT_EQ(InferenceSession::Load(config, path), nullptr);
  std::remove(path.c_str());
}

TEST(ServeSessionTest, FromStateRejectsShapeMismatch) {
  const EncoderConfig config = TestConfig(EncoderKind::kGcn, ReadoutKind::kMean);
  Rng rng(23);
  GraphEncoder encoder(config, rng);
  std::vector<Matrix> state = encoder.StateCopy();
  state.back() = Matrix(3, 3, 0.0);  // wrong bias shape
  EXPECT_EQ(InferenceSession::FromState(config, std::move(state)), nullptr);
  EXPECT_EQ(InferenceSession::FromState(config, {}), nullptr);
}

// --- EmbeddingEngine ---------------------------------------------------------

// Fixture pieces shared by the engine tests: a frozen session plus
// per-request reference embeddings computed directly (no engine).
struct EngineHarness {
  EngineHarness()
      : graphs(TestGraphs(24)),
        session([this] {
          Rng rng(29);
          GraphEncoder encoder(
              TestConfig(EncoderKind::kGin, ReadoutKind::kMean), rng);
          return InferenceSession::FromEncoder(encoder);
        }()) {}

  // Request i = graphs[i % n .. i % n + size) (wrapping), so distinct
  // requests overlap and multi-graph requests exercise row scatter.
  std::vector<Graph> RequestGraphs(int i, int size) const {
    std::vector<Graph> request;
    for (int k = 0; k < size; ++k) {
      request.push_back(graphs[(i + k) % graphs.size()]);
    }
    return request;
  }

  std::vector<Graph> graphs;
  std::unique_ptr<InferenceSession> session;
};

TEST(ServeEngineTest, ParityAcrossWorkerCounts) {
  EngineHarness h;
  // 12 requests of mixed sizes; references computed without the engine.
  std::vector<std::vector<Graph>> requests;
  std::vector<Matrix> refs;
  for (int i = 0; i < 12; ++i) {
    requests.push_back(h.RequestGraphs(i, 1 + i % 3));
    refs.push_back(h.session->EmbedGraphs(requests.back()));
  }
  for (int workers : {1, 2, 4}) {
    for (int shards : {1, 2, 8}) {
      ServeOptions opts;
      opts.num_workers = workers;
      opts.num_shards = shards;
      opts.max_batch_graphs = 8;
      opts.max_wait_micros = 500.0;
      EmbeddingEngine engine(*h.session, opts);
      ASSERT_EQ(engine.num_shards(), shards);
      // Concurrent clients so batches actually coalesce (and, with
      // more shards than workers, so stealing actually happens).
      std::vector<Matrix> got(requests.size());
      std::vector<ServeStatus> status(requests.size(), ServeStatus::kOk);
      std::vector<uint64_t> versions(requests.size(), 0);
      std::vector<std::thread> clients;
      clients.reserve(requests.size());
      for (size_t i = 0; i < requests.size(); ++i) {
        clients.emplace_back([&, i] {
          EmbedResult r = engine.Embed(requests[i]);
          status[i] = r.status;
          versions[i] = r.model_version;
          got[i] = std::move(r.embeddings);
        });
      }
      for (std::thread& t : clients) t.join();
      engine.Shutdown();
      for (size_t i = 0; i < requests.size(); ++i) {
        ASSERT_EQ(status[i], ServeStatus::kOk)
            << "workers=" << workers << " shards=" << shards;
        EXPECT_TRUE(BitIdentical(got[i], refs[i]))
            << "workers=" << workers << " shards=" << shards
            << " request=" << i;
        // The legacy constructor publishes the session as version 1 of
        // model "default"; every result must carry that tag.
        EXPECT_EQ(versions[i], 1u);
      }
    }
  }
}

TEST(ServeEngineTest, CoalescedBatchMatchesPerRequestResults) {
  EngineHarness h;
  ServeOptions opts;
  opts.num_workers = 0;  // manual pump: batch composition is exact
  opts.num_shards = 1;   // single queue: one RunOneBatch drains it all
  opts.max_batch_graphs = 64;
  EmbeddingEngine engine(*h.session, opts);

  std::vector<std::vector<Graph>> requests;
  for (int i = 0; i < 5; ++i) requests.push_back(h.RequestGraphs(3 * i, 2));
  std::vector<Matrix> got(requests.size());
  std::vector<std::thread> clients;
  for (size_t i = 0; i < requests.size(); ++i) {
    clients.emplace_back(
        [&, i] { got[i] = engine.Embed(requests[i]).embeddings; });
  }
  // Wait until every request is queued, then run them as ONE batch.
  while (engine.QueueDepth() < 10) std::this_thread::yield();
  EXPECT_TRUE(engine.RunOneBatch());
  EXPECT_FALSE(engine.RunOneBatch());  // queue drained in one batch
  for (std::thread& t : clients) t.join();
  for (size_t i = 0; i < requests.size(); ++i) {
    EXPECT_TRUE(
        BitIdentical(got[i], h.session->EmbedGraphs(requests[i])));
  }
  engine.Shutdown();
}

TEST(ServeEngineTest, OversizedRequestRunsAlone) {
  EngineHarness h;
  ServeOptions opts;
  opts.num_workers = 1;
  opts.max_batch_graphs = 4;
  EmbeddingEngine engine(*h.session, opts);
  const std::vector<Graph> big = h.RequestGraphs(0, 9);  // > max_batch_graphs
  EmbedResult r = engine.Embed(big);
  ASSERT_EQ(r.status, ServeStatus::kOk);
  EXPECT_EQ(r.embeddings.rows(), 9);
  EXPECT_TRUE(BitIdentical(r.embeddings, h.session->EmbedGraphs(big)));
}

TEST(ServeEngineTest, AdmissionControlRejectsWhenFull) {
  EngineHarness h;
  ServeOptions opts;
  opts.num_workers = 0;  // nothing drains: the queue fills determin.
  opts.num_shards = 1;   // legacy single-queue admission arithmetic
  opts.max_queue_graphs = 2;
  EmbeddingEngine engine(*h.session, opts);

  const std::vector<Graph> one = h.RequestGraphs(0, 1);
  std::thread client([&] {
    EmbedResult r = engine.Embed(one);
    EXPECT_EQ(r.status, ServeStatus::kOk);
  });
  while (engine.QueueDepth() < 1) std::this_thread::yield();

  // 1 queued + 2 requested > max_queue_graphs -> immediate rejection.
  EmbedResult rejected = engine.Embed(h.RequestGraphs(1, 2));
  EXPECT_EQ(rejected.status, ServeStatus::kOverloaded);
  EXPECT_TRUE(rejected.embeddings.empty());

  // Exactly at capacity is admitted (pump both through).
  std::thread client2([&] {
    EXPECT_EQ(engine.Embed(h.RequestGraphs(2, 1)).status, ServeStatus::kOk);
  });
  while (engine.QueueDepth() < 2) std::this_thread::yield();
  while (engine.RunOneBatch()) {
  }
  client.join();
  client2.join();
  engine.Shutdown();
}

TEST(ServeEngineTest, ShutdownDrainsPendingRequests) {
  EngineHarness h;
  ServeOptions opts;
  opts.num_workers = 0;
  opts.num_shards = 1;
  EmbeddingEngine engine(*h.session, opts);
  const std::vector<Graph> req = h.RequestGraphs(0, 3);
  std::thread client([&] {
    EmbedResult r = engine.Embed(req);
    EXPECT_EQ(r.status, ServeStatus::kOk);
    EXPECT_TRUE(BitIdentical(r.embeddings, h.session->EmbedGraphs(req)));
  });
  while (engine.QueueDepth() < 3) std::this_thread::yield();
  engine.Shutdown();  // drain mode: pending work completes
  client.join();
  // After shutdown, admission is closed.
  EXPECT_EQ(engine.Embed(req).status, ServeStatus::kShutdown);
}

TEST(ServeEngineTest, ShutdownCancelsPendingRequestsWhenConfigured) {
  EngineHarness h;
  ServeOptions opts;
  opts.num_workers = 0;
  opts.num_shards = 1;
  opts.cancel_pending_on_shutdown = true;
  EmbeddingEngine engine(*h.session, opts);
  const std::vector<Graph> req = h.RequestGraphs(0, 2);
  std::thread client([&] {
    EmbedResult r = engine.Embed(req);
    EXPECT_EQ(r.status, ServeStatus::kShutdown);
    EXPECT_TRUE(r.embeddings.empty());
  });
  while (engine.QueueDepth() < 2) std::this_thread::yield();
  engine.Shutdown();
  client.join();
}

TEST(ServeEngineTest, StatusNamesAreStable) {
  EXPECT_STREQ(ServeStatusName(ServeStatus::kOk), "ok");
  EXPECT_STREQ(ServeStatusName(ServeStatus::kOverloaded), "overloaded");
  EXPECT_STREQ(ServeStatusName(ServeStatus::kShutdown), "shutdown");
  EXPECT_STREQ(ServeStatusName(ServeStatus::kUnknownModel), "unknown_model");
}

// Multi-producer hammer for TSAN: 8 client threads submit mixed-size
// requests against a small queue (forcing kOverloaded) while Shutdown
// lands mid-flight (forcing kShutdown cancellations). Every kOk result
// must still be bit-identical to the direct forward.
TEST(ServeEngineTest, ConcurrentHammerUnderShutdownAndOverload) {
  EngineHarness h;
  // Per-(start,size) references, computed up front (sizes 1..3).
  std::vector<std::vector<Matrix>> refs(h.graphs.size());
  for (size_t i = 0; i < h.graphs.size(); ++i) {
    for (int size = 1; size <= 3; ++size) {
      refs[i].push_back(
          h.session->EmbedGraphs(h.RequestGraphs(static_cast<int>(i), size)));
    }
  }
  ServeOptions opts;
  opts.num_workers = 4;
  opts.max_batch_graphs = 8;
  opts.max_wait_micros = 50.0;
  opts.max_queue_graphs = 16;  // small: drives overload rejections
  opts.cancel_pending_on_shutdown = true;
  EmbeddingEngine engine(*h.session, opts);

  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 25;
  std::atomic<int> ok{0}, overloaded{0}, shutdown{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < kRequestsPerClient; ++r) {
        const int start = (c * kRequestsPerClient + r) %
                          static_cast<int>(h.graphs.size());
        const int size = 1 + (c + r) % 3;
        const std::vector<Graph> request = h.RequestGraphs(start, size);
        EmbedResult result = engine.Embed(request);
        switch (result.status) {
          case ServeStatus::kOk:
            EXPECT_TRUE(
                BitIdentical(result.embeddings, refs[start][size - 1]));
            ok.fetch_add(1);
            break;
          case ServeStatus::kOverloaded:
            EXPECT_TRUE(result.embeddings.empty());
            overloaded.fetch_add(1);
            break;
          case ServeStatus::kShutdown:
            EXPECT_TRUE(result.embeddings.empty());
            shutdown.fetch_add(1);
            break;
          case ServeStatus::kUnknownModel:
            ADD_FAILURE() << "default model cannot be unknown";
            break;
        }
      }
    });
  }
  // Let the fleet run, then shut down mid-flight.
  while (ok.load() + overloaded.load() < kClients * kRequestsPerClient / 2) {
    std::this_thread::yield();
  }
  engine.Shutdown();
  for (std::thread& t : clients) t.join();
  EXPECT_GT(ok.load(), 0);
  EXPECT_EQ(ok.load() + overloaded.load() + shutdown.load(),
            kClients * kRequestsPerClient);
}

// --- Sharded ingress ---------------------------------------------------------

// max_queue_graphs is partitioned across shards; a request no shard's
// slice can hold is rejected even when the engine is idle, while the
// single-shard engine keeps the legacy whole-queue bound.
TEST(ServeEngineTest, ShardedAdmissionSplitsCapacityAcrossShards) {
  EngineHarness h;
  {
    ServeOptions opts;
    opts.num_workers = 0;
    opts.num_shards = 2;
    opts.max_queue_graphs = 4;  // 2 + 2 across the shards
    EmbeddingEngine engine(*h.session, opts);
    ASSERT_EQ(engine.num_shards(), 2);

    // 3 graphs > every per-shard slice (2): rejected even though the
    // engine is idle and 3 <= max_queue_graphs.
    EXPECT_EQ(engine.Embed(h.RequestGraphs(0, 3)).status,
              ServeStatus::kOverloaded);

    // Four 1-graph requests fill both slices via the overflow scan...
    std::vector<std::thread> clients;
    for (int i = 0; i < 4; ++i) {
      clients.emplace_back([&, i] {
        EXPECT_EQ(engine.Embed(h.RequestGraphs(i, 1)).status,
                  ServeStatus::kOk);
      });
    }
    while (engine.QueueDepth() < 4) std::this_thread::yield();
    // ...and the fifth finds every shard full: total bound preserved.
    EXPECT_EQ(engine.Embed(h.RequestGraphs(4, 1)).status,
              ServeStatus::kOverloaded);
    while (engine.RunOneBatch()) {
    }
    for (std::thread& t : clients) t.join();
    engine.Shutdown();
  }
  {
    // Single-shard degenerate case: the same 3-graph request is
    // admitted against the undivided bound — exactly the legacy
    // semantics.
    ServeOptions opts;
    opts.num_workers = 0;
    opts.num_shards = 1;
    opts.max_queue_graphs = 4;
    EmbeddingEngine engine(*h.session, opts);
    std::thread client([&] {
      EXPECT_EQ(engine.Embed(h.RequestGraphs(0, 3)).status, ServeStatus::kOk);
    });
    while (engine.QueueDepth() < 3) std::this_thread::yield();
    while (engine.RunOneBatch()) {
    }
    client.join();
    engine.Shutdown();
  }
}

// One worker homed on shard 0 of 4: requests landing on shards 1..3
// complete only through the steal path (max_batch_graphs = 1 disables
// cross-shard top-up, so every foreign batch is a counted steal).
TEST(ServeEngineTest, WorkStealingServesWorkerlessShards) {
  EngineHarness h;
  obs::MetricsRegistry::Instance().Reset();
  ServeOptions opts;
  opts.num_workers = 1;
  opts.num_shards = 4;
  opts.max_batch_graphs = 1;
  opts.max_wait_micros = 0.0;
  EmbeddingEngine engine(*h.session, opts);

  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 2;
  std::atomic<uint64_t> bad{0};
  std::vector<std::vector<Matrix>> refs(h.graphs.size());
  for (size_t i = 0; i < h.graphs.size(); ++i) {
    refs[i].push_back(
        h.session->EmbedGraphs(h.RequestGraphs(static_cast<int>(i), 1)));
  }
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < kRequestsPerClient; ++r) {
        const int start =
            (c * kRequestsPerClient + r) % static_cast<int>(h.graphs.size());
        EmbedResult result = engine.Embed(h.RequestGraphs(start, 1));
        if (result.status != ServeStatus::kOk ||
            !BitIdentical(result.embeddings, refs[start][0])) {
          bad.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  engine.Shutdown();
  EXPECT_EQ(bad.load(), 0u);
  // The submitters' round-robin shard picks guarantee requests landed
  // off the worker's home shard, so at least one batch was stolen.
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::Instance().Snapshot();
  EXPECT_GE(snap.counter("serve/steals"), 1u);
  EXPECT_EQ(snap.counter("serve/graphs"),
            static_cast<uint64_t>(kClients * kRequestsPerClient));
}

// --- ModelRegistry + hot-swap ------------------------------------------------

std::shared_ptr<const InferenceSession> SessionFromSeed(uint64_t seed) {
  Rng rng(seed);
  GraphEncoder encoder(TestConfig(EncoderKind::kGin, ReadoutKind::kMean), rng);
  return InferenceSession::FromEncoder(encoder);
}

TEST(ModelRegistryTest, PublishFindVersionsAndRcuPinning) {
  ModelRegistry registry;
  EXPECT_EQ(registry.Find("m"), nullptr);

  const std::shared_ptr<const InferenceSession> s0 = SessionFromSeed(101);
  const std::shared_ptr<const InferenceSession> s1 = SessionFromSeed(102);
  EXPECT_EQ(registry.Publish("m", s0), 1u);
  ModelHandle* handle = registry.Find("m");
  ASSERT_NE(handle, nullptr);
  EXPECT_EQ(handle->name(), "m");
  EXPECT_EQ(handle->CurrentVersion(), 1u);

  // RCU pinning: a reader holding the old snapshot keeps it intact
  // across a Publish; new readers see the new version.
  const std::shared_ptr<const ModelSnapshot> pinned = handle->Acquire();
  EXPECT_EQ(registry.Publish("m", s1), 2u);
  EXPECT_EQ(handle->CurrentVersion(), 2u);
  EXPECT_EQ(pinned->version, 1u);
  EXPECT_EQ(pinned->session.get(), s0.get());
  EXPECT_EQ(handle->Acquire()->session.get(), s1.get());
  // Handles are stable across publishes.
  EXPECT_EQ(registry.Find("m"), handle);

  // Versions are per name.
  EXPECT_EQ(registry.Publish("other", s0), 1u);
  const std::vector<std::string> names = registry.ModelNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "m");
  EXPECT_EQ(names[1], "other");
}

// The acceptance test for hot-swap: >= 100 snapshot swaps land while
// clients hammer the engine, and every single request completes (zero
// dropped) with embeddings memcmp-equal to the forward of the exact
// version its result is tagged with (zero version-mismatched) — at 1,
// 2, and 8 shards.
TEST(ServeEngineTest, HotSwapUnderLoadZeroDroppedZeroMismatched) {
  constexpr int kStates = 3;    // distinct parameter sets cycled as versions
  constexpr int kSwaps = 120;   // >= 100 swaps under load
  const std::vector<Graph> graphs = TestGraphs(12);
  std::vector<std::shared_ptr<const InferenceSession>> sessions;
  std::vector<std::vector<Matrix>> refs(kStates);  // [state][graph]
  for (int s = 0; s < kStates; ++s) {
    sessions.push_back(SessionFromSeed(200 + s));
    for (const Graph& g : graphs) {
      refs[s].push_back(sessions[s]->EmbedGraphs(std::vector<Graph>{g}));
    }
  }
  for (int shards : {1, 2, 8}) {
    ModelRegistry registry;
    registry.Publish("live", sessions[0]);  // version 1 = state 0
    ServeOptions opts;
    opts.num_workers = 2;
    opts.num_shards = shards;
    opts.max_batch_graphs = 8;
    opts.max_wait_micros = 0.0;
    opts.max_queue_graphs = 1 << 20;  // must never trip: zero drops required
    EmbeddingEngine engine(registry, "live", opts);

    std::atomic<bool> swapping_done{false};
    std::thread swapper([&] {
      // Version v serves parameter state (v - 1) % kStates.
      for (int v = 2; v <= 1 + kSwaps; ++v) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        registry.Publish("live", sessions[(v - 1) % kStates]);
      }
      swapping_done.store(true, std::memory_order_release);
    });

    constexpr int kClients = 4;
    std::atomic<uint64_t> completed{0};
    std::atomic<uint64_t> dropped{0};
    std::atomic<uint64_t> mismatched{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        uint64_t i = 0;
        while (!swapping_done.load(std::memory_order_acquire)) {
          const size_t g = (static_cast<size_t>(c) + i++) % graphs.size();
          const std::vector<Graph> request{graphs[g]};
          const EmbedResult r = engine.Embed(request);
          if (r.status != ServeStatus::kOk) {
            dropped.fetch_add(1);
            continue;
          }
          completed.fetch_add(1);
          const bool version_ok =
              r.model_version >= 1 &&
              r.model_version <= static_cast<uint64_t>(1 + kSwaps) &&
              r.model_name == "live";
          const size_t state = static_cast<size_t>((r.model_version - 1)) %
                               static_cast<size_t>(kStates);
          if (!version_ok || !BitIdentical(r.embeddings, refs[state][g])) {
            mismatched.fetch_add(1);
          }
        }
      });
    }
    swapper.join();
    for (std::thread& t : clients) t.join();
    engine.Shutdown();
    EXPECT_EQ(registry.Find("live")->CurrentVersion(),
              static_cast<uint64_t>(1 + kSwaps));
    EXPECT_EQ(dropped.load(), 0u) << "shards=" << shards;
    EXPECT_EQ(mismatched.load(), 0u) << "shards=" << shards;
    EXPECT_GT(completed.load(), 0u) << "shards=" << shards;
  }
}

// One engine, several registered models: batches never mix models,
// every result carries the right tag, and unknown names are rejected
// without queueing.
TEST(ServeEngineTest, MultiModelServingKeepsModelsSeparate) {
  const std::vector<Graph> graphs = TestGraphs(8);
  ModelRegistry registry;
  const std::shared_ptr<const InferenceSession> sa = SessionFromSeed(301);
  const std::shared_ptr<const InferenceSession> sb = SessionFromSeed(302);
  registry.Publish("a", sa);
  registry.Publish("b", sb);
  std::vector<Matrix> refs_a, refs_b;
  for (const Graph& g : graphs) {
    refs_a.push_back(sa->EmbedGraphs(std::vector<Graph>{g}));
    refs_b.push_back(sb->EmbedGraphs(std::vector<Graph>{g}));
  }

  ServeOptions opts;
  opts.num_workers = 1;
  opts.num_shards = 2;
  opts.max_batch_graphs = 16;
  opts.max_wait_micros = 100.0;  // encourage cross-request coalescing
  EmbeddingEngine engine(registry, "a", opts);

  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 10;
  std::atomic<uint64_t> bad{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const bool use_b = c % 2 == 1;
      for (int r = 0; r < kRequestsPerClient; ++r) {
        const size_t g = (static_cast<size_t>(c) + r) % graphs.size();
        const std::vector<Graph> request{graphs[g]};
        // Even clients use the default model ("a"), odd ones name "b".
        const EmbedResult result =
            use_b ? engine.Embed("b", request) : engine.Embed(request);
        const std::vector<Matrix>& refs = use_b ? refs_b : refs_a;
        if (result.status != ServeStatus::kOk ||
            result.model_name != (use_b ? "b" : "a") ||
            result.model_version != 1 ||
            !BitIdentical(result.embeddings, refs[g])) {
          bad.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(bad.load(), 0u);

  const EmbedResult unknown = engine.Embed("nope", {graphs[0]});
  EXPECT_EQ(unknown.status, ServeStatus::kUnknownModel);
  EXPECT_TRUE(unknown.embeddings.empty());
  EXPECT_EQ(engine.QueueDepth(), 0);
  engine.Shutdown();
}

}  // namespace
}  // namespace gradgcl
