// Tests for the serving subsystem (src/serve/): bitwise parity of the
// tape-free InferenceSession forward against the trainer-side encoder
// (graph + node paths, snapshot load path) across worker counts, SIMD
// modes, and pooling modes; micro-batcher coalescing correctness;
// admission control (kOverloaded) and both shutdown modes; and a
// multi-producer hammer intended to run under TSAN (ctest -L serve on
// the build-tsan tree).

#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/rng.h"
#include "datasets/tu_synthetic.h"
#include "nn/encoders.h"
#include "nn/serialize.h"
#include "serve/engine.h"
#include "serve/session.h"
#include "tensor/pool.h"
#include "tensor/simd.h"

namespace gradgcl {
namespace {

using serve::EmbeddingEngine;
using serve::EmbedResult;
using serve::InferenceSession;
using serve::ServeOptions;
using serve::ServeStatus;
using serve::ServeStatusName;

std::vector<Graph> TestGraphs(int n) {
  TuProfile profile = TuProfileByName("MUTAG");
  profile.num_graphs = n;
  return GenerateTuDataset(profile, 7);
}

bool BitIdentical(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  if (a.empty()) return true;
  return std::memcmp(a.data(), b.data(),
                     sizeof(double) * static_cast<size_t>(a.size())) == 0;
}

// Saves and restores the runtime mode switches the parity tests sweep.
struct ModeGuard {
  bool simd = simd::Enabled();
  bool pooling = PoolingEnabled();
  ~ModeGuard() {
    simd::SetEnabled(simd);
    SetPoolingEnabled(pooling);
  }
};

EncoderConfig TestConfig(EncoderKind kind, ReadoutKind readout) {
  EncoderConfig config;
  config.kind = kind;
  config.readout = readout;
  config.in_dim = 8;
  config.hidden_dim = 16;
  config.out_dim = 12;
  config.num_layers = 2;
  return config;
}

// --- InferenceSession parity -------------------------------------------------

TEST(ServeSessionTest, GraphEmbeddingsBitIdenticalToEncoder) {
  ModeGuard guard;
  const std::vector<Graph> graphs = TestGraphs(12);
  const GraphBatch batch = MakeBatch(graphs);
  for (EncoderKind kind : {EncoderKind::kGcn, EncoderKind::kGin}) {
    for (ReadoutKind readout : {ReadoutKind::kMean, ReadoutKind::kSum}) {
      Rng rng(11);
      GraphEncoder encoder(TestConfig(kind, readout), rng);
      const std::unique_ptr<InferenceSession> session =
          InferenceSession::FromEncoder(encoder);
      ASSERT_NE(session, nullptr);
      for (bool simd_on : {false, true}) {
        for (bool pooled : {false, true}) {
          simd::SetEnabled(simd_on);
          SetPoolingEnabled(pooled);
          const Matrix ref = encoder.ForwardGraphs(batch).value();
          const Matrix got = session->EmbedGraphs(batch);
          EXPECT_TRUE(BitIdentical(got, ref))
              << "kind=" << static_cast<int>(kind)
              << " readout=" << static_cast<int>(readout)
              << " simd=" << simd_on << " pooled=" << pooled;
        }
      }
    }
  }
}

TEST(ServeSessionTest, NodeEmbeddingsBitIdenticalToEncoder) {
  ModeGuard guard;
  const std::vector<Graph> graphs = TestGraphs(6);
  const GraphBatch batch = MakeBatch(graphs);
  for (EncoderKind kind : {EncoderKind::kGcn, EncoderKind::kGin}) {
    Rng rng(13);
    GraphEncoder encoder(TestConfig(kind, ReadoutKind::kMean), rng);
    const std::unique_ptr<InferenceSession> session =
        InferenceSession::FromEncoder(encoder);
    ASSERT_NE(session, nullptr);
    for (bool simd_on : {false, true}) {
      for (bool pooled : {false, true}) {
        simd::SetEnabled(simd_on);
        SetPoolingEnabled(pooled);
        const Matrix ref = encoder.ForwardNodes(batch).value();
        const Matrix got = session->EmbedNodes(batch);
        EXPECT_TRUE(BitIdentical(got, ref));
      }
    }
  }
}

TEST(ServeSessionTest, SnapshotLoadMatchesLiveEncoder) {
  const EncoderConfig config = TestConfig(EncoderKind::kGin, ReadoutKind::kSum);
  Rng rng(17);
  GraphEncoder encoder(config, rng);
  const std::string path =
      std::string(::testing::TempDir()) + "/serve_snapshot.ggcl";
  ASSERT_TRUE(SaveModule(path, encoder));

  const std::unique_ptr<InferenceSession> loaded =
      InferenceSession::Load(config, path);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->NumScalarParameters(), encoder.NumScalarParameters());

  const std::vector<Graph> graphs = TestGraphs(8);
  const GraphBatch batch = MakeBatch(graphs);
  EXPECT_TRUE(BitIdentical(loaded->EmbedGraphs(batch),
                           encoder.ForwardGraphs(batch).value()));
  std::remove(path.c_str());
}

TEST(ServeSessionTest, LoadRejectsWrongConfigAndCorruptSnapshot) {
  const EncoderConfig config = TestConfig(EncoderKind::kGcn, ReadoutKind::kMean);
  Rng rng(19);
  GraphEncoder encoder(config, rng);
  const std::string path =
      std::string(::testing::TempDir()) + "/serve_bad_snapshot.ggcl";
  ASSERT_TRUE(SaveModule(path, encoder));

  // Wrong architecture for the same snapshot: shape mismatch -> nullptr.
  EncoderConfig wider = config;
  wider.hidden_dim = 32;
  EXPECT_EQ(InferenceSession::Load(wider, path), nullptr);
  EncoderConfig gin = config;
  gin.kind = EncoderKind::kGin;
  EXPECT_EQ(InferenceSession::Load(gin, path), nullptr);

  // Missing and corrupt files -> nullptr, no abort.
  EXPECT_EQ(InferenceSession::Load(config, path + ".missing"), nullptr);
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_SET);
  std::fwrite("XXXX", 1, 4, f);
  std::fclose(f);
  EXPECT_EQ(InferenceSession::Load(config, path), nullptr);
  std::remove(path.c_str());
}

TEST(ServeSessionTest, FromStateRejectsShapeMismatch) {
  const EncoderConfig config = TestConfig(EncoderKind::kGcn, ReadoutKind::kMean);
  Rng rng(23);
  GraphEncoder encoder(config, rng);
  std::vector<Matrix> state = encoder.StateCopy();
  state.back() = Matrix(3, 3, 0.0);  // wrong bias shape
  EXPECT_EQ(InferenceSession::FromState(config, std::move(state)), nullptr);
  EXPECT_EQ(InferenceSession::FromState(config, {}), nullptr);
}

// --- EmbeddingEngine ---------------------------------------------------------

// Fixture pieces shared by the engine tests: a frozen session plus
// per-request reference embeddings computed directly (no engine).
struct EngineHarness {
  EngineHarness()
      : graphs(TestGraphs(24)),
        session([this] {
          Rng rng(29);
          GraphEncoder encoder(
              TestConfig(EncoderKind::kGin, ReadoutKind::kMean), rng);
          return InferenceSession::FromEncoder(encoder);
        }()) {}

  // Request i = graphs[i % n .. i % n + size) (wrapping), so distinct
  // requests overlap and multi-graph requests exercise row scatter.
  std::vector<Graph> RequestGraphs(int i, int size) const {
    std::vector<Graph> request;
    for (int k = 0; k < size; ++k) {
      request.push_back(graphs[(i + k) % graphs.size()]);
    }
    return request;
  }

  std::vector<Graph> graphs;
  std::unique_ptr<InferenceSession> session;
};

TEST(ServeEngineTest, ParityAcrossWorkerCounts) {
  EngineHarness h;
  // 12 requests of mixed sizes; references computed without the engine.
  std::vector<std::vector<Graph>> requests;
  std::vector<Matrix> refs;
  for (int i = 0; i < 12; ++i) {
    requests.push_back(h.RequestGraphs(i, 1 + i % 3));
    refs.push_back(h.session->EmbedGraphs(requests.back()));
  }
  for (int workers : {1, 2, 4}) {
    ServeOptions opts;
    opts.num_workers = workers;
    opts.max_batch_graphs = 8;
    opts.max_wait_micros = 500.0;
    EmbeddingEngine engine(*h.session, opts);
    // Concurrent clients so batches actually coalesce.
    std::vector<Matrix> got(requests.size());
    std::vector<ServeStatus> status(requests.size(), ServeStatus::kOk);
    std::vector<std::thread> clients;
    clients.reserve(requests.size());
    for (size_t i = 0; i < requests.size(); ++i) {
      clients.emplace_back([&, i] {
        EmbedResult r = engine.Embed(requests[i]);
        status[i] = r.status;
        got[i] = std::move(r.embeddings);
      });
    }
    for (std::thread& t : clients) t.join();
    engine.Shutdown();
    for (size_t i = 0; i < requests.size(); ++i) {
      ASSERT_EQ(status[i], ServeStatus::kOk) << "workers=" << workers;
      EXPECT_TRUE(BitIdentical(got[i], refs[i]))
          << "workers=" << workers << " request=" << i;
    }
  }
}

TEST(ServeEngineTest, CoalescedBatchMatchesPerRequestResults) {
  EngineHarness h;
  ServeOptions opts;
  opts.num_workers = 0;  // manual pump: batch composition is exact
  opts.max_batch_graphs = 64;
  EmbeddingEngine engine(*h.session, opts);

  std::vector<std::vector<Graph>> requests;
  for (int i = 0; i < 5; ++i) requests.push_back(h.RequestGraphs(3 * i, 2));
  std::vector<Matrix> got(requests.size());
  std::vector<std::thread> clients;
  for (size_t i = 0; i < requests.size(); ++i) {
    clients.emplace_back(
        [&, i] { got[i] = engine.Embed(requests[i]).embeddings; });
  }
  // Wait until every request is queued, then run them as ONE batch.
  while (engine.QueueDepth() < 10) std::this_thread::yield();
  EXPECT_TRUE(engine.RunOneBatch());
  EXPECT_FALSE(engine.RunOneBatch());  // queue drained in one batch
  for (std::thread& t : clients) t.join();
  for (size_t i = 0; i < requests.size(); ++i) {
    EXPECT_TRUE(
        BitIdentical(got[i], h.session->EmbedGraphs(requests[i])));
  }
  engine.Shutdown();
}

TEST(ServeEngineTest, OversizedRequestRunsAlone) {
  EngineHarness h;
  ServeOptions opts;
  opts.num_workers = 1;
  opts.max_batch_graphs = 4;
  EmbeddingEngine engine(*h.session, opts);
  const std::vector<Graph> big = h.RequestGraphs(0, 9);  // > max_batch_graphs
  EmbedResult r = engine.Embed(big);
  ASSERT_EQ(r.status, ServeStatus::kOk);
  EXPECT_EQ(r.embeddings.rows(), 9);
  EXPECT_TRUE(BitIdentical(r.embeddings, h.session->EmbedGraphs(big)));
}

TEST(ServeEngineTest, AdmissionControlRejectsWhenFull) {
  EngineHarness h;
  ServeOptions opts;
  opts.num_workers = 0;  // nothing drains: the queue fills determin.
  opts.max_queue_graphs = 2;
  EmbeddingEngine engine(*h.session, opts);

  const std::vector<Graph> one = h.RequestGraphs(0, 1);
  std::thread client([&] {
    EmbedResult r = engine.Embed(one);
    EXPECT_EQ(r.status, ServeStatus::kOk);
  });
  while (engine.QueueDepth() < 1) std::this_thread::yield();

  // 1 queued + 2 requested > max_queue_graphs -> immediate rejection.
  EmbedResult rejected = engine.Embed(h.RequestGraphs(1, 2));
  EXPECT_EQ(rejected.status, ServeStatus::kOverloaded);
  EXPECT_TRUE(rejected.embeddings.empty());

  // Exactly at capacity is admitted (pump both through).
  std::thread client2([&] {
    EXPECT_EQ(engine.Embed(h.RequestGraphs(2, 1)).status, ServeStatus::kOk);
  });
  while (engine.QueueDepth() < 2) std::this_thread::yield();
  while (engine.RunOneBatch()) {
  }
  client.join();
  client2.join();
  engine.Shutdown();
}

TEST(ServeEngineTest, ShutdownDrainsPendingRequests) {
  EngineHarness h;
  ServeOptions opts;
  opts.num_workers = 0;
  EmbeddingEngine engine(*h.session, opts);
  const std::vector<Graph> req = h.RequestGraphs(0, 3);
  std::thread client([&] {
    EmbedResult r = engine.Embed(req);
    EXPECT_EQ(r.status, ServeStatus::kOk);
    EXPECT_TRUE(BitIdentical(r.embeddings, h.session->EmbedGraphs(req)));
  });
  while (engine.QueueDepth() < 3) std::this_thread::yield();
  engine.Shutdown();  // drain mode: pending work completes
  client.join();
  // After shutdown, admission is closed.
  EXPECT_EQ(engine.Embed(req).status, ServeStatus::kShutdown);
}

TEST(ServeEngineTest, ShutdownCancelsPendingRequestsWhenConfigured) {
  EngineHarness h;
  ServeOptions opts;
  opts.num_workers = 0;
  opts.cancel_pending_on_shutdown = true;
  EmbeddingEngine engine(*h.session, opts);
  const std::vector<Graph> req = h.RequestGraphs(0, 2);
  std::thread client([&] {
    EmbedResult r = engine.Embed(req);
    EXPECT_EQ(r.status, ServeStatus::kShutdown);
    EXPECT_TRUE(r.embeddings.empty());
  });
  while (engine.QueueDepth() < 2) std::this_thread::yield();
  engine.Shutdown();
  client.join();
}

TEST(ServeEngineTest, StatusNamesAreStable) {
  EXPECT_STREQ(ServeStatusName(ServeStatus::kOk), "ok");
  EXPECT_STREQ(ServeStatusName(ServeStatus::kOverloaded), "overloaded");
  EXPECT_STREQ(ServeStatusName(ServeStatus::kShutdown), "shutdown");
}

// Multi-producer hammer for TSAN: 8 client threads submit mixed-size
// requests against a small queue (forcing kOverloaded) while Shutdown
// lands mid-flight (forcing kShutdown cancellations). Every kOk result
// must still be bit-identical to the direct forward.
TEST(ServeEngineTest, ConcurrentHammerUnderShutdownAndOverload) {
  EngineHarness h;
  // Per-(start,size) references, computed up front (sizes 1..3).
  std::vector<std::vector<Matrix>> refs(h.graphs.size());
  for (size_t i = 0; i < h.graphs.size(); ++i) {
    for (int size = 1; size <= 3; ++size) {
      refs[i].push_back(
          h.session->EmbedGraphs(h.RequestGraphs(static_cast<int>(i), size)));
    }
  }
  ServeOptions opts;
  opts.num_workers = 4;
  opts.max_batch_graphs = 8;
  opts.max_wait_micros = 50.0;
  opts.max_queue_graphs = 16;  // small: drives overload rejections
  opts.cancel_pending_on_shutdown = true;
  EmbeddingEngine engine(*h.session, opts);

  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 25;
  std::atomic<int> ok{0}, overloaded{0}, shutdown{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < kRequestsPerClient; ++r) {
        const int start = (c * kRequestsPerClient + r) %
                          static_cast<int>(h.graphs.size());
        const int size = 1 + (c + r) % 3;
        const std::vector<Graph> request = h.RequestGraphs(start, size);
        EmbedResult result = engine.Embed(request);
        switch (result.status) {
          case ServeStatus::kOk:
            EXPECT_TRUE(
                BitIdentical(result.embeddings, refs[start][size - 1]));
            ok.fetch_add(1);
            break;
          case ServeStatus::kOverloaded:
            EXPECT_TRUE(result.embeddings.empty());
            overloaded.fetch_add(1);
            break;
          case ServeStatus::kShutdown:
            EXPECT_TRUE(result.embeddings.empty());
            shutdown.fetch_add(1);
            break;
        }
      }
    });
  }
  // Let the fleet run, then shut down mid-flight.
  while (ok.load() + overloaded.load() < kClients * kRequestsPerClient / 2) {
    std::this_thread::yield();
  }
  engine.Shutdown();
  for (std::thread& t : clients) t.join();
  EXPECT_GT(ok.load(), 0);
  EXPECT_EQ(ok.load() + overloaded.load() + shutdown.load(),
            kClients * kRequestsPerClient);
}

}  // namespace
}  // namespace gradgcl
