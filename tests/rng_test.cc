#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace gradgcl {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDifferentStreams) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(13);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.UniformInt(10);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 10);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformIntOneIsAlwaysZero) {
  Rng rng(17);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.UniformInt(1), 0);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(19);
  const int n = 50000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, NormalWithParamsShifted) {
  Rng rng(23);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Normal(5.0, 0.5);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(RngTest, BernoulliRateMatches) {
  Rng rng(29);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, BernoulliDegenerateProbabilities) {
  Rng rng(31);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, PermutationIsValid) {
  Rng rng(37);
  const std::vector<int> perm = rng.Permutation(50);
  std::set<int> seen(perm.begin(), perm.end());
  EXPECT_EQ(perm.size(), 50u);
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 49);
}

TEST(RngTest, PermutationActuallyShuffles) {
  Rng rng(41);
  const std::vector<int> perm = rng.Permutation(100);
  int fixed_points = 0;
  for (int i = 0; i < 100; ++i) {
    if (perm[i] == i) ++fixed_points;
  }
  EXPECT_LT(fixed_points, 15);  // E[fixed points] = 1
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(43);
  const std::vector<int> sample = rng.SampleWithoutReplacement(20, 8);
  std::set<int> seen(sample.begin(), sample.end());
  EXPECT_EQ(sample.size(), 8u);
  EXPECT_EQ(seen.size(), 8u);
  for (int v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 20);
  }
}

TEST(RngTest, SampleWithoutReplacementFullSet) {
  Rng rng(47);
  const std::vector<int> sample = rng.SampleWithoutReplacement(5, 5);
  std::set<int> seen(sample.begin(), sample.end());
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(53);
  Rng child = parent.Fork();
  // The child stream must not replicate the parent's continuation.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.NextU64() == child.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ShuffleKeepsMultiset) {
  Rng rng(59);
  std::vector<int> items = {1, 1, 2, 3, 5, 8, 13};
  std::vector<int> original = items;
  rng.Shuffle(items);
  std::sort(items.begin(), items.end());
  std::sort(original.begin(), original.end());
  EXPECT_EQ(items, original);
}

TEST(RngDeathTest, InvalidArgumentsAbort) {
  Rng rng(61);
  EXPECT_DEATH(rng.UniformInt(0), "GRADGCL_CHECK");
  EXPECT_DEATH(rng.Bernoulli(1.5), "GRADGCL_CHECK");
  EXPECT_DEATH(rng.SampleWithoutReplacement(3, 5), "GRADGCL_CHECK");
  EXPECT_DEATH(rng.Uniform(2.0, 1.0), "GRADGCL_CHECK");
}

// Determinism must hold across every component that takes a seed; this
// parameterised sweep pins the raw stream for a few seeds.
class RngSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngSeedSweep, StreamIsReproducible) {
  Rng a(GetParam()), b(GetParam());
  for (int i = 0; i < 32; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
    EXPECT_DOUBLE_EQ(a.Normal(), b.Normal());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 1234567ULL,
                                           0xFFFFFFFFFFFFFFFFULL));

}  // namespace
}  // namespace gradgcl
