// Test battery for the streaming data pipeline (src/data/):
//
//   1. Corruption hardening — crafted shard/manifest files (truncated,
//      bad magic/version, negative and overflowing counts, index
//      offsets past EOF, misaligned records) must yield a clean
//      `false`, with zero heap allocations on the paths where a lying
//      header could otherwise size one (mirroring serialize_test's
//      LoadStateFile battery).
//   2. Round-trip property fuzz — ~1k random graphs (empty graphs,
//      isolated nodes, dense and one-hot features) through
//      ShardWriter -> mmap read-back, bitwise identical.
//   3. Streaming-vs-in-RAM determinism — TrainGraphSslStreamed over a
//      PrefetchReader reproduces TrainGraphSsl's loss trajectory
//      bit-for-bit at 1, 2, and 4 reader threads.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <new>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "data/prefetch_reader.h"
#include "data/shard_format.h"
#include "data/shard_reader.h"
#include "data/shard_writer.h"
#include "data/stream_profiles.h"
#include "datasets/molecule_universe.h"
#include "datasets/tu_synthetic.h"
#include "models/graphcl.h"
#include "train/trainer.h"

// Binary-wide heap-allocation counter (the obs_test idiom): the
// corruption tests assert that a rejecting reader never allocates
// memory sized from untrusted fields. The replaceable array forms
// forward here per the standard's default definitions.
namespace {
std::atomic<uint64_t> g_heap_new_calls{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_new_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace gradgcl::data {
namespace {

namespace fs = std::filesystem;

uint64_t HeapNewCalls() {
  return g_heap_new_calls.load(std::memory_order_relaxed);
}

// Fresh per-test directory under the gtest temp root.
std::string TestDir(const char* name) {
  const std::string dir = std::string(::testing::TempDir()) + "/" + name;
  fs::remove_all(dir);
  return dir;
}

std::vector<unsigned char> SlurpBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<unsigned char>(std::istreambuf_iterator<char>(in),
                                    std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path,
                    const std::vector<unsigned char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

template <typename T>
void Patch(std::vector<unsigned char>* bytes, size_t offset, T value) {
  ASSERT_LE(offset + sizeof(T), bytes->size());
  std::memcpy(bytes->data() + offset, &value, sizeof(T));
}

template <typename T>
T ReadAt(const std::vector<unsigned char>& bytes, size_t offset) {
  T value;
  EXPECT_LE(offset + sizeof(T), bytes.size());
  std::memcpy(&value, bytes.data() + offset, sizeof(T));
  return value;
}

template <typename T>
void Append(std::vector<unsigned char>* bytes, T value) {
  const size_t at = bytes->size();
  bytes->resize(at + sizeof(T));
  std::memcpy(bytes->data() + at, &value, sizeof(T));
}

// The reference graph behind the crafted-corruption battery. Dense
// (non-one-hot) features, so the record layout is (offsets from the
// start of the shard file, see AssertReferenceLayout):
//
//   header 48B | RecordHeader @48 | row_offsets @64 | neighbors @80
//   | features @96 (96B) | index {48, 192} @192 | EOF @208
Graph ReferenceGraph() {
  Graph g;
  g.num_nodes = 3;
  g.edges = {{0, 1}, {1, 2}};
  g.label = 1;
  g.features = Matrix(3, 4, 0.0);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 4; ++j) g.features(i, j) = 0.25 * (i * 4 + j) + 0.125;
  }
  return g;
}

// Writes the reference graph through ShardWriter and returns the shard
// file's bytes, pinning the documented layout so the Patch offsets
// below stay honest.
std::vector<unsigned char> ReferenceShardBytes(const char* dirname) {
  const std::string dir = TestDir(dirname);
  ShardWriter writer(dir, ShardWriterOptions{.feature_dim = 4});
  EXPECT_TRUE(writer.Add(ReferenceGraph()));
  EXPECT_TRUE(writer.Finalize());
  std::vector<unsigned char> bytes = SlurpBytes(dir + "/" + ShardFileName(0));
  EXPECT_EQ(bytes.size(), 208u);                       // full layout pin
  EXPECT_EQ(ReadAt<uint64_t>(bytes, 16), 192u);        // index_offset
  EXPECT_EQ(ReadAt<int32_t>(bytes, 48), 3);            // num_nodes
  EXPECT_EQ(ReadAt<int32_t>(bytes, 52), 2);            // num_edges
  EXPECT_EQ(ReadAt<int32_t>(bytes, 60), kFeatDenseF64);
  EXPECT_EQ(ReadAt<uint64_t>(bytes, 192), 48u);        // index[0]
  EXPECT_EQ(ReadAt<uint64_t>(bytes, 200), 192u);       // index[1] sentinel
  return bytes;
}

// Writes `bytes` to a file and asserts ShardReader::Open rejects it
// without allocating.
void ExpectOpenRejects(const char* name,
                       const std::vector<unsigned char>& bytes) {
  const std::string path =
      std::string(::testing::TempDir()) + "/" + name + ".ggsh";
  WriteFileBytes(path, bytes);
  ShardReader reader;
  const uint64_t before = HeapNewCalls();
  const bool ok = reader.Open(path);
  const uint64_t allocs = HeapNewCalls() - before;
  EXPECT_FALSE(ok) << name;
  EXPECT_EQ(allocs, 0u) << name;
  EXPECT_FALSE(reader.is_open());
}

// Writes `bytes`, asserts Open succeeds but ReadGraph(0) rejects;
// `expect_no_alloc` additionally pins the allocation-free rejection
// for the cases where corrupt counts could otherwise size one.
void ExpectRecordRejects(const char* name,
                         const std::vector<unsigned char>& bytes,
                         bool expect_no_alloc) {
  const std::string path =
      std::string(::testing::TempDir()) + "/" + name + ".ggsh";
  WriteFileBytes(path, bytes);
  ShardReader reader;
  ASSERT_TRUE(reader.Open(path)) << name;
  Graph g;
  const uint64_t before = HeapNewCalls();
  const bool ok = reader.ReadGraph(0, &g);
  const uint64_t allocs = HeapNewCalls() - before;
  EXPECT_FALSE(ok) << name;
  if (expect_no_alloc) {
    EXPECT_EQ(allocs, 0u) << name;
  }
}

// Random graph for the round-trip fuzz: occasionally empty, often with
// isolated nodes, features either exactly one-hot (compact encoding)
// or dense Gaussian (f64 encoding).
Graph RandomGraph(Rng& rng, int d) {
  Graph g;
  g.num_nodes = rng.UniformInt(13);  // 0..12, 0 = empty graph
  const int n = g.num_nodes;
  if (n >= 2 && !rng.Bernoulli(0.15)) {  // 15%: edgeless (isolated nodes)
    std::set<std::pair<int, int>> edges;
    const int attempts = rng.UniformInt(2 * n + 1);
    for (int k = 0; k < attempts; ++k) {
      int u = rng.UniformInt(n);
      int v = rng.UniformInt(n);
      if (u == v) continue;
      if (u > v) std::swap(u, v);
      edges.insert({u, v});
    }
    g.edges.assign(edges.begin(), edges.end());
  }
  if (rng.Bernoulli(0.5)) {
    g.features = Matrix(n, d, 0.0);
    for (int i = 0; i < n; ++i) g.features(i, rng.UniformInt(d)) = 1.0;
  } else {
    g.features = Matrix::RandomNormal(n, d, rng);
  }
  g.label = rng.Bernoulli(0.3) ? rng.UniformInt(5) : -1;
  return g;
}

// ---------------------------------------------------------------------------
// Round trips
// ---------------------------------------------------------------------------

TEST(ShardRoundTripTest, SingleGraphDense) {
  const std::string dir = TestDir("rt_single");
  const Graph original = ReferenceGraph();
  ShardWriter writer(dir, ShardWriterOptions{.feature_dim = 4});
  ASSERT_TRUE(writer.Add(original));
  ASSERT_TRUE(writer.Finalize());
  EXPECT_EQ(writer.graphs_written(), 1);

  ShardedDataset ds;
  ASSERT_TRUE(ds.Open(dir));
  EXPECT_EQ(ds.num_graphs(), 1);
  EXPECT_EQ(ds.feature_dim(), 4);
  EXPECT_EQ(ds.num_shards(), 1);
  Graph loaded;
  ASSERT_TRUE(ds.ReadGraph(0, &loaded));
  EXPECT_TRUE(GraphsBitwiseEqual(original, loaded));
}

TEST(ShardRoundTripTest, EmptyAndEdgelessGraphs) {
  const std::string dir = TestDir("rt_edge_cases");
  std::vector<Graph> originals;
  {
    Graph empty;  // 0 nodes, 0 edges
    empty.features = Matrix(0, 3, 0.0);
    originals.push_back(empty);
  }
  {
    Graph isolated;  // nodes but no edges
    isolated.num_nodes = 5;
    isolated.features = Matrix(5, 3, 0.0);
    for (int i = 0; i < 5; ++i) isolated.features(i, i % 3) = 1.0;
    isolated.label = 2;
    originals.push_back(isolated);
  }
  ShardWriter writer(dir, ShardWriterOptions{.feature_dim = 3});
  for (const Graph& g : originals) ASSERT_TRUE(writer.Add(g));
  ASSERT_TRUE(writer.Finalize());

  ShardedDataset ds;
  ASSERT_TRUE(ds.Open(dir));
  ASSERT_EQ(ds.num_graphs(), 2);
  const std::vector<Graph> loaded = ds.ReadAll();
  for (size_t i = 0; i < originals.size(); ++i) {
    EXPECT_TRUE(GraphsBitwiseEqual(originals[i], loaded[i])) << i;
  }
}

TEST(ShardRoundTripTest, EmptyDatasetWritesOneEmptyShard) {
  const std::string dir = TestDir("rt_empty_dataset");
  ShardWriter writer(dir, ShardWriterOptions{.feature_dim = 3});
  ASSERT_TRUE(writer.Finalize());
  EXPECT_EQ(writer.graphs_written(), 0);

  ShardedDataset ds;
  ASSERT_TRUE(ds.Open(dir));
  EXPECT_EQ(ds.num_graphs(), 0);
  EXPECT_EQ(ds.num_shards(), 1);
  EXPECT_TRUE(ds.ReadAll().empty());
}

TEST(ShardRoundTripTest, RolloverSplitsShardsAtThreshold) {
  const std::string dir = TestDir("rt_rollover");
  Rng rng(7);
  std::vector<Graph> originals;
  for (int i = 0; i < 10; ++i) originals.push_back(RandomGraph(rng, 5));
  ShardWriter writer(
      dir, ShardWriterOptions{.feature_dim = 5, .graphs_per_shard = 4});
  for (const Graph& g : originals) ASSERT_TRUE(writer.Add(g));
  ASSERT_TRUE(writer.Finalize());
  EXPECT_EQ(writer.num_shards(), 3);  // 4 + 4 + 2

  ShardedDataset ds;
  ASSERT_TRUE(ds.Open(dir));
  EXPECT_EQ(ds.num_shards(), 3);
  ASSERT_EQ(ds.num_graphs(), 10);
  for (int i = 0; i < 10; ++i) {
    Graph loaded;
    ASSERT_TRUE(ds.ReadGraph(i, &loaded));
    EXPECT_TRUE(GraphsBitwiseEqual(originals[static_cast<size_t>(i)], loaded))
        << i;
  }
}

TEST(ShardRoundTripTest, FuzzThousandRandomGraphs) {
  const std::string dir = TestDir("rt_fuzz");
  Rng rng(20240809);
  std::vector<Graph> originals;
  originals.reserve(1000);
  for (int i = 0; i < 1000; ++i) originals.push_back(RandomGraph(rng, 6));

  ShardWriter writer(
      dir, ShardWriterOptions{.feature_dim = 6, .graphs_per_shard = 97});
  for (const Graph& g : originals) ASSERT_TRUE(writer.Add(g));
  ASSERT_TRUE(writer.Finalize());
  EXPECT_EQ(writer.num_shards(), 11);  // ceil(1000 / 97)

  ShardedDataset ds;
  ASSERT_TRUE(ds.Open(dir));
  ASSERT_EQ(ds.num_graphs(), 1000);
  // Read back out of order (reverse) to exercise random addressing
  // across shard boundaries.
  for (int i = 999; i >= 0; --i) {
    Graph loaded;
    ASSERT_TRUE(ds.ReadGraph(i, &loaded));
    ASSERT_TRUE(GraphsBitwiseEqual(originals[static_cast<size_t>(i)], loaded))
        << "graph " << i;
  }
}

TEST(ShardRoundTripTest, DropPageCacheKeepsReadsWorking) {
  const std::string dir = TestDir("rt_dropcache");
  const Graph original = ReferenceGraph();
  ShardWriter writer(dir, ShardWriterOptions{.feature_dim = 4});
  ASSERT_TRUE(writer.Add(original));
  ASSERT_TRUE(writer.Finalize());
  ShardedDataset ds;
  ASSERT_TRUE(ds.Open(dir));
  ds.DropPageCache();  // best-effort; reads must still decode
  Graph loaded;
  ASSERT_TRUE(ds.ReadGraph(0, &loaded));
  EXPECT_TRUE(GraphsBitwiseEqual(original, loaded));
}

// ---------------------------------------------------------------------------
// Streaming profiles: on-disk bytes reproduce the in-RAM generators
// ---------------------------------------------------------------------------

TEST(StreamProfilesTest, TuDatasetRoundTripsBitwise) {
  TuProfile profile = TuProfileByName("MUTAG");
  profile.num_graphs = 30;
  const std::string dir = TestDir("sp_tu");
  ASSERT_TRUE(StreamTuDataset(profile, 11, dir, /*graphs_per_shard=*/13));

  const std::vector<Graph> in_ram = GenerateTuDataset(profile, 11);
  ShardedDataset ds;
  ASSERT_TRUE(ds.Open(dir));
  EXPECT_EQ(ds.num_shards(), 3);
  ASSERT_EQ(ds.num_graphs(), 30);
  const std::vector<Graph> streamed = ds.ReadAll();
  for (size_t i = 0; i < in_ram.size(); ++i) {
    EXPECT_TRUE(GraphsBitwiseEqual(in_ram[i], streamed[i])) << i;
  }
}

TEST(StreamProfilesTest, PretrainSetRoundTripsBitwiseAndPacksOneHot) {
  const std::string dir = TestDir("sp_zinc");
  ASSERT_TRUE(StreamPretrainSet(PretrainKind::kZinc, 300, 11, dir,
                                /*graphs_per_shard=*/128));
  const std::vector<Graph> in_ram =
      GeneratePretrainSet(PretrainKind::kZinc, 300, 11);

  ShardedDataset ds;
  ASSERT_TRUE(ds.Open(dir));
  EXPECT_EQ(ds.feature_dim(), kNumAtomTypes);
  ASSERT_EQ(ds.num_graphs(), 300);
  const std::vector<Graph> streamed = ds.ReadAll();
  for (size_t i = 0; i < in_ram.size(); ++i) {
    ASSERT_TRUE(GraphsBitwiseEqual(in_ram[i], streamed[i])) << i;
  }

  // The universe's one-hot atom features must select the compact u8
  // encoding — that is what keeps the at-scale profile ~5x smaller on
  // disk than dense f64 rows.
  const std::vector<unsigned char> bytes =
      SlurpBytes(dir + "/" + ShardFileName(0));
  EXPECT_EQ(ReadAt<int32_t>(bytes, 48 + 12), kFeatOneHotU8);
}

TEST(StreamProfilesTest, NodeDatasetRoundTripsItsSingleGraph) {
  NodeProfile profile;
  const std::string dir = TestDir("sp_node");
  ASSERT_TRUE(StreamNodeDataset(profile, 3, dir));
  const NodeDataset in_ram = GenerateNodeDataset(profile, 3);

  ShardedDataset ds;
  ASSERT_TRUE(ds.Open(dir));
  ASSERT_EQ(ds.num_graphs(), 1);
  Graph loaded;
  ASSERT_TRUE(ds.ReadGraph(0, &loaded));
  EXPECT_TRUE(GraphsBitwiseEqual(in_ram.graph, loaded));
}

TEST(StreamProfilesTest, UniverseAtScaleSmokeProfileStreams) {
  // Scaled-down smoke of the >= 1M-graph profile (bench_data runs the
  // full-size one): same code path, tiny counts.
  UniverseScaleProfile profile;
  profile.num_graphs = 200;
  profile.graphs_per_shard = 64;
  const std::string dir = TestDir("sp_universe_smoke");
  ASSERT_TRUE(StreamMoleculeUniverseAtScale(profile, dir));

  ShardedDataset ds;
  ASSERT_TRUE(ds.Open(dir));
  EXPECT_EQ(ds.num_graphs(), 200);
  EXPECT_EQ(ds.num_shards(), 4);  // ceil(200 / 64)
  // Spot-check the first/last graphs against the in-RAM generator.
  const std::vector<Graph> in_ram =
      GeneratePretrainSet(PretrainKind::kZinc, 200, profile.seed);
  Graph first, last;
  ASSERT_TRUE(ds.ReadGraph(0, &first));
  ASSERT_TRUE(ds.ReadGraph(199, &last));
  EXPECT_TRUE(GraphsBitwiseEqual(in_ram.front(), first));
  EXPECT_TRUE(GraphsBitwiseEqual(in_ram.back(), last));
}

// ---------------------------------------------------------------------------
// Corruption battery: shard headers and indexes
// ---------------------------------------------------------------------------

TEST(ShardCorruptionTest, MissingFileFails) {
  ShardReader reader;
  EXPECT_FALSE(reader.Open("/nonexistent/dir/shard-00000.ggsh"));
}

TEST(ShardCorruptionTest, EmptyFileFails) {
  ExpectOpenRejects("empty", {});
}

TEST(ShardCorruptionTest, TruncatedHeaderFails) {
  std::vector<unsigned char> bytes = ReferenceShardBytes("c_trunc_hdr");
  bytes.resize(20);
  ExpectOpenRejects("trunc_hdr", bytes);
}

TEST(ShardCorruptionTest, TruncatedIndexFails) {
  std::vector<unsigned char> bytes = ReferenceShardBytes("c_trunc_idx");
  bytes.resize(200);  // chops the index end sentinel
  ExpectOpenRejects("trunc_idx", bytes);
}

TEST(ShardCorruptionTest, ShuffledMagicFails) {
  std::vector<unsigned char> bytes = ReferenceShardBytes("c_magic");
  const char shuffled[4] = {'H', 'S', 'G', 'G'};
  std::memcpy(bytes.data(), shuffled, 4);
  ExpectOpenRejects("magic", bytes);
}

TEST(ShardCorruptionTest, WrongVersionFails) {
  std::vector<unsigned char> bytes = ReferenceShardBytes("c_version");
  Patch<uint32_t>(&bytes, 4, kFormatVersion + 1);
  ExpectOpenRejects("version", bytes);
}

TEST(ShardCorruptionTest, OverflowingNumGraphsFails) {
  std::vector<unsigned char> bytes = ReferenceShardBytes("c_huge_ng");
  // Claims 2^30 graphs: (ng + 1) * 8 would dwarf the file. The 64-bit
  // header math must reject it without trying to read (or allocate)
  // an 8 GiB index.
  Patch<uint32_t>(&bytes, 8, 1u << 30);
  ExpectOpenRejects("huge_ng", bytes);
}

TEST(ShardCorruptionTest, ZeroFeatureDimFails) {
  std::vector<unsigned char> bytes = ReferenceShardBytes("c_zero_dim");
  Patch<uint32_t>(&bytes, 12, 0);
  ExpectOpenRejects("zero_dim", bytes);
}

TEST(ShardCorruptionTest, OverflowingFeatureDimFails) {
  std::vector<unsigned char> bytes = ReferenceShardBytes("c_huge_dim");
  Patch<uint32_t>(&bytes, 12, 1u << 24);  // > kMaxFeatureDim
  ExpectOpenRejects("huge_dim", bytes);
}

TEST(ShardCorruptionTest, IndexOffsetPastEofFails) {
  std::vector<unsigned char> bytes = ReferenceShardBytes("c_idx_eof");
  Patch<uint64_t>(&bytes, 16, 100000);  // index_offset
  Patch<uint64_t>(&bytes, 24, 100000);  // payload_end (kept in agreement)
  ExpectOpenRejects("idx_eof", bytes);
}

TEST(ShardCorruptionTest, MisalignedIndexOffsetFails) {
  std::vector<unsigned char> bytes = ReferenceShardBytes("c_idx_align");
  Patch<uint64_t>(&bytes, 16, 188);  // not 8-aligned
  Patch<uint64_t>(&bytes, 24, 188);
  ExpectOpenRejects("idx_align", bytes);
}

TEST(ShardCorruptionTest, PayloadEndDisagreeingWithIndexOffsetFails) {
  std::vector<unsigned char> bytes = ReferenceShardBytes("c_payload_end");
  Patch<uint64_t>(&bytes, 24, 184);
  ExpectOpenRejects("payload_end", bytes);
}

TEST(ShardCorruptionTest, FirstIndexEntryNotAtHeaderEndFails) {
  std::vector<unsigned char> bytes = ReferenceShardBytes("c_idx0");
  Patch<uint64_t>(&bytes, 192, 56);
  ExpectOpenRejects("idx0", bytes);
}

TEST(ShardCorruptionTest, MisalignedIndexEntryFails) {
  std::vector<unsigned char> bytes = ReferenceShardBytes("c_idx_entry_align");
  Patch<uint64_t>(&bytes, 192, 52);  // in bounds but not 8-aligned
  ExpectOpenRejects("idx_entry_align", bytes);
}

TEST(ShardCorruptionTest, IndexSentinelPastIndexOffsetFails) {
  std::vector<unsigned char> bytes = ReferenceShardBytes("c_idx_sentinel");
  Patch<uint64_t>(&bytes, 200, 500);  // index[1] must equal index_offset
  ExpectOpenRejects("idx_sentinel", bytes);
}

TEST(ShardCorruptionTest, NonMonotoneIndexFails) {
  // Two-graph shard so a middle entry exists to break monotonicity.
  const std::string dir = TestDir("c_monotone_src");
  ShardWriter writer(dir, ShardWriterOptions{.feature_dim = 4});
  ASSERT_TRUE(writer.Add(ReferenceGraph()));
  ASSERT_TRUE(writer.Add(ReferenceGraph()));
  ASSERT_TRUE(writer.Finalize());
  std::vector<unsigned char> bytes = SlurpBytes(dir + "/" + ShardFileName(0));
  const uint64_t index_offset = ReadAt<uint64_t>(bytes, 16);
  Patch<uint64_t>(&bytes, static_cast<size_t>(index_offset) + 8, 40);
  ExpectOpenRejects("monotone", bytes);
}

// ---------------------------------------------------------------------------
// Corruption battery: record bodies (Open succeeds, ReadGraph rejects)
// ---------------------------------------------------------------------------

TEST(RecordCorruptionTest, NegativeNumNodesFails) {
  std::vector<unsigned char> bytes = ReferenceShardBytes("c_neg_n");
  Patch<int32_t>(&bytes, 48, -1);
  ExpectRecordRejects("neg_n", bytes, /*expect_no_alloc=*/true);
}

TEST(RecordCorruptionTest, NegativeNumEdgesFails) {
  std::vector<unsigned char> bytes = ReferenceShardBytes("c_neg_e");
  Patch<int32_t>(&bytes, 52, -3);
  ExpectRecordRejects("neg_e", bytes, /*expect_no_alloc=*/true);
}

TEST(RecordCorruptionTest, OverflowingNumNodesFails) {
  // INT32_MAX nodes: (n + 1) * 4 row-offset bytes alone exceed the
  // record extent; the 64-bit extent math must reject before sizing
  // anything from the lie.
  std::vector<unsigned char> bytes = ReferenceShardBytes("c_big_n");
  Patch<int32_t>(&bytes, 48, INT32_MAX);
  ExpectRecordRejects("big_n", bytes, /*expect_no_alloc=*/true);
}

TEST(RecordCorruptionTest, OverflowingNumEdgesFails) {
  std::vector<unsigned char> bytes = ReferenceShardBytes("c_big_e");
  Patch<int32_t>(&bytes, 52, INT32_MAX);
  ExpectRecordRejects("big_e", bytes, /*expect_no_alloc=*/true);
}

TEST(RecordCorruptionTest, UnknownFeatureEncodingFails) {
  std::vector<unsigned char> bytes = ReferenceShardBytes("c_encoding");
  Patch<int32_t>(&bytes, 60, 7);
  ExpectRecordRejects("encoding", bytes, /*expect_no_alloc=*/true);
}

TEST(RecordCorruptionTest, RowOffsetsNotStartingAtZeroFails) {
  std::vector<unsigned char> bytes = ReferenceShardBytes("c_row0");
  Patch<uint32_t>(&bytes, 64, 1);
  ExpectRecordRejects("row0", bytes, /*expect_no_alloc=*/true);
}

TEST(RecordCorruptionTest, RowOffsetsEndMismatchFails) {
  std::vector<unsigned char> bytes = ReferenceShardBytes("c_rown");
  Patch<uint32_t>(&bytes, 76, 5);  // row_offsets[n] != 2e
  ExpectRecordRejects("rown", bytes, /*expect_no_alloc=*/true);
}

TEST(RecordCorruptionTest, NeighborOutOfRangeFails) {
  std::vector<unsigned char> bytes = ReferenceShardBytes("c_nbr_range");
  Patch<int32_t>(&bytes, 80, 7);  // node 0's neighbour, n == 3
  ExpectRecordRejects("nbr_range", bytes, /*expect_no_alloc=*/true);
}

TEST(RecordCorruptionTest, SelfLoopFails) {
  std::vector<unsigned char> bytes = ReferenceShardBytes("c_self_loop");
  Patch<int32_t>(&bytes, 80, 0);  // node 0 adjacent to itself
  ExpectRecordRejects("self_loop", bytes, /*expect_no_alloc=*/true);
}

TEST(RecordCorruptionTest, DuplicateNeighborFails) {
  // Node 1's row is [0, 2] at bytes 84, 88; [2, 2] breaks the
  // strictly-ascending row invariant (duplicate edge).
  std::vector<unsigned char> bytes = ReferenceShardBytes("c_dup_nbr");
  Patch<int32_t>(&bytes, 84, 2);
  ExpectRecordRejects("dup_nbr", bytes, /*expect_no_alloc=*/true);
}

TEST(RecordCorruptionTest, AsymmetricAdjacencyFails) {
  // Rows [0,2), [2,3), [3,4) with neighbours [1,2,2,1]: every row is
  // valid in isolation, but the canonical (v > u) reconstruction finds
  // 3 edges where the header claims 2.
  std::vector<unsigned char> bytes = ReferenceShardBytes("c_asym");
  Patch<uint32_t>(&bytes, 68, 2);  // row_offsets[1]
  Patch<int32_t>(&bytes, 84, 2);   // second neighbour of node 0
  ExpectRecordRejects("asym", bytes, /*expect_no_alloc=*/false);
}

TEST(RecordCorruptionTest, RecordExtentSmallerThanHeaderFails) {
  // Two-graph shard; shrink record 0's extent below sizeof(RecordHeader)
  // via the index (which stays monotone and aligned, so Open accepts).
  const std::string dir = TestDir("c_extent_src");
  ShardWriter writer(dir, ShardWriterOptions{.feature_dim = 4});
  ASSERT_TRUE(writer.Add(ReferenceGraph()));
  ASSERT_TRUE(writer.Add(ReferenceGraph()));
  ASSERT_TRUE(writer.Finalize());
  std::vector<unsigned char> bytes = SlurpBytes(dir + "/" + ShardFileName(0));
  const uint64_t index_offset = ReadAt<uint64_t>(bytes, 16);
  Patch<uint64_t>(&bytes, static_cast<size_t>(index_offset) + 8, 56);
  ExpectRecordRejects("extent", bytes, /*expect_no_alloc=*/true);
}

TEST(RecordCorruptionTest, OneHotTypeBeyondFeatureDimFails) {
  // One-hot reference shard: features are 3 type bytes at offset 96.
  const std::string dir = TestDir("c_onehot_src");
  Graph g = ReferenceGraph();
  g.features = Matrix(3, 4, 0.0);
  for (int i = 0; i < 3; ++i) g.features(i, i) = 1.0;
  ShardWriter writer(dir, ShardWriterOptions{.feature_dim = 4});
  ASSERT_TRUE(writer.Add(g));
  ASSERT_TRUE(writer.Finalize());
  std::vector<unsigned char> bytes = SlurpBytes(dir + "/" + ShardFileName(0));
  ASSERT_EQ(ReadAt<int32_t>(bytes, 60), kFeatOneHotU8);
  Patch<uint8_t>(&bytes, 96, 200);  // type 200 >= feature_dim 4
  ExpectRecordRejects("onehot_type", bytes, /*expect_no_alloc=*/false);
}

TEST(RecordCorruptionTest, SelfConsistentGiantRecordIsCappedWithoutAlloc) {
  // Hand-crafted shard whose single record is entirely self-consistent
  // — header, index, and extents all agree — but claims n = 4096 nodes
  // at feature_dim = 65535 in one-hot encoding. Decoding would
  // materialise a 4096 x 65535 dense matrix (~2 GiB); the
  // kMaxRecordElements cap must reject it before the allocation.
  const int64_t n = 4096;
  const int64_t d = 65535;
  const int64_t csr_end = 16 + (n + 1) * 4;            // no neighbours
  const int64_t record_bytes = AlignUp8(AlignUp8(csr_end) + n);
  const uint64_t index_offset = static_cast<uint64_t>(48 + record_bytes);

  std::vector<unsigned char> bytes;
  bytes.reserve(static_cast<size_t>(index_offset) + 16);
  for (char c : {'G', 'G', 'S', 'H'}) Append<char>(&bytes, c);
  Append<uint32_t>(&bytes, kFormatVersion);
  Append<uint32_t>(&bytes, 1);                          // num_graphs
  Append<uint32_t>(&bytes, static_cast<uint32_t>(d));   // feature_dim
  Append<uint64_t>(&bytes, index_offset);
  Append<uint64_t>(&bytes, index_offset);               // payload_end
  Append<uint64_t>(&bytes, 0);
  Append<uint64_t>(&bytes, 0);
  ASSERT_EQ(bytes.size(), 48u);
  Append<int32_t>(&bytes, static_cast<int32_t>(n));
  Append<int32_t>(&bytes, 0);                           // num_edges
  Append<int32_t>(&bytes, -1);                          // label
  Append<int32_t>(&bytes, kFeatOneHotU8);
  for (int64_t i = 0; i <= n; ++i) Append<uint32_t>(&bytes, 0);
  bytes.resize(static_cast<size_t>(48 + AlignUp8(csr_end)), 0);  // pad
  bytes.resize(static_cast<size_t>(index_offset), 0);   // one-hot types 0
  Append<uint64_t>(&bytes, 48);
  Append<uint64_t>(&bytes, index_offset);

  ExpectRecordRejects("giant_record", bytes, /*expect_no_alloc=*/true);
}

// ---------------------------------------------------------------------------
// Corruption battery: manifests
// ---------------------------------------------------------------------------

// Writes a two-shard reference dataset and returns its directory.
std::string ReferenceDatasetDir(const char* dirname) {
  const std::string dir = TestDir(dirname);
  ShardWriter writer(
      dir, ShardWriterOptions{.feature_dim = 4, .graphs_per_shard = 1});
  EXPECT_TRUE(writer.Add(ReferenceGraph()));
  EXPECT_TRUE(writer.Add(ReferenceGraph()));
  EXPECT_TRUE(writer.Finalize());
  return dir;
}

TEST(ManifestCorruptionTest, MissingManifestFails) {
  const std::string dir = TestDir("m_missing");
  fs::create_directory(dir);
  ShardedDataset ds;
  EXPECT_FALSE(ds.Open(dir));
}

TEST(ManifestCorruptionTest, BadMagicFails) {
  const std::string dir = ReferenceDatasetDir("m_magic");
  const std::string path = dir + "/" + kManifestName;
  std::vector<unsigned char> bytes = SlurpBytes(path);
  bytes[0] = 'X';
  WriteFileBytes(path, bytes);
  ShardedDataset ds;
  EXPECT_FALSE(ds.Open(dir));
}

TEST(ManifestCorruptionTest, TruncatedManifestFails) {
  const std::string dir = ReferenceDatasetDir("m_trunc");
  const std::string path = dir + "/" + kManifestName;
  std::vector<unsigned char> bytes = SlurpBytes(path);
  ASSERT_EQ(bytes.size(), 24u + 2 * 8u);
  bytes.resize(20);
  WriteFileBytes(path, bytes);
  ShardedDataset ds;
  EXPECT_FALSE(ds.Open(dir));
}

TEST(ManifestCorruptionTest, ShardCountDisagreeingWithSizeFails) {
  const std::string dir = ReferenceDatasetDir("m_nshards");
  const std::string path = dir + "/" + kManifestName;
  std::vector<unsigned char> bytes = SlurpBytes(path);
  Patch<uint32_t>(&bytes, 8, 5);  // num_shards, but only 2 counts follow
  WriteFileBytes(path, bytes);
  ShardedDataset ds;
  EXPECT_FALSE(ds.Open(dir));
}

TEST(ManifestCorruptionTest, TotalGraphsMismatchFails) {
  const std::string dir = ReferenceDatasetDir("m_total");
  const std::string path = dir + "/" + kManifestName;
  std::vector<unsigned char> bytes = SlurpBytes(path);
  Patch<uint64_t>(&bytes, 16, 99);  // total_graphs
  WriteFileBytes(path, bytes);
  ShardedDataset ds;
  EXPECT_FALSE(ds.Open(dir));
}

TEST(ManifestCorruptionTest, PerShardCountMismatchFails) {
  const std::string dir = ReferenceDatasetDir("m_count");
  const std::string path = dir + "/" + kManifestName;
  std::vector<unsigned char> bytes = SlurpBytes(path);
  Patch<uint64_t>(&bytes, 24, 2);  // shard 0 claims 2 graphs, holds 1
  WriteFileBytes(path, bytes);
  ShardedDataset ds;
  EXPECT_FALSE(ds.Open(dir));
}

TEST(ManifestCorruptionTest, MissingShardFileFails) {
  const std::string dir = ReferenceDatasetDir("m_lost_shard");
  fs::remove(dir + "/" + ShardFileName(1));
  ShardedDataset ds;
  EXPECT_FALSE(ds.Open(dir));
}

TEST(ManifestCorruptionTest, ShardFeatureDimDisagreeingFails) {
  const std::string dir = ReferenceDatasetDir("m_dim");
  const std::string path = dir + "/" + ShardFileName(0);
  std::vector<unsigned char> bytes = SlurpBytes(path);
  Patch<uint32_t>(&bytes, 12, 5);  // shard header says 5, manifest says 4
  WriteFileBytes(path, bytes);
  ShardedDataset ds;
  EXPECT_FALSE(ds.Open(dir));
}

// ---------------------------------------------------------------------------
// PrefetchReader
// ---------------------------------------------------------------------------

// 23 random graphs across 4 shards for the prefetch tests.
std::string PrefetchDatasetDir(const char* dirname,
                               std::vector<Graph>* originals) {
  const std::string dir = TestDir(dirname);
  Rng rng(5);
  originals->clear();
  for (int i = 0; i < 23; ++i) originals->push_back(RandomGraph(rng, 5));
  ShardWriter writer(
      dir, ShardWriterOptions{.feature_dim = 5, .graphs_per_shard = 7});
  for (const Graph& g : *originals) EXPECT_TRUE(writer.Add(g));
  EXPECT_TRUE(writer.Finalize());
  return dir;
}

TEST(PrefetchReaderTest, DeliversPlannedBatchesInOrder) {
  std::vector<Graph> originals;
  const std::string dir = PrefetchDatasetDir("pf_order", &originals);
  ShardedDataset ds;
  ASSERT_TRUE(ds.Open(dir));

  const std::vector<std::vector<int>> plan = {
      {5, 1, 9}, {0, 22, 3, 7}, {}, {2, 2, 14, 18, 11}};  // repeats allowed
  for (int threads : {1, 2, 4}) {
    for (int depth : {1, 3}) {
      PrefetchReader reader(
          ds, PrefetchOptions{.num_threads = threads, .depth = depth});
      EXPECT_EQ(reader.num_threads(), threads);
      EXPECT_EQ(reader.depth(), depth);
      EXPECT_EQ(reader.num_graphs(), 23);
      reader.BeginEpoch(plan);
      std::vector<Graph> batch;
      for (const std::vector<int>& planned : plan) {
        ASSERT_TRUE(reader.NextBatch(&batch));
        ASSERT_EQ(batch.size(), planned.size());
        for (size_t k = 0; k < planned.size(); ++k) {
          EXPECT_TRUE(GraphsBitwiseEqual(
              originals[static_cast<size_t>(planned[k])], batch[k]))
              << "threads=" << threads << " depth=" << depth << " item=" << k;
        }
      }
      EXPECT_FALSE(reader.NextBatch(&batch));  // plan exhausted
    }
  }
}

TEST(PrefetchReaderTest, SupportsBackToBackEpochs) {
  std::vector<Graph> originals;
  const std::string dir = PrefetchDatasetDir("pf_epochs", &originals);
  ShardedDataset ds;
  ASSERT_TRUE(ds.Open(dir));
  PrefetchReader reader(ds, PrefetchOptions{.num_threads = 2, .depth = 2});

  int64_t total_items = 0;
  for (int epoch = 0; epoch < 3; ++epoch) {
    Rng rng(100 + epoch);
    const std::vector<std::vector<int>> plan = MakeMiniBatches(23, 6, rng);
    reader.BeginEpoch(plan);
    std::vector<Graph> batch;
    for (const std::vector<int>& planned : plan) {
      ASSERT_TRUE(reader.NextBatch(&batch));
      ASSERT_EQ(batch.size(), planned.size());
      for (size_t k = 0; k < planned.size(); ++k) {
        EXPECT_TRUE(GraphsBitwiseEqual(
            originals[static_cast<size_t>(planned[k])], batch[k]));
      }
      total_items += static_cast<int64_t>(planned.size());
    }
  }
  EXPECT_EQ(reader.graphs_read(), total_items);
}

TEST(PrefetchReaderTest, DepthDefaultsFromEnvironment) {
  std::vector<Graph> originals;
  const std::string dir = PrefetchDatasetDir("pf_env", &originals);
  ShardedDataset ds;
  ASSERT_TRUE(ds.Open(dir));
  ::setenv("GRADGCL_PREFETCH_DEPTH", "3", 1);
  {
    PrefetchReader reader(ds);
    EXPECT_EQ(reader.depth(), 3);
  }
  ::unsetenv("GRADGCL_PREFETCH_DEPTH");
  {
    PrefetchReader reader(ds);
    EXPECT_EQ(reader.depth(), 2);  // double buffering
  }
}

TEST(PrefetchReaderTest, CorruptShardSurfacesAsNextBatchFailure) {
  const std::string dir = TestDir("pf_corrupt");
  ShardWriter writer(dir, ShardWriterOptions{.feature_dim = 4});
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(writer.Add(ReferenceGraph()));
  ASSERT_TRUE(writer.Finalize());
  // Corrupt record 2's body after writing: negative node count. Open
  // still succeeds (header and index are intact).
  const std::string shard_path = dir + "/" + ShardFileName(0);
  std::vector<unsigned char> bytes = SlurpBytes(shard_path);
  const uint64_t rec2 = ReadAt<uint64_t>(
      bytes, static_cast<size_t>(ReadAt<uint64_t>(bytes, 16)) + 2 * 8);
  Patch<int32_t>(&bytes, static_cast<size_t>(rec2), -1);
  WriteFileBytes(shard_path, bytes);

  ShardedDataset ds;
  ASSERT_TRUE(ds.Open(dir));
  // depth = 1: the corrupt batch is not prefetched until the clean one
  // is consumed, so the failure surfaces exactly on the second call
  // (at depth >= 2 it may legitimately surface on the first).
  PrefetchReader reader(ds, PrefetchOptions{.num_threads = 2, .depth = 1});
  reader.BeginEpoch({{0, 1}, {2, 3}});
  std::vector<Graph> batch;
  ASSERT_TRUE(reader.NextBatch(&batch));   // {0, 1} decodes fine
  EXPECT_FALSE(reader.NextBatch(&batch));  // {2, 3} hits the corruption
}

// ---------------------------------------------------------------------------
// Streaming-vs-in-RAM training determinism
// ---------------------------------------------------------------------------

GraphClConfig BitIdentityModelConfig() {
  GraphClConfig config;
  config.encoder.in_dim = 8;
  config.encoder.hidden_dim = 16;
  config.encoder.out_dim = 16;
  config.encoder.num_layers = 2;
  config.proj_dim = 8;
  config.grad_gcl.weight = 0.5;  // exercise the GradGCL loss path too
  return config;
}

TuProfile BitIdentityProfile() {
  TuProfile profile;
  profile.name = "BITID";
  profile.num_graphs = 48;
  profile.avg_nodes = 10.0;
  profile.feature_dim = 8;
  return profile;
}

// The pipeline's central contract: training through mmap'd shards and
// a background prefetcher yields the *bit-identical* loss trajectory
// of the in-RAM path on the same seed — 51 optimiser steps (17 epochs
// x 3 batches), compared exactly, at 1, 2, and 4 reader threads.
TEST(StreamingDeterminismTest, LossTrajectoryBitIdenticalToInRam) {
  const TuProfile profile = BitIdentityProfile();
  const uint64_t data_seed = 2024;
  const std::string dir = TestDir("bitid");
  ASSERT_TRUE(StreamTuDataset(profile, data_seed, dir, /*graphs_per_shard=*/17));

  const std::vector<Graph> in_ram = GenerateTuDataset(profile, data_seed);
  ShardedDataset ds;
  ASSERT_TRUE(ds.Open(dir));
  ASSERT_EQ(ds.num_shards(), 3);
  ASSERT_EQ(ds.num_graphs(), 48);
  {
    const std::vector<Graph> streamed = ds.ReadAll();
    for (size_t i = 0; i < in_ram.size(); ++i) {
      ASSERT_TRUE(GraphsBitwiseEqual(in_ram[i], streamed[i])) << i;
    }
  }

  TrainOptions options;
  options.epochs = 17;     // x 3 batches/epoch = 51 steps
  options.batch_size = 16;
  options.lr = 0.01;
  options.seed = 5;

  std::vector<EpochStats> baseline;
  {
    Rng rng(42);
    GraphCl model(BitIdentityModelConfig(), rng);
    baseline = TrainGraphSsl(model, in_ram, options);
  }
  ASSERT_EQ(static_cast<int>(baseline.size()), options.epochs);

  for (int threads : {1, 2, 4}) {
    Rng rng(42);  // identical weight init
    GraphCl model(BitIdentityModelConfig(), rng);
    PrefetchReader source(ds, PrefetchOptions{.num_threads = threads});
    const std::vector<EpochStats> streamed =
        TrainGraphSslStreamed(model, source, options);
    ASSERT_EQ(streamed.size(), baseline.size()) << "threads=" << threads;
    for (size_t e = 0; e < baseline.size(); ++e) {
      // Exact double equality — bit identity, not tolerance.
      EXPECT_EQ(streamed[e].loss, baseline[e].loss)
          << "threads=" << threads << " epoch=" << e;
    }
    EXPECT_EQ(source.graphs_read(),
              static_cast<int64_t>(options.epochs) * 48);
  }
}

}  // namespace
}  // namespace gradgcl::data
