// Gradient-checks every differentiable op against central finite
// differences, plus tape-mechanics tests (accumulation, detach,
// re-entrancy). Correct gradients are the foundation the whole
// reproduction rests on.

#include <cmath>

#include <gtest/gtest.h>

#include "autograd/gradcheck.h"
#include "autograd/ops.h"
#include "tensor/ops.h"

namespace gradgcl {
namespace {

using VarList = std::vector<Variable>;

Variable Param(int rows, int cols, uint64_t seed, double scale = 1.0) {
  Rng rng(seed);
  return Variable(Matrix::RandomNormal(rows, cols, rng, 0.0, scale),
                  /*requires_grad=*/true);
}

void ExpectGradOk(
    const std::function<Variable(const VarList&)>& forward,
    VarList inputs, double tol = 1e-6) {
  const ag::GradCheckResult result =
      ag::CheckGradients(forward, std::move(inputs), 1e-5, tol);
  EXPECT_TRUE(result.ok) << "max error " << result.max_abs_error << " at "
                         << result.worst_entry;
}

TEST(AutogradOps, AddGradient) {
  ExpectGradOk(
      [](const VarList& in) { return ag::Sum(ag::Add(in[0], in[1])); },
      {Param(3, 4, 1), Param(3, 4, 2)});
}

TEST(AutogradOps, SubGradient) {
  ExpectGradOk(
      [](const VarList& in) {
        return ag::Sum(ag::Square(ag::Sub(in[0], in[1])));
      },
      {Param(3, 4, 3), Param(3, 4, 4)});
}

TEST(AutogradOps, ScalarOpsGradient) {
  ExpectGradOk(
      [](const VarList& in) {
        return ag::Sum(ag::ScalarAdd(ag::ScalarMul(in[0], -2.5), 3.0));
      },
      {Param(2, 5, 5)});
}

TEST(AutogradOps, HadamardGradient) {
  ExpectGradOk(
      [](const VarList& in) { return ag::Sum(ag::Hadamard(in[0], in[1])); },
      {Param(3, 3, 6), Param(3, 3, 7)});
}

TEST(AutogradOps, MatMulGradient) {
  ExpectGradOk(
      [](const VarList& in) {
        return ag::Sum(ag::Square(ag::MatMul(in[0], in[1])));
      },
      {Param(3, 4, 8), Param(4, 2, 9)});
}

TEST(AutogradOps, MatMulTransBGradient) {
  ExpectGradOk(
      [](const VarList& in) {
        return ag::Sum(ag::Square(ag::MatMulTransB(in[0], in[1])));
      },
      {Param(3, 4, 10), Param(5, 4, 11)});
}

TEST(AutogradOps, ConstLeftMatMulGradient) {
  Rng rng(12);
  const Matrix c = Matrix::RandomNormal(4, 3, rng);
  ExpectGradOk(
      [c](const VarList& in) {
        return ag::Sum(ag::Square(ag::ConstLeftMatMul(c, in[0])));
      },
      {Param(3, 5, 13)});
}

TEST(AutogradOps, SparseLeftMatMulGradient) {
  SparseMatrix s(3, 3, {{0, 1, 2.0}, {1, 0, -1.0}, {2, 2, 0.5}, {0, 0, 1.0}});
  ExpectGradOk(
      [s](const VarList& in) {
        return ag::Sum(ag::Square(ag::SparseLeftMatMul(s, in[0])));
      },
      {Param(3, 4, 14)});
}

TEST(AutogradOps, TransposeGradient) {
  ExpectGradOk(
      [](const VarList& in) {
        return ag::Sum(ag::Square(ag::Transpose(in[0])));
      },
      {Param(3, 5, 15)});
}

TEST(AutogradOps, ReluGradient) {
  // Keep values away from the kink at 0.
  Variable x = Param(4, 4, 16);
  Matrix v = x.value();
  for (int i = 0; i < v.size(); ++i) {
    if (std::abs(v.at_flat(i)) < 0.05) v.at_flat(i) = 0.1;
  }
  x.set_value(v);
  ExpectGradOk(
      [](const VarList& in) { return ag::Sum(ag::Square(ag::Relu(in[0]))); },
      {x});
}

TEST(AutogradOps, LeakyReluValueAndGradient) {
  Variable x(Matrix{{-2, 3}}, true);
  Variable y = ag::LeakyRelu(x, 0.1);
  EXPECT_DOUBLE_EQ(y.value()(0, 0), -0.2);
  EXPECT_DOUBLE_EQ(y.value()(0, 1), 3.0);
  Backward(ag::Sum(y));
  EXPECT_DOUBLE_EQ(x.grad()(0, 0), 0.1);
  EXPECT_DOUBLE_EQ(x.grad()(0, 1), 1.0);
}

TEST(AutogradOps, MaskedRowSoftmaxGradient) {
  Matrix mask(3, 4, 1.0);
  mask(0, 0) = 0.0;
  mask(1, 3) = 0.0;
  ExpectGradOk(
      [mask](const VarList& in) {
        return ag::Sum(ag::Square(ag::MaskedRowSoftmax(in[0], mask)));
      },
      {Param(3, 4, 70)});
}

TEST(AutogradOps, MaskedRowSoftmaxRespectsSupport) {
  Matrix mask(2, 3, 1.0);
  mask(0, 1) = 0.0;
  Variable x(Matrix{{5, 100, 5}, {1, 1, 1}});  // huge masked entry
  const Matrix y = ag::MaskedRowSoftmax(x, mask).value();
  EXPECT_DOUBLE_EQ(y(0, 1), 0.0);  // masked out despite the huge logit
  EXPECT_NEAR(y(0, 0), 0.5, 1e-12);
  EXPECT_NEAR(y(0, 2), 0.5, 1e-12);
  EXPECT_NEAR(y(1, 0) + y(1, 1) + y(1, 2), 1.0, 1e-12);
}

TEST(AutogradOps, TanhSigmoidExpGradients) {
  ExpectGradOk(
      [](const VarList& in) { return ag::Sum(ag::Tanh(in[0])); },
      {Param(3, 3, 17)});
  ExpectGradOk(
      [](const VarList& in) { return ag::Sum(ag::Sigmoid(in[0])); },
      {Param(3, 3, 18)});
  ExpectGradOk(
      [](const VarList& in) { return ag::Sum(ag::Exp(in[0])); },
      {Param(3, 3, 19, 0.5)});
}

TEST(AutogradOps, LogSqrtSquareReciprocalGradients) {
  // Strictly positive inputs for log/sqrt/reciprocal.
  Rng rng(20);
  Variable x(Matrix::RandomUniform(3, 3, rng, 0.5, 2.0), true);
  ExpectGradOk(
      [](const VarList& in) { return ag::Sum(ag::LogEps(in[0])); }, {x});
  Variable y(Matrix::RandomUniform(3, 3, rng, 0.5, 2.0), true);
  ExpectGradOk(
      [](const VarList& in) { return ag::Sum(ag::Sqrt(in[0])); }, {y});
  ExpectGradOk(
      [](const VarList& in) { return ag::Sum(ag::Square(in[0])); },
      {Param(3, 3, 21)});
  Variable z(Matrix::RandomUniform(3, 3, rng, 0.5, 2.0), true);
  ExpectGradOk(
      [](const VarList& in) { return ag::Sum(ag::Reciprocal(in[0])); }, {z},
      1e-5);
}

TEST(AutogradOps, ReductionGradients) {
  ExpectGradOk(
      [](const VarList& in) { return ag::Mean(ag::Square(in[0])); },
      {Param(4, 3, 22)});
  ExpectGradOk(
      [](const VarList& in) {
        return ag::Sum(ag::Square(ag::SumRows(in[0])));
      },
      {Param(4, 3, 23)});
  ExpectGradOk(
      [](const VarList& in) {
        return ag::Sum(ag::Square(ag::MeanRows(in[0])));
      },
      {Param(4, 3, 24)});
}

TEST(AutogradOps, RowNormalizeGradient) {
  ExpectGradOk(
      [](const VarList& in) {
        // Project onto a fixed direction so the gradient is nontrivial.
        return ag::Sum(ag::Square(ag::RowNormalize(in[0])));
      },
      {Param(4, 5, 25)});
}

TEST(AutogradOps, RowNormalizeIsScaleInvariant) {
  Variable x = Param(3, 4, 26);
  Variable y1 = ag::RowNormalize(x);
  Variable y2 = ag::RowNormalize(ag::ScalarMul(x, 7.3));
  EXPECT_TRUE(AllClose(y1.value(), y2.value(), 1e-12));
}

TEST(AutogradOps, RowPairDotGradient) {
  ExpectGradOk(
      [](const VarList& in) {
        return ag::Sum(ag::Square(ag::RowPairDot(in[0], in[1])));
      },
      {Param(4, 3, 27), Param(4, 3, 28)});
}

TEST(AutogradOps, ScaleRowsVarGradient) {
  ExpectGradOk(
      [](const VarList& in) {
        return ag::Sum(ag::Square(ag::ScaleRowsVar(in[0], in[1])));
      },
      {Param(4, 3, 29), Param(4, 1, 30)});
}

TEST(AutogradOps, PairwiseSquaredDistancesGradient) {
  ExpectGradOk(
      [](const VarList& in) {
        return ag::Mean(ag::PairwiseSquaredDistances(in[0], in[1]));
      },
      {Param(4, 3, 31), Param(3, 3, 32)},
      1e-5);
}

TEST(AutogradOps, LogSumExpRowsGradient) {
  Matrix mask(3, 4, 1.0);
  mask(0, 0) = 0.0;
  mask(2, 3) = 0.0;
  ExpectGradOk(
      [mask](const VarList& in) {
        return ag::Sum(ag::LogSumExpRows(in[0], mask));
      },
      {Param(3, 4, 33)});
}

TEST(AutogradOps, LogSumExpRowsStableAtLargeValues) {
  Matrix big(2, 3, 1000.0);
  big(0, 1) = 1001.0;
  Variable x(big, true);
  Variable lse = ag::LogSumExpRows(x, Matrix(2, 3, 1.0));
  EXPECT_TRUE(lse.value().AllFinite());
  EXPECT_NEAR(lse.value()(1, 0), 1000.0 + std::log(3.0), 1e-9);
}

TEST(AutogradOps, AddRowBroadcastGradient) {
  ExpectGradOk(
      [](const VarList& in) {
        return ag::Sum(ag::Square(ag::AddRowBroadcast(in[0], in[1])));
      },
      {Param(4, 3, 34), Param(1, 3, 35)});
}

TEST(AutogradOps, ConcatSliceGatherGradients) {
  ExpectGradOk(
      [](const VarList& in) {
        return ag::Sum(ag::Square(ag::ConcatRows(in[0], in[1])));
      },
      {Param(2, 3, 36), Param(3, 3, 37)});
  ExpectGradOk(
      [](const VarList& in) {
        return ag::Sum(ag::Square(ag::SliceRows(in[0], 1, 3)));
      },
      {Param(4, 3, 38)});
  ExpectGradOk(
      [](const VarList& in) {
        return ag::Sum(ag::Square(ag::GatherRows(in[0], {0, 2, 2, 1})));
      },
      {Param(3, 3, 39)});
}

TEST(AutogradOps, SegmentGradients) {
  const std::vector<int> segments = {0, 0, 1, 2, 2, 2};
  ExpectGradOk(
      [segments](const VarList& in) {
        return ag::Sum(ag::Square(ag::SegmentSum(in[0], segments, 3)));
      },
      {Param(6, 3, 40)});
  ExpectGradOk(
      [segments](const VarList& in) {
        return ag::Sum(ag::Square(ag::SegmentMean(in[0], segments, 3)));
      },
      {Param(6, 3, 41)});
}

TEST(AutogradOps, SegmentMeanHandlesEmptySegments) {
  const std::vector<int> segments = {0, 2};  // segment 1 is empty
  Variable x = Param(2, 2, 42);
  Variable out = ag::SegmentMean(x, segments, 3);
  EXPECT_DOUBLE_EQ(out.value()(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(out.value()(1, 1), 0.0);
}

TEST(AutogradOps, SoftmaxCrossEntropyGradient) {
  const std::vector<int> labels = {0, 2, 1, 2};
  ExpectGradOk(
      [labels](const VarList& in) {
        return ag::SoftmaxCrossEntropy(in[0], labels);
      },
      {Param(4, 3, 43)});
}

TEST(AutogradOps, SoftmaxCrossEntropyKnownValue) {
  // Uniform logits over c classes: CE = log(c).
  Variable logits(Matrix(2, 4, 0.0), true);
  Variable loss = ag::SoftmaxCrossEntropy(logits, {1, 3});
  EXPECT_NEAR(loss.scalar(), std::log(4.0), 1e-12);
}

TEST(AutogradOps, BceWithLogitsGradient) {
  Matrix targets{{1, 0}, {0, 1}, {1, 1}};
  ExpectGradOk(
      [targets](const VarList& in) {
        return ag::BinaryCrossEntropyWithLogits(in[0], targets);
      },
      {Param(3, 2, 44)});
}

TEST(AutogradOps, BceWithLogitsKnownValue) {
  // Zero logits: loss = log(2) regardless of the targets.
  Variable logits(Matrix(2, 2, 0.0), true);
  Variable loss =
      ag::BinaryCrossEntropyWithLogits(logits, Matrix{{1, 0}, {0, 1}});
  EXPECT_NEAR(loss.scalar(), std::log(2.0), 1e-12);
}

TEST(AutogradOps, BceWithLogitsStableAtExtremeLogits) {
  Variable logits(Matrix{{1000, -1000}}, true);
  Variable loss =
      ag::BinaryCrossEntropyWithLogits(logits, Matrix{{1, 0}});
  EXPECT_TRUE(loss.value().AllFinite());
  EXPECT_NEAR(loss.scalar(), 0.0, 1e-9);
}

TEST(AutogradOps, DropoutZeroProbabilityIsIdentity) {
  Rng rng(45);
  Variable x = Param(4, 4, 46);
  Variable y = ag::Dropout(x, 0.0, rng);
  EXPECT_TRUE(AllClose(x.value(), y.value()));
}

TEST(AutogradOps, DropoutPreservesExpectation) {
  Rng rng(47);
  Variable x(Matrix(200, 200, 1.0), true);
  Variable y = ag::Dropout(x, 0.3, rng);
  EXPECT_NEAR(y.value().Mean(), 1.0, 0.02);  // inverted dropout
}

// --- Tape mechanics ---------------------------------------------------------

TEST(AutogradTape, GradientAccumulatesAcrossBackwards) {
  Variable x = Param(2, 2, 48);
  Variable loss1 = ag::Sum(x);
  Backward(loss1);
  Matrix after_first = x.grad();
  Variable loss2 = ag::Sum(x);
  Backward(loss2);
  Matrix doubled = after_first;
  doubled *= 2.0;
  EXPECT_TRUE(AllClose(x.grad(), doubled, 1e-12));
}

TEST(AutogradTape, ZeroGradResets) {
  Variable x = Param(2, 2, 49);
  Backward(ag::Sum(x));
  x.ZeroGrad();
  EXPECT_DOUBLE_EQ(x.grad().FrobeniusNorm(), 0.0);
}

TEST(AutogradTape, DiamondGraphDoubleCounts) {
  // loss = sum(x + x): gradient must be 2 everywhere.
  Variable x = Param(2, 2, 50);
  Backward(ag::Sum(ag::Add(x, x)));
  EXPECT_TRUE(AllClose(x.grad(), Matrix(2, 2, 2.0), 1e-12));
}

TEST(AutogradTape, DetachBlocksGradient) {
  Variable x = Param(2, 2, 51);
  Variable loss = ag::Sum(ag::Hadamard(x.Detach(), x));
  Backward(loss);
  // d/dx of detach(x) * x is detach(x), not 2x.
  EXPECT_TRUE(AllClose(x.grad(), x.value(), 1e-12));
}

TEST(AutogradTape, ConstantsReceiveNoGradients) {
  Variable c(Matrix(2, 2, 3.0));  // requires_grad = false
  Variable x = Param(2, 2, 52);
  Backward(ag::Sum(ag::Hadamard(c, x)));
  EXPECT_TRUE(AllClose(x.grad(), c.value(), 1e-12));
  EXPECT_DOUBLE_EQ(c.grad().FrobeniusNorm(), 0.0);
}

TEST(AutogradTape, ParameterReuseAcrossGraphs) {
  // The same parameter node used in two separate forward passes (as an
  // optimiser would) accumulates both contributions.
  Variable w = Param(2, 2, 53);
  Backward(ag::Sum(ag::ScalarMul(w, 3.0)));
  Backward(ag::Sum(ag::ScalarMul(w, 4.0)));
  EXPECT_TRUE(AllClose(w.grad(), Matrix(2, 2, 7.0), 1e-12));
}

TEST(AutogradTape, DeepChainBackward) {
  Variable x = Param(2, 2, 54, 0.01);
  Variable h = x;
  for (int i = 0; i < 50; ++i) h = ag::Tanh(h);
  Backward(ag::Sum(h));
  EXPECT_TRUE(x.grad().AllFinite());
}

TEST(AutogradTapeDeathTest, NonScalarBackwardAborts) {
  Variable x = Param(2, 3, 55);
  EXPECT_DEATH(Backward(x), "scalar");
}

TEST(AutogradTapeDeathTest, NullVariableAborts) {
  Variable null;
  EXPECT_DEATH(Backward(null), "null");
  EXPECT_DEATH(null.value(), "null");
}

// --- Composite gradcheck sweep ------------------------------------------------

struct CompositeCase {
  int n;
  int d;
};

class CompositeSweep
    : public ::testing::TestWithParam<CompositeCase> {};

// An MLP-shaped composite touching matmul, bias broadcast, relu,
// normalisation, and reductions at several shapes.
TEST_P(CompositeSweep, MlpLikeCompositeGradOk) {
  const auto [n, d] = GetParam();
  Variable x = Param(n, d, 60 + n);
  Variable w = Param(d, d, 61 + d);
  Variable b = Param(1, d, 62 + n + d);
  ExpectGradOk(
      [](const VarList& in) {
        Variable h = ag::Relu(
            ag::AddRowBroadcast(ag::MatMul(in[0], in[1]), in[2]));
        return ag::Mean(ag::Square(ag::RowNormalize(h)));
      },
      {x, w, b}, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CompositeSweep,
    ::testing::Values(CompositeCase{2, 3}, CompositeCase{4, 4},
                      CompositeCase{6, 2}, CompositeCase{3, 8}));

}  // namespace
}  // namespace gradgcl
