// Tests of the paper's core contribution: the closed-form gradient
// features (Eq. 6 and friends), their consistency with the actual
// derivatives of the losses they mirror, and the combined GradGCL
// objective (Eqs. 18–19).

#include <cmath>

#include <gtest/gtest.h>

#include "autograd/gradcheck.h"
#include "core/grad_gcl_loss.h"
#include "tensor/ops.h"

namespace gradgcl {
namespace {

using VarList = std::vector<Variable>;

Variable Param(int rows, int cols, uint64_t seed) {
  Rng rng(seed);
  return Variable(Matrix::RandomNormal(rows, cols, rng), true);
}

void ExpectGradOk(const std::function<Variable(const VarList&)>& forward,
                  VarList inputs, double tol = 1e-5) {
  const ag::GradCheckResult result =
      ag::CheckGradients(forward, std::move(inputs), 1e-5, tol);
  EXPECT_TRUE(result.ok) << "max error " << result.max_abs_error << " at "
                         << result.worst_entry;
}

// Reference implementation of Eq. 6 written directly at the Matrix
// level (no autograd), used to pin the composite op.
Matrix Eq6Reference(const Matrix& u_raw, const Matrix& v_raw, double tau) {
  const Matrix u = RowNormalize(u_raw);
  const Matrix v = RowNormalize(v_raw);
  const int n = u.rows();
  const int d = u.cols();
  Matrix g(n, d, 0.0);
  for (int i = 0; i < n; ++i) {
    std::vector<double> w(n, 0.0);
    for (int j = 0; j < n; ++j) {
      if (j == i) continue;
      double dot = 0.0;
      for (int k = 0; k < d; ++k) dot += u(i, k) * u(j, k);
      w[j] = std::exp(dot / tau);
    }
    double pos_dot = 0.0;
    for (int k = 0; k < d; ++k) pos_dot += u(i, k) * v(i, k);
    // Z includes the positive term (see gradient_features.h).
    double z = std::exp(pos_dot / tau);
    for (int j = 0; j < n; ++j) z += w[j];
    const double pos_coeff = (1.0 - std::exp(pos_dot / tau) / z) / tau;
    for (int k = 0; k < d; ++k) g(i, k) += pos_coeff * v(i, k);
    for (int j = 0; j < n; ++j) {
      if (j == i) continue;
      const double coeff = w[j] / z / tau;
      for (int k = 0; k < d; ++k) g(i, k) -= coeff * u(j, k);
    }
  }
  return g;
}

TEST(GradientFeaturesTest, MatchesEq6Reference) {
  Rng rng(1);
  const Matrix u = Matrix::RandomNormal(6, 4, rng);
  const Matrix v = Matrix::RandomNormal(6, 4, rng);
  const Matrix composite =
      InfoNceGradientFeatures(Variable(u), Variable(v), 0.5).value();
  EXPECT_TRUE(AllClose(composite, Eq6Reference(u, v, 0.5), 1e-10));
}

TEST(GradientFeaturesTest, MatchesReferenceAcrossTemperatures) {
  Rng rng(2);
  const Matrix u = Matrix::RandomNormal(5, 3, rng);
  const Matrix v = Matrix::RandomNormal(5, 3, rng);
  for (double tau : {0.1, 0.5, 1.0, 2.0}) {
    const Matrix composite =
        InfoNceGradientFeatures(Variable(u), Variable(v), tau).value();
    EXPECT_TRUE(AllClose(composite, Eq6Reference(u, v, tau), 1e-9))
        << "tau = " << tau;
  }
}

TEST(GradientFeaturesTest, ScaleInvariantInInputs) {
  // Eq. 6 acts on the unit sphere, so rescaling u or v must not change g.
  Rng rng(3);
  const Matrix u = Matrix::RandomNormal(5, 3, rng);
  const Matrix v = Matrix::RandomNormal(5, 3, rng);
  const Matrix g1 =
      InfoNceGradientFeatures(Variable(u), Variable(v), 0.5).value();
  const Matrix g2 =
      InfoNceGradientFeatures(Variable(u * 4.0), Variable(v * 0.25), 0.5)
          .value();
  EXPECT_TRUE(AllClose(g1, g2, 1e-10));
}

TEST(GradientFeaturesTest, PaperObservationOne) {
  // "For positive samples, if their similarity is low, the gradient
  // w.r.t. the samples is large": the positive pull coefficient
  // (1 − exp(p)/Z)/τ grows as the positive pair misaligns.
  Matrix u{{1, 0}, {0, 1}, {-1, 0}};
  Matrix v_aligned = u;
  Matrix v_rotated{{0, 1}, {1, 0}, {0, -1}};  // orthogonal positives
  const Matrix g_aligned =
      InfoNceGradientFeatures(Variable(u), Variable(v_aligned), 0.5).value();
  const Matrix g_rotated =
      InfoNceGradientFeatures(Variable(u), Variable(v_rotated), 0.5).value();
  EXPECT_GT(g_rotated.FrobeniusNorm(), g_aligned.FrobeniusNorm());
}

TEST(GradientFeaturesTest, PaperObservationTwo) {
  // "For negative samples with large similarity the gradient magnitude
  // is significant": clustered within-view samples yield larger
  // negative terms than well-spread ones.
  Matrix clustered{{1, 0}, {0.99, 0.14}, {0.98, -0.2}};
  Matrix spread{{1, 0}, {-0.5, 0.87}, {-0.5, -0.87}};
  const Matrix v{{1, 0}, {0, 1}, {-1, 0}};
  const Matrix g_clustered =
      InfoNceGradientFeatures(Variable(clustered), Variable(v), 0.5).value();
  const Matrix g_spread =
      InfoNceGradientFeatures(Variable(spread), Variable(v), 0.5).value();
  EXPECT_GT(g_clustered.FrobeniusNorm(), g_spread.FrobeniusNorm());
}

TEST(GradientFeaturesTest, DifferentiableGradCheck) {
  // Backprop through the gradient map itself (the property the whole
  // method relies on).
  ExpectGradOk(
      [](const VarList& in) {
        return ag::Mean(
            ag::Square(InfoNceGradientFeatures(in[0], in[1], 0.5)));
      },
      {Param(4, 3, 4), Param(4, 3, 5)}, 1e-4);
}

TEST(GradientFeaturesTest, JsdVariantGradCheckAndShape) {
  Variable u = Param(4, 3, 6);
  Variable v = Param(4, 3, 7);
  Variable g = JsdGradientFeatures(u, v);
  EXPECT_EQ(g.rows(), 4);
  EXPECT_EQ(g.cols(), 3);
  ExpectGradOk(
      [](const VarList& in) {
        return ag::Mean(ag::Square(JsdGradientFeatures(in[0], in[1])));
      },
      {Param(4, 3, 8), Param(4, 3, 9)}, 1e-4);
}

TEST(GradientFeaturesTest, JsdMatchesManualDerivative) {
  // Verify the JSD closed form against the autograd derivative of the
  // JSD loss with respect to u (per-anchor term only; negatives of
  // other anchors flow through v, not u, in JsdLoss's critic s = u v^T).
  Rng rng(10);
  const Matrix u_val = Matrix::RandomNormal(5, 3, rng);
  const Matrix v_val = Matrix::RandomNormal(5, 3, rng);
  Variable u(u_val, true);
  Variable v(v_val);  // constant
  u.ZeroGrad();
  Backward(JsdLoss(u, v));
  const Matrix analytic =
      JsdGradientFeatures(Variable(u_val), Variable(v_val)).value();
  EXPECT_TRUE(AllClose(u.grad(), analytic, 1e-8));
}

TEST(GradientFeaturesTest, SceVariantZeroAtPerfectAlignment) {
  // SCE gradient features vanish when reconstruction is perfect.
  Variable u = Param(4, 3, 11);
  Variable v(u.value());
  const Matrix g = SceGradientFeatures(u, v).value();
  EXPECT_NEAR(g.FrobeniusNorm(), 0.0, 1e-9);
}

TEST(GradientFeaturesTest, SceVariantGradCheck) {
  ExpectGradOk(
      [](const VarList& in) {
        return ag::Mean(ag::Square(SceGradientFeatures(in[0], in[1])));
      },
      {Param(4, 3, 12), Param(4, 3, 13)}, 1e-4);
}

TEST(GradientFeaturesTest, SceMatchesNumericDerivative) {
  // SCE features = ∂/∂u_i of Σ_i (1 − cos(u_i, v_i))^γ (per-row, so the
  // autograd derivative of the *sum* version, i.e. mean × n).
  Rng rng(14);
  const Matrix u_val = Matrix::RandomNormal(4, 3, rng);
  const Matrix v_val = Matrix::RandomNormal(4, 3, rng);
  Variable u(u_val, true);
  u.ZeroGrad();
  Backward(ag::ScalarMul(SceLoss(u, Variable(v_val), 2.0),
                         static_cast<double>(u_val.rows())));
  const Matrix analytic =
      SceGradientFeatures(Variable(u_val), Variable(v_val), 2.0).value();
  EXPECT_TRUE(AllClose(u.grad(), analytic, 1e-6));
}

TEST(GradientFeaturesTest, DispatchMatchesDirectCalls) {
  Variable u = Param(4, 3, 15);
  Variable v = Param(4, 3, 16);
  EXPECT_TRUE(AllClose(
      GradientFeatures(LossKind::kInfoNce, u, v, 0.5).value(),
      InfoNceGradientFeatures(u, v, 0.5).value()));
  EXPECT_TRUE(AllClose(GradientFeatures(LossKind::kJsd, u, v, 0.5).value(),
                       JsdGradientFeatures(u, v).value()));
  EXPECT_TRUE(AllClose(GradientFeatures(LossKind::kSce, u, v, 0.5).value(),
                       SceGradientFeatures(u, v).value()));
}

// --- Euclidean (Lemma 2) variant -------------------------------------------------

TEST(EuclideanFeaturesTest, MatchesAutogradDerivative) {
  // EuclideanGradientFeatures must equal n × d(InfoNceEuclidean)/du —
  // including the cross terms where u_i acts as another anchor's
  // negative (InfoNceEuclidean averages over n, the features follow the
  // summed loss).
  Rng rng(17);
  const Matrix u_val = Matrix::RandomNormal(5, 3, rng, 0.0, 0.7);
  const Matrix v_val = u_val + Matrix::RandomNormal(5, 3, rng, 0.0, 0.1);
  Variable u(u_val, true);
  u.ZeroGrad();
  Backward(ag::ScalarMul(InfoNceEuclidean(u, Variable(v_val)),
                         static_cast<double>(u_val.rows())));
  const Matrix manual = EuclideanGradientFeatures(u_val, v_val);
  EXPECT_TRUE(AllClose(u.grad(), manual, 1e-8));
}

TEST(EuclideanFeaturesTest, Lemma2ChainRule) {
  // Lemma 2: for a linear encoder U = X W, the weight update satisfies
  // dL/dW = Σ_i x_i g_{u_i}^T (+ the view-2 counterpart). Verify the
  // view-1 half with a constant view 2.
  Rng rng(18);
  const Matrix x = Matrix::RandomNormal(5, 4, rng);
  const Matrix w_val = Matrix::RandomNormal(4, 3, rng);
  const Matrix v_val = Matrix::RandomNormal(5, 3, rng);
  Variable w(w_val, true);
  w.ZeroGrad();
  Variable u = ag::ConstLeftMatMul(x, w);
  Backward(ag::ScalarMul(InfoNceEuclidean(u, Variable(v_val)), 5.0));
  const Matrix g = EuclideanGradientFeatures(MatMul(x, w_val), v_val);
  // dL/dW = X^T G.
  EXPECT_TRUE(AllClose(w.grad(), MatMulTransA(x, g), 1e-8));
}

// --- GradGclLoss (Eq. 18) ---------------------------------------------------------

TEST(GradGclLossTest, WeightZeroIsBackboneLoss) {
  GradGclConfig config;
  config.weight = 0.0;
  GradGclLoss loss(config);
  TwoViewBatch views{Param(5, 4, 19), Param(5, 4, 20)};
  EXPECT_NEAR(loss(views).scalar(),
              InfoNce(views.u, views.u_prime, config.tau).scalar(), 1e-12);
}

TEST(GradGclLossTest, WeightOneIsGradientLoss) {
  GradGclConfig config;
  config.weight = 1.0;
  GradGclLoss loss(config);
  TwoViewBatch views{Param(5, 4, 21), Param(5, 4, 22)};
  EXPECT_NEAR(loss(views).scalar(), loss.GradientLoss(views).scalar(),
              1e-12);
}

TEST(GradGclLossTest, MidWeightIsConvexCombination) {
  GradGclConfig config;
  config.weight = 0.3;
  GradGclLoss loss(config);
  TwoViewBatch views{Param(5, 4, 23), Param(5, 4, 24)};
  const double combined = loss(views).scalar();
  const double lf = loss.RepresentationLoss(views).scalar();
  const double lg = loss.GradientLoss(views).scalar();
  EXPECT_NEAR(combined, 0.7 * lf + 0.3 * lg, 1e-10);
}

TEST(GradGclLossTest, FullObjectiveGradCheck) {
  GradGclConfig config;
  config.weight = 0.5;
  GradGclLoss loss(config);
  ExpectGradOk(
      [&loss](const VarList& in) {
        TwoViewBatch views{in[0], in[1]};
        return loss(views);
      },
      {Param(4, 3, 25), Param(4, 3, 26)}, 1e-4);
}

TEST(GradGclLossTest, GradientLossIsFiniteAndPositive) {
  GradGclConfig config;
  config.weight = 1.0;
  GradGclLoss loss(config);
  TwoViewBatch views{Param(6, 4, 27), Param(6, 4, 28)};
  const Variable lg = loss.GradientLoss(views);
  EXPECT_TRUE(lg.value().AllFinite());
}

TEST(GradGclLossTest, DetachFeaturesStopsBackprop) {
  GradGclConfig config;
  config.weight = 1.0;
  config.detach_features = true;
  GradGclLoss loss(config);
  Variable u = Param(5, 4, 29);
  Variable v = Param(5, 4, 30);
  u.ZeroGrad();
  v.ZeroGrad();
  TwoViewBatch views{u, v};
  Backward(loss(views));
  EXPECT_DOUBLE_EQ(u.grad().FrobeniusNorm(), 0.0);
  EXPECT_DOUBLE_EQ(v.grad().FrobeniusNorm(), 0.0);
}

TEST(GradGclLossDeathTest, InvalidConfigAborts) {
  GradGclConfig bad_weight;
  bad_weight.weight = 1.5;
  EXPECT_DEATH(GradGclLoss{bad_weight}, "GRADGCL_CHECK");
  GradGclConfig bad_tau;
  bad_tau.tau = 0.0;
  EXPECT_DEATH(GradGclLoss{bad_tau}, "GRADGCL_CHECK");
}

// The combined objective must stay finite and gradcheck-clean over the
// weight grid used by the Fig. 8–10 sweeps.
class WeightSweep : public ::testing::TestWithParam<double> {};

TEST_P(WeightSweep, ObjectiveFiniteAndDifferentiable) {
  GradGclConfig config;
  config.weight = GetParam();
  GradGclLoss loss(config);
  Variable u = Param(4, 3, 31);
  Variable v = Param(4, 3, 32);
  u.ZeroGrad();
  v.ZeroGrad();
  TwoViewBatch views{u, v};
  Variable l = loss(views);
  EXPECT_TRUE(l.value().AllFinite());
  Backward(l);
  EXPECT_TRUE(u.grad().AllFinite());
  EXPECT_TRUE(v.grad().AllFinite());
}

INSTANTIATE_TEST_SUITE_P(Weights, WeightSweep,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5, 0.75, 0.9,
                                           1.0));

}  // namespace
}  // namespace gradgcl
