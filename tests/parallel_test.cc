// Tests for the deterministic parallel substrate: pool lifecycle and
// ParallelFor coverage, plus the determinism contract — the parallel
// blocked kernels must equal the naive serial reference and be
// bit-identical for every thread count (DESIGN.md §5 "Threading
// model").

#include "common/parallel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <thread>
#include <vector>

#include "eval/cross_validation.h"
#include "eval/spectrum.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"
#include "tensor/simd.h"
#include "tensor/sparse.h"

namespace gradgcl {
namespace {

// Restores the pool size a test changed, even on assertion failure.
class ThreadGuard {
 public:
  ThreadGuard() : saved_(NumThreads()) {}
  ~ThreadGuard() { SetNumThreads(saved_); }

 private:
  int saved_;
};

// Restores the SIMD kill-switch a test flipped.
class SimdGuard {
 public:
  SimdGuard() : saved_(simd::Enabled()) {}
  ~SimdGuard() { simd::SetEnabled(saved_); }

 private:
  bool saved_;
};

// Restores the spin-before-park window a test changed.
class SpinGuard {
 public:
  SpinGuard() : saved_(SpinMicros()) {}
  ~SpinGuard() { SetSpinMicros(saved_); }

 private:
  int saved_;
};

// Restores the parallelization cost threshold a test changed.
class CostGuard {
 public:
  CostGuard() : saved_(internal::MinParallelCost()) {}
  ~CostGuard() { internal::SetMinParallelCost(saved_); }

 private:
  int64_t saved_;
};

// Marks each index of [0, n) once; duplicates or gaps fail the test.
void ExpectExactCoverage(int64_t n, int64_t grain) {
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  ParallelFor(0, n, grain, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (int64_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i << " of n=" << n
                                 << " grain=" << grain;
  }
}

TEST(ParallelForTest, CoversExactRanges) {
  ThreadGuard guard;
  for (int threads : {1, 2, 8}) {
    SetNumThreads(threads);
    ExpectExactCoverage(0, 1);    // empty range: fn never runs
    ExpectExactCoverage(1, 1);    // single element
    ExpectExactCoverage(97, 1);   // prime-sized, grain 1
    ExpectExactCoverage(101, 7);  // prime-sized, ragged chunks
    ExpectExactCoverage(64, 100);  // grain larger than range: serial
  }
}

TEST(ParallelForTest, EmptyRangeNeverInvokes) {
  int calls = 0;
  ParallelFor(5, 5, 1, [&](int64_t, int64_t) { ++calls; });
  ParallelFor(5, 3, 1, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelForTest, NonZeroBeginOffsetsChunks) {
  std::vector<std::atomic<int>> hits(100);
  for (auto& h : hits) h.store(0);
  ParallelFor(40, 100, 5, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (int i = 0; i < 40; ++i) EXPECT_EQ(hits[i].load(), 0);
  for (int i = 40; i < 100; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelPoolTest, StartupShutdownResize) {
  ThreadGuard guard;
  SetNumThreads(4);
  EXPECT_EQ(NumThreads(), 4);
  SetNumThreads(1);
  EXPECT_EQ(NumThreads(), 1);
  SetNumThreads(3);
  EXPECT_EQ(NumThreads(), 3);
  ExpectExactCoverage(57, 1);
  SetNumThreads(0);  // hardware default
  EXPECT_GE(NumThreads(), 1);
}

TEST(ParallelPoolTest, NestedCallsRunInline) {
  ThreadGuard guard;
  SetNumThreads(4);
  std::atomic<int64_t> total{0};
  ParallelFor(0, 8, 1, [&](int64_t o0, int64_t o1) {
    for (int64_t outer = o0; outer < o1; ++outer) {
      EXPECT_TRUE(InParallelRegion());
      // The nested region must complete inline without deadlock.
      int64_t local = 0;
      ParallelFor(0, 100, 1, [&](int64_t b, int64_t e) {
        for (int64_t i = b; i < e; ++i) local += i;
      });
      EXPECT_EQ(local, 4950);
      total.fetch_add(local);
    }
  });
  EXPECT_FALSE(InParallelRegion());
  EXPECT_EQ(total.load(), 8 * 4950);
}

TEST(ParallelPoolTest, ReentrantRegionsAfterResize) {
  ThreadGuard guard;
  for (int round = 0; round < 3; ++round) {
    SetNumThreads(round + 2);
    ExpectExactCoverage(127, 3);
    ExpectExactCoverage(128, 1);
  }
}

TEST(ParallelForTest, CostModelInlinesCheapRegions) {
  ThreadGuard guard;
  CostGuard cost_guard;
  // Pin the threshold to the multicore default so the test holds even
  // when the suite runs under a GRADGCL_PARALLEL_MIN_COST override.
  internal::SetMinParallelCost(int64_t{1} << 23);
  SetNumThreads(8);
  // Total cost 1000 * 4 is far below the threshold: the
  // region must be one direct serial call covering the whole range.
  std::atomic<int> calls{0};
  int64_t lo = -1, hi = -1;
  ParallelFor(0, 1000, 1, /*cost_per_iter=*/4,
              [&](int64_t begin, int64_t end) {
                calls.fetch_add(1);
                lo = begin;
                hi = end;
              });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(lo, 0);
  EXPECT_EQ(hi, 1000);
  // An expensive region of the same shape fans out into several chunks.
  calls.store(0);
  ParallelFor(0, 1000, 1, /*cost_per_iter=*/int64_t{1} << 20,
              [&](int64_t, int64_t) { calls.fetch_add(1); });
  EXPECT_GT(calls.load(), 1);
}

TEST(ParallelFor2DTest, CoversTileGridExactly) {
  ThreadGuard guard;
  for (int threads : {1, 2, 8}) {
    SetNumThreads(threads);
    const int64_t rows = 101, cols = 67;
    std::vector<std::atomic<int>> hits(rows * cols);
    for (auto& h : hits) h.store(0);
    ParallelFor2D(rows, cols, 8, 8, internal::kUnknownCost,
                  [&](int64_t r0, int64_t r1, int64_t c0, int64_t c1) {
                    EXPECT_LT(r0, r1);
                    EXPECT_LT(c0, c1);
                    for (int64_t r = r0; r < r1; ++r) {
                      for (int64_t c = c0; c < c1; ++c) {
                        hits[r * cols + c].fetch_add(1);
                      }
                    }
                  });
    for (int64_t i = 0; i < rows * cols; ++i) {
      ASSERT_EQ(hits[i].load(), 1)
          << "cell " << i << " at threads=" << threads;
    }
  }
}

TEST(ParallelFor2DTest, CheapGridRunsAsOneTile) {
  ThreadGuard guard;
  CostGuard cost_guard;
  internal::SetMinParallelCost(int64_t{1} << 23);
  SetNumThreads(8);
  std::atomic<int> calls{0};
  ParallelFor2D(64, 64, 8, 8, /*cost_per_cell=*/2,
                [&](int64_t r0, int64_t r1, int64_t c0, int64_t c1) {
                  calls.fetch_add(1);
                  EXPECT_EQ(r0, 0);
                  EXPECT_EQ(r1, 64);
                  EXPECT_EQ(c0, 0);
                  EXPECT_EQ(c1, 64);
                });
  EXPECT_EQ(calls.load(), 1);
}

// Rapid-fire small regions from several caller threads at once: the
// pool serializes regions internally, every region must still cover
// its range exactly, and TSAN must stay quiet (the verify recipe runs
// this under both GRADGCL_SPIN_US=0 and =1000).
TEST(ParallelPoolTest, ConcurrentCallersHammerSmallRegions) {
  ThreadGuard guard;
  SetNumThreads(4);
  constexpr int kCallers = 4;
  constexpr int kRounds = 200;
  std::atomic<int> failures{0};
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&failures, t] {
      for (int round = 0; round < kRounds; ++round) {
        const int64_t n = 1 + (t * 31 + round) % 97;
        std::atomic<int64_t> sum{0};
        ParallelFor(0, n, 1, [&sum](int64_t begin, int64_t end) {
          int64_t local = 0;
          for (int64_t i = begin; i < end; ++i) local += i;
          sum.fetch_add(local);
        });
        if (sum.load() != n * (n - 1) / 2) failures.fetch_add(1);
      }
    });
  }
  for (auto& c : callers) c.join();
  EXPECT_EQ(failures.load(), 0);
}

// SetNumThreads while other threads keep dispatching regions: resizes
// serialize against in-flight regions, and no region may ever lose or
// duplicate an index.
TEST(ParallelPoolTest, ReconfigureUnderLoad) {
  ThreadGuard guard;
  SetNumThreads(2);
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> callers;
  for (int t = 0; t < 2; ++t) {
    callers.emplace_back([&stop, &failures] {
      while (!stop.load(std::memory_order_relaxed)) {
        std::atomic<int64_t> sum{0};
        ParallelFor(0, 128, 1, [&sum](int64_t begin, int64_t end) {
          int64_t local = 0;
          for (int64_t i = begin; i < end; ++i) local += i;
          sum.fetch_add(local);
        });
        if (sum.load() != 128 * 127 / 2) failures.fetch_add(1);
      }
    });
  }
  for (int round = 0; round < 20; ++round) {
    SetNumThreads(1 + round % 4);
  }
  stop.store(true);
  for (auto& c : callers) c.join();
  EXPECT_EQ(failures.load(), 0);
}

// Both parking disciplines must execute regions correctly; the TSAN
// verify legs re-run the whole binary under each.
TEST(ParallelPoolTest, SpinWindowKnobCoversBothParkingPaths) {
  ThreadGuard thread_guard;
  SpinGuard spin_guard;
  for (int spin_us : {0, 1000}) {
    SetSpinMicros(spin_us);
    EXPECT_EQ(SpinMicros(), spin_us);
    SetNumThreads(4);
    ExpectExactCoverage(513, 2);
    ExpectExactCoverage(64, 1);
  }
}

// --- Kernel determinism -----------------------------------------------------

// Naive triple-loop reference, jik order with an ascending-k mul+add
// dot — the same per-element accumulation order as the blocked *scalar*
// kernels, so scalar-table equality must be exact, not approximate. The
// vector tables keep kk-ascending chains too but round through FMA (or
// lane splits), so against them the reference is tight-ULP, not bitwise
// — tests/simd_test.cc pins those exact lane-order contracts.
Matrix NaiveMatMul(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols(), 0.0);
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < b.cols(); ++j) {
      double dot = 0.0;
      for (int k = 0; k < a.cols(); ++k) dot += a(i, k) * b(k, j);
      out(i, j) = dot;
    }
  }
  return out;
}

// Max |a - b| relative to the largest magnitude involved.
double MaxRelDiff(const Matrix& a, const Matrix& b) {
  double worst = 0.0;
  for (int i = 0; i < a.size(); ++i) {
    const double scale =
        std::max({1.0, std::abs(a.at_flat(i)), std::abs(b.at_flat(i))});
    worst = std::max(worst, std::abs(a.at_flat(i) - b.at_flat(i)) / scale);
  }
  return worst;
}

void ExpectBitIdentical(const Matrix& actual, const Matrix& expected,
                        const char* what) {
  ASSERT_EQ(actual.rows(), expected.rows()) << what;
  ASSERT_EQ(actual.cols(), expected.cols()) << what;
  EXPECT_EQ(std::memcmp(actual.data(), expected.data(),
                        sizeof(double) * actual.size()),
            0)
      << what << " differs from the single-thread result";
}

// Runs `kernel` at 1/2/8 threads and requires byte-identical outputs.
template <typename Kernel>
Matrix ExpectThreadCountInvariant(Kernel kernel, const char* what) {
  ThreadGuard guard;
  SetNumThreads(1);
  const Matrix reference = kernel();
  for (int threads : {2, 8}) {
    SetNumThreads(threads);
    ExpectBitIdentical(kernel(), reference, what);
  }
  return reference;
}

TEST(KernelDeterminismTest, MatMulMatchesNaiveOnOddShapes) {
  SimdGuard simd_guard;
  Rng rng(41);
  const Matrix a = Matrix::RandomNormal(67, 129, rng);
  const Matrix b = Matrix::RandomNormal(129, 43, rng);
  const Matrix naive = NaiveMatMul(a, b);
  // Thread-count invariance must hold for whatever table is active.
  const Matrix reference =
      ExpectThreadCountInvariant([&] { return MatMul(a, b); }, "MatMul");
  // Same ascending-k accumulation order as the naive loop → the active
  // table agrees tightly, the scalar table agrees exactly.
  EXPECT_LT(MaxRelDiff(reference, naive), 1e-13);
  simd::SetEnabled(false);
  ExpectBitIdentical(MatMul(a, b), naive, "scalar MatMul vs naive");
}

TEST(KernelDeterminismTest, MatMulTransAMatchesNaive) {
  SimdGuard simd_guard;
  Rng rng(42);
  const Matrix a = Matrix::RandomNormal(115, 37, rng);
  const Matrix b = Matrix::RandomNormal(115, 53, rng);
  const Matrix naive = NaiveMatMul(a.Transposed(), b);
  const Matrix reference = ExpectThreadCountInvariant(
      [&] { return MatMulTransA(a, b); }, "MatMulTransA");
  EXPECT_LT(MaxRelDiff(reference, naive), 1e-13);
  simd::SetEnabled(false);
  ExpectBitIdentical(MatMulTransA(a, b), naive, "scalar MatMulTransA vs naive");
}

TEST(KernelDeterminismTest, MatMulTransBMatchesNaive) {
  SimdGuard simd_guard;
  Rng rng(43);
  const Matrix a = Matrix::RandomNormal(61, 71, rng);
  const Matrix b = Matrix::RandomNormal(47, 71, rng);
  const Matrix naive = NaiveMatMul(a, b.Transposed());
  const Matrix reference = ExpectThreadCountInvariant(
      [&] { return MatMulTransB(a, b); }, "MatMulTransB");
  EXPECT_LT(MaxRelDiff(reference, naive), 1e-13);
  simd::SetEnabled(false);
  ExpectBitIdentical(MatMulTransB(a, b), naive, "scalar MatMulTransB vs naive");
}

TEST(KernelDeterminismTest, SparseMultiplyMatchesDense) {
  Rng rng(44);
  const int n = 211, m = 97;
  std::vector<Triplet> triplets;
  for (int i = 0; i < 6 * n; ++i) {
    triplets.push_back({rng.UniformInt(n), rng.UniformInt(m), rng.Normal()});
  }
  const SparseMatrix s(n, m, triplets);
  const Matrix x = Matrix::RandomNormal(m, 29, rng);
  const Matrix reference = ExpectThreadCountInvariant(
      [&] { return s.Multiply(x); }, "SparseMatrix::Multiply");
  // CSR walk and the dense kernel sum in different orders: tolerance.
  EXPECT_TRUE(AllClose(reference, MatMul(s.ToDense(), x), 1e-9));
}

TEST(KernelDeterminismTest, ElementwiseAndRowKernelsInvariant) {
  Rng rng(45);
  const Matrix a = Matrix::RandomNormal(301, 47, rng);
  ExpectThreadCountInvariant([&] { return Exp(a * 0.1); }, "Exp");
  ExpectThreadCountInvariant([&] { return Relu(a); }, "Relu");
  ExpectThreadCountInvariant([&] { return Hadamard(a, a); }, "Hadamard");
  ExpectThreadCountInvariant([&] { return RowSum(a); }, "RowSum");
  ExpectThreadCountInvariant([&] { return RowNormalize(a); }, "RowNormalize");
  ExpectThreadCountInvariant([&] { return RowSoftmax(a); }, "RowSoftmax");
}

// The fixed-shape reduction tree: column sums must be bit-identical
// across 1/2/4/8 threads (the tree shape depends only on the row
// count), agree tightly with the naive ascending serial sum, and match
// it exactly below the leaf size where the tree degenerates to the
// same serial loop.
TEST(KernelDeterminismTest, ColSumTreeReductionBitIdentical) {
  Rng rng(49);
  const Matrix a = Matrix::RandomNormal(1000, 37, rng);
  ThreadGuard guard;
  SetNumThreads(1);
  const Matrix reference = ColSum(a);
  const Matrix mean_reference = ColMean(a);
  for (int threads : {2, 4, 8}) {
    SetNumThreads(threads);
    ExpectBitIdentical(ColSum(a), reference, "ColSum");
    ExpectBitIdentical(ColMean(a), mean_reference, "ColMean");
  }
  // Naive ascending serial sum: the tree reassociates, so tolerance.
  Matrix naive(1, a.cols(), 0.0);
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < a.cols(); ++j) naive(0, j) += a(i, j);
  }
  EXPECT_LT(MaxRelDiff(reference, naive), 1e-12);
  // At or below one leaf block the tree IS the ascending serial sum.
  const Matrix small = Matrix::RandomNormal(64, 19, rng);
  Matrix small_naive(1, small.cols(), 0.0);
  for (int i = 0; i < small.rows(); ++i) {
    for (int j = 0; j < small.cols(); ++j) small_naive(0, j) += small(i, j);
  }
  ExpectBitIdentical(ColSum(small), small_naive, "small ColSum vs serial");
}

// Forces the cost model both ways and requires identical bits: with the
// threshold at 0 every cost-hinted kernel fans out (2-D GEMM tiles, the
// ColSum tree combine, row-strip softmax), with it at INT64_MAX every
// one runs serially inline — and the determinism contract says the
// bytes must not move between those extremes or across pool sizes. This
// pins the tiled paths on hosts whose calibrated threshold would
// otherwise keep these shapes serial.
TEST(KernelDeterminismTest, ForcedFanOutMatchesForcedSerialBitwise) {
  Rng rng(50);
  const Matrix a = Matrix::RandomNormal(128, 96, rng);
  const Matrix b = Matrix::RandomNormal(96, 112, rng);
  const Matrix big = Matrix::RandomNormal(1000, 37, rng);
  ThreadGuard thread_guard;
  CostGuard cost_guard;
  internal::SetMinParallelCost(INT64_MAX);
  SetNumThreads(1);
  const Matrix mm_ref = MatMul(a, b);
  const Matrix col_ref = ColSum(big);
  const Matrix soft_ref = RowSoftmax(big);
  internal::SetMinParallelCost(0);
  for (int threads : {1, 2, 4, 8}) {
    SetNumThreads(threads);
    ExpectBitIdentical(MatMul(a, b), mm_ref, "forced fan-out MatMul");
    ExpectBitIdentical(ColSum(big), col_ref, "forced fan-out ColSum");
    ExpectBitIdentical(RowSoftmax(big), soft_ref, "forced fan-out RowSoftmax");
  }
}

TEST(KernelDeterminismTest, MapTemplateInlinesLambda) {
  Rng rng(46);
  const Matrix a = Matrix::RandomNormal(129, 130, rng);
  const Matrix doubled =
      ExpectThreadCountInvariant([&] { return Map(a, [](double v) {
                                         return 2.0 * v;
                                       }); },
                                 "Map");
  for (int i = 0; i < a.size(); ++i) {
    ASSERT_EQ(doubled.at_flat(i), 2.0 * a.at_flat(i));
  }
}

// End-to-end determinism of the evaluation grids the benches rely on:
// k-fold accuracies and covariance spectra must not move by a bit when
// the pool grows (ISSUE acceptance: accuracies/spectra byte-identical
// across thread counts, verified by a test).
TEST(EvalDeterminismTest, CrossValidationInvariantAcrossThreadCounts) {
  Rng rng(47);
  const int n = 120, classes = 3;
  Matrix embeddings = Matrix::RandomNormal(n, 16, rng);
  std::vector<int> labels(n);
  for (int i = 0; i < n; ++i) {
    labels[i] = i % classes;
    // Separate the classes so accuracies are non-trivial.
    embeddings(i, labels[i]) += 2.0;
  }
  ThreadGuard guard;
  ProbeOptions probe;
  SetNumThreads(1);
  const ScoreSummary reference =
      CrossValidateAccuracy(embeddings, labels, classes, 5, probe, 99);
  for (int threads : {2, 8}) {
    SetNumThreads(threads);
    const ScoreSummary summary =
        CrossValidateAccuracy(embeddings, labels, classes, 5, probe, 99);
    EXPECT_EQ(summary.mean, reference.mean);
    EXPECT_EQ(summary.stddev, reference.stddev);
    EXPECT_EQ(summary.count, reference.count);
  }
  EXPECT_GT(reference.mean, 0.5);
}

TEST(EvalDeterminismTest, SpectrumInvariantAcrossThreadCounts) {
  Rng rng(48);
  const Matrix reps = Matrix::RandomNormal(200, 24, rng);
  ThreadGuard guard;
  SetNumThreads(1);
  const SpectrumReport reference = AnalyzeSpectrum(reps);
  for (int threads : {2, 8}) {
    SetNumThreads(threads);
    const SpectrumReport report = AnalyzeSpectrum(reps);
    ASSERT_EQ(report.singular_values.size(),
              reference.singular_values.size());
    for (size_t i = 0; i < reference.singular_values.size(); ++i) {
      EXPECT_EQ(report.singular_values[i], reference.singular_values[i]);
    }
    EXPECT_EQ(report.effective_rank, reference.effective_rank);
  }
}

}  // namespace
}  // namespace gradgcl
