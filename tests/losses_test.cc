#include "losses/contrastive.h"

#include <cmath>

#include <gtest/gtest.h>

#include "autograd/gradcheck.h"
#include "losses/metrics.h"
#include "tensor/ops.h"

namespace gradgcl {
namespace {

using VarList = std::vector<Variable>;

Variable Param(int rows, int cols, uint64_t seed) {
  Rng rng(seed);
  return Variable(Matrix::RandomNormal(rows, cols, rng), true);
}

void ExpectGradOk(const std::function<Variable(const VarList&)>& forward,
                  VarList inputs, double tol = 1e-6) {
  const ag::GradCheckResult result =
      ag::CheckGradients(forward, std::move(inputs), 1e-5, tol);
  EXPECT_TRUE(result.ok) << "max error " << result.max_abs_error << " at "
                         << result.worst_entry;
}

// --- InfoNCE ------------------------------------------------------------------

TEST(InfoNceTest, GradCheck) {
  ExpectGradOk(
      [](const VarList& in) { return InfoNce(in[0], in[1], 0.5); },
      {Param(4, 3, 1), Param(4, 3, 2)}, 1e-5);
}

TEST(InfoNceTest, AlignedPositivesBeatMisaligned) {
  // u == v (perfect alignment) must score lower loss than u == -v.
  Variable u = Param(6, 4, 3);
  Variable v_good(u.value());
  Variable v_bad(u.value() * -1.0);
  EXPECT_LT(InfoNce(u, v_good, 0.5).scalar(),
            InfoNce(u, v_bad, 0.5).scalar());
}

TEST(InfoNceTest, HandComputedTwoSamples) {
  // n = 2, orthogonal unit vectors; positives aligned exactly.
  Variable u(Matrix{{1, 0}, {0, 1}});
  Variable v(Matrix{{1, 0}, {0, 1}});
  const double tau = 1.0;
  // For each direction and each i: pos = 1/τ, denominator = exp(s_i,j≠i/τ)
  // = exp(0). Loss_i = log(exp(0)) − 1 = −1.
  EXPECT_NEAR(InfoNce(u, v, tau).scalar(), -1.0, 1e-9);
}

TEST(InfoNceTest, ScaleInvariantThroughNormalisation) {
  Variable u = Param(5, 3, 4);
  Variable v = Param(5, 3, 5);
  Variable u_scaled(u.value() * 10.0);
  Variable v_scaled(v.value() * 0.1);
  EXPECT_NEAR(InfoNce(u, v, 0.5).scalar(),
              InfoNce(u_scaled, v_scaled, 0.5).scalar(), 1e-9);
}

TEST(InfoNceTest, TemperatureChangesLoss) {
  Variable u = Param(5, 3, 6);
  Variable v = Param(5, 3, 7);
  EXPECT_NE(InfoNce(u, v, 0.2).scalar(), InfoNce(u, v, 1.0).scalar());
}

TEST(InfoNceDeathTest, RequiresTwoSamples) {
  Variable u = Param(1, 3, 8);
  Variable v = Param(1, 3, 9);
  EXPECT_DEATH(InfoNce(u, v, 0.5), ">= 2");
}

// --- Euclidean InfoNCE (Eq. 20) -------------------------------------------------

TEST(InfoNceEuclideanTest, GradCheck) {
  ExpectGradOk(
      [](const VarList& in) { return InfoNceEuclidean(in[0], in[1]); },
      {Param(4, 3, 10), Param(4, 3, 11)}, 1e-5);
}

TEST(InfoNceEuclideanTest, HandComputedValue) {
  // Two samples in 1-D: u = (0), (10); v = u (positives at distance 0).
  Variable u(Matrix{{0.0}, {10.0}});
  Variable v(Matrix{{0.0}, {10.0}});
  // For sample 0: pos = exp(0) = 1, negative exp(-50) ~ 0; denominator
  // ~ 1, loss_0 ~ -log(1/1) = 0. Same for sample 1.
  EXPECT_NEAR(InfoNceEuclidean(u, v).scalar(), 0.0, 1e-9);
}

TEST(InfoNceEuclideanTest, ClusteredNegativesRaiseLoss) {
  Variable u_far(Matrix{{0.0}, {10.0}});
  Variable u_near(Matrix{{0.0}, {0.5}});
  Variable v_far(u_far.value());
  Variable v_near(u_near.value());
  EXPECT_GT(InfoNceEuclidean(u_near, v_near).scalar(),
            InfoNceEuclidean(u_far, v_far).scalar());
}

// --- JSD -------------------------------------------------------------------------

TEST(JsdTest, GradCheck) {
  ExpectGradOk([](const VarList& in) { return JsdLoss(in[0], in[1]); },
               {Param(4, 3, 12), Param(4, 3, 13)}, 1e-5);
}

TEST(JsdTest, PositiveAlignmentLowersLoss) {
  Variable u = Param(6, 4, 14);
  Variable aligned(u.value());
  Rng rng(15);
  Variable random(Matrix::RandomNormal(6, 4, rng));
  EXPECT_LT(JsdLoss(u, aligned).scalar(), JsdLoss(u, random).scalar());
}

TEST(JsdMaskedTest, GradCheck) {
  Matrix mask(4, 3, 0.0);
  mask(0, 0) = mask(1, 1) = mask(2, 2) = mask(3, 0) = 1.0;
  ExpectGradOk(
      [mask](const VarList& in) {
        return JsdLossMasked(ag::MatMulTransB(in[0], in[1]), mask);
      },
      {Param(4, 5, 16), Param(3, 5, 17)}, 1e-5);
}

TEST(JsdMaskedDeathTest, AllPositiveMaskAborts) {
  Variable scores = Param(2, 2, 18);
  EXPECT_DEATH(JsdLossMasked(scores, Matrix(2, 2, 1.0)), "negatives");
}

// --- SCE --------------------------------------------------------------------------

TEST(SceTest, GradCheck) {
  ExpectGradOk(
      [](const VarList& in) { return SceLoss(in[0], in[1], 2.0); },
      {Param(4, 3, 19), Param(4, 3, 20)}, 1e-4);
}

TEST(SceTest, PerfectReconstructionIsZero) {
  Variable u = Param(5, 4, 21);
  Variable v(u.value());
  EXPECT_NEAR(SceLoss(u, v).scalar(), 0.0, 1e-9);
}

TEST(SceTest, AntiAlignedIsMaximal) {
  Variable u = Param(5, 4, 22);
  Variable v(u.value() * -1.0);
  // (1 - (-1))^2 = 4 per row.
  EXPECT_NEAR(SceLoss(u, v, 2.0).scalar(), 4.0, 1e-6);
}

TEST(SceTest, GammaSharpensPenalty) {
  Variable u = Param(5, 4, 23);
  Rng rng(24);
  Variable v(Matrix::RandomNormal(5, 4, rng));
  // For partial misalignment, higher gamma shrinks sub-1 losses.
  const double g1 = SceLoss(u, v, 1.0).scalar();
  const double g3 = SceLoss(u, v, 3.0).scalar();
  EXPECT_NE(g1, g3);
}

// --- Bootstrap & alignment ------------------------------------------------------

TEST(BootstrapTest, GradCheck) {
  // The target branch is detached in real use, so check gradients only
  // through the online branch (a constant target here).
  Rng rng(26);
  const Matrix target = Matrix::RandomNormal(4, 3, rng);
  ExpectGradOk(
      [target](const VarList& in) {
        return BootstrapLoss(in[0], Variable(target));
      },
      {Param(4, 3, 25)}, 1e-5);
}

TEST(BootstrapTest, IdenticalViewsGiveZero) {
  Variable u = Param(5, 4, 27);
  EXPECT_NEAR(BootstrapLoss(u, Variable(u.value())).scalar(), 0.0, 1e-9);
}

TEST(BootstrapTest, RangeIsZeroToFour) {
  Variable u = Param(5, 4, 28);
  Variable anti(u.value() * -1.0);
  EXPECT_NEAR(BootstrapLoss(u, anti).scalar(), 4.0, 1e-9);
}

TEST(AlignmentLossTest, GradCheckAndZeroAtIdentity) {
  ExpectGradOk(
      [](const VarList& in) { return AlignmentLoss(in[0], in[1]); },
      {Param(4, 3, 29), Param(4, 3, 30)}, 1e-5);
  Variable u = Param(5, 4, 31);
  EXPECT_NEAR(AlignmentLoss(u, Variable(u.value())).scalar(), 0.0, 1e-9);
}

TEST(ContrastiveDispatchTest, AllKindsReturnFinite) {
  Variable u = Param(5, 4, 32);
  Variable v = Param(5, 4, 33);
  for (LossKind kind : {LossKind::kInfoNce, LossKind::kJsd, LossKind::kSce}) {
    EXPECT_TRUE(ContrastiveLoss(kind, u, v, 0.5).value().AllFinite());
  }
}

// --- Softplus ---------------------------------------------------------------------

TEST(SoftplusTest, MatchesReference) {
  Variable x(Matrix{{-3, -1, 0, 1, 3}});
  const Matrix y = Softplus(x).value();
  for (int j = 0; j < 5; ++j) {
    EXPECT_NEAR(y(0, j), std::log1p(std::exp(x.value()(0, j))), 1e-10);
  }
}

TEST(SoftplusTest, StableAtExtremes) {
  Variable x(Matrix{{-800, 800}});
  const Matrix y = Softplus(x).value();
  EXPECT_TRUE(y.AllFinite());
  EXPECT_NEAR(y(0, 0), 0.0, 1e-12);
  EXPECT_NEAR(y(0, 1), 800.0, 1e-9);
}

// --- Alignment & uniformity metrics (Eqs. 24–25) ----------------------------------

TEST(MetricsTest, AlignmentZeroForIdenticalViews) {
  Rng rng(34);
  const Matrix u = Matrix::RandomNormal(10, 4, rng);
  EXPECT_NEAR(AlignmentMetric(u, u), 0.0, 1e-12);
}

TEST(MetricsTest, AlignmentGrowsWithPerturbation) {
  Rng rng(35);
  const Matrix u = Matrix::RandomNormal(10, 4, rng);
  const Matrix small = u + Matrix::RandomNormal(10, 4, rng, 0.0, 0.01);
  const Matrix large = u + Matrix::RandomNormal(10, 4, rng, 0.0, 1.0);
  EXPECT_LT(AlignmentMetric(u, small), AlignmentMetric(u, large));
}

TEST(MetricsTest, UniformityPrefersSpreadPoints) {
  // All points identical: exp(0) = 1 -> uniformity = 0 (worst).
  const Matrix clumped(8, 3, 1.0);
  EXPECT_NEAR(UniformityMetric(clumped), 0.0, 1e-12);
  // Spread points: strictly negative.
  Rng rng(36);
  const Matrix spread = Matrix::RandomNormal(8, 3, rng);
  EXPECT_LT(UniformityMetric(spread), -0.1);
}

TEST(MetricsTest, UniformityKnownTwoPointValue) {
  // Antipodal unit vectors: d² = 4, uniformity = log(exp(-2t · 4 / 2)).
  const Matrix x{{1, 0}, {-1, 0}};
  EXPECT_NEAR(UniformityMetric(x, 2.0), -8.0, 1e-9);
}

// τ sweep: gradcheck must hold across temperatures (the losses divide
// by τ in several places).
class TauSweep : public ::testing::TestWithParam<double> {};

TEST_P(TauSweep, InfoNceGradCheck) {
  const double tau = GetParam();
  ExpectGradOk(
      [tau](const VarList& in) { return InfoNce(in[0], in[1], tau); },
      {Param(3, 4, 37), Param(3, 4, 38)}, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Temperatures, TauSweep,
                         ::testing::Values(0.1, 0.2, 0.5, 1.0, 2.0));

}  // namespace
}  // namespace gradgcl
