// Property-based suites: invariants that must hold over swept inputs —
// permutation invariance of graph-level machinery, scale invariance of
// the normalised losses, rank behaviour from the paper's Lemmas 2–3,
// and mutual-information bound sanity (Lemma 1 / Eq. 3).

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "augment/augment.h"
#include "core/grad_gcl_loss.h"
#include "datasets/tu_synthetic.h"
#include "graph/batch.h"
#include "models/wl_kernel.h"
#include "nn/encoders.h"
#include "tensor/linalg.h"
#include "tensor/ops.h"

namespace gradgcl {
namespace {

// Relabels a graph's nodes by `perm` (new id of old node i = perm[i]).
Graph PermuteGraph(const Graph& g, const std::vector<int>& perm) {
  Graph out;
  out.num_nodes = g.num_nodes;
  out.label = g.label;
  out.features = Matrix(g.num_nodes, g.feature_dim());
  for (int i = 0; i < g.num_nodes; ++i) {
    for (int j = 0; j < g.feature_dim(); ++j) {
      out.features(perm[i], j) = g.features(i, j);
    }
  }
  for (const auto& [u, v] : g.edges) {
    out.edges.emplace_back(perm[u], perm[v]);
  }
  return out;
}

Graph RandomGraph(int n, double p, uint64_t seed) {
  Rng rng(seed);
  Graph g;
  g.num_nodes = n;
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (rng.Bernoulli(p)) g.edges.emplace_back(u, v);
    }
  }
  g.features = Matrix::RandomNormal(n, 5, rng);
  g.label = 0;
  return g;
}

// --- Permutation invariance -----------------------------------------------------

class PermutationSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PermutationSweep, EncoderReadoutIsPermutationInvariant) {
  const Graph g = RandomGraph(12, 0.3, GetParam());
  Rng perm_rng(GetParam() + 100);
  const std::vector<int> perm = perm_rng.Permutation(g.num_nodes);
  const Graph permuted = PermuteGraph(g, perm);

  Rng enc_rng(7);
  EncoderConfig config;
  config.in_dim = 5;
  config.hidden_dim = 8;
  config.out_dim = 8;
  GraphEncoder encoder(config, enc_rng);

  const Matrix e1 = encoder.ForwardGraphs(MakeBatch({g})).value();
  const Matrix e2 = encoder.ForwardGraphs(MakeBatch({permuted})).value();
  EXPECT_TRUE(AllClose(e1, e2, 1e-8));
}

TEST_P(PermutationSweep, WlFeaturesArePermutationInvariant) {
  Graph g = RandomGraph(12, 0.3, GetParam());
  // WL initial labels read the argmax feature; make them discrete.
  for (int i = 0; i < g.features.size(); ++i) {
    g.features.at_flat(i) = std::round(g.features.at_flat(i));
  }
  Rng perm_rng(GetParam() + 200);
  const Graph permuted =
      PermuteGraph(g, perm_rng.Permutation(g.num_nodes));
  const Matrix f = WlFeatures({g, permuted}, {3, 128});
  EXPECT_TRUE(AllClose(f.Row(0), f.Row(1), 1e-12));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PermutationSweep,
                         ::testing::Values(1ULL, 2ULL, 3ULL, 4ULL, 5ULL));

// --- Batch-order equivariance -----------------------------------------------------

TEST(BatchOrderProperty, GraphEmbeddingsIndependentOfBatchOrder) {
  TuProfile profile = TuProfileByName("MUTAG");
  profile.num_graphs = 8;
  const std::vector<Graph> data = GenerateTuDataset(profile, 31);
  Rng rng(9);
  EncoderConfig config;
  config.in_dim = profile.feature_dim;
  config.hidden_dim = 8;
  config.out_dim = 8;
  GraphEncoder encoder(config, rng);

  const Matrix forward =
      encoder.ForwardGraphs(MakeBatch(data, {0, 1, 2, 3})).value();
  const Matrix reversed =
      encoder.ForwardGraphs(MakeBatch(data, {3, 2, 1, 0})).value();
  for (int k = 0; k < 4; ++k) {
    EXPECT_TRUE(AllClose(forward.Row(k), reversed.Row(3 - k), 1e-9));
  }
}

// --- Loss invariances over sweeps ------------------------------------------------

struct LossSweepCase {
  int n;
  int d;
  double tau;
};

class LossInvarianceSweep : public ::testing::TestWithParam<LossSweepCase> {};

TEST_P(LossInvarianceSweep, InfoNceScaleInvariantAndBounded) {
  const auto [n, d, tau] = GetParam();
  Rng rng(41);
  const Matrix u = Matrix::RandomNormal(n, d, rng);
  const Matrix v = Matrix::RandomNormal(n, d, rng);
  const double base = InfoNce(Variable(u), Variable(v), tau).scalar();
  const double scaled =
      InfoNce(Variable(u * 3.0), Variable(v * 0.2), tau).scalar();
  EXPECT_NEAR(base, scaled, 1e-9);
  // Loss is bounded: |pos|, |negs| <= 1/tau in the exponent.
  EXPECT_LT(std::abs(base), 2.0 / tau + std::log(n) + 1.0);
}

TEST_P(LossInvarianceSweep, GradientFeaturesMirrorSymmetry) {
  // Exchanging the two views maps g to g' (the features treat u as
  // anchor): check both directions produce finite, distinct features.
  const auto [n, d, tau] = GetParam();
  Rng rng(43);
  Variable u(Matrix::RandomNormal(n, d, rng));
  Variable v(Matrix::RandomNormal(n, d, rng));
  const Matrix g = InfoNceGradientFeatures(u, v, tau).value();
  const Matrix g_prime = InfoNceGradientFeatures(v, u, tau).value();
  EXPECT_TRUE(g.AllFinite());
  EXPECT_TRUE(g_prime.AllFinite());
  EXPECT_EQ(g.rows(), n);
  EXPECT_EQ(g_prime.rows(), n);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LossInvarianceSweep,
    ::testing::Values(LossSweepCase{3, 4, 0.5}, LossSweepCase{8, 2, 0.5},
                      LossSweepCase{5, 16, 0.2}, LossSweepCase{16, 8, 1.0},
                      LossSweepCase{4, 4, 2.0}));

// --- Lemma 1 (Eq. 3): InfoNCE bounds log N --------------------------------------

class MiBoundSweep : public ::testing::TestWithParam<int> {};

TEST_P(MiBoundSweep, InfoNceLowerBoundIsNonTrivialForAlignedViews) {
  // -loss + log(N) estimates MI; for perfectly aligned distinct views
  // the estimate must be positive (there IS mutual information).
  const int n = GetParam();
  Rng rng(47);
  const Matrix u = Matrix::RandomNormal(n, 6, rng);
  const double loss = InfoNce(Variable(u), Variable(u), 0.5).scalar();
  EXPECT_GT(-loss + std::log(n), 0.0);
}

TEST_P(MiBoundSweep, IndependentViewsEstimateNearZero) {
  const int n = GetParam();
  Rng rng(53);
  const Matrix u = Matrix::RandomNormal(n, 6, rng);
  const Matrix v = Matrix::RandomNormal(n, 6, rng);
  const double estimate =
      -InfoNce(Variable(u), Variable(v), 0.5).scalar() + std::log(n);
  // Independent views carry no MI; the estimator stays near/below the
  // aligned-view estimate and far from log N.
  const double aligned_estimate =
      -InfoNce(Variable(u), Variable(u), 0.5).scalar() + std::log(n);
  EXPECT_LT(estimate, aligned_estimate);
}

INSTANTIATE_TEST_SUITE_P(BatchSizes, MiBoundSweep,
                         ::testing::Values(4, 8, 16, 32));

// --- Lemmas 2–3: gradient contrast and rank ---------------------------------------

TEST(RankProperty, AlignedGradientsSpanFullBatchRank) {
  // Lemma 3's mechanism: G = Σ_i (g_i + g'_i) x_i^T has rank N when the
  // per-sample gradient sums are linearly independent. Build such a
  // configuration explicitly and verify via singular values.
  const int n = 4, d = 6;
  Rng rng(59);
  // Orthogonal-ish gradient directions.
  Matrix g = Matrix::RandomNormal(n, d, rng);
  Matrix x = Matrix::RandomNormal(n, d, rng);
  Matrix big_g(d, d, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int r = 0; r < d; ++r) {
      for (int c = 0; c < d; ++c) {
        big_g(r, c) += 2.0 * g(i, r) * x(i, c);  // g_i = g'_i (aligned)
      }
    }
  }
  std::vector<double> sv = SingularValues(big_g);
  // Jacobi-on-Gram numerics leave "zero" singular values around
  // sqrt(eps)·max, so threshold at 1e-5 relative.
  EXPECT_EQ(RankAtThreshold(sv, 1e-5), n);
}

TEST(RankProperty, CollinearGradientsCollapseRank) {
  // If all samples share one gradient direction, G is rank 1 — the
  // degenerate case gradient contrast is designed to prevent.
  const int n = 4, d = 6;
  Rng rng(61);
  Matrix direction = Matrix::RandomNormal(1, d, rng);
  Matrix x = Matrix::RandomNormal(n, d, rng);
  Matrix big_g(d, d, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int r = 0; r < d; ++r) {
      for (int c = 0; c < d; ++c) {
        big_g(r, c) += direction(0, r) * x(i, c);
      }
    }
  }
  std::vector<double> sv = SingularValues(big_g);
  EXPECT_EQ(RankAtThreshold(sv, 1e-5), 1);
}

TEST(RankProperty, GradientLossDiversifiesGradientDirections) {
  // Train a toy linear map with (a) pure InfoNCE and (b) gradient-
  // contrast-regularised InfoNCE; the gradient features of the latter
  // must end up with higher effective rank (the Fig. 5 mechanism).
  Rng rng(67);
  const Matrix x1 = Matrix::RandomNormal(12, 6, rng);
  const Matrix x2 = x1 + Matrix::RandomNormal(12, 6, rng, 0.0, 0.1);

  auto train = [&](double weight) {
    Rng init(71);
    Variable w(Matrix::GlorotUniform(6, 6, init), true);
    GradGclConfig config;
    config.weight = weight;
    GradGclLoss loss(config);
    for (int step = 0; step < 60; ++step) {
      w.ZeroGrad();
      TwoViewBatch views;
      views.u = ag::ConstLeftMatMul(x1, w);
      views.u_prime = ag::ConstLeftMatMul(x2, w);
      Backward(loss(views));
      Matrix update = w.grad();
      update *= 0.1;
      Matrix value = w.value();
      value -= update;
      w.set_value(value);
    }
    return MatMul(x1, w.value());
  };

  const double rank_plain = EffectiveRank(CovarianceSpectrum(train(0.0)));
  const double rank_grad = EffectiveRank(CovarianceSpectrum(train(0.7)));
  EXPECT_GT(rank_grad, rank_plain * 0.9);  // never catastrophically worse
}

// --- Augmentation label preservation over all profiles ----------------------------

class DatasetAugmentSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DatasetAugmentSweep, AugmentedGraphsKeepLabelAndValidity) {
  const auto [profile_idx, kind_idx] = GetParam();
  TuProfile profile = PaperTuProfiles()[profile_idx];
  profile.num_graphs = 6;
  const std::vector<Graph> data = GenerateTuDataset(profile, 73);
  const AugmentKind kind = AllAugmentKinds()[kind_idx];
  Rng rng(79);
  for (const Graph& g : data) {
    const Graph aug = Augment(g, kind, 0.2, rng);
    ValidateGraph(aug);
    EXPECT_EQ(aug.label, g.label);
  }
}

INSTANTIATE_TEST_SUITE_P(ProfilesByKinds, DatasetAugmentSweep,
                         ::testing::Combine(::testing::Range(0, 10),
                                            ::testing::Range(0, 4)));

// --- GradGCL objective finiteness across model scales -----------------------------

struct ScaleCase {
  int batch;
  int dim;
};

class ObjectiveScaleSweep : public ::testing::TestWithParam<ScaleCase> {};

TEST_P(ObjectiveScaleSweep, CombinedObjectiveStaysFinite) {
  const auto [batch, dim] = GetParam();
  Rng rng(83);
  GradGclConfig config;
  config.weight = 0.5;
  GradGclLoss loss(config);
  // Adversarially scaled inputs: tiny and huge magnitudes mixed.
  Matrix u = Matrix::RandomNormal(batch, dim, rng, 0.0, 1e-4);
  Matrix v = Matrix::RandomNormal(batch, dim, rng, 0.0, 1e4);
  TwoViewBatch views{Variable(u, true), Variable(v, true)};
  Variable l = loss(views);
  EXPECT_TRUE(l.value().AllFinite());
  Backward(l);
  EXPECT_TRUE(views.u.grad().AllFinite());
  EXPECT_TRUE(views.u_prime.grad().AllFinite());
}

INSTANTIATE_TEST_SUITE_P(Scales, ObjectiveScaleSweep,
                         ::testing::Values(ScaleCase{2, 2}, ScaleCase{4, 16},
                                           ScaleCase{32, 8},
                                           ScaleCase{16, 64}));

}  // namespace
}  // namespace gradgcl
