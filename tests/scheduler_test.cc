#include "train/scheduler.h"

#include <cmath>

#include <gtest/gtest.h>

#include "datasets/tu_synthetic.h"
#include "models/graphcl.h"
#include "train/trainer.h"

namespace gradgcl {
namespace {

TEST(SchedulerTest, ConstantReturnsBaseLr) {
  for (int e = 0; e < 10; ++e) {
    EXPECT_DOUBLE_EQ(ScheduledLr(LrSchedule::kConstant, 0.05, e, 10), 0.05);
  }
}

TEST(SchedulerTest, StepHalvesEveryThird) {
  EXPECT_DOUBLE_EQ(ScheduledLr(LrSchedule::kStep, 0.1, 0, 9), 0.1);
  EXPECT_DOUBLE_EQ(ScheduledLr(LrSchedule::kStep, 0.1, 3, 9), 0.05);
  EXPECT_DOUBLE_EQ(ScheduledLr(LrSchedule::kStep, 0.1, 6, 9), 0.025);
}

TEST(SchedulerTest, CosineBoundaries) {
  EXPECT_DOUBLE_EQ(ScheduledLr(LrSchedule::kCosine, 0.1, 0, 10), 0.1);
  EXPECT_NEAR(ScheduledLr(LrSchedule::kCosine, 0.1, 9, 10), 0.0, 1e-12);
  // Midpoint is half the base rate.
  EXPECT_NEAR(ScheduledLr(LrSchedule::kCosine, 0.1, 5, 11), 0.05, 1e-12);
}

TEST(SchedulerTest, CosineIsMonotoneDecreasing) {
  double prev = 1e9;
  for (int e = 0; e < 20; ++e) {
    const double lr = ScheduledLr(LrSchedule::kCosine, 0.1, e, 20);
    EXPECT_LE(lr, prev + 1e-15);
    prev = lr;
  }
}

TEST(SchedulerTest, WarmupRampsThenDecays) {
  const int total = 30;  // warmup = 3 epochs
  EXPECT_LT(ScheduledLr(LrSchedule::kWarmupCosine, 0.1, 0, total),
            ScheduledLr(LrSchedule::kWarmupCosine, 0.1, 2, total));
  EXPECT_NEAR(ScheduledLr(LrSchedule::kWarmupCosine, 0.1, 2, total), 0.1,
              1e-12);
  EXPECT_GT(ScheduledLr(LrSchedule::kWarmupCosine, 0.1, 5, total),
            ScheduledLr(LrSchedule::kWarmupCosine, 0.1, 25, total));
}

TEST(SchedulerDeathTest, InvalidArgumentsAbort) {
  EXPECT_DEATH(ScheduledLr(LrSchedule::kCosine, 0.1, 10, 10),
               "GRADGCL_CHECK");
  EXPECT_DEATH(ScheduledLr(LrSchedule::kCosine, -0.1, 0, 10),
               "GRADGCL_CHECK");
}

TEST(SchedulerTest, TrainerAppliesSchedule) {
  // Training must still run (and stay finite) under each schedule.
  TuProfile profile = TuProfileByName("MUTAG");
  profile.num_graphs = 16;
  const std::vector<Graph> data = GenerateTuDataset(profile, 3);
  for (LrSchedule schedule :
       {LrSchedule::kConstant, LrSchedule::kStep, LrSchedule::kCosine,
        LrSchedule::kWarmupCosine}) {
    Rng rng(7);
    GraphClConfig config;
    config.encoder.in_dim = profile.feature_dim;
    config.encoder.hidden_dim = 8;
    config.encoder.out_dim = 8;
    GraphCl model(config, rng);
    TrainOptions options;
    options.epochs = 5;
    options.batch_size = 8;
    options.schedule = schedule;
    const std::vector<EpochStats> history =
        TrainGraphSsl(model, data, options);
    for (const EpochStats& stats : history) {
      EXPECT_TRUE(std::isfinite(stats.loss));
    }
  }
}

}  // namespace
}  // namespace gradgcl
