// Test battery for quantized embedding retrieval (src/retrieval/):
//
//   1. Quantization error bounds — int8 round-trip within scale/2 per
//      dimension, bf16 within 2^-8 relative, degenerate dimensions
//      well-defined.
//   2. Store persistence — Build/Save/Map/Load round-trips bitwise;
//      the streaming StoreWriter produces the same file as bulk Save;
//      a crafted-corruption battery (byte-patched headers, truncation)
//      rejects with a clean false and ZERO heap allocations on the
//      structural paths where a lying header could size one (the
//      data_test idiom).
//   3. Determinism — IVF k-means (centroids, assignments) and batched
//      search are bit-identical at 1/2/4/8 threads; nprobe == nlist
//      reproduces the flat int8 scan exactly; top-k tie-breaking is
//      ascending-index everywhere.
//   4. RetrievalEngine — batched serving returns exactly what direct
//      index search returns regardless of workers/sharding/timing;
//      admission control, manual pump, shutdown-cancel, metrics.

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/rng.h"
#include "eval/similarity.h"
#include "obs/metrics.h"
#include "retrieval/engine.h"
#include "retrieval/flat_index.h"
#include "retrieval/ivf_index.h"
#include "retrieval/quantize.h"
#include "retrieval/store.h"
#include "tensor/ops.h"

// Binary-wide heap-allocation counter (the data_test idiom): the
// corruption tests assert that a rejecting store never allocates
// memory sized from untrusted header fields.
namespace {
std::atomic<uint64_t> g_heap_new_calls{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_new_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace gradgcl::retrieval {
namespace {

namespace fs = std::filesystem;

uint64_t HeapNewCalls() {
  return g_heap_new_calls.load(std::memory_order_relaxed);
}

class ThreadGuard {
 public:
  ThreadGuard() : saved_(NumThreads()) {}
  ~ThreadGuard() { SetNumThreads(saved_); }

 private:
  int saved_;
};

std::string TestPath(const char* name) {
  const std::string path = std::string(::testing::TempDir()) + "/" + name;
  fs::remove(path);
  return path;
}

std::vector<unsigned char> SlurpBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<unsigned char>(std::istreambuf_iterator<char>(in),
                                    std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path,
                    const std::vector<unsigned char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

template <typename T>
void Patch(std::vector<unsigned char>* bytes, size_t offset, T value) {
  ASSERT_LE(offset + sizeof(T), bytes->size());
  std::memcpy(bytes->data() + offset, &value, sizeof(T));
}

// Clustered corpus: `clusters` unit-ish centers with Gaussian spread —
// the shape IVF is built for, and what the bench uses at scale.
Matrix ClusteredCorpus(int n, int d, int clusters, uint64_t seed,
                       double spread = 0.15) {
  Rng rng(seed);
  Matrix centers = Matrix::RandomNormal(clusters, d, rng);
  Matrix corpus(n, d);
  for (int i = 0; i < n; ++i) {
    const int c = i % clusters;
    for (int j = 0; j < d; ++j) {
      corpus(i, j) = centers(c, j) + spread * rng.Normal();
    }
  }
  return corpus;
}

void ExpectSameNeighbors(const std::vector<Neighbor>& a,
                         const std::vector<Neighbor>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].index, b[i].index) << what << " rank " << i;
    EXPECT_EQ(a[i].score, b[i].score) << what << " rank " << i;
  }
}

// --- Quantization error bounds ----------------------------------------------

TEST(QuantizeTest, Int8RoundTripWithinHalfScalePerDimension) {
  Rng rng(11);
  const Matrix corpus = Matrix::RandomNormal(200, 24, rng, 0.0, 3.0);
  const QuantizationParams params = ComputeParams(corpus);
  std::vector<int8_t> codes(24);
  std::vector<double> decoded(24);
  for (int i = 0; i < corpus.rows(); ++i) {
    QuantizeRowInt8(params, corpus.data() + i * 24, codes.data());
    DequantizeRowInt8(params, codes.data(), decoded.data());
    for (int j = 0; j < 24; ++j) {
      EXPECT_GE(codes[j], -127);  // -128 is never produced
      // Documented bound: |x - x_hat| <= scale/2 (plus fp slack).
      EXPECT_LE(std::abs(corpus(i, j) - decoded[j]),
                params.scale[j] * 0.5 * (1.0 + 1e-12))
          << "row " << i << " dim " << j;
    }
  }
}

TEST(QuantizeTest, ParamsIndependentOfRowOrder) {
  Rng rng(12);
  const Matrix corpus = Matrix::RandomNormal(64, 8, rng);
  std::vector<int> reversed(64);
  for (int i = 0; i < 64; ++i) reversed[i] = 63 - i;
  const QuantizationParams a = ComputeParams(corpus);
  const QuantizationParams b = ComputeParams(corpus.Gather(reversed));
  for (int j = 0; j < 8; ++j) {
    EXPECT_EQ(a.scale[j], b.scale[j]);
    EXPECT_EQ(a.offset[j], b.offset[j]);
  }
}

TEST(QuantizeTest, ConstantDimensionIsWellDefined) {
  Matrix corpus(3, 2);
  for (int i = 0; i < 3; ++i) {
    corpus(i, 0) = 5.0;  // degenerate: zero range
    corpus(i, 1) = i;
  }
  const QuantizationParams params = ComputeParams(corpus);
  EXPECT_GT(params.scale[0], 0.0);
  std::vector<int8_t> codes(2);
  std::vector<double> decoded(2);
  QuantizeRowInt8(params, corpus.data(), codes.data());
  DequantizeRowInt8(params, codes.data(), decoded.data());
  EXPECT_EQ(codes[0], 0);
  EXPECT_EQ(decoded[0], 5.0);
}

TEST(QuantizeTest, Bf16RelativeErrorWithin2ToMinus8) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Normal(0.0, 100.0);
    const double decoded = DecodeBf16(EncodeBf16(x));
    EXPECT_LE(std::abs(decoded - x), std::abs(x) * (1.0 / 256.0) + 1e-300)
        << x;
  }
  // Powers of two and zero are exact; specials stay special.
  EXPECT_EQ(DecodeBf16(EncodeBf16(0.0)), 0.0);
  EXPECT_EQ(DecodeBf16(EncodeBf16(2.0)), 2.0);
  EXPECT_EQ(DecodeBf16(EncodeBf16(-0.25)), -0.25);
  EXPECT_TRUE(std::isnan(DecodeBf16(EncodeBf16(
      std::numeric_limits<double>::quiet_NaN()))));
  EXPECT_TRUE(std::isinf(DecodeBf16(EncodeBf16(
      std::numeric_limits<double>::infinity()))));
}

// --- Store persistence -------------------------------------------------------

TEST(StoreTest, BuildSaveMapRoundTripsBitwise) {
  Rng rng(21);
  const Matrix corpus = RowNormalize(Matrix::RandomNormal(100, 19, rng));
  for (const Tier tier : {Tier::kInt8, Tier::kBf16}) {
    const QuantizedStore built = QuantizedStore::Build(corpus, tier);
    ASSERT_TRUE(built.is_open());
    EXPECT_EQ(built.num_vectors(), 100);
    EXPECT_EQ(built.dim(), 19);
    EXPECT_EQ(built.row_stride() % 64, 0);
    const std::string path = TestPath(tier == Tier::kInt8 ? "store_i8.ggqs"
                                                          : "store_bf16.ggqs");
    ASSERT_TRUE(built.Save(path));

    QuantizedStore mapped;
    ASSERT_TRUE(mapped.Map(path));
    EXPECT_TRUE(mapped.mapped());
    QuantizedStore loaded;
    ASSERT_TRUE(loaded.Load(path));
    EXPECT_FALSE(loaded.mapped());
    for (const QuantizedStore* other : {&mapped, &loaded}) {
      ASSERT_EQ(other->num_vectors(), built.num_vectors());
      ASSERT_EQ(other->dim(), built.dim());
      ASSERT_EQ(other->tier(), built.tier());
      for (int j = 0; j < built.dim(); ++j) {
        EXPECT_EQ(other->params().scale[j], built.params().scale[j]);
        EXPECT_EQ(other->params().offset[j], built.params().offset[j]);
      }
      for (int64_t i = 0; i < built.num_vectors(); ++i) {
        EXPECT_EQ(other->inv_norm(i), built.inv_norm(i)) << i;
        if (tier == Tier::kInt8) {
          EXPECT_EQ(std::memcmp(other->RowInt8(i), built.RowInt8(i),
                                static_cast<size_t>(built.dim())),
                    0)
              << i;
        } else {
          EXPECT_EQ(std::memcmp(other->RowBf16(i), built.RowBf16(i),
                                2 * static_cast<size_t>(built.dim())),
                    0)
              << i;
        }
      }
    }
  }
}

TEST(StoreTest, StreamingWriterMatchesBulkSaveByteForByte) {
  Rng rng(22);
  const Matrix corpus = RowNormalize(Matrix::RandomNormal(37, 12, rng));
  const QuantizationParams params = ComputeParams(corpus);
  const std::string bulk_path = TestPath("store_bulk.ggqs");
  const std::string stream_path = TestPath("store_stream.ggqs");
  ASSERT_TRUE(QuantizedStore::BuildWithParams(corpus, params, Tier::kInt8)
                  .Save(bulk_path));
  StoreWriter writer(stream_path, params, Tier::kInt8);
  for (int i = 0; i < corpus.rows(); ++i) {
    ASSERT_TRUE(writer.Append(corpus.data() + i * corpus.cols()));
  }
  ASSERT_TRUE(writer.Finalize());
  EXPECT_EQ(writer.rows_written(), 37);
  EXPECT_EQ(SlurpBytes(stream_path), SlurpBytes(bulk_path));
}

TEST(StoreTest, CorruptStoreRejectionBatteryWithZeroAllocations) {
  Rng rng(23);
  const Matrix corpus = RowNormalize(Matrix::RandomNormal(20, 9, rng));
  const std::string good_path = TestPath("store_good.ggqs");
  ASSERT_TRUE(QuantizedStore::Build(corpus, Tier::kInt8).Save(good_path));
  const std::vector<unsigned char> good = SlurpBytes(good_path);

  // StoreHeader field offsets (see retrieval/store.h).
  constexpr size_t kMagic = 0, kVersion = 4, kTier = 8, kDim = 12;
  constexpr size_t kNumVectors = 16, kRowStride = 24;
  constexpr size_t kVectorsOffset = 32, kNormsOffset = 40;

  struct Case {
    const char* name;
    std::vector<unsigned char> bytes;
  };
  std::vector<Case> cases;
  auto patched = [&](const char* name, auto mutate) {
    Case c{name, good};
    mutate(&c.bytes);
    cases.push_back(std::move(c));
  };
  patched("bad magic", [&](std::vector<unsigned char>* b) {
    (*b)[kMagic] = 'X';
  });
  patched("bad version", [&](std::vector<unsigned char>* b) {
    Patch<uint32_t>(b, kVersion, 999);
  });
  patched("bad tier", [&](std::vector<unsigned char>* b) {
    Patch<int32_t>(b, kTier, 7);
  });
  patched("zero dim", [&](std::vector<unsigned char>* b) {
    Patch<int32_t>(b, kDim, 0);
  });
  patched("dim over cap", [&](std::vector<unsigned char>* b) {
    Patch<int32_t>(b, kDim, 1 << 20);
  });
  patched("negative num_vectors", [&](std::vector<unsigned char>* b) {
    Patch<int64_t>(b, kNumVectors, -1);
  });
  patched("lying num_vectors (would size a huge allocation)",
          [&](std::vector<unsigned char>* b) {
            Patch<int64_t>(b, kNumVectors, int64_t{1} << 39);
          });
  patched("num_vectors over cap", [&](std::vector<unsigned char>* b) {
    Patch<int64_t>(b, kNumVectors, (int64_t{1} << 40) + 1);
  });
  patched("wrong row_stride", [&](std::vector<unsigned char>* b) {
    Patch<int64_t>(b, kRowStride, 128);
  });
  patched("wrong vectors_offset", [&](std::vector<unsigned char>* b) {
    Patch<uint64_t>(b, kVectorsOffset, 32);
  });
  patched("wrong norms_offset", [&](std::vector<unsigned char>* b) {
    Patch<uint64_t>(b, kNormsOffset, 64);
  });
  patched("truncated mid-vectors", [&](std::vector<unsigned char>* b) {
    b->resize(b->size() / 2);
  });
  patched("truncated mid-header", [&](std::vector<unsigned char>* b) {
    b->resize(17);
  });
  patched("trailing garbage", [&](std::vector<unsigned char>* b) {
    b->push_back(0);
  });

  const std::string bad_path = TestPath("store_bad.ggqs");
  for (const Case& c : cases) {
    WriteFileBytes(bad_path, c.bytes);
    for (const bool use_map : {true, false}) {
      QuantizedStore store;
      const uint64_t before = HeapNewCalls();
      const bool ok = use_map ? store.Map(bad_path) : store.Load(bad_path);
      const uint64_t allocations = HeapNewCalls() - before;
      EXPECT_FALSE(ok) << c.name << (use_map ? " (Map)" : " (Load)");
      EXPECT_FALSE(store.is_open()) << c.name;
      EXPECT_EQ(allocations, 0u)
          << c.name << (use_map ? " (Map)" : " (Load)")
          << ": structural rejection must not allocate";
    }
  }

  // Value corruption past the structural checks (non-finite scale) may
  // allocate the params vectors but must still reject cleanly.
  Case nan_scale{"nan scale", good};
  Patch<double>(&nan_scale.bytes, 64, std::nan(""));
  WriteFileBytes(bad_path, nan_scale.bytes);
  QuantizedStore store;
  EXPECT_FALSE(store.Map(bad_path));
  EXPECT_FALSE(store.is_open());

  // The unpatched file still loads (the battery's control).
  QuantizedStore control;
  EXPECT_TRUE(control.Map(good_path));
}

// --- Determinism -------------------------------------------------------------

TEST(IvfIndexTest, KMeansBitIdenticalAcross1248Threads) {
  ThreadGuard guard;
  const Matrix corpus = ClusteredCorpus(600, 16, 12, 31);
  IvfConfig config;
  config.nlist = 12;
  config.kmeans_iters = 8;

  SetNumThreads(1);
  const IvfIndex reference = IvfIndex::Build(corpus, config);
  for (const int threads : {2, 4, 8}) {
    SetNumThreads(threads);
    const IvfIndex other = IvfIndex::Build(corpus, config);
    ASSERT_EQ(other.nlist(), reference.nlist()) << threads;
    for (int c = 0; c < reference.nlist(); ++c) {
      for (int j = 0; j < reference.dim(); ++j) {
        EXPECT_EQ(other.centroids()(c, j), reference.centroids()(c, j))
            << "threads=" << threads << " centroid " << c << " dim " << j;
      }
    }
    EXPECT_EQ(other.list_offsets(), reference.list_offsets()) << threads;
    EXPECT_EQ(other.ids(), reference.ids()) << threads;
  }
}

TEST(IvfIndexTest, SearchBatchBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  const Matrix corpus = ClusteredCorpus(500, 12, 10, 32);
  Rng rng(33);
  const Matrix queries = Matrix::RandomNormal(40, 12, rng);
  IvfConfig config;
  config.nlist = 10;
  config.nprobe = 3;
  SetNumThreads(1);
  const IvfIndex index = IvfIndex::Build(corpus, config);
  const auto reference = index.SearchBatch(queries, 10);
  for (const int threads : {2, 4, 8}) {
    SetNumThreads(threads);
    const auto other = index.SearchBatch(queries, 10);
    ASSERT_EQ(other.size(), reference.size());
    for (size_t q = 0; q < reference.size(); ++q) {
      ExpectSameNeighbors(other[q], reference[q], "ivf batch");
    }
  }
}

TEST(IvfIndexTest, FullProbeReproducesFlatInt8ScanExactly) {
  const Matrix corpus = ClusteredCorpus(300, 8, 6, 34);
  const Matrix normalized = RowNormalize(corpus);
  IvfConfig config;
  config.nlist = 6;
  config.nprobe = 6;  // probe everything
  const IvfIndex ivf = IvfIndex::Build(corpus, config);
  const FlatIndex flat =
      FlatIndex::FromStore(QuantizedStore::Build(normalized, Tier::kInt8));
  Rng rng(35);
  const Matrix queries = Matrix::RandomNormal(25, 8, rng);
  for (int q = 0; q < queries.rows(); ++q) {
    const auto a = ivf.Search(queries.data() + q * 8, 12);
    const auto b = flat.Search(queries.data() + q * 8, 12);
    ExpectSameNeighbors(a, b, "full-probe vs flat");
  }
}

TEST(IvfIndexTest, BuildFromMappedStoreFullProbeMatchesSourceScanExactly) {
  ThreadGuard guard;
  // An on-disk store is the ground truth: BuildFromStore must regroup
  // its rows without re-quantizing, so a full probe scores exactly
  // what a flat scan of the source store scores.
  const Matrix corpus = ClusteredCorpus(400, 12, 8, 38);
  const std::string path = TestPath("ivf_from_store.ggqs");
  ASSERT_TRUE(QuantizedStore::Build(RowNormalize(corpus), Tier::kInt8)
                  .Save(path));
  QuantizedStore mapped;
  ASSERT_TRUE(mapped.Map(path));

  IvfConfig config;
  config.nlist = 8;
  config.nprobe = 8;  // probe everything
  SetNumThreads(1);
  const IvfIndex ivf = IvfIndex::BuildFromStore(mapped, config);
  EXPECT_EQ(ivf.num_vectors(), mapped.num_vectors());
  EXPECT_EQ(ivf.tier(), Tier::kInt8);
  // Quantization params are preserved verbatim — nothing re-encoded.
  EXPECT_EQ(ivf.store().params().scale, mapped.params().scale);
  EXPECT_EQ(ivf.store().params().offset, mapped.params().offset);

  QuantizedStore source;
  ASSERT_TRUE(source.Map(path));
  const FlatIndex flat = FlatIndex::FromStore(std::move(source));
  Rng rng(39);
  const Matrix queries = Matrix::RandomNormal(25, 12, rng);
  for (int q = 0; q < queries.rows(); ++q) {
    const auto a = ivf.Search(queries.data() + q * 12, 15);
    const auto b = flat.Search(queries.data() + q * 12, 15);
    ExpectSameNeighbors(a, b, "from-store full probe vs source scan");
  }

  // The one-row-at-a-time k-means is bit-identical at every thread
  // count, like the in-RAM Build.
  for (const int threads : {2, 4, 8}) {
    SetNumThreads(threads);
    const IvfIndex other = IvfIndex::BuildFromStore(mapped, config);
    ASSERT_EQ(other.nlist(), ivf.nlist()) << threads;
    for (int c = 0; c < ivf.nlist(); ++c) {
      for (int j = 0; j < ivf.dim(); ++j) {
        EXPECT_EQ(other.centroids()(c, j), ivf.centroids()(c, j))
            << "threads=" << threads << " centroid " << c << " dim " << j;
      }
    }
    EXPECT_EQ(other.list_offsets(), ivf.list_offsets()) << threads;
    EXPECT_EQ(other.ids(), ivf.ids()) << threads;
  }
}

TEST(IvfIndexTest, WiderProbeNeverLowersRecallAndQuantizationIsTight) {
  const Matrix corpus = ClusteredCorpus(400, 16, 8, 36);
  IvfConfig config;
  config.nlist = 8;
  const IvfIndex ivf = IvfIndex::Build(corpus, config);
  // Same-scorer truth: a flat scan over the same int8 store. Against a
  // FIXED total-order scorer, widening the candidate set can only add
  // better-or-equal candidates, so recall is rigorously monotone in
  // nprobe and reaches 1.0 at nprobe == nlist. (Recall vs a different
  // scorer — e.g. exact f64 — need not be monotone.)
  const FlatIndex flat_int8 = FlatIndex::FromStore(
      QuantizedStore::Build(RowNormalize(corpus), Tier::kInt8));
  const FlatIndex exact = FlatIndex::BuildExact(corpus);
  Rng rng(37);
  const Matrix queries = Matrix::RandomNormal(30, 16, rng);
  constexpr int kK = 10;
  auto recall_against = [&](const int nprobe, const FlatIndex& truth_index) {
    int hits = 0;
    for (int q = 0; q < queries.rows(); ++q) {
      const auto truth = truth_index.Search(queries.data() + q * 16, kK);
      const auto got = ivf.Search(queries.data() + q * 16, kK, nprobe);
      for (const Neighbor& t : truth) {
        for (const Neighbor& g : got) {
          if (g.index == t.index) {
            ++hits;
            break;
          }
        }
      }
    }
    return static_cast<double>(hits) / (queries.rows() * kK);
  };
  double prev_recall = -1.0;
  for (const int nprobe : {1, 2, 4, 8}) {
    const double recall = recall_against(nprobe, flat_int8);
    EXPECT_GE(recall, prev_recall) << "nprobe " << nprobe;
    prev_recall = recall;
  }
  EXPECT_EQ(prev_recall, 1.0);  // full probe == flat int8 scan
  // Asymmetric scoring keeps quantization ranking error query-side
  // only: full probe vs the exact f64 ranking stays near-perfect.
  EXPECT_GE(recall_against(8, exact), 0.9);
}

TEST(FlatIndexTest, ExactSearchBreaksTiesByAscendingIndex) {
  // Duplicate rows force exact score ties at every rank.
  Matrix corpus(6, 4);
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < 4; ++j) corpus(i, j) = (i % 2 == 0) ? 1.0 : -1.0;
  }
  const FlatIndex index = FlatIndex::BuildExact(corpus);
  const double query[4] = {1.0, 1.0, 1.0, 1.0};
  const auto top = index.Search(query, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].index, 0);
  EXPECT_EQ(top[1].index, 2);
  EXPECT_EQ(top[2].index, 4);
}

// --- RetrievalEngine ---------------------------------------------------------

TEST(RetrievalEngineTest, BatchedServingMatchesDirectSearch) {
  const Matrix corpus = ClusteredCorpus(400, 12, 8, 41);
  IvfConfig config;
  config.nlist = 8;
  config.nprobe = 4;
  const IvfIndex index = IvfIndex::Build(corpus, config);

  Rng rng(42);
  constexpr int kClients = 4, kPerClient = 8, kK = 5;
  std::vector<Matrix> client_queries;
  std::vector<std::vector<std::vector<Neighbor>>> expected;
  for (int c = 0; c < kClients; ++c) {
    client_queries.push_back(Matrix::RandomNormal(kPerClient, 12, rng));
    expected.push_back(index.SearchBatch(client_queries.back(), kK));
  }

  RetrievalOptions options;
  options.num_workers = 2;
  options.max_batch_queries = 8;
  RetrievalEngine engine(index, options);
  std::vector<RetrievalResult> results(kClients);
  {
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        results[c] = engine.Search(client_queries[c], kK);
      });
    }
    for (std::thread& t : clients) t.join();
  }
  for (int c = 0; c < kClients; ++c) {
    ASSERT_EQ(results[c].status, RetrievalStatus::kOk) << c;
    ASSERT_EQ(results[c].neighbors.size(), expected[c].size()) << c;
    for (size_t q = 0; q < expected[c].size(); ++q) {
      ExpectSameNeighbors(results[c].neighbors[q], expected[c][q], "engine");
    }
  }
}

TEST(RetrievalEngineTest, ZeroWorkerManualPumpAndFlatIndex) {
  const Matrix corpus = ClusteredCorpus(120, 8, 4, 43);
  const FlatIndex index = FlatIndex::BuildExact(corpus);
  Rng rng(44);
  const Matrix queries = Matrix::RandomNormal(3, 8, rng);
  const auto expected = index.SearchBatch(queries, 4);

  RetrievalOptions options;
  options.num_workers = 0;
  RetrievalEngine engine(index, options);
  EXPECT_FALSE(engine.RunOneBatch());  // nothing queued yet
  RetrievalResult result;
  std::thread client([&] { result = engine.Search(queries, 4); });
  while (engine.QueueDepth() == 0) std::this_thread::yield();
  EXPECT_TRUE(engine.RunOneBatch());
  client.join();
  ASSERT_EQ(result.status, RetrievalStatus::kOk);
  for (size_t q = 0; q < expected.size(); ++q) {
    ExpectSameNeighbors(result.neighbors[q], expected[q], "pump");
  }
}

TEST(RetrievalEngineTest, AdmissionControlRejectsWhenEveryShardIsFull) {
  const Matrix corpus = ClusteredCorpus(60, 6, 3, 45);
  const FlatIndex index = FlatIndex::BuildExact(corpus);
  RetrievalOptions options;
  options.num_workers = 0;
  options.num_shards = 1;
  options.max_queue_queries = 2;
  RetrievalEngine engine(index, options);
  Rng rng(46);
  const Matrix queued = Matrix::RandomNormal(2, 6, rng);
  const Matrix rejected = Matrix::RandomNormal(1, 6, rng);
  RetrievalResult queued_result;
  std::thread client([&] { queued_result = engine.Search(queued, 2); });
  while (engine.QueueDepth() < 2) std::this_thread::yield();
  // The single shard's budget (2 queries) is exhausted: reject.
  const RetrievalResult overflow = engine.Search(rejected, 2);
  EXPECT_EQ(overflow.status, RetrievalStatus::kOverloaded);
  EXPECT_TRUE(overflow.neighbors.empty());
  while (engine.QueueDepth() > 0) engine.RunOneBatch();
  client.join();
  EXPECT_EQ(queued_result.status, RetrievalStatus::kOk);
}

TEST(RetrievalEngineTest, ShutdownCancelsPendingAndRejectsNewRequests) {
  const Matrix corpus = ClusteredCorpus(60, 6, 3, 47);
  const FlatIndex index = FlatIndex::BuildExact(corpus);
  RetrievalOptions options;
  options.num_workers = 0;
  options.cancel_pending_on_shutdown = true;
  RetrievalEngine engine(index, options);
  Rng rng(48);
  const Matrix queries = Matrix::RandomNormal(1, 6, rng);
  RetrievalResult pending;
  std::thread client([&] { pending = engine.Search(queries, 2); });
  while (engine.QueueDepth() == 0) std::this_thread::yield();
  engine.Shutdown();
  client.join();
  EXPECT_EQ(pending.status, RetrievalStatus::kShutdown);
  const RetrievalResult after = engine.Search(queries, 2);
  EXPECT_EQ(after.status, RetrievalStatus::kShutdown);
}

TEST(RetrievalEngineTest, NprobeEnvKnobResolvesAtConstruction) {
  const Matrix corpus = ClusteredCorpus(200, 8, 8, 49);
  IvfConfig config;
  config.nlist = 8;
  config.nprobe = 2;
  const IvfIndex index = IvfIndex::Build(corpus, config);
  RetrievalOptions options;
  options.num_workers = 0;
  {
    RetrievalEngine engine(index, options);
    EXPECT_EQ(engine.resolved_nprobe(), 2);  // index default
  }
  ::setenv("GRADGCL_RETRIEVAL_NPROBE", "5", 1);
  {
    RetrievalEngine engine(index, options);
    EXPECT_EQ(engine.resolved_nprobe(), 5);
  }
  ::unsetenv("GRADGCL_RETRIEVAL_NPROBE");
  options.nprobe = 3;  // explicit option beats env
  ::setenv("GRADGCL_RETRIEVAL_NPROBE", "7", 1);
  {
    RetrievalEngine engine(index, options);
    EXPECT_EQ(engine.resolved_nprobe(), 3);
  }
  ::unsetenv("GRADGCL_RETRIEVAL_NPROBE");
}

TEST(RetrievalEngineTest, MetricsCountRequestsAndBatches) {
  const Matrix corpus = ClusteredCorpus(100, 6, 4, 50);
  const FlatIndex index = FlatIndex::BuildExact(corpus);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Instance();
  const uint64_t requests_before =
      registry.Snapshot().counter("retrieval/requests");
  const uint64_t batches_before =
      registry.Snapshot().counter("retrieval/batches");
  RetrievalOptions options;
  options.num_workers = 1;
  options.max_wait_micros = 0.0;  // launch-when-free
  {
    RetrievalEngine engine(index, options);
    Rng rng(51);
    const Matrix queries = Matrix::RandomNormal(2, 6, rng);
    ASSERT_EQ(engine.Search(queries, 3).status, RetrievalStatus::kOk);
    ASSERT_EQ(engine.Search(queries, 3).status, RetrievalStatus::kOk);
  }
  const obs::MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counter("retrieval/requests") - requests_before, 2u);
  EXPECT_GE(snap.counter("retrieval/batches") - batches_before, 1u);
  const obs::HistogramData* latency = snap.histogram("retrieval/latency_us");
  ASSERT_NE(latency, nullptr);
  EXPECT_GE(latency->total, 2u);
}

}  // namespace
}  // namespace gradgcl::retrieval
