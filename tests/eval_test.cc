#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "eval/cross_validation.h"
#include "eval/probes.h"
#include "eval/similarity.h"
#include "eval/spectrum.h"
#include "eval/tsne.h"
#include "tensor/ops.h"

namespace gradgcl {
namespace {

// Two well-separated Gaussian blobs in d dims with labels 0/1.
std::pair<Matrix, std::vector<int>> TwoBlobs(int n_per_class, int dim,
                                             double separation,
                                             uint64_t seed) {
  Rng rng(seed);
  Matrix x(2 * n_per_class, dim);
  std::vector<int> y(2 * n_per_class);
  for (int i = 0; i < 2 * n_per_class; ++i) {
    const int label = i < n_per_class ? 0 : 1;
    y[i] = label;
    for (int j = 0; j < dim; ++j) {
      x(i, j) = rng.Normal(label == 0 ? -separation : separation, 1.0);
    }
  }
  return {x, y};
}

TEST(ProbeTest, LogisticSeparatesBlobs) {
  const auto [x, y] = TwoBlobs(40, 4, 2.0, 1);
  ProbeOptions options;
  options.kind = ProbeKind::kLogistic;
  LinearProbe probe = LinearProbe::Fit(x, y, 2, options);
  EXPECT_GT(Accuracy(probe.Predict(x), y), 0.95);
}

TEST(ProbeTest, SvmSeparatesBlobs) {
  const auto [x, y] = TwoBlobs(40, 4, 2.0, 2);
  ProbeOptions options;
  options.kind = ProbeKind::kLinearSvm;
  LinearProbe probe = LinearProbe::Fit(x, y, 2, options);
  EXPECT_GT(Accuracy(probe.Predict(x), y), 0.95);
}

TEST(ProbeTest, MulticlassLogistic) {
  Rng rng(3);
  const int per_class = 30, classes = 4, dim = 6;
  Matrix means = Matrix::RandomNormal(classes, dim, rng, 0.0, 4.0);
  Matrix x(per_class * classes, dim);
  std::vector<int> y(per_class * classes);
  for (int i = 0; i < x.rows(); ++i) {
    y[i] = i % classes;
    for (int j = 0; j < dim; ++j) {
      x(i, j) = means(y[i], j) + rng.Normal(0, 0.5);
    }
  }
  ProbeOptions options;
  options.kind = ProbeKind::kLogistic;
  LinearProbe probe = LinearProbe::Fit(x, y, classes, options);
  EXPECT_GT(Accuracy(probe.Predict(x), y), 0.9);
}

TEST(ProbeTest, ScoresShape) {
  const auto [x, y] = TwoBlobs(10, 3, 1.0, 4);
  LinearProbe probe = LinearProbe::Fit(x, y, 2, {});
  const Matrix scores = probe.Scores(x);
  EXPECT_EQ(scores.rows(), x.rows());
  EXPECT_EQ(scores.cols(), 2);
}

TEST(ProbeDeathTest, LabelOutOfRangeAborts) {
  const Matrix x(4, 2, 1.0);
  EXPECT_DEATH(LinearProbe::Fit(x, {0, 1, 2, 0}, 2, {}), "GRADGCL_CHECK");
}

TEST(AccuracyTest, KnownFractions) {
  EXPECT_DOUBLE_EQ(Accuracy({1, 0, 1, 1}, {1, 0, 0, 1}), 0.75);
  EXPECT_DOUBLE_EQ(Accuracy({1}, {1}), 1.0);
  EXPECT_DOUBLE_EQ(Accuracy({0}, {1}), 0.0);
}

TEST(RocAucTest, PerfectRanking) {
  EXPECT_DOUBLE_EQ(RocAuc({0.1, 0.2, 0.8, 0.9}, {0, 0, 1, 1}), 1.0);
}

TEST(RocAucTest, InvertedRanking) {
  EXPECT_DOUBLE_EQ(RocAuc({0.9, 0.8, 0.2, 0.1}, {0, 0, 1, 1}), 0.0);
}

TEST(RocAucTest, RandomScoresNearHalf) {
  Rng rng(5);
  std::vector<double> scores(2000);
  std::vector<int> labels(2000);
  for (int i = 0; i < 2000; ++i) {
    scores[i] = rng.Uniform();
    labels[i] = rng.Bernoulli(0.5) ? 1 : 0;
  }
  EXPECT_NEAR(RocAuc(scores, labels), 0.5, 0.05);
}

TEST(RocAucTest, TiesHandledByMidrank) {
  // All scores equal: AUC must be exactly 0.5.
  EXPECT_DOUBLE_EQ(RocAuc({1, 1, 1, 1}, {0, 1, 0, 1}), 0.5);
}

TEST(RocAucTest, DegenerateSingleClass) {
  EXPECT_DOUBLE_EQ(RocAuc({0.1, 0.9}, {1, 1}), 0.5);
}

TEST(RocAucTest, MonotoneTransformInvariant) {
  const std::vector<int> labels = {0, 1, 0, 1, 1, 0, 1};
  const std::vector<double> scores = {0.1, 0.4, 0.35, 0.8, 0.65, 0.2, 0.9};
  std::vector<double> transformed;
  for (double s : scores) transformed.push_back(std::exp(3.0 * s));
  EXPECT_DOUBLE_EQ(RocAuc(scores, labels), RocAuc(transformed, labels));
}

TEST(ConfusionMatrixTest, KnownCounts) {
  const Matrix confusion =
      ConfusionMatrix({0, 1, 1, 0, 2}, {0, 1, 0, 0, 2}, 3);
  EXPECT_DOUBLE_EQ(confusion(0, 0), 2.0);  // two correct class-0
  EXPECT_DOUBLE_EQ(confusion(0, 1), 1.0);  // one 0 predicted as 1
  EXPECT_DOUBLE_EQ(confusion(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(confusion(2, 2), 1.0);
  EXPECT_DOUBLE_EQ(confusion.Sum(), 5.0);
}

TEST(MacroF1Test, PerfectPredictionsGiveOne) {
  EXPECT_DOUBLE_EQ(MacroF1({0, 1, 2, 0}, {0, 1, 2, 0}, 3), 1.0);
}

TEST(MacroF1Test, KnownBinaryCase) {
  // preds: {1,1,0,0}, labels: {1,0,0,0}.
  // class 1: tp=1 fp=1 fn=0 -> F1 = 2/3; class 0: tp=2 fp=0 fn=1 -> 0.8.
  EXPECT_NEAR(MacroF1({1, 1, 0, 0}, {1, 0, 0, 0}, 2), (2.0 / 3 + 0.8) / 2,
              1e-12);
}

TEST(MacroF1Test, AbsentClassSkipped) {
  // Class 2 never appears: average over the two present classes only.
  EXPECT_DOUBLE_EQ(MacroF1({0, 1}, {0, 1}, 3), 1.0);
}

TEST(KFoldTest, PartitionProperties) {
  Rng rng(6);
  const std::vector<std::vector<int>> splits = KFoldSplits(25, 4, rng);
  ASSERT_EQ(splits.size(), 4u);
  std::set<int> all;
  for (const auto& fold : splits) {
    EXPECT_GE(fold.size(), 6u);
    all.insert(fold.begin(), fold.end());
  }
  EXPECT_EQ(all.size(), 25u);
}

TEST(CrossValidationTest, SeparableEmbeddingsScoreHigh) {
  const auto [x, y] = TwoBlobs(30, 4, 3.0, 7);
  const ScoreSummary summary =
      CrossValidateAccuracy(x, y, 2, 5, {}, /*seed=*/8);
  EXPECT_GT(summary.mean, 0.9);
  EXPECT_EQ(summary.count, 5);
}

TEST(CrossValidationTest, RandomEmbeddingsScoreNearChance) {
  Rng rng(9);
  const Matrix x = Matrix::RandomNormal(80, 6, rng);
  std::vector<int> y(80);
  for (int i = 0; i < 80; ++i) y[i] = rng.Bernoulli(0.5) ? 1 : 0;
  const ScoreSummary summary =
      CrossValidateAccuracy(x, y, 2, 5, {}, /*seed=*/10);
  EXPECT_NEAR(summary.mean, 0.5, 0.18);
}

TEST(ProbeTest, FitIsDeterministicInSeed) {
  const auto [x, y] = TwoBlobs(20, 3, 1.0, 21);
  ProbeOptions options;
  options.seed = 9;
  LinearProbe a = LinearProbe::Fit(x, y, 2, options);
  LinearProbe b = LinearProbe::Fit(x, y, 2, options);
  EXPECT_TRUE(AllClose(a.Scores(x), b.Scores(x), 0.0));
}

TEST(CrossValidationTest, LogisticAndSvmBothWork) {
  const auto [x, y] = TwoBlobs(25, 4, 2.5, 22);
  for (ProbeKind kind : {ProbeKind::kLogistic, ProbeKind::kLinearSvm}) {
    ProbeOptions options;
    options.kind = kind;
    const ScoreSummary s = CrossValidateAccuracy(x, y, 2, 5, options, 23);
    EXPECT_GT(s.mean, 0.85) << static_cast<int>(kind);
  }
}

TEST(SummarizeTest, MeanAndStd) {
  const ScoreSummary s = Summarize({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_DOUBLE_EQ(s.stddev, 1.0);
  EXPECT_EQ(s.count, 3);
  EXPECT_DOUBLE_EQ(Summarize({5.0}).stddev, 0.0);
}

// --- Spectrum -------------------------------------------------------------------

TEST(SpectrumEvalTest, DetectsPlantedCollapse) {
  Rng rng(11);
  Matrix basis = Matrix::RandomNormal(3, 10, rng);
  Matrix coeffs = Matrix::RandomNormal(60, 3, rng);
  const SpectrumReport report = AnalyzeSpectrum(MatMul(coeffs, basis));
  EXPECT_EQ(report.surviving_dims, 3);
  EXPECT_LE(report.effective_rank, 3.1);
  ASSERT_EQ(report.log10_values.size(), 10u);
  // Collapsed dimensions are floored.
  EXPECT_LE(report.log10_values.back(), -10.0);
}

TEST(SpectrumEvalTest, TsvHasOneFieldPerDimension) {
  Rng rng(12);
  const SpectrumReport report =
      AnalyzeSpectrum(Matrix::RandomNormal(40, 6, rng));
  const std::string tsv = SpectrumTsv(report);
  EXPECT_EQ(std::count(tsv.begin(), tsv.end(), '\t'), 5);
}

// --- Similarity -----------------------------------------------------------------

TEST(SimilarityTest, BlockStructureDetected) {
  // Two tight clusters: intra >> inter.
  Rng rng(13);
  Matrix x(40, 6);
  std::vector<int> y(40);
  Matrix mean0 = Matrix::RandomNormal(1, 6, rng);
  Matrix mean1 = Matrix::RandomNormal(1, 6, rng);
  for (int i = 0; i < 40; ++i) {
    y[i] = i % 2;
    for (int j = 0; j < 6; ++j) {
      x(i, j) = (y[i] == 0 ? mean0(0, j) : mean1(0, j)) + rng.Normal(0, 0.05);
    }
  }
  const SimilarityReport report = AnalyzeSimilarity(x, y);
  EXPECT_GT(report.intra_class_mean, 0.95);
  EXPECT_GT(report.block_contrast, 0.1);
}

TEST(SimilarityTest, DiverseEmbeddingsHaveHigherEntropy) {
  Rng rng(14);
  // Collapsed: all rows nearly identical.
  Matrix collapsed(30, 6, 1.0);
  for (int i = 0; i < collapsed.size(); ++i) {
    collapsed.at_flat(i) += rng.Normal(0, 0.01);
  }
  const Matrix diverse = Matrix::RandomNormal(30, 6, rng);
  std::vector<int> y(30);
  for (int i = 0; i < 30; ++i) y[i] = i % 2;
  const SimilarityReport c = AnalyzeSimilarity(collapsed, y);
  const SimilarityReport d = AnalyzeSimilarity(diverse, y);
  EXPECT_GT(d.similarity_entropy, c.similarity_entropy);
  EXPECT_GT(d.similarity_stddev, c.similarity_stddev);
}

TEST(SimilarityTest, AsciiHeatmapDimensions) {
  Rng rng(15);
  const Matrix x = Matrix::RandomNormal(30, 4, rng);
  std::vector<int> y(30, 0);
  const std::string heatmap = AsciiSimilarityHeatmap(x, y, 10);
  EXPECT_EQ(std::count(heatmap.begin(), heatmap.end(), '\n'), 10);
}

// --- t-SNE ------------------------------------------------------------------------

TEST(TsneTest, OutputShape) {
  Rng rng(16);
  const Matrix x = Matrix::RandomNormal(30, 8, rng);
  TsneOptions options;
  options.iterations = 50;
  options.perplexity = 8.0;
  const Matrix y = Tsne(x, options);
  EXPECT_EQ(y.rows(), 30);
  EXPECT_EQ(y.cols(), 2);
  EXPECT_TRUE(y.AllFinite());
}

TEST(TsneTest, SeparatesDistantClusters) {
  const auto [x, labels] = TwoBlobs(20, 6, 5.0, 17);
  TsneOptions options;
  options.perplexity = 10.0;
  options.iterations = 200;
  const Matrix y = Tsne(x, options);
  EXPECT_GT(SilhouetteScore(y, labels), 0.3);
}

TEST(TsneTest, DeterministicInSeed) {
  Rng rng(18);
  const Matrix x = Matrix::RandomNormal(20, 5, rng);
  TsneOptions options;
  options.iterations = 30;
  options.perplexity = 6.0;
  EXPECT_TRUE(AllClose(Tsne(x, options), Tsne(x, options)));
}

// Deterministic top-k (eval/similarity): ties break by ASCENDING
// index, the ordering contract the retrieval indexes build on.
TEST(TopKTest, TiesBreakByAscendingIndex) {
  const double scores[] = {0.5, 0.9, 0.5, 0.9, 0.1, 0.9};
  const auto top = TopKNeighbors(scores, 6, 4);
  ASSERT_EQ(top.size(), 4u);
  EXPECT_EQ(top[0].index, 1);  // the 0.9s first, lowest index leading
  EXPECT_EQ(top[1].index, 3);
  EXPECT_EQ(top[2].index, 5);
  EXPECT_EQ(top[3].index, 0);  // then the first 0.5
  EXPECT_EQ(top[3].score, 0.5);
  const auto indices = TopKIndices(scores, 6, 4);
  for (size_t i = 0; i < top.size(); ++i) EXPECT_EQ(indices[i], top[i].index);
}

TEST(TopKTest, AllTiedReturnsFirstKIndicesInOrder) {
  const std::vector<double> scores(100, 1.0);
  const auto indices = TopKIndices(scores.data(), 100, 5);
  ASSERT_EQ(indices.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(indices[i], i);
}

TEST(TopKTest, KLargerThanNAndEmptyInputs) {
  const double scores[] = {0.2, 0.8};
  const auto top = TopKNeighbors(scores, 2, 10);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].index, 1);
  EXPECT_EQ(top[1].index, 0);
  EXPECT_TRUE(TopKNeighbors(scores, 2, 0).empty());
  EXPECT_TRUE(TopKNeighbors(nullptr, 0, 3).empty());
}

TEST(TopKTest, OrderedByScoreDescendingOnRandomInput) {
  Rng rng(20);
  std::vector<double> scores(500);
  for (double& s : scores) s = rng.Uniform();
  const auto top = TopKNeighbors(scores.data(), 500, 50);
  ASSERT_EQ(top.size(), 50u);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].score, top[i].score) << i;
  }
  // The k-th kept score dominates everything not kept.
  std::vector<double> sorted = scores;
  std::sort(sorted.rbegin(), sorted.rend());
  EXPECT_EQ(top.back().score, sorted[49]);
}

TEST(SilhouetteTest, PerfectClustersNearOne) {
  Matrix x{{0, 0}, {0.1, 0}, {10, 10}, {10.1, 10}};
  EXPECT_GT(SilhouetteScore(x, {0, 0, 1, 1}), 0.9);
}

TEST(SilhouetteTest, MixedClustersLow) {
  Rng rng(19);
  const Matrix x = Matrix::RandomNormal(40, 3, rng);
  std::vector<int> y(40);
  for (int i = 0; i < 40; ++i) y[i] = i % 2;  // labels unrelated to geometry
  EXPECT_LT(std::abs(SilhouetteScore(x, y)), 0.2);
}

}  // namespace
}  // namespace gradgcl
