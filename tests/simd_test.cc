// Pins the SIMD layer's contracts (tensor/simd.h): runtime dispatch and
// the GRADGCL_SIMD kill-switch, the per-table rounding specs (FMA chain
// per GEMM element, laned dot combination), SIMD-vs-scalar agreement,
// bitwise elementwise/Adam invariance across tables, fused == unfused
// in either SIMD mode, NaN propagation (no zero-skip short-circuits),
// and the 64-byte buffer alignment the kernels rely on.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"
#include "tensor/pool.h"
#include "tensor/simd.h"

namespace gradgcl {
namespace {

class ThreadGuard {
 public:
  ThreadGuard() : saved_(NumThreads()) {}
  ~ThreadGuard() { SetNumThreads(saved_); }

 private:
  int saved_;
};

class SimdGuard {
 public:
  SimdGuard() : saved_(simd::Enabled()) {}
  ~SimdGuard() { simd::SetEnabled(saved_); }

 private:
  bool saved_;
};

// Vector width of the table's dot/sum lane split (1 = sequential).
int LaneWidth(simd::Isa isa) {
  switch (isa) {
    case simd::Isa::kAvx2:
      return 4;
    case simd::Isa::kNeon:
      return 2;
    case simd::Isa::kScalar:
      return 1;
  }
  return 1;
}

void ExpectBitIdentical(const Matrix& actual, const Matrix& expected,
                        const char* what) {
  ASSERT_EQ(actual.rows(), expected.rows()) << what;
  ASSERT_EQ(actual.cols(), expected.cols()) << what;
  EXPECT_EQ(std::memcmp(actual.data(), expected.data(),
                        sizeof(double) * actual.size()),
            0)
      << what;
}

double MaxRelDiff(const Matrix& a, const Matrix& b) {
  double worst = 0.0;
  for (int i = 0; i < a.size(); ++i) {
    const double scale =
        std::max({1.0, std::abs(a.at_flat(i)), std::abs(b.at_flat(i))});
    worst = std::max(worst, std::abs(a.at_flat(i) - b.at_flat(i)) / scale);
  }
  return worst;
}

// Reference for the documented gemm/gemm_transa element rounding: one
// chain per element, k ascending — plain mul+add for the scalar table,
// single-rounded FMA steps for the vector tables.
Matrix RefMatMul(const Matrix& a, const Matrix& b, bool fma) {
  Matrix out(a.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < b.cols(); ++j) {
      double acc = 0.0;
      for (int kk = 0; kk < a.cols(); ++kk) {
        acc = fma ? std::fma(a(i, kk), b(kk, j), acc)
                  : acc + a(i, kk) * b(kk, j);
      }
      out(i, j) = acc;
    }
  }
  return out;
}

// Same chain with the row scale rounded into a(i, kk) first and `post`
// applied once after the accumulation completes — the documented
// ScaleRowsMatMulScaled element rounding.
Matrix RefScaleRowsMatMul(const Matrix& a, const Matrix& row_scale,
                          const Matrix& b, double post, bool fma) {
  Matrix out(a.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < b.cols(); ++j) {
      double acc = 0.0;
      for (int kk = 0; kk < a.cols(); ++kk) {
        const double av = a(i, kk) * row_scale(i, 0);
        acc = fma ? std::fma(av, b(kk, j), acc) : acc + av * b(kk, j);
      }
      out(i, j) = (post == 1.0) ? acc : acc * post;
    }
  }
  return out;
}

// Reference for the documented dot rounding at lane width W: W chains
// stepping by W (FMA per step), combined ((l0+l1)+(l2+l3)) for W = 4 /
// l0+l1 for W = 2, ordered std::fma tail. W = 1 is the scalar table's
// sequential mul+add.
double RefDot(const double* x, const double* y, int64_t n, int w) {
  if (w <= 1) {
    double s = 0.0;
    for (int64_t i = 0; i < n; ++i) s += x[i] * y[i];
    return s;
  }
  std::vector<double> lane(w, 0.0);
  const int64_t main = n - n % w;
  for (int64_t i = 0; i < main; i += w) {
    for (int l = 0; l < w; ++l) lane[l] = std::fma(x[i + l], y[i + l], lane[l]);
  }
  double s = (w == 4) ? (lane[0] + lane[1]) + (lane[2] + lane[3])
                      : lane[0] + lane[1];
  for (int64_t i = main; i < n; ++i) s = std::fma(x[i], y[i], s);
  return s;
}

// Same lane split for sum (adds, plain tail).
double RefSum(const double* x, int64_t n, int w) {
  if (w <= 1) {
    double s = 0.0;
    for (int64_t i = 0; i < n; ++i) s += x[i];
    return s;
  }
  std::vector<double> lane(w, 0.0);
  const int64_t main = n - n % w;
  for (int64_t i = 0; i < main; i += w) {
    for (int l = 0; l < w; ++l) lane[l] += x[i + l];
  }
  double s = (w == 4) ? (lane[0] + lane[1]) + (lane[2] + lane[3])
                      : lane[0] + lane[1];
  for (int64_t i = main; i < n; ++i) s += x[i];
  return s;
}

// Shapes exercising every microkernel edge: sub-tile rows (< 4),
// partial column tiles (m % 8), k panel remainders (k % 128), and the
// pure-remainder corners.
struct GemmShape {
  int n, k, m;
};
const GemmShape kGemmShapes[] = {
    {1, 1, 1},   {3, 5, 7},     {4, 8, 8},     {5, 9, 17},
    {2, 130, 3}, {13, 127, 31}, {67, 129, 43}, {16, 256, 24},
};

// --- Dispatch ---------------------------------------------------------------

TEST(SimdDispatchTest, KillSwitchForcesScalarTable) {
  SimdGuard guard;
  simd::SetEnabled(true);
  EXPECT_TRUE(simd::Enabled());
  EXPECT_EQ(simd::ActiveIsa(), simd::CompiledIsa());
  EXPECT_EQ(simd::Active().isa, simd::CompiledIsa());
  simd::SetEnabled(false);
  EXPECT_FALSE(simd::Enabled());
  EXPECT_EQ(simd::ActiveIsa(), simd::Isa::kScalar);
  EXPECT_EQ(simd::Active().isa, simd::Isa::kScalar);
}

TEST(SimdDispatchTest, IsaNamesAreStable) {
  EXPECT_STREQ(simd::IsaName(simd::Isa::kScalar), "scalar");
  EXPECT_STREQ(simd::IsaName(simd::Isa::kAvx2), "avx2");
  EXPECT_STREQ(simd::IsaName(simd::Isa::kNeon), "neon");
}

TEST(SimdDispatchTest, IsAligned64) {
  alignas(64) double buf[16] = {};
  EXPECT_TRUE(simd::IsAligned64(buf));
  EXPECT_FALSE(simd::IsAligned64(buf + 1));
  EXPECT_TRUE(simd::IsAligned64(nullptr));
}

// --- GEMM rounding contracts ------------------------------------------------

TEST(SimdGemmTest, MatMulMatchesDocumentedChainBitwise) {
  SimdGuard guard;
  simd::SetEnabled(true);
  const bool fma = simd::ActiveIsa() != simd::Isa::kScalar;
  Rng rng(101);
  for (const GemmShape& s : kGemmShapes) {
    const Matrix a = Matrix::RandomNormal(s.n, s.k, rng);
    const Matrix b = Matrix::RandomNormal(s.k, s.m, rng);
    ExpectBitIdentical(MatMul(a, b), RefMatMul(a, b, fma), "MatMul chain");
  }
}

TEST(SimdGemmTest, MatMulTransAMatchesDocumentedChainBitwise) {
  SimdGuard guard;
  simd::SetEnabled(true);
  const bool fma = simd::ActiveIsa() != simd::Isa::kScalar;
  Rng rng(102);
  for (const GemmShape& s : kGemmShapes) {
    const Matrix a = Matrix::RandomNormal(s.k, s.n, rng);
    const Matrix b = Matrix::RandomNormal(s.k, s.m, rng);
    ExpectBitIdentical(MatMulTransA(a, b), RefMatMul(a.Transposed(), b, fma),
                       "MatMulTransA chain");
  }
}

TEST(SimdGemmTest, ScaleRowsMatMulScaledMatchesDocumentedChainBitwise) {
  SimdGuard guard;
  simd::SetEnabled(true);
  const bool fma = simd::ActiveIsa() != simd::Isa::kScalar;
  Rng rng(103);
  for (const GemmShape& s : kGemmShapes) {
    const Matrix a = Matrix::RandomNormal(s.n, s.k, rng);
    const Matrix rs = Matrix::RandomNormal(s.n, 1, rng);
    const Matrix b = Matrix::RandomNormal(s.k, s.m, rng);
    ExpectBitIdentical(ScaleRowsMatMulScaled(a, rs, b, 0.25),
                       RefScaleRowsMatMul(a, rs, b, 0.25, fma),
                       "ScaleRowsMatMulScaled chain");
  }
}

TEST(SimdGemmTest, MatMulTransBMatchesLanedDotBitwise) {
  SimdGuard guard;
  simd::SetEnabled(true);
  const int w = LaneWidth(simd::ActiveIsa());
  Rng rng(104);
  for (const GemmShape& s : kGemmShapes) {
    const Matrix a = Matrix::RandomNormal(s.n, s.k, rng);
    const Matrix b = Matrix::RandomNormal(s.m, s.k, rng);
    const Matrix got = MatMulTransBScaled(a, b, 0.7);
    Matrix want(s.n, s.m);
    for (int i = 0; i < s.n; ++i) {
      for (int j = 0; j < s.m; ++j) {
        want(i, j) =
            RefDot(a.data() + int64_t{i} * s.k, b.data() + int64_t{j} * s.k,
                   s.k, w) *
            0.7;
      }
    }
    ExpectBitIdentical(got, want, "MatMulTransBScaled laned dot");
  }
}

TEST(SimdReductionTest, RowSumMatchesLanedSumBitwise) {
  SimdGuard guard;
  simd::SetEnabled(true);
  const int w = LaneWidth(simd::ActiveIsa());
  Rng rng(105);
  const Matrix a = Matrix::RandomNormal(9, 131, rng);
  const Matrix got = RowSum(a);
  for (int i = 0; i < a.rows(); ++i) {
    const double want = RefSum(a.data() + int64_t{i} * a.cols(), a.cols(), w);
    EXPECT_EQ(got(i, 0), want) << "row " << i;
  }
}

// --- SIMD-vs-scalar agreement -----------------------------------------------

// Different (but fixed) reduction orders: the tables agree to tight
// relative tolerance on every shape, including pure-remainder corners.
TEST(SimdAgreementTest, GemmKernelsAgreeWithScalarTable) {
  SimdGuard guard;
  Rng rng(106);
  for (const GemmShape& s : kGemmShapes) {
    const Matrix a = Matrix::RandomNormal(s.n, s.k, rng);
    const Matrix b = Matrix::RandomNormal(s.k, s.m, rng);
    const Matrix bt = Matrix::RandomNormal(s.m, s.k, rng);
    const Matrix at = Matrix::RandomNormal(s.k, s.n, rng);
    const Matrix rs = Matrix::RandomNormal(s.n, 1, rng);
    simd::SetEnabled(true);
    const Matrix mm = MatMul(a, b);
    const Matrix ta = MatMulTransA(at, b);
    const Matrix tb = MatMulTransB(a, bt);
    const Matrix sr = ScaleRowsMatMulScaled(a, rs, b, 0.5);
    simd::SetEnabled(false);
    EXPECT_LT(MaxRelDiff(mm, MatMul(a, b)), 1e-13);
    EXPECT_LT(MaxRelDiff(ta, MatMulTransA(at, b)), 1e-13);
    EXPECT_LT(MaxRelDiff(tb, MatMulTransB(a, bt)), 1e-13);
    EXPECT_LT(MaxRelDiff(sr, ScaleRowsMatMulScaled(a, rs, b, 0.5)), 1e-13);
  }
}

// Elementwise kernels are mul/add/sub only — bit-identical across
// tables, not just close.
TEST(SimdAgreementTest, ElementwiseKernelsBitIdenticalAcrossTables) {
  SimdGuard guard;
  Rng rng(107);
  const Matrix a = Matrix::RandomNormal(13, 41, rng);  // odd tail
  const Matrix b = Matrix::RandomNormal(13, 41, rng);
  simd::SetEnabled(true);
  Matrix sum_on = a;
  sum_on += b;
  Matrix diff_on = a;
  diff_on -= b;
  Matrix scaled_on = a;
  scaled_on *= 1.7;
  const Matrix had_on = Hadamard(a, b);
  simd::SetEnabled(false);
  Matrix sum_off = a;
  sum_off += b;
  Matrix diff_off = a;
  diff_off -= b;
  Matrix scaled_off = a;
  scaled_off *= 1.7;
  ExpectBitIdentical(sum_on, sum_off, "operator+=");
  ExpectBitIdentical(diff_on, diff_off, "operator-=");
  ExpectBitIdentical(scaled_on, scaled_off, "operator*=");
  ExpectBitIdentical(had_on, Hadamard(a, b), "Hadamard");
}

// The Adam update is mul/add/div/sqrt only: the whole training
// trajectory is bit-identical whether SIMD is on or off.
TEST(SimdAgreementTest, AdamKernelBitIdenticalAcrossTables) {
  SimdGuard guard;
  Rng rng(108);
  const int64_t n = 1031;  // odd: exercises the vector kernels' tails
  const Matrix w0 = Matrix::RandomNormal(1, static_cast<int>(n), rng);
  const Matrix m0 = Matrix::RandomNormal(1, static_cast<int>(n), rng, 0, 0.1);
  const Matrix v0 = Abs(Matrix::RandomNormal(1, static_cast<int>(n), rng));
  const Matrix g = Matrix::RandomNormal(1, static_cast<int>(n), rng);
  simd::AdamArgs args;
  args.bc1 = 1.0 - 0.9 * 0.9;
  args.bc2 = 1.0 - 0.999 * 0.999;
  args.weight_decay = 1e-4;
  auto run = [&](bool enabled) {
    simd::SetEnabled(enabled);
    Matrix w = w0, m = m0, v = v0;
    simd::Active().adam(w.data(), m.data(), v.data(), g.data(), n, args);
    return std::vector<Matrix>{w, m, v};
  };
  const std::vector<Matrix> on = run(true);
  const std::vector<Matrix> off = run(false);
  ExpectBitIdentical(on[0], off[0], "adam weights");
  ExpectBitIdentical(on[1], off[1], "adam first moment");
  ExpectBitIdentical(on[2], off[2], "adam second moment");
}

// --- Thread-count invariance with SIMD pinned on ----------------------------

TEST(SimdThreadTest, GemmBitIdenticalAcrossThreadCounts) {
  SimdGuard simd_guard;
  ThreadGuard thread_guard;
  simd::SetEnabled(true);
  Rng rng(109);
  const Matrix a = Matrix::RandomNormal(67, 129, rng);
  const Matrix b = Matrix::RandomNormal(129, 43, rng);
  const Matrix bt = Matrix::RandomNormal(43, 129, rng);
  const Matrix rs = Matrix::RandomNormal(67, 1, rng);
  SetNumThreads(1);
  const Matrix mm = MatMul(a, b);
  const Matrix tb = MatMulTransBScaled(a, bt, 0.3);
  const Matrix sr = ScaleRowsMatMulScaled(a, rs, b, 2.0);
  for (int threads : {2, 4}) {
    SetNumThreads(threads);
    ExpectBitIdentical(MatMul(a, b), mm, "MatMul across threads");
    ExpectBitIdentical(MatMulTransBScaled(a, bt, 0.3), tb,
                       "MatMulTransBScaled across threads");
    ExpectBitIdentical(ScaleRowsMatMulScaled(a, rs, b, 2.0), sr,
                       "ScaleRowsMatMulScaled across threads");
  }
}

// --- Fused == unfused in either SIMD mode -----------------------------------

void ExpectFusedMatchesUnfused() {
  Rng rng(110);
  const Matrix a = Matrix::RandomNormal(21, 19, rng);
  const Matrix b = Matrix::RandomNormal(17, 19, rng);
  const Matrix c = Matrix::RandomNormal(19, 23, rng);
  const Matrix rs = Matrix::RandomNormal(21, 1, rng);

  Matrix unfused_tb = MatMulTransB(a, b);
  unfused_tb *= 0.125;
  ExpectBitIdentical(MatMulTransBScaled(a, b, 0.125), unfused_tb,
                     "MatMulTransBScaled vs compose");

  Matrix unfused_sr = MatMul(ScaleRows(a, rs), c);
  unfused_sr *= 0.75;
  ExpectBitIdentical(ScaleRowsMatMulScaled(a, rs, c, 0.75), unfused_sr,
                     "ScaleRowsMatMulScaled vs compose");

  const Matrix s = MatMulTransBScaled(a, a, 0.5);
  Matrix exp_out, rowsum_out;
  MaskedExpRowSum(s, &exp_out, &rowsum_out);
  Matrix masked = Exp(s);
  for (int i = 0; i < masked.rows(); ++i) masked(i, i) = 0.0;
  ExpectBitIdentical(exp_out, masked, "MaskedExpRowSum exp vs compose");
  ExpectBitIdentical(rowsum_out, RowSum(masked),
                     "MaskedExpRowSum rowsum vs compose");
}

TEST(SimdFusedTest, FusedMatchesUnfusedWithSimdOn) {
  SimdGuard guard;
  simd::SetEnabled(true);
  ExpectFusedMatchesUnfused();
}

TEST(SimdFusedTest, FusedMatchesUnfusedWithSimdOff) {
  SimdGuard guard;
  simd::SetEnabled(false);
  ExpectFusedMatchesUnfused();
}

// --- NaN propagation (zero-skip removal) ------------------------------------

// The old scalar kernels skipped a == 0.0 operands, silently eating
// 0 * inf = NaN. IEEE semantics now hold in every table.
TEST(SimdNanTest, ZeroTimesInfPropagatesInEveryTable) {
  SimdGuard guard;
  const double inf = std::numeric_limits<double>::infinity();
  for (bool enabled : {true, false}) {
    simd::SetEnabled(enabled);
    const Matrix a{{0.0, 1.0}};
    const Matrix b{{inf}, {1.0}};
    EXPECT_TRUE(std::isnan(MatMul(a, b)(0, 0))) << "MatMul, simd=" << enabled;

    const Matrix at{{0.0}, {1.0}};
    EXPECT_TRUE(std::isnan(MatMulTransA(at, b)(0, 0)))
        << "MatMulTransA, simd=" << enabled;

    const Matrix sa{{inf, 1.0}};
    const Matrix srs{{0.0}};
    const Matrix sb{{1.0}, {1.0}};
    EXPECT_TRUE(std::isnan(ScaleRowsMatMulScaled(sa, srs, sb, 1.0)(0, 0)))
        << "ScaleRowsMatMulScaled, simd=" << enabled;
  }
}

// --- int8 retrieval kernels -------------------------------------------------

// The int8 dot/L2 entries accumulate exact integers, so every table
// must agree BITWISE with the scalar reference and with a widened
// int64 model — across lengths straddling the 16/32-byte vector widths
// and at the extreme code values.
TEST(SimdInt8Test, DotAndL2AgreeWithScalarTableExactly) {
  SimdGuard guard;
  Rng rng(2024);
  for (const int n : {1, 7, 15, 16, 17, 31, 32, 33, 64, 100, 513}) {
    std::vector<int8_t> x(n), y(n);
    for (int i = 0; i < n; ++i) {
      x[i] = static_cast<int8_t>(rng.UniformInt(255) - 127);
      y[i] = static_cast<int8_t>(rng.UniformInt(255) - 127);
    }
    int64_t dot_ref = 0, l2_ref = 0;
    for (int i = 0; i < n; ++i) {
      dot_ref += static_cast<int64_t>(x[i]) * y[i];
      const int64_t d = static_cast<int64_t>(x[i]) - y[i];
      l2_ref += d * d;
    }
    simd::SetEnabled(true);
    const int32_t dot_vec = simd::Active().dot_i8(x.data(), y.data(), n);
    const int32_t l2_vec = simd::Active().l2_i8(x.data(), y.data(), n);
    simd::SetEnabled(false);
    const int32_t dot_scalar = simd::Active().dot_i8(x.data(), y.data(), n);
    const int32_t l2_scalar = simd::Active().l2_i8(x.data(), y.data(), n);
    EXPECT_EQ(dot_vec, dot_ref) << "n=" << n;
    EXPECT_EQ(dot_scalar, dot_ref) << "n=" << n;
    EXPECT_EQ(l2_vec, l2_ref) << "n=" << n;
    EXPECT_EQ(l2_scalar, l2_ref) << "n=" << n;
  }
}

// Worst-case magnitudes at the documented dimension cap stay inside
// int32: |dot| <= n * 127^2 and l2 <= n * 254^2 for n = kMaxInt8Dim.
TEST(SimdInt8Test, WorstCaseAccumulationStaysInInt32AtDimCap) {
  SimdGuard guard;
  const int64_t n = simd::kMaxInt8Dim;
  static_assert(simd::kMaxInt8Dim * 254LL * 254LL <=
                std::numeric_limits<int32_t>::max());
  std::vector<int8_t> hi(n, 127), lo(n, -127);
  for (bool enabled : {true, false}) {
    simd::SetEnabled(enabled);
    const simd::KernelTable& t = simd::Active();
    EXPECT_EQ(t.dot_i8(hi.data(), lo.data(), n),
              static_cast<int32_t>(-n * 127 * 127))
        << enabled;
    EXPECT_EQ(t.l2_i8(hi.data(), lo.data(), n),
              static_cast<int32_t>(n * 254 * 254))
        << enabled;
    EXPECT_EQ(t.dot_i8(hi.data(), hi.data(), n),
              static_cast<int32_t>(n * 127 * 127))
        << enabled;
  }
}

// --- Buffer alignment -------------------------------------------------------

TEST(SimdAlignmentTest, HeapAndPooledBuffersAre64ByteAligned) {
  const Matrix heap = Matrix::Zeros(7, 3);
  EXPECT_TRUE(simd::IsAligned64(heap.data()));
  TapeScope scope;
  const Matrix pooled = Matrix::Uninitialized(11, 5);
  EXPECT_TRUE(simd::IsAligned64(pooled.data()));
  // A recycled buffer stays aligned too.
  {
    Matrix scratch = Matrix::Zeros(11, 5);
    EXPECT_TRUE(simd::IsAligned64(scratch.data()));
  }
  const Matrix reused = Matrix::Uninitialized(11, 5);
  EXPECT_TRUE(simd::IsAligned64(reused.data()));
}

}  // namespace
}  // namespace gradgcl
