#include "augment/augment.h"

#include <set>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

namespace gradgcl {
namespace {

Graph TestGraph(int n = 20, uint64_t seed = 1) {
  Rng rng(seed);
  Graph g;
  g.num_nodes = n;
  for (int i = 0; i + 1 < n; ++i) g.edges.emplace_back(i, i + 1);  // path
  for (int k = 0; k < n; ++k) {
    const int u = rng.UniformInt(n);
    const int v = rng.UniformInt(n);
    if (u != v && !HasEdge(g, u, v)) g.edges.emplace_back(u, v);
  }
  g.features = Matrix::RandomNormal(n, 6, rng);
  g.label = 3;
  return g;
}

TEST(AugmentTest, AllKindsProduceValidGraphs) {
  Rng rng(2);
  const Graph g = TestGraph();
  for (AugmentKind kind : AllAugmentKinds()) {
    for (int rep = 0; rep < 5; ++rep) {
      const Graph aug = Augment(g, kind, 0.25, rng);
      ValidateGraph(aug);
      EXPECT_EQ(aug.label, g.label) << AugmentKindName(kind);
      EXPECT_EQ(aug.feature_dim(), g.feature_dim());
      EXPECT_GE(aug.num_nodes, 1);
    }
  }
}

TEST(AugmentTest, IdentityIsExact) {
  Rng rng(3);
  const Graph g = TestGraph();
  const Graph aug = Augment(g, AugmentKind::kIdentity, 0.3, rng);
  EXPECT_EQ(aug.edges, g.edges);
  EXPECT_TRUE(AllClose(aug.features, g.features));
}

TEST(AugmentTest, KindNamesDistinct) {
  std::set<std::string> names;
  for (AugmentKind kind : AllAugmentKinds()) {
    names.insert(AugmentKindName(kind));
  }
  EXPECT_EQ(names.size(), AllAugmentKinds().size());
}

TEST(NodeDropTest, DropRateApproximate) {
  Rng rng(5);
  const Graph g = TestGraph(200);
  double total = 0.0;
  for (int rep = 0; rep < 20; ++rep) {
    total += NodeDrop(g, 0.3, rng).num_nodes;
  }
  EXPECT_NEAR(total / 20.0, 140.0, 10.0);
}

TEST(NodeDropTest, AlwaysKeepsAtLeastOneNode) {
  Rng rng(7);
  Graph tiny;
  tiny.num_nodes = 2;
  tiny.edges = {{0, 1}};
  tiny.features = Matrix::Ones(2, 2);
  for (int rep = 0; rep < 50; ++rep) {
    EXPECT_GE(NodeDrop(tiny, 0.95, rng).num_nodes, 1);
  }
}

TEST(NodeDropTest, ZeroStrengthKeepsEverything) {
  Rng rng(9);
  const Graph g = TestGraph();
  const Graph aug = NodeDrop(g, 0.0, rng);
  EXPECT_EQ(aug.num_nodes, g.num_nodes);
  EXPECT_EQ(aug.edges.size(), g.edges.size());
}

TEST(EdgePerturbTest, KeepsNodeCountAndFeatures) {
  Rng rng(11);
  const Graph g = TestGraph();
  const Graph aug = EdgePerturb(g, 0.3, rng);
  EXPECT_EQ(aug.num_nodes, g.num_nodes);
  EXPECT_TRUE(AllClose(aug.features, g.features));
}

TEST(EdgePerturbTest, EdgeCountRoughlyPreserved) {
  Rng rng(13);
  const Graph g = TestGraph(100, 2);
  double total = 0.0;
  for (int rep = 0; rep < 20; ++rep) {
    total += EdgePerturb(g, 0.3, rng).num_edges();
  }
  // Removals are compensated by additions in expectation.
  EXPECT_NEAR(total / 20.0, g.num_edges(), g.num_edges() * 0.15);
}

TEST(EdgeDropTest, OnlyRemoves) {
  Rng rng(15);
  const Graph g = TestGraph();
  const Graph aug = EdgeDrop(g, 0.4, rng);
  EXPECT_LE(aug.num_edges(), g.num_edges());
  for (const auto& [u, v] : aug.edges) {
    EXPECT_TRUE(HasEdge(g, u, v));
  }
}

TEST(EdgeDropTest, RateApproximate) {
  Rng rng(17);
  const Graph g = TestGraph(150, 3);
  double kept = 0.0;
  for (int rep = 0; rep < 20; ++rep) {
    kept += EdgeDrop(g, 0.25, rng).num_edges();
  }
  EXPECT_NEAR(kept / 20.0 / g.num_edges(), 0.75, 0.06);
}

TEST(AttrMaskTest, MasksWholeColumns) {
  Rng rng(19);
  const Graph g = TestGraph();
  const Graph aug = AttrMask(g, 0.5, rng);
  int masked_cols = 0;
  for (int j = 0; j < aug.features.cols(); ++j) {
    bool all_zero = true;
    bool was_nonzero = false;
    for (int i = 0; i < aug.features.rows(); ++i) {
      if (aug.features(i, j) != 0.0) all_zero = false;
      if (g.features(i, j) != 0.0) was_nonzero = true;
    }
    if (all_zero && was_nonzero) {
      ++masked_cols;
    } else {
      // Unmasked columns must be untouched.
      for (int i = 0; i < aug.features.rows(); ++i) {
        EXPECT_DOUBLE_EQ(aug.features(i, j), g.features(i, j));
      }
    }
  }
  EXPECT_GE(masked_cols, 1);
}

TEST(AttrMaskTest, StructureUntouched) {
  Rng rng(21);
  const Graph g = TestGraph();
  EXPECT_EQ(AttrMask(g, 0.5, rng).edges, g.edges);
}

TEST(SubgraphTest, TargetSizeRespected) {
  Rng rng(23);
  const Graph g = TestGraph(60, 4);
  const Graph sub = SubgraphSample(g, 0.4, rng);
  // ~60% of nodes kept, modulo walk coverage.
  EXPECT_LE(sub.num_nodes, 37);
  EXPECT_GE(sub.num_nodes, 10);
  ValidateGraph(sub);
}

TEST(SubgraphTest, InducedEdgesOnly) {
  Rng rng(25);
  const Graph g = TestGraph(30, 5);
  const Graph sub = SubgraphSample(g, 0.5, rng);
  EXPECT_LE(sub.num_edges(), g.num_edges());
}

TEST(AdaptiveEdgeDropTest, AverageRateNearTarget) {
  Rng rng(27);
  const Graph g = TestGraph(120, 6);
  double kept = 0.0;
  for (int rep = 0; rep < 20; ++rep) {
    kept += AdaptiveEdgeDrop(g, 0.3, rng).num_edges();
  }
  EXPECT_NEAR(1.0 - kept / 20.0 / g.num_edges(), 0.3, 0.1);
}

TEST(AdaptiveEdgeDropTest, LowDegreeEdgesDropMore) {
  // GCA's rule: an edge's importance is the *smaller* endpoint degree.
  // Star edges touch a degree-1 leaf (importance 1), chain interior
  // edges touch degree-2 nodes (importance 2), so star edges must be
  // dropped more often than chain edges.
  Graph g;
  g.num_nodes = 30;
  for (int i = 1; i <= 14; ++i) g.edges.emplace_back(0, i);  // star
  for (int i = 15; i + 1 < 30; ++i) g.edges.emplace_back(i, i + 1);  // chain
  g.features = Matrix::Ones(30, 2);
  Rng rng(29);
  int star_kept = 0, chain_kept = 0;
  const int reps = 200;
  for (int rep = 0; rep < reps; ++rep) {
    const Graph aug = AdaptiveEdgeDrop(g, 0.4, rng);
    for (const auto& [u, v] : aug.edges) {
      if (u == 0 || v == 0) {
        ++star_kept;
      } else {
        ++chain_kept;
      }
    }
  }
  const double star_rate = static_cast<double>(star_kept) / (14.0 * reps);
  const double chain_rate = static_cast<double>(chain_kept) / (14.0 * reps);
  EXPECT_GT(chain_rate, star_rate + 0.05);
}

TEST(AugmentDeathTest, InvalidStrengthAborts) {
  Rng rng(31);
  const Graph g = TestGraph();
  EXPECT_DEATH(Augment(g, AugmentKind::kNodeDrop, 1.0, rng), "GRADGCL_CHECK");
  EXPECT_DEATH(Augment(g, AugmentKind::kNodeDrop, -0.1, rng),
               "GRADGCL_CHECK");
}

// Strength sweep: every kind must remain valid across the whole range.
class AugmentStrengthSweep
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(AugmentStrengthSweep, ProducesValidGraph) {
  const auto [kind_idx, strength] = GetParam();
  const AugmentKind kind = AllAugmentKinds()[kind_idx];
  Rng rng(33);
  const Graph g = TestGraph();
  for (int rep = 0; rep < 3; ++rep) {
    const Graph aug = Augment(g, kind, strength, rng);
    ValidateGraph(aug);
    EXPECT_GE(aug.num_nodes, 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    KindsByStrength, AugmentStrengthSweep,
    ::testing::Combine(::testing::Range(0, 4),
                       ::testing::Values(0.0, 0.1, 0.3, 0.6, 0.9)));

}  // namespace
}  // namespace gradgcl
