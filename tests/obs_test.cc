// Tests for the observability subsystem (src/obs/): registry merge
// determinism across thread counts, histogram bucket semantics, trace
// span nesting and the Chrome JSON writer, the collapse monitor's
// bitwise agreement with the offline eval/spectrum + losses/metrics
// analysis, the zero-allocation guarantee of the metrics hot path, and
// the trainer's bit-identical trajectory with observability on vs off.

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "datasets/tu_synthetic.h"
#include "eval/spectrum.h"
#include "losses/metrics.h"
#include "models/graphcl.h"
#include "obs/collapse.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/matrix.h"
#include "tensor/pool.h"
#include "train/trainer.h"

// Binary-wide heap-allocation counter: PoolStats only counts matrix
// buffers, so the metrics hot path needs its own probe. The replaceable
// array forms forward here per the standard's default definitions.
namespace {
std::atomic<uint64_t> g_heap_new_calls{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_new_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace gradgcl {
namespace {

uint64_t HeapNewCalls() {
  return g_heap_new_calls.load(std::memory_order_relaxed);
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::vector<std::string> SlurpLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

// The %.17g rendering collapse.cc uses — matching on it in the JSONL
// stream pins the streamed value to the last bit.
std::string G17(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

// --- common/json.h ----------------------------------------------------------

TEST(JsonEscapeTest, PassesPlainTextThrough) {
  EXPECT_EQ(JsonEscape("GraphCL(f+g) PROTEINS batch=64"),
            "GraphCL(f+g) PROTEINS batch=64");
}

TEST(JsonEscapeTest, EscapesQuotesAndBackslashes) {
  EXPECT_EQ(JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
}

TEST(JsonEscapeTest, EscapesControlCharacters) {
  EXPECT_EQ(JsonEscape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(JsonEscape(std::string_view("\x01", 1)), "\\u0001");
  EXPECT_EQ(JsonEscape("\b\f"), "\\b\\f");
}

TEST(JsonEscapeTest, PassesUtf8Through) {
  EXPECT_EQ(JsonEscape("ℓ_f/ℓ_g"), "ℓ_f/ℓ_g");
}

TEST(JsonEscapeTest, JsonStringAddsQuotes) {
  EXPECT_EQ(JsonString("x\"y"), "\"x\\\"y\"");
}

// --- obs/metrics.h ----------------------------------------------------------

TEST(MetricsRegistryTest, CounterAccumulatesAcrossHandles) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Instance();
  obs::Counter a = reg.GetCounter("test/handles");
  obs::Counter b = reg.GetCounter("test/handles");  // same metric
  a.Add(3);
  b.Add(4);
  b.Increment();
  EXPECT_EQ(reg.Snapshot().counter("test/handles"), 8u);
}

TEST(MetricsRegistryTest, GaugeIsLastWriteWinsAndBitExact) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Instance();
  obs::Gauge g = reg.GetGauge("test/gauge");
  g.Set(3.5);
  EXPECT_EQ(g.Get(), 3.5);
  g.Set(-0.0);
  EXPECT_TRUE(std::signbit(g.Get()));  // bitcast round-trip keeps -0.0
  g.Set(1.25);
  EXPECT_EQ(reg.Snapshot().gauge("test/gauge"), 1.25);
}

TEST(MetricsRegistryTest, HistogramBucketEdgesAreInclusiveUpperBounds) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Instance();
  obs::Histogram h = reg.GetHistogram("test/edges", {1.0, 2.0, 4.0});
  EXPECT_EQ(h.num_buckets(), 4);  // 3 finite + overflow
  h.Observe(0.0);        // bucket 0
  h.Observe(1.0);        // bucket 0: value <= edge is inclusive
  h.Observe(1.0000001);  // bucket 1
  h.Observe(2.0);        // bucket 1
  h.Observe(3.0);        // bucket 2
  h.Observe(4.0);        // bucket 2
  h.Observe(4.5);        // overflow
  const obs::MetricsSnapshot snap = reg.Snapshot();
  const obs::HistogramData* data = snap.histogram("test/edges");
  ASSERT_NE(data, nullptr);
  ASSERT_EQ(data->counts.size(), 4u);
  EXPECT_EQ(data->counts[0], 2u);
  EXPECT_EQ(data->counts[1], 2u);
  EXPECT_EQ(data->counts[2], 2u);
  EXPECT_EQ(data->counts[3], 1u);
  EXPECT_EQ(data->total, 7u);
  ASSERT_EQ(data->upper_edges.size(), 3u);
  EXPECT_EQ(data->upper_edges[2], 4.0);
}

// --- HistogramPercentile: pinned interpolation semantics --------------------
// These tests are the normative definition of the estimator (see the
// doc comment in obs/metrics.h): bucket i covers
// (upper_edges[i-1], upper_edges[i]], linear interpolation inside the
// containing bucket, overflow clamps to the last finite edge.

TEST(HistogramPercentileTest, EmptyHistogramReturnsZero) {
  obs::HistogramData h;
  h.upper_edges = {1.0, 2.0};
  h.counts = {0, 0, 0};
  h.total = 0;
  EXPECT_EQ(obs::HistogramPercentile(h, 50.0), 0.0);
  const obs::PercentileSummary s = obs::SummarizePercentiles(h);
  EXPECT_EQ(s.p50, 0.0);
  EXPECT_EQ(s.p95, 0.0);
  EXPECT_EQ(s.p99, 0.0);
}

TEST(HistogramPercentileTest, InterpolatesLinearlyWithinBucket) {
  // 4 observations, all in the single bucket (0, 10].
  obs::HistogramData h;
  h.upper_edges = {10.0};
  h.counts = {4, 0};
  h.total = 4;
  // rank = p/100 * 4; estimate = 0 + 10 * rank/4.
  EXPECT_DOUBLE_EQ(obs::HistogramPercentile(h, 25.0), 2.5);
  EXPECT_DOUBLE_EQ(obs::HistogramPercentile(h, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(obs::HistogramPercentile(h, 100.0), 10.0);
  // p is clamped to [0, 100].
  EXPECT_DOUBLE_EQ(obs::HistogramPercentile(h, 250.0), 10.0);
}

TEST(HistogramPercentileTest, WalksCumulativeCountsAcrossBuckets) {
  // (0,1]: 2   (1,2]: 2   (2,4]: 4   overflow: 0     total 8
  obs::HistogramData h;
  h.upper_edges = {1.0, 2.0, 4.0};
  h.counts = {2, 2, 4, 0};
  h.total = 8;
  EXPECT_DOUBLE_EQ(obs::HistogramPercentile(h, 25.0), 1.0);  // rank 2
  EXPECT_DOUBLE_EQ(obs::HistogramPercentile(h, 50.0), 2.0);  // rank 4
  EXPECT_DOUBLE_EQ(obs::HistogramPercentile(h, 75.0), 3.0);  // rank 6
  EXPECT_DOUBLE_EQ(obs::HistogramPercentile(h, 100.0), 4.0);
  // Empty buckets are skipped without affecting the interpolation.
  obs::HistogramData sparse;
  sparse.upper_edges = {1.0, 2.0, 4.0, 8.0};
  sparse.counts = {2, 0, 0, 2, 0};
  sparse.total = 4;
  EXPECT_DOUBLE_EQ(obs::HistogramPercentile(sparse, 75.0), 6.0);  // rank 3
}

TEST(HistogramPercentileTest, OverflowBucketClampsToLastFiniteEdge) {
  obs::HistogramData h;
  h.upper_edges = {1.0, 2.0};
  h.counts = {1, 1, 2};  // half the mass is above the last edge
  h.total = 4;
  EXPECT_DOUBLE_EQ(obs::HistogramPercentile(h, 99.0), 2.0);
  const obs::PercentileSummary s = obs::SummarizePercentiles(h);
  EXPECT_DOUBLE_EQ(s.p50, 2.0);  // rank 2 lands exactly on bucket 1's edge
  EXPECT_DOUBLE_EQ(s.p95, 2.0);
  EXPECT_DOUBLE_EQ(s.p99, 2.0);
}

TEST(HistogramPercentileTest, NonPositiveFirstEdgeIsDegenerate) {
  // Bucket 0's lower bound is min(0, edge): a non-positive first edge
  // gives a zero-width first bucket that returns the edge itself.
  obs::HistogramData h;
  h.upper_edges = {-10.0, 10.0};
  h.counts = {2, 2, 0};
  h.total = 4;
  EXPECT_DOUBLE_EQ(obs::HistogramPercentile(h, 25.0), -10.0);
  EXPECT_DOUBLE_EQ(obs::HistogramPercentile(h, 75.0), 0.0);  // -10 + 20*1/2
}

TEST(HistogramPercentileTest, MatchesRegistryObservations) {
  // End-to-end: observe through a registry handle, summarize the
  // snapshot. 100 observations spread uniformly over (0, 100].
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Instance();
  obs::Histogram h = reg.GetHistogram("test/pctl", {25.0, 50.0, 75.0, 100.0});
  for (int i = 1; i <= 100; ++i) h.Observe(static_cast<double>(i));
  const obs::MetricsSnapshot snap = reg.Snapshot();
  const obs::HistogramData* data = snap.histogram("test/pctl");
  ASSERT_NE(data, nullptr);
  ASSERT_EQ(data->total, 100u);
  const obs::PercentileSummary s = obs::SummarizePercentiles(*data);
  EXPECT_DOUBLE_EQ(s.p50, 50.0);
  EXPECT_DOUBLE_EQ(s.p95, 95.0);
  EXPECT_DOUBLE_EQ(s.p99, 99.0);
}

TEST(MetricsRegistryTest, MergeIsBitStableAcrossThreadCounts) {
  // The same logical workload split over 1, 2, and 4 writer threads
  // must merge to identical totals — counter and histogram cells are
  // integers, so shard merge order cannot matter. The workers exit
  // before the snapshot, which also exercises the retired fold-in.
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Instance();
  constexpr uint64_t kTotal = 960;  // divisible by 1, 2, 4 (and by 4 again)
  std::vector<uint64_t> counter_totals;
  std::vector<std::vector<uint64_t>> histogram_counts;
  for (int threads : {1, 2, 4}) {
    reg.Reset();
    obs::Counter c = reg.GetCounter("test/merge_counter");
    obs::Histogram h = reg.GetHistogram("test/merge_hist", {0.5, 1.5, 2.5});
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&c, &h, threads] {
        for (uint64_t i = 0; i < kTotal / threads; ++i) {
          c.Add(1);
          h.Observe(static_cast<double>(i % 4));
        }
      });
    }
    for (std::thread& w : workers) w.join();
    const obs::MetricsSnapshot snap = reg.Snapshot();
    counter_totals.push_back(snap.counter("test/merge_counter"));
    const obs::HistogramData* data = snap.histogram("test/merge_hist");
    ASSERT_NE(data, nullptr);
    histogram_counts.push_back(data->counts);
  }
  for (size_t i = 1; i < counter_totals.size(); ++i) {
    EXPECT_EQ(counter_totals[i], counter_totals[0]);
    EXPECT_EQ(histogram_counts[i], histogram_counts[0]);
  }
  EXPECT_EQ(counter_totals[0], kTotal);
  reg.Reset();
}

TEST(MetricsHotPathTest, SteadyStateWritesAreAllocationFree) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Instance();
  obs::Counter c = reg.GetCounter("test/hot_counter");
  obs::Histogram h = reg.GetHistogram("test/hot_hist", {1.0, 4.0, 16.0});
  obs::Gauge g = reg.GetGauge("test/hot_gauge");
  // Warm-up creates this thread's shard; everything after must be pure
  // atomic traffic.
  c.Add(1);
  h.Observe(0.5);
  g.Set(0.0);

  const uint64_t before = HeapNewCalls();
  for (int i = 0; i < 10000; ++i) {
    c.Add(1);
    h.Observe(static_cast<double>(i % 32));
    g.Set(static_cast<double>(i));
  }
  const uint64_t after = HeapNewCalls();
  EXPECT_EQ(after, before) << (after - before)
                           << " heap allocations on the metrics hot path";
}

TEST(MetricsHotPathTest, DisabledTrainingHooksAreAllocationFree) {
  // With no stream configured the monitor hooks and TraceScope reduce
  // to atomic loads — the exact disabled-path contract the benches
  // depend on.
  obs::CollapseMonitor& monitor = obs::CollapseMonitor::Instance();
  ASSERT_FALSE(obs::MetricsEnabled());
  ASSERT_FALSE(obs::TracingEnabled());
  const uint64_t before = HeapNewCalls();
  for (int i = 0; i < 1000; ++i) {
    obs::TraceScope span("test/disabled");
    monitor.BeginStep(obs::StepContext{i, 0});
    monitor.EndStep(0.5, 1.0, 0.001);
  }
  EXPECT_EQ(HeapNewCalls(), before);
}

// --- obs/trace.h ------------------------------------------------------------

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = obs::TracingEnabled();
    obs::ClearTrace();
  }
  void TearDown() override {
    obs::SetTracingEnabled(was_enabled_);
    obs::ClearTrace();
  }

 private:
  bool was_enabled_ = false;
};

TEST_F(TraceTest, SpansNestByTimestampContainment) {
  obs::SetTracingEnabled(true);
  {
    obs::TraceScope outer("outer");
    {
      obs::TraceScope inner("inner");
      volatile double sink = 0.0;
      for (int i = 0; i < 100; ++i) sink = sink + i;
    }
  }
  obs::SetTracingEnabled(false);

  const std::vector<obs::TraceEvent> events = obs::SnapshotTraceEvents();
  ASSERT_EQ(events.size(), 2u);
  // Sorted by start: outer opened first and fully contains inner.
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_STREQ(events[1].name, "inner");
  EXPECT_LE(events[0].start_ns, events[1].start_ns);
  EXPECT_LE(events[1].start_ns + events[1].duration_ns,
            events[0].start_ns + events[0].duration_ns);
  EXPECT_EQ(events[0].tid, events[1].tid);
  EXPECT_EQ(obs::DroppedTraceEvents(), 0u);
}

TEST_F(TraceTest, DisabledScopesRecordNothing) {
  obs::SetTracingEnabled(false);
  { obs::TraceScope span("invisible"); }
  EXPECT_TRUE(obs::SnapshotTraceEvents().empty());
}

TEST_F(TraceTest, WriterEmitsChromeTraceJson) {
  obs::SetTracingEnabled(true);
  {
    obs::TraceScope span(obs::InternName("na\"me"));  // exercises escaping
  }
  { obs::TraceScope span("plain"); }
  obs::SetTracingEnabled(false);

  const std::string path = ::testing::TempDir() + "/gradgcl_trace.json";
  ASSERT_TRUE(obs::WriteTraceTo(path));
  const std::string json = Slurp(path);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"na\\\"me\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"plain\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(TraceTest, HotPathPushIsAllocationFree) {
  obs::SetTracingEnabled(true);
  { obs::TraceScope warmup("warmup"); }  // creates this thread's ring
  const uint64_t before = HeapNewCalls();
  for (int i = 0; i < 1000; ++i) {
    obs::TraceScope span("hot");
  }
  EXPECT_EQ(HeapNewCalls(), before);
  obs::SetTracingEnabled(false);
}

// --- obs/collapse.h ---------------------------------------------------------

// Restores monitor/metrics/thread state so tests can reconfigure
// freely (mirrors pool_test's PoolEnvironmentTest).
class CollapseMonitorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    metrics_ = obs::MetricsEnabled();
    every_ = obs::CollapseMonitor::Instance().every();
    threads_ = NumThreads();
  }
  void TearDown() override {
    obs::CollapseMonitor::Instance().SetStreamPath("");
    obs::SetMetricsEnabled(metrics_);
    obs::CollapseMonitor::Instance().set_every(every_);
    SetNumThreads(threads_);
  }

 private:
  bool metrics_ = false;
  int every_ = 10;
  int threads_ = 1;
};

TEST_F(CollapseMonitorTest, AnalyzeCollapseMatchesOfflineAnalysisBitwise) {
  Rng rng(5);
  const Matrix u = Matrix::RandomNormal(12, 6, rng);
  const Matrix v = Matrix::RandomNormal(12, 6, rng);
  const obs::CollapseReport report = obs::AnalyzeCollapse(u, v);

  // Exactly the offline pipeline, value for value.
  const SpectrumReport spectrum = AnalyzeSpectrum(u);
  EXPECT_EQ(report.effective_rank, spectrum.effective_rank);
  EXPECT_EQ(report.surviving_dims, spectrum.surviving_dims);
  EXPECT_EQ(report.alignment, AlignmentMetric(u, v));
  EXPECT_EQ(report.uniformity, UniformityMetric(u));
  EXPECT_EQ(report.top_k, 6);  // min(8, d)
  double total = 0.0, top = 0.0;
  for (size_t i = 0; i < spectrum.singular_values.size(); ++i) {
    total += spectrum.singular_values[i];
    if (i < 6) top += spectrum.singular_values[i];
  }
  EXPECT_EQ(report.top_k_mass, top / total);
}

TEST_F(CollapseMonitorTest, AnalysisIsBitIdenticalAcrossThreadCounts) {
  Rng rng(9);
  const Matrix u = Matrix::RandomNormal(24, 8, rng);
  const Matrix v = Matrix::RandomNormal(24, 8, rng);
  SetNumThreads(1);
  const obs::CollapseReport ref = obs::AnalyzeCollapse(u, v);
  for (int threads : {2, 4}) {
    SetNumThreads(threads);
    const obs::CollapseReport report = obs::AnalyzeCollapse(u, v);
    EXPECT_EQ(report.effective_rank, ref.effective_rank) << threads;
    EXPECT_EQ(report.top_k_mass, ref.top_k_mass) << threads;
    EXPECT_EQ(report.alignment, ref.alignment) << threads;
    EXPECT_EQ(report.uniformity, ref.uniformity) << threads;
    EXPECT_EQ(report.surviving_dims, ref.surviving_dims) << threads;
  }
}

TEST_F(CollapseMonitorTest, StreamsSampledStepsAsJsonl) {
  obs::CollapseMonitor& monitor = obs::CollapseMonitor::Instance();
  const std::string path = ::testing::TempDir() + "/gradgcl_metrics.jsonl";
  monitor.SetStreamPath(path);
  monitor.set_every(2);
  ASSERT_TRUE(monitor.enabled());
  ASSERT_TRUE(obs::MetricsEnabled());  // SetStreamPath flips the gate

  Rng rng(5);
  const Matrix u = Matrix::RandomNormal(12, 6, rng);
  const Matrix v = Matrix::RandomNormal(12, 6, rng);

  for (int step = 0; step < 4; ++step) {
    monitor.BeginStep(obs::StepContext{step, 7});
    EXPECT_EQ(monitor.StageActive(), step % 2 == 0) << step;
    if (monitor.StageActive()) {
      monitor.RecordLossSplit(0.25, true, 0.75, true);
      monitor.RecordRepresentations(u, v);
    }
    monitor.EndStep(0.5, 1.25, 0.001);
  }
  monitor.CloseStream();

  const std::vector<std::string> lines = SlurpLines(path);
  ASSERT_EQ(lines.size(), 2u);  // steps 0 and 2
  EXPECT_NE(lines[0].find("\"step\":0,\"epoch\":7"), std::string::npos);
  EXPECT_NE(lines[1].find("\"step\":2,\"epoch\":7"), std::string::npos);

  // The streamed diagnostics are the %.17g rendering of exactly the
  // offline analysis — bit-exact through the text format.
  const obs::CollapseReport direct = obs::AnalyzeCollapse(u, v);
  for (const std::string& line : lines) {
    EXPECT_NE(line.find("\"loss\":" + G17(0.5)), std::string::npos);
    EXPECT_NE(line.find("\"loss_f\":" + G17(0.25)), std::string::npos);
    EXPECT_NE(line.find("\"loss_g\":" + G17(0.75)), std::string::npos);
    EXPECT_NE(line.find("\"grad_norm\":" + G17(1.25)), std::string::npos);
    EXPECT_NE(line.find("\"effective_rank\":" + G17(direct.effective_rank)),
              std::string::npos);
    EXPECT_NE(line.find("\"top_k_mass\":" + G17(direct.top_k_mass)),
              std::string::npos);
    EXPECT_NE(line.find("\"alignment\":" + G17(direct.alignment)),
              std::string::npos);
    EXPECT_NE(line.find("\"uniformity\":" + G17(direct.uniformity)),
              std::string::npos);
    EXPECT_NE(line.find("\"threads\":"), std::string::npos);
  }

  // Headline values mirror into the registry.
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::Instance().Snapshot();
  EXPECT_EQ(snap.gauge("obs/effective_rank"), direct.effective_rank);
  EXPECT_EQ(snap.gauge("obs/alignment"), direct.alignment);
  EXPECT_EQ(snap.gauge("obs/uniformity"), direct.uniformity);
  EXPECT_EQ(snap.gauge("train/loss"), 0.5);
  EXPECT_GE(snap.counter("obs/records"), 2u);
  std::remove(path.c_str());
}

TEST_F(CollapseMonitorTest, UnsampledAndDisabledStepsEmitNothing) {
  obs::CollapseMonitor& monitor = obs::CollapseMonitor::Instance();
  const std::string path = ::testing::TempDir() + "/gradgcl_metrics_off.jsonl";
  monitor.SetStreamPath(path);
  monitor.set_every(1000);
  monitor.BeginStep(obs::StepContext{3, 0});  // 3 % 1000 != 0 → unsampled
  EXPECT_FALSE(monitor.StageActive());
  monitor.EndStep(0.5, 0.0, 0.001);
  monitor.CloseStream();
  EXPECT_TRUE(SlurpLines(path).empty());

  monitor.SetStreamPath("");  // disables the monitor and the gate
  EXPECT_FALSE(monitor.enabled());
  EXPECT_FALSE(obs::MetricsEnabled());
  monitor.BeginStep(obs::StepContext{0, 0});
  EXPECT_FALSE(monitor.StageActive());
  std::remove(path.c_str());
}

// --- trainer integration ----------------------------------------------------

TEST_F(CollapseMonitorTest, TrainerTrajectoryBitIdenticalWithObsOnAndOff) {
  TuProfile profile = TuProfileByName("MUTAG");
  profile.num_graphs = 24;
  const std::vector<Graph> data = GenerateTuDataset(profile, 2);

  const auto run = [&profile, &data] {
    Rng rng(6);
    GraphClConfig config;
    config.encoder.in_dim = profile.feature_dim;
    config.encoder.hidden_dim = 8;
    config.encoder.out_dim = 8;
    config.proj_dim = 8;
    config.grad_gcl.weight = 0.5;  // both ℓ_f and ℓ_g live
    GraphCl model(config, rng);
    TrainOptions options;
    options.epochs = 3;
    options.batch_size = 8;
    options.lr = 0.02;
    std::vector<double> losses;
    for (const EpochStats& e : TrainGraphSsl(model, data, options)) {
      losses.push_back(e.loss);
    }
    return losses;
  };

  obs::CollapseMonitor& monitor = obs::CollapseMonitor::Instance();
  monitor.SetStreamPath("");
  const std::vector<double> off = run();

  const std::string path = ::testing::TempDir() + "/gradgcl_train.jsonl";
  monitor.SetStreamPath(path);
  monitor.set_every(1);
  const std::vector<double> on = run();
  monitor.CloseStream();
  monitor.SetStreamPath("");

  // The monitor is read-only: observing every step must not change a
  // single bit of the loss trajectory.
  ASSERT_EQ(on.size(), off.size());
  for (size_t i = 0; i < on.size(); ++i) {
    EXPECT_EQ(std::memcmp(&on[i], &off[i], sizeof(double)), 0)
        << "epoch " << i << ": " << on[i] << " vs " << off[i];
  }

  // Every step streamed one record with the loss split and diagnostics.
  const std::vector<std::string> lines = SlurpLines(path);
  EXPECT_EQ(lines.size(), 9u);  // 3 epochs x 3 batches of 8 over 24 graphs
  for (const std::string& line : lines) {
    EXPECT_NE(line.find("\"loss\":"), std::string::npos);
    EXPECT_NE(line.find("\"loss_f\":"), std::string::npos);
    EXPECT_NE(line.find("\"loss_g\":"), std::string::npos);
    EXPECT_NE(line.find("\"effective_rank\":"), std::string::npos);
    EXPECT_NE(line.find("\"alignment\":"), std::string::npos);
    EXPECT_NE(line.find("\"uniformity\":"), std::string::npos);
    EXPECT_NE(line.find("\"grad_norm\":"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST_F(CollapseMonitorTest, SampledMetricValuesBitIdenticalAcrossThreads) {
  // The JSONL stream's deterministic fields must not change with
  // GRADGCL_NUM_THREADS. Strip the profiling fields (step_seconds,
  // pool deltas, threads — declared timing-bound) and compare the rest.
  TuProfile profile = TuProfileByName("MUTAG");
  profile.num_graphs = 16;
  const std::vector<Graph> data = GenerateTuDataset(profile, 2);

  obs::CollapseMonitor& monitor = obs::CollapseMonitor::Instance();
  const auto run = [&](int threads) {
    SetNumThreads(threads);
    const std::string path = ::testing::TempDir() + "/gradgcl_threads_" +
                             std::to_string(threads) + ".jsonl";
    monitor.SetStreamPath(path);
    monitor.set_every(1);
    Rng rng(6);
    GraphClConfig config;
    config.encoder.in_dim = profile.feature_dim;
    config.encoder.hidden_dim = 8;
    config.encoder.out_dim = 8;
    config.proj_dim = 8;
    config.grad_gcl.weight = 0.5;
    GraphCl model(config, rng);
    TrainOptions options;
    options.epochs = 2;
    options.batch_size = 8;
    options.lr = 0.02;
    TrainGraphSsl(model, data, options);
    monitor.CloseStream();
    std::vector<std::string> lines = SlurpLines(path);
    for (std::string& line : lines) {
      const size_t cut = line.find(",\"step_seconds\":");
      EXPECT_NE(cut, std::string::npos) << line;
      if (cut != std::string::npos) line.resize(cut);  // drop profiling tail
    }
    std::remove(path.c_str());
    return lines;
  };

  const std::vector<std::string> t1 = run(1);
  ASSERT_FALSE(t1.empty());
  for (int threads : {2, 4}) {
    const std::vector<std::string> tn = run(threads);
    ASSERT_EQ(tn.size(), t1.size()) << threads << " threads";
    for (size_t i = 0; i < t1.size(); ++i) {
      EXPECT_EQ(tn[i], t1[i]) << threads << " threads, record " << i;
    }
  }
}

}  // namespace
}  // namespace gradgcl
