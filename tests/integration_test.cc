// End-to-end pipelines across modules: pre-train → embed → probe, the
// full workflows the benches automate, at miniature scale.

#include <cmath>
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "datasets/molecule_universe.h"
#include "datasets/node_synthetic.h"
#include "datasets/tu_synthetic.h"
#include "eval/cross_validation.h"
#include "eval/spectrum.h"
#include "losses/metrics.h"
#include "models/grace.h"
#include "models/graphcl.h"
#include "models/simgrace.h"
#include "models/wl_kernel.h"
#include "nn/serialize.h"

namespace gradgcl {
namespace {

std::vector<int> GraphLabels(const std::vector<Graph>& graphs) {
  std::vector<int> labels;
  labels.reserve(graphs.size());
  for (const Graph& g : graphs) labels.push_back(g.label);
  return labels;
}

TEST(IntegrationTest, GraphClPipelineBeatsChance) {
  TuProfile profile = TuProfileByName("MUTAG");
  profile.num_graphs = 60;
  const std::vector<Graph> data = GenerateTuDataset(profile, 21);

  Rng rng(1);
  GraphClConfig config;
  config.encoder.in_dim = profile.feature_dim;
  config.encoder.hidden_dim = 16;
  config.encoder.out_dim = 16;
  config.grad_gcl.weight = 0.5;
  GraphCl model(config, rng);

  TrainOptions options;
  options.epochs = 10;
  options.batch_size = 30;
  TrainGraphSsl(model, data, options);

  const ScoreSummary result = CrossValidateAccuracy(
      model.EmbedGraphs(data), GraphLabels(data), 2, 5, {}, 3);
  EXPECT_GT(result.mean, 0.6);  // clearly above the 0.5 chance level
}

TEST(IntegrationTest, GradientOnlyVariantLearns) {
  // The paper's XXX(g): training purely on gradient contrast still
  // produces usable representations (Table IV's central claim).
  TuProfile profile = TuProfileByName("MUTAG");
  profile.num_graphs = 60;
  const std::vector<Graph> data = GenerateTuDataset(profile, 22);

  Rng rng(2);
  GraphClConfig config;
  config.encoder.in_dim = profile.feature_dim;
  config.encoder.hidden_dim = 16;
  config.encoder.out_dim = 16;
  config.grad_gcl.weight = 1.0;  // gradients only
  GraphCl model(config, rng);

  TrainOptions options;
  options.epochs = 10;
  options.batch_size = 30;
  const std::vector<EpochStats> history =
      TrainGraphSsl(model, data, options);
  for (const EpochStats& stats : history) {
    EXPECT_TRUE(std::isfinite(stats.loss));
  }
  const ScoreSummary result = CrossValidateAccuracy(
      model.EmbedGraphs(data), GraphLabels(data), 2, 5, {}, 3);
  EXPECT_GT(result.mean, 0.55);
}

TEST(IntegrationTest, NodePipelineBeatsChance) {
  NodeProfile profile = NodeProfileByName("Cora");
  profile.num_nodes = 120;
  profile.feature_dim = 24;
  const NodeDataset data = GenerateNodeDataset(profile, 23);

  Rng rng(3);
  GraceConfig config;
  config.encoder.kind = EncoderKind::kGcn;
  config.encoder.in_dim = profile.feature_dim;
  config.encoder.hidden_dim = 16;
  config.encoder.out_dim = 16;
  config.grad_gcl.weight = 0.3;
  Grace model(config, rng);

  TrainOptions options;
  options.epochs = 25;
  TrainNodeSsl(model, data, options);

  const Matrix emb = model.EmbedNodes(data);
  std::vector<int> train_y, test_y;
  for (int i : data.train_idx) train_y.push_back(data.labels[i]);
  for (int i : data.test_idx) test_y.push_back(data.labels[i]);
  ProbeOptions probe;
  probe.kind = ProbeKind::kLogistic;
  LinearProbe head = LinearProbe::Fit(emb.Gather(data.train_idx), train_y,
                                      data.num_classes, probe);
  const double acc =
      Accuracy(head.Predict(emb.Gather(data.test_idx)), test_y);
  EXPECT_GT(acc, 1.5 / data.num_classes);  // well above chance
}

TEST(IntegrationTest, TransferPipelineProducesValidAuc) {
  const std::vector<Graph> pretrain =
      GeneratePretrainSet(PretrainKind::kZinc, 80, 24);
  Rng rng(4);
  SimGraceConfig config;
  config.encoder.in_dim = kNumAtomTypes;
  config.encoder.hidden_dim = 16;
  config.encoder.out_dim = 16;
  config.grad_gcl.weight = 0.4;
  SimGrace model(config, rng);

  TrainOptions options;
  options.epochs = 6;
  options.batch_size = 40;
  TrainGraphSsl(model, pretrain, options);

  const TransferTask task = GenerateTransferTask("Tox21", 120, 25, 0.05);
  const Matrix emb = model.EmbedGraphs(task.graphs);
  std::vector<int> train_y, test_y;
  std::vector<int> train_idx, test_idx;
  for (int i = 0; i < 120; ++i) {
    if (i < 60) {
      train_idx.push_back(i);
      train_y.push_back(task.graphs[i].label);
    } else {
      test_idx.push_back(i);
      test_y.push_back(task.graphs[i].label);
    }
  }
  ProbeOptions probe;
  probe.kind = ProbeKind::kLogistic;
  LinearProbe head =
      LinearProbe::Fit(emb.Gather(train_idx), train_y, 2, probe);
  const Matrix scores = head.Scores(emb.Gather(test_idx));
  std::vector<double> pos;
  for (int i = 0; i < scores.rows(); ++i) {
    pos.push_back(scores(i, 1) - scores(i, 0));
  }
  const double auc = RocAuc(pos, test_y);
  EXPECT_GE(auc, 0.0);
  EXPECT_LE(auc, 1.0);
  EXPECT_GT(auc, 0.5);  // Tox21-sim correlates with atom composition
}

TEST(IntegrationTest, WlBaselineOnSyntheticData) {
  TuProfile profile = TuProfileByName("MUTAG");
  profile.num_graphs = 80;
  const std::vector<Graph> data = GenerateTuDataset(profile, 26);
  const Matrix features = WlFeatures(data, {3, 256});
  const ScoreSummary result = CrossValidateAccuracy(
      features, GraphLabels(data), 2, 5, {}, 7);
  EXPECT_GT(result.mean, 0.6);
}

TEST(IntegrationTest, MetricsTrackTrainingProgress) {
  // Alignment of positive views must improve (drop) during training.
  TuProfile profile = TuProfileByName("IMDB-B");
  profile.num_graphs = 40;
  const std::vector<Graph> data = GenerateTuDataset(profile, 27);

  Rng rng(5);
  SimGraceConfig config;
  config.encoder.in_dim = profile.feature_dim;
  config.encoder.hidden_dim = 16;
  config.encoder.out_dim = 16;
  SimGrace model(config, rng);

  std::vector<int> all(data.size());
  for (size_t i = 0; i < data.size(); ++i) all[i] = static_cast<int>(i);
  Rng view_rng(6);
  TwoViewBatch before = model.EncodeTwoViews(data, all, view_rng);
  const double align_before =
      AlignmentMetric(before.u.value(), before.u_prime.value());

  TrainOptions options;
  options.epochs = 12;
  options.batch_size = 40;
  TrainGraphSsl(model, data, options);

  Rng view_rng2(6);
  TwoViewBatch after = model.EncodeTwoViews(data, all, view_rng2);
  const double align_after =
      AlignmentMetric(after.u.value(), after.u_prime.value());
  EXPECT_LT(align_after, align_before);
}

TEST(IntegrationTest, SaveReloadPreservesEmbeddings) {
  // Pre-train, save the model, reload into a freshly initialised twin,
  // and verify bit-identical downstream embeddings — the checkpointing
  // workflow of transfer learning.
  TuProfile profile = TuProfileByName("MUTAG");
  profile.num_graphs = 20;
  const std::vector<Graph> data = GenerateTuDataset(profile, 29);

  GraphClConfig config;
  config.encoder.in_dim = profile.feature_dim;
  config.encoder.hidden_dim = 8;
  config.encoder.out_dim = 8;
  Rng rng(11);
  GraphCl trained(config, rng);
  TrainOptions options;
  options.epochs = 3;
  options.batch_size = 10;
  TrainGraphSsl(trained, data, options);

  const std::string path =
      std::string(::testing::TempDir()) + "/integration_ckpt.ggcl";
  ASSERT_TRUE(SaveModule(path, trained));

  Rng rng2(999);
  GraphCl restored(config, rng2);
  ASSERT_TRUE(LoadModule(path, restored));
  EXPECT_TRUE(AllClose(trained.EmbedGraphs(data),
                       restored.EmbedGraphs(data), 0.0));
  std::remove(path.c_str());
}

TEST(IntegrationTest, EmbeddingsDeterministicGivenSeeds) {
  TuProfile profile = TuProfileByName("MUTAG");
  profile.num_graphs = 20;
  const std::vector<Graph> data = GenerateTuDataset(profile, 28);
  auto run = [&]() {
    Rng rng(9);
    GraphClConfig config;
    config.encoder.in_dim = profile.feature_dim;
    config.encoder.hidden_dim = 8;
    config.encoder.out_dim = 8;
    GraphCl model(config, rng);
    TrainOptions options;
    options.epochs = 3;
    options.batch_size = 10;
    options.seed = 13;
    TrainGraphSsl(model, data, options);
    return model.EmbedGraphs(data);
  };
  EXPECT_TRUE(AllClose(run(), run(), 1e-12));
}

}  // namespace
}  // namespace gradgcl
