#include "tensor/matrix.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/ops.h"

namespace gradgcl {
namespace {

TEST(MatrixTest, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.cols(), 0);
  EXPECT_TRUE(m.empty());
}

TEST(MatrixTest, FillConstructor) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.size(), 6);
  for (int i = 0; i < m.size(); ++i) EXPECT_DOUBLE_EQ(m.at_flat(i), 1.5);
}

TEST(MatrixTest, InitializerList) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_DOUBLE_EQ(m(0, 0), 1);
  EXPECT_DOUBLE_EQ(m(1, 2), 6);
}

TEST(MatrixTest, RowMajorLayout) {
  Matrix m{{1, 2}, {3, 4}};
  EXPECT_DOUBLE_EQ(m.data()[0], 1);
  EXPECT_DOUBLE_EQ(m.data()[1], 2);
  EXPECT_DOUBLE_EQ(m.data()[2], 3);
  EXPECT_DOUBLE_EQ(m.data()[3], 4);
}

TEST(MatrixTest, Identity) {
  Matrix eye = Matrix::Identity(3);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(eye(i, j), i == j ? 1.0 : 0.0);
    }
  }
}

TEST(MatrixTest, RandomNormalMoments) {
  Rng rng(5);
  Matrix m = Matrix::RandomNormal(100, 100, rng, 2.0, 3.0);
  EXPECT_NEAR(m.Mean(), 2.0, 0.1);
}

TEST(MatrixTest, GlorotUniformWithinLimit) {
  Rng rng(5);
  Matrix m = Matrix::GlorotUniform(10, 30, rng);
  const double limit = std::sqrt(6.0 / 40.0);
  EXPECT_LE(m.Max(), limit);
  EXPECT_GE(m.Min(), -limit);
}

TEST(MatrixTest, VectorFactories) {
  Matrix col = Matrix::ColumnVector({1, 2, 3});
  EXPECT_EQ(col.rows(), 3);
  EXPECT_EQ(col.cols(), 1);
  Matrix row = Matrix::RowVector({1, 2, 3});
  EXPECT_EQ(row.rows(), 1);
  EXPECT_EQ(row.cols(), 3);
  EXPECT_DOUBLE_EQ(col(2, 0), 3);
  EXPECT_DOUBLE_EQ(row(0, 2), 3);
}

TEST(MatrixTest, Transposed) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_DOUBLE_EQ(t(0, 1), 4);
  EXPECT_DOUBLE_EQ(t(2, 0), 3);
  EXPECT_TRUE(AllClose(t.Transposed(), m));
}

TEST(MatrixTest, RowAndCol) {
  Matrix m{{1, 2}, {3, 4}, {5, 6}};
  EXPECT_TRUE(AllClose(m.Row(1), Matrix{{3, 4}}));
  EXPECT_TRUE(AllClose(m.Col(0), Matrix{{1}, {3}, {5}}));
}

TEST(MatrixTest, SetRow) {
  Matrix m(2, 2, 0.0);
  m.SetRow(1, Matrix{{7, 8}});
  EXPECT_DOUBLE_EQ(m(1, 0), 7);
  EXPECT_DOUBLE_EQ(m(1, 1), 8);
  EXPECT_DOUBLE_EQ(m(0, 0), 0);
}

TEST(MatrixTest, RowSlice) {
  Matrix m{{1, 2}, {3, 4}, {5, 6}};
  Matrix s = m.RowSlice(1, 3);
  EXPECT_TRUE(AllClose(s, Matrix{{3, 4}, {5, 6}}));
  EXPECT_EQ(m.RowSlice(1, 1).rows(), 0);
}

TEST(MatrixTest, Gather) {
  Matrix m{{1, 2}, {3, 4}, {5, 6}};
  Matrix g = m.Gather({2, 0, 0});
  EXPECT_TRUE(AllClose(g, Matrix{{5, 6}, {1, 2}, {1, 2}}));
}

TEST(MatrixTest, Reshape) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  m.Reshape(3, 2);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_DOUBLE_EQ(m(1, 0), 3);  // row-major reinterpretation
}

TEST(MatrixTest, CompoundArithmetic) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{1, 1}, {1, 1}};
  a += b;
  EXPECT_TRUE(AllClose(a, Matrix{{2, 3}, {4, 5}}));
  a -= b;
  EXPECT_TRUE(AllClose(a, Matrix{{1, 2}, {3, 4}}));
  a *= 2.0;
  EXPECT_TRUE(AllClose(a, Matrix{{2, 4}, {6, 8}}));
}

TEST(MatrixTest, Reductions) {
  Matrix m{{1, 2}, {3, 4}};
  EXPECT_DOUBLE_EQ(m.Sum(), 10);
  EXPECT_DOUBLE_EQ(m.Mean(), 2.5);
  EXPECT_DOUBLE_EQ(m.Min(), 1);
  EXPECT_DOUBLE_EQ(m.Max(), 4);
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), std::sqrt(30.0));
}

TEST(MatrixTest, AllFinite) {
  Matrix m{{1, 2}, {3, 4}};
  EXPECT_TRUE(m.AllFinite());
  m(0, 0) = std::nan("");
  EXPECT_FALSE(m.AllFinite());
  m(0, 0) = 1e308 * 10;  // inf
  EXPECT_FALSE(m.AllFinite());
}

TEST(MatrixTest, AllCloseRespectsShapeAndTolerance) {
  Matrix a{{1, 2}};
  Matrix b{{1, 2.0005}};
  EXPECT_FALSE(AllClose(a, b, 1e-4));
  EXPECT_TRUE(AllClose(a, b, 1e-3));
  EXPECT_FALSE(AllClose(a, Matrix{{1}, {2}}));
}

TEST(MatrixTest, ToStringMentionsShape) {
  Matrix m(3, 4, 0.0);
  EXPECT_NE(m.ToString().find("3x4"), std::string::npos);
}

// Element bounds are GRADGCL_DCHECKed, so the abort only fires in
// debug builds; release builds compile the check out of the hot path.
#ifndef NDEBUG
TEST(MatrixDeathTest, OutOfRangeAccessAborts) {
  Matrix m(2, 2, 0.0);
  EXPECT_DEATH(m(2, 0), "GRADGCL_CHECK");
  EXPECT_DEATH(m(0, -1), "GRADGCL_CHECK");
}
#endif

TEST(MatrixDeathTest, ShapeMismatchAborts) {
  Matrix a(2, 2, 0.0);
  Matrix b(2, 3, 0.0);
  EXPECT_DEATH(a += b, "GRADGCL_CHECK");
  EXPECT_DEATH(a.Reshape(3, 3), "GRADGCL_CHECK");
  EXPECT_DEATH(a.Gather({5}), "GRADGCL_CHECK");
}

// --- tensor/ops.h kernels ---------------------------------------------------

TEST(OpsTest, MatMulKnownProduct) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  EXPECT_TRUE(AllClose(MatMul(a, b), Matrix{{19, 22}, {43, 50}}));
}

TEST(OpsTest, MatMulIdentity) {
  Rng rng(3);
  Matrix a = Matrix::RandomNormal(4, 4, rng);
  EXPECT_TRUE(AllClose(MatMul(a, Matrix::Identity(4)), a, 1e-12));
}

TEST(OpsTest, MatMulTransVariantsAgree) {
  Rng rng(5);
  Matrix a = Matrix::RandomNormal(3, 5, rng);
  Matrix b = Matrix::RandomNormal(5, 4, rng);
  EXPECT_TRUE(AllClose(MatMulTransA(a.Transposed(), b), MatMul(a, b), 1e-10));
  EXPECT_TRUE(
      AllClose(MatMulTransB(a, b.Transposed()), MatMul(a, b), 1e-10));
}

TEST(OpsTest, HadamardElementwise) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{2, 2}, {0.5, 1}};
  EXPECT_TRUE(AllClose(Hadamard(a, b), Matrix{{2, 4}, {1.5, 4}}));
}

TEST(OpsTest, ElementwiseMaps) {
  Matrix a{{0, 1}};
  EXPECT_TRUE(AllClose(Exp(a), Matrix{{1, std::exp(1.0)}}, 1e-12));
  EXPECT_TRUE(AllClose(Relu(Matrix{{-2, 3}}), Matrix{{0, 3}}));
  EXPECT_TRUE(AllClose(Abs(Matrix{{-2, 3}}), Matrix{{2, 3}}));
  EXPECT_TRUE(AllClose(Sqrt(Matrix{{4, 9}}), Matrix{{2, 3}}, 1e-12));
}

TEST(OpsTest, RowAndColReductions) {
  Matrix m{{1, 2}, {3, 4}};
  EXPECT_TRUE(AllClose(RowSum(m), Matrix{{3}, {7}}));
  EXPECT_TRUE(AllClose(RowMean(m), Matrix{{1.5}, {3.5}}));
  EXPECT_TRUE(AllClose(RowMax(m), Matrix{{2}, {4}}));
  EXPECT_TRUE(AllClose(ColSum(m), Matrix{{4, 6}}));
  EXPECT_TRUE(AllClose(ColMean(m), Matrix{{2, 3}}));
}

TEST(OpsTest, RowNormalizeUnitNorms) {
  Matrix m{{3, 4}, {0, 0}, {1, 0}};
  Matrix n = RowNormalize(m);
  EXPECT_NEAR(n(0, 0), 0.6, 1e-12);
  EXPECT_NEAR(n(0, 1), 0.8, 1e-12);
  EXPECT_DOUBLE_EQ(n(1, 0), 0.0);  // zero row passes through
  EXPECT_DOUBLE_EQ(n(2, 0), 1.0);
}

TEST(OpsTest, RowSoftmaxSumsToOne) {
  Matrix m{{1, 2, 3}, {1000, 1000, 1000}};  // second row tests stability
  Matrix s = RowSoftmax(m);
  for (int i = 0; i < 2; ++i) {
    double sum = 0.0;
    for (int j = 0; j < 3; ++j) sum += s(i, j);
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
  EXPECT_NEAR(s(1, 0), 1.0 / 3.0, 1e-12);
}

TEST(OpsTest, CosineSimilarityDiagonalOnes) {
  Rng rng(7);
  Matrix a = Matrix::RandomNormal(5, 8, rng);
  Matrix sim = CosineSimilarityMatrix(a, a);
  for (int i = 0; i < 5; ++i) EXPECT_NEAR(sim(i, i), 1.0, 1e-9);
  EXPECT_LE(sim.Max(), 1.0 + 1e-9);
  EXPECT_GE(sim.Min(), -1.0 - 1e-9);
}

TEST(OpsTest, SquaredDistanceMatchesDirect) {
  Rng rng(9);
  Matrix a = Matrix::RandomNormal(4, 6, rng);
  Matrix b = Matrix::RandomNormal(3, 6, rng);
  Matrix d2 = SquaredDistanceMatrix(a, b);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 3; ++j) {
      double expected = 0.0;
      for (int k = 0; k < 6; ++k) {
        const double d = a(i, k) - b(j, k);
        expected += d * d;
      }
      EXPECT_NEAR(d2(i, j), expected, 1e-9);
    }
  }
}

TEST(OpsTest, BroadcastAndScaleRows) {
  Matrix m{{1, 2}, {3, 4}};
  EXPECT_TRUE(
      AllClose(AddRowBroadcast(m, Matrix{{10, 20}}), Matrix{{11, 22}, {13, 24}}));
  EXPECT_TRUE(
      AllClose(ScaleRows(m, Matrix{{2}, {0.5}}), Matrix{{2, 4}, {1.5, 2}}));
}

TEST(OpsTest, StackingShapes) {
  Matrix a{{1, 2}};
  Matrix b{{3, 4}, {5, 6}};
  EXPECT_TRUE(AllClose(VStack(a, b), Matrix{{1, 2}, {3, 4}, {5, 6}}));
  EXPECT_TRUE(AllClose(HStack(b, b), Matrix{{3, 4, 3, 4}, {5, 6, 5, 6}}));
}

TEST(OpsDeathTest, ProductShapeMismatchAborts) {
  Matrix a(2, 3, 1.0);
  Matrix b(2, 3, 1.0);
  EXPECT_DEATH(MatMul(a, b), "MatMul shape mismatch");
  EXPECT_DEATH(VStack(a, Matrix(1, 2, 0.0)), "GRADGCL_CHECK");
}

}  // namespace
}  // namespace gradgcl
