#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "datasets/molecule_universe.h"
#include "datasets/node_synthetic.h"
#include "datasets/tu_synthetic.h"
#include "eval/probes.h"
#include "graph/stats.h"
#include "tensor/ops.h"

namespace gradgcl {
namespace {

// --- TU-style graph classification datasets -----------------------------------

TEST(TuDatasetTest, AllPaperProfilesPresent) {
  const std::vector<TuProfile> profiles = PaperTuProfiles();
  ASSERT_EQ(profiles.size(), 10u);
  const std::vector<std::string> expected = {
      "NCI1",   "PROTEINS", "DD",      "MUTAG",    "COLLAB",
      "IMDB-B", "RDT-B",    "RDT-M5K", "RDT-M12K", "TWITTER-RGP"};
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(profiles[i].name, expected[i]);
  }
}

TEST(TuDatasetTest, LookupByNameWorks) {
  const TuProfile p = TuProfileByName("MUTAG");
  EXPECT_EQ(p.num_graphs, 188);
  EXPECT_EQ(p.num_classes, 2);
}

TEST(TuDatasetDeathTest, UnknownProfileAborts) {
  EXPECT_DEATH(TuProfileByName("NOPE"), "unknown");
}

TEST(TuDatasetTest, GenerationIsDeterministic) {
  const TuProfile p = TuProfileByName("MUTAG");
  const std::vector<Graph> a = GenerateTuDataset(p, 5);
  const std::vector<Graph> b = GenerateTuDataset(p, 5);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].num_nodes, b[i].num_nodes);
    EXPECT_EQ(a[i].edges, b[i].edges);
    EXPECT_TRUE(AllClose(a[i].features, b[i].features));
  }
}

TEST(TuDatasetTest, DifferentSeedsDiffer) {
  const TuProfile p = TuProfileByName("MUTAG");
  const std::vector<Graph> a = GenerateTuDataset(p, 5);
  const std::vector<Graph> b = GenerateTuDataset(p, 6);
  bool any_diff = false;
  for (size_t i = 0; i < a.size() && !any_diff; ++i) {
    any_diff = a[i].edges != b[i].edges;
  }
  EXPECT_TRUE(any_diff);
}

TEST(TuDatasetTest, LabelsBalancedAcrossClasses) {
  const TuProfile p = TuProfileByName("RDT-M5K");
  const std::vector<Graph> graphs = GenerateTuDataset(p, 3);
  std::vector<int> counts(p.num_classes, 0);
  for (const Graph& g : graphs) {
    ASSERT_GE(g.label, 0);
    ASSERT_LT(g.label, p.num_classes);
    ++counts[g.label];
  }
  const int lo = *std::min_element(counts.begin(), counts.end());
  const int hi = *std::max_element(counts.begin(), counts.end());
  EXPECT_LE(hi - lo, 1);
}

TEST(TuDatasetTest, GraphsAreValidAndConnected) {
  const std::vector<Graph> graphs =
      GenerateTuDataset(TuProfileByName("IMDB-B"), 7);
  for (const Graph& g : graphs) {
    ValidateGraph(g);
    EXPECT_EQ(CountConnectedComponents(g), 1);
    EXPECT_GE(g.num_nodes, 4);
  }
}

TEST(TuDatasetTest, StatsTrackProfile) {
  const TuProfile p = TuProfileByName("PROTEINS");
  const DatasetStats stats = ComputeStats(GenerateTuDataset(p, 9));
  EXPECT_EQ(stats.num_graphs, p.num_graphs);
  EXPECT_EQ(stats.num_classes, p.num_classes);
  EXPECT_NEAR(stats.avg_nodes, p.avg_nodes, p.avg_nodes * 0.15);
}

TEST(TuDatasetTest, FeaturesAreOneHot) {
  const std::vector<Graph> graphs =
      GenerateTuDataset(TuProfileByName("MUTAG"), 3);
  for (const Graph& g : graphs) {
    for (int i = 0; i < g.num_nodes; ++i) {
      double sum = 0.0;
      for (int j = 0; j < g.feature_dim(); ++j) sum += g.features(i, j);
      EXPECT_DOUBLE_EQ(sum, 1.0);
    }
  }
}

TEST(TuDatasetTest, ClassesAreStructurallySeparable) {
  // Mean degree must increase with the class index (the planted signal).
  const TuProfile p = TuProfileByName("IMDB-B");
  const std::vector<Graph> graphs = GenerateTuDataset(p, 13);
  double deg[2] = {0, 0};
  int count[2] = {0, 0};
  for (const Graph& g : graphs) {
    deg[g.label] += 2.0 * g.num_edges() / g.num_nodes;
    ++count[g.label];
  }
  EXPECT_GT(deg[1] / count[1], deg[0] / count[0]);
}

// Every profile must generate cleanly — sweep them all.
class TuProfileSweep : public ::testing::TestWithParam<int> {};

TEST_P(TuProfileSweep, GeneratesValidDataset) {
  const TuProfile p = PaperTuProfiles()[GetParam()];
  const std::vector<Graph> graphs = GenerateTuDataset(p, 1);
  EXPECT_EQ(static_cast<int>(graphs.size()), p.num_graphs);
  for (const Graph& g : graphs) ValidateGraph(g);
  const DatasetStats stats = ComputeStats(graphs);
  EXPECT_EQ(stats.num_classes, p.num_classes);
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, TuProfileSweep, ::testing::Range(0, 10));

// --- SBM node-classification datasets ------------------------------------------

TEST(NodeDatasetTest, AllPaperProfilesPresent) {
  EXPECT_EQ(PaperNodeProfiles().size(), 9u);
  EXPECT_EQ(NodeProfileByName("Cora").num_classes, 7);
  EXPECT_EQ(NodeProfileByName("PubMed").num_classes, 3);
}

TEST(NodeDatasetTest, MasksPartitionNodes) {
  const NodeDataset ds = GenerateNodeDataset(NodeProfileByName("Cora"), 3);
  std::set<int> all;
  all.insert(ds.train_idx.begin(), ds.train_idx.end());
  all.insert(ds.val_idx.begin(), ds.val_idx.end());
  all.insert(ds.test_idx.begin(), ds.test_idx.end());
  EXPECT_EQ(static_cast<int>(all.size()), ds.graph.num_nodes);
  EXPECT_EQ(ds.train_idx.size() + ds.val_idx.size() + ds.test_idx.size(),
            static_cast<size_t>(ds.graph.num_nodes));
}

TEST(NodeDatasetTest, LabelsInRange) {
  const NodeDataset ds = GenerateNodeDataset(NodeProfileByName("WikiCS"), 5);
  for (int y : ds.labels) {
    EXPECT_GE(y, 0);
    EXPECT_LT(y, ds.num_classes);
  }
}

TEST(NodeDatasetTest, GraphIsHomophilous) {
  const NodeDataset ds = GenerateNodeDataset(NodeProfileByName("Cora"), 7);
  int intra = 0, inter = 0;
  for (const auto& [u, v] : ds.graph.edges) {
    if (ds.labels[u] == ds.labels[v]) {
      ++intra;
    } else {
      ++inter;
    }
  }
  // p_out/p_in = 0.12 and ~6x more inter-class pairs; homophily must
  // still dominate clearly.
  EXPECT_GT(intra, inter);
}

TEST(NodeDatasetTest, AverageDegreeNearTarget) {
  const NodeProfile p = NodeProfileByName("PubMed");
  const NodeDataset ds = GenerateNodeDataset(p, 11);
  const double avg_deg =
      2.0 * ds.graph.num_edges() / ds.graph.num_nodes;
  EXPECT_NEAR(avg_deg, p.avg_degree, p.avg_degree * 0.3);
}

TEST(NodeDatasetTest, FeaturesCorrelateWithClass) {
  const NodeDataset ds = GenerateNodeDataset(NodeProfileByName("Co.Phy"), 13);
  // Same-class feature rows must be more similar on average than
  // cross-class rows (this is the probe's signal).
  const Matrix sim =
      CosineSimilarityMatrix(ds.graph.features, ds.graph.features);
  double intra = 0.0, inter = 0.0;
  int n_intra = 0, n_inter = 0;
  const int n = ds.graph.num_nodes;
  for (int i = 0; i < n; i += 3) {
    for (int j = 0; j < n; j += 3) {
      if (i == j) continue;
      if (ds.labels[i] == ds.labels[j]) {
        intra += sim(i, j);
        ++n_intra;
      } else {
        inter += sim(i, j);
        ++n_inter;
      }
    }
  }
  EXPECT_GT(intra / n_intra, inter / n_inter + 0.05);
}

class NodeProfileSweep : public ::testing::TestWithParam<int> {};

TEST_P(NodeProfileSweep, GeneratesValidDataset) {
  const NodeProfile p = PaperNodeProfiles()[GetParam()];
  const NodeDataset ds = GenerateNodeDataset(p, 1);
  ValidateGraph(ds.graph);
  EXPECT_EQ(ds.graph.num_nodes, p.num_nodes);
  EXPECT_EQ(ds.num_classes, p.num_classes);
  EXPECT_EQ(static_cast<int>(ds.labels.size()), p.num_nodes);
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, NodeProfileSweep, ::testing::Range(0, 9));

// --- Molecule universe ------------------------------------------------------------

TEST(MoleculeTest, PretrainSetsGenerate) {
  const std::vector<Graph> zinc =
      GeneratePretrainSet(PretrainKind::kZinc, 50, 3);
  const std::vector<Graph> ppi =
      GeneratePretrainSet(PretrainKind::kPpi, 50, 3);
  EXPECT_EQ(zinc.size(), 50u);
  EXPECT_EQ(ppi.size(), 50u);
  for (const Graph& g : zinc) ValidateGraph(g);
  for (const Graph& g : ppi) ValidateGraph(g);
}

TEST(MoleculeTest, PpiDenserThanZinc) {
  const DatasetStats zinc =
      ComputeStats(GeneratePretrainSet(PretrainKind::kZinc, 80, 5));
  const DatasetStats ppi =
      ComputeStats(GeneratePretrainSet(PretrainKind::kPpi, 80, 5));
  EXPECT_GT(ppi.avg_degree, zinc.avg_degree);
}

TEST(MoleculeTest, RingCountOnKnownGraphs) {
  Graph path;
  path.num_nodes = 4;
  path.edges = {{0, 1}, {1, 2}, {2, 3}};
  path.features = Matrix::Ones(4, kNumAtomTypes);
  EXPECT_EQ(RingCount(path), 0);
  Graph cycle = path;
  cycle.edges.emplace_back(3, 0);
  EXPECT_EQ(RingCount(cycle), 1);
}

TEST(MoleculeTest, TriangleCountOnKnownGraphs) {
  Graph tri;
  tri.num_nodes = 4;
  tri.edges = {{0, 1}, {1, 2}, {0, 2}, {2, 3}};
  tri.features = Matrix::Ones(4, kNumAtomTypes);
  EXPECT_EQ(TriangleCount(tri), 1);
  // K4 has 4 triangles.
  Graph k4;
  k4.num_nodes = 4;
  k4.edges = {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}};
  k4.features = Matrix::Ones(4, kNumAtomTypes);
  EXPECT_EQ(TriangleCount(k4), 4);
}

TEST(MoleculeTest, ClusteringCoefficientKnownValues) {
  Graph tri;
  tri.num_nodes = 3;
  tri.edges = {{0, 1}, {1, 2}, {0, 2}};
  tri.features = Matrix::Ones(3, kNumAtomTypes);
  EXPECT_NEAR(ClusteringCoefficient(tri), 1.0, 1e-12);
  Graph path;
  path.num_nodes = 3;
  path.edges = {{0, 1}, {1, 2}};
  path.features = Matrix::Ones(3, kNumAtomTypes);
  EXPECT_NEAR(ClusteringCoefficient(path), 0.0, 1e-12);
}

TEST(MoleculeTest, AtomFractionSums) {
  const std::vector<Graph> graphs =
      GeneratePretrainSet(PretrainKind::kZinc, 10, 9);
  for (const Graph& g : graphs) {
    double total = 0.0;
    for (int t = 0; t < kNumAtomTypes; ++t) total += AtomFraction(g, t);
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(MoleculeTest, CarbonDominates) {
  const std::vector<Graph> graphs =
      GeneratePretrainSet(PretrainKind::kZinc, 100, 13);
  double carbon = 0.0;
  for (const Graph& g : graphs) carbon += AtomFraction(g, 0);
  EXPECT_NEAR(carbon / graphs.size(), 0.55, 0.06);
}

TEST(TransferTaskTest, AllTasksGenerateBalancedLabels) {
  for (const std::string& name : TransferTaskNames()) {
    const TransferTask task = GenerateTransferTask(name, 100, 17, 0.0);
    EXPECT_EQ(task.name, name);
    int positives = 0;
    for (const Graph& g : task.graphs) {
      ASSERT_TRUE(g.label == 0 || g.label == 1);
      positives += g.label;
    }
    EXPECT_NEAR(positives, 50, 12) << name;
  }
}

TEST(TransferTaskTest, LabelNoiseFlipsSomeLabels) {
  const TransferTask clean = GenerateTransferTask("BBBP", 200, 19, 0.0);
  const TransferTask noisy = GenerateTransferTask("BBBP", 200, 19, 0.3);
  int flipped = 0;
  for (size_t i = 0; i < clean.graphs.size(); ++i) {
    if (clean.graphs[i].label != noisy.graphs[i].label) ++flipped;
  }
  EXPECT_GT(flipped, 30);
  EXPECT_LT(flipped, 90);
}

TEST(TransferTaskDeathTest, UnknownTaskAborts) {
  EXPECT_DEATH(GenerateTransferTask("NOPE", 10, 1), "unknown");
}

TEST(TransferTaskTest, PropertySignalSurvivesNoise) {
  // With moderate label noise, the defining property must still score
  // a clearly-above-chance ROC-AUC — otherwise the task ceiling would
  // be at chance and Table VI meaningless.
  const TransferTask task = GenerateTransferTask("BBBP", 200, 29, 0.1);
  std::vector<double> scores;
  std::vector<int> labels;
  for (const Graph& g : task.graphs) {
    scores.push_back(RingCount(g) + 0.3 * MaxDegree(g));
    labels.push_back(g.label);
  }
  EXPECT_GT(RocAuc(scores, labels), 0.75);
}

TEST(TransferTaskTest, NoiseLowersTheCeiling) {
  auto auc_at = [](double noise) {
    const TransferTask task = GenerateTransferTask("Tox21", 300, 31, noise);
    std::vector<double> scores;
    std::vector<int> labels;
    for (const Graph& g : task.graphs) {
      scores.push_back(AtomFraction(g, 1));
      labels.push_back(g.label);
    }
    return RocAuc(scores, labels);
  };
  EXPECT_GT(auc_at(0.0), auc_at(0.3) + 0.05);
}

TEST(TransferTaskTest, Determinism) {
  const TransferTask a = GenerateTransferTask("Tox21", 60, 23);
  const TransferTask b = GenerateTransferTask("Tox21", 60, 23);
  for (size_t i = 0; i < a.graphs.size(); ++i) {
    EXPECT_EQ(a.graphs[i].label, b.graphs[i].label);
    EXPECT_EQ(a.graphs[i].edges, b.graphs[i].edges);
  }
}

// --- MoleculeUniverse shape/seed-stability pins --------------------------------

// Literal pins on GeneratePretrainSet(·, 20, 2024): any change to the
// universe grammar or its Rng consumption order shows up here first.
// The streaming data pipeline (data/stream_profiles.h) relies on this
// stream being stable — shards written by one build must read back
// bit-identical under the next.
TEST(MoleculeTest, ZincShapePinsAtSeed2024) {
  const std::vector<Graph> zinc =
      GeneratePretrainSet(PretrainKind::kZinc, 20, 2024);
  ASSERT_EQ(zinc.size(), 20u);
  long nodes = 0, edges = 0;
  for (const Graph& g : zinc) {
    nodes += g.num_nodes;
    edges += g.num_edges();
    EXPECT_EQ(g.feature_dim(), kNumAtomTypes);
  }
  EXPECT_EQ(nodes, 246);
  EXPECT_EQ(edges, 250);
  EXPECT_EQ(zinc[0].num_nodes, 12);
  EXPECT_EQ(zinc[0].num_edges(), 13);
  EXPECT_EQ(RingCount(zinc[0]), 2);
  EXPECT_EQ(zinc[7].num_nodes, 12);
  EXPECT_EQ(zinc[7].num_edges(), 11);
  EXPECT_EQ(RingCount(zinc[7]), 0);
  EXPECT_EQ(zinc[19].num_nodes, 6);
  EXPECT_EQ(zinc[19].num_edges(), 6);
  EXPECT_EQ(RingCount(zinc[19]), 1);
  // First atoms and canonical edges of graph 0.
  const int expected_types[6] = {0, 2, 3, 6, 1, 1};
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(zinc[0].features(i, expected_types[i]), 1.0) << i;
  }
  ASSERT_GE(zinc[0].edges.size(), 4u);
  EXPECT_EQ(zinc[0].edges[0], std::make_pair(0, 1));
  EXPECT_EQ(zinc[0].edges[1], std::make_pair(0, 4));
  EXPECT_EQ(zinc[0].edges[2], std::make_pair(0, 5));
  EXPECT_EQ(zinc[0].edges[3], std::make_pair(1, 2));
}

TEST(MoleculeTest, PpiShapePinsAtSeed2024) {
  const std::vector<Graph> ppi =
      GeneratePretrainSet(PretrainKind::kPpi, 20, 2024);
  ASSERT_EQ(ppi.size(), 20u);
  long nodes = 0, edges = 0;
  for (const Graph& g : ppi) {
    nodes += g.num_nodes;
    edges += g.num_edges();
  }
  EXPECT_EQ(nodes, 523);
  EXPECT_EQ(edges, 1039);
  EXPECT_EQ(ppi[0].num_nodes, 31);
  EXPECT_EQ(ppi[0].num_edges(), 66);
  EXPECT_EQ(ppi[19].num_nodes, 31);
  EXPECT_EQ(ppi[19].num_edges(), 61);
}

// --- Streaming (ForEach*) generators match the batch forms ---------------------

bool SameGraphBits(const Graph& a, const Graph& b) {
  if (a.num_nodes != b.num_nodes || a.label != b.label || a.edges != b.edges ||
      a.features.rows() != b.features.rows() ||
      a.features.cols() != b.features.cols()) {
    return false;
  }
  for (int i = 0; i < a.features.rows(); ++i) {
    for (int j = 0; j < a.features.cols(); ++j) {
      if (a.features(i, j) != b.features(i, j)) return false;
    }
  }
  return true;
}

TEST(MoleculeTest, ForEachPretrainGraphMatchesGenerate) {
  for (const PretrainKind kind : {PretrainKind::kZinc, PretrainKind::kPpi}) {
    const std::vector<Graph> batch = GeneratePretrainSet(kind, 40, 17);
    size_t i = 0;
    ForEachPretrainGraph(kind, 40, 17, [&](Graph&& g) {
      ASSERT_LT(i, batch.size());
      EXPECT_TRUE(SameGraphBits(batch[i], g)) << i;
      ++i;
    });
    EXPECT_EQ(i, batch.size());
  }
}

TEST(TuDatasetTest, ForEachTuGraphMatchesGenerate) {
  TuProfile profile = TuProfileByName("MUTAG");
  profile.num_graphs = 24;
  const std::vector<Graph> batch = GenerateTuDataset(profile, 9);
  size_t i = 0;
  ForEachTuGraph(profile, 9, [&](Graph&& g) {
    ASSERT_LT(i, batch.size());
    EXPECT_TRUE(SameGraphBits(batch[i], g)) << i;
    ++i;
  });
  EXPECT_EQ(i, batch.size());
}

}  // namespace
}  // namespace gradgcl
