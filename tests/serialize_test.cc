#include "nn/serialize.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "nn/layers.h"
#include "tensor/ops.h"

namespace gradgcl {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(SerializeTest, StateRoundTrip) {
  Rng rng(1);
  std::vector<Matrix> state = {
      Matrix::RandomNormal(3, 4, rng),
      Matrix::RandomNormal(1, 7, rng),
      Matrix(0, 5, 0.0),  // empty tensor edge case
  };
  const std::string path = TempPath("state_roundtrip.ggcl");
  ASSERT_TRUE(SaveState(path, state));

  std::vector<Matrix> loaded;
  ASSERT_TRUE(LoadStateFile(path, &loaded));
  ASSERT_EQ(loaded.size(), state.size());
  for (size_t i = 0; i < state.size(); ++i) {
    EXPECT_EQ(loaded[i].rows(), state[i].rows());
    EXPECT_EQ(loaded[i].cols(), state[i].cols());
    EXPECT_TRUE(AllClose(loaded[i], state[i], 0.0));  // bit exact
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, ModuleRoundTrip) {
  Rng rng(2);
  Mlp original({4, 8, 3}, rng);
  const std::string path = TempPath("mlp.ggcl");
  ASSERT_TRUE(SaveModule(path, original));

  Rng rng2(99);  // different init
  Mlp restored({4, 8, 3}, rng2);
  ASSERT_TRUE(LoadModule(path, restored));

  // Same weights -> same outputs.
  Rng xrng(3);
  Variable x(Matrix::RandomNormal(5, 4, xrng));
  EXPECT_TRUE(AllClose(original.Forward(x).value(),
                       restored.Forward(x).value(), 0.0));
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileFails) {
  std::vector<Matrix> state;
  EXPECT_FALSE(LoadStateFile("/nonexistent/dir/file.ggcl", &state));
  EXPECT_TRUE(state.empty());
}

TEST(SerializeTest, CorruptMagicFails) {
  const std::string path = TempPath("corrupt.ggcl");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite("NOPE", 1, 4, f);
  std::fclose(f);
  std::vector<Matrix> state;
  EXPECT_FALSE(LoadStateFile(path, &state));
  std::remove(path.c_str());
}

TEST(SerializeTest, TruncatedFileFails) {
  Rng rng(4);
  const std::vector<Matrix> state = {Matrix::RandomNormal(8, 8, rng)};
  const std::string path = TempPath("truncated.ggcl");
  ASSERT_TRUE(SaveState(path, state));
  // Truncate to half size.
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
  std::vector<Matrix> loaded;
  EXPECT_FALSE(LoadStateFile(path, &loaded));
  std::remove(path.c_str());
}

// Writes a snapshot with an arbitrary (possibly lying) header:
// magic + version, a tensor count, explicit (rows, cols) pairs, and
// `payload_doubles` doubles of payload.
std::string WriteCraftedFile(const char* name, int32_t version, int32_t count,
                             const std::vector<std::pair<int32_t, int32_t>>& dims,
                             int payload_doubles) {
  const std::string path = TempPath(name);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  EXPECT_NE(f, nullptr);
  std::fwrite("GGCL", 1, 4, f);
  std::fwrite(&version, 4, 1, f);
  std::fwrite(&count, 4, 1, f);
  for (const auto& [rows, cols] : dims) {
    std::fwrite(&rows, 4, 1, f);
    std::fwrite(&cols, 4, 1, f);
  }
  const double zero = 0.0;
  for (int i = 0; i < payload_doubles; ++i) std::fwrite(&zero, 8, 1, f);
  std::fclose(f);
  return path;
}

// Untrusted-snapshot hardening: every corrupt header must produce a
// clean `false` with an empty output state — no abort, no allocation
// sized from the lying header.

TEST(SerializeTest, WrongVersionFails) {
  const std::string path = WriteCraftedFile("ver.ggcl", 99, 1, {{1, 1}}, 1);
  std::vector<Matrix> state = {Matrix::Ones(1, 1)};
  EXPECT_FALSE(LoadStateFile(path, &state));
  EXPECT_TRUE(state.empty());
  std::remove(path.c_str());
}

TEST(SerializeTest, NegativeTensorCountFails) {
  const std::string path = WriteCraftedFile("negcount.ggcl", 1, -1, {}, 0);
  std::vector<Matrix> state;
  EXPECT_FALSE(LoadStateFile(path, &state));
  EXPECT_TRUE(state.empty());
  std::remove(path.c_str());
}

TEST(SerializeTest, InflatedTensorCountFails) {
  // Claims a billion tensors in a 20-byte file: rejected up front from
  // the per-tensor header cost, before any reserve sized by `count`.
  const std::string path =
      WriteCraftedFile("bigcount.ggcl", 1, 1000000000, {{1, 1}}, 0);
  std::vector<Matrix> state;
  EXPECT_FALSE(LoadStateFile(path, &state));
  EXPECT_TRUE(state.empty());
  std::remove(path.c_str());
}

TEST(SerializeTest, NegativeDimensionsFail) {
  for (const auto& dims : {std::pair<int32_t, int32_t>{-1, 4},
                           std::pair<int32_t, int32_t>{4, -1},
                           std::pair<int32_t, int32_t>{-2, -2}}) {
    const std::string path =
        WriteCraftedFile("negdims.ggcl", 1, 1, {dims}, 16);
    std::vector<Matrix> state;
    EXPECT_FALSE(LoadStateFile(path, &state));
    EXPECT_TRUE(state.empty());
    std::remove(path.c_str());
  }
}

TEST(SerializeTest, OverflowingElementCountFails) {
  // rows·cols ~ 2^62: the 8x byte multiple would overflow int64 if
  // computed naively, and the alleged payload dwarfs the file. Must
  // fail fast without attempting the (exabyte) allocation.
  const int32_t huge = 0x7fffffff;
  const std::string path =
      WriteCraftedFile("overflow.ggcl", 1, 1, {{huge, huge}}, 4);
  std::vector<Matrix> state;
  EXPECT_FALSE(LoadStateFile(path, &state));
  EXPECT_TRUE(state.empty());
  std::remove(path.c_str());
}

TEST(SerializeTest, PayloadShorterThanHeaderClaimsFails) {
  // Header says 8x8 but only half the doubles are present.
  const std::string path =
      WriteCraftedFile("short.ggcl", 1, 1, {{8, 8}}, 32);
  std::vector<Matrix> state;
  EXPECT_FALSE(LoadStateFile(path, &state));
  EXPECT_TRUE(state.empty());
  std::remove(path.c_str());
}

TEST(SerializeTest, SecondTensorHeaderMissingFails) {
  // Count says 2 but the file ends after the first tensor.
  const std::string path =
      WriteCraftedFile("missing2nd.ggcl", 1, 2, {{2, 2}}, 4);
  std::vector<Matrix> state;
  EXPECT_FALSE(LoadStateFile(path, &state));
  EXPECT_TRUE(state.empty());
  std::remove(path.c_str());
}

TEST(SerializeTest, SaveToUnwritablePathFails) {
  Rng rng(5);
  EXPECT_FALSE(
      SaveState("/nonexistent/dir/file.ggcl", {Matrix::Ones(2, 2)}));
}

TEST(SerializeTest, LoadIntoMismatchedModuleAborts) {
  Rng rng(6);
  Linear small(2, 2, rng);
  const std::string path = TempPath("mismatch.ggcl");
  ASSERT_TRUE(SaveModule(path, small));
  Linear large(4, 4, rng);
  EXPECT_DEATH(LoadModule(path, large), "GRADGCL_CHECK");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gradgcl
