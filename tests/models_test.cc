#include <cmath>

#include <gtest/gtest.h>

#include "datasets/node_synthetic.h"
#include "datasets/tu_synthetic.h"
#include "models/bgrl.h"
#include "models/costa.h"
#include "models/gca.h"
#include "models/grace.h"
#include "models/graph2vec.h"
#include "models/graphcl.h"
#include "models/graphmae.h"
#include "models/dgi.h"
#include "models/gcn_supervised.h"
#include "models/infograph.h"
#include "models/joao.h"
#include "models/mvgrl.h"
#include "models/node2vec.h"
#include "models/sgcl.h"
#include "models/simgrace.h"
#include "models/wl_kernel.h"
#include "tensor/ops.h"

namespace gradgcl {
namespace {

std::vector<Graph> TinyDataset() {
  TuProfile profile = TuProfileByName("MUTAG");
  profile.num_graphs = 24;
  return GenerateTuDataset(profile, 1);
}

NodeDataset TinyNodeDataset() {
  NodeProfile profile = NodeProfileByName("Cora");
  profile.num_nodes = 60;
  profile.feature_dim = 12;
  return GenerateNodeDataset(profile, 1);
}

std::vector<int> AllIndices(int n) {
  std::vector<int> idx(n);
  for (int i = 0; i < n; ++i) idx[i] = i;
  return idx;
}

EncoderConfig TinyEncoder(int in_dim, EncoderKind kind = EncoderKind::kGin) {
  EncoderConfig config;
  config.kind = kind;
  config.in_dim = in_dim;
  config.hidden_dim = 8;
  config.out_dim = 8;
  return config;
}

// Generic checks shared by all graph-level models.
void CheckGraphModel(GraphSslModel& model, const std::vector<Graph>& data) {
  Rng rng(2);
  const std::vector<int> indices = AllIndices(static_cast<int>(data.size()));
  Variable loss = model.BatchLoss(data, indices, rng);
  ASSERT_EQ(loss.value().size(), 1);
  EXPECT_TRUE(loss.value().AllFinite());

  model.ZeroGrad();
  Backward(model.BatchLoss(data, indices, rng));
  double grad_norm = 0.0;
  for (const Variable& p : model.parameters()) {
    grad_norm += p.grad().FrobeniusNorm();
  }
  EXPECT_GT(grad_norm, 0.0) << "no gradient reached any parameter";

  const Matrix emb = model.EmbedGraphs(data);
  EXPECT_EQ(emb.rows(), static_cast<int>(data.size()));
  EXPECT_TRUE(emb.AllFinite());
}

void CheckNodeModel(NodeSslModel& model, const NodeDataset& data) {
  Rng rng(3);
  Variable loss = model.EpochLoss(data, rng);
  ASSERT_EQ(loss.value().size(), 1);
  EXPECT_TRUE(loss.value().AllFinite());

  model.ZeroGrad();
  Backward(model.EpochLoss(data, rng));
  double grad_norm = 0.0;
  for (const Variable& p : model.parameters()) {
    grad_norm += p.grad().FrobeniusNorm();
  }
  EXPECT_GT(grad_norm, 0.0);

  const Matrix emb = model.EmbedNodes(data);
  EXPECT_EQ(emb.rows(), data.graph.num_nodes);
  EXPECT_TRUE(emb.AllFinite());
}

TEST(GraphClTest, BasicContract) {
  const std::vector<Graph> data = TinyDataset();
  for (double weight : {0.0, 0.5, 1.0}) {
    Rng rng(1);
    GraphClConfig config;
    config.encoder = TinyEncoder(data[0].feature_dim());
    config.proj_dim = 8;
    config.grad_gcl.weight = weight;
    GraphCl model(config, rng);
    CheckGraphModel(model, data);
  }
}

TEST(GraphClTest, FixedAugPairRespected) {
  const std::vector<Graph> data = TinyDataset();
  Rng rng(4);
  GraphClConfig config;
  config.encoder = TinyEncoder(data[0].feature_dim());
  config.random_augs = false;
  config.aug1 = AugmentKind::kAttrMask;
  config.aug2 = AugmentKind::kSubgraph;
  GraphCl model(config, rng);
  CheckGraphModel(model, data);
}

TEST(JoaoTest, DistributionStaysNormalised) {
  const std::vector<Graph> data = TinyDataset();
  Rng rng(5);
  JoaoConfig config;
  config.graphcl.encoder = TinyEncoder(data[0].feature_dim());
  Joao model(config, rng);
  const std::vector<int> indices = AllIndices(static_cast<int>(data.size()));
  for (int step = 0; step < 5; ++step) {
    model.ZeroGrad();
    Backward(model.BatchLoss(data, indices, rng));
  }
  EXPECT_NEAR(model.pair_distribution().Sum(), 1.0, 1e-9);
  EXPECT_GE(model.pair_distribution().Min(), 0.0);
}

TEST(JoaoTest, DistributionMovesFromUniform) {
  const std::vector<Graph> data = TinyDataset();
  Rng rng(6);
  JoaoConfig config;
  config.graphcl.encoder = TinyEncoder(data[0].feature_dim());
  config.gamma = 1.0;  // aggressive updates for the test
  Joao model(config, rng);
  const Matrix uniform = model.pair_distribution();
  const std::vector<int> indices = AllIndices(static_cast<int>(data.size()));
  for (int step = 0; step < 10; ++step) {
    model.ZeroGrad();
    Backward(model.BatchLoss(data, indices, rng));
  }
  Matrix diff = model.pair_distribution();
  diff -= uniform;
  EXPECT_GT(diff.FrobeniusNorm(), 1e-4);
}

TEST(SimGraceTest, BasicContract) {
  const std::vector<Graph> data = TinyDataset();
  for (double weight : {0.0, 0.5, 1.0}) {
    Rng rng(7);
    SimGraceConfig config;
    config.encoder = TinyEncoder(data[0].feature_dim());
    config.grad_gcl.weight = weight;
    SimGrace model(config, rng);
    CheckGraphModel(model, data);
  }
}

TEST(SimGraceTest, ZeroPerturbationGivesIdenticalViews) {
  const std::vector<Graph> data = TinyDataset();
  Rng rng(8);
  SimGraceConfig config;
  config.encoder = TinyEncoder(data[0].feature_dim());
  config.perturb_magnitude = 0.0;
  SimGrace model(config, rng);
  Rng view_rng(9);
  TwoViewBatch views = model.EncodeTwoViews(
      data, AllIndices(static_cast<int>(data.size())), view_rng);
  EXPECT_TRUE(AllClose(views.u.value(), views.u_prime.value(), 1e-9));
}

TEST(SimGraceTest, PerturbationSeparatesViews) {
  const std::vector<Graph> data = TinyDataset();
  Rng rng(10);
  SimGraceConfig config;
  config.encoder = TinyEncoder(data[0].feature_dim());
  config.perturb_magnitude = 1.0;
  SimGrace model(config, rng);
  Rng view_rng(11);
  TwoViewBatch views = model.EncodeTwoViews(
      data, AllIndices(static_cast<int>(data.size())), view_rng);
  EXPECT_FALSE(AllClose(views.u.value(), views.u_prime.value(), 1e-4));
}

TEST(InfoGraphTest, BasicContract) {
  const std::vector<Graph> data = TinyDataset();
  for (double weight : {0.0, 0.5, 1.0}) {
    Rng rng(12);
    InfoGraphConfig config;
    config.encoder = TinyEncoder(data[0].feature_dim());
    config.grad_gcl.weight = weight;
    InfoGraphModel model(config, rng);
    CheckGraphModel(model, data);
  }
}

TEST(MvgrlGraphTest, BasicContract) {
  const std::vector<Graph> data = TinyDataset();
  for (double weight : {0.0, 0.5}) {
    Rng rng(13);
    MvgrlConfig config;
    config.encoder = TinyEncoder(data[0].feature_dim());
    config.grad_gcl.loss = LossKind::kJsd;
    config.grad_gcl.weight = weight;
    MvgrlGraph model(config, rng);
    CheckGraphModel(model, data);
  }
}

TEST(MvgrlTest, BatchDiffusionIsBlockDiagonal) {
  const std::vector<Graph> data = TinyDataset();
  const SparseMatrix diff = BatchDiffusionOperator(data, {0, 1}, 0.2);
  const Matrix dense = diff.ToDense();
  const int n0 = data[0].num_nodes;
  for (int i = 0; i < n0; ++i) {
    for (int j = n0; j < dense.cols(); ++j) {
      EXPECT_DOUBLE_EQ(dense(i, j), 0.0);
    }
  }
}

TEST(MvgrlNodeTest, BasicContract) {
  const NodeDataset data = TinyNodeDataset();
  for (double weight : {0.0, 0.4}) {
    Rng rng(14);
    MvgrlConfig config;
    config.encoder = TinyEncoder(data.graph.feature_dim(), EncoderKind::kGcn);
    config.grad_gcl.loss = LossKind::kJsd;
    config.grad_gcl.weight = weight;
    MvgrlNode model(config, rng);
    CheckNodeModel(model, data);
  }
}

TEST(GraceTest, BasicContract) {
  const NodeDataset data = TinyNodeDataset();
  for (double weight : {0.0, 0.5, 1.0}) {
    Rng rng(15);
    GraceConfig config;
    config.encoder = TinyEncoder(data.graph.feature_dim(), EncoderKind::kGcn);
    config.grad_gcl.weight = weight;
    Grace model(config, rng);
    CheckNodeModel(model, data);
  }
}

TEST(GcaTest, AdaptiveFlagForcedOn) {
  const NodeDataset data = TinyNodeDataset();
  Rng rng(16);
  GraceConfig config;
  config.encoder = TinyEncoder(data.graph.feature_dim(), EncoderKind::kGcn);
  config.adaptive = false;  // Gca must override this
  Gca model(config, rng);
  EXPECT_TRUE(model.config().adaptive);
  CheckNodeModel(model, data);
}

TEST(BgrlTest, BasicContract) {
  const NodeDataset data = TinyNodeDataset();
  for (double weight : {0.0, 0.5}) {
    Rng rng(17);
    BgrlConfig config;
    config.encoder = TinyEncoder(data.graph.feature_dim(), EncoderKind::kGcn);
    config.grad_gcl.weight = weight;
    Bgrl model(config, rng);
    CheckNodeModel(model, data);
  }
}

TEST(BgrlTest, EmaTargetTracksOnline) {
  const NodeDataset data = TinyNodeDataset();
  Rng rng(18);
  BgrlConfig config;
  config.encoder = TinyEncoder(data.graph.feature_dim(), EncoderKind::kGcn);
  config.ema_decay = 0.5;
  Bgrl model(config, rng);
  // Perturb the online weights, run PostStep, and verify that a second
  // EpochLoss with zero augmentation changes (target moved).
  Rng loss_rng(19);
  const double before = model.EpochLoss(data, loss_rng).scalar();
  for (Variable& p : model.parameters()) {
    Matrix v = p.value();
    v *= 1.5;
    p.set_value(v);
  }
  model.PostStep();
  const double after = model.EpochLoss(data, loss_rng).scalar();
  EXPECT_NE(before, after);
}

TEST(SgclTest, BasicContract) {
  const NodeDataset data = TinyNodeDataset();
  for (double weight : {0.0, 0.5}) {
    Rng rng(20);
    SgclConfig config;
    config.encoder = TinyEncoder(data.graph.feature_dim(), EncoderKind::kGcn);
    config.grad_gcl.weight = weight;
    Sgcl model(config, rng);
    CheckNodeModel(model, data);
  }
}

TEST(CostaTest, BasicContract) {
  const NodeDataset data = TinyNodeDataset();
  for (double weight : {0.0, 0.5}) {
    Rng rng(21);
    CostaConfig config;
    config.encoder = TinyEncoder(data.graph.feature_dim(), EncoderKind::kGcn);
    config.grad_gcl.weight = weight;
    Costa model(config, rng);
    CheckNodeModel(model, data);
  }
}

TEST(GraphMaeTest, BasicContract) {
  const std::vector<Graph> data = TinyDataset();
  for (double weight : {0.0, 0.5}) {
    Rng rng(22);
    GraphMaeConfig config;
    config.encoder = TinyEncoder(data[0].feature_dim());
    config.grad_gcl.loss = LossKind::kSce;
    config.grad_gcl.weight = weight;
    GraphMae model(config, rng);
    CheckGraphModel(model, data);
  }
}

// --- Classic baselines -------------------------------------------------------------

TEST(WlKernelTest, IsomorphicGraphsGetEqualFeatures) {
  // The same triangle under a node permutation.
  Graph a;
  a.num_nodes = 4;
  a.edges = {{0, 1}, {1, 2}, {0, 2}, {2, 3}};
  a.features = Matrix::Ones(4, 3);
  Graph b;
  b.num_nodes = 4;
  b.edges = {{3, 2}, {2, 1}, {3, 1}, {1, 0}};  // relabelled
  b.features = Matrix::Ones(4, 3);
  const Matrix f = WlFeatures({a, b}, {3, 64});
  EXPECT_TRUE(AllClose(f.Row(0), f.Row(1), 1e-12));
}

TEST(WlKernelTest, DistinguishesNonIsomorphic) {
  Graph path;
  path.num_nodes = 4;
  path.edges = {{0, 1}, {1, 2}, {2, 3}};
  path.features = Matrix::Ones(4, 3);
  Graph star;
  star.num_nodes = 4;
  star.edges = {{0, 1}, {0, 2}, {0, 3}};
  star.features = Matrix::Ones(4, 3);
  const Matrix f = WlFeatures({path, star}, {3, 64});
  EXPECT_FALSE(AllClose(f.Row(0), f.Row(1), 1e-6));
}

TEST(WlKernelTest, RowsAreUnitNorm) {
  const std::vector<Graph> data = TinyDataset();
  const Matrix f = WlFeatures(data, {2, 128});
  for (int i = 0; i < f.rows(); ++i) {
    double norm = 0.0;
    for (int j = 0; j < f.cols(); ++j) norm += f(i, j) * f(i, j);
    EXPECT_NEAR(norm, 1.0, 1e-9);
  }
}

TEST(DgiTest, BasicContract) {
  const NodeDataset data = TinyNodeDataset();
  Rng rng(23);
  DgiConfig config;
  config.encoder = TinyEncoder(data.graph.feature_dim(), EncoderKind::kGcn);
  Dgi model(config, rng);
  CheckNodeModel(model, data);
}

TEST(DgiTest, LossDecreasesOverEpochs) {
  const NodeDataset data = TinyNodeDataset();
  Rng rng(24);
  DgiConfig config;
  config.encoder = TinyEncoder(data.graph.feature_dim(), EncoderKind::kGcn);
  Dgi model(config, rng);
  TrainOptions options;
  options.epochs = 25;
  options.lr = 0.02;
  const std::vector<EpochStats> history = TrainNodeSsl(model, data, options);
  double late = 0.0, early = 0.0;
  for (int e = 0; e < 5; ++e) early += history[e].loss / 5.0;
  for (int e = 20; e < 25; ++e) late += history[e].loss / 5.0;
  EXPECT_LT(late, early);
}

TEST(Node2VecTest, WalkStaysOnGraph) {
  TuProfile profile = TuProfileByName("MUTAG");
  profile.num_graphs = 1;
  const Graph g = GenerateTuDataset(profile, 31)[0];
  const CsrAdjacency csr = BuildCsr(g);
  Node2VecConfig config;
  config.walk_length = 12;
  Rng rng(25);
  const std::vector<int> walk =
      SampleNode2VecWalk(g, csr, 0, config, rng);
  ASSERT_GE(walk.size(), 2u);
  EXPECT_EQ(walk[0], 0);
  for (size_t i = 1; i < walk.size(); ++i) {
    EXPECT_TRUE(HasEdge(g, walk[i - 1], walk[i]))
        << "walk used a non-edge " << walk[i - 1] << "-" << walk[i];
  }
}

TEST(Node2VecTest, EmbeddingsShapeAndDeterminism) {
  TuProfile profile = TuProfileByName("MUTAG");
  profile.num_graphs = 1;
  const Graph g = GenerateTuDataset(profile, 32)[0];
  Node2VecConfig config;
  config.dim = 12;
  config.epochs = 1;
  const Matrix a = Node2VecEmbeddings(g, config);
  const Matrix b = Node2VecEmbeddings(g, config);
  EXPECT_EQ(a.rows(), g.num_nodes);
  EXPECT_EQ(a.cols(), 12);
  EXPECT_TRUE(AllClose(a, b));
  EXPECT_TRUE(a.AllFinite());
}

TEST(Node2VecTest, NeighborsEmbedCloserThanDistantNodes) {
  // A long path graph: adjacent nodes must embed closer (on average)
  // than nodes 10 hops apart.
  Graph path;
  path.num_nodes = 24;
  for (int i = 0; i + 1 < 24; ++i) path.edges.emplace_back(i, i + 1);
  path.features = Matrix::Ones(24, 2);
  Node2VecConfig config;
  config.dim = 16;
  config.epochs = 4;
  config.walks_per_node = 6;
  const Matrix emb = RowNormalize(Node2VecEmbeddings(path, config));
  double near = 0.0, far = 0.0;
  int n_near = 0, n_far = 0;
  for (int i = 0; i + 1 < 24; ++i) {
    double dot = 0.0;
    for (int k = 0; k < 16; ++k) dot += emb(i, k) * emb(i + 1, k);
    near += dot;
    ++n_near;
  }
  for (int i = 0; i + 10 < 24; ++i) {
    double dot = 0.0;
    for (int k = 0; k < 16; ++k) dot += emb(i, k) * emb(i + 10, k);
    far += dot;
    ++n_far;
  }
  EXPECT_GT(near / n_near, far / n_far);
}

TEST(Node2VecTest, GraphEmbeddingsShape) {
  TuProfile profile = TuProfileByName("MUTAG");
  profile.num_graphs = 6;
  const std::vector<Graph> data = GenerateTuDataset(profile, 33);
  Node2VecConfig config;
  config.dim = 8;
  config.epochs = 1;
  config.walks_per_node = 1;
  const Matrix emb = Node2VecGraphEmbeddings(data, config);
  EXPECT_EQ(emb.rows(), 6);
  EXPECT_EQ(emb.cols(), 8);
}

TEST(SupervisedGcnTest, LearnsSeparableNodeDataset) {
  NodeProfile profile = NodeProfileByName("Cora");
  profile.num_nodes = 100;
  profile.feature_dim = 16;
  profile.feature_noise = 0.5;  // easy
  profile.train_frac = 0.3;
  const NodeDataset data = GenerateNodeDataset(profile, 35);
  SupervisedGcnConfig config;
  config.epochs = 40;
  const double acc = TrainSupervisedGcn(data, config);
  EXPECT_GT(acc, 2.0 / profile.num_classes);  // far above chance
}

TEST(Graph2VecTest, ShapeAndDeterminism) {
  const std::vector<Graph> data = TinyDataset();
  Graph2VecConfig config;
  config.embedding_dim = 16;
  const Matrix a = Graph2VecEmbeddings(data, config);
  const Matrix b = Graph2VecEmbeddings(data, config);
  EXPECT_EQ(a.rows(), static_cast<int>(data.size()));
  EXPECT_EQ(a.cols(), 16);
  EXPECT_TRUE(AllClose(a, b));
}

}  // namespace
}  // namespace gradgcl
