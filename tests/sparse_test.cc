#include "tensor/sparse.h"

#include <gtest/gtest.h>

#include "tensor/ops.h"

namespace gradgcl {
namespace {

TEST(SparseTest, EmptyMatrix) {
  SparseMatrix s;
  EXPECT_EQ(s.rows(), 0);
  EXPECT_EQ(s.nnz(), 0);
}

TEST(SparseTest, ToDenseRoundTrip) {
  SparseMatrix s(2, 3, {{0, 1, 2.0}, {1, 0, -1.0}, {1, 2, 3.0}});
  EXPECT_TRUE(AllClose(s.ToDense(), Matrix{{0, 2, 0}, {-1, 0, 3}}));
  EXPECT_EQ(s.nnz(), 3);
}

TEST(SparseTest, DuplicateTripletsSummed) {
  SparseMatrix s(2, 2, {{0, 0, 1.0}, {0, 0, 2.5}, {1, 1, 1.0}});
  EXPECT_TRUE(AllClose(s.ToDense(), Matrix{{3.5, 0}, {0, 1}}));
  EXPECT_EQ(s.nnz(), 2);
}

TEST(SparseTest, MultiplyMatchesDense) {
  Rng rng(3);
  std::vector<Triplet> triplets;
  for (int k = 0; k < 30; ++k) {
    triplets.push_back({rng.UniformInt(6), rng.UniformInt(5), rng.Normal()});
  }
  SparseMatrix s(6, 5, triplets);
  Matrix x = Matrix::RandomNormal(5, 4, rng);
  EXPECT_TRUE(AllClose(s.Multiply(x), MatMul(s.ToDense(), x), 1e-10));
}

TEST(SparseTest, MultiplyTransposedMatchesDense) {
  Rng rng(5);
  std::vector<Triplet> triplets;
  for (int k = 0; k < 30; ++k) {
    triplets.push_back({rng.UniformInt(6), rng.UniformInt(5), rng.Normal()});
  }
  SparseMatrix s(6, 5, triplets);
  Matrix x = Matrix::RandomNormal(6, 3, rng);
  EXPECT_TRUE(AllClose(s.MultiplyTransposed(x),
                       MatMul(s.ToDense().Transposed(), x), 1e-10));
}

TEST(SparseTest, IdentityActsAsIdentity) {
  std::vector<Triplet> triplets;
  for (int i = 0; i < 4; ++i) triplets.push_back({i, i, 1.0});
  SparseMatrix eye(4, 4, triplets);
  Rng rng(7);
  Matrix x = Matrix::RandomNormal(4, 2, rng);
  EXPECT_TRUE(AllClose(eye.Multiply(x), x, 1e-12));
}

TEST(SparseTest, CsrStructureSorted) {
  SparseMatrix s(3, 3, {{2, 0, 1.0}, {0, 2, 1.0}, {0, 1, 1.0}});
  // Row offsets: row0 has 2 entries, row1 none, row2 one.
  ASSERT_EQ(s.row_offsets().size(), 4u);
  EXPECT_EQ(s.row_offsets()[1] - s.row_offsets()[0], 2);
  EXPECT_EQ(s.row_offsets()[2] - s.row_offsets()[1], 0);
  EXPECT_EQ(s.row_offsets()[3] - s.row_offsets()[2], 1);
  // Columns within row 0 are sorted.
  EXPECT_LT(s.col_indices()[0], s.col_indices()[1]);
}

TEST(SparseDeathTest, InvalidTripletAborts) {
  EXPECT_DEATH(SparseMatrix(2, 2, {{2, 0, 1.0}}), "GRADGCL_CHECK");
  EXPECT_DEATH(SparseMatrix(2, 2, {{0, -1, 1.0}}), "GRADGCL_CHECK");
}

TEST(SparseDeathTest, MultiplyShapeMismatchAborts) {
  SparseMatrix s(2, 3, {{0, 0, 1.0}});
  Matrix x(2, 2, 0.0);  // needs 3 rows
  EXPECT_DEATH(s.Multiply(x), "shape mismatch");
}

}  // namespace
}  // namespace gradgcl
