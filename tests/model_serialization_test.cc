// Checkpoint round-trips for every backbone: save a trained model's
// parameters, load them into a freshly initialised twin, and require
// bit-identical downstream embeddings. Guards the save/load pathway a
// transfer-learning user depends on, across every model family.

#include <cstdio>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "datasets/node_synthetic.h"
#include "datasets/tu_synthetic.h"
#include "models/bgrl.h"
#include "models/costa.h"
#include "models/dgi.h"
#include "models/grace.h"
#include "models/graphcl.h"
#include "models/graphmae.h"
#include "models/infograph.h"
#include "models/joao.h"
#include "models/mvgrl.h"
#include "models/sgcl.h"
#include "models/simgrace.h"
#include "nn/serialize.h"
#include "tensor/ops.h"

namespace gradgcl {
namespace {

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

EncoderConfig SmallEncoder(int in_dim, EncoderKind kind) {
  EncoderConfig config;
  config.kind = kind;
  config.in_dim = in_dim;
  config.hidden_dim = 8;
  config.out_dim = 8;
  return config;
}

// --- Graph-level backbones ----------------------------------------------------

enum class GraphBackboneId {
  kGraphCl,
  kJoao,
  kSimGrace,
  kInfoGraph,
  kMvgrl,
  kGraphMae
};

std::unique_ptr<GraphSslModel> MakeGraphBackbone(GraphBackboneId id,
                                                 int in_dim, Rng& rng) {
  switch (id) {
    case GraphBackboneId::kGraphCl: {
      GraphClConfig c;
      c.encoder = SmallEncoder(in_dim, EncoderKind::kGin);
      c.proj_dim = 8;
      return std::make_unique<GraphCl>(c, rng);
    }
    case GraphBackboneId::kJoao: {
      JoaoConfig c;
      c.graphcl.encoder = SmallEncoder(in_dim, EncoderKind::kGin);
      c.graphcl.proj_dim = 8;
      return std::make_unique<Joao>(c, rng);
    }
    case GraphBackboneId::kSimGrace: {
      SimGraceConfig c;
      c.encoder = SmallEncoder(in_dim, EncoderKind::kGin);
      c.proj_dim = 8;
      return std::make_unique<SimGrace>(c, rng);
    }
    case GraphBackboneId::kInfoGraph: {
      InfoGraphConfig c;
      c.encoder = SmallEncoder(in_dim, EncoderKind::kGin);
      c.proj_dim = 8;
      return std::make_unique<InfoGraphModel>(c, rng);
    }
    case GraphBackboneId::kMvgrl: {
      MvgrlConfig c;
      c.encoder = SmallEncoder(in_dim, EncoderKind::kGin);
      c.proj_dim = 8;
      c.grad_gcl.loss = LossKind::kJsd;
      return std::make_unique<MvgrlGraph>(c, rng);
    }
    case GraphBackboneId::kGraphMae: {
      GraphMaeConfig c;
      c.encoder = SmallEncoder(in_dim, EncoderKind::kGin);
      c.grad_gcl.loss = LossKind::kSce;
      return std::make_unique<GraphMae>(c, rng);
    }
  }
  return nullptr;
}

class GraphModelCheckpoint
    : public ::testing::TestWithParam<GraphBackboneId> {};

TEST_P(GraphModelCheckpoint, SaveLoadPreservesEmbeddings) {
  TuProfile profile = TuProfileByName("MUTAG");
  profile.num_graphs = 12;
  const std::vector<Graph> data = GenerateTuDataset(profile, 3);

  Rng rng(101);
  auto trained = MakeGraphBackbone(GetParam(), profile.feature_dim, rng);
  TrainOptions options;
  options.epochs = 2;
  options.batch_size = 6;
  TrainGraphSsl(*trained, data, options);

  const std::string path = TempPath(
      "ckpt_graph_" + std::to_string(static_cast<int>(GetParam())) + ".ggcl");
  ASSERT_TRUE(SaveModule(path, *trained));

  Rng rng2(777);  // different initialisation
  auto restored = MakeGraphBackbone(GetParam(), profile.feature_dim, rng2);
  ASSERT_FALSE(
      AllClose(trained->EmbedGraphs(data), restored->EmbedGraphs(data), 1e-6))
      << "fresh model must differ before loading";
  ASSERT_TRUE(LoadModule(path, *restored));
  EXPECT_TRUE(
      AllClose(trained->EmbedGraphs(data), restored->EmbedGraphs(data), 0.0));
  std::remove(path.c_str());
}

// Corrupting a saved checkpoint must fail cleanly (no abort, no load)
// and leave the target model's parameters untouched.
TEST_P(GraphModelCheckpoint, CorruptCheckpointFailsCleanly) {
  TuProfile profile = TuProfileByName("MUTAG");
  profile.num_graphs = 6;
  const std::vector<Graph> data = GenerateTuDataset(profile, 3);

  Rng rng(111);
  auto model = MakeGraphBackbone(GetParam(), profile.feature_dim, rng);
  const std::string path = TempPath(
      "bad_graph_" + std::to_string(static_cast<int>(GetParam())) + ".ggcl");
  ASSERT_TRUE(SaveModule(path, *model));
  const Matrix before = model->EmbedGraphs(data);

  // Truncate the payload: header now claims more than the file holds.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size - 16), 0);
  EXPECT_FALSE(LoadModule(path, *model));

  // Corrupt the magic as well.
  f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fwrite("JUNK", 1, 4, f);
  std::fclose(f);
  EXPECT_FALSE(LoadModule(path, *model));

  // The failed loads must not have modified the model.
  EXPECT_TRUE(AllClose(model->EmbedGraphs(data), before, 0.0));
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    AllBackbones, GraphModelCheckpoint,
    ::testing::Values(GraphBackboneId::kGraphCl, GraphBackboneId::kJoao,
                      GraphBackboneId::kSimGrace, GraphBackboneId::kInfoGraph,
                      GraphBackboneId::kMvgrl, GraphBackboneId::kGraphMae));

// --- Node-level backbones ---------------------------------------------------------

enum class NodeBackboneId { kGrace, kBgrl, kCosta, kSgcl, kDgi, kMvgrlNode };

std::unique_ptr<NodeSslModel> MakeNodeBackbone(NodeBackboneId id, int in_dim,
                                               Rng& rng) {
  switch (id) {
    case NodeBackboneId::kGrace: {
      GraceConfig c;
      c.encoder = SmallEncoder(in_dim, EncoderKind::kGcn);
      c.proj_dim = 8;
      return std::make_unique<Grace>(c, rng);
    }
    case NodeBackboneId::kBgrl: {
      BgrlConfig c;
      c.encoder = SmallEncoder(in_dim, EncoderKind::kGcn);
      c.predictor_dim = 8;
      return std::make_unique<Bgrl>(c, rng);
    }
    case NodeBackboneId::kCosta: {
      CostaConfig c;
      c.encoder = SmallEncoder(in_dim, EncoderKind::kGcn);
      c.proj_dim = 8;
      return std::make_unique<Costa>(c, rng);
    }
    case NodeBackboneId::kSgcl: {
      SgclConfig c;
      c.encoder = SmallEncoder(in_dim, EncoderKind::kGcn);
      c.predictor_dim = 8;
      return std::make_unique<Sgcl>(c, rng);
    }
    case NodeBackboneId::kDgi: {
      DgiConfig c;
      c.encoder = SmallEncoder(in_dim, EncoderKind::kGcn);
      return std::make_unique<Dgi>(c, rng);
    }
    case NodeBackboneId::kMvgrlNode: {
      MvgrlConfig c;
      c.encoder = SmallEncoder(in_dim, EncoderKind::kGcn);
      c.proj_dim = 8;
      c.grad_gcl.loss = LossKind::kJsd;
      return std::make_unique<MvgrlNode>(c, rng);
    }
  }
  return nullptr;
}

class NodeModelCheckpoint : public ::testing::TestWithParam<NodeBackboneId> {};

TEST_P(NodeModelCheckpoint, SaveLoadPreservesEmbeddings) {
  NodeProfile profile = NodeProfileByName("Cora");
  profile.num_nodes = 50;
  profile.feature_dim = 10;
  const NodeDataset data = GenerateNodeDataset(profile, 5);

  Rng rng(103);
  auto trained = MakeNodeBackbone(GetParam(), profile.feature_dim, rng);
  TrainOptions options;
  options.epochs = 2;
  TrainNodeSsl(*trained, data, options);

  const std::string path = TempPath(
      "ckpt_node_" + std::to_string(static_cast<int>(GetParam())) + ".ggcl");
  ASSERT_TRUE(SaveModule(path, *trained));

  Rng rng2(888);
  auto restored = MakeNodeBackbone(GetParam(), profile.feature_dim, rng2);
  ASSERT_TRUE(LoadModule(path, *restored));
  EXPECT_TRUE(
      AllClose(trained->EmbedNodes(data), restored->EmbedNodes(data), 0.0));
  std::remove(path.c_str());
}

TEST_P(NodeModelCheckpoint, CorruptCheckpointFailsCleanly) {
  NodeProfile profile = NodeProfileByName("Cora");
  profile.num_nodes = 40;
  profile.feature_dim = 10;
  const NodeDataset data = GenerateNodeDataset(profile, 5);

  Rng rng(113);
  auto model = MakeNodeBackbone(GetParam(), profile.feature_dim, rng);
  const std::string path = TempPath(
      "bad_node_" + std::to_string(static_cast<int>(GetParam())) + ".ggcl");
  ASSERT_TRUE(SaveModule(path, *model));
  const Matrix before = model->EmbedNodes(data);

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size - 16), 0);
  EXPECT_FALSE(LoadModule(path, *model));
  EXPECT_TRUE(AllClose(model->EmbedNodes(data), before, 0.0));
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    AllBackbones, NodeModelCheckpoint,
    ::testing::Values(NodeBackboneId::kGrace, NodeBackboneId::kBgrl,
                      NodeBackboneId::kCosta, NodeBackboneId::kSgcl,
                      NodeBackboneId::kDgi, NodeBackboneId::kMvgrlNode));

}  // namespace
}  // namespace gradgcl
