// Tests for the pooled tape substrate (tensor/pool.h) and the fused
// GradGCL loss kernels: bucket/recycling behaviour, TapeScope
// lifecycle, the steady-state zero-allocation guarantee, and *exact*
// (bitwise, not tolerance) equivalence of the fused kernels and the
// pooled allocator against the reference paths, across thread counts.

#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "core/grad_gcl_loss.h"
#include "core/gradient_features.h"
#include "losses/contrastive.h"
#include "tensor/matrix.h"
#include "tensor/pool.h"
#include "train/optimizer.h"

namespace gradgcl {
namespace {

// Bitwise equality — distinguishes -0.0 from +0.0 and matches NaNs,
// which is exactly the "bit-identical" contract the fused kernels and
// the deterministic parallel substrate promise.
::testing::AssertionResult BitIdentical(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return ::testing::AssertionFailure()
           << "shape mismatch: " << a.rows() << "x" << a.cols() << " vs "
           << b.rows() << "x" << b.cols();
  }
  if (std::memcmp(a.data(), b.data(),
                  static_cast<size_t>(a.rows()) * a.cols() *
                      sizeof(double)) != 0) {
    for (int i = 0; i < a.rows(); ++i) {
      for (int j = 0; j < a.cols(); ++j) {
        const double av = a(i, j);
        const double bv = b(i, j);
        if (std::memcmp(&av, &bv, sizeof(double)) != 0) {
          return ::testing::AssertionFailure()
                 << "first differing element (" << i << ", " << j
                 << "): " << a(i, j) << " vs " << b(i, j);
        }
      }
    }
    return ::testing::AssertionFailure() << "buffers differ";
  }
  return ::testing::AssertionSuccess();
}

// Restores the pool/fusion switches and the thread count, so each test
// can toggle them freely.
class PoolEnvironmentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    pooling_ = PoolingEnabled();
    fused_ = FusedKernelsEnabled();
    threads_ = NumThreads();
  }
  void TearDown() override {
    SetPoolingEnabled(pooling_);
    SetFusedKernelsEnabled(fused_);
    SetNumThreads(threads_);
  }

 private:
  bool pooling_ = true;
  bool fused_ = true;
  int threads_ = 1;
};

using MatrixPoolTest = PoolEnvironmentTest;
using TapeScopeTest = PoolEnvironmentTest;
using AllocationRegressionTest = PoolEnvironmentTest;
using FusedEquivalenceTest = PoolEnvironmentTest;
using PooledTrainingTest = PoolEnvironmentTest;

TEST_F(MatrixPoolTest, BucketsArePowerOfTwoAndRecycled) {
  MatrixPool& pool = MatrixPool::Instance();
  pool.Trim();
  const PoolStats before = pool.stats();

  size_t cap = 0;
  double* p = pool.Acquire(100, &cap);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(cap, 128u);  // next power of two
  EXPECT_EQ(pool.stats().acquires, before.acquires + 1);
  EXPECT_EQ(pool.stats().pool_hits, before.pool_hits);  // cold miss
  pool.Release(p, cap);
  EXPECT_EQ(pool.CachedBuffers(), 1u);
  EXPECT_EQ(pool.CachedBytes(), 128u * sizeof(double));

  // Any request that rounds to the same bucket reuses the buffer.
  size_t cap2 = 0;
  double* q = pool.Acquire(65, &cap2);
  EXPECT_EQ(q, p);
  EXPECT_EQ(cap2, 128u);
  EXPECT_EQ(pool.stats().pool_hits, before.pool_hits + 1);
  pool.Release(q, cap2);

  // Tiny requests share the minimum bucket.
  size_t small_cap = 0;
  double* s = pool.Acquire(1, &small_cap);
  EXPECT_GE(small_cap, 1u);
  EXPECT_EQ(small_cap & (small_cap - 1), 0u);  // power of two
  pool.Release(s, small_cap);

  pool.Trim();
  EXPECT_EQ(pool.CachedBuffers(), 0u);
  EXPECT_EQ(pool.CachedBytes(), 0u);
}

TEST_F(MatrixPoolTest, HeapAllocIsCounted) {
  MatrixPool& pool = MatrixPool::Instance();
  const PoolStats before = pool.stats();
  double* p = MatrixPool::HeapAlloc(50);
  ASSERT_NE(p, nullptr);
  const PoolStats after = pool.stats();
  EXPECT_EQ(after.heap_allocs, before.heap_allocs + 1);
  EXPECT_EQ(after.heap_bytes, before.heap_bytes + 50 * sizeof(double));
  EXPECT_EQ(after.acquires, before.acquires);  // unpooled path
  MatrixPool::HeapFree(p);
}

TEST_F(TapeScopeTest, PoolsOnlyInsideActiveScope) {
  SetPoolingEnabled(true);
  MatrixPool& pool = MatrixPool::Instance();
  EXPECT_FALSE(TapeScope::Active());

  PoolStats before = pool.stats();
  { Matrix outside = Matrix::Uninitialized(16, 16); }
  PoolStats after = pool.stats();
  EXPECT_EQ(after.acquires, before.acquires);  // heap, not pooled
  EXPECT_EQ(after.heap_allocs, before.heap_allocs + 1);

  before = pool.stats();
  {
    TapeScope tape;
    EXPECT_TRUE(TapeScope::Active());
    Matrix inside = Matrix::Uninitialized(16, 16);
  }
  EXPECT_FALSE(TapeScope::Active());
  after = pool.stats();
  EXPECT_EQ(after.acquires, before.acquires + 1);

  // With pooling disabled the scope is inert.
  SetPoolingEnabled(false);
  before = pool.stats();
  {
    TapeScope tape;
    Matrix inside = Matrix::Uninitialized(16, 16);
  }
  after = pool.stats();
  EXPECT_EQ(after.acquires, before.acquires);
  EXPECT_EQ(after.heap_allocs, before.heap_allocs + 1);
}

TEST_F(TapeScopeTest, PooledMatrixOutlivesItsScope) {
  SetPoolingEnabled(true);
  MatrixPool& pool = MatrixPool::Instance();
  pool.Trim();

  Matrix escapee;
  {
    TapeScope tape;
    escapee = Matrix::Uninitialized(8, 8);
    for (int i = 0; i < 8; ++i)
      for (int j = 0; j < 8; ++j) escapee(i, j) = i * 8.0 + j;
  }
  // Buffers return via RAII only — closing the scope must not recall
  // the live buffer.
  EXPECT_EQ(pool.CachedBuffers(), 0u);
  for (int i = 0; i < 8; ++i)
    for (int j = 0; j < 8; ++j) EXPECT_EQ(escapee(i, j), i * 8.0 + j);

  escapee = Matrix();  // destruction returns the buffer to the pool
  EXPECT_EQ(pool.CachedBuffers(), 1u);
  pool.Trim();
}

TEST_F(TapeScopeTest, ScopesNest) {
  SetPoolingEnabled(true);
  EXPECT_FALSE(TapeScope::Active());
  {
    TapeScope outer;
    EXPECT_TRUE(TapeScope::Active());
    {
      TapeScope inner;
      EXPECT_TRUE(TapeScope::Active());
    }
    EXPECT_TRUE(TapeScope::Active());  // inner close keeps outer alive
  }
  EXPECT_FALSE(TapeScope::Active());
}

TEST_F(TapeScopeTest, ConcurrentScopesAreThreadSafe) {
  SetPoolingEnabled(true);
  MatrixPool& pool = MatrixPool::Instance();
  const PoolStats before = pool.stats();

  constexpr int kThreads = 4;
  constexpr int kIters = 200;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      TapeScope tape;  // scope activation is thread-local
      EXPECT_TRUE(TapeScope::Active());
      for (int i = 0; i < kIters; ++i) {
        Matrix m = Matrix::Uninitialized(4 + t, 8);
        m.Fill(static_cast<double>(i));
        EXPECT_EQ(m(0, 0), static_cast<double>(i));
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_FALSE(TapeScope::Active());  // worker scopes never leak here

  const PoolStats after = pool.stats();
  EXPECT_EQ(after.acquires,
            before.acquires + uint64_t{kThreads} * kIters);
  pool.Trim();
}

// One fixed-shape GradGCL training step: two linear encoders, the
// combined loss, backward, Adam. Parameters and optimizer state live
// outside any TapeScope (pool-exempt); each step opens its own scope
// exactly like train/trainer.cc does.
struct StepWorkload {
  StepWorkload()
      : rng(7),
        w1(Matrix::RandomNormal(16, 24, rng, 0.0, 0.3), true),
        w2(Matrix::RandomNormal(16, 24, rng, 0.0, 0.3), true),
        x1(Matrix::RandomNormal(20, 16, rng)),
        x2(Matrix::RandomNormal(20, 16, rng)),
        loss_fn(GradGclConfig{}),
        opt({w1, w2}, 1e-3) {}

  double Step() {
    TapeScope tape;
    opt.ZeroGrad();
    TwoViewBatch views{ag::Tanh(ag::MatMul(Variable(x1), w1)),
                       ag::Tanh(ag::MatMul(Variable(x2), w2))};
    Variable loss = loss_fn(views);
    Backward(loss);
    opt.Step();
    return loss.scalar();
  }

  Rng rng;
  Variable w1, w2;
  Matrix x1, x2;
  GradGclLoss loss_fn;
  Adam opt;
};

TEST_F(AllocationRegressionTest, SteadyStateStepIsAllocationFree) {
  SetPoolingEnabled(true);
  SetFusedKernelsEnabled(true);
  MatrixPool& pool = MatrixPool::Instance();

  StepWorkload workload;
  // Warm-up populates every bucket the step's working set needs (and
  // lazily creates parameter grad buffers).
  for (int i = 0; i < 3; ++i) workload.Step();

  const PoolStats before = pool.stats();
  constexpr int kSteps = 5;
  for (int i = 0; i < kSteps; ++i) workload.Step();
  const PoolStats after = pool.stats();

  // The zero-allocation guarantee: at steady state every matrix buffer
  // of the step is served from the free lists.
  EXPECT_EQ(after.heap_allocs, before.heap_allocs)
      << "steady-state step hit the heap ("
      << (after.heap_allocs - before.heap_allocs) << " allocations over "
      << kSteps << " steps)";
  EXPECT_GT(after.pool_hits, before.pool_hits);
  EXPECT_EQ(after.pool_hits - before.pool_hits,
            after.acquires - before.acquires);  // every acquire was a hit
  pool.Trim();
}

TEST_F(PooledTrainingTest, PoolingDoesNotChangeTrainingBits) {
  SetFusedKernelsEnabled(true);
  // Identical runs with the pool on and off: loss trajectory and final
  // weights must match bit for bit (recycled buffers are handed out
  // uninitialized, so any read-before-write would show up here).
  SetPoolingEnabled(true);
  StepWorkload pooled;
  std::vector<double> pooled_losses;
  for (int i = 0; i < 6; ++i) pooled_losses.push_back(pooled.Step());

  SetPoolingEnabled(false);
  StepWorkload unpooled;
  std::vector<double> unpooled_losses;
  for (int i = 0; i < 6; ++i) unpooled_losses.push_back(unpooled.Step());

  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(std::memcmp(&pooled_losses[i], &unpooled_losses[i],
                          sizeof(double)),
              0)
        << "loss diverged at step " << i << ": " << pooled_losses[i]
        << " vs " << unpooled_losses[i];
  }
  EXPECT_TRUE(BitIdentical(pooled.w1.value(), unpooled.w1.value()));
  EXPECT_TRUE(BitIdentical(pooled.w2.value(), unpooled.w2.value()));
  MatrixPool::Instance().Trim();
}

// Value + input gradients of a Variable-valued functional, evaluated
// under a given fused/unfused setting. The probe weights make the
// upstream gradient non-constant so backward closures are exercised
// beyond an all-ones seed.
struct EvalResult {
  Matrix value;
  Matrix du;
  Matrix dv;
};

template <typename Fn>
EvalResult EvalWithGrads(bool fused, const Matrix& mu, const Matrix& mv,
                         const Matrix& probe, Fn&& fn) {
  SetFusedKernelsEnabled(fused);
  Variable u(mu, true);
  Variable v(mv, true);
  Variable out = fn(u, v);
  Variable seed = out.rows() == 1 && out.cols() == 1
                      ? out
                      : ag::Sum(ag::Hadamard(out, Variable(probe)));
  Backward(seed);
  return {out.value(), u.grad(), v.grad()};
}

TEST_F(FusedEquivalenceTest, InfoNceGradientFeaturesMatchUnfusedExactly) {
  Rng rng(11);
  const Matrix mu = Matrix::RandomNormal(17, 9, rng);
  const Matrix mv = Matrix::RandomNormal(17, 9, rng);
  const Matrix probe = Matrix::RandomNormal(17, 9, rng);
  const double tau = 0.4;
  auto features = [&](const Variable& u, const Variable& v) {
    return InfoNceGradientFeatures(u, v, tau);
  };

  const EvalResult ref =
      EvalWithGrads(false, mu, mv, probe, features);  // unfused, 1 thread
  for (int threads : {1, 2, 4}) {
    SetNumThreads(threads);
    const EvalResult fused = EvalWithGrads(true, mu, mv, probe, features);
    EXPECT_TRUE(BitIdentical(fused.value, ref.value)) << threads << " threads";
    EXPECT_TRUE(BitIdentical(fused.du, ref.du)) << threads << " threads";
    EXPECT_TRUE(BitIdentical(fused.dv, ref.dv)) << threads << " threads";
    const EvalResult unfused = EvalWithGrads(false, mu, mv, probe, features);
    EXPECT_TRUE(BitIdentical(unfused.value, ref.value))
        << threads << " threads";
    EXPECT_TRUE(BitIdentical(unfused.du, ref.du)) << threads << " threads";
  }
}

TEST_F(FusedEquivalenceTest, JsdGradientFeaturesMatchUnfusedExactly) {
  Rng rng(13);
  const Matrix mu = Matrix::RandomNormal(15, 7, rng);
  const Matrix mv = Matrix::RandomNormal(15, 7, rng);
  const Matrix probe = Matrix::RandomNormal(15, 7, rng);
  auto features = [&](const Variable& u, const Variable& v) {
    return JsdGradientFeatures(u, v);
  };

  const EvalResult ref = EvalWithGrads(false, mu, mv, probe, features);
  for (int threads : {1, 2, 4}) {
    SetNumThreads(threads);
    const EvalResult fused = EvalWithGrads(true, mu, mv, probe, features);
    EXPECT_TRUE(BitIdentical(fused.value, ref.value)) << threads << " threads";
    EXPECT_TRUE(BitIdentical(fused.du, ref.du)) << threads << " threads";
    EXPECT_TRUE(BitIdentical(fused.dv, ref.dv)) << threads << " threads";
  }
}

TEST_F(FusedEquivalenceTest, InfoNceLossMatchesUnfusedExactly) {
  Rng rng(17);
  const Matrix mu = Matrix::RandomNormal(19, 8, rng);
  const Matrix mv = Matrix::RandomNormal(19, 8, rng);
  const Matrix probe;  // loss is scalar; probe unused
  auto loss = [&](const Variable& u, const Variable& v) {
    return InfoNce(u, v, 0.5);
  };

  const EvalResult ref = EvalWithGrads(false, mu, mv, probe, loss);
  for (int threads : {1, 2, 4}) {
    SetNumThreads(threads);
    const EvalResult fused = EvalWithGrads(true, mu, mv, probe, loss);
    EXPECT_TRUE(BitIdentical(fused.value, ref.value)) << threads << " threads";
    EXPECT_TRUE(BitIdentical(fused.du, ref.du)) << threads << " threads";
    EXPECT_TRUE(BitIdentical(fused.dv, ref.dv)) << threads << " threads";
  }
}

TEST_F(FusedEquivalenceTest, GradGclLossMatchesUnfusedExactly) {
  Rng rng(19);
  const Matrix mu = Matrix::RandomNormal(14, 10, rng);
  const Matrix mv = Matrix::RandomNormal(14, 10, rng);
  const Matrix probe;  // scalar loss
  GradGclLoss loss_fn(GradGclConfig{});  // weight 0.5: both components live
  auto loss = [&](const Variable& u, const Variable& v) {
    return loss_fn(TwoViewBatch{u, v});
  };

  const EvalResult ref = EvalWithGrads(false, mu, mv, probe, loss);
  for (int threads : {1, 2, 4}) {
    SetNumThreads(threads);
    const EvalResult fused = EvalWithGrads(true, mu, mv, probe, loss);
    EXPECT_TRUE(BitIdentical(fused.value, ref.value)) << threads << " threads";
    EXPECT_TRUE(BitIdentical(fused.du, ref.du)) << threads << " threads";
    EXPECT_TRUE(BitIdentical(fused.dv, ref.dv)) << threads << " threads";
  }
}

TEST_F(FusedEquivalenceTest, EuclideanFeaturesBitIdenticalAcrossThreads) {
  Rng rng(23);
  const Matrix mu = Matrix::RandomNormal(33, 6, rng);
  const Matrix mv = Matrix::RandomNormal(33, 6, rng);

  SetNumThreads(1);
  const Matrix ref = EuclideanGradientFeatures(mu, mv);
  for (int threads : {2, 4}) {
    SetNumThreads(threads);
    EXPECT_TRUE(BitIdentical(EuclideanGradientFeatures(mu, mv), ref))
        << threads << " threads";
  }
}

}  // namespace
}  // namespace gradgcl
