// Test battery for deterministic data-parallel training
// (src/distributed/):
//
//   1. Comm ring — Broadcast from any root, Barrier, typed failure
//      statuses (timeout, protocol, abort) on both transports.
//   2. Ring all-reduce — matches the fixed pairwise-tree reference
//      bit-for-bit at every world size (including non-power-of-two and
//      indivisible lengths); bucketing never changes a bit; aligned
//      sub-blocks of the tree compose (the property that makes
//      rank-local partials W-invariant).
//   3. Data-parallel training — 2- and 4-rank runs are bit-identical
//      (losses memcmp, final checkpoint file memcmp) to the
//      single-process run over >= 50 optimizer steps on both
//      transports; A = 1, W = 1 reproduces TrainGraphSsl exactly; the
//      streamed path reproduces the in-RAM path; GRADGCL_DIST_* env
//      knobs resolve and reshape the world (the TSAN verify legs run
//      this battery at ranks 2 and 4 on both backends).
//   4. Checkpoint/resume — "GGCK" round-trip preserves every field; a
//      byte-patched corruption battery rejects with a clean false and
//      ZERO heap allocations (the data_test idiom); resuming at step k
//      — mid-epoch, at an epoch boundary, and at a different world
//      size — is bit-identical to the uninterrupted run.
//   5. Fault injection — a rank aborted mid-step surfaces a typed
//      error on every rank within the timeout, with no hang and no
//      partial parameter update (every rank's parameters equal a clean
//      run stopped at its last completed step).

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datasets/tu_synthetic.h"
#include "distributed/checkpoint.h"
#include "distributed/comm.h"
#include "distributed/comm_socket.h"
#include "distributed/data_parallel.h"
#include "distributed/ring_allreduce.h"
#include "models/graphcl.h"
#include "train/trainer.h"

#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define GRADGCL_TEST_UNDER_SANITIZER 1
#endif
#endif
#if !defined(GRADGCL_TEST_UNDER_SANITIZER) && \
    (defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__))
#define GRADGCL_TEST_UNDER_SANITIZER 1
#endif

// Binary-wide heap-allocation counter (the data_test idiom): the
// corruption tests assert that a rejecting checkpoint loader never
// allocates memory sized from untrusted header fields.
namespace {
std::atomic<uint64_t> g_heap_new_calls{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_new_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace gradgcl {
namespace dist {
namespace {

namespace fs = std::filesystem;

uint64_t HeapNewCalls() {
  return g_heap_new_calls.load(std::memory_order_relaxed);
}

std::string TestPath(const char* name) {
  const std::string path = std::string(::testing::TempDir()) + "/" + name;
  fs::remove(path);
  return path;
}

std::vector<unsigned char> SlurpBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<unsigned char>(std::istreambuf_iterator<char>(in),
                                    std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path,
                    const std::vector<unsigned char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

template <typename T>
void Patch(std::vector<unsigned char>* bytes, size_t offset, T value) {
  ASSERT_LE(offset + sizeof(T), bytes->size());
  std::memcpy(bytes->data() + offset, &value, sizeof(T));
}

// Save/restore one environment variable around a test block.
class EnvVarGuard {
 public:
  EnvVarGuard(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~EnvVarGuard() {
    if (had_old_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

const char* BackendName(DistBackend backend) {
  return backend == DistBackend::kSocket ? "socket" : "thread";
}

std::vector<std::unique_ptr<CommBackend>> MakeRing(DistBackend backend,
                                                   int world) {
  if (backend == DistBackend::kSocket) {
    std::vector<std::unique_ptr<CommBackend>> ring;
    for (auto& endpoint : CreateSocketRing(world)) {
      ring.push_back(std::move(endpoint));
    }
    return ring;
  }
  return CreateThreadRing(world);
}

// --- Training fixtures ----------------------------------------------------

std::vector<Graph> TestDataset() {
  TuProfile profile = TuProfileByName("MUTAG");
  profile.num_graphs = 48;
  return GenerateTuDataset(profile, 2);
}

std::unique_ptr<GraphCl> MakeModel(uint64_t seed = 6) {
  const TuProfile profile = TuProfileByName("MUTAG");
  Rng rng(seed);
  GraphClConfig config;
  config.encoder.in_dim = profile.feature_dim;
  config.encoder.hidden_dim = 8;
  config.encoder.out_dim = 8;
  config.proj_dim = 8;
  return std::make_unique<GraphCl>(config, rng);
}

// 48 graphs at batch size 8 -> 6 batches/epoch; A = 4 -> 2 windows
// (optimizer steps) per epoch, the second with two empty trailing
// slots.
DistOptions SmallOptions(int epochs) {
  DistOptions opt;
  opt.train.epochs = epochs;
  opt.train.batch_size = 8;
  opt.train.lr = 0.02;
  opt.train.seed = 6;
  opt.micro_batches_per_step = 4;
  return opt;
}

void ExpectLossesBitEqual(const std::vector<double>& a,
                          const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  if (!a.empty()) {
    EXPECT_EQ(std::memcmp(a.data(), b.data(), sizeof(double) * a.size()), 0);
  }
}

void ExpectMatrixBitEqual(const Matrix& a, const Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  EXPECT_EQ(std::memcmp(a.data(), b.data(), sizeof(double) * a.size()), 0);
}

// In-memory GraphBatchSource: gathers planned batches from a resident
// vector, exactly what PrefetchReader does for shards (data_test pins
// that equivalence; here it isolates the distributed streaming path).
class VectorBatchSource : public GraphBatchSource {
 public:
  explicit VectorBatchSource(std::vector<Graph> data)
      : data_(std::move(data)) {}

  int64_t num_graphs() const override {
    return static_cast<int64_t>(data_.size());
  }
  void BeginEpoch(const std::vector<std::vector<int>>& batches) override {
    plan_ = batches;
    next_ = 0;
  }
  bool NextBatch(std::vector<Graph>* graphs) override {
    if (next_ >= plan_.size()) return false;
    graphs->clear();
    for (int idx : plan_[next_]) graphs->push_back(data_[idx]);
    ++next_;
    return true;
  }

 private:
  std::vector<Graph> data_;
  std::vector<std::vector<int>> plan_;
  size_t next_ = 0;
};

// --- 1. Comm ring ---------------------------------------------------------

class CommBackendTest : public ::testing::TestWithParam<DistBackend> {};

TEST_P(CommBackendTest, BroadcastRelaysFromAnyRoot) {
  const int W = 4;
  // Big enough to overflow kernel socket buffers, so the socket
  // progress loops (not one lucky write) carry it.
  const int64_t n = 1 << 15;  // doubles
  for (int root = 0; root < W; ++root) {
    auto ring = MakeRing(GetParam(), W);
    std::vector<std::vector<double>> data(W, std::vector<double>(n, 0.0));
    for (int64_t i = 0; i < n; ++i) data[root][i] = 0.5 * i + root;
    const std::vector<double> expected = data[root];
    std::vector<CommStatus> status(W, CommStatus::kProtocol);
    std::vector<std::thread> ranks;
    for (int r = 0; r < W; ++r) {
      ranks.emplace_back([&, r] {
        status[r] = ring[r]->Broadcast(data[r].data(), n * 8, root);
      });
    }
    for (auto& t : ranks) t.join();
    for (int r = 0; r < W; ++r) {
      ASSERT_EQ(status[r], CommStatus::kOk) << "root " << root << " rank " << r;
      EXPECT_EQ(std::memcmp(data[r].data(), expected.data(), n * 8), 0)
          << "root " << root << " rank " << r;
    }
  }
}

TEST_P(CommBackendTest, BarrierWaitsForEveryRank) {
  const int W = 4;
  auto ring = MakeRing(GetParam(), W);
  std::atomic<int> entered{0};
  std::vector<CommStatus> status(W, CommStatus::kProtocol);
  std::vector<int> seen(W, -1);
  std::vector<std::thread> ranks;
  for (int r = 0; r < W; ++r) {
    ranks.emplace_back([&, r] {
      // Stagger entry so a broken barrier would release early.
      std::this_thread::sleep_for(std::chrono::milliseconds(10 * r));
      entered.fetch_add(1);
      status[r] = ring[r]->Barrier();
      seen[r] = entered.load();
    });
  }
  for (auto& t : ranks) t.join();
  for (int r = 0; r < W; ++r) {
    EXPECT_EQ(status[r], CommStatus::kOk);
    EXPECT_EQ(seen[r], W) << "rank " << r << " released before all entered";
  }
}

TEST_P(CommBackendTest, SilentPeerSurfacesTimeout) {
  auto ring = MakeRing(GetParam(), 2);
  ring[1]->set_timeout_millis(100);
  double x = 0.0;
  EXPECT_EQ(ring[1]->RecvPrev(&x, sizeof(x)), CommStatus::kTimeout);
}

INSTANTIATE_TEST_SUITE_P(Backends, CommBackendTest,
                         ::testing::Values(DistBackend::kThread,
                                           DistBackend::kSocket),
                         [](const auto& info) {
                           return std::string(BackendName(info.param));
                         });

TEST(CommTest, StatusNames) {
  EXPECT_STREQ(CommStatusName(CommStatus::kOk), "ok");
  EXPECT_STREQ(CommStatusName(CommStatus::kTimeout), "timeout");
  EXPECT_STREQ(CommStatusName(CommStatus::kPeerDead), "peer_dead");
  EXPECT_STREQ(CommStatusName(CommStatus::kProtocol), "protocol");
}

TEST(CommTest, ThreadSizeMismatchIsProtocolError) {
  auto ring = CreateThreadRing(2);
  const double payload = 1.0;
  // Mailbox sends never block, so this runs single-threaded.
  ASSERT_EQ(ring[0]->SendNext(&payload, 8), CommStatus::kOk);
  float wrong = 0.0f;
  EXPECT_EQ(ring[1]->RecvPrev(&wrong, 4), CommStatus::kProtocol);
}

TEST(CommTest, AbortUnblocksAPendingThreadReceive) {
  auto ring = CreateThreadRing(2);
  ring[1]->set_timeout_millis(30000);
  CommStatus status = CommStatus::kOk;
  std::thread receiver([&] {
    double x = 0.0;
    status = ring[1]->RecvPrev(&x, sizeof(x));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ring[0]->Abort();
  receiver.join();
  EXPECT_EQ(status, CommStatus::kPeerDead);
  // The ring stays dead: future operations fail fast.
  const double payload = 2.0;
  EXPECT_EQ(ring[0]->SendNext(&payload, 8), CommStatus::kPeerDead);
}

// --- 2. Ring all-reduce ---------------------------------------------------

// Reference: the fixed stride-doubling tree over per-rank inputs in
// absolute rank order — exactly the reduction RingAllReduceSum must
// realize regardless of transport, bucketing, or message timing.
std::vector<double> TreeReference(const std::vector<std::vector<double>>& in) {
  std::vector<std::vector<double>> copies = in;
  std::vector<double*> ptrs;
  for (auto& c : copies) ptrs.push_back(c.data());
  TreeReduceInPlace(ptrs.data(), static_cast<int>(copies.size()),
                    static_cast<int64_t>(copies[0].size()));
  return copies[0];
}

std::vector<std::vector<double>> RankInputs(int world, int64_t n) {
  std::vector<std::vector<double>> data(world, std::vector<double>(n));
  for (int r = 0; r < world; ++r) {
    Rng rng(100 + static_cast<uint64_t>(r));
    for (int64_t i = 0; i < n; ++i) {
      data[r][i] = rng.Normal() * (r + 1);
    }
  }
  return data;
}

void RunAllReduce(DistBackend backend, int world,
                  std::vector<std::vector<double>>* data,
                  int64_t bucket_bytes) {
  auto ring = MakeRing(backend, world);
  std::vector<CommStatus> status(world, CommStatus::kProtocol);
  std::vector<std::thread> ranks;
  for (int r = 0; r < world; ++r) {
    ranks.emplace_back([&, r] {
      status[r] = ring[r]->AllReduceSum(
          (*data)[r].data(), static_cast<int64_t>((*data)[r].size()),
          bucket_bytes);
    });
  }
  for (auto& t : ranks) t.join();
  for (int r = 0; r < world; ++r) {
    ASSERT_EQ(status[r], CommStatus::kOk) << "rank " << r;
  }
}

TEST_P(CommBackendTest, AllReduceMatchesFixedTreeReference) {
  // 1031 is prime, so no world size divides the chunk split evenly.
  const int64_t n = 1031;
  for (int world : {1, 2, 3, 4}) {
    const auto inputs = RankInputs(world, n);
    const std::vector<double> expected = TreeReference(inputs);
    auto data = inputs;
    RunAllReduce(GetParam(), world, &data, /*bucket_bytes=*/1 << 20);
    for (int r = 0; r < world; ++r) {
      EXPECT_EQ(std::memcmp(data[r].data(), expected.data(), n * 8), 0)
          << "world " << world << " rank " << r;
    }
  }
}

TEST_P(CommBackendTest, AllReduceBucketingDoesNotChangeBits) {
  const int64_t n = 1031;
  const int world = 4;
  const auto inputs = RankInputs(world, n);
  auto one_bucket = inputs;
  RunAllReduce(GetParam(), world, &one_bucket, /*bucket_bytes=*/1 << 20);
  // 8 bytes = one double per bucket; 248 = a ragged 31-double bucket.
  for (int64_t bucket : {int64_t{8}, int64_t{248}, int64_t{4096}}) {
    auto data = inputs;
    RunAllReduce(GetParam(), world, &data, bucket);
    for (int r = 0; r < world; ++r) {
      EXPECT_EQ(std::memcmp(data[r].data(), one_bucket[r].data(), n * 8), 0)
          << "bucket " << bucket << " rank " << r;
    }
  }
}

TEST(RingAllReduceTest, LargeExchangeSurvivesSocketBuffering) {
  // Per-step messages far beyond default socket buffers: only the
  // full-duplex SendRecv progress loop can complete this without
  // deadlocking on kernel buffering.
  const int64_t n = 1 << 16;
  const int world = 2;
  const auto inputs = RankInputs(world, n);
  const std::vector<double> expected = TreeReference(inputs);
  auto data = inputs;
  RunAllReduce(DistBackend::kSocket, world, &data, /*bucket_bytes=*/n * 8);
  for (int r = 0; r < world; ++r) {
    EXPECT_EQ(std::memcmp(data[r].data(), expected.data(), n * 8), 0);
  }
}

TEST(TreeReduceTest, AlignedSubBlocksCompose) {
  // tree(a0..a3) == tree(tree(a0,a1), tree(a2,a3)): rank-local
  // reductions over aligned slot blocks compose into the global tree
  // bit-for-bit — the property the trainer's W-invariance rests on.
  const int64_t n = 257;
  const auto inputs = RankInputs(4, n);
  const std::vector<double> full = TreeReference(inputs);
  std::vector<double> lo = TreeReference({inputs[0], inputs[1]});
  std::vector<double> hi = TreeReference({inputs[2], inputs[3]});
  const std::vector<double> composed = TreeReference({lo, hi});
  EXPECT_EQ(std::memcmp(full.data(), composed.data(), n * 8), 0);
}

TEST(TreeReduceTest, NonPowerOfTwoCountReducesInIndexOrder) {
  double a = 1.0, b = 2.0, c = 4.0;
  double* bufs[3] = {&a, &b, &c};
  TreeReduceInPlace(bufs, 3, 1);
  // stride 1 pairs (0,1); stride 2 pairs (0,2): (a + b) + c.
  EXPECT_EQ(a, (1.0 + 2.0) + 4.0);
}

// --- 3. Data-parallel training --------------------------------------------

TEST(DataParallelTest, MultiRankBitIdenticalToSingleProcessOverFiftySteps) {
  const std::vector<Graph> data = TestDataset();

  // Baseline: the no-comm single-rank path, 25 epochs x 2 windows = 50
  // optimizer steps, final state frozen into a checkpoint.
  DistOptions base = SmallOptions(/*epochs=*/25);
  base.world_size = 1;
  base.checkpoint_path = TestPath("dist_bitid_base.ckpt");
  auto base_model = MakeModel();
  DataParallelTrainer base_trainer(base);
  const DistResult ref = base_trainer.Run(*base_model, data, nullptr);
  ASSERT_EQ(ref.status, CommStatus::kOk);
  ASSERT_EQ(ref.steps_completed, 50);
  ASSERT_EQ(ref.step_losses.size(), 50u);
  const std::vector<unsigned char> ref_bytes = SlurpBytes(base.checkpoint_path);
  ASSERT_FALSE(ref_bytes.empty());

  struct Config {
    DistBackend backend;
    int world;
    int64_t bucket_bytes;  // 0 = default; 512 forces multiple buckets
  };
  const Config configs[] = {{DistBackend::kThread, 2, 0},
                            {DistBackend::kThread, 4, 0},
                            {DistBackend::kSocket, 2, 0},
                            {DistBackend::kSocket, 4, 512}};
  for (const Config& config : configs) {
    SCOPED_TRACE(std::string(BackendName(config.backend)) + " x" +
                 std::to_string(config.world));
    DistOptions opt = SmallOptions(/*epochs=*/25);
    opt.world_size = config.world;
    opt.bucket_bytes = config.bucket_bytes;
    opt.checkpoint_path = TestPath("dist_bitid_multi.ckpt");
    const std::vector<DistResult> results = RunDataParallelRanks(
        opt, config.backend, [](int) { return MakeModel(); }, data);
    ASSERT_EQ(results.size(), static_cast<size_t>(config.world));
    for (int r = 0; r < config.world; ++r) {
      ASSERT_EQ(results[r].status, CommStatus::kOk) << "rank " << r;
      EXPECT_EQ(results[r].steps_completed, 50) << "rank " << r;
      ExpectLossesBitEqual(results[r].step_losses, ref.step_losses);
    }
    // The final checkpoint freezes params + Adam moments + plan-Rng:
    // byte-identical files pin full bitwise state equality.
    EXPECT_EQ(SlurpBytes(opt.checkpoint_path), ref_bytes);
  }
}

TEST(DataParallelTest, AccumOneSingleRankReproducesTrainGraphSsl) {
  const std::vector<Graph> data = TestDataset();
  TrainOptions train;
  train.epochs = 6;
  train.batch_size = 16;  // 3 batches/epoch, one step each at A = 1
  train.lr = 0.02;
  train.seed = 6;

  auto classic_model = MakeModel();
  const std::vector<EpochStats> classic =
      TrainGraphSsl(*classic_model, data, train);

  DistOptions opt;
  opt.train = train;
  opt.world_size = 1;
  opt.micro_batches_per_step = 1;
  auto dist_model = MakeModel();
  DataParallelTrainer trainer(opt);
  const DistResult result = trainer.Run(*dist_model, data, nullptr);

  ASSERT_EQ(result.status, CommStatus::kOk);
  ASSERT_EQ(result.history.size(), classic.size());
  for (size_t e = 0; e < classic.size(); ++e) {
    EXPECT_EQ(result.history[e].loss, classic[e].loss) << "epoch " << e;
  }
  const auto& a = classic_model->parameters();
  const auto& b = dist_model->parameters();
  ASSERT_EQ(a.size(), b.size());
  for (size_t k = 0; k < a.size(); ++k) {
    ExpectMatrixBitEqual(a[k].value(), b[k].value());
  }
}

TEST(DataParallelTest, StreamedRanksBitIdenticalToInRam) {
  const std::vector<Graph> data = TestDataset();

  DistOptions opt = SmallOptions(/*epochs=*/6);  // 12 steps
  opt.world_size = 2;
  opt.checkpoint_path = TestPath("dist_stream_ram.ckpt");
  const std::vector<DistResult> in_ram = RunDataParallelRanks(
      opt, DistBackend::kThread, [](int) { return MakeModel(); }, data);
  ASSERT_EQ(in_ram[0].status, CommStatus::kOk);
  const std::vector<unsigned char> ram_bytes = SlurpBytes(opt.checkpoint_path);

  DistOptions streamed_opt = opt;
  streamed_opt.checkpoint_path = TestPath("dist_stream_src.ckpt");
  const std::vector<DistResult> streamed = RunDataParallelRanksStreamed(
      streamed_opt, DistBackend::kThread, [](int) { return MakeModel(); },
      [&](int) { return std::make_unique<VectorBatchSource>(data); });
  for (int r = 0; r < 2; ++r) {
    ASSERT_EQ(streamed[r].status, CommStatus::kOk) << "rank " << r;
    ExpectLossesBitEqual(streamed[r].step_losses, in_ram[r].step_losses);
  }
  EXPECT_EQ(SlurpBytes(streamed_opt.checkpoint_path), ram_bytes);
}

// The TSAN verify legs rerun this test with GRADGCL_DIST_RANKS in
// {2, 4} x GRADGCL_DIST_BACKEND in {thread, socket}; at any
// env-selected shape the trajectory must match the single-rank one.
TEST(DataParallelTest, EnvConfiguredWorldBitIdenticalToSingleRank) {
  const int world = ResolveDistRanks();
  const DistBackend backend = ResolveDistBackend();
  const std::vector<Graph> data = TestDataset();

  DistOptions base = SmallOptions(/*epochs=*/6);  // 12 steps
  base.world_size = 1;
  base.bucket_bytes = ResolveDistBucketBytes();
  auto base_model = MakeModel();
  DataParallelTrainer base_trainer(base);
  const DistResult ref = base_trainer.Run(*base_model, data, nullptr);
  ASSERT_EQ(ref.status, CommStatus::kOk);

  DistOptions opt = base;
  opt.world_size = world;
  const std::vector<DistResult> results =
      RunDataParallelRanks(opt, backend, [](int) { return MakeModel(); }, data);
  ASSERT_EQ(results.size(), static_cast<size_t>(world));
  for (int r = 0; r < world; ++r) {
    ASSERT_EQ(results[r].status, CommStatus::kOk)
        << BackendName(backend) << " rank " << r << " of " << world;
    ExpectLossesBitEqual(results[r].step_losses, ref.step_losses);
  }
}

TEST(DataParallelTest, EnvKnobsResolveAndRejectGarbage) {
  {
    EnvVarGuard g("GRADGCL_DIST_RANKS", nullptr);
    EXPECT_EQ(ResolveDistRanks(), 1);
  }
  for (const auto& [value, expected] :
       std::vector<std::pair<const char*, int>>{{"1", 1},
                                                {"4", 4},
                                                {"64", 64},
                                                {"3", 1},     // not a power of 2
                                                {"0", 1},
                                                {"128", 1},   // above the cap
                                                {"-2", 1},
                                                {"abc", 1},
                                                {"4x", 1}}) {
    EnvVarGuard g("GRADGCL_DIST_RANKS", value);
    EXPECT_EQ(ResolveDistRanks(), expected) << value;
  }
  {
    EnvVarGuard g("GRADGCL_DIST_BACKEND", nullptr);
    EXPECT_EQ(ResolveDistBackend(), DistBackend::kThread);
  }
  {
    EnvVarGuard g("GRADGCL_DIST_BACKEND", "socket");
    EXPECT_EQ(ResolveDistBackend(), DistBackend::kSocket);
  }
  {
    EnvVarGuard g("GRADGCL_DIST_BACKEND", "carrier-pigeon");
    EXPECT_EQ(ResolveDistBackend(), DistBackend::kThread);
  }
  {
    EnvVarGuard g("GRADGCL_DIST_BUCKET_BYTES", nullptr);
    EXPECT_EQ(ResolveDistBucketBytes(), int64_t{1} << 20);
  }
  {
    EnvVarGuard g("GRADGCL_DIST_BUCKET_BYTES", "4096");
    EXPECT_EQ(ResolveDistBucketBytes(), 4096);
  }
  for (const char* bad : {"4", "0", "-8", "lots"}) {
    EnvVarGuard g("GRADGCL_DIST_BUCKET_BYTES", bad);
    EXPECT_EQ(ResolveDistBucketBytes(), int64_t{1} << 20) << bad;
  }
}

// --- 4. Checkpoint/resume -------------------------------------------------

TrainCheckpoint SampleCheckpoint() {
  Rng rng(7);
  TrainCheckpoint ckpt;
  ckpt.global_step = 50;
  ckpt.epoch = 5;
  ckpt.window = 1;
  ckpt.adam_t = 50;
  // A stream with a cached Box-Muller normal exercises both rng words
  // and the cached-flag round-trip.
  Rng plan(9);
  plan.Normal();
  ckpt.plan_rng = plan.state();
  ckpt.accum = 4;
  ckpt.params = {Matrix::RandomNormal(3, 2, rng), Matrix::RandomNormal(1, 4, rng)};
  ckpt.adam_m = {Matrix::RandomNormal(3, 2, rng), Matrix::RandomNormal(1, 4, rng)};
  ckpt.adam_v = {Matrix::RandomNormal(3, 2, rng), Matrix::RandomNormal(1, 4, rng)};
  return ckpt;
}

TEST(CheckpointTest, RoundTripPreservesEveryField) {
  const std::string path = TestPath("ckpt_roundtrip.ckpt");
  const TrainCheckpoint saved = SampleCheckpoint();
  ASSERT_TRUE(SaveCheckpoint(path, saved));

  TrainCheckpoint loaded;
  ASSERT_TRUE(LoadCheckpoint(path, &loaded));
  EXPECT_EQ(loaded.global_step, saved.global_step);
  EXPECT_EQ(loaded.epoch, saved.epoch);
  EXPECT_EQ(loaded.window, saved.window);
  EXPECT_EQ(loaded.adam_t, saved.adam_t);
  EXPECT_EQ(loaded.accum, saved.accum);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(loaded.plan_rng.s[i], saved.plan_rng.s[i]);
  }
  EXPECT_EQ(loaded.plan_rng.has_cached_normal, saved.plan_rng.has_cached_normal);
  EXPECT_EQ(loaded.plan_rng.cached_normal, saved.plan_rng.cached_normal);
  ASSERT_EQ(loaded.params.size(), saved.params.size());
  for (size_t k = 0; k < saved.params.size(); ++k) {
    ExpectMatrixBitEqual(loaded.params[k], saved.params[k]);
    ExpectMatrixBitEqual(loaded.adam_m[k], saved.adam_m[k]);
    ExpectMatrixBitEqual(loaded.adam_v[k], saved.adam_v[k]);
  }
  // The restored stream must continue exactly where the saved one was.
  Rng a(9);
  a.Normal();
  Rng b(1);
  b.set_state(loaded.plan_rng);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(a.Normal(), b.Normal());
}

TEST(CheckpointTest, MissingAndUnwritablePathsFailCleanly) {
  TrainCheckpoint out;
  const std::string missing = TestPath("no_such.ckpt");
  const uint64_t before = HeapNewCalls();
  EXPECT_FALSE(LoadCheckpoint(missing, &out));
  EXPECT_EQ(HeapNewCalls() - before, 0u);
  EXPECT_FALSE(SaveCheckpoint("/nonexistent-dir/sub/x.ckpt",
                              SampleCheckpoint()));
}

TEST(CheckpointTest, CorruptionBatteryRejectsWithZeroAllocations) {
  const std::string path = TestPath("ckpt_corrupt.ckpt");
  ASSERT_TRUE(SaveCheckpoint(path, SampleCheckpoint()));
  const std::vector<unsigned char> valid = SlurpBytes(path);
  ASSERT_FALSE(valid.empty());

  // Control: the unpatched file loads.
  {
    TrainCheckpoint out;
    ASSERT_TRUE(LoadCheckpoint(path, &out));
    EXPECT_EQ(out.global_step, 50);
  }

  struct Case {
    const char* name;
    std::function<void(std::vector<unsigned char>*)> corrupt;
  };
  const std::vector<Case> battery = {
      {"bad-magic", [](auto* b) { Patch<char>(b, 0, 'X'); }},
      {"bad-version", [](auto* b) { Patch<uint32_t>(b, 4, 2); }},
      {"negative-global-step",
       [](auto* b) { Patch<int64_t>(b, 8, -1); }},
      {"negative-epoch", [](auto* b) { Patch<int64_t>(b, 16, -3); }},
      {"negative-window", [](auto* b) { Patch<int64_t>(b, 24, -1); }},
      {"adam-t-exceeds-step", [](auto* b) { Patch<int64_t>(b, 32, 51); }},
      {"all-zero-rng",
       [](auto* b) {
         for (size_t i = 40; i < 72; ++i) (*b)[i] = 0;
       }},
      {"bad-cached-flag", [](auto* b) { Patch<uint32_t>(b, 72, 2); }},
      {"reserved-nonzero", [](auto* b) { Patch<uint32_t>(b, 76, 7); }},
      {"zero-accum", [](auto* b) { Patch<int32_t>(b, 88, 0); }},
      {"negative-accum", [](auto* b) { Patch<int32_t>(b, 88, -4); }},
      {"huge-accum",
       [](auto* b) { Patch<int32_t>(b, 88, (1 << 20) + 1); }},
      {"negative-tensor-count", [](auto* b) { Patch<int32_t>(b, 92, -1); }},
      {"huge-tensor-count",
       [](auto* b) { Patch<int32_t>(b, 92, (1 << 20) + 1); }},
      {"lying-tensor-count", [](auto* b) { Patch<int32_t>(b, 92, 3); }},
      {"zero-rows", [](auto* b) { Patch<int32_t>(b, 96, 0); }},
      {"negative-cols", [](auto* b) { Patch<int32_t>(b, 100, -2); }},
      {"huge-shape",
       [](auto* b) { Patch<int32_t>(b, 96, (1 << 30) + 1); }},
      {"lying-shape", [](auto* b) { Patch<int32_t>(b, 96, 1000); }},
      {"truncated-tail", [](auto* b) { b->resize(b->size() - 1); }},
      {"truncated-to-header", [](auto* b) { b->resize(96); }},
      {"truncated-mid-header", [](auto* b) { b->resize(50); }},
      {"empty-file", [](auto* b) { b->clear(); }},
      {"trailing-garbage", [](auto* b) { b->resize(b->size() + 8, 0); }},
  };

  for (const Case& c : battery) {
    SCOPED_TRACE(c.name);
    std::vector<unsigned char> bytes = valid;
    c.corrupt(&bytes);
    WriteFileBytes(path, bytes);
    TrainCheckpoint out;
    const uint64_t before = HeapNewCalls();
    const bool ok = LoadCheckpoint(path, &out);
    const uint64_t allocations = HeapNewCalls() - before;
    EXPECT_FALSE(ok);
    EXPECT_EQ(allocations, 0u)
        << "rejection of " << c.name << " allocated memory";
  }

  // The battery must not have broken the loader for good files.
  WriteFileBytes(path, valid);
  TrainCheckpoint out;
  EXPECT_TRUE(LoadCheckpoint(path, &out));
}

TEST(DataParallelTest, ResumeMidEpochBitIdenticalToUninterrupted) {
  const std::vector<Graph> data = TestDataset();

  // 8 epochs x 2 windows = 16 steps; stopping at 7 lands mid-epoch 3.
  DistOptions full = SmallOptions(/*epochs=*/8);
  full.world_size = 1;
  full.checkpoint_path = TestPath("ckpt_uninterrupted.ckpt");
  auto full_model = MakeModel();
  DataParallelTrainer full_trainer(full);
  const DistResult uninterrupted = full_trainer.Run(*full_model, data, nullptr);
  ASSERT_EQ(uninterrupted.status, CommStatus::kOk);
  ASSERT_EQ(uninterrupted.steps_completed, 16);
  const std::vector<unsigned char> full_bytes =
      SlurpBytes(full.checkpoint_path);

  DistOptions stop = full;
  stop.checkpoint_path = TestPath("ckpt_resume.ckpt");
  stop.stop_at_step = 7;
  auto stop_model = MakeModel();
  DataParallelTrainer stop_trainer(stop);
  const DistResult first_leg = stop_trainer.Run(*stop_model, data, nullptr);
  ASSERT_EQ(first_leg.status, CommStatus::kOk);
  ASSERT_EQ(first_leg.steps_completed, 7);
  ASSERT_EQ(first_leg.step_losses.size(), 7u);

  DistOptions resume = stop;
  resume.stop_at_step = -1;
  resume.resume = true;
  auto resume_model = MakeModel(/*seed=*/999);  // overwritten by the load
  DataParallelTrainer resume_trainer(resume);
  const DistResult second_leg = resume_trainer.Run(*resume_model, data,
                                                   nullptr);
  ASSERT_EQ(second_leg.status, CommStatus::kOk);
  ASSERT_EQ(second_leg.steps_completed, 16);
  ASSERT_EQ(second_leg.step_losses.size(), 9u);

  std::vector<double> stitched = first_leg.step_losses;
  stitched.insert(stitched.end(), second_leg.step_losses.begin(),
                  second_leg.step_losses.end());
  ExpectLossesBitEqual(stitched, uninterrupted.step_losses);
  // Final checkpoint files byte-identical: params, moments, rng cursor
  // all converge to the uninterrupted run's state.
  EXPECT_EQ(SlurpBytes(resume.checkpoint_path), full_bytes);
}

TEST(DataParallelTest, ResumeAtDifferentWorldSizeBitIdentical) {
  const std::vector<Graph> data = TestDataset();

  DistOptions base = SmallOptions(/*epochs=*/8);  // 16 steps
  base.world_size = 1;
  base.checkpoint_path = TestPath("ckpt_w_base.ckpt");
  auto base_model = MakeModel();
  DataParallelTrainer base_trainer(base);
  const DistResult ref = base_trainer.Run(*base_model, data, nullptr);
  ASSERT_EQ(ref.status, CommStatus::kOk);
  const std::vector<unsigned char> ref_bytes = SlurpBytes(base.checkpoint_path);

  // First leg on 2 thread ranks, stopped at step 6 — an epoch
  // boundary, so the saved cursor points past the epoch's last window.
  DistOptions stop = SmallOptions(/*epochs=*/8);
  stop.world_size = 2;
  stop.checkpoint_path = TestPath("ckpt_w_switch.ckpt");
  stop.stop_at_step = 6;
  const std::vector<DistResult> leg1 = RunDataParallelRanks(
      stop, DistBackend::kThread, [](int) { return MakeModel(); }, data);
  for (const DistResult& r : leg1) {
    ASSERT_EQ(r.status, CommStatus::kOk);
    ASSERT_EQ(r.steps_completed, 6);
  }

  // Second leg resumes the same file on 4 socket ranks.
  DistOptions resume = stop;
  resume.world_size = 4;
  resume.stop_at_step = -1;
  resume.resume = true;
  const std::vector<DistResult> leg2 = RunDataParallelRanks(
      resume, DistBackend::kSocket, [](int) { return MakeModel(); }, data);
  for (const DistResult& r : leg2) {
    ASSERT_EQ(r.status, CommStatus::kOk);
    ASSERT_EQ(r.steps_completed, 16);
    std::vector<double> stitched = leg1[0].step_losses;
    stitched.insert(stitched.end(), r.step_losses.begin(),
                    r.step_losses.end());
    ExpectLossesBitEqual(stitched, ref.step_losses);
  }
  EXPECT_EQ(SlurpBytes(resume.checkpoint_path), ref_bytes);
}

// --- 5. Fault injection ---------------------------------------------------

TEST(FaultInjectionTest, AbortedRankSurfacesTypedErrorWithoutPartialUpdate) {
  const std::vector<Graph> data = TestDataset();
  const int W = 4;

  DistOptions opt = SmallOptions(/*epochs=*/1000000);  // ended by the abort
  opt.world_size = W;
  opt.timeout_millis = 2000;

  auto ring = CreateSocketRing(W);
  std::vector<std::unique_ptr<GraphCl>> models;
  for (int r = 0; r < W; ++r) models.push_back(MakeModel());
  std::vector<DistResult> results(W);
  std::vector<std::thread> ranks;
  for (int r = 0; r < W; ++r) {
    ranks.emplace_back([&, r] {
      DataParallelTrainer trainer(opt);
      results[static_cast<size_t>(r)] =
          trainer.Run(*models[static_cast<size_t>(r)], data, ring[r].get());
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  ring[2]->Abort();  // the victim dies mid-step
  for (auto& t : ranks) t.join();  // bounded by timeout_millis — no hang

  // Every rank (victim included) drains with a typed error, never a
  // fake success, and reports a loss entry per completed step only.
  for (int r = 0; r < W; ++r) {
    SCOPED_TRACE("rank " + std::to_string(r));
    const DistResult& res = results[static_cast<size_t>(r)];
    EXPECT_TRUE(res.status == CommStatus::kPeerDead ||
                res.status == CommStatus::kTimeout)
        << CommStatusName(res.status);
    EXPECT_EQ(res.step_losses.size(),
              static_cast<size_t>(res.steps_completed));
  }

  // No partial update: each rank's parameters are exactly a clean
  // single-rank run stopped after the same number of completed steps.
  std::map<int64_t, TrainCheckpoint> reference;
  for (int r = 0; r < W; ++r) {
    const int64_t steps = results[static_cast<size_t>(r)].steps_completed;
    if (steps == 0 || reference.count(steps) > 0) continue;
    DistOptions clean = SmallOptions(/*epochs=*/1000000);
    clean.world_size = 1;
    clean.stop_at_step = steps;
    clean.checkpoint_path = TestPath("ckpt_fault_ref.ckpt");
    auto clean_model = MakeModel();
    DataParallelTrainer clean_trainer(clean);
    const DistResult res = clean_trainer.Run(*clean_model, data, nullptr);
    ASSERT_EQ(res.status, CommStatus::kOk);
    ASSERT_EQ(res.steps_completed, steps);
    TrainCheckpoint ckpt;
    ASSERT_TRUE(LoadCheckpoint(clean.checkpoint_path, &ckpt));
    reference.emplace(steps, std::move(ckpt));
  }
  const auto initial = MakeModel();  // zero completed steps: untouched init
  for (int r = 0; r < W; ++r) {
    SCOPED_TRACE("rank " + std::to_string(r));
    const int64_t steps = results[static_cast<size_t>(r)].steps_completed;
    const auto& params = models[static_cast<size_t>(r)]->parameters();
    if (steps == 0) {
      const auto& init_params = initial->parameters();
      for (size_t k = 0; k < params.size(); ++k) {
        ExpectMatrixBitEqual(params[k].value(), init_params[k].value());
      }
      continue;
    }
    const TrainCheckpoint& ckpt = reference.at(steps);
    ASSERT_EQ(ckpt.params.size(), params.size());
    for (size_t k = 0; k < params.size(); ++k) {
      ExpectMatrixBitEqual(params[k].value(), ckpt.params[k]);
    }
  }
}

// --- Cross-process socket ranks -------------------------------------------

TEST(SocketProcessTest, ForkedTwoProcessTrainingMatchesSingleProcess) {
#ifdef GRADGCL_TEST_UNDER_SANITIZER
  GTEST_SKIP() << "fork()ed ranks are exercised outside sanitizer builds";
#else
  const std::vector<Graph> data = TestDataset();
  DistOptions opt = SmallOptions(/*epochs=*/4);  // 8 steps
  opt.world_size = 2;

  auto ring = CreateSocketRing(2);
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Rank 1 in the child. Drop the descriptors of the rank this
    // process does not run so peer death would surface as EOF.
    ring[0]->CloseEndpoints();
    auto model = MakeModel();
    DataParallelTrainer trainer(opt);
    const DistResult res = trainer.Run(*model, data, ring[1].get());
    ::_exit(res.status == CommStatus::kOk ? 0 : 2);
  }
  ring[1]->CloseEndpoints();
  auto model = MakeModel();
  DataParallelTrainer trainer(opt);
  const DistResult mine = trainer.Run(*model, data, ring[0].get());
  int wstatus = 0;
  ASSERT_EQ(::waitpid(child, &wstatus, 0), child);
  EXPECT_TRUE(WIFEXITED(wstatus));
  EXPECT_EQ(WEXITSTATUS(wstatus), 0);
  ASSERT_EQ(mine.status, CommStatus::kOk);

  DistOptions base = opt;
  base.world_size = 1;
  auto base_model = MakeModel();
  DataParallelTrainer base_trainer(base);
  const DistResult ref = base_trainer.Run(*base_model, data, nullptr);
  ExpectLossesBitEqual(mine.step_losses, ref.step_losses);
  const auto& a = model->parameters();
  const auto& b = base_model->parameters();
  for (size_t k = 0; k < a.size(); ++k) {
    ExpectMatrixBitEqual(a[k].value(), b[k].value());
  }
#endif
}

}  // namespace
}  // namespace dist
}  // namespace gradgcl
