// Command-line experiment runner — the library's "one binary to try
// everything". Runs one pre-train + probe pipeline from flags:
//
//   gradgcl_cli --task=graph    --dataset=MUTAG  --backbone=graphcl \
//               --weight=0.5    --epochs=15      --seed=1
//   gradgcl_cli --task=node     --dataset=Cora   --backbone=grace
//   gradgcl_cli --task=transfer --dataset=BBBP   --backbone=simgrace
//   gradgcl_cli --save=encoder.ggcl / --load=encoder.ggcl
//
// Flags: --task (graph|node|transfer), --dataset (profile / task name),
// --backbone (graphcl|joao|simgrace|infograph|mvgrl|grace|gca|bgrl|
// costa|sgcl), --weight (GradGCL a in [0,1]), --epochs, --seed,
// --save/--load (encoder state file).

#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>

#include "datasets/molecule_universe.h"
#include "datasets/node_synthetic.h"
#include "datasets/tu_synthetic.h"
#include "eval/cross_validation.h"
#include "models/bgrl.h"
#include "models/costa.h"
#include "models/gca.h"
#include "models/grace.h"
#include "models/graphcl.h"
#include "models/infograph.h"
#include "models/joao.h"
#include "models/mvgrl.h"
#include "models/sgcl.h"
#include "models/simgrace.h"
#include "nn/serialize.h"

namespace {

using namespace gradgcl;

std::map<std::string, std::string> ParseFlags(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      flags[arg.substr(2)] = "1";
    } else {
      flags[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    }
  }
  return flags;
}

std::string FlagOr(const std::map<std::string, std::string>& flags,
                   const std::string& key, const std::string& fallback) {
  auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

EncoderConfig MakeEncoder(int in_dim, EncoderKind kind) {
  EncoderConfig config;
  config.kind = kind;
  config.in_dim = in_dim;
  config.hidden_dim = 32;
  config.out_dim = 32;
  return config;
}

std::unique_ptr<GraphSslModel> MakeGraphBackbone(const std::string& name,
                                                 int in_dim, double weight,
                                                 Rng& rng) {
  if (name == "graphcl") {
    GraphClConfig c;
    c.encoder = MakeEncoder(in_dim, EncoderKind::kGin);
    c.grad_gcl.weight = weight;
    return std::make_unique<GraphCl>(c, rng);
  }
  if (name == "joao") {
    JoaoConfig c;
    c.graphcl.encoder = MakeEncoder(in_dim, EncoderKind::kGin);
    c.graphcl.grad_gcl.weight = weight;
    return std::make_unique<Joao>(c, rng);
  }
  if (name == "simgrace") {
    SimGraceConfig c;
    c.encoder = MakeEncoder(in_dim, EncoderKind::kGin);
    c.grad_gcl.weight = weight;
    return std::make_unique<SimGrace>(c, rng);
  }
  if (name == "infograph") {
    InfoGraphConfig c;
    c.encoder = MakeEncoder(in_dim, EncoderKind::kGin);
    c.grad_gcl.weight = weight;
    return std::make_unique<InfoGraphModel>(c, rng);
  }
  if (name == "mvgrl") {
    MvgrlConfig c;
    c.encoder = MakeEncoder(in_dim, EncoderKind::kGin);
    c.grad_gcl.loss = LossKind::kJsd;
    c.grad_gcl.weight = weight;
    return std::make_unique<MvgrlGraph>(c, rng);
  }
  return nullptr;
}

std::unique_ptr<NodeSslModel> MakeNodeBackbone(const std::string& name,
                                               int in_dim, double weight,
                                               Rng& rng) {
  if (name == "grace") {
    GraceConfig c;
    c.encoder = MakeEncoder(in_dim, EncoderKind::kGcn);
    c.grad_gcl.weight = weight;
    return std::make_unique<Grace>(c, rng);
  }
  if (name == "gca") {
    GraceConfig c;
    c.encoder = MakeEncoder(in_dim, EncoderKind::kGcn);
    c.grad_gcl.weight = weight;
    return std::make_unique<Gca>(c, rng);
  }
  if (name == "bgrl") {
    BgrlConfig c;
    c.encoder = MakeEncoder(in_dim, EncoderKind::kGcn);
    c.grad_gcl.weight = weight;
    return std::make_unique<Bgrl>(c, rng);
  }
  if (name == "costa") {
    CostaConfig c;
    c.encoder = MakeEncoder(in_dim, EncoderKind::kGcn);
    c.grad_gcl.weight = weight;
    return std::make_unique<Costa>(c, rng);
  }
  if (name == "sgcl") {
    SgclConfig c;
    c.encoder = MakeEncoder(in_dim, EncoderKind::kGcn);
    c.grad_gcl.weight = weight;
    return std::make_unique<Sgcl>(c, rng);
  }
  if (name == "mvgrl") {
    MvgrlConfig c;
    c.encoder = MakeEncoder(in_dim, EncoderKind::kGcn);
    c.grad_gcl.loss = LossKind::kJsd;
    c.grad_gcl.weight = weight;
    return std::make_unique<MvgrlNode>(c, rng);
  }
  return nullptr;
}

int RunGraphTask(const std::map<std::string, std::string>& flags) {
  const std::string dataset_name = FlagOr(flags, "dataset", "MUTAG");
  const std::string backbone = FlagOr(flags, "backbone", "graphcl");
  const double weight = std::stod(FlagOr(flags, "weight", "0.5"));
  const int epochs = std::stoi(FlagOr(flags, "epochs", "15"));
  const uint64_t seed = std::stoull(FlagOr(flags, "seed", "1"));

  const TuProfile profile = TuProfileByName(dataset_name);
  const std::vector<Graph> data = GenerateTuDataset(profile, seed);
  Rng rng(seed + 1);
  auto model =
      MakeGraphBackbone(backbone, profile.feature_dim, weight, rng);
  if (!model) {
    std::fprintf(stderr, "unknown graph backbone '%s'\n", backbone.c_str());
    return 1;
  }
  const std::string load = FlagOr(flags, "load", "");
  if (!load.empty() && !LoadModule(load, *model)) {
    std::fprintf(stderr, "failed to load '%s'\n", load.c_str());
    return 1;
  }

  TrainOptions options;
  options.epochs = epochs;
  options.seed = seed + 2;
  TrainGraphSsl(*model, data, options, [](const EpochStats& s) {
    std::printf("epoch %3d  loss %.4f  (%.2fs)\n", s.epoch, s.loss,
                s.seconds);
  });

  std::vector<int> labels;
  for (const Graph& g : data) labels.push_back(g.label);
  const ScoreSummary result = CrossValidateAccuracy(
      model->EmbedGraphs(data), labels, profile.num_classes, 10, {},
      seed + 3);
  std::printf("%s%s on %s: 10-fold SVM accuracy %.2f%% +- %.2f\n",
              backbone.c_str(), weight == 0 ? "" : "(gradgcl)",
              dataset_name.c_str(), 100 * result.mean, 100 * result.stddev);

  const std::string save = FlagOr(flags, "save", "");
  if (!save.empty()) {
    if (!SaveModule(save, *model)) {
      std::fprintf(stderr, "failed to save '%s'\n", save.c_str());
      return 1;
    }
    std::printf("saved encoder state to %s\n", save.c_str());
  }
  return 0;
}

int RunNodeTask(const std::map<std::string, std::string>& flags) {
  const std::string dataset_name = FlagOr(flags, "dataset", "Cora");
  const std::string backbone = FlagOr(flags, "backbone", "grace");
  const double weight = std::stod(FlagOr(flags, "weight", "0.3"));
  const int epochs = std::stoi(FlagOr(flags, "epochs", "30"));
  const uint64_t seed = std::stoull(FlagOr(flags, "seed", "1"));

  const NodeDataset data =
      GenerateNodeDataset(NodeProfileByName(dataset_name), seed);
  Rng rng(seed + 1);
  auto model =
      MakeNodeBackbone(backbone, data.graph.feature_dim(), weight, rng);
  if (!model) {
    std::fprintf(stderr, "unknown node backbone '%s'\n", backbone.c_str());
    return 1;
  }

  TrainOptions options;
  options.epochs = epochs;
  options.seed = seed + 2;
  TrainNodeSsl(*model, data, options);

  const Matrix emb = model->EmbedNodes(data);
  std::vector<int> train_y, test_y;
  for (int i : data.train_idx) train_y.push_back(data.labels[i]);
  for (int i : data.test_idx) test_y.push_back(data.labels[i]);
  ProbeOptions probe;
  probe.kind = ProbeKind::kLogistic;
  LinearProbe head = LinearProbe::Fit(emb.Gather(data.train_idx), train_y,
                                      data.num_classes, probe);
  const std::vector<int> pred = head.Predict(emb.Gather(data.test_idx));
  std::printf("%s on %s: test accuracy %.2f%%, macro-F1 %.3f\n",
              backbone.c_str(), dataset_name.c_str(),
              100 * Accuracy(pred, test_y),
              MacroF1(pred, test_y, data.num_classes));
  return 0;
}

int RunTransferTask(const std::map<std::string, std::string>& flags) {
  const std::string task_name = FlagOr(flags, "dataset", "BBBP");
  const std::string backbone = FlagOr(flags, "backbone", "simgrace");
  const double weight = std::stod(FlagOr(flags, "weight", "0.5"));
  const int epochs = std::stoi(FlagOr(flags, "epochs", "10"));
  const uint64_t seed = std::stoull(FlagOr(flags, "seed", "1"));

  const PretrainKind kind =
      task_name == "PPI" ? PretrainKind::kPpi : PretrainKind::kZinc;
  const std::vector<Graph> corpus = GeneratePretrainSet(kind, 300, seed);
  Rng rng(seed + 1);
  auto model = MakeGraphBackbone(backbone, kNumAtomTypes, weight, rng);
  if (!model) {
    std::fprintf(stderr, "unknown backbone '%s'\n", backbone.c_str());
    return 1;
  }
  TrainOptions options;
  options.epochs = epochs;
  options.seed = seed + 2;
  TrainGraphSsl(*model, corpus, options);

  const TransferTask task = GenerateTransferTask(task_name, 200, seed + 3);
  const Matrix emb = model->EmbedGraphs(task.graphs);
  std::vector<int> train_idx, test_idx, train_y, test_y;
  for (size_t i = 0; i < task.graphs.size(); ++i) {
    if (i % 2 == 0) {
      train_idx.push_back(static_cast<int>(i));
      train_y.push_back(task.graphs[i].label);
    } else {
      test_idx.push_back(static_cast<int>(i));
      test_y.push_back(task.graphs[i].label);
    }
  }
  ProbeOptions probe;
  probe.kind = ProbeKind::kLogistic;
  LinearProbe head =
      LinearProbe::Fit(emb.Gather(train_idx), train_y, 2, probe);
  const Matrix scores = head.Scores(emb.Gather(test_idx));
  std::vector<double> pos;
  for (int i = 0; i < scores.rows(); ++i) {
    pos.push_back(scores(i, 1) - scores(i, 0));
  }
  std::printf("%s pretrain -> %s: ROC-AUC %.3f\n", backbone.c_str(),
              task_name.c_str(), RocAuc(pos, test_y));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags = ParseFlags(argc, argv);
  const std::string task = FlagOr(flags, "task", "graph");
  if (task == "graph") return RunGraphTask(flags);
  if (task == "node") return RunNodeTask(flags);
  if (task == "transfer") return RunTransferTask(flags);
  std::fprintf(stderr,
               "usage: gradgcl_cli --task=graph|node|transfer "
               "[--dataset=..] [--backbone=..] [--weight=..] "
               "[--epochs=..] [--seed=..] [--save=..] [--load=..]\n");
  return 1;
}
