// Transfer learning example: pre-train a SimGRACE encoder on the
// unlabeled ZINC-like molecule universe, then evaluate the frozen
// embeddings on a downstream property-prediction task with ROC-AUC —
// the workflow of the paper's Table VI at example scale.

#include <cstdio>

#include "datasets/molecule_universe.h"
#include "eval/probes.h"
#include "models/simgrace.h"

int main() {
  using namespace gradgcl;

  // 1. Unlabeled pre-training corpus (ZINC-like molecules).
  const std::vector<Graph> pretrain =
      GeneratePretrainSet(PretrainKind::kZinc, /*num_graphs=*/300, /*seed=*/11);
  std::printf("pretrain corpus: %zu molecule-like graphs\n", pretrain.size());

  // 2. SimGRACE(f+g): encoder-perturbation views + gradient contrast.
  SimGraceConfig config;
  config.encoder.in_dim = kNumAtomTypes;
  config.grad_gcl.weight = 0.4;

  Rng rng(3);
  SimGrace model(config, rng);

  TrainOptions options;
  options.epochs = 10;
  options.batch_size = 64;
  options.lr = 0.01;
  TrainGraphSsl(model, pretrain, options, [](const EpochStats& stats) {
    std::printf("  pretrain epoch %2d  loss %.4f\n", stats.epoch, stats.loss);
  });

  // 3. Downstream fine-tuning task: BBBP-like binary property.
  const TransferTask task =
      GenerateTransferTask("BBBP", /*num_graphs=*/200, /*seed=*/21);
  const Matrix embeddings = model.EmbedGraphs(task.graphs);

  // Train/test split + logistic probe (the "fine-tune" head).
  const int n = static_cast<int>(task.graphs.size());
  const int n_train = n / 2;
  std::vector<int> train_idx, test_idx;
  for (int i = 0; i < n; ++i) {
    (i < n_train ? train_idx : test_idx).push_back(i);
  }
  std::vector<int> train_y, test_y;
  for (int i : train_idx) train_y.push_back(task.graphs[i].label);
  for (int i : test_idx) test_y.push_back(task.graphs[i].label);

  ProbeOptions probe;
  probe.kind = ProbeKind::kLogistic;
  LinearProbe head = LinearProbe::Fit(embeddings.Gather(train_idx), train_y,
                                      /*num_classes=*/2, probe);

  const Matrix scores = head.Scores(embeddings.Gather(test_idx));
  std::vector<double> pos_scores;
  for (int i = 0; i < scores.rows(); ++i) {
    pos_scores.push_back(scores(i, 1) - scores(i, 0));
  }
  std::printf("downstream %s ROC-AUC: %.3f\n", task.name.c_str(),
              RocAuc(pos_scores, test_y));
  return 0;
}
