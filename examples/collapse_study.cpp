// Dimensional-collapse study: train SimGRACE on IMDB-B-style data at
// gradient weights a ∈ {0, 0.5, 1} and watch the covariance spectrum
// and effective rank respond — the phenomenon of the paper's Figs. 1
// and 5 as a runnable example.

#include <cstdio>

#include "datasets/tu_synthetic.h"
#include "eval/spectrum.h"
#include "models/simgrace.h"

int main() {
  using namespace gradgcl;

  const TuProfile profile = TuProfileByName("IMDB-B");
  const std::vector<Graph> graphs = GenerateTuDataset(profile, /*seed=*/9);
  std::printf("dataset: %s — %zu graphs\n\n", profile.name.c_str(),
              graphs.size());

  for (double weight : {0.0, 0.5, 1.0}) {
    SimGraceConfig config;
    config.encoder.in_dim = profile.feature_dim;
    config.encoder.out_dim = 48;  // wide enough for collapse to show
    config.grad_gcl.weight = weight;

    Rng rng(31);
    SimGrace model(config, rng);

    TrainOptions options;
    options.epochs = 12;
    options.batch_size = 64;
    options.lr = 0.01;
    TrainGraphSsl(model, graphs, options);

    const SpectrumReport report = AnalyzeSpectrum(model.EmbedGraphs(graphs));
    std::printf("gradient weight a = %.1f\n", weight);
    std::printf("  effective rank: %.2f of %zu dims\n", report.effective_rank,
                report.singular_values.size());
    std::printf("  surviving dims (sigma >= 1e-6 * max): %d\n",
                report.surviving_dims);
    std::printf("  top-8 log10 spectrum:");
    for (size_t i = 0; i < 8 && i < report.log10_values.size(); ++i) {
      std::printf(" %.2f", report.log10_values[i]);
    }
    std::printf("\n\n");
  }
  std::printf(
      "Expectation (paper Fig. 5): larger a postpones the singular-value "
      "drop — higher effective rank, fewer collapsed dimensions.\n");
  return 0;
}
