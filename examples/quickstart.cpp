// Quickstart: train GraphCL with the GradGCL plug-in on a synthetic
// MUTAG-style dataset and evaluate the frozen embeddings with a
// 10-fold SVM probe — the library's end-to-end "hello world".
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "datasets/tu_synthetic.h"
#include "eval/cross_validation.h"
#include "models/graphcl.h"

int main() {
  using namespace gradgcl;

  // 1. Data: the MUTAG profile (188 graphs, 2 classes, ~18 nodes).
  const TuProfile profile = TuProfileByName("MUTAG");
  const std::vector<Graph> graphs = GenerateTuDataset(profile, /*seed=*/42);
  std::printf("dataset: %s — %zu graphs, %d classes\n", profile.name.c_str(),
              graphs.size(), profile.num_classes);

  // 2. Model: GraphCL backbone + GradGCL at weight a = 0.5 (the
  //    paper's "GraphCL(f+g)").
  GraphClConfig config;
  config.encoder.in_dim = profile.feature_dim;
  config.encoder.hidden_dim = 32;
  config.encoder.out_dim = 32;
  config.grad_gcl.weight = 0.5;
  config.grad_gcl.tau = 0.5;

  Rng rng(7);
  GraphCl model(config, rng);
  std::printf("model: GraphCL(f+g), %d parameters\n",
              model.NumScalarParameters());

  // 3. Self-supervised pre-training.
  TrainOptions options;
  options.epochs = 15;
  options.batch_size = 64;
  options.lr = 0.01;
  options.seed = 1;
  TrainGraphSsl(model, graphs, options, [](const EpochStats& stats) {
    std::printf("  epoch %2d  loss %.4f  (%.2fs)\n", stats.epoch, stats.loss,
                stats.seconds);
  });

  // 4. Downstream evaluation: frozen embeddings + 10-fold SVM.
  const Matrix embeddings = model.EmbedGraphs(graphs);
  std::vector<int> labels;
  labels.reserve(graphs.size());
  for (const Graph& g : graphs) labels.push_back(g.label);

  ProbeOptions probe;
  probe.kind = ProbeKind::kLinearSvm;
  const ScoreSummary result = CrossValidateAccuracy(
      embeddings, labels, profile.num_classes, /*folds=*/10, probe,
      /*seed=*/5);
  std::printf("10-fold SVM accuracy: %.2f%% ± %.2f\n", 100.0 * result.mean,
              100.0 * result.stddev);
  return 0;
}
