// Node-classification example: GRACE with the GradGCL plug-in on a
// Cora-style citation graph, evaluated with the standard linear-probe
// protocol (the paper's Table VII setting at example scale).

#include <cstdio>

#include "datasets/node_synthetic.h"
#include "eval/probes.h"
#include "models/grace.h"

int main() {
  using namespace gradgcl;

  // 1. Cora-like SBM graph with class-correlated features.
  const NodeProfile profile = NodeProfileByName("Cora");
  const NodeDataset dataset = GenerateNodeDataset(profile, /*seed=*/17);
  std::printf("dataset: %s — %d nodes, %d classes, %d edges\n",
              dataset.name.c_str(), dataset.graph.num_nodes,
              dataset.num_classes, dataset.graph.num_edges());

  // 2. GRACE(f+g): GCN encoder, two augmented graph views, node-level
  //    InfoNCE + gradient contrast.
  GraceConfig config;
  config.encoder.kind = EncoderKind::kGcn;
  config.encoder.in_dim = profile.feature_dim;
  config.grad_gcl.weight = 0.3;

  Rng rng(23);
  Grace model(config, rng);

  TrainOptions options;
  options.epochs = 40;
  options.lr = 0.01;
  TrainNodeSsl(model, dataset, options, [](const EpochStats& stats) {
    if (stats.epoch % 10 == 0) {
      std::printf("  epoch %2d  loss %.4f\n", stats.epoch, stats.loss);
    }
  });

  // 3. Linear probe on the canonical train mask, accuracy on test.
  const Matrix embeddings = model.EmbedNodes(dataset);
  std::vector<int> train_y, test_y;
  for (int i : dataset.train_idx) train_y.push_back(dataset.labels[i]);
  for (int i : dataset.test_idx) test_y.push_back(dataset.labels[i]);

  ProbeOptions probe;
  probe.kind = ProbeKind::kLogistic;
  LinearProbe head =
      LinearProbe::Fit(embeddings.Gather(dataset.train_idx), train_y,
                       dataset.num_classes, probe);
  const double acc =
      Accuracy(head.Predict(embeddings.Gather(dataset.test_idx)), test_y);
  std::printf("test accuracy: %.2f%%\n", 100.0 * acc);
  return 0;
}
