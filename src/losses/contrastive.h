// Contrastive losses over paired two-view embeddings.
//
// All functions take u, v of identical shape n x d, where row i of u
// and row i of v are the two views of sample i (positives) and all
// other rows act as negatives, and return a differentiable 1x1 loss.
//
//  * InfoNce          — the paper's Eq. 4 (cosine similarity, temperature).
//  * InfoNceEuclidean — the paper's Eq. 20 (Lemma-2 analysis variant).
//  * JsdLoss          — Jensen–Shannon MI estimator (InfoGraph, MVGRL).
//  * SceLoss          — scaled cosine error (GraphMAE; generative, used
//                       by the Fig. 11 ablation to show where gradient
//                       contrast does NOT help).
//  * BootstrapLoss    — BGRL/SGCL's negative-free cosine loss.
//  * AlignmentLoss    — plain alignment regulariser (Fig. 12(b) ablation).

#ifndef GRADGCL_LOSSES_CONTRASTIVE_H_
#define GRADGCL_LOSSES_CONTRASTIVE_H_

#include "autograd/ops.h"

namespace gradgcl {

// Loss family tag, used by GradGCL to build the matching gradient
// features and by the Fig. 11 loss-type ablation.
enum class LossKind { kInfoNce, kJsd, kSce };

// InfoNCE / NT-Xent with cosine similarity (paper Eq. 4), averaged
// over both directions (u against v-negatives and vice versa). The
// denominator ranges over the other samples' opposite-view embeddings
// (n' != n), as in the paper.
Variable InfoNce(const Variable& u, const Variable& v, double tau = 0.5);

// InfoNCE with Gaussian / Euclidean similarity (paper Eq. 20):
//   -Σ_i log [ exp(-|u_i-v_i|²/2) /
//              (Σ_{j≠i} exp(-|u_i-u_j|²/2) + exp(-|u_i-v_i|²/2)) ] / n.
// Negatives are within-view, matching the Lemma-2 setting.
Variable InfoNceEuclidean(const Variable& u, const Variable& v);

// Jensen–Shannon MI lower-bound estimator with a dot-product critic:
//   E_pos[softplus(-s_ii)] + E_neg[softplus(s_ij)].
Variable JsdLoss(const Variable& u, const Variable& v);

// Scaled cosine error (1 - cos(u_i, v_i))^gamma, mean over rows.
Variable SceLoss(const Variable& u, const Variable& v, double gamma = 2.0);

// Bootstrap (BYOL-style) loss: 2 - 2 cos(u_i, v_i), mean over rows.
// Callers detach the target view.
Variable BootstrapLoss(const Variable& online, const Variable& target);

// Alignment regulariser: mean |û_i - v̂_i|² on L2-normalised rows.
Variable AlignmentLoss(const Variable& u, const Variable& v);

// Dispatches on `kind` (SCE and JSD ignore tau).
Variable ContrastiveLoss(LossKind kind, const Variable& u, const Variable& v,
                         double tau = 0.5);

// Numerically stable softplus log(1 + e^x), elementwise. Exposed for
// models that build JSD losses with non-diagonal positive structure
// (InfoGraph, MVGRL local-global contrast).
Variable Softplus(const Variable& x);

// JSD local-global loss with an explicit positive mask: scores is the
// full critic matrix (e.g. nodes x graphs dot products), pos_mask is a
// 0/1 matrix marking positive pairs; everything else is a negative.
Variable JsdLossMasked(const Variable& scores, const Matrix& pos_mask);

}  // namespace gradgcl

#endif  // GRADGCL_LOSSES_CONTRASTIVE_H_
