#include "losses/contrastive.h"

#include "tensor/pool.h"

namespace gradgcl {

namespace {

// Off-diagonal 0/1 mask of size n x n.
Matrix OffDiagonalMask(int n) {
  Matrix mask(n, n, 1.0);
  for (int i = 0; i < n; ++i) mask(i, i) = 0.0;
  return mask;
}

// One direction of InfoNce: anchors `a` against candidates `b`
// (positives on the diagonal, negatives off-diagonal). The fused path
// (default) collapses the Gram/scale and masked log-sum-exp chains;
// both paths are bit-identical.
Variable InfoNceDirected(const Variable& a, const Variable& b, double tau) {
  const int n = a.rows();
  Variable an = ag::RowNormalize(a);
  Variable bn = ag::RowNormalize(b);
  if (FusedKernelsEnabled()) {
    Variable sim = ag::MatMulTransBScaled(an, bn, 1.0 / tau);
    Variable pos = ag::ScalarMul(ag::RowPairDot(an, bn), 1.0 / tau);
    Variable denom = ag::LogSumExpOffDiag(sim);                     // n x 1
    return ag::Mean(ag::Sub(denom, pos));
  }
  Variable sim = ag::ScalarMul(ag::MatMulTransB(an, bn), 1.0 / tau);
  Variable pos = ag::ScalarMul(ag::RowPairDot(an, bn), 1.0 / tau);  // n x 1
  Variable denom = ag::LogSumExpRows(sim, OffDiagonalMask(n));      // n x 1
  return ag::Mean(ag::Sub(denom, pos));
}

}  // namespace

// softplus(x) = log(1 + e^x), built from stable primitives:
// softplus(x) = max(x, 0) + log(1 + exp(-|x|)), with |x| = relu(x) +
// relu(-x).
Variable Softplus(const Variable& x) {
  Variable absx = ag::Add(ag::Relu(x), ag::Relu(ag::Neg(x)));
  Variable tail = ag::LogEps(ag::ScalarAdd(ag::Exp(ag::Neg(absx)), 1.0), 0.0);
  return ag::Add(ag::Relu(x), tail);
}

Variable JsdLossMasked(const Variable& scores, const Matrix& pos_mask) {
  GRADGCL_CHECK(scores.rows() == pos_mask.rows() &&
                scores.cols() == pos_mask.cols());
  double num_pos = 0.0;
  for (int i = 0; i < pos_mask.size(); ++i) {
    const double m = pos_mask.at_flat(i);
    GRADGCL_CHECK_MSG(m == 0.0 || m == 1.0, "pos_mask must be 0/1");
    num_pos += m;
  }
  const double num_neg = pos_mask.size() - num_pos;
  GRADGCL_CHECK_MSG(num_pos > 0.0 && num_neg > 0.0,
                    "JsdLossMasked needs both positives and negatives");
  Matrix neg_mask(pos_mask.rows(), pos_mask.cols(), 1.0);
  neg_mask -= pos_mask;
  // E_pos[softplus(-s)] + E_neg[softplus(s)].
  Variable pos_term = ag::ScalarMul(
      ag::Sum(ag::Hadamard(Softplus(ag::Neg(scores)), Variable(pos_mask))),
      1.0 / num_pos);
  Variable neg_term = ag::ScalarMul(
      ag::Sum(ag::Hadamard(Softplus(scores), Variable(neg_mask))),
      1.0 / num_neg);
  return ag::Add(pos_term, neg_term);
}

Variable InfoNce(const Variable& u, const Variable& v, double tau) {
  GRADGCL_CHECK(u.rows() == v.rows() && u.cols() == v.cols());
  GRADGCL_CHECK_MSG(u.rows() >= 2, "InfoNce needs >= 2 samples for negatives");
  GRADGCL_CHECK(tau > 0.0);
  Variable forward = InfoNceDirected(u, v, tau);
  Variable backward = InfoNceDirected(v, u, tau);
  return ag::ScalarMul(ag::Add(forward, backward), 0.5);
}

Variable InfoNceEuclidean(const Variable& u, const Variable& v) {
  GRADGCL_CHECK(u.rows() == v.rows() && u.cols() == v.cols());
  const int n = u.rows();
  GRADGCL_CHECK_MSG(n >= 2, "InfoNceEuclidean needs >= 2 samples");
  // Logits: within-view negatives -|u_i - u_j|^2 / 2 for j != i, and the
  // positive -|u_i - v_i|^2 / 2 appended as an extra column.
  Variable neg_logits =
      ag::ScalarMul(ag::PairwiseSquaredDistances(u, u), -0.5);  // n x n
  Variable diff = ag::Sub(u, v);
  Variable pos_logit =
      ag::ScalarMul(ag::SumRows(ag::Square(diff)), -0.5);  // n x 1
  // Denominator mask: off-diagonal within-view entries + the positive.
  Matrix mask(n, n + 1, 1.0);
  for (int i = 0; i < n; ++i) mask(i, i) = 0.0;
  // Assemble [neg_logits | pos_logit] via transpose-free concatenation:
  // ConcatRows on transposes would be awkward, so concatenate columns
  // through Transpose(ConcatRows(Transpose(...))).
  Variable logits = ag::Transpose(
      ag::ConcatRows(ag::Transpose(neg_logits), ag::Transpose(pos_logit)));
  Variable denom = ag::LogSumExpRows(logits, mask);  // n x 1
  return ag::Mean(ag::Sub(denom, pos_logit));
}

Variable JsdLoss(const Variable& u, const Variable& v) {
  GRADGCL_CHECK(u.rows() == v.rows() && u.cols() == v.cols());
  const int n = u.rows();
  GRADGCL_CHECK_MSG(n >= 2, "JsdLoss needs >= 2 samples");
  Variable scores = ag::MatMulTransB(u, v);  // critic: dot products
  Variable pos = ag::RowPairDot(u, v);       // n x 1 (diagonal)
  // E_pos[softplus(-s_ii)].
  Variable pos_term = ag::Mean(Softplus(ag::Neg(pos)));
  // E_neg[softplus(s_ij)], i != j: mask the diagonal out by summing all
  // and subtracting the diagonal contribution.
  Variable sp_all = Softplus(scores);
  Variable sp_diag = Softplus(pos);
  Variable neg_sum = ag::Sub(ag::Sum(sp_all), ag::Sum(sp_diag));
  Variable neg_term =
      ag::ScalarMul(neg_sum, 1.0 / (static_cast<double>(n) * (n - 1)));
  return ag::Add(pos_term, neg_term);
}

Variable SceLoss(const Variable& u, const Variable& v, double gamma) {
  GRADGCL_CHECK(u.rows() == v.rows() && u.cols() == v.cols());
  GRADGCL_CHECK(gamma >= 1.0);
  Variable un = ag::RowNormalize(u);
  Variable vn = ag::RowNormalize(v);
  Variable cos = ag::RowPairDot(un, vn);              // n x 1 in [-1, 1]
  Variable one_minus = ag::ScalarAdd(ag::Neg(cos), 1.0);
  // (1 - cos)^gamma via exp(gamma * log(x)); x >= 0 with eps guard.
  Variable powed =
      ag::Exp(ag::ScalarMul(ag::LogEps(one_minus, 1e-9), gamma));
  return ag::Mean(powed);
}

Variable BootstrapLoss(const Variable& online, const Variable& target) {
  GRADGCL_CHECK(online.rows() == target.rows() &&
                online.cols() == target.cols());
  Variable on = ag::RowNormalize(online);
  Variable tn = ag::RowNormalize(target);
  Variable cos = ag::RowPairDot(on, tn);
  return ag::Mean(ag::ScalarAdd(ag::ScalarMul(cos, -2.0), 2.0));
}

Variable AlignmentLoss(const Variable& u, const Variable& v) {
  GRADGCL_CHECK(u.rows() == v.rows() && u.cols() == v.cols());
  Variable diff = ag::Sub(ag::RowNormalize(u), ag::RowNormalize(v));
  return ag::Mean(ag::SumRows(ag::Square(diff)));
}

Variable ContrastiveLoss(LossKind kind, const Variable& u, const Variable& v,
                         double tau) {
  switch (kind) {
    case LossKind::kInfoNce:
      return InfoNce(u, v, tau);
    case LossKind::kJsd:
      return JsdLoss(u, v);
    case LossKind::kSce:
      return SceLoss(u, v);
  }
  GRADGCL_CHECK_MSG(false, "unknown LossKind");
  return Variable();
}

}  // namespace gradgcl
