#include "losses/metrics.h"

#include <cmath>

#include "tensor/ops.h"

namespace gradgcl {

double AlignmentMetric(const Matrix& u, const Matrix& v, double alpha) {
  GRADGCL_CHECK(u.rows() == v.rows() && u.cols() == v.cols());
  GRADGCL_CHECK(u.rows() > 0 && alpha > 0.0);
  const Matrix un = RowNormalize(u);
  const Matrix vn = RowNormalize(v);
  double total = 0.0;
  for (int i = 0; i < u.rows(); ++i) {
    double d2 = 0.0;
    for (int j = 0; j < u.cols(); ++j) {
      const double d = un(i, j) - vn(i, j);
      d2 += d * d;
    }
    total += std::pow(std::sqrt(d2), alpha);
  }
  return total / u.rows();
}

double UniformityMetric(const Matrix& u, double t) {
  GRADGCL_CHECK(u.rows() >= 2 && t > 0.0);
  const Matrix un = RowNormalize(u);
  const Matrix d2 = SquaredDistanceMatrix(un, un);
  double total = 0.0;
  int count = 0;
  for (int i = 0; i < u.rows(); ++i) {
    for (int j = 0; j < u.rows(); ++j) {
      if (i == j) continue;
      total += std::exp(-t * d2(i, j));
      ++count;
    }
  }
  return std::log(total / count);
}

}  // namespace gradgcl
