// Representation-quality metrics from Wang & Isola (paper Eqs. 24–25):
// alignment (expected positive-pair distance) and uniformity (log of
// the expected Gaussian potential between random pairs). Computed on
// raw matrices (no gradients) — these instrument Fig. 7's trajectories.

#ifndef GRADGCL_LOSSES_METRICS_H_
#define GRADGCL_LOSSES_METRICS_H_

#include "tensor/matrix.h"

namespace gradgcl {

// Alignment ℓ_align (Eq. 24): E ||f(x) - f(x')||^alpha over positive
// pairs (row i of u with row i of v), on L2-normalised embeddings.
// Lower is better.
double AlignmentMetric(const Matrix& u, const Matrix& v, double alpha = 2.0);

// Uniformity ℓ_uniform (Eq. 25): log E exp(-t ||f(x) - f(y)||²) over
// all pairs i != j of rows of u, on L2-normalised embeddings. Lower
// (more negative) is better.
double UniformityMetric(const Matrix& u, double t = 2.0);

}  // namespace gradgcl

#endif  // GRADGCL_LOSSES_METRICS_H_
