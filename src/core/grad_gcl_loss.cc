#include "core/grad_gcl_loss.h"

namespace gradgcl {

GradGclLoss::GradGclLoss(const GradGclConfig& config) : config_(config) {
  GRADGCL_CHECK(config.weight >= 0.0 && config.weight <= 1.0);
  GRADGCL_CHECK(config.tau > 0.0);
}

Variable GradGclLoss::RepresentationLoss(const TwoViewBatch& views) const {
  return ContrastiveLoss(config_.loss, views.u, views.u_prime, config_.tau);
}

Variable GradGclLoss::GradientLoss(const TwoViewBatch& views) const {
  Variable u = views.u;
  Variable v = views.u_prime;
  if (config_.detach_features) {
    u = u.Detach();
    v = v.Detach();
  }
  // g_n = ∂ℓ/∂u_n and its mirrored counterpart g'_n = ∂ℓ/∂u'_n.
  Variable g = GradientFeatures(config_.loss, u, v, config_.tau);
  Variable g_prime = GradientFeatures(config_.loss, v, u, config_.tau);
  // Eq. 19: InfoNCE on the gradient features. With detach_features the
  // inputs above were detached, so the composite is constant and this
  // contrasts the raw features; the main configuration
  // (detach_features = false) trains through g.
  return InfoNce(g, g_prime, config_.tau);
}

Variable GradGclLoss::operator()(const TwoViewBatch& views) const {
  const double a = config_.weight;
  if (a == 0.0) return RepresentationLoss(views);
  if (a == 1.0) return GradientLoss(views);
  return ag::Add(ag::ScalarMul(RepresentationLoss(views), 1.0 - a),
                 ag::ScalarMul(GradientLoss(views), a));
}

}  // namespace gradgcl
