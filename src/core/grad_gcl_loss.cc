#include "core/grad_gcl_loss.h"

#include "obs/collapse.h"

namespace gradgcl {

GradGclLoss::GradGclLoss(const GradGclConfig& config) : config_(config) {
  GRADGCL_CHECK(config.weight >= 0.0 && config.weight <= 1.0);
  GRADGCL_CHECK(config.tau > 0.0);
}

Variable GradGclLoss::RepresentationLoss(const TwoViewBatch& views) const {
  return ContrastiveLoss(config_.loss, views.u, views.u_prime, config_.tau);
}

Variable GradGclLoss::GradientLoss(const TwoViewBatch& views) const {
  Variable u = views.u;
  Variable v = views.u_prime;
  if (config_.detach_features) {
    u = u.Detach();
    v = v.Detach();
  }
  // g_n = ∂ℓ/∂u_n and its mirrored counterpart g'_n = ∂ℓ/∂u'_n.
  Variable g = GradientFeatures(config_.loss, u, v, config_.tau);
  Variable g_prime = GradientFeatures(config_.loss, v, u, config_.tau);
  // Eq. 19: InfoNCE on the gradient features. With detach_features the
  // inputs above were detached, so the composite is constant and this
  // contrasts the raw features; the main configuration
  // (detach_features = false) trains through g.
  return InfoNce(g, g_prime, config_.tau);
}

Variable GradGclLoss::operator()(const TwoViewBatch& views) const {
  // Observability taps (obs/collapse.h): on a sampled step, hand the
  // monitor read-only copies of the two-view projections and the
  // ℓ_f / ℓ_g split the composite loss is already computing. Strictly
  // passive — no extra tape nodes, no effect on the loss graph.
  obs::CollapseMonitor& monitor = obs::CollapseMonitor::Instance();
  const bool staged = monitor.StageActive();
  if (staged) {
    monitor.RecordRepresentations(views.u.value(), views.u_prime.value());
  }
  const double a = config_.weight;
  if (a == 0.0) {
    Variable lf = RepresentationLoss(views);
    if (staged) monitor.RecordLossSplit(lf.scalar(), true, 0.0, false);
    return lf;
  }
  if (a == 1.0) {
    Variable lg = GradientLoss(views);
    if (staged) monitor.RecordLossSplit(0.0, false, lg.scalar(), true);
    return lg;
  }
  Variable lf = RepresentationLoss(views);
  Variable lg = GradientLoss(views);
  if (staged) {
    monitor.RecordLossSplit(lf.scalar(), true, lg.scalar(), true);
  }
  return ag::Add(ag::ScalarMul(lf, 1.0 - a), ag::ScalarMul(lg, a));
}

}  // namespace gradgcl
