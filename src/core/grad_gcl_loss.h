// GradGCL — the paper's plug-in loss (Sec. III-B, Fig. 4).
//
// Combines the backbone's representation contrastive loss ℓ_f with a
// gradient contrastive loss ℓ_g computed on gradient features:
//
//   ℓ = (1 − a) · ℓ_f + a · ℓ_g            (paper Eq. 18)
//   ℓ_g = InfoNCE(g_n, g'_n)               (paper Eq. 19)
//
// with g = ∂ℓ_f/∂u (closed form, see core/gradient_features.h) and
// g' = ∂ℓ_f/∂u' its other-view counterpart. The table notation maps
// onto the weight: XXX is weight = 0, XXX(g) is weight = 1, XXX(f+g)
// is weight = a ∈ (0, 1). Any backbone exposing a two-view embedding
// pair plugs in unchanged.

#ifndef GRADGCL_CORE_GRAD_GCL_LOSS_H_
#define GRADGCL_CORE_GRAD_GCL_LOSS_H_

#include "core/gradient_features.h"
#include "losses/contrastive.h"

namespace gradgcl {

// Configuration of the combined loss.
struct GradGclConfig {
  // a in Eq. 18: 0 = representations only, 1 = gradients only.
  double weight = 0.5;
  // Temperature shared by ℓ_f and ℓ_g (InfoNCE family).
  double tau = 0.5;
  // Backbone loss family; also selects the gradient-feature closed form.
  LossKind loss = LossKind::kInfoNce;
  // If true, gradient features are computed on detached embeddings, so
  // ℓ_g shapes the representation only through the feature map's
  // *inputs of the InfoNCE on g* (an ablation knob; default trains
  // through the full composite as described in the paper).
  bool detach_features = false;
};

// Two-view embedding pair produced by a backbone model for one batch.
struct TwoViewBatch {
  Variable u;        // view-1 embeddings after projection, n x d
  Variable u_prime;  // view-2 embeddings after projection, n x d
};

// The combined GradGCL objective.
class GradGclLoss {
 public:
  explicit GradGclLoss(const GradGclConfig& config);

  // Eq. 18 on a two-view batch.
  Variable operator()(const TwoViewBatch& views) const;

  // The two components (exposed for the Fig. 7 instrumentation).
  Variable RepresentationLoss(const TwoViewBatch& views) const;
  Variable GradientLoss(const TwoViewBatch& views) const;

  const GradGclConfig& config() const { return config_; }

 private:
  GradGclConfig config_;
};

}  // namespace gradgcl

#endif  // GRADGCL_CORE_GRAD_GCL_LOSS_H_
