// Gradient features — the paper's central object (Sec. III-A.2).
//
// For a batch of two-view embeddings (u_i, v_i), the gradient feature
// of sample i is the closed-form derivative of the contrastive loss
// with respect to its representation, g_i = ∂ℓ/∂u_i. For InfoNCE this
// is the paper's Eq. 6:
//
//   g_i = (1 − exp(u_i·v_i/τ)/Z_i) / τ · v_i
//         − Σ_{j≠i} exp(u_i·u_j/τ)/Z_i / τ · u_j,
//   Z_i = exp(u_i·v_i/τ) + Σ_{j≠i} exp(u_i·u_j/τ),
//
// with positives drawn from the other view and negatives within-view.
// (The paper's text defines Z without the positive term; including it —
// the standard InfoNCE denominator — is what keeps the positive-pull
// coefficient in (0, 1/τ), as the paper's own observations 1–2 require.
// The deviation is documented in DESIGN.md.) Crucially, g is expressed as a
// *differentiable composite* of u and v, so the gradient contrastive
// loss ℓ_g (Eq. 19) back-propagates through the gradient map with
// ordinary first-order autograd — the implementation of "use gradients
// as an additional input signal".
//
// Gradient features for the JSD and SCE losses (Fig. 11's loss-type
// ablation) follow the same pattern with their own closed forms.
// An analysis-only Euclidean variant implements the Lemma-2 setting.

#ifndef GRADGCL_CORE_GRADIENT_FEATURES_H_
#define GRADGCL_CORE_GRADIENT_FEATURES_H_

#include "losses/contrastive.h"

namespace gradgcl {

// Differentiable gradient features of the InfoNCE loss (paper Eq. 6).
// u, v are n x d with n >= 2; returns n x d. Uses the fused kernels
// (tensor/pool.h FusedKernelsEnabled()) unless GRADGCL_FUSED=0; both
// paths are bit-identical.
Variable InfoNceGradientFeatures(const Variable& u, const Variable& v,
                                 double tau);

// Differentiable gradient features of the JSD loss:
//   g_i = −σ(−u_i·v_i)/n · v_i + Σ_{j≠i} σ(u_i·v_j)/(n(n−1)) · v_j.
// Fused/unfused dispatch as for InfoNCE.
Variable JsdGradientFeatures(const Variable& u, const Variable& v);

// The op-by-op reference implementations the fused paths are verified
// against (exact equality in tests/pool_test.cc; also the baseline leg
// of bench_micro_ops / BENCH_alloc.json).
Variable InfoNceGradientFeaturesUnfused(const Variable& u, const Variable& v,
                                        double tau);
Variable JsdGradientFeaturesUnfused(const Variable& u, const Variable& v);

// Differentiable gradient features of the SCE (GraphMAE) loss:
//   g_i = −γ(1 − c_i)^{γ−1} · (v̂_i − c_i û_i) / |u_i|,  c_i = cos(u_i, v_i).
// No negatives appear — this is what makes gradient contrast
// uninformative for generative losses (the Fig. 11 finding).
Variable SceGradientFeatures(const Variable& u, const Variable& v,
                             double gamma = 2.0);

// Dispatch on the loss family.
Variable GradientFeatures(LossKind kind, const Variable& u, const Variable& v,
                          double tau);

// Analysis-only (non-differentiable) gradients of the Euclidean
// InfoNCE loss (paper Eq. 20 / Lemma 2), including the cross terms
// where u_i appears as a negative in other anchors' partition
// functions. Used by the Lemma-2/3 rank property tests.
Matrix EuclideanGradientFeatures(const Matrix& u, const Matrix& v);

}  // namespace gradgcl

#endif  // GRADGCL_CORE_GRADIENT_FEATURES_H_
