#include "core/gradient_features.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/parallel.h"
#include "tensor/ops.h"
#include "tensor/pool.h"

namespace gradgcl {

namespace {

Matrix OffDiagonalMask(int n) {
  Matrix mask(n, n, 1.0);
  for (int i = 0; i < n; ++i) mask(i, i) = 0.0;
  return mask;
}

}  // namespace

Variable InfoNceGradientFeaturesUnfused(const Variable& u, const Variable& v,
                                        double tau) {
  GRADGCL_CHECK(u.rows() == v.rows() && u.cols() == v.cols());
  const int n = u.rows();
  GRADGCL_CHECK_MSG(n >= 2, "gradient features need >= 2 samples");
  GRADGCL_CHECK(tau > 0.0);
  const double inv_tau = 1.0 / tau;

  // The loss being differentiated (Eq. 4) uses cosine similarity, i.e.
  // it acts on L2-normalised representations — Eq. 6's u, v are those
  // unit vectors. Normalising here also keeps every exp() bounded by
  // e^{1/τ}.
  const Variable un = ag::RowNormalize(u);
  const Variable vn = ag::RowNormalize(v);

  // Within-view similarities s_ij = û_i·û_j / τ, masked off-diagonal.
  Variable s = ag::ScalarMul(ag::MatMulTransB(un, un), inv_tau);  // n x n
  const Matrix mask = OffDiagonalMask(n);
  Variable exp_s = ag::Hadamard(ag::Exp(s), Variable(mask));    // kills diag
  // Partition function. The paper writes Z(u_i) = Σ_{j≠i} exp(s_ij),
  // but the coefficient structure (1 − exp(p)/Z) of Eq. 6 — and the
  // paper's observations 1–2 (positive pull shrinks with alignment,
  // never flips sign) — require the positive term inside Z, i.e. the
  // standard InfoNCE softmax denominator. We include it; see DESIGN.md.
  Variable p = ag::ScalarMul(ag::RowPairDot(un, vn), inv_tau);  // n x 1
  Variable exp_p = ag::Exp(p);
  Variable z = ag::Add(ag::SumRows(exp_s), exp_p);              // n x 1
  Variable inv_z = ag::Reciprocal(z);

  // Positive coefficient (1 − exp(p_i)/Z_i)/τ ∈ (0, 1/τ).
  Variable pos_ratio = ag::Hadamard(exp_p, inv_z);              // n x 1
  Variable pos_coeff =
      ag::ScalarMul(ag::ScalarAdd(ag::Neg(pos_ratio), 1.0), inv_tau);
  Variable positive_term = ag::ScaleRowsVar(vn, pos_coeff);     // n x d

  // Negative term: Σ_{j≠i} α_ij û_j / τ with α_ij = exp(s_ij)/Z_i.
  Variable alpha = ag::ScaleRowsVar(exp_s, inv_z);              // n x n
  Variable negative_term = ag::ScalarMul(ag::MatMul(alpha, un), inv_tau);

  return ag::Sub(positive_term, negative_term);
}

Variable JsdGradientFeaturesUnfused(const Variable& u, const Variable& v) {
  GRADGCL_CHECK(u.rows() == v.rows() && u.cols() == v.cols());
  const int n = u.rows();
  GRADGCL_CHECK_MSG(n >= 2, "gradient features need >= 2 samples");

  Variable scores = ag::MatMulTransB(u, v);                       // n x n
  Variable pos = ag::RowPairDot(u, v);                            // n x 1
  // Positive pull: −σ(−s_ii)/n · v_i.
  Variable pos_coeff =
      ag::ScalarMul(ag::Sigmoid(ag::Neg(pos)), -1.0 / n);
  Variable positive_term = ag::ScaleRowsVar(v, pos_coeff);
  // Negative push: Σ_{j≠i} σ(s_ij) v_j / (n(n−1)).
  const Matrix mask = OffDiagonalMask(n);
  Variable sig = ag::Hadamard(ag::Sigmoid(scores), Variable(mask));
  Variable negative_term = ag::ScalarMul(
      ag::MatMul(sig, v), 1.0 / (static_cast<double>(n) * (n - 1)));
  return ag::Add(positive_term, negative_term);
}

Variable InfoNceGradientFeatures(const Variable& u, const Variable& v,
                                 double tau) {
  if (!FusedKernelsEnabled()) return InfoNceGradientFeaturesUnfused(u, v, tau);
  GRADGCL_CHECK(u.rows() == v.rows() && u.cols() == v.cols());
  GRADGCL_CHECK_MSG(u.rows() >= 2, "gradient features need >= 2 samples");
  GRADGCL_CHECK(tau > 0.0);
  const double inv_tau = 1.0 / tau;

  // Same graph as the unfused path above with the single-consumer op
  // chains collapsed into fused nodes: no n x n mask, no unmasked exp,
  // no stored alpha. Values and gradients are bit-identical (the fused
  // backward closures replay the unfused rounding sequence, and the
  // per-node gradient accumulation order is preserved — see
  // autograd/ops.cc and tests/pool_test.cc).
  Variable un;
  Variable s = ag::CosineGram(u, inv_tau, &un);                 // n x n
  const Variable vn = ag::RowNormalize(v);
  Variable exp_s;
  Variable sum_exp = ag::MaskedExpRowSum(s, &exp_s);            // n x 1

  Variable p = ag::ScalarMul(ag::RowPairDot(un, vn), inv_tau);  // n x 1
  Variable exp_p = ag::Exp(p);
  Variable z = ag::Add(sum_exp, exp_p);                         // n x 1
  Variable inv_z = ag::Reciprocal(z);

  Variable pos_ratio = ag::Hadamard(exp_p, inv_z);              // n x 1
  Variable pos_coeff =
      ag::ScalarMul(ag::ScalarAdd(ag::Neg(pos_ratio), 1.0), inv_tau);
  Variable positive_term = ag::ScaleRowsVar(vn, pos_coeff);     // n x d

  Variable negative_term = ag::ScaleRowsMatMul(exp_s, inv_z, un, inv_tau);
  return ag::Sub(positive_term, negative_term);
}

Variable JsdGradientFeatures(const Variable& u, const Variable& v) {
  if (!FusedKernelsEnabled()) return JsdGradientFeaturesUnfused(u, v);
  GRADGCL_CHECK(u.rows() == v.rows() && u.cols() == v.cols());
  const int n = u.rows();
  GRADGCL_CHECK_MSG(n >= 2, "gradient features need >= 2 samples");

  Variable scores = ag::MatMulTransB(u, v);                       // n x n
  Variable pos = ag::RowPairDot(u, v);                            // n x 1
  Variable pos_coeff =
      ag::ScalarMul(ag::Sigmoid(ag::Neg(pos)), -1.0 / n);
  Variable positive_term = ag::ScaleRowsVar(v, pos_coeff);
  // Fused off-diagonal sigmoid + scaled product — no mask matrix.
  Variable sig = ag::OffDiagSigmoid(scores);
  Variable negative_term = ag::MatMulScaled(
      sig, v, 1.0 / (static_cast<double>(n) * (n - 1)));
  return ag::Add(positive_term, negative_term);
}

Variable SceGradientFeatures(const Variable& u, const Variable& v,
                             double gamma) {
  GRADGCL_CHECK(u.rows() == v.rows() && u.cols() == v.cols());
  GRADGCL_CHECK(gamma >= 1.0);
  Variable un = ag::RowNormalize(u);
  Variable vn = ag::RowNormalize(v);
  Variable cos = ag::RowPairDot(un, vn);                          // n x 1
  Variable one_minus = ag::ScalarAdd(ag::Neg(cos), 1.0);
  // γ (1 − c)^{γ−1}.
  Variable outer = ag::ScalarMul(
      ag::Exp(ag::ScalarMul(ag::LogEps(one_minus, 1e-9), gamma - 1.0)), gamma);
  // d(−cos)/du_i = −(v̂_i − c û_i)/|u_i|.
  Variable norms = ag::Sqrt(ag::SumRows(ag::Square(u)), 1e-12);   // n x 1
  Variable inv_norm = ag::Reciprocal(norms);
  Variable residual = ag::Sub(vn, ag::ScaleRowsVar(un, cos));     // n x d
  Variable direction = ag::ScaleRowsVar(residual, inv_norm);
  return ag::ScaleRowsVar(direction, ag::ScalarMul(outer, -1.0));
}

Variable GradientFeatures(LossKind kind, const Variable& u, const Variable& v,
                          double tau) {
  switch (kind) {
    case LossKind::kInfoNce:
      return InfoNceGradientFeatures(u, v, tau);
    case LossKind::kJsd:
      return JsdGradientFeatures(u, v);
    case LossKind::kSce:
      return SceGradientFeatures(u, v);
  }
  GRADGCL_CHECK_MSG(false, "unknown LossKind");
  return Variable();
}

Matrix EuclideanGradientFeatures(const Matrix& u, const Matrix& v) {
  GRADGCL_CHECK(u.rows() == v.rows() && u.cols() == v.cols());
  const int n = u.rows();
  const int d = u.cols();
  GRADGCL_CHECK(n >= 2);

  // α_ij = exp(−|u_i−u_j|²/2)/Z_i (j≠i), α_ii = exp(−|u_i−v_i|²/2)/Z_i.
  // Row-parallel: every value of row i (weights, Z_i, normalisation) is
  // computed inside one chunk in the serial index order, so any thread
  // count produces identical bits.
  const Matrix d2 = SquaredDistanceMatrix(u, u);
  Matrix alpha = Matrix::Uninitialized(n, n);
  const int64_t grain = std::max<int64_t>(1, (int64_t{1} << 15) / n);
  // Cost hints: one exp per α entry for the weight pass, one d-wide
  // madd row per neighbour for the gradient pass.
  ParallelFor(0, n, grain, /*cost_per_iter=*/16 * n,
              [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      double pd2 = 0.0;
      for (int j = 0; j < d; ++j) {
        const double diff = u(i, j) - v(i, j);
        pd2 += diff * diff;
      }
      const double pos_w = std::exp(-pd2 / 2.0);
      double z = pos_w;
      for (int j = 0; j < n; ++j) {
        if (j == i) continue;
        alpha(i, j) = std::exp(-d2(i, j) / 2.0);
        z += alpha(i, j);
      }
      for (int j = 0; j < n; ++j) {
        if (j != i) alpha(i, j) /= z;
      }
      alpha(i, i) = pos_w / z;
    }
  });

  // ∂L/∂u_i = (1 − α_ii)(u_i − v_i)            [its own positive]
  //           − Σ_{j≠i} α_ij (u_i − u_j)       [its own negatives]
  //           − Σ_{k≠i} α_ki (u_i − u_k)       [as a negative for k]
  // Needs the full α, hence a second ParallelFor; each output row is a
  // k-ascending reduction local to its chunk.
  Matrix g(n, d, 0.0);
  ParallelFor(0, n, grain, /*cost_per_iter=*/2 * n * d,
              [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      const double own = 1.0 - alpha(i, i);
      for (int j = 0; j < d; ++j) g(i, j) += own * (u(i, j) - v(i, j));
      for (int k = 0; k < n; ++k) {
        if (k == i) continue;
        const double w = alpha(i, k) + alpha(k, i);
        for (int j = 0; j < d; ++j) g(i, j) -= w * (u(i, j) - u(k, j));
      }
    }
  });
  return g;
}

}  // namespace gradgcl
