#include "autograd/variable.h"

#include <unordered_map>
#include <unordered_set>

namespace gradgcl {

namespace internal {

void Node::AccumulateGrad(const Matrix& delta) {
  if (!grad_initialized) {
    grad = Matrix::Zeros(value.rows(), value.cols());
    grad_initialized = true;
  }
  GRADGCL_CHECK(delta.rows() == grad.rows() && delta.cols() == grad.cols());
  grad += delta;
}

}  // namespace internal

Variable::Variable(Matrix value, bool requires_grad) {
  node_ = std::make_shared<internal::Node>();
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
}

const Matrix& Variable::value() const {
  GRADGCL_CHECK_MSG(defined(), "access on null Variable");
  return node_->value;
}

const Matrix& Variable::grad() const {
  GRADGCL_CHECK_MSG(defined(), "access on null Variable");
  if (!node_->grad_initialized) {
    node_->grad = Matrix::Zeros(node_->value.rows(), node_->value.cols());
    node_->grad_initialized = true;
  }
  return node_->grad;
}

void Variable::set_grad(Matrix grad) {
  GRADGCL_CHECK_MSG(defined(), "set_grad on null Variable");
  GRADGCL_CHECK(grad.rows() == node_->value.rows() &&
                grad.cols() == node_->value.cols());
  node_->grad = std::move(grad);
  node_->grad_initialized = true;
}

void Variable::set_value(Matrix value) {
  GRADGCL_CHECK_MSG(defined(), "set_value on null Variable");
  GRADGCL_CHECK(value.rows() == node_->value.rows() &&
                value.cols() == node_->value.cols());
  node_->value = std::move(value);
}

bool Variable::requires_grad() const {
  GRADGCL_CHECK_MSG(defined(), "access on null Variable");
  return node_->requires_grad;
}

void Variable::ZeroGrad() {
  GRADGCL_CHECK_MSG(defined(), "ZeroGrad on null Variable");
  // In place when possible: parameters call this every step, and a
  // fresh Zeros would heap-allocate per parameter per step.
  if (node_->grad_initialized &&
      node_->grad.rows() == node_->value.rows() &&
      node_->grad.cols() == node_->value.cols()) {
    node_->grad.Fill(0.0);
    return;
  }
  node_->grad = Matrix::Zeros(node_->value.rows(), node_->value.cols());
  node_->grad_initialized = true;
}

Variable Variable::Detach() const {
  GRADGCL_CHECK_MSG(defined(), "Detach on null Variable");
  return Variable(node_->value, /*requires_grad=*/false);
}

double Variable::scalar() const {
  GRADGCL_CHECK_MSG(value().size() == 1, "scalar() on non-1x1 Variable");
  return value()(0, 0);
}

Variable Variable::MakeOp(Matrix value, std::vector<Variable> parents,
                          std::function<void(internal::Node&)> backward_fn) {
  Variable out(std::move(value), /*requires_grad=*/false);
  bool any_grad = false;
  for (const Variable& p : parents) {
    GRADGCL_CHECK_MSG(p.defined(), "op on null Variable");
    out.node_->parents.push_back(p.node());
    // A node needs gradients if any ancestor is a parameter.
    if (p.node()->requires_grad || !p.node()->parents.empty()) {
      any_grad = true;
    }
  }
  if (any_grad) {
    out.node_->backward_fn = std::move(backward_fn);
  }
  return out;
}

void Backward(const Variable& loss) {
  GRADGCL_CHECK_MSG(loss.defined(), "Backward on null Variable");
  GRADGCL_CHECK_MSG(loss.value().size() == 1,
                    "Backward requires a 1x1 scalar loss");

  using internal::Node;
  // Iterative post-order DFS to get a reverse topological order.
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, size_t>> stack;
  stack.emplace_back(loss.node().get(), 0);
  visited.insert(loss.node().get());
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (next_child < node->parents.size()) {
      Node* child = node->parents[next_child++].get();
      if (visited.insert(child).second) {
        stack.emplace_back(child, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }

  // Seed d(loss)/d(loss) = 1 and propagate in reverse topological
  // order (order is post-order, so iterate from the back).
  Node* root = loss.node().get();
  root->grad = Matrix(1, 1, 1.0);
  root->grad_initialized = true;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* node = *it;
    if (node->backward_fn && node->grad_initialized) {
      node->backward_fn(*node);
    }
  }
}

}  // namespace gradgcl
