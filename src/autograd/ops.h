// Differentiable operations on Variables.
//
// Each op returns a new Variable whose tape node knows how to push
// gradients back into its inputs. All ops are validated against
// central finite differences in tests/autograd_test.cc via
// autograd/gradcheck.h.
//
// Ops live in the nested namespace gradgcl::ag so call sites read
// ag::MatMul(x, w) and are visibly differentiable (as opposed to the
// raw kernels in tensor/ops.h).

#ifndef GRADGCL_AUTOGRAD_OPS_H_
#define GRADGCL_AUTOGRAD_OPS_H_

#include <vector>

#include "autograd/variable.h"
#include "common/rng.h"
#include "tensor/sparse.h"

namespace gradgcl::ag {

// --- Constructors -----------------------------------------------------------

// Wraps a scalar as a constant 1x1 Variable.
Variable FromScalar(double value);

// --- Arithmetic -------------------------------------------------------------

Variable Add(const Variable& a, const Variable& b);
Variable Sub(const Variable& a, const Variable& b);
Variable Neg(const Variable& a);
Variable ScalarMul(const Variable& a, double s);
Variable ScalarAdd(const Variable& a, double s);
Variable Hadamard(const Variable& a, const Variable& b);

// --- Products ---------------------------------------------------------------

// a * b with full gradients to both operands.
Variable MatMul(const Variable& a, const Variable& b);

// a * b^T with full gradients to both operands.
Variable MatMulTransB(const Variable& a, const Variable& b);

// c * a where c is a constant (e.g. a normalised adjacency matrix);
// gradient flows only into a.
Variable ConstLeftMatMul(const Matrix& c, const Variable& a);

// s * a for a constant sparse operator s (the batched adjacency);
// backward applies s^T. Gradient flows only into a.
Variable SparseLeftMatMul(const SparseMatrix& s, const Variable& a);

Variable Transpose(const Variable& a);

// --- Elementwise nonlinearities ----------------------------------------------

Variable Relu(const Variable& a);
// max(x, slope * x) with slope in (0, 1).
Variable LeakyRelu(const Variable& a, double slope = 0.2);
Variable Tanh(const Variable& a);
Variable Sigmoid(const Variable& a);
Variable Exp(const Variable& a);
// log(a + eps); the eps guard keeps contrastive losses finite.
Variable LogEps(const Variable& a, double eps = 1e-12);
Variable Sqrt(const Variable& a, double eps = 1e-12);
Variable Square(const Variable& a);
// 1 / (a + eps), elementwise.
Variable Reciprocal(const Variable& a, double eps = 1e-12);

// Elementwise dropout: each entry zeroed with probability p and the
// rest scaled by 1/(1-p) (inverted dropout). Identity when p == 0.
Variable Dropout(const Variable& a, double p, Rng& rng);

// --- Reductions -------------------------------------------------------------

// Sum / mean of all elements, to a 1x1 scalar.
Variable Sum(const Variable& a);
Variable Mean(const Variable& a);

// Per-row sum / mean: n x d -> n x 1.
Variable SumRows(const Variable& a);
Variable MeanRows(const Variable& a);

// --- Row geometry -------------------------------------------------------------

// Rows scaled to unit L2 norm (rows with norm < eps pass through with
// zero gradient).
Variable RowNormalize(const Variable& a, double eps = 1e-12);

// Row-wise dot products of equally-shaped a, b: n x d -> n x 1.
Variable RowPairDot(const Variable& a, const Variable& b);

// Scales row i of a (n x d) by scale(i, 0) (n x 1): out = diag(s) a.
Variable ScaleRowsVar(const Variable& a, const Variable& scale);

// Pairwise squared Euclidean distances: out(i, j) = |a_i - b_j|^2.
Variable PairwiseSquaredDistances(const Variable& a, const Variable& b);

// Row-wise log-sum-exp over masked entries:
//   out_i = log Σ_j mask(i, j) · exp(a(i, j)).
// `mask` is a constant 0/1 matrix; every row must select >= 1 entry.
Variable LogSumExpRows(const Variable& a, const Matrix& mask);

// Numerically stable row softmax restricted to mask(i, j) = 1 entries;
// masked-out entries are exactly 0 in the output. Every row must
// select >= 1 entry. (The attention kernel of GAT.)
Variable MaskedRowSoftmax(const Variable& a, const Matrix& mask);

// --- Fused kernels ----------------------------------------------------------
// Forward/backward fusions of the GradGCL loss pipeline. Each produces
// bit-identical values AND gradients to the unfused op composition it
// replaces (the equivalence is exact, enforced by tests/pool_test.cc),
// while building fewer tape nodes and touching fewer n x n temporaries.

// a * b^T * scale in one pass (fuses MatMulTransB + ScalarMul).
Variable MatMulTransBScaled(const Variable& a, const Variable& b, double scale);

// The cosine Gram matrix of u at inverse temperature inv_tau:
// rownormalize(u) * rownormalize(u)^T * inv_tau. If `normalized` is
// non-null it receives the shared û node (needed again by the
// positive/negative terms of the gradient features).
Variable CosineGram(const Variable& u, double inv_tau,
                    Variable* normalized = nullptr);

// Row sums of the off-diagonal-masked exp(s): returns
// Σ_j≠i exp(s_ij) as n x 1, without materialising a mask matrix. If
// `exp_out` is non-null it receives the masked exp(s) node (the
// numerator of the α coefficients). Fuses Exp + Hadamard(mask) +
// SumRows.
Variable MaskedExpRowSum(const Variable& s, Variable* exp_out = nullptr);

// (diag(scale) a) * b * post in one pass — the α·û negative term.
// Fuses ScaleRowsVar + MatMul + ScalarMul.
Variable ScaleRowsMatMul(const Variable& a, const Variable& scale,
                         const Variable& b, double post);

// a * b * post (fuses MatMul + ScalarMul).
Variable MatMulScaled(const Variable& a, const Variable& b, double post);

// Elementwise sigmoid with the diagonal masked to 0 (fuses Sigmoid +
// Hadamard(offdiag mask)).
Variable OffDiagSigmoid(const Variable& a);

// Row-wise log Σ_j≠i exp(a_ij) for square a — LogSumExpRows with the
// implicit off-diagonal mask, no mask matrix.
Variable LogSumExpOffDiag(const Variable& a);

// --- Broadcasts ----------------------------------------------------------------

// Adds a 1 x d row (e.g. a bias) to every row of a.
Variable AddRowBroadcast(const Variable& a, const Variable& row);

// --- Structure -------------------------------------------------------------------

// Stacks b below a.
Variable ConcatRows(const Variable& a, const Variable& b);

// Rows [begin, end) of a.
Variable SliceRows(const Variable& a, int begin, int end);

// Rows of a selected (with repetition allowed) by `indices`;
// backward scatter-adds.
Variable GatherRows(const Variable& a, const std::vector<int>& indices);

// --- Graph pooling ---------------------------------------------------------------

// Segment sum: rows of a grouped by segment id (0-based, dense), out
// has num_segments rows. Used as the GNN readout over batched graphs.
Variable SegmentSum(const Variable& a, const std::vector<int>& segments,
                    int num_segments);
// Segment mean; empty segments yield zero rows.
Variable SegmentMean(const Variable& a, const std::vector<int>& segments,
                     int num_segments);

// --- Classification losses ---------------------------------------------------------

// Mean softmax cross-entropy of n x c logits against integer labels.
Variable SoftmaxCrossEntropy(const Variable& logits,
                             const std::vector<int>& labels);

// Mean binary cross-entropy with logits against constant 0/1 targets
// of identical shape (numerically stable formulation).
Variable BinaryCrossEntropyWithLogits(const Variable& logits,
                                      const Matrix& targets);

}  // namespace gradgcl::ag

#endif  // GRADGCL_AUTOGRAD_OPS_H_
