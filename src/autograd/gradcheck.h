// Numerical gradient checking: compares reverse-mode gradients against
// central finite differences. Used throughout tests/ to pin down the
// correctness of every differentiable op and of the GradGCL losses.

#ifndef GRADGCL_AUTOGRAD_GRADCHECK_H_
#define GRADGCL_AUTOGRAD_GRADCHECK_H_

#include <functional>
#include <string>
#include <vector>

#include "autograd/variable.h"

namespace gradgcl::ag {

// Outcome of a gradient check.
struct GradCheckResult {
  bool ok = true;
  // Largest |analytic - numeric| over all checked entries.
  double max_abs_error = 0.0;
  // Human-readable description of the worst entry (for test output).
  std::string worst_entry;
};

// Checks d(loss)/d(inputs[k]) for every k.
//
// `forward` must rebuild the scalar loss from scratch from the current
// input values (it is invoked ~2 * Σ size(inputs) times with perturbed
// values, plus once for the analytic pass). `eps` is the central
// difference step; `tol` the acceptance threshold on absolute error.
GradCheckResult CheckGradients(
    const std::function<Variable(const std::vector<Variable>&)>& forward,
    std::vector<Variable> inputs, double eps = 1e-5, double tol = 1e-6);

}  // namespace gradgcl::ag

#endif  // GRADGCL_AUTOGRAD_GRADCHECK_H_
