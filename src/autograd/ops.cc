#include "autograd/ops.h"

#include <algorithm>
#include <cmath>

#include "tensor/ops.h"

namespace gradgcl::ag {

namespace {

using internal::Node;

// Shorthand: does a node participate in gradient flow?
bool NeedsGrad(const std::shared_ptr<Node>& n) {
  return n->requires_grad || !n->parents.empty();
}

}  // namespace

Variable FromScalar(double value) { return Variable(Matrix(1, 1, value)); }

Variable Add(const Variable& a, const Variable& b) {
  GRADGCL_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  return Variable::MakeOp(a.value() + b.value(), {a, b}, [](Node& out) {
    if (NeedsGrad(out.parents[0])) out.parents[0]->AccumulateGrad(out.grad);
    if (NeedsGrad(out.parents[1])) out.parents[1]->AccumulateGrad(out.grad);
  });
}

Variable Sub(const Variable& a, const Variable& b) {
  GRADGCL_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  return Variable::MakeOp(a.value() - b.value(), {a, b}, [](Node& out) {
    if (NeedsGrad(out.parents[0])) out.parents[0]->AccumulateGrad(out.grad);
    if (NeedsGrad(out.parents[1])) {
      Matrix neg = out.grad;
      neg *= -1.0;
      out.parents[1]->AccumulateGrad(neg);
    }
  });
}

Variable Neg(const Variable& a) { return ScalarMul(a, -1.0); }

Variable ScalarMul(const Variable& a, double s) {
  return Variable::MakeOp(a.value() * s, {a}, [s](Node& out) {
    if (NeedsGrad(out.parents[0])) {
      Matrix g = out.grad;
      g *= s;
      out.parents[0]->AccumulateGrad(g);
    }
  });
}

Variable ScalarAdd(const Variable& a, double s) {
  Matrix v = a.value();
  for (int i = 0; i < v.size(); ++i) v.at_flat(i) += s;
  return Variable::MakeOp(std::move(v), {a}, [](Node& out) {
    if (NeedsGrad(out.parents[0])) out.parents[0]->AccumulateGrad(out.grad);
  });
}

Variable Hadamard(const Variable& a, const Variable& b) {
  GRADGCL_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  return Variable::MakeOp(
      gradgcl::Hadamard(a.value(), b.value()), {a, b}, [](Node& out) {
        if (NeedsGrad(out.parents[0])) {
          out.parents[0]->AccumulateGrad(
              gradgcl::Hadamard(out.grad, out.parents[1]->value));
        }
        if (NeedsGrad(out.parents[1])) {
          out.parents[1]->AccumulateGrad(
              gradgcl::Hadamard(out.grad, out.parents[0]->value));
        }
      });
}

Variable MatMul(const Variable& a, const Variable& b) {
  return Variable::MakeOp(
      gradgcl::MatMul(a.value(), b.value()), {a, b}, [](Node& out) {
        // out = A B;  dA = G B^T,  dB = A^T G.
        if (NeedsGrad(out.parents[0])) {
          out.parents[0]->AccumulateGrad(
              MatMulTransB(out.grad, out.parents[1]->value));
        }
        if (NeedsGrad(out.parents[1])) {
          out.parents[1]->AccumulateGrad(
              MatMulTransA(out.parents[0]->value, out.grad));
        }
      });
}

Variable MatMulTransB(const Variable& a, const Variable& b) {
  return Variable::MakeOp(
      gradgcl::MatMulTransB(a.value(), b.value()), {a, b}, [](Node& out) {
        // out = A B^T;  dA = G B,  dB = G^T A.
        if (NeedsGrad(out.parents[0])) {
          out.parents[0]->AccumulateGrad(
              gradgcl::MatMul(out.grad, out.parents[1]->value));
        }
        if (NeedsGrad(out.parents[1])) {
          out.parents[1]->AccumulateGrad(
              MatMulTransA(out.grad, out.parents[0]->value));
        }
      });
}

Variable ConstLeftMatMul(const Matrix& c, const Variable& a) {
  // Capture c by value: the caller's matrix may not outlive the tape.
  return Variable::MakeOp(gradgcl::MatMul(c, a.value()), {a}, [c](Node& out) {
    if (NeedsGrad(out.parents[0])) {
      out.parents[0]->AccumulateGrad(MatMulTransA(c, out.grad));
    }
  });
}

Variable SparseLeftMatMul(const SparseMatrix& s, const Variable& a) {
  return Variable::MakeOp(s.Multiply(a.value()), {a}, [s](Node& out) {
    if (NeedsGrad(out.parents[0])) {
      out.parents[0]->AccumulateGrad(s.MultiplyTransposed(out.grad));
    }
  });
}

Variable Transpose(const Variable& a) {
  return Variable::MakeOp(a.value().Transposed(), {a}, [](Node& out) {
    if (NeedsGrad(out.parents[0])) {
      out.parents[0]->AccumulateGrad(out.grad.Transposed());
    }
  });
}

Variable Relu(const Variable& a) {
  return Variable::MakeOp(gradgcl::Relu(a.value()), {a}, [](Node& out) {
    if (NeedsGrad(out.parents[0])) {
      Matrix g = out.grad;
      const Matrix& x = out.parents[0]->value;
      for (int i = 0; i < g.size(); ++i) {
        if (x.at_flat(i) <= 0.0) g.at_flat(i) = 0.0;
      }
      out.parents[0]->AccumulateGrad(g);
    }
  });
}

Variable LeakyRelu(const Variable& a, double slope) {
  GRADGCL_CHECK(slope > 0.0 && slope < 1.0);
  Matrix y = Map(a.value(),
                 [slope](double v) { return v > 0.0 ? v : slope * v; });
  return Variable::MakeOp(std::move(y), {a}, [slope](Node& out) {
    if (NeedsGrad(out.parents[0])) {
      Matrix g = out.grad;
      const Matrix& x = out.parents[0]->value;
      for (int i = 0; i < g.size(); ++i) {
        if (x.at_flat(i) <= 0.0) g.at_flat(i) *= slope;
      }
      out.parents[0]->AccumulateGrad(g);
    }
  });
}

Variable Tanh(const Variable& a) {
  return Variable::MakeOp(gradgcl::Tanh(a.value()), {a}, [](Node& out) {
    if (NeedsGrad(out.parents[0])) {
      Matrix g = out.grad;
      for (int i = 0; i < g.size(); ++i) {
        const double y = out.value.at_flat(i);
        g.at_flat(i) *= 1.0 - y * y;
      }
      out.parents[0]->AccumulateGrad(g);
    }
  });
}

Variable Sigmoid(const Variable& a) {
  Matrix y = Map(a.value(), [](double v) { return 1.0 / (1.0 + std::exp(-v)); });
  return Variable::MakeOp(std::move(y), {a}, [](Node& out) {
    if (NeedsGrad(out.parents[0])) {
      Matrix g = out.grad;
      for (int i = 0; i < g.size(); ++i) {
        const double s = out.value.at_flat(i);
        g.at_flat(i) *= s * (1.0 - s);
      }
      out.parents[0]->AccumulateGrad(g);
    }
  });
}

Variable Exp(const Variable& a) {
  return Variable::MakeOp(gradgcl::Exp(a.value()), {a}, [](Node& out) {
    if (NeedsGrad(out.parents[0])) {
      out.parents[0]->AccumulateGrad(gradgcl::Hadamard(out.grad, out.value));
    }
  });
}

Variable LogEps(const Variable& a, double eps) {
  Matrix y = Map(a.value(), [eps](double v) { return std::log(v + eps); });
  return Variable::MakeOp(std::move(y), {a}, [eps](Node& out) {
    if (NeedsGrad(out.parents[0])) {
      Matrix g = out.grad;
      const Matrix& x = out.parents[0]->value;
      for (int i = 0; i < g.size(); ++i) g.at_flat(i) /= x.at_flat(i) + eps;
      out.parents[0]->AccumulateGrad(g);
    }
  });
}

Variable Sqrt(const Variable& a, double eps) {
  Matrix y = Map(a.value(), [eps](double v) { return std::sqrt(v + eps); });
  return Variable::MakeOp(std::move(y), {a}, [](Node& out) {
    if (NeedsGrad(out.parents[0])) {
      Matrix g = out.grad;
      for (int i = 0; i < g.size(); ++i) {
        g.at_flat(i) *= 0.5 / out.value.at_flat(i);
      }
      out.parents[0]->AccumulateGrad(g);
    }
  });
}

Variable Square(const Variable& a) {
  return Variable::MakeOp(
      gradgcl::Hadamard(a.value(), a.value()), {a}, [](Node& out) {
        if (NeedsGrad(out.parents[0])) {
          Matrix g = gradgcl::Hadamard(out.grad, out.parents[0]->value);
          g *= 2.0;
          out.parents[0]->AccumulateGrad(g);
        }
      });
}

Variable Reciprocal(const Variable& a, double eps) {
  Matrix y = Map(a.value(), [eps](double v) { return 1.0 / (v + eps); });
  return Variable::MakeOp(std::move(y), {a}, [](Node& out) {
    if (NeedsGrad(out.parents[0])) {
      Matrix g = out.grad;
      for (int i = 0; i < g.size(); ++i) {
        const double y = out.value.at_flat(i);
        g.at_flat(i) *= -y * y;
      }
      out.parents[0]->AccumulateGrad(g);
    }
  });
}

Variable ScaleRowsVar(const Variable& a, const Variable& scale) {
  GRADGCL_CHECK(scale.rows() == a.rows() && scale.cols() == 1);
  return Variable::MakeOp(
      ScaleRows(a.value(), scale.value()), {a, scale}, [](Node& out) {
        const Matrix& g = out.grad;
        if (NeedsGrad(out.parents[0])) {
          out.parents[0]->AccumulateGrad(ScaleRows(g, out.parents[1]->value));
        }
        if (NeedsGrad(out.parents[1])) {
          const Matrix& av = out.parents[0]->value;
          Matrix gs(av.rows(), 1, 0.0);
          for (int i = 0; i < av.rows(); ++i) {
            double dot = 0.0;
            for (int j = 0; j < av.cols(); ++j) dot += g(i, j) * av(i, j);
            gs(i, 0) = dot;
          }
          out.parents[1]->AccumulateGrad(gs);
        }
      });
}

Variable Dropout(const Variable& a, double p, Rng& rng) {
  GRADGCL_CHECK(p >= 0.0 && p < 1.0);
  if (p == 0.0) return a;
  Matrix mask(a.rows(), a.cols());
  const double keep_scale = 1.0 / (1.0 - p);
  for (int i = 0; i < mask.size(); ++i) {
    mask.at_flat(i) = rng.Bernoulli(p) ? 0.0 : keep_scale;
  }
  return Variable::MakeOp(
      gradgcl::Hadamard(a.value(), mask), {a}, [mask](Node& out) {
        if (NeedsGrad(out.parents[0])) {
          out.parents[0]->AccumulateGrad(gradgcl::Hadamard(out.grad, mask));
        }
      });
}

Variable Sum(const Variable& a) {
  return Variable::MakeOp(Matrix(1, 1, a.value().Sum()), {a}, [](Node& out) {
    if (NeedsGrad(out.parents[0])) {
      const Matrix& x = out.parents[0]->value;
      out.parents[0]->AccumulateGrad(
          Matrix(x.rows(), x.cols(), out.grad(0, 0)));
    }
  });
}

Variable Mean(const Variable& a) {
  GRADGCL_CHECK(a.value().size() > 0);
  return ScalarMul(Sum(a), 1.0 / a.value().size());
}

Variable SumRows(const Variable& a) {
  return Variable::MakeOp(RowSum(a.value()), {a}, [](Node& out) {
    if (NeedsGrad(out.parents[0])) {
      const Matrix& x = out.parents[0]->value;
      Matrix g(x.rows(), x.cols());
      for (int i = 0; i < x.rows(); ++i) {
        for (int j = 0; j < x.cols(); ++j) g(i, j) = out.grad(i, 0);
      }
      out.parents[0]->AccumulateGrad(g);
    }
  });
}

Variable MeanRows(const Variable& a) {
  GRADGCL_CHECK(a.cols() > 0);
  return ScalarMul(SumRows(a), 1.0 / a.cols());
}

Variable RowNormalize(const Variable& a, double eps) {
  const Matrix& x = a.value();
  Matrix norms = RowNorms(x);
  Matrix y = x;
  for (int i = 0; i < x.rows(); ++i) {
    const double r = norms(i, 0);
    if (r < eps) continue;
    const double inv = 1.0 / r;
    for (int j = 0; j < x.cols(); ++j) y(i, j) *= inv;
  }
  return Variable::MakeOp(std::move(y), {a}, [norms, eps](Node& out) {
    if (!NeedsGrad(out.parents[0])) return;
    const Matrix& y = out.value;
    const Matrix& g = out.grad;
    Matrix gx(y.rows(), y.cols(), 0.0);
    for (int i = 0; i < y.rows(); ++i) {
      const double r = norms(i, 0);
      if (r < eps) continue;  // forward passed the row unscaled: treat as const
      double dot = 0.0;
      for (int j = 0; j < y.cols(); ++j) dot += y(i, j) * g(i, j);
      const double inv = 1.0 / r;
      for (int j = 0; j < y.cols(); ++j) {
        gx(i, j) = (g(i, j) - y(i, j) * dot) * inv;
      }
    }
    out.parents[0]->AccumulateGrad(gx);
  });
}

Variable RowPairDot(const Variable& a, const Variable& b) {
  GRADGCL_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  Matrix out(a.rows(), 1);
  for (int i = 0; i < a.rows(); ++i) {
    double dot = 0.0;
    for (int j = 0; j < a.cols(); ++j) dot += a.value()(i, j) * b.value()(i, j);
    out(i, 0) = dot;
  }
  return Variable::MakeOp(std::move(out), {a, b}, [](Node& out_node) {
    const Matrix& g = out_node.grad;  // n x 1
    if (NeedsGrad(out_node.parents[0])) {
      out_node.parents[0]->AccumulateGrad(
          ScaleRows(out_node.parents[1]->value, g));
    }
    if (NeedsGrad(out_node.parents[1])) {
      out_node.parents[1]->AccumulateGrad(
          ScaleRows(out_node.parents[0]->value, g));
    }
  });
}

Variable PairwiseSquaredDistances(const Variable& a, const Variable& b) {
  GRADGCL_CHECK(a.cols() == b.cols());
  return Variable::MakeOp(
      SquaredDistanceMatrix(a.value(), b.value()), {a, b}, [](Node& out) {
        const Matrix& g = out.grad;  // n x m
        const Matrix& av = out.parents[0]->value;
        const Matrix& bv = out.parents[1]->value;
        // d|a_i - b_j|^2 / da_i = 2 (a_i - b_j):
        //   dA = 2 (diag(rowsum g) A - G B);  dB = 2 (diag(colsum g) B - G^T A).
        if (NeedsGrad(out.parents[0])) {
          Matrix da = ScaleRows(av, RowSum(g));
          da -= gradgcl::MatMul(g, bv);
          da *= 2.0;
          out.parents[0]->AccumulateGrad(da);
        }
        if (NeedsGrad(out.parents[1])) {
          Matrix db = ScaleRows(bv, ColSum(g).Transposed());
          db -= MatMulTransA(g, av);
          db *= 2.0;
          out.parents[1]->AccumulateGrad(db);
        }
      });
}

Variable LogSumExpRows(const Variable& a, const Matrix& mask) {
  const Matrix& x = a.value();
  GRADGCL_CHECK(mask.rows() == x.rows() && mask.cols() == x.cols());
  Matrix out(x.rows(), 1);
  for (int i = 0; i < x.rows(); ++i) {
    double mx = -1e300;
    bool any = false;
    for (int j = 0; j < x.cols(); ++j) {
      if (mask(i, j) != 0.0) {
        mx = std::max(mx, x(i, j));
        any = true;
      }
    }
    GRADGCL_CHECK_MSG(any, "LogSumExpRows: a row masks out every entry");
    double z = 0.0;
    for (int j = 0; j < x.cols(); ++j) {
      if (mask(i, j) != 0.0) z += std::exp(x(i, j) - mx);
    }
    out(i, 0) = mx + std::log(z);
  }
  return Variable::MakeOp(std::move(out), {a}, [mask](Node& out_node) {
    if (!NeedsGrad(out_node.parents[0])) return;
    const Matrix& x = out_node.parents[0]->value;
    const Matrix& lse = out_node.value;  // n x 1
    const Matrix& g = out_node.grad;     // n x 1
    Matrix gx(x.rows(), x.cols(), 0.0);
    for (int i = 0; i < x.rows(); ++i) {
      for (int j = 0; j < x.cols(); ++j) {
        if (mask(i, j) != 0.0) {
          gx(i, j) = g(i, 0) * std::exp(x(i, j) - lse(i, 0));
        }
      }
    }
    out_node.parents[0]->AccumulateGrad(gx);
  });
}

Variable MaskedRowSoftmax(const Variable& a, const Matrix& mask) {
  const Matrix& x = a.value();
  GRADGCL_CHECK(mask.rows() == x.rows() && mask.cols() == x.cols());
  Matrix y(x.rows(), x.cols(), 0.0);
  for (int i = 0; i < x.rows(); ++i) {
    double mx = -1e300;
    bool any = false;
    for (int j = 0; j < x.cols(); ++j) {
      if (mask(i, j) != 0.0) {
        mx = std::max(mx, x(i, j));
        any = true;
      }
    }
    GRADGCL_CHECK_MSG(any, "MaskedRowSoftmax: a row masks out every entry");
    double z = 0.0;
    for (int j = 0; j < x.cols(); ++j) {
      if (mask(i, j) != 0.0) {
        y(i, j) = std::exp(x(i, j) - mx);
        z += y(i, j);
      }
    }
    const double inv = 1.0 / z;
    for (int j = 0; j < x.cols(); ++j) y(i, j) *= inv;
  }
  return Variable::MakeOp(std::move(y), {a}, [mask](Node& out) {
    if (!NeedsGrad(out.parents[0])) return;
    const Matrix& y = out.value;
    const Matrix& g = out.grad;
    Matrix gx(y.rows(), y.cols(), 0.0);
    for (int i = 0; i < y.rows(); ++i) {
      // d softmax: y ⊙ (g − <g, y>), restricted to the mask's support.
      double dot = 0.0;
      for (int j = 0; j < y.cols(); ++j) dot += g(i, j) * y(i, j);
      for (int j = 0; j < y.cols(); ++j) {
        if (mask(i, j) != 0.0) gx(i, j) = y(i, j) * (g(i, j) - dot);
      }
    }
    out.parents[0]->AccumulateGrad(gx);
  });
}

// The fused backward closures below replay the exact FP operation
// sequence of the unfused chains they replace (same kernels, same
// rounding points), so fused and unfused paths agree bit-for-bit —
// including across thread counts, since every kernel involved keeps
// reductions chunk-local. tests/pool_test.cc pins the equivalence
// with exact (not tolerance) comparisons.

Variable MatMulTransBScaled(const Variable& a, const Variable& b,
                            double scale) {
  return Variable::MakeOp(
      gradgcl::MatMulTransBScaled(a.value(), b.value(), scale), {a, b},
      [scale](Node& out) {
        // Unfused: ScalarMul feeds G * scale into the MatMulTransB
        // node, which then produces dA = (G s) B and dB = (G s)^T A.
        Matrix g = out.grad;
        g *= scale;
        if (NeedsGrad(out.parents[0])) {
          out.parents[0]->AccumulateGrad(
              gradgcl::MatMul(g, out.parents[1]->value));
        }
        if (NeedsGrad(out.parents[1])) {
          out.parents[1]->AccumulateGrad(
              MatMulTransA(g, out.parents[0]->value));
        }
      });
}

Variable CosineGram(const Variable& u, double inv_tau, Variable* normalized) {
  Variable un = RowNormalize(u);
  if (normalized != nullptr) *normalized = un;
  return MatMulTransBScaled(un, un, inv_tau);
}

Variable MaskedExpRowSum(const Variable& s, Variable* exp_out) {
  GRADGCL_CHECK(s.rows() == s.cols());
  Matrix e, rs;
  gradgcl::MaskedExpRowSum(s.value(), &e, &rs);
  Variable exp_s = Variable::MakeOp(std::move(e), {s}, [](Node& out) {
    if (!NeedsGrad(out.parents[0])) return;
    // d exp(s)/ds multiplied by the incoming grad; the stored diagonal
    // zeros reproduce the unfused mask path's G_ii * 0.0.
    out.parents[0]->AccumulateGrad(gradgcl::Hadamard(out.grad, out.value));
  });
  if (exp_out != nullptr) *exp_out = exp_s;
  return Variable::MakeOp(std::move(rs), {exp_s}, [](Node& out) {
    // Identical to the SumRows backward broadcast.
    if (!NeedsGrad(out.parents[0])) return;
    const Matrix& x = out.parents[0]->value;
    Matrix g = Matrix::Uninitialized(x.rows(), x.cols());
    for (int i = 0; i < x.rows(); ++i) {
      for (int j = 0; j < x.cols(); ++j) g(i, j) = out.grad(i, 0);
    }
    out.parents[0]->AccumulateGrad(g);
  });
}

Variable ScaleRowsMatMul(const Variable& a, const Variable& scale,
                         const Variable& b, double post) {
  GRADGCL_CHECK(scale.rows() == a.rows() && scale.cols() == 1);
  return Variable::MakeOp(
      ScaleRowsMatMulScaled(a.value(), scale.value(), b.value(), post),
      {a, scale, b}, [post](Node& out) {
        const Matrix& av = out.parents[0]->value;
        const Matrix& sv = out.parents[1]->value;
        const Matrix& bv = out.parents[2]->value;
        Matrix g = out.grad;
        g *= post;
        const bool need_a = NeedsGrad(out.parents[0]);
        const bool need_s = NeedsGrad(out.parents[1]);
        // Grad of the (unstored) scaled-rows intermediate, as the
        // unfused MatMul backward would compute it.
        Matrix ga;
        if (need_a || need_s) ga = gradgcl::MatMulTransB(g, bv);
        if (need_a) out.parents[0]->AccumulateGrad(ScaleRows(ga, sv));
        if (need_s) {
          Matrix gs(av.rows(), 1, 0.0);
          for (int i = 0; i < av.rows(); ++i) {
            double dot = 0.0;
            for (int j = 0; j < av.cols(); ++j) dot += ga(i, j) * av(i, j);
            gs(i, 0) = dot;
          }
          out.parents[1]->AccumulateGrad(gs);
        }
        if (NeedsGrad(out.parents[2])) {
          // Recomputing diag(s) a costs the same FP ops as the forward
          // ScaleRows did in the unfused path, so the bits match the
          // stored intermediate it replaces.
          out.parents[2]->AccumulateGrad(
              MatMulTransA(ScaleRows(av, sv), g));
        }
      });
}

Variable MatMulScaled(const Variable& a, const Variable& b, double post) {
  Matrix y = gradgcl::MatMul(a.value(), b.value());
  y *= post;
  return Variable::MakeOp(std::move(y), {a, b}, [post](Node& out) {
    Matrix g = out.grad;
    g *= post;
    if (NeedsGrad(out.parents[0])) {
      out.parents[0]->AccumulateGrad(
          gradgcl::MatMulTransB(g, out.parents[1]->value));
    }
    if (NeedsGrad(out.parents[1])) {
      out.parents[1]->AccumulateGrad(
          MatMulTransA(out.parents[0]->value, g));
    }
  });
}

Variable OffDiagSigmoid(const Variable& a) {
  return Variable::MakeOp(
      gradgcl::OffDiagSigmoid(a.value()), {a}, [](Node& out) {
        if (!NeedsGrad(out.parents[0])) return;
        const int n = out.value.rows();
        Matrix g = out.grad;
        for (int i = 0; i < n; ++i) {
          for (int j = 0; j < n; ++j) {
            if (i == j) {
              g(i, j) *= 0.0;  // the unfused mask's G_ii * 0.0
            } else {
              const double s = out.value(i, j);
              g(i, j) *= s * (1.0 - s);
            }
          }
        }
        out.parents[0]->AccumulateGrad(g);
      });
}

Variable LogSumExpOffDiag(const Variable& a) {
  const Matrix& x = a.value();
  GRADGCL_CHECK(x.rows() == x.cols());
  const int64_t n = x.rows();
  GRADGCL_CHECK_MSG(n >= 2, "LogSumExpOffDiag needs >= 2 rows");
  Matrix out = Matrix::Uninitialized(x.rows(), 1);
  const double* xdata = x.data();
  double* odata = out.data();
  // Row-local (hence thread-count-invariant), and the same j-ascending
  // max/sum order as LogSumExpRows under the off-diagonal mask.
  const int64_t grain = std::max<int64_t>(1, (int64_t{1} << 15) / n);
  // ~one exp + compare per masked element, per the parallel.h cost
  // model's transcendental weighting.
  ParallelFor(0, n, grain, /*cost_per_iter=*/16 * n,
              [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      const double* xrow = xdata + i * n;
      double mx = -1e300;
      for (int64_t j = 0; j < n; ++j) {
        if (j != i) mx = std::max(mx, xrow[j]);
      }
      double z = 0.0;
      for (int64_t j = 0; j < n; ++j) {
        if (j != i) z += std::exp(xrow[j] - mx);
      }
      odata[i] = mx + std::log(z);
    }
  });
  return Variable::MakeOp(std::move(out), {a}, [](Node& out_node) {
    if (!NeedsGrad(out_node.parents[0])) return;
    const Matrix& x = out_node.parents[0]->value;
    const Matrix& lse = out_node.value;  // n x 1
    const Matrix& g = out_node.grad;     // n x 1
    Matrix gx(x.rows(), x.cols(), 0.0);
    for (int i = 0; i < x.rows(); ++i) {
      for (int j = 0; j < x.cols(); ++j) {
        if (j != i) gx(i, j) = g(i, 0) * std::exp(x(i, j) - lse(i, 0));
      }
    }
    out_node.parents[0]->AccumulateGrad(gx);
  });
}

Variable AddRowBroadcast(const Variable& a, const Variable& row) {
  GRADGCL_CHECK(row.rows() == 1 && row.cols() == a.cols());
  return Variable::MakeOp(
      gradgcl::AddRowBroadcast(a.value(), row.value()), {a, row},
      [](Node& out) {
        if (NeedsGrad(out.parents[0])) out.parents[0]->AccumulateGrad(out.grad);
        if (NeedsGrad(out.parents[1])) {
          out.parents[1]->AccumulateGrad(ColSum(out.grad));
        }
      });
}

Variable ConcatRows(const Variable& a, const Variable& b) {
  GRADGCL_CHECK(a.cols() == b.cols());
  const int na = a.rows();
  return Variable::MakeOp(
      VStack(a.value(), b.value()), {a, b}, [na](Node& out) {
        if (NeedsGrad(out.parents[0])) {
          out.parents[0]->AccumulateGrad(out.grad.RowSlice(0, na));
        }
        if (NeedsGrad(out.parents[1])) {
          out.parents[1]->AccumulateGrad(
              out.grad.RowSlice(na, out.grad.rows()));
        }
      });
}

Variable SliceRows(const Variable& a, int begin, int end) {
  GRADGCL_CHECK(begin >= 0 && begin <= end && end <= a.rows());
  return Variable::MakeOp(
      a.value().RowSlice(begin, end), {a}, [begin, end](Node& out) {
        if (!NeedsGrad(out.parents[0])) return;
        const Matrix& x = out.parents[0]->value;
        Matrix g(x.rows(), x.cols(), 0.0);
        for (int i = begin; i < end; ++i) {
          for (int j = 0; j < x.cols(); ++j) g(i, j) = out.grad(i - begin, j);
        }
        out.parents[0]->AccumulateGrad(g);
      });
}

Variable GatherRows(const Variable& a, const std::vector<int>& indices) {
  return Variable::MakeOp(
      a.value().Gather(indices), {a}, [indices](Node& out) {
        if (!NeedsGrad(out.parents[0])) return;
        const Matrix& x = out.parents[0]->value;
        Matrix g(x.rows(), x.cols(), 0.0);
        for (size_t i = 0; i < indices.size(); ++i) {
          for (int j = 0; j < x.cols(); ++j) {
            g(indices[i], j) += out.grad(static_cast<int>(i), j);
          }
        }
        out.parents[0]->AccumulateGrad(g);
      });
}

Variable SegmentSum(const Variable& a, const std::vector<int>& segments,
                    int num_segments) {
  // Forward through the raw kernel so the tape-free serving path
  // (serve/session.cc) shares its bits by construction.
  return Variable::MakeOp(gradgcl::SegmentSum(a.value(), segments,
                                              num_segments),
                          {a}, [segments](Node& out_node) {
    if (!NeedsGrad(out_node.parents[0])) return;
    const Matrix& x = out_node.parents[0]->value;
    Matrix g(x.rows(), x.cols());
    for (int i = 0; i < x.rows(); ++i) {
      for (int j = 0; j < x.cols(); ++j) g(i, j) = out_node.grad(segments[i], j);
    }
    out_node.parents[0]->AccumulateGrad(g);
  });
}

Variable SegmentMean(const Variable& a, const std::vector<int>& segments,
                     int num_segments) {
  std::vector<double> counts(num_segments, 0.0);
  for (int s : segments) {
    GRADGCL_CHECK(s >= 0 && s < num_segments);
    counts[s] += 1.0;
  }
  return Variable::MakeOp(
      gradgcl::SegmentMean(a.value(), segments, num_segments), {a},
      [segments, counts](Node& out_node) {
        if (!NeedsGrad(out_node.parents[0])) return;
        const Matrix& x = out_node.parents[0]->value;
        Matrix g(x.rows(), x.cols());
        for (int i = 0; i < x.rows(); ++i) {
          const int s = segments[i];
          const double inv = 1.0 / counts[s];
          for (int j = 0; j < x.cols(); ++j) {
            g(i, j) = out_node.grad(s, j) * inv;
          }
        }
        out_node.parents[0]->AccumulateGrad(g);
      });
}

Variable SoftmaxCrossEntropy(const Variable& logits,
                             const std::vector<int>& labels) {
  const Matrix& z = logits.value();
  const int n = z.rows();
  GRADGCL_CHECK(static_cast<int>(labels.size()) == n && n > 0);
  const Matrix probs = RowSoftmax(z);
  double loss = 0.0;
  for (int i = 0; i < n; ++i) {
    const int y = labels[i];
    GRADGCL_CHECK(y >= 0 && y < z.cols());
    loss -= std::log(std::max(probs(i, y), 1e-300));
  }
  loss /= n;
  return Variable::MakeOp(
      Matrix(1, 1, loss), {logits}, [labels, probs](Node& out) {
        if (!NeedsGrad(out.parents[0])) return;
        Matrix g = probs;
        const int n = g.rows();
        for (int i = 0; i < n; ++i) g(i, labels[i]) -= 1.0;
        g *= out.grad(0, 0) / n;
        out.parents[0]->AccumulateGrad(g);
      });
}

Variable BinaryCrossEntropyWithLogits(const Variable& logits,
                                      const Matrix& targets) {
  const Matrix& z = logits.value();
  GRADGCL_CHECK(z.rows() == targets.rows() && z.cols() == targets.cols());
  GRADGCL_CHECK(z.size() > 0);
  double loss = 0.0;
  for (int i = 0; i < z.size(); ++i) {
    const double zi = z.at_flat(i);
    const double ti = targets.at_flat(i);
    // max(z,0) - z t + log(1 + exp(-|z|)) — stable for any z.
    loss += std::max(zi, 0.0) - zi * ti + std::log1p(std::exp(-std::abs(zi)));
  }
  loss /= z.size();
  return Variable::MakeOp(
      Matrix(1, 1, loss), {logits}, [targets](Node& out) {
        if (!NeedsGrad(out.parents[0])) return;
        const Matrix& z = out.parents[0]->value;
        Matrix g(z.rows(), z.cols());
        const double scale = out.grad(0, 0) / z.size();
        for (int i = 0; i < z.size(); ++i) {
          const double s = 1.0 / (1.0 + std::exp(-z.at_flat(i)));
          g.at_flat(i) = (s - targets.at_flat(i)) * scale;
        }
        out.parents[0]->AccumulateGrad(g);
      });
}

}  // namespace gradgcl::ag
