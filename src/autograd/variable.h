// Reverse-mode automatic differentiation on Matrix values.
//
// A Variable is a cheap handle (shared_ptr) to a tape node holding a
// value, an accumulated gradient, and a closure that propagates the
// node's gradient to its parents. Every op in autograd/ops.h builds a
// fresh node, so each forward pass constructs a new DAG; calling
// Backward() on a scalar output walks the DAG in reverse topological
// order. Parameter nodes (requires_grad = true, no parents) persist
// across steps and accumulate gradients until ZeroGrad().
//
// This mirrors the subset of torch.autograd the paper's training
// loops rely on, at laptop scale; gradcheck.h pins correctness of
// every op against central finite differences.

#ifndef GRADGCL_AUTOGRAD_VARIABLE_H_
#define GRADGCL_AUTOGRAD_VARIABLE_H_

#include <functional>
#include <memory>
#include <vector>

#include "tensor/matrix.h"

namespace gradgcl {

namespace internal {

// Tape node. Users interact with Variable, never with Node directly.
struct Node {
  Matrix value;
  Matrix grad;           // same shape as value once backward touches it
  bool requires_grad = false;
  bool grad_initialized = false;
  std::vector<std::shared_ptr<Node>> parents;
  // Propagates this->grad into the parents' grads.
  std::function<void(Node&)> backward_fn;

  // Adds `delta` into this node's gradient accumulator.
  void AccumulateGrad(const Matrix& delta);
};

}  // namespace internal

// Differentiable matrix value; see file comment.
class Variable {
 public:
  // Creates an empty (null) variable.
  Variable() = default;

  // Wraps a constant or parameter value. Parameters (weights that an
  // optimiser updates) pass requires_grad = true.
  explicit Variable(Matrix value, bool requires_grad = false);

  // --- Value and gradient access ------------------------------------------

  bool defined() const { return node_ != nullptr; }
  const Matrix& value() const;
  int rows() const { return value().rows(); }
  int cols() const { return value().cols(); }

  // Gradient accumulated by Backward(); zero matrix if untouched.
  const Matrix& grad() const;

  // Overwrites the accumulated gradient (shape-checked). Used by the
  // distributed trainer to install the all-reduced gradient before the
  // optimiser step.
  void set_grad(Matrix grad);

  // Overwrites the stored value, keeping the node identity (used by
  // optimisers so downstream graphs keep referring to the same node).
  void set_value(Matrix value);

  bool requires_grad() const;

  // Resets the accumulated gradient to zero.
  void ZeroGrad();

  // Detaches: returns a new constant Variable sharing this value but
  // cut off from the tape (no parents, requires_grad = false).
  Variable Detach() const;

  // Scalar convenience: value of a 1x1 variable.
  double scalar() const;

  // --- Graph construction (used by autograd/ops.cc) ------------------------

  // Builds an op node with the given output value, parents, and
  // backward closure. The closure receives the output node (with its
  // grad filled in) and must AccumulateGrad into each parent that
  // requires gradients.
  static Variable MakeOp(Matrix value,
                         std::vector<Variable> parents,
                         std::function<void(internal::Node&)> backward_fn);

  std::shared_ptr<internal::Node> node() const { return node_; }

 private:
  std::shared_ptr<internal::Node> node_;
};

// Runs reverse-mode accumulation from `loss`, which must be a 1x1
// scalar. Gradients accumulate into every reachable node with
// requires_grad (directly or through its descendants).
void Backward(const Variable& loss);

}  // namespace gradgcl

#endif  // GRADGCL_AUTOGRAD_VARIABLE_H_
