#include "autograd/gradcheck.h"

#include <cmath>
#include <cstdio>

namespace gradgcl::ag {

GradCheckResult CheckGradients(
    const std::function<Variable(const std::vector<Variable>&)>& forward,
    std::vector<Variable> inputs, double eps, double tol) {
  GradCheckResult result;

  // Analytic pass.
  for (Variable& v : inputs) v.ZeroGrad();
  Variable loss = forward(inputs);
  GRADGCL_CHECK_MSG(loss.value().size() == 1,
                    "CheckGradients needs a scalar loss");
  Backward(loss);
  std::vector<Matrix> analytic;
  analytic.reserve(inputs.size());
  for (const Variable& v : inputs) analytic.push_back(v.grad());

  // Numeric pass: central differences on every input entry.
  for (size_t k = 0; k < inputs.size(); ++k) {
    Matrix base = inputs[k].value();
    for (int idx = 0; idx < base.size(); ++idx) {
      Matrix plus = base;
      plus.at_flat(idx) += eps;
      inputs[k].set_value(plus);
      const double f_plus = forward(inputs).scalar();

      Matrix minus = base;
      minus.at_flat(idx) -= eps;
      inputs[k].set_value(minus);
      const double f_minus = forward(inputs).scalar();

      inputs[k].set_value(base);

      const double numeric = (f_plus - f_minus) / (2.0 * eps);
      const double err = std::abs(numeric - analytic[k].at_flat(idx));
      if (err > result.max_abs_error) {
        result.max_abs_error = err;
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "input %zu, flat index %d: analytic=%.8g numeric=%.8g",
                      k, idx, analytic[k].at_flat(idx), numeric);
        result.worst_entry = buf;
      }
      if (err > tol) result.ok = false;
    }
  }
  return result;
}

}  // namespace gradgcl::ag
