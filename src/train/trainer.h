// Self-supervised training loops shared by all backbone models.
//
// Models implement one of two small interfaces (graph-level, trained
// on shuffled mini-batches of graphs; node-level, trained full-graph)
// and the loops here own shuffling, optimisation, timing, and optional
// per-epoch callbacks (used by the Fig. 7 trajectory bench).

#ifndef GRADGCL_TRAIN_TRAINER_H_
#define GRADGCL_TRAIN_TRAINER_H_

#include <functional>
#include <vector>

#include "datasets/node_synthetic.h"
#include "graph/batch.h"
#include "nn/module.h"
#include "train/optimizer.h"
#include "train/scheduler.h"

namespace gradgcl {

// Hyperparameters of a training run.
struct TrainOptions {
  int epochs = 20;
  int batch_size = 64;   // graph-level only
  double lr = 0.01;
  double weight_decay = 0.0;
  LrSchedule schedule = LrSchedule::kConstant;
  uint64_t seed = 1;
};

// Per-epoch record.
struct EpochStats {
  int epoch = 0;
  double loss = 0.0;
  double seconds = 0.0;
};

// Interface of a graph-level self-supervised model (GraphCL, JOAO,
// SimGRACE, InfoGraph, MVGRL — with or without GradGCL).
class GraphSslModel : public Module {
 public:
  // Self-supervised loss on dataset[indices]; `rng` drives the model's
  // stochastic views (augmentations / perturbations).
  //
  // Gather-invariance contract: implementations may only touch
  // dataset[idx] for idx in `indices`, visiting them in `indices`
  // order (including rng consumption). Then BatchLoss(dataset, batch)
  // == BatchLoss(gathered, iota) bit-for-bit, which is what lets the
  // streaming path (TrainGraphSslStreamed over a GraphBatchSource)
  // train bit-identically to this in-RAM path.
  virtual Variable BatchLoss(const std::vector<Graph>& dataset,
                             const std::vector<int>& indices, Rng& rng) = 0;

  // Deterministic inference embeddings, one row per graph.
  virtual Matrix EmbedGraphs(const std::vector<Graph>& dataset) = 0;

  // Hook invoked after each optimiser step (JOAO's augmentation-
  // distribution update, BGRL's EMA, ...). Default: nothing.
  virtual void PostStep() {}
};

// Interface of a node-level self-supervised model (GRACE, GCA, BGRL,
// COSTA, SGCL, node-MVGRL).
class NodeSslModel : public Module {
 public:
  // Full-graph self-supervised loss for one epoch step.
  virtual Variable EpochLoss(const NodeDataset& dataset, Rng& rng) = 0;

  // Deterministic inference embeddings, one row per node.
  virtual Matrix EmbedNodes(const NodeDataset& dataset) = 0;

  virtual void PostStep() {}
};

// Trains a graph-level model with Adam over shuffled mini-batches.
// `on_epoch` (optional) observes the stats of each finished epoch.
std::vector<EpochStats> TrainGraphSsl(
    GraphSslModel& model, const std::vector<Graph>& dataset,
    const TrainOptions& options,
    const std::function<void(const EpochStats&)>& on_epoch = nullptr);

// Source of materialised mini-batches for the streaming training path
// — the trainer-facing face of the sharded on-disk pipeline
// (data/prefetch_reader.h implements it by mmap-reading shards on
// background threads). The trainer plans an epoch's batches up front
// (same MakeMiniBatches stream as the in-RAM loop), installs the plan
// with BeginEpoch, then consumes the batches in plan order.
class GraphBatchSource {
 public:
  virtual ~GraphBatchSource() = default;

  // Total graphs in the underlying dataset (batch plans index into
  // [0, num_graphs())).
  virtual int64_t num_graphs() const = 0;

  // Installs the mini-batch plan for the next epoch. Requires the
  // previous epoch to be fully consumed.
  virtual void BeginEpoch(const std::vector<std::vector<int>>& batches) = 0;

  // Produces the next planned batch: graphs[k] is the graph at the
  // plan's k-th index, so a batch pairs with indices {0, 1, ...} —
  // exactly what a gather-invariant BatchLoss expects. Returns false
  // on unrecoverable read failure (corrupt shard).
  virtual bool NextBatch(std::vector<Graph>* graphs) = 0;
};

// Streaming twin of TrainGraphSsl: same optimiser, same batch plan,
// same per-batch Rng streams — only the graphs arrive through `source`
// instead of a resident vector. With a gather-invariant model (see
// GraphSslModel::BatchLoss) and a source that reproduces the dataset's
// graphs bit-for-bit, the loss trajectory is bit-identical to
// TrainGraphSsl on the same seed, regardless of the source's reader
// thread count. Aborts on source read failure.
std::vector<EpochStats> TrainGraphSslStreamed(
    GraphSslModel& model, GraphBatchSource& source,
    const TrainOptions& options,
    const std::function<void(const EpochStats&)>& on_epoch = nullptr);

// Trains a node-level model with Adam, one full-graph step per epoch.
std::vector<EpochStats> TrainNodeSsl(
    NodeSslModel& model, const NodeDataset& dataset,
    const TrainOptions& options,
    const std::function<void(const EpochStats&)>& on_epoch = nullptr);

// Shuffled mini-batch index lists covering 0..n-1 (last batch may be
// smaller, but never smaller than 2 — singleton batches are folded
// into the previous one since contrastive losses need negatives).
std::vector<std::vector<int>> MakeMiniBatches(int n, int batch_size, Rng& rng);

// Seed of the per-batch Rng stream: a pure function of (run seed,
// epoch, batch index within the epoch's plan). Both graph trainers
// drive batch b of epoch e with Rng(BatchStreamSeed(seed, e, b)) —
// rather than one sequential stream — so any consumer that knows the
// plan can reproduce an arbitrary batch's randomness without replaying
// the batches before it. This is what lets the data-parallel trainer
// (src/distributed/) evaluate disjoint batches on different ranks
// bit-identically to this loop: no rank needs to know how much
// randomness the others consumed. SplitMix64-style avalanche mixing;
// the run-level Rng(seed) still drives MakeMiniBatches, so plans are
// unchanged by construction.
uint64_t BatchStreamSeed(uint64_t seed, int64_t epoch, int64_t batch);

}  // namespace gradgcl

#endif  // GRADGCL_TRAIN_TRAINER_H_
