// Self-supervised training loops shared by all backbone models.
//
// Models implement one of two small interfaces (graph-level, trained
// on shuffled mini-batches of graphs; node-level, trained full-graph)
// and the loops here own shuffling, optimisation, timing, and optional
// per-epoch callbacks (used by the Fig. 7 trajectory bench).

#ifndef GRADGCL_TRAIN_TRAINER_H_
#define GRADGCL_TRAIN_TRAINER_H_

#include <functional>
#include <vector>

#include "datasets/node_synthetic.h"
#include "graph/batch.h"
#include "nn/module.h"
#include "train/optimizer.h"
#include "train/scheduler.h"

namespace gradgcl {

// Hyperparameters of a training run.
struct TrainOptions {
  int epochs = 20;
  int batch_size = 64;   // graph-level only
  double lr = 0.01;
  double weight_decay = 0.0;
  LrSchedule schedule = LrSchedule::kConstant;
  uint64_t seed = 1;
};

// Per-epoch record.
struct EpochStats {
  int epoch = 0;
  double loss = 0.0;
  double seconds = 0.0;
};

// Interface of a graph-level self-supervised model (GraphCL, JOAO,
// SimGRACE, InfoGraph, MVGRL — with or without GradGCL).
class GraphSslModel : public Module {
 public:
  // Self-supervised loss on dataset[indices]; `rng` drives the model's
  // stochastic views (augmentations / perturbations).
  virtual Variable BatchLoss(const std::vector<Graph>& dataset,
                             const std::vector<int>& indices, Rng& rng) = 0;

  // Deterministic inference embeddings, one row per graph.
  virtual Matrix EmbedGraphs(const std::vector<Graph>& dataset) = 0;

  // Hook invoked after each optimiser step (JOAO's augmentation-
  // distribution update, BGRL's EMA, ...). Default: nothing.
  virtual void PostStep() {}
};

// Interface of a node-level self-supervised model (GRACE, GCA, BGRL,
// COSTA, SGCL, node-MVGRL).
class NodeSslModel : public Module {
 public:
  // Full-graph self-supervised loss for one epoch step.
  virtual Variable EpochLoss(const NodeDataset& dataset, Rng& rng) = 0;

  // Deterministic inference embeddings, one row per node.
  virtual Matrix EmbedNodes(const NodeDataset& dataset) = 0;

  virtual void PostStep() {}
};

// Trains a graph-level model with Adam over shuffled mini-batches.
// `on_epoch` (optional) observes the stats of each finished epoch.
std::vector<EpochStats> TrainGraphSsl(
    GraphSslModel& model, const std::vector<Graph>& dataset,
    const TrainOptions& options,
    const std::function<void(const EpochStats&)>& on_epoch = nullptr);

// Trains a node-level model with Adam, one full-graph step per epoch.
std::vector<EpochStats> TrainNodeSsl(
    NodeSslModel& model, const NodeDataset& dataset,
    const TrainOptions& options,
    const std::function<void(const EpochStats&)>& on_epoch = nullptr);

// Shuffled mini-batch index lists covering 0..n-1 (last batch may be
// smaller, but never smaller than 2 — singleton batches are folded
// into the previous one since contrastive losses need negatives).
std::vector<std::vector<int>> MakeMiniBatches(int n, int batch_size, Rng& rng);

}  // namespace gradgcl

#endif  // GRADGCL_TRAIN_TRAINER_H_
