#include "train/trainer.h"

#include <cmath>

#include "common/stopwatch.h"
#include "obs/collapse.h"
#include "obs/trace.h"
#include "tensor/pool.h"

namespace gradgcl {

namespace {

// L2 norm over all parameter gradients, accumulated serially in
// parameter order (deterministic; only computed when observability is
// on).
double ParameterGradNorm(const std::vector<Variable>& params) {
  double sum_sq = 0.0;
  for (const Variable& p : params) {
    const double n = p.grad().FrobeniusNorm();
    sum_sq += n * n;
  }
  return std::sqrt(sum_sq);
}

}  // namespace

std::vector<std::vector<int>> MakeMiniBatches(int n, int batch_size,
                                              Rng& rng) {
  GRADGCL_CHECK(n >= 2 && batch_size >= 2);
  std::vector<int> perm = rng.Permutation(n);
  std::vector<std::vector<int>> batches;
  for (int start = 0; start < n; start += batch_size) {
    const int end = std::min(n, start + batch_size);
    batches.emplace_back(perm.begin() + start, perm.begin() + end);
  }
  // Contrastive losses need >= 2 samples: fold a trailing singleton in.
  if (batches.size() >= 2 && batches.back().size() < 2) {
    batches[batches.size() - 2].push_back(batches.back()[0]);
    batches.pop_back();
  }
  return batches;
}

namespace {

// SplitMix64 finalizer (same constants as common/rng.cc's seeder).
uint64_t Mix64(uint64_t z) {
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

uint64_t BatchStreamSeed(uint64_t seed, int64_t epoch, int64_t batch) {
  // Fold each coordinate through a full avalanche round so adjacent
  // (epoch, batch) pairs land in statistically unrelated streams.
  uint64_t x = Mix64(seed);
  x = Mix64(x ^ static_cast<uint64_t>(epoch));
  x = Mix64(x ^ static_cast<uint64_t>(batch));
  return x;
}

std::vector<EpochStats> TrainGraphSsl(
    GraphSslModel& model, const std::vector<Graph>& dataset,
    const TrainOptions& options,
    const std::function<void(const EpochStats&)>& on_epoch) {
  GRADGCL_CHECK(dataset.size() >= 2);
  Adam optimizer(model.parameters(), options.lr, 0.9, 0.999, 1e-8,
                 options.weight_decay);
  Rng rng(options.seed);

  obs::CollapseMonitor& monitor = obs::CollapseMonitor::Instance();
  std::vector<EpochStats> history;
  history.reserve(options.epochs);
  int64_t global_step = 0;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    obs::TraceScope epoch_span("train/epoch");
    optimizer.set_lr(
        ScheduledLr(options.schedule, options.lr, epoch, options.epochs));
    Stopwatch watch;
    double epoch_loss = 0.0;
    int steps = 0;
    const std::vector<std::vector<int>> plan = MakeMiniBatches(
        static_cast<int>(dataset.size()), options.batch_size, rng);
    for (size_t b = 0; b < plan.size(); ++b) {
      obs::TraceScope step_span("train/step");
      Stopwatch step_watch;
      monitor.BeginStep(obs::StepContext{global_step, epoch});
      // Each batch gets its own derived Rng stream (see BatchStreamSeed)
      // so the distributed trainer can reproduce this loop with batches
      // spread across ranks.
      Rng batch_rng(BatchStreamSeed(options.seed, epoch,
                                    static_cast<int64_t>(b)));
      // Step-scoped pooling: every Matrix the forward/backward pass
      // allocates inside this scope recycles through the MatrixPool.
      // Parameters and optimizer state were created outside any scope
      // and stay heap-backed (tensor/pool.h).
      TapeScope tape;
      optimizer.ZeroGrad();
      Variable loss = model.BatchLoss(dataset, plan[b], batch_rng);
      Backward(loss);
      const double loss_value = loss.scalar();
      const double grad_norm =
          monitor.enabled() ? ParameterGradNorm(model.parameters()) : 0.0;
      optimizer.Step();
      model.PostStep();
      // Inside the tape so the monitor's temporaries recycle through
      // the pool.
      if (monitor.enabled()) {
        monitor.EndStep(loss_value, grad_norm, step_watch.ElapsedSeconds());
      }
      epoch_loss += loss_value;
      ++steps;
      ++global_step;
    }
    EpochStats stats;
    stats.epoch = epoch;
    stats.loss = steps > 0 ? epoch_loss / steps : 0.0;
    stats.seconds = watch.ElapsedSeconds();
    if (on_epoch) on_epoch(stats);
    history.push_back(stats);
  }
  return history;
}

std::vector<EpochStats> TrainGraphSslStreamed(
    GraphSslModel& model, GraphBatchSource& source,
    const TrainOptions& options,
    const std::function<void(const EpochStats&)>& on_epoch) {
  const int64_t n = source.num_graphs();
  GRADGCL_CHECK(n >= 2);
  Adam optimizer(model.parameters(), options.lr, 0.9, 0.999, 1e-8,
                 options.weight_decay);
  Rng rng(options.seed);

  obs::CollapseMonitor& monitor = obs::CollapseMonitor::Instance();
  std::vector<EpochStats> history;
  history.reserve(options.epochs);
  int64_t global_step = 0;
  // Reused across steps: the gathered batch and its identity index
  // list. BatchLoss(gathered, iota) is bit-equal to the in-RAM
  // BatchLoss(dataset, batch) by the gather-invariance contract.
  std::vector<Graph> gathered;
  std::vector<int> iota;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    obs::TraceScope epoch_span("train/epoch");
    optimizer.set_lr(
        ScheduledLr(options.schedule, options.lr, epoch, options.epochs));
    Stopwatch watch;
    double epoch_loss = 0.0;
    int steps = 0;
    // Identical plan-Rng consumption to TrainGraphSsl: the plan is the
    // same shuffled index stream the in-RAM loop would walk.
    const std::vector<std::vector<int>> plan = MakeMiniBatches(
        static_cast<int>(n), options.batch_size, rng);
    source.BeginEpoch(plan);
    for (size_t b = 0; b < plan.size(); ++b) {
      obs::TraceScope step_span("train/step");
      Stopwatch step_watch;
      GRADGCL_CHECK_MSG(source.NextBatch(&gathered),
                        "streaming batch source failed (corrupt shard?)");
      iota.resize(gathered.size());
      for (size_t k = 0; k < iota.size(); ++k) iota[k] = static_cast<int>(k);
      monitor.BeginStep(obs::StepContext{global_step, epoch});
      // Same per-batch stream derivation as TrainGraphSsl.
      Rng batch_rng(BatchStreamSeed(options.seed, epoch,
                                    static_cast<int64_t>(b)));
      TapeScope tape;  // step-scoped pooling, as in TrainGraphSsl
      optimizer.ZeroGrad();
      Variable loss = model.BatchLoss(gathered, iota, batch_rng);
      Backward(loss);
      const double loss_value = loss.scalar();
      const double grad_norm =
          monitor.enabled() ? ParameterGradNorm(model.parameters()) : 0.0;
      optimizer.Step();
      model.PostStep();
      if (monitor.enabled()) {
        monitor.EndStep(loss_value, grad_norm, step_watch.ElapsedSeconds());
      }
      epoch_loss += loss_value;
      ++steps;
      ++global_step;
    }
    EpochStats stats;
    stats.epoch = epoch;
    stats.loss = steps > 0 ? epoch_loss / steps : 0.0;
    stats.seconds = watch.ElapsedSeconds();
    if (on_epoch) on_epoch(stats);
    history.push_back(stats);
  }
  return history;
}

std::vector<EpochStats> TrainNodeSsl(
    NodeSslModel& model, const NodeDataset& dataset,
    const TrainOptions& options,
    const std::function<void(const EpochStats&)>& on_epoch) {
  Adam optimizer(model.parameters(), options.lr, 0.9, 0.999, 1e-8,
                 options.weight_decay);
  Rng rng(options.seed);

  obs::CollapseMonitor& monitor = obs::CollapseMonitor::Instance();
  std::vector<EpochStats> history;
  history.reserve(options.epochs);
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    optimizer.set_lr(
        ScheduledLr(options.schedule, options.lr, epoch, options.epochs));
    Stopwatch watch;
    EpochStats stats;
    {
      obs::TraceScope step_span("train/step");
      monitor.BeginStep(obs::StepContext{epoch, epoch});
      TapeScope tape;  // step-scoped pooling, as in TrainGraphSsl
      optimizer.ZeroGrad();
      Variable loss = model.EpochLoss(dataset, rng);
      Backward(loss);
      stats.loss = loss.scalar();
      const double grad_norm =
          monitor.enabled() ? ParameterGradNorm(model.parameters()) : 0.0;
      optimizer.Step();
      model.PostStep();
      if (monitor.enabled()) {
        monitor.EndStep(stats.loss, grad_norm, watch.ElapsedSeconds());
      }
    }
    stats.epoch = epoch;
    stats.seconds = watch.ElapsedSeconds();
    if (on_epoch) on_epoch(stats);
    history.push_back(stats);
  }
  return history;
}

}  // namespace gradgcl
