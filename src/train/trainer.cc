#include "train/trainer.h"

#include "common/stopwatch.h"
#include "tensor/pool.h"

namespace gradgcl {

std::vector<std::vector<int>> MakeMiniBatches(int n, int batch_size,
                                              Rng& rng) {
  GRADGCL_CHECK(n >= 2 && batch_size >= 2);
  std::vector<int> perm = rng.Permutation(n);
  std::vector<std::vector<int>> batches;
  for (int start = 0; start < n; start += batch_size) {
    const int end = std::min(n, start + batch_size);
    batches.emplace_back(perm.begin() + start, perm.begin() + end);
  }
  // Contrastive losses need >= 2 samples: fold a trailing singleton in.
  if (batches.size() >= 2 && batches.back().size() < 2) {
    batches[batches.size() - 2].push_back(batches.back()[0]);
    batches.pop_back();
  }
  return batches;
}

std::vector<EpochStats> TrainGraphSsl(
    GraphSslModel& model, const std::vector<Graph>& dataset,
    const TrainOptions& options,
    const std::function<void(const EpochStats&)>& on_epoch) {
  GRADGCL_CHECK(dataset.size() >= 2);
  Adam optimizer(model.parameters(), options.lr, 0.9, 0.999, 1e-8,
                 options.weight_decay);
  Rng rng(options.seed);

  std::vector<EpochStats> history;
  history.reserve(options.epochs);
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    optimizer.set_lr(
        ScheduledLr(options.schedule, options.lr, epoch, options.epochs));
    Stopwatch watch;
    double epoch_loss = 0.0;
    int steps = 0;
    for (const std::vector<int>& batch : MakeMiniBatches(
             static_cast<int>(dataset.size()), options.batch_size, rng)) {
      // Step-scoped pooling: every Matrix the forward/backward pass
      // allocates inside this scope recycles through the MatrixPool.
      // Parameters and optimizer state were created outside any scope
      // and stay heap-backed (tensor/pool.h).
      TapeScope tape;
      optimizer.ZeroGrad();
      Variable loss = model.BatchLoss(dataset, batch, rng);
      Backward(loss);
      optimizer.Step();
      model.PostStep();
      epoch_loss += loss.scalar();
      ++steps;
    }
    EpochStats stats;
    stats.epoch = epoch;
    stats.loss = steps > 0 ? epoch_loss / steps : 0.0;
    stats.seconds = watch.ElapsedSeconds();
    if (on_epoch) on_epoch(stats);
    history.push_back(stats);
  }
  return history;
}

std::vector<EpochStats> TrainNodeSsl(
    NodeSslModel& model, const NodeDataset& dataset,
    const TrainOptions& options,
    const std::function<void(const EpochStats&)>& on_epoch) {
  Adam optimizer(model.parameters(), options.lr, 0.9, 0.999, 1e-8,
                 options.weight_decay);
  Rng rng(options.seed);

  std::vector<EpochStats> history;
  history.reserve(options.epochs);
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    optimizer.set_lr(
        ScheduledLr(options.schedule, options.lr, epoch, options.epochs));
    Stopwatch watch;
    EpochStats stats;
    {
      TapeScope tape;  // step-scoped pooling, as in TrainGraphSsl
      optimizer.ZeroGrad();
      Variable loss = model.EpochLoss(dataset, rng);
      Backward(loss);
      optimizer.Step();
      model.PostStep();
      stats.loss = loss.scalar();
    }
    stats.epoch = epoch;
    stats.seconds = watch.ElapsedSeconds();
    if (on_epoch) on_epoch(stats);
    history.push_back(stats);
  }
  return history;
}

}  // namespace gradgcl
