#include "train/optimizer.h"

#include <cmath>

#include "tensor/simd.h"

namespace gradgcl {

Optimizer::Optimizer(std::vector<Variable> params)
    : params_(std::move(params)) {
  for (const Variable& p : params_) {
    GRADGCL_CHECK_MSG(p.defined() && p.requires_grad(),
                      "optimizer parameter must require gradients");
  }
}

void Optimizer::ZeroGrad() {
  for (Variable& p : params_) p.ZeroGrad();
}

Sgd::Sgd(std::vector<Variable> params, double lr, double momentum,
         double weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  GRADGCL_CHECK(lr > 0.0 && momentum >= 0.0 && momentum < 1.0);
  GRADGCL_CHECK(weight_decay >= 0.0);
  velocity_.reserve(params_.size());
  for (const Variable& p : params_) {
    velocity_.push_back(Matrix::Zeros(p.rows(), p.cols()));
  }
}

void Sgd::Step() {
  for (size_t k = 0; k < params_.size(); ++k) {
    Variable& p = params_[k];
    Matrix update = p.grad();
    if (weight_decay_ > 0.0) {
      Matrix wd = p.value();
      wd *= weight_decay_;
      update += wd;
    }
    if (momentum_ > 0.0) {
      velocity_[k] *= momentum_;
      velocity_[k] += update;
      update = velocity_[k];
    }
    Matrix value = p.value();
    update *= lr_;
    value -= update;
    p.set_value(std::move(value));
  }
}

Adam::Adam(std::vector<Variable> params, double lr, double beta1, double beta2,
           double eps, double weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  GRADGCL_CHECK(lr > 0.0);
  GRADGCL_CHECK(beta1 >= 0.0 && beta1 < 1.0 && beta2 >= 0.0 && beta2 < 1.0);
  GRADGCL_CHECK(eps > 0.0 && weight_decay >= 0.0);
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Variable& p : params_) {
    m_.push_back(Matrix::Zeros(p.rows(), p.cols()));
    v_.push_back(Matrix::Zeros(p.rows(), p.cols()));
  }
}

void Adam::RestoreState(std::vector<Matrix> m, std::vector<Matrix> v, int t) {
  GRADGCL_CHECK(t >= 0);
  GRADGCL_CHECK(m.size() == params_.size() && v.size() == params_.size());
  for (size_t k = 0; k < params_.size(); ++k) {
    GRADGCL_CHECK(m[k].rows() == params_[k].rows() &&
                  m[k].cols() == params_[k].cols());
    GRADGCL_CHECK(v[k].rows() == params_[k].rows() &&
                  v[k].cols() == params_[k].cols());
  }
  m_ = std::move(m);
  v_ = std::move(v);
  t_ = t;
}

void Adam::Step() {
  ++t_;
  // The per-element update runs on the active SIMD table; the kernel is
  // mul/add/div/sqrt only (no FMA), so the trajectory is bit-identical
  // whether SIMD is on or off.
  simd::AdamArgs args;
  args.beta1 = beta1_;
  args.beta2 = beta2_;
  args.bc1 = 1.0 - std::pow(beta1_, t_);
  args.bc2 = 1.0 - std::pow(beta2_, t_);
  args.lr = lr_;
  args.eps = eps_;
  args.weight_decay = weight_decay_;
  const simd::KernelTable& kt = simd::Active();
  for (size_t k = 0; k < params_.size(); ++k) {
    Variable& p = params_[k];
    const Matrix& g = p.grad();
    Matrix value = p.value();
    kt.adam(value.data(), m_[k].data(), v_[k].data(), g.data(), value.size(),
            args);
    p.set_value(std::move(value));
  }
}

}  // namespace gradgcl
