#include "train/scheduler.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace gradgcl {

double ScheduledLr(LrSchedule schedule, double base_lr, int epoch,
                   int total_epochs) {
  GRADGCL_CHECK(base_lr > 0.0 && total_epochs > 0);
  GRADGCL_CHECK(epoch >= 0 && epoch < total_epochs);
  switch (schedule) {
    case LrSchedule::kConstant:
      return base_lr;
    case LrSchedule::kStep: {
      const int third = std::max(1, total_epochs / 3);
      return base_lr * std::pow(0.5, epoch / third);
    }
    case LrSchedule::kCosine: {
      const double progress =
          total_epochs > 1
              ? static_cast<double>(epoch) / (total_epochs - 1)
              : 0.0;
      return base_lr * 0.5 * (1.0 + std::cos(M_PI * progress));
    }
    case LrSchedule::kWarmupCosine: {
      const int warmup = std::max(1, total_epochs / 10);
      if (epoch < warmup) {
        return base_lr * (epoch + 1.0) / warmup;
      }
      const double progress =
          total_epochs - 1 > warmup
              ? static_cast<double>(epoch - warmup) /
                    (total_epochs - 1 - warmup)
              : 1.0;
      return base_lr * 0.5 * (1.0 + std::cos(M_PI * progress));
    }
  }
  GRADGCL_CHECK_MSG(false, "unknown LrSchedule");
  return base_lr;
}

}  // namespace gradgcl
