// Learning-rate schedules. A schedule maps (epoch, total_epochs,
// base_lr) to the epoch's learning rate; the trainer applies it before
// each epoch when TrainOptions::schedule is set.

#ifndef GRADGCL_TRAIN_SCHEDULER_H_
#define GRADGCL_TRAIN_SCHEDULER_H_

namespace gradgcl {

// Available schedules.
enum class LrSchedule {
  kConstant,  // base_lr throughout
  kStep,      // base_lr halved every 1/3 of training
  kCosine,    // cosine annealing from base_lr to ~0
  kWarmupCosine,  // linear warmup over the first 10%, then cosine
};

// The learning rate for `epoch` of `total_epochs` under `schedule`.
double ScheduledLr(LrSchedule schedule, double base_lr, int epoch,
                   int total_epochs);

}  // namespace gradgcl

#endif  // GRADGCL_TRAIN_SCHEDULER_H_
