// First-order optimisers over parameter Variables: SGD (+momentum,
// weight decay) and Adam. Parameters keep their node identity across
// steps (Variable::set_value), so model forward passes built after a
// step see the updated weights.

#ifndef GRADGCL_TRAIN_OPTIMIZER_H_
#define GRADGCL_TRAIN_OPTIMIZER_H_

#include <vector>

#include "autograd/variable.h"

namespace gradgcl {

// Interface shared by all optimisers.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  // Applies one update from the accumulated gradients.
  virtual void Step() = 0;

  // Changes the learning rate (used by LR schedules).
  virtual void set_lr(double lr) = 0;
  virtual double lr() const = 0;

  // Zeroes all parameter gradients (call before each forward pass).
  void ZeroGrad();

 protected:
  explicit Optimizer(std::vector<Variable> params);

  std::vector<Variable> params_;
};

// Stochastic gradient descent with optional momentum and L2 weight decay.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Variable> params, double lr, double momentum = 0.0,
      double weight_decay = 0.0);

  void Step() override;

  void set_lr(double lr) override { lr_ = lr; }
  double lr() const override { return lr_; }

 private:
  double lr_;
  double momentum_;
  double weight_decay_;
  std::vector<Matrix> velocity_;
};

// Adam (Kingma & Ba) with optional decoupled L2 weight decay.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Variable> params, double lr = 1e-3, double beta1 = 0.9,
       double beta2 = 0.999, double eps = 1e-8, double weight_decay = 0.0);

  void Step() override;

  void set_lr(double lr) override { lr_ = lr; }
  double lr() const override { return lr_; }

  // --- State access for checkpoint/resume (src/distributed/) --------------
  //
  // The moment estimates and step count are the optimiser's complete
  // mutable state: restoring them into a fresh Adam over the same
  // parameters continues the trajectory bit-exactly.
  int step_count() const { return t_; }
  const std::vector<Matrix>& first_moments() const { return m_; }
  const std::vector<Matrix>& second_moments() const { return v_; }

  // Restores moments + step count. Shapes must match the parameters
  // this optimiser was built over.
  void RestoreState(std::vector<Matrix> m, std::vector<Matrix> v, int t);

 private:
  double lr_;
  double beta1_;
  double beta2_;
  double eps_;
  double weight_decay_;
  int t_ = 0;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
};

}  // namespace gradgcl

#endif  // GRADGCL_TRAIN_OPTIMIZER_H_
