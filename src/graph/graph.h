// Attributed graph G = (V, X, A) as defined in the paper's Sec. II-B:
// node set, node-attribute matrix X ∈ R^{|V| x d}, and adjacency.
//
// Graphs in this library are small (10s–100s of nodes), undirected and
// unweighted; edges are stored once as (u, v) pairs with u != v. The
// adjacency operators GNNs need (Â = D^{-1/2}(A + I)D^{-1/2} for GCN,
// A + I for GIN-style sum aggregation) are built on demand as sparse
// matrices.

#ifndef GRADGCL_GRAPH_GRAPH_H_
#define GRADGCL_GRAPH_GRAPH_H_

#include <utility>
#include <vector>

#include "tensor/matrix.h"
#include "tensor/sparse.h"

namespace gradgcl {

// Undirected attributed graph with an optional integer class label.
struct Graph {
  int num_nodes = 0;
  // Undirected edges (u, v), each stored once, u != v, no duplicates.
  std::vector<std::pair<int, int>> edges;
  // Node attributes, num_nodes x feature_dim.
  Matrix features;
  // Class label for supervised probes; -1 if unlabeled.
  int label = -1;

  int num_edges() const { return static_cast<int>(edges.size()); }
  int feature_dim() const { return features.cols(); }
};

// Validates structural invariants (indices in range, no self loops,
// feature row count). Aborts on violation; call after construction of
// hand-built graphs.
void ValidateGraph(const Graph& g);

// Per-node degrees.
std::vector<int> Degrees(const Graph& g);

// Adjacency lists in CSR form (both directions of each edge).
struct CsrAdjacency {
  std::vector<int> offsets;    // size num_nodes + 1
  std::vector<int> neighbors;  // size 2 * num_edges
};
CsrAdjacency BuildCsr(const Graph& g);

// Symmetrically normalised adjacency with self loops:
//   Â = D~^{-1/2} (A + I) D~^{-1/2}  — the GCN propagation operator.
SparseMatrix NormalizedAdjacency(const Graph& g);

// A + I as a sparse operator (GIN-style sum aggregation).
SparseMatrix AdjacencyWithSelfLoops(const Graph& g);

// Plain A as a sparse operator.
SparseMatrix Adjacency(const Graph& g);

// Whether (u, v) or (v, u) appears in g.edges. O(E).
bool HasEdge(const Graph& g, int u, int v);

// Number of connected components (union-find).
int CountConnectedComponents(const Graph& g);

// Returns the induced subgraph on `keep` (node ids remapped to
// 0..keep.size()-1 in the order given). Features and label carried over.
Graph InducedSubgraph(const Graph& g, const std::vector<int>& keep);

}  // namespace gradgcl

#endif  // GRADGCL_GRAPH_GRAPH_H_
