#include "graph/stats.h"

#include <cstdio>
#include <set>

namespace gradgcl {

DatasetStats ComputeStats(const std::vector<Graph>& graphs) {
  DatasetStats stats;
  stats.num_graphs = static_cast<int>(graphs.size());
  if (graphs.empty()) return stats;

  std::set<int> classes;
  double nodes = 0.0, edges = 0.0, degree = 0.0;
  for (const Graph& g : graphs) {
    if (g.label >= 0) classes.insert(g.label);
    nodes += g.num_nodes;
    edges += g.num_edges();
    if (g.num_nodes > 0) degree += 2.0 * g.num_edges() / g.num_nodes;
  }
  stats.num_classes = static_cast<int>(classes.size());
  stats.avg_nodes = nodes / graphs.size();
  stats.avg_edges = edges / graphs.size();
  stats.avg_degree = degree / graphs.size();
  stats.feature_dim = graphs[0].feature_dim();
  return stats;
}

std::string FormatStatsRow(const std::string& name,
                           const std::string& category,
                           const DatasetStats& stats) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-14s %-16s %8d %8d %10.2f %10.2f %8d",
                name.c_str(), category.c_str(), stats.num_graphs,
                stats.num_classes, stats.avg_nodes, stats.avg_edges,
                stats.feature_dim);
  return buf;
}

}  // namespace gradgcl
