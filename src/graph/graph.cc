#include "graph/graph.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace gradgcl {

void ValidateGraph(const Graph& g) {
  GRADGCL_CHECK(g.num_nodes >= 0);
  GRADGCL_CHECK_MSG(g.features.rows() == g.num_nodes,
                    "feature row count != num_nodes");
  for (const auto& [u, v] : g.edges) {
    GRADGCL_CHECK_MSG(u >= 0 && u < g.num_nodes && v >= 0 && v < g.num_nodes,
                      "edge endpoint out of range");
    GRADGCL_CHECK_MSG(u != v, "self loop in edge list");
  }
}

std::vector<int> Degrees(const Graph& g) {
  std::vector<int> deg(g.num_nodes, 0);
  for (const auto& [u, v] : g.edges) {
    ++deg[u];
    ++deg[v];
  }
  return deg;
}

CsrAdjacency BuildCsr(const Graph& g) {
  CsrAdjacency csr;
  csr.offsets.assign(g.num_nodes + 1, 0);
  for (const auto& [u, v] : g.edges) {
    ++csr.offsets[u + 1];
    ++csr.offsets[v + 1];
  }
  for (int i = 0; i < g.num_nodes; ++i) csr.offsets[i + 1] += csr.offsets[i];
  csr.neighbors.resize(2 * g.edges.size());
  std::vector<int> cursor(csr.offsets.begin(), csr.offsets.end() - 1);
  for (const auto& [u, v] : g.edges) {
    csr.neighbors[cursor[u]++] = v;
    csr.neighbors[cursor[v]++] = u;
  }
  return csr;
}

SparseMatrix NormalizedAdjacency(const Graph& g) {
  std::vector<int> deg = Degrees(g);
  std::vector<double> inv_sqrt(g.num_nodes);
  for (int i = 0; i < g.num_nodes; ++i) {
    inv_sqrt[i] = 1.0 / std::sqrt(static_cast<double>(deg[i]) + 1.0);
  }
  std::vector<Triplet> triplets;
  triplets.reserve(2 * g.edges.size() + g.num_nodes);
  for (int i = 0; i < g.num_nodes; ++i) {
    triplets.push_back({i, i, inv_sqrt[i] * inv_sqrt[i]});
  }
  for (const auto& [u, v] : g.edges) {
    const double w = inv_sqrt[u] * inv_sqrt[v];
    triplets.push_back({u, v, w});
    triplets.push_back({v, u, w});
  }
  return SparseMatrix(g.num_nodes, g.num_nodes, std::move(triplets));
}

SparseMatrix AdjacencyWithSelfLoops(const Graph& g) {
  std::vector<Triplet> triplets;
  triplets.reserve(2 * g.edges.size() + g.num_nodes);
  for (int i = 0; i < g.num_nodes; ++i) triplets.push_back({i, i, 1.0});
  for (const auto& [u, v] : g.edges) {
    triplets.push_back({u, v, 1.0});
    triplets.push_back({v, u, 1.0});
  }
  return SparseMatrix(g.num_nodes, g.num_nodes, std::move(triplets));
}

SparseMatrix Adjacency(const Graph& g) {
  std::vector<Triplet> triplets;
  triplets.reserve(2 * g.edges.size());
  for (const auto& [u, v] : g.edges) {
    triplets.push_back({u, v, 1.0});
    triplets.push_back({v, u, 1.0});
  }
  return SparseMatrix(g.num_nodes, g.num_nodes, std::move(triplets));
}

bool HasEdge(const Graph& g, int u, int v) {
  for (const auto& [a, b] : g.edges) {
    if ((a == u && b == v) || (a == v && b == u)) return true;
  }
  return false;
}

namespace {

int FindRoot(std::vector<int>& parent, int x) {
  while (parent[x] != x) {
    parent[x] = parent[parent[x]];
    x = parent[x];
  }
  return x;
}

}  // namespace

int CountConnectedComponents(const Graph& g) {
  std::vector<int> parent(g.num_nodes);
  std::iota(parent.begin(), parent.end(), 0);
  for (const auto& [u, v] : g.edges) {
    const int ru = FindRoot(parent, u);
    const int rv = FindRoot(parent, v);
    if (ru != rv) parent[ru] = rv;
  }
  int components = 0;
  for (int i = 0; i < g.num_nodes; ++i) {
    if (FindRoot(parent, i) == i) ++components;
  }
  return components;
}

Graph InducedSubgraph(const Graph& g, const std::vector<int>& keep) {
  std::vector<int> remap(g.num_nodes, -1);
  for (size_t i = 0; i < keep.size(); ++i) {
    GRADGCL_CHECK(keep[i] >= 0 && keep[i] < g.num_nodes);
    GRADGCL_CHECK_MSG(remap[keep[i]] == -1, "duplicate node in keep list");
    remap[keep[i]] = static_cast<int>(i);
  }
  Graph sub;
  sub.num_nodes = static_cast<int>(keep.size());
  sub.label = g.label;
  sub.features = g.features.Gather(keep);
  for (const auto& [u, v] : g.edges) {
    if (remap[u] >= 0 && remap[v] >= 0) {
      sub.edges.emplace_back(remap[u], remap[v]);
    }
  }
  return sub;
}

}  // namespace gradgcl
