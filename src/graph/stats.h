// Dataset statistics, used to regenerate the paper's Tables I–III from
// the synthetic datasets (number of graphs, classes, average node and
// edge counts, average degree).

#ifndef GRADGCL_GRAPH_STATS_H_
#define GRADGCL_GRAPH_STATS_H_

#include <string>
#include <vector>

#include "graph/graph.h"

namespace gradgcl {

// Aggregate statistics of a collection of graphs.
struct DatasetStats {
  int num_graphs = 0;
  int num_classes = 0;
  double avg_nodes = 0.0;
  double avg_edges = 0.0;
  double avg_degree = 0.0;
  int feature_dim = 0;
};

// Computes statistics over `graphs`. Classes are counted as the number
// of distinct non-negative labels.
DatasetStats ComputeStats(const std::vector<Graph>& graphs);

// Renders one table row: name, category, stats — the layout used by
// the Table I/III benches.
std::string FormatStatsRow(const std::string& name,
                           const std::string& category,
                           const DatasetStats& stats);

}  // namespace gradgcl

#endif  // GRADGCL_GRAPH_STATS_H_
