#include "graph/diffusion.h"

#include <cmath>

#include "tensor/linalg.h"
#include "tensor/ops.h"

namespace gradgcl {

Matrix PprDiffusion(const Graph& g, double alpha) {
  GRADGCL_CHECK(alpha > 0.0 && alpha < 1.0);
  const int n = g.num_nodes;
  // Â = D~^{-1/2} (A + I) D~^{-1/2} densified (graphs are small here).
  const Matrix a_hat = NormalizedAdjacency(g).ToDense();
  // (I − (1−α) Â) S = α I.
  Matrix system = Matrix::Identity(n);
  system -= (1.0 - alpha) * a_hat;
  Matrix rhs = Matrix::Identity(n);
  rhs *= alpha;
  return SolveLinear(system, rhs);
}

SparseMatrix SparsifyDiffusion(const Matrix& diffusion, double threshold) {
  const int n = diffusion.rows();
  GRADGCL_CHECK(diffusion.cols() == n);
  std::vector<Triplet> triplets;
  std::vector<double> row_sums(n, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      const double v = diffusion(i, j);
      if (i == j || v >= threshold) {
        triplets.push_back({i, j, v});
        row_sums[i] += v;
      }
    }
  }
  for (Triplet& t : triplets) {
    if (row_sums[t.row] > 0.0) t.value /= row_sums[t.row];
  }
  return SparseMatrix(n, n, std::move(triplets));
}

}  // namespace gradgcl
