#include "graph/batch.h"

#include <cmath>

namespace gradgcl {

namespace {

GraphBatch MakeBatchImpl(const std::vector<const Graph*>& graphs) {
  GRADGCL_CHECK_MSG(!graphs.empty(), "cannot batch zero graphs");
  const int feature_dim = graphs[0]->feature_dim();
  int total_nodes = 0;
  int total_edges = 0;
  for (const Graph* g : graphs) {
    GRADGCL_CHECK_MSG(g->feature_dim() == feature_dim,
                      "feature_dim mismatch across batch");
    total_nodes += g->num_nodes;
    total_edges += g->num_edges();
  }

  GraphBatch batch;
  batch.num_graphs = static_cast<int>(graphs.size());
  batch.total_nodes = total_nodes;
  batch.features = Matrix(total_nodes, feature_dim);
  batch.segments.resize(total_nodes);
  batch.labels.reserve(graphs.size());

  std::vector<Triplet> norm_triplets;
  std::vector<Triplet> self_triplets;
  norm_triplets.reserve(2 * total_edges + total_nodes);
  self_triplets.reserve(2 * total_edges + total_nodes);

  int offset = 0;
  for (size_t k = 0; k < graphs.size(); ++k) {
    const Graph& g = *graphs[k];
    batch.labels.push_back(g.label);
    for (int i = 0; i < g.num_nodes; ++i) {
      batch.segments[offset + i] = static_cast<int>(k);
      for (int j = 0; j < feature_dim; ++j) {
        batch.features(offset + i, j) = g.features(i, j);
      }
    }
    std::vector<int> deg(g.num_nodes, 0);
    for (const auto& [u, v] : g.edges) {
      ++deg[u];
      ++deg[v];
    }
    for (int i = 0; i < g.num_nodes; ++i) {
      const double inv = 1.0 / (static_cast<double>(deg[i]) + 1.0);
      norm_triplets.push_back({offset + i, offset + i, inv});
      self_triplets.push_back({offset + i, offset + i, 1.0});
    }
    for (const auto& [u, v] : g.edges) {
      const double w =
          1.0 / std::sqrt((deg[u] + 1.0)) / std::sqrt((deg[v] + 1.0));
      norm_triplets.push_back({offset + u, offset + v, w});
      norm_triplets.push_back({offset + v, offset + u, w});
      self_triplets.push_back({offset + u, offset + v, 1.0});
      self_triplets.push_back({offset + v, offset + u, 1.0});
    }
    offset += g.num_nodes;
  }

  batch.norm_adj =
      SparseMatrix(total_nodes, total_nodes, std::move(norm_triplets));
  batch.adj_self =
      SparseMatrix(total_nodes, total_nodes, std::move(self_triplets));
  return batch;
}

}  // namespace

GraphBatch MakeBatch(const std::vector<Graph>& graphs) {
  std::vector<const Graph*> ptrs;
  ptrs.reserve(graphs.size());
  for (const Graph& g : graphs) ptrs.push_back(&g);
  return MakeBatchImpl(ptrs);
}

GraphBatch MakeBatch(const std::vector<Graph>& graphs,
                     const std::vector<int>& indices) {
  std::vector<const Graph*> ptrs;
  ptrs.reserve(indices.size());
  for (int idx : indices) {
    GRADGCL_CHECK(idx >= 0 && idx < static_cast<int>(graphs.size()));
    ptrs.push_back(&graphs[idx]);
  }
  return MakeBatchImpl(ptrs);
}

GraphBatch MakeBatch(const std::vector<const Graph*>& graphs) {
  for (const Graph* g : graphs) GRADGCL_CHECK(g != nullptr);
  return MakeBatchImpl(graphs);
}

}  // namespace gradgcl
