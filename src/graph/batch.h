// Mini-batching of graphs by disjoint union, the standard trick for
// graph-level GNN training: node features are stacked, the adjacency
// operator becomes block-diagonal (still sparse), and a segment vector
// maps each node to its source graph for readout.

#ifndef GRADGCL_GRAPH_BATCH_H_
#define GRADGCL_GRAPH_BATCH_H_

#include <vector>

#include "graph/graph.h"

namespace gradgcl {

// A disjoint union of graphs, ready for one GNN forward pass.
struct GraphBatch {
  // Stacked node features, total_nodes x feature_dim.
  Matrix features;
  // Block-diagonal GCN operator D~^{-1/2}(A+I)D~^{-1/2}.
  SparseMatrix norm_adj;
  // Block-diagonal A + I (GIN-style aggregation).
  SparseMatrix adj_self;
  // segments[i] = index of the graph that node i belongs to.
  std::vector<int> segments;
  int num_graphs = 0;
  int total_nodes = 0;
  // Labels of the batched graphs (label of graph k at position k).
  std::vector<int> labels;
};

// Builds the disjoint-union batch. All graphs must share feature_dim.
GraphBatch MakeBatch(const std::vector<Graph>& graphs);

// Builds a batch from the subset graphs[indices[k]].
GraphBatch MakeBatch(const std::vector<Graph>& graphs,
                     const std::vector<int>& indices);

// Builds a batch from non-owning pointers (no nulls). Lets callers that
// gather graphs from several sources (the serving micro-batcher
// coalescing concurrent requests) batch without copying each Graph.
GraphBatch MakeBatch(const std::vector<const Graph*>& graphs);

}  // namespace gradgcl

#endif  // GRADGCL_GRAPH_BATCH_H_
