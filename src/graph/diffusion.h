// Graph diffusion operators. MVGRL contrasts a local (adjacency) view
// against a global (diffusion) view; the standard choice is the
// Personalised PageRank (PPR) kernel
//   S = α (I − (1−α) D^{-1/2} A D^{-1/2})^{-1},
// computed exactly here (graphs are small) via a dense linear solve.

#ifndef GRADGCL_GRAPH_DIFFUSION_H_
#define GRADGCL_GRAPH_DIFFUSION_H_

#include "graph/graph.h"

namespace gradgcl {

// Exact PPR diffusion matrix of `g` with teleport probability `alpha`.
// Returns a dense num_nodes x num_nodes matrix.
Matrix PprDiffusion(const Graph& g, double alpha = 0.2);

// Sparsifies a dense diffusion matrix by keeping entries >= threshold
// (plus the diagonal), then row-normalising. Mirrors MVGRL's top-k/ε
// sparsification step.
SparseMatrix SparsifyDiffusion(const Matrix& diffusion, double threshold = 1e-4);

}  // namespace gradgcl

#endif  // GRADGCL_GRAPH_DIFFUSION_H_
