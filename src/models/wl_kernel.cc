#include "models/wl_kernel.h"

#include <algorithm>

#include "tensor/ops.h"

namespace gradgcl {

namespace {

// FNV-1a over a sequence of ints.
uint64_t HashSequence(const std::vector<uint64_t>& seq) {
  uint64_t h = 1469598103934665603ULL;
  for (uint64_t v : seq) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xFF;
      h *= 1099511628211ULL;
    }
  }
  return h;
}

// Initial label: argmax of the node's feature row.
uint64_t InitialLabel(const Graph& g, int node) {
  int argmax = 0;
  for (int j = 1; j < g.feature_dim(); ++j) {
    if (g.features(node, j) > g.features(node, argmax)) argmax = j;
  }
  return static_cast<uint64_t>(argmax);
}

}  // namespace

Matrix WlFeatures(const std::vector<Graph>& graphs, const WlConfig& config) {
  GRADGCL_CHECK(config.iterations >= 0 && config.feature_dim > 0);
  Matrix features(static_cast<int>(graphs.size()), config.feature_dim, 0.0);

  for (size_t gi = 0; gi < graphs.size(); ++gi) {
    const Graph& g = graphs[gi];
    const CsrAdjacency csr = BuildCsr(g);
    std::vector<uint64_t> labels(g.num_nodes);
    for (int v = 0; v < g.num_nodes; ++v) labels[v] = InitialLabel(g, v);

    auto accumulate = [&](const std::vector<uint64_t>& lab, uint64_t salt) {
      for (int v = 0; v < g.num_nodes; ++v) {
        const uint64_t h = HashSequence({lab[v], salt});
        features(static_cast<int>(gi),
                 static_cast<int>(h % config.feature_dim)) += 1.0;
      }
    };

    accumulate(labels, /*salt=*/0);
    for (int it = 1; it <= config.iterations; ++it) {
      std::vector<uint64_t> next(g.num_nodes);
      for (int v = 0; v < g.num_nodes; ++v) {
        std::vector<uint64_t> neigh;
        for (int k = csr.offsets[v]; k < csr.offsets[v + 1]; ++k) {
          neigh.push_back(labels[csr.neighbors[k]]);
        }
        std::sort(neigh.begin(), neigh.end());
        neigh.insert(neigh.begin(), labels[v]);
        next[v] = HashSequence(neigh);
      }
      labels.swap(next);
      accumulate(labels, /*salt=*/static_cast<uint64_t>(it));
    }
  }
  return RowNormalize(features);
}

}  // namespace gradgcl
