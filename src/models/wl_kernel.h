// Weisfeiler–Lehman subtree features (Shervashidze et al., JMLR 2011)
// — the classic graph-kernel baseline of Table IV. Node labels start
// from the argmax feature (degree bucket in our datasets) and are
// iteratively refined by hashing each node's (label, sorted neighbour
// labels); graphs are represented by hashed label histograms, on which
// a linear SVM is the WL-subtree kernel machine.

#ifndef GRADGCL_MODELS_WL_KERNEL_H_
#define GRADGCL_MODELS_WL_KERNEL_H_

#include <vector>

#include "graph/graph.h"

namespace gradgcl {

// WL feature extractor configuration.
struct WlConfig {
  int iterations = 3;
  // Histogram width; refined labels are hashed into this many buckets.
  int feature_dim = 256;
};

// Returns the graphs' WL subtree histograms, one row per graph,
// L2-normalised (so a linear kernel approximates the normalised WL
// kernel).
Matrix WlFeatures(const std::vector<Graph>& graphs, const WlConfig& config);

}  // namespace gradgcl

#endif  // GRADGCL_MODELS_WL_KERNEL_H_
