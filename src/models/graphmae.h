// GraphMAE (Hou et al., KDD 2022): generative self-supervised masked
// graph autoencoder. Node features are masked, a GNN encoder embeds
// the masked graph, a decoder reconstructs the masked features, and
// the scaled cosine error (SCE) penalises reconstruction.
//
// GraphMAE is not a contrastive model; it appears in this library for
// the paper's Fig. 11 loss-type ablation: plugging GradGCL's gradient
// weight into the SCE loss *degrades* performance because SCE's
// gradient features carry no negative-pair structure. The grad_gcl
// config reproduces exactly that experiment.

#ifndef GRADGCL_MODELS_GRAPHMAE_H_
#define GRADGCL_MODELS_GRAPHMAE_H_

#include "core/grad_gcl_loss.h"
#include "nn/encoders.h"
#include "train/trainer.h"

namespace gradgcl {

// GraphMAE hyperparameters.
struct GraphMaeConfig {
  EncoderConfig encoder;
  double mask_rate = 0.3;
  double sce_gamma = 2.0;
  GradGclConfig grad_gcl;  // loss must be kSce; weight 0 = vanilla
};

class GraphMae : public GraphSslModel {
 public:
  GraphMae(const GraphMaeConfig& config, Rng& rng);

  Variable BatchLoss(const std::vector<Graph>& dataset,
                     const std::vector<int>& indices, Rng& rng) override;

  Matrix EmbedGraphs(const std::vector<Graph>& dataset) override;

 private:
  GraphMaeConfig config_;
  GraphEncoder encoder_;
  Mlp decoder_;
  GradGclLoss loss_;
};

}  // namespace gradgcl

#endif  // GRADGCL_MODELS_GRAPHMAE_H_
