// BGRL (Thakoor et al., 2021): bootstrapped representation learning on
// graphs. Negative-free: an online encoder + predictor chases an EMA
// target encoder across two augmented views (BYOL on graphs).
//
// GradGCL plug-in for a negative-free backbone: ℓ_f stays the
// bootstrap loss; ℓ_g applies Eq. 19 to the gradient features of the
// (predictor output, target output) pairs, which *introduces* the
// batch-level soft separation the paper credits for the Table V gains.

#ifndef GRADGCL_MODELS_BGRL_H_
#define GRADGCL_MODELS_BGRL_H_

#include "augment/augment.h"
#include "core/grad_gcl_loss.h"
#include "nn/encoders.h"
#include "train/trainer.h"

namespace gradgcl {

// BGRL hyperparameters.
struct BgrlConfig {
  EncoderConfig encoder;  // kGcn for the standard setup
  int predictor_dim = 32;
  double ema_decay = 0.99;
  double edge_drop1 = 0.2;
  double edge_drop2 = 0.4;
  double feat_mask1 = 0.2;
  double feat_mask2 = 0.3;
  GradGclConfig grad_gcl;  // weight = 0 reproduces vanilla BGRL
};

class Bgrl : public NodeSslModel {
 public:
  Bgrl(const BgrlConfig& config, Rng& rng);

  Variable EpochLoss(const NodeDataset& dataset, Rng& rng) override;

  Matrix EmbedNodes(const NodeDataset& dataset) override;

  // EMA update of the target encoder — runs after each optimiser step.
  void PostStep() override;

 private:
  Graph MakeView(const Graph& g, double edge_drop, double feat_mask,
                 Rng& rng) const;

  BgrlConfig config_;
  GraphEncoder online_encoder_;
  GraphEncoder target_encoder_;  // EMA copy; not a trainable child
  Mlp predictor_;
  GradGclLoss loss_;
};

}  // namespace gradgcl

#endif  // GRADGCL_MODELS_BGRL_H_
