// SGCL (Sun et al., 2023): "Rethinking and Simplifying Bootstrapped
// Graph Latents". Strips BGRL down: no EMA target network — a single
// encoder with a predictor head and stop-gradient on the target branch
// across two augmented views.

#ifndef GRADGCL_MODELS_SGCL_H_
#define GRADGCL_MODELS_SGCL_H_

#include "augment/augment.h"
#include "core/grad_gcl_loss.h"
#include "nn/encoders.h"
#include "train/trainer.h"

namespace gradgcl {

// SGCL hyperparameters.
struct SgclConfig {
  EncoderConfig encoder;  // kGcn for the standard setup
  int predictor_dim = 32;
  double edge_drop = 0.3;
  double feat_mask = 0.2;
  GradGclConfig grad_gcl;  // weight = 0 reproduces vanilla SGCL
};

class Sgcl : public NodeSslModel {
 public:
  Sgcl(const SgclConfig& config, Rng& rng);

  Variable EpochLoss(const NodeDataset& dataset, Rng& rng) override;

  Matrix EmbedNodes(const NodeDataset& dataset) override;

 private:
  SgclConfig config_;
  GraphEncoder encoder_;
  Mlp predictor_;
  GradGclLoss loss_;
};

}  // namespace gradgcl

#endif  // GRADGCL_MODELS_SGCL_H_
