#include "models/node2vec.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "tensor/ops.h"

namespace gradgcl {

std::vector<int> SampleNode2VecWalk(const Graph& g, const CsrAdjacency& csr,
                                    int start, const Node2VecConfig& config,
                                    Rng& rng) {
  std::vector<int> walk = {start};
  int prev = -1;
  int current = start;
  for (int step = 1; step < config.walk_length; ++step) {
    const int begin = csr.offsets[current];
    const int end = csr.offsets[current + 1];
    if (begin == end) break;  // dead end
    int next;
    if (prev < 0 || (config.p == 1.0 && config.q == 1.0)) {
      next = csr.neighbors[begin + rng.UniformInt(end - begin)];
    } else {
      // Second-order bias: weight 1/p for returning to prev, 1 for
      // neighbours of prev, 1/q otherwise. Rejection sampling keeps
      // this O(deg) without precomputed alias tables (graphs are small).
      const double max_w =
          std::max({1.0, 1.0 / config.p, 1.0 / config.q});
      for (int attempt = 0; attempt < 64; ++attempt) {
        const int candidate = csr.neighbors[begin + rng.UniformInt(end - begin)];
        double w;
        if (candidate == prev) {
          w = 1.0 / config.p;
        } else if (HasEdge(g, candidate, prev)) {
          w = 1.0;
        } else {
          w = 1.0 / config.q;
        }
        if (rng.Uniform() * max_w <= w) {
          next = candidate;
          goto accepted;
        }
      }
      next = csr.neighbors[begin + rng.UniformInt(end - begin)];
    accepted:;
    }
    walk.push_back(next);
    prev = current;
    current = next;
  }
  return walk;
}

Matrix Node2VecEmbeddings(const Graph& g, const Node2VecConfig& config) {
  GRADGCL_CHECK(g.num_nodes > 0);
  GRADGCL_CHECK(config.dim > 0 && config.walk_length >= 2);
  GRADGCL_CHECK(config.p > 0.0 && config.q > 0.0);
  Rng rng(config.seed);
  const CsrAdjacency csr = BuildCsr(g);

  // Input (embedding) and output (context) matrices, word2vec-style.
  Matrix emb = Matrix::RandomUniform(g.num_nodes, config.dim, rng, -0.5,
                                     0.5);
  emb *= 1.0 / config.dim;
  Matrix ctx = Matrix::Zeros(g.num_nodes, config.dim);

  // Walk corpus.
  std::vector<std::vector<int>> corpus;
  for (int rep = 0; rep < config.walks_per_node; ++rep) {
    for (int v = 0; v < g.num_nodes; ++v) {
      corpus.push_back(SampleNode2VecWalk(g, csr, v, config, rng));
    }
  }

  // SGNS: for each (center, context) pair within the window, one
  // positive update and `negatives` uniform negative updates.
  const int d = config.dim;
  std::vector<double> grad_center(d);
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    rng.Shuffle(corpus);
    for (const std::vector<int>& walk : corpus) {
      for (size_t i = 0; i < walk.size(); ++i) {
        const int center = walk[i];
        const size_t lo = i >= static_cast<size_t>(config.window)
                              ? i - config.window
                              : 0;
        const size_t hi =
            std::min(walk.size() - 1, i + config.window);
        for (size_t j = lo; j <= hi; ++j) {
          if (j == i) continue;
          std::fill(grad_center.begin(), grad_center.end(), 0.0);
          // One positive and `negatives` negative target nodes.
          for (int s = 0; s <= config.negatives; ++s) {
            const int target =
                s == 0 ? walk[j] : rng.UniformInt(g.num_nodes);
            const double label = s == 0 ? 1.0 : 0.0;
            double dot = 0.0;
            for (int k = 0; k < d; ++k) dot += emb(center, k) * ctx(target, k);
            const double score = 1.0 / (1.0 + std::exp(-dot));
            const double coeff = config.lr * (label - score);
            for (int k = 0; k < d; ++k) {
              grad_center[k] += coeff * ctx(target, k);
              ctx(target, k) += coeff * emb(center, k);
            }
          }
          for (int k = 0; k < d; ++k) emb(center, k) += grad_center[k];
        }
      }
    }
  }
  return emb;
}

Matrix DeepWalkEmbeddings(const Graph& g, Node2VecConfig config) {
  config.p = 1.0;
  config.q = 1.0;
  return Node2VecEmbeddings(g, config);
}

Matrix Node2VecGraphEmbeddings(const std::vector<Graph>& graphs,
                               const Node2VecConfig& config) {
  GRADGCL_CHECK(!graphs.empty());
  Matrix out(static_cast<int>(graphs.size()), config.dim);
  for (size_t i = 0; i < graphs.size(); ++i) {
    Node2VecConfig local = config;
    local.seed = config.seed + i;  // independent stream per graph
    const Matrix emb = Node2VecEmbeddings(graphs[i], local);
    const Matrix mean = ColMean(emb);
    out.SetRow(static_cast<int>(i), mean);
  }
  return RowNormalize(out);
}

}  // namespace gradgcl
