// GraphCL (You et al., NeurIPS 2020): graph contrastive learning with
// data augmentations. Two stochastic augmentations of each graph are
// encoded by a shared GIN encoder, projected by an MLP head, and
// contrasted with InfoNCE. With the GradGCL plug-in enabled
// (grad_gcl.weight > 0), the loss becomes the paper's Eq. 18 — this
// single class therefore realises GraphCL, GraphCL(g), and
// GraphCL(f+g).

#ifndef GRADGCL_MODELS_GRAPHCL_H_
#define GRADGCL_MODELS_GRAPHCL_H_

#include "augment/augment.h"
#include "core/grad_gcl_loss.h"
#include "nn/encoders.h"
#include "train/trainer.h"

namespace gradgcl {

// GraphCL hyperparameters.
struct GraphClConfig {
  EncoderConfig encoder;
  int proj_dim = 32;
  // When true, each view samples a fresh augmentation kind per batch
  // (GraphCL's default); otherwise aug1/aug2 are used as given.
  bool random_augs = true;
  AugmentKind aug1 = AugmentKind::kNodeDrop;
  AugmentKind aug2 = AugmentKind::kNodeDrop;
  double aug_strength = 0.2;
  GradGclConfig grad_gcl;  // weight = 0 reproduces vanilla GraphCL
};

class GraphCl : public GraphSslModel {
 public:
  GraphCl(const GraphClConfig& config, Rng& rng);

  // Builds the two projected views for dataset[indices] using the
  // given augmentation kinds. Exposed for instrumentation benches.
  TwoViewBatch EncodeTwoViews(const std::vector<Graph>& dataset,
                              const std::vector<int>& indices,
                              AugmentKind kind1, AugmentKind kind2, Rng& rng);

  Variable BatchLoss(const std::vector<Graph>& dataset,
                     const std::vector<int>& indices, Rng& rng) override;

  Matrix EmbedGraphs(const std::vector<Graph>& dataset) override;

  const GraphClConfig& config() const { return config_; }
  GraphEncoder& encoder() { return encoder_; }

 protected:
  // Samples the augmentation pair for one batch.
  virtual std::pair<AugmentKind, AugmentKind> SampleAugPair(Rng& rng);

  GraphClConfig config_;
  GraphEncoder encoder_;
  Mlp proj_;
  GradGclLoss loss_;
};

}  // namespace gradgcl

#endif  // GRADGCL_MODELS_GRAPHCL_H_
