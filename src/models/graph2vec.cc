#include "models/graph2vec.h"

#include <cmath>

#include "common/rng.h"
#include "tensor/ops.h"

namespace gradgcl {

Matrix Graph2VecEmbeddings(const std::vector<Graph>& graphs,
                           const Graph2VecConfig& config) {
  GRADGCL_CHECK(config.embedding_dim > 0);
  Matrix counts = WlFeatures(graphs, config.wl);  // already L2-normalised

  // TF-IDF: down-weight tokens present in most graphs.
  const int n = counts.rows();
  const int vocab = counts.cols();
  std::vector<double> idf(vocab, 0.0);
  for (int j = 0; j < vocab; ++j) {
    int docs = 0;
    for (int i = 0; i < n; ++i) {
      if (counts(i, j) > 0.0) ++docs;
    }
    idf[j] = std::log((1.0 + n) / (1.0 + docs)) + 1.0;
  }
  Matrix tfidf = counts;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < vocab; ++j) tfidf(i, j) *= idf[j];
  }

  // Random Gaussian projection to the embedding dimension.
  Rng rng(config.seed);
  Matrix projection = Matrix::RandomNormal(
      vocab, config.embedding_dim, rng, 0.0,
      1.0 / std::sqrt(static_cast<double>(config.embedding_dim)));
  return RowNormalize(MatMul(tfidf, projection));
}

}  // namespace gradgcl
