// COSTA (Zhang et al., KDD 2022): covariance-preserving feature
// augmentation for graph contrastive learning. Instead of perturbing
// the graph, COSTA augments in *feature space*: the second view is a
// random sketch of the embedding matrix that approximately preserves
// its covariance. This implementation realises the single-view COSTA
// variant: view 2 applies a random near-isometry (I + σG, G Gaussian)
// to the encoder output before projection.

#ifndef GRADGCL_MODELS_COSTA_H_
#define GRADGCL_MODELS_COSTA_H_

#include "augment/augment.h"
#include "core/grad_gcl_loss.h"
#include "nn/encoders.h"
#include "train/trainer.h"

namespace gradgcl {

// COSTA hyperparameters.
struct CostaConfig {
  EncoderConfig encoder;  // kGcn for the standard setup
  int proj_dim = 32;
  // Scale σ of the random sketch I + σG.
  double sketch_scale = 0.3;
  // Light graph augmentation applied before encoding (as in COSTA).
  double edge_drop = 0.2;
  double feat_mask = 0.1;
  GradGclConfig grad_gcl;  // weight = 0 reproduces vanilla COSTA
};

class Costa : public NodeSslModel {
 public:
  Costa(const CostaConfig& config, Rng& rng);

  Variable EpochLoss(const NodeDataset& dataset, Rng& rng) override;

  Matrix EmbedNodes(const NodeDataset& dataset) override;

 private:
  CostaConfig config_;
  GraphEncoder encoder_;
  Mlp proj_;
  GradGclLoss loss_;
};

}  // namespace gradgcl

#endif  // GRADGCL_MODELS_COSTA_H_
