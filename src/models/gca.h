// GCA (Zhu et al., WWW 2021): graph contrastive learning with
// adaptive augmentation — GRACE whose edge-dropping probabilities are
// centrality-aware (edges around low-degree nodes are considered less
// important and dropped more often). Implemented as GRACE with the
// adaptive flag forced on; kept as its own type so model tables and
// factories can name it.

#ifndef GRADGCL_MODELS_GCA_H_
#define GRADGCL_MODELS_GCA_H_

#include "models/grace.h"

namespace gradgcl {

class Gca : public Grace {
 public:
  Gca(GraceConfig config, Rng& rng) : Grace(ForceAdaptive(config), rng) {}

 private:
  static GraceConfig ForceAdaptive(GraceConfig config) {
    config.adaptive = true;
    return config;
  }
};

}  // namespace gradgcl

#endif  // GRADGCL_MODELS_GCA_H_
