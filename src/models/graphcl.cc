#include "models/graphcl.h"

namespace gradgcl {

GraphCl::GraphCl(const GraphClConfig& config, Rng& rng)
    : config_(config),
      encoder_(config.encoder, rng),
      proj_({config.encoder.out_dim, config.proj_dim, config.proj_dim}, rng),
      loss_(config.grad_gcl) {
  RegisterChild(encoder_);
  RegisterChild(proj_);
}

std::pair<AugmentKind, AugmentKind> GraphCl::SampleAugPair(Rng& rng) {
  if (!config_.random_augs) return {config_.aug1, config_.aug2};
  const std::vector<AugmentKind> menu = AllAugmentKinds();
  return {menu[rng.UniformInt(static_cast<int>(menu.size()))],
          menu[rng.UniformInt(static_cast<int>(menu.size()))]};
}

TwoViewBatch GraphCl::EncodeTwoViews(const std::vector<Graph>& dataset,
                                     const std::vector<int>& indices,
                                     AugmentKind kind1, AugmentKind kind2,
                                     Rng& rng) {
  std::vector<Graph> view1;
  std::vector<Graph> view2;
  view1.reserve(indices.size());
  view2.reserve(indices.size());
  for (int idx : indices) {
    view1.push_back(Augment(dataset[idx], kind1, config_.aug_strength, rng));
    view2.push_back(Augment(dataset[idx], kind2, config_.aug_strength, rng));
  }
  const GraphBatch batch1 = MakeBatch(view1);
  const GraphBatch batch2 = MakeBatch(view2);
  TwoViewBatch views;
  views.u = proj_.Forward(encoder_.ForwardGraphs(batch1));
  views.u_prime = proj_.Forward(encoder_.ForwardGraphs(batch2));
  return views;
}

Variable GraphCl::BatchLoss(const std::vector<Graph>& dataset,
                            const std::vector<int>& indices, Rng& rng) {
  const auto [kind1, kind2] = SampleAugPair(rng);
  return loss_(EncodeTwoViews(dataset, indices, kind1, kind2, rng));
}

Matrix GraphCl::EmbedGraphs(const std::vector<Graph>& dataset) {
  // Downstream tasks use the pre-projection encoder output, as in the
  // original GraphCL evaluation protocol.
  return encoder_.ForwardGraphs(MakeBatch(dataset)).value();
}

}  // namespace gradgcl
