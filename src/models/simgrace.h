// SimGRACE (Xia et al., WWW 2022): graph contrastive learning without
// data augmentation. The second view comes from a *perturbed encoder*:
// a copy of the online encoder whose weights receive Gaussian noise
// scaled by each tensor's standard deviation. Both views share the
// projection head; gradients flow through the online encoder only.

#ifndef GRADGCL_MODELS_SIMGRACE_H_
#define GRADGCL_MODELS_SIMGRACE_H_

#include "core/grad_gcl_loss.h"
#include "nn/encoders.h"
#include "train/trainer.h"

namespace gradgcl {

// SimGRACE hyperparameters.
struct SimGraceConfig {
  EncoderConfig encoder;
  int proj_dim = 32;
  // Perturbation magnitude η: noise stddev = η · std(tensor).
  double perturb_magnitude = 0.5;
  GradGclConfig grad_gcl;  // weight = 0 reproduces vanilla SimGRACE
};

class SimGrace : public GraphSslModel {
 public:
  SimGrace(const SimGraceConfig& config, Rng& rng);

  // Two views of dataset[indices]: online encoding and perturbed-
  // encoder encoding (detached). Exposed for instrumentation benches.
  // With project = false, returns the raw encoder outputs (the
  // representations downstream tasks use) instead of the projections.
  TwoViewBatch EncodeTwoViews(const std::vector<Graph>& dataset,
                              const std::vector<int>& indices, Rng& rng,
                              bool project = true);

  Variable BatchLoss(const std::vector<Graph>& dataset,
                     const std::vector<int>& indices, Rng& rng) override;

  Matrix EmbedGraphs(const std::vector<Graph>& dataset) override;

  const SimGraceConfig& config() const { return config_; }
  GraphEncoder& encoder() { return encoder_; }

 private:
  SimGraceConfig config_;
  GraphEncoder encoder_;
  // Receives perturbed copies of encoder_'s weights each batch; not
  // registered as a trainable child.
  GraphEncoder perturbed_encoder_;
  Mlp proj_;
  GradGclLoss loss_;
};

}  // namespace gradgcl

#endif  // GRADGCL_MODELS_SIMGRACE_H_
