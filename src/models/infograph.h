// InfoGraph (Sun et al., ICLR 2020): graph-level representation
// learning by maximising mutual information between a graph's
// embedding and the embeddings of its own nodes (patches), with a JSD
// estimator — positives are (node, own graph) pairs, negatives are
// (node, other graph) pairs.
//
// GradGCL plug-in adaptation (documented in DESIGN.md): InfoGraph is
// not a two-view model, so the gradient module contrasts the pair
// (projected graph embedding, mean of the graph's projected node
// embeddings) — exactly InfoGraph's positive-pair structure lifted to
// the graph level, giving Eq. 6 a well-defined (u, u') input.

#ifndef GRADGCL_MODELS_INFOGRAPH_H_
#define GRADGCL_MODELS_INFOGRAPH_H_

#include "core/grad_gcl_loss.h"
#include "nn/encoders.h"
#include "train/trainer.h"

namespace gradgcl {

// InfoGraph hyperparameters.
struct InfoGraphConfig {
  EncoderConfig encoder;
  int proj_dim = 32;
  GradGclConfig grad_gcl;  // weight = 0 reproduces vanilla InfoGraph
};

class InfoGraphModel : public GraphSslModel {
 public:
  InfoGraphModel(const InfoGraphConfig& config, Rng& rng);

  Variable BatchLoss(const std::vector<Graph>& dataset,
                     const std::vector<int>& indices, Rng& rng) override;

  Matrix EmbedGraphs(const std::vector<Graph>& dataset) override;

  const InfoGraphConfig& config() const { return config_; }

 private:
  InfoGraphConfig config_;
  GraphEncoder encoder_;
  Mlp node_proj_;
  Mlp graph_proj_;
  GradGclLoss loss_;
};

}  // namespace gradgcl

#endif  // GRADGCL_MODELS_INFOGRAPH_H_
