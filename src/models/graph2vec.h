// graph2vec-lite (after Narayanan et al., 2017): unsupervised whole-
// graph embeddings from WL "documents". The original trains a
// doc2vec-style skip-gram over rooted-subtree tokens; the established
// lightweight equivalent — used here — is a TF-IDF weighting of the WL
// subtree histogram followed by a random Gaussian projection to the
// embedding dimension (Johnson–Lindenstrauss), which preserves the
// token-space geometry doc2vec approximates.

#ifndef GRADGCL_MODELS_GRAPH2VEC_H_
#define GRADGCL_MODELS_GRAPH2VEC_H_

#include "models/wl_kernel.h"

namespace gradgcl {

// graph2vec-lite configuration.
struct Graph2VecConfig {
  WlConfig wl;
  int embedding_dim = 64;
  uint64_t seed = 7;
};

// Returns one embedding row per graph.
Matrix Graph2VecEmbeddings(const std::vector<Graph>& graphs,
                           const Graph2VecConfig& config);

}  // namespace gradgcl

#endif  // GRADGCL_MODELS_GRAPH2VEC_H_
