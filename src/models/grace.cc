#include "models/grace.h"

namespace gradgcl {

Grace::Grace(const GraceConfig& config, Rng& rng)
    : config_(config),
      encoder_(config.encoder, rng),
      proj_({config.encoder.out_dim, config.proj_dim, config.proj_dim}, rng),
      loss_(config.grad_gcl) {
  RegisterChild(encoder_);
  RegisterChild(proj_);
}

Graph Grace::MakeView(const Graph& g, double edge_drop, double feat_mask,
                      Rng& rng) const {
  Graph view = config_.adaptive ? AdaptiveEdgeDrop(g, edge_drop, rng)
                                : EdgeDrop(g, edge_drop, rng);
  return AttrMask(view, feat_mask, rng);
}

TwoViewBatch Grace::EncodeTwoViews(const NodeDataset& dataset, Rng& rng) {
  const std::vector<Graph> view1 = {MakeView(
      dataset.graph, config_.edge_drop1, config_.feat_mask1, rng)};
  const std::vector<Graph> view2 = {MakeView(
      dataset.graph, config_.edge_drop2, config_.feat_mask2, rng)};
  TwoViewBatch views;
  views.u = proj_.Forward(encoder_.ForwardNodes(MakeBatch(view1)));
  views.u_prime = proj_.Forward(encoder_.ForwardNodes(MakeBatch(view2)));
  return views;
}

Variable Grace::EpochLoss(const NodeDataset& dataset, Rng& rng) {
  return loss_(EncodeTwoViews(dataset, rng));
}

Matrix Grace::EmbedNodes(const NodeDataset& dataset) {
  const std::vector<Graph> single = {dataset.graph};
  return encoder_.ForwardNodes(MakeBatch(single)).value();
}

}  // namespace gradgcl
