#include "models/costa.h"

#include <cmath>

namespace gradgcl {

Costa::Costa(const CostaConfig& config, Rng& rng)
    : config_(config),
      encoder_(config.encoder, rng),
      proj_({config.encoder.out_dim, config.proj_dim, config.proj_dim}, rng),
      loss_(config.grad_gcl) {
  GRADGCL_CHECK(config.sketch_scale > 0.0);
  RegisterChild(encoder_);
  RegisterChild(proj_);
}

Variable Costa::EpochLoss(const NodeDataset& dataset, Rng& rng) {
  const std::vector<Graph> view = {AttrMask(
      EdgeDrop(dataset.graph, config_.edge_drop, rng), config_.feat_mask,
      rng)};
  Variable h = encoder_.ForwardNodes(MakeBatch(view));

  // Covariance-preserving feature augmentation: a random near-isometry
  // of the embedding space, W = I + σ G / sqrt(d).
  const int d = h.cols();
  Matrix sketch = Matrix::Identity(d);
  const double scale = config_.sketch_scale / std::sqrt(static_cast<double>(d));
  for (int i = 0; i < d; ++i) {
    for (int j = 0; j < d; ++j) sketch(i, j) += rng.Normal(0.0, scale);
  }
  // Right-multiplication by a constant sketch: h W == (W^T h^T)^T; use
  // MatMul with the sketch wrapped as a constant Variable.
  Variable h_sketched = ag::MatMul(h, Variable(sketch));

  TwoViewBatch views;
  views.u = proj_.Forward(h);
  views.u_prime = proj_.Forward(h_sketched);
  return loss_(views);
}

Matrix Costa::EmbedNodes(const NodeDataset& dataset) {
  const std::vector<Graph> single = {dataset.graph};
  return encoder_.ForwardNodes(MakeBatch(single)).value();
}

}  // namespace gradgcl
