#include "models/mvgrl.h"


#include "tensor/ops.h"
namespace gradgcl {

namespace {

// Local-global JSD across both view directions, given node and graph
// projections of each view and the node→graph segment map.
Variable CrossViewJsd(const Variable& nodes_a, const Variable& graphs_a,
                      const Variable& nodes_b, const Variable& graphs_b,
                      const std::vector<int>& segments, int num_graphs) {
  Matrix pos_mask(nodes_a.rows(), num_graphs, 0.0);
  for (int i = 0; i < nodes_a.rows(); ++i) pos_mask(i, segments[i]) = 1.0;
  Variable scores_ab = ag::MatMulTransB(nodes_a, graphs_b);
  Variable scores_ba = ag::MatMulTransB(nodes_b, graphs_a);
  return ag::ScalarMul(ag::Add(JsdLossMasked(scores_ab, pos_mask),
                               JsdLossMasked(scores_ba, pos_mask)),
                       0.5);
}

}  // namespace

SparseMatrix BatchDiffusionOperator(const std::vector<Graph>& dataset,
                                    const std::vector<int>& indices,
                                    double alpha) {
  int total = 0;
  for (int idx : indices) total += dataset[idx].num_nodes;
  std::vector<Triplet> triplets;
  int offset = 0;
  for (int idx : indices) {
    const Graph& g = dataset[idx];
    const Matrix ppr = PprDiffusion(g, alpha);
    const SparseMatrix sparse = SparsifyDiffusion(ppr);
    for (int r = 0; r < sparse.rows(); ++r) {
      for (int k = sparse.row_offsets()[r]; k < sparse.row_offsets()[r + 1];
           ++k) {
        triplets.push_back(
            {offset + r, offset + sparse.col_indices()[k], sparse.values()[k]});
      }
    }
    offset += g.num_nodes;
  }
  return SparseMatrix(total, total, std::move(triplets));
}

MvgrlGraph::MvgrlGraph(const MvgrlConfig& config, Rng& rng)
    : config_(config),
      encoder_adj_(config.encoder, rng),
      encoder_diff_(config.encoder, rng),
      node_proj_({config.encoder.out_dim, config.proj_dim, config.proj_dim},
                 rng),
      graph_proj_({config.encoder.out_dim, config.proj_dim, config.proj_dim},
                  rng),
      loss_(config.grad_gcl) {
  RegisterChild(encoder_adj_);
  RegisterChild(encoder_diff_);
  RegisterChild(node_proj_);
  RegisterChild(graph_proj_);
}

Variable MvgrlGraph::BatchLoss(const std::vector<Graph>& dataset,
                               const std::vector<int>& indices, Rng& rng) {
  (void)rng;  // MVGRL's views are deterministic.
  const GraphBatch batch = MakeBatch(dataset, indices);
  const SparseMatrix diffusion =
      BatchDiffusionOperator(dataset, indices, config_.ppr_alpha);

  Variable nodes_a = encoder_adj_.ForwardNodes(batch);
  Variable nodes_b = encoder_diff_.ForwardNodesWithOperator(
      diffusion, Variable(batch.features));
  Variable graphs_a = Readout(nodes_a, batch.segments, batch.num_graphs,
                              config_.encoder.readout);
  Variable graphs_b = Readout(nodes_b, batch.segments, batch.num_graphs,
                              config_.encoder.readout);

  Variable pn_a = node_proj_.Forward(nodes_a);
  Variable pn_b = node_proj_.Forward(nodes_b);
  Variable pg_a = graph_proj_.Forward(graphs_a);
  Variable pg_b = graph_proj_.Forward(graphs_b);

  Variable lf = CrossViewJsd(pn_a, pg_a, pn_b, pg_b, batch.segments,
                             batch.num_graphs);
  const double a = config_.grad_gcl.weight;
  if (a == 0.0) return lf;

  TwoViewBatch views;
  views.u = pg_a;
  views.u_prime = pg_b;
  Variable lg = loss_.GradientLoss(views);
  if (a == 1.0) return lg;
  return ag::Add(ag::ScalarMul(lf, 1.0 - a), ag::ScalarMul(lg, a));
}

Matrix MvgrlGraph::EmbedGraphs(const std::vector<Graph>& dataset) {
  std::vector<int> all(dataset.size());
  for (size_t i = 0; i < dataset.size(); ++i) all[i] = static_cast<int>(i);
  const GraphBatch batch = MakeBatch(dataset);
  const SparseMatrix diffusion =
      BatchDiffusionOperator(dataset, all, config_.ppr_alpha);
  Variable nodes_a = encoder_adj_.ForwardNodes(batch);
  Variable nodes_b = encoder_diff_.ForwardNodesWithOperator(
      diffusion, Variable(batch.features));
  Variable graphs_a = Readout(nodes_a, batch.segments, batch.num_graphs,
                              config_.encoder.readout);
  Variable graphs_b = Readout(nodes_b, batch.segments, batch.num_graphs,
                              config_.encoder.readout);
  // Downstream embedding: sum of the two views' readouts.
  return graphs_a.value() + graphs_b.value();
}

MvgrlNode::MvgrlNode(const MvgrlConfig& config, Rng& rng)
    : config_(config),
      encoder_adj_(config.encoder, rng),
      encoder_diff_(config.encoder, rng),
      node_proj_({config.encoder.out_dim, config.proj_dim, config.proj_dim},
                 rng),
      graph_proj_({config.encoder.out_dim, config.proj_dim, config.proj_dim},
                  rng),
      loss_(config.grad_gcl) {
  RegisterChild(encoder_adj_);
  RegisterChild(encoder_diff_);
  RegisterChild(node_proj_);
  RegisterChild(graph_proj_);
}

const SparseMatrix& MvgrlNode::DiffusionFor(const NodeDataset& dataset) {
  if (cached_graph_ != &dataset.graph) {
    cached_diffusion_ = SparsifyDiffusion(
        PprDiffusion(dataset.graph, config_.ppr_alpha), 1e-3);
    cached_graph_ = &dataset.graph;
  }
  return cached_diffusion_;
}

Variable MvgrlNode::EpochLoss(const NodeDataset& dataset, Rng& rng) {
  const std::vector<Graph> single = {dataset.graph};
  const GraphBatch batch = MakeBatch(single);
  const SparseMatrix& diffusion = DiffusionFor(dataset);
  const int n = batch.total_nodes;

  Variable nodes_a = encoder_adj_.ForwardNodes(batch);
  Variable nodes_b = encoder_diff_.ForwardNodesWithOperator(
      diffusion, Variable(batch.features));
  Variable graphs_a =
      Readout(nodes_a, batch.segments, 1, config_.encoder.readout);
  Variable graphs_b =
      Readout(nodes_b, batch.segments, 1, config_.encoder.readout);

  // DGI-style corruption: row-shuffled features provide the negative
  // nodes for the local-global contrast on a single graph.
  const std::vector<int> perm = rng.Permutation(n);
  Variable corrupted(batch.features.Gather(perm));
  Variable neg_a = encoder_adj_.ForwardNodesWithOperator(batch.norm_adj,
                                                         corrupted);
  Variable neg_b =
      encoder_diff_.ForwardNodesWithOperator(diffusion, corrupted);

  Variable pn_a = node_proj_.Forward(nodes_a);
  Variable pn_b = node_proj_.Forward(nodes_b);
  Variable pneg_a = node_proj_.Forward(neg_a);
  Variable pneg_b = node_proj_.Forward(neg_b);
  Variable pg_a = graph_proj_.Forward(graphs_a);
  Variable pg_b = graph_proj_.Forward(graphs_b);

  // Stack [real; corrupted] nodes; the first n rows are positives.
  Matrix pos_mask(2 * n, 1, 0.0);
  for (int i = 0; i < n; ++i) pos_mask(i, 0) = 1.0;
  Variable scores_ab =
      ag::MatMulTransB(ag::ConcatRows(pn_a, pneg_a), pg_b);  // 2n x 1
  Variable scores_ba =
      ag::MatMulTransB(ag::ConcatRows(pn_b, pneg_b), pg_a);
  Variable lf = ag::ScalarMul(ag::Add(JsdLossMasked(scores_ab, pos_mask),
                                      JsdLossMasked(scores_ba, pos_mask)),
                              0.5);
  const double a = config_.grad_gcl.weight;
  if (a == 0.0) return lf;

  // Node-level gradient views: the two views' node projections.
  TwoViewBatch views;
  views.u = pn_a;
  views.u_prime = pn_b;
  Variable lg = loss_.GradientLoss(views);
  if (a == 1.0) return lg;
  return ag::Add(ag::ScalarMul(lf, 1.0 - a), ag::ScalarMul(lg, a));
}

Matrix MvgrlNode::EmbedNodes(const NodeDataset& dataset) {
  const std::vector<Graph> single = {dataset.graph};
  const GraphBatch batch = MakeBatch(single);
  const SparseMatrix& diffusion = DiffusionFor(dataset);
  Variable nodes_a = encoder_adj_.ForwardNodes(batch);
  Variable nodes_b = encoder_diff_.ForwardNodesWithOperator(
      diffusion, Variable(batch.features));
  return nodes_a.value() + nodes_b.value();
}

}  // namespace gradgcl
