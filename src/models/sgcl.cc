#include "models/sgcl.h"

namespace gradgcl {

Sgcl::Sgcl(const SgclConfig& config, Rng& rng)
    : config_(config),
      encoder_(config.encoder, rng),
      predictor_({config.encoder.out_dim, config.predictor_dim,
                  config.encoder.out_dim},
                 rng),
      loss_(config.grad_gcl) {
  RegisterChild(encoder_);
  RegisterChild(predictor_);
}

Variable Sgcl::EpochLoss(const NodeDataset& dataset, Rng& rng) {
  const std::vector<Graph> view1 = {AttrMask(
      EdgeDrop(dataset.graph, config_.edge_drop, rng), config_.feat_mask,
      rng)};
  const std::vector<Graph> view2 = {AttrMask(
      EdgeDrop(dataset.graph, config_.edge_drop, rng), config_.feat_mask,
      rng)};
  Variable h1 = encoder_.ForwardNodes(MakeBatch(view1));
  Variable h2 = encoder_.ForwardNodes(MakeBatch(view2));
  Variable p1 = predictor_.Forward(h1);
  Variable p2 = predictor_.Forward(h2);
  // Stop-gradient target branches (the SGCL simplification of BGRL).
  Variable t1 = h1.Detach();
  Variable t2 = h2.Detach();

  Variable lf = ag::ScalarMul(
      ag::Add(BootstrapLoss(p1, t2), BootstrapLoss(p2, t1)), 0.5);
  const double a = config_.grad_gcl.weight;
  if (a == 0.0) return lf;

  TwoViewBatch views12{p1, t2};
  TwoViewBatch views21{p2, t1};
  Variable lg = ag::ScalarMul(
      ag::Add(loss_.GradientLoss(views12), loss_.GradientLoss(views21)), 0.5);
  if (a == 1.0) return lg;
  return ag::Add(ag::ScalarMul(lf, 1.0 - a), ag::ScalarMul(lg, a));
}

Matrix Sgcl::EmbedNodes(const NodeDataset& dataset) {
  const std::vector<Graph> single = {dataset.graph};
  return encoder_.ForwardNodes(MakeBatch(single)).value();
}

}  // namespace gradgcl
