// GRACE (Zhu et al., 2020): deep graph contrastive representation
// learning at the node level. Two stochastic views of the one big
// graph (edge removal + feature masking) go through a shared GCN
// encoder and MLP projector; node i's two views are positives, all
// other nodes negatives, InfoNCE objective.
//
// GCA (Zhu et al., WWW 2021) is the adaptive-augmentation variant
// (degree-aware edge dropping), realised by the `adaptive` flag and a
// thin subclass in gca.h.

#ifndef GRADGCL_MODELS_GRACE_H_
#define GRADGCL_MODELS_GRACE_H_

#include "augment/augment.h"
#include "core/grad_gcl_loss.h"
#include "nn/encoders.h"
#include "train/trainer.h"

namespace gradgcl {

// GRACE hyperparameters.
struct GraceConfig {
  EncoderConfig encoder;  // set kind = kGcn for the standard setup
  int proj_dim = 32;
  double edge_drop1 = 0.2;
  double edge_drop2 = 0.4;
  double feat_mask1 = 0.2;
  double feat_mask2 = 0.3;
  // GCA: degree-adaptive edge dropping instead of uniform.
  bool adaptive = false;
  GradGclConfig grad_gcl;  // weight = 0 reproduces vanilla GRACE/GCA
};

class Grace : public NodeSslModel {
 public:
  Grace(const GraceConfig& config, Rng& rng);

  // The two projected node views (exposed for instrumentation).
  TwoViewBatch EncodeTwoViews(const NodeDataset& dataset, Rng& rng);

  Variable EpochLoss(const NodeDataset& dataset, Rng& rng) override;

  Matrix EmbedNodes(const NodeDataset& dataset) override;

  const GraceConfig& config() const { return config_; }

 private:
  Graph MakeView(const Graph& g, double edge_drop, double feat_mask,
                 Rng& rng) const;

  GraceConfig config_;
  GraphEncoder encoder_;
  Mlp proj_;
  GradGclLoss loss_;
};

}  // namespace gradgcl

#endif  // GRADGCL_MODELS_GRACE_H_
