#include "models/dgi.h"

namespace gradgcl {

Dgi::Dgi(const DgiConfig& config, Rng& rng)
    : config_(config), encoder_(config.encoder, rng) {
  RegisterChild(encoder_);
  discriminator_ = AddParameter(
      Matrix::GlorotUniform(config.encoder.out_dim, config.encoder.out_dim,
                            rng));
}

Variable Dgi::EpochLoss(const NodeDataset& dataset, Rng& rng) {
  const std::vector<Graph> single = {dataset.graph};
  const GraphBatch batch = MakeBatch(single);
  const int n = batch.total_nodes;

  Variable h = encoder_.ForwardNodes(batch);
  // Graph summary: σ(mean of node embeddings).
  Variable summary = ag::Sigmoid(ag::SegmentMean(h, batch.segments, 1));

  // Corruption: row-shuffled features through the same encoder.
  const std::vector<int> perm = rng.Permutation(n);
  Variable h_corrupt = encoder_.ForwardNodesWithOperator(
      batch.norm_adj, Variable(batch.features.Gather(perm)));

  // Bilinear scores D(h, s) = h W s^T for every node.
  Variable ws = ag::MatMulTransB(ag::MatMul(h, discriminator_), summary);
  Variable ws_corrupt =
      ag::MatMulTransB(ag::MatMul(h_corrupt, discriminator_), summary);

  // BCE: real nodes -> 1, corrupted -> 0.
  Variable logits = ag::ConcatRows(ws, ws_corrupt);  // 2n x 1
  Matrix targets(2 * n, 1, 0.0);
  for (int i = 0; i < n; ++i) targets(i, 0) = 1.0;
  return ag::BinaryCrossEntropyWithLogits(logits, targets);
}

Matrix Dgi::EmbedNodes(const NodeDataset& dataset) {
  const std::vector<Graph> single = {dataset.graph};
  return encoder_.ForwardNodes(MakeBatch(single)).value();
}

}  // namespace gradgcl
