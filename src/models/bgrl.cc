#include "models/bgrl.h"

namespace gradgcl {

Bgrl::Bgrl(const BgrlConfig& config, Rng& rng)
    : config_(config),
      online_encoder_(config.encoder, rng),
      target_encoder_(config.encoder, rng),
      predictor_({config.encoder.out_dim, config.predictor_dim,
                  config.encoder.out_dim},
                 rng),
      loss_(config.grad_gcl) {
  GRADGCL_CHECK(config.ema_decay >= 0.0 && config.ema_decay < 1.0);
  RegisterChild(online_encoder_);
  RegisterChild(predictor_);
  // Target starts as an exact copy of the online weights.
  target_encoder_.LoadState(online_encoder_.StateCopy());
}

Graph Bgrl::MakeView(const Graph& g, double edge_drop, double feat_mask,
                     Rng& rng) const {
  Rng local = rng.Fork();
  return AttrMask(EdgeDrop(g, edge_drop, local), feat_mask, local);
}

Variable Bgrl::EpochLoss(const NodeDataset& dataset, Rng& rng) {
  const std::vector<Graph> view1 = {MakeView(
      dataset.graph, config_.edge_drop1, config_.feat_mask1, rng)};
  const std::vector<Graph> view2 = {MakeView(
      dataset.graph, config_.edge_drop2, config_.feat_mask2, rng)};
  const GraphBatch batch1 = MakeBatch(view1);
  const GraphBatch batch2 = MakeBatch(view2);

  Variable h1 = online_encoder_.ForwardNodes(batch1);
  Variable h2 = online_encoder_.ForwardNodes(batch2);
  Variable p1 = predictor_.Forward(h1);
  Variable p2 = predictor_.Forward(h2);
  Variable t1 = target_encoder_.ForwardNodes(batch1).Detach();
  Variable t2 = target_encoder_.ForwardNodes(batch2).Detach();

  Variable lf = ag::ScalarMul(
      ag::Add(BootstrapLoss(p1, t2), BootstrapLoss(p2, t1)), 0.5);
  const double a = config_.grad_gcl.weight;
  if (a == 0.0) return lf;

  TwoViewBatch views12{p1, t2};
  TwoViewBatch views21{p2, t1};
  Variable lg = ag::ScalarMul(
      ag::Add(loss_.GradientLoss(views12), loss_.GradientLoss(views21)), 0.5);
  if (a == 1.0) return lg;
  return ag::Add(ag::ScalarMul(lf, 1.0 - a), ag::ScalarMul(lg, a));
}

Matrix Bgrl::EmbedNodes(const NodeDataset& dataset) {
  const std::vector<Graph> single = {dataset.graph};
  return online_encoder_.ForwardNodes(MakeBatch(single)).value();
}

void Bgrl::PostStep() {
  std::vector<Matrix> target = target_encoder_.StateCopy();
  EmaUpdate(target, online_encoder_.StateCopy(), config_.ema_decay);
  target_encoder_.LoadState(target);
}

}  // namespace gradgcl
