// node2vec (Grover & Leskovec, KDD 2016) and DeepWalk (Perozzi et al.,
// KDD 2014) — random-walk skip-gram baselines of the paper's Tables IV
// and V. Biased second-order random walks generate node "sentences";
// skip-gram with negative sampling (SGNS) trains node embeddings with
// plain hand-rolled SGD updates (the classic word2vec recipe — no
// autograd needed at this scale).
//
// DeepWalk is node2vec with p = q = 1 (unbiased walks).

#ifndef GRADGCL_MODELS_NODE2VEC_H_
#define GRADGCL_MODELS_NODE2VEC_H_

#include <vector>

#include "graph/graph.h"

namespace gradgcl {

// node2vec hyperparameters.
struct Node2VecConfig {
  int dim = 32;
  int walk_length = 20;
  int walks_per_node = 4;
  int window = 4;
  // Return / in-out bias parameters of the second-order walk.
  double p = 1.0;
  double q = 1.0;
  int negatives = 3;   // negative samples per positive pair
  int epochs = 2;      // passes over the walk corpus
  double lr = 0.025;
  uint64_t seed = 5;
};

// Node embeddings (num_nodes x dim) of one graph.
Matrix Node2VecEmbeddings(const Graph& g, const Node2VecConfig& config);

// DeepWalk = node2vec with p = q = 1.
Matrix DeepWalkEmbeddings(const Graph& g, Node2VecConfig config);

// Graph-level embeddings: mean of the graph's node2vec node vectors
// (the protocol behind the node2vec row of Table IV).
Matrix Node2VecGraphEmbeddings(const std::vector<Graph>& graphs,
                               const Node2VecConfig& config);

// Sampled biased random walk starting at `start` (exposed for tests).
std::vector<int> SampleNode2VecWalk(const Graph& g, const CsrAdjacency& csr,
                                    int start, const Node2VecConfig& config,
                                    Rng& rng);

}  // namespace gradgcl

#endif  // GRADGCL_MODELS_NODE2VEC_H_
