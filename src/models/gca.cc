// GCA is header-only (a thin GRACE subclass); this translation unit
// exists so the build system has a home for future GCA-specific logic.
#include "models/gca.h"
