#include "models/graphmae.h"

namespace gradgcl {

GraphMae::GraphMae(const GraphMaeConfig& config, Rng& rng)
    : config_(config),
      encoder_(config.encoder, rng),
      decoder_({config.encoder.out_dim, config.encoder.hidden_dim,
                config.encoder.in_dim},
               rng),
      loss_(config.grad_gcl) {
  GRADGCL_CHECK(config.mask_rate > 0.0 && config.mask_rate < 1.0);
  RegisterChild(encoder_);
  RegisterChild(decoder_);
}

Variable GraphMae::BatchLoss(const std::vector<Graph>& dataset,
                             const std::vector<int>& indices, Rng& rng) {
  GraphBatch batch = MakeBatch(dataset, indices);
  const Matrix original = batch.features;

  // Mask: zero out the feature rows of a random node subset.
  std::vector<int> masked;
  for (int i = 0; i < batch.total_nodes; ++i) {
    if (rng.Bernoulli(config_.mask_rate)) masked.push_back(i);
  }
  if (masked.empty()) masked.push_back(rng.UniformInt(batch.total_nodes));
  for (int i : masked) {
    for (int j = 0; j < batch.features.cols(); ++j) batch.features(i, j) = 0.0;
  }

  Variable embedded = encoder_.ForwardNodes(batch);
  Variable reconstructed = decoder_.Forward(embedded);
  Variable recon_masked = ag::GatherRows(reconstructed, masked);
  Variable target_masked = Variable(original.Gather(masked));

  Variable lf = SceLoss(recon_masked, target_masked, config_.sce_gamma);
  const double a = config_.grad_gcl.weight;
  if (a == 0.0) return lf;

  // Fig. 11 experiment: gradient features of the SCE loss on
  // (reconstruction, target) pairs, contrasted with InfoNCE.
  TwoViewBatch views{recon_masked, target_masked};
  Variable lg = loss_.GradientLoss(views);
  if (a == 1.0) return lg;
  return ag::Add(ag::ScalarMul(lf, 1.0 - a), ag::ScalarMul(lg, a));
}

Matrix GraphMae::EmbedGraphs(const std::vector<Graph>& dataset) {
  return encoder_.ForwardGraphs(MakeBatch(dataset)).value();
}

}  // namespace gradgcl
