#include "models/gcn_supervised.h"

#include "eval/probes.h"
#include "train/optimizer.h"

namespace gradgcl {

double TrainSupervisedGcn(const NodeDataset& dataset,
                          const SupervisedGcnConfig& config) {
  GRADGCL_CHECK(!dataset.train_idx.empty() && !dataset.test_idx.empty());
  Rng rng(config.seed);

  EncoderConfig enc;
  enc.kind = EncoderKind::kGcn;
  enc.in_dim = dataset.graph.feature_dim();
  enc.hidden_dim = config.hidden_dim;
  enc.out_dim = config.hidden_dim;
  GraphEncoder encoder(enc, rng);
  Linear head(config.hidden_dim, dataset.num_classes, rng);

  std::vector<Variable> params = encoder.parameters();
  for (const Variable& p : head.parameters()) params.push_back(p);
  Adam optimizer(params, config.lr, 0.9, 0.999, 1e-8, config.weight_decay);

  const std::vector<Graph> single = {dataset.graph};
  const GraphBatch batch = MakeBatch(single);
  std::vector<int> train_y, val_y, test_y;
  for (int i : dataset.train_idx) train_y.push_back(dataset.labels[i]);
  for (int i : dataset.val_idx) val_y.push_back(dataset.labels[i]);
  for (int i : dataset.test_idx) test_y.push_back(dataset.labels[i]);

  auto predict = [&](const std::vector<int>& idx) {
    Variable logits = head.Forward(encoder.ForwardNodes(batch));
    const Matrix scores = logits.value().Gather(idx);
    std::vector<int> pred(scores.rows());
    for (int i = 0; i < scores.rows(); ++i) {
      int argmax = 0;
      for (int c = 1; c < scores.cols(); ++c) {
        if (scores(i, c) > scores(i, argmax)) argmax = c;
      }
      pred[i] = argmax;
    }
    return pred;
  };

  double best_val = -1.0;
  double test_at_best_val = 0.0;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    optimizer.ZeroGrad();
    Variable h = encoder.ForwardNodes(batch);
    if (config.dropout > 0.0) h = ag::Dropout(h, config.dropout, rng);
    Variable logits = ag::GatherRows(head.Forward(h), dataset.train_idx);
    Backward(ag::SoftmaxCrossEntropy(logits, train_y));
    optimizer.Step();

    const double val_acc =
        dataset.val_idx.empty() ? 0.0 : Accuracy(predict(dataset.val_idx),
                                                 val_y);
    if (val_acc >= best_val) {
      best_val = val_acc;
      test_at_best_val = Accuracy(predict(dataset.test_idx), test_y);
    }
  }
  return test_at_best_val;
}

}  // namespace gradgcl
