#include "models/infograph.h"

namespace gradgcl {

InfoGraphModel::InfoGraphModel(const InfoGraphConfig& config, Rng& rng)
    : config_(config),
      encoder_(config.encoder, rng),
      node_proj_({config.encoder.out_dim, config.proj_dim, config.proj_dim},
                 rng),
      graph_proj_({config.encoder.out_dim, config.proj_dim, config.proj_dim},
                  rng),
      loss_(config.grad_gcl) {
  RegisterChild(encoder_);
  RegisterChild(node_proj_);
  RegisterChild(graph_proj_);
}

Variable InfoGraphModel::BatchLoss(const std::vector<Graph>& dataset,
                                   const std::vector<int>& indices,
                                   Rng& rng) {
  (void)rng;  // InfoGraph's base loss is deterministic given the batch.
  const GraphBatch batch = MakeBatch(dataset, indices);
  GraphEncoder::Output enc = encoder_.Forward(batch);
  Variable pn = node_proj_.Forward(enc.nodes);    // N x d
  Variable pg = graph_proj_.Forward(enc.graphs);  // G x d

  // Local-global JSD: scores(i, g) = pn_i · pg_g, positives where node
  // i belongs to graph g.
  Variable scores = ag::MatMulTransB(pn, pg);
  Matrix pos_mask(batch.total_nodes, batch.num_graphs, 0.0);
  for (int i = 0; i < batch.total_nodes; ++i) {
    pos_mask(i, batch.segments[i]) = 1.0;
  }
  Variable lf = JsdLossMasked(scores, pos_mask);

  const double a = config_.grad_gcl.weight;
  if (a == 0.0) return lf;

  // GradGCL views: graph embedding vs mean of its nodes' projections.
  TwoViewBatch views;
  views.u = pg;
  views.u_prime = ag::SegmentMean(pn, batch.segments, batch.num_graphs);
  Variable lg = loss_.GradientLoss(views);
  if (a == 1.0) return lg;
  return ag::Add(ag::ScalarMul(lf, 1.0 - a), ag::ScalarMul(lg, a));
}

Matrix InfoGraphModel::EmbedGraphs(const std::vector<Graph>& dataset) {
  return encoder_.ForwardGraphs(MakeBatch(dataset)).value();
}

}  // namespace gradgcl
