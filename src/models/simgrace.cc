#include "models/simgrace.h"

namespace gradgcl {

SimGrace::SimGrace(const SimGraceConfig& config, Rng& rng)
    : config_(config),
      encoder_(config.encoder, rng),
      perturbed_encoder_(config.encoder, rng),
      proj_({config.encoder.out_dim, config.proj_dim, config.proj_dim}, rng),
      loss_(config.grad_gcl) {
  GRADGCL_CHECK(config.perturb_magnitude >= 0.0);
  RegisterChild(encoder_);
  RegisterChild(proj_);
}

TwoViewBatch SimGrace::EncodeTwoViews(const std::vector<Graph>& dataset,
                                      const std::vector<int>& indices,
                                      Rng& rng, bool project) {
  std::vector<Graph> batch_graphs;
  batch_graphs.reserve(indices.size());
  for (int idx : indices) batch_graphs.push_back(dataset[idx]);
  const GraphBatch batch = MakeBatch(batch_graphs);

  // View 1: online encoder.
  Variable h1 = encoder_.ForwardGraphs(batch);

  // View 2: perturbed copy of the online weights; its output is a
  // stochastic constant for the optimiser (gradients flow through the
  // online path only), hence the detach.
  perturbed_encoder_.LoadState(
      PerturbState(encoder_.StateCopy(), config_.perturb_magnitude, rng));
  Variable h2 = perturbed_encoder_.ForwardGraphs(batch).Detach();

  TwoViewBatch views;
  if (project) {
    views.u = proj_.Forward(h1);
    views.u_prime = proj_.Forward(h2);
  } else {
    views.u = h1;
    views.u_prime = h2;
  }
  return views;
}

Variable SimGrace::BatchLoss(const std::vector<Graph>& dataset,
                             const std::vector<int>& indices, Rng& rng) {
  return loss_(EncodeTwoViews(dataset, indices, rng));
}

Matrix SimGrace::EmbedGraphs(const std::vector<Graph>& dataset) {
  return encoder_.ForwardGraphs(MakeBatch(dataset)).value();
}

}  // namespace gradgcl
