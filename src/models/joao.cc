#include "models/joao.h"

#include <cmath>

namespace gradgcl {

Joao::Joao(const JoaoConfig& config, Rng& rng)
    : GraphCl(config.graphcl, rng),
      joao_config_(config),
      menu_(AllAugmentKinds()) {
  GRADGCL_CHECK(config.gamma > 0.0);
  GRADGCL_CHECK(config.uniform_mix >= 0.0 && config.uniform_mix <= 1.0);
  const int k = static_cast<int>(menu_.size());
  pair_probs_ = Matrix(k, k, 1.0 / (k * k));
}

std::pair<AugmentKind, AugmentKind> Joao::SampleAugPair(Rng& rng) {
  // Inverse-CDF sample from the pair distribution.
  const int k = pair_probs_.rows();
  double r = rng.Uniform();
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < k; ++j) {
      r -= pair_probs_(i, j);
      if (r <= 0.0) {
        last_pair_i_ = i;
        last_pair_j_ = j;
        return {menu_[i], menu_[j]};
      }
    }
  }
  last_pair_i_ = k - 1;
  last_pair_j_ = k - 1;
  return {menu_[k - 1], menu_[k - 1]};
}

void Joao::UpdateDistribution() {
  if (!has_observation_) return;
  const int k = pair_probs_.rows();
  // Exponentiated gradient: boost the sampled pair in proportion to
  // its observed loss (the min-max "hard view" principle), then mix
  // toward uniform and renormalise.
  pair_probs_(last_pair_i_, last_pair_j_) *=
      std::exp(joao_config_.gamma * last_loss_);
  double total = pair_probs_.Sum();
  const double uniform = 1.0 / (k * k);
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < k; ++j) {
      pair_probs_(i, j) = (1.0 - joao_config_.uniform_mix) *
                              (pair_probs_(i, j) / total) +
                          joao_config_.uniform_mix * uniform;
    }
  }
  has_observation_ = false;
}

Variable Joao::BatchLoss(const std::vector<Graph>& dataset,
                         const std::vector<int>& indices, Rng& rng) {
  UpdateDistribution();
  Variable loss = GraphCl::BatchLoss(dataset, indices, rng);
  last_loss_ = loss.scalar();
  has_observation_ = true;
  return loss;
}

}  // namespace gradgcl
