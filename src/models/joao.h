// JOAO (You et al., ICML 2021): GraphCL with joint augmentation
// optimisation. Instead of sampling augmentation pairs uniformly, JOAO
// maintains a distribution over pairs and adapts it with a min-max
// rule — pairs that currently yield *higher* contrastive loss (harder
// views) get more probability mass, smoothed toward uniform. This
// implementation realises the practical variant: an exponentiated-
// gradient update on the observed per-pair losses.

#ifndef GRADGCL_MODELS_JOAO_H_
#define GRADGCL_MODELS_JOAO_H_

#include "models/graphcl.h"

namespace gradgcl {

// JOAO hyperparameters (extends GraphCL's).
struct JoaoConfig {
  GraphClConfig graphcl;
  // Step size of the exponentiated-gradient distribution update.
  double gamma = 0.1;
  // Mixing weight toward the uniform distribution (regularisation).
  double uniform_mix = 0.3;
};

class Joao : public GraphCl {
 public:
  Joao(const JoaoConfig& config, Rng& rng);

  Variable BatchLoss(const std::vector<Graph>& dataset,
                     const std::vector<int>& indices, Rng& rng) override;

  // Current distribution over augmentation pairs (row-major over the
  // kind menu), exposed for tests.
  const Matrix& pair_distribution() const { return pair_probs_; }

 private:
  std::pair<AugmentKind, AugmentKind> SampleAugPair(Rng& rng) override;

  // Exponentiated-gradient update from the last observed loss.
  void UpdateDistribution();

  JoaoConfig joao_config_;
  std::vector<AugmentKind> menu_;
  Matrix pair_probs_;      // menu x menu, sums to 1
  int last_pair_i_ = 0;
  int last_pair_j_ = 0;
  double last_loss_ = 0.0;
  bool has_observation_ = false;
};

}  // namespace gradgcl

#endif  // GRADGCL_MODELS_JOAO_H_
