// Supervised GCN node classifier (Kipf & Welling, ICLR 2017) — the
// "Supervised GCN" reference row of the paper's Table V. Trains a
// 2-layer GCN end-to-end with cross-entropy on the train mask and
// early selection on the validation mask.

#ifndef GRADGCL_MODELS_GCN_SUPERVISED_H_
#define GRADGCL_MODELS_GCN_SUPERVISED_H_

#include "datasets/node_synthetic.h"
#include "nn/encoders.h"

namespace gradgcl {

// Supervised training hyperparameters.
struct SupervisedGcnConfig {
  int hidden_dim = 32;
  int epochs = 60;
  double lr = 0.01;
  double weight_decay = 5e-4;
  double dropout = 0.2;
  uint64_t seed = 1;
};

// Trains a supervised GCN on the dataset's train mask, tracks the best
// validation accuracy, and returns the test accuracy of the best-on-
// validation epoch.
double TrainSupervisedGcn(const NodeDataset& dataset,
                          const SupervisedGcnConfig& config);

}  // namespace gradgcl

#endif  // GRADGCL_MODELS_GCN_SUPERVISED_H_
