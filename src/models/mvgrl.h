// MVGRL (Hassani & Khasahmadi, ICML 2020): contrastive multi-view
// representation learning on graphs. The two views are the adjacency
// (local) structure and a PPR diffusion (global) structure; each view
// has its own encoder, and nodes of one view are contrasted against
// graph summaries of the other with a JSD estimator.
//
// Two task variants:
//  * MvgrlGraph — graph-level (Table IV): local-global JSD across
//    views; downstream embedding is the sum of both views' readouts.
//  * MvgrlNode  — node-level (Table VII): same cross-view objective on
//    one large graph; embeddings are the summed node embeddings.
//
// GradGCL plug-in: the gradient module contrasts the two views' graph
// (respectively node) projections pairwise (Eq. 6 with the JSD closed
// form, since MVGRL's base loss is JSD — the Fig. 11 ablation).

#ifndef GRADGCL_MODELS_MVGRL_H_
#define GRADGCL_MODELS_MVGRL_H_

#include "core/grad_gcl_loss.h"
#include "datasets/node_synthetic.h"
#include "graph/diffusion.h"
#include "nn/encoders.h"
#include "train/trainer.h"

namespace gradgcl {

// Shared MVGRL hyperparameters.
struct MvgrlConfig {
  EncoderConfig encoder;
  int proj_dim = 32;
  double ppr_alpha = 0.2;
  GradGclConfig grad_gcl;  // loss defaults to kJsd for MVGRL
};

// Builds the block-diagonal diffusion operator of a batch from
// per-graph PPR matrices (sparsified). Exposed for tests.
SparseMatrix BatchDiffusionOperator(const std::vector<Graph>& dataset,
                                    const std::vector<int>& indices,
                                    double alpha);

class MvgrlGraph : public GraphSslModel {
 public:
  MvgrlGraph(const MvgrlConfig& config, Rng& rng);

  Variable BatchLoss(const std::vector<Graph>& dataset,
                     const std::vector<int>& indices, Rng& rng) override;

  Matrix EmbedGraphs(const std::vector<Graph>& dataset) override;

  const MvgrlConfig& config() const { return config_; }

 private:
  MvgrlConfig config_;
  GraphEncoder encoder_adj_;
  GraphEncoder encoder_diff_;
  Mlp node_proj_;
  Mlp graph_proj_;
  GradGclLoss loss_;
};

class MvgrlNode : public NodeSslModel {
 public:
  MvgrlNode(const MvgrlConfig& config, Rng& rng);

  Variable EpochLoss(const NodeDataset& dataset, Rng& rng) override;

  Matrix EmbedNodes(const NodeDataset& dataset) override;

 private:
  // Caches the (expensive) diffusion operator of the dataset's graph.
  const SparseMatrix& DiffusionFor(const NodeDataset& dataset);

  MvgrlConfig config_;
  GraphEncoder encoder_adj_;
  GraphEncoder encoder_diff_;
  Mlp node_proj_;
  Mlp graph_proj_;
  GradGclLoss loss_;
  // Diffusion cache keyed by the dataset's graph pointer.
  const Graph* cached_graph_ = nullptr;
  SparseMatrix cached_diffusion_;
};

}  // namespace gradgcl

#endif  // GRADGCL_MODELS_MVGRL_H_
