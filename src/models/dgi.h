// DGI — Deep Graph Infomax (Veličković et al., ICLR 2019), the classic
// node-level self-supervised baseline of the paper's Table V. A GCN
// encoder produces node embeddings H; a readout builds the graph
// summary s; a bilinear discriminator D(h, s) = σ(h^T W s) is trained
// to tell real nodes from corruption-encoded nodes (row-shuffled
// features), maximising local-global mutual information.

#ifndef GRADGCL_MODELS_DGI_H_
#define GRADGCL_MODELS_DGI_H_

#include "nn/encoders.h"
#include "train/trainer.h"

namespace gradgcl {

// DGI hyperparameters.
struct DgiConfig {
  EncoderConfig encoder;  // kGcn for the standard setup
};

class Dgi : public NodeSslModel {
 public:
  Dgi(const DgiConfig& config, Rng& rng);

  Variable EpochLoss(const NodeDataset& dataset, Rng& rng) override;

  Matrix EmbedNodes(const NodeDataset& dataset) override;

 private:
  DgiConfig config_;
  GraphEncoder encoder_;
  Variable discriminator_;  // out_dim x out_dim bilinear form
};

}  // namespace gradgcl

#endif  // GRADGCL_MODELS_DGI_H_
