// Deterministic random number generation.
//
// Every stochastic component in the library takes an explicit seed and
// owns its own Rng instance; there is no global RNG state. The
// generator is xoshiro256++ seeded through SplitMix64, which gives
// high-quality streams from arbitrary 64-bit seeds and is fully
// reproducible across platforms (unlike std::mt19937 distributions,
// whose outputs are implementation-defined for e.g. normal variates).

#ifndef GRADGCL_COMMON_RNG_H_
#define GRADGCL_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace gradgcl {

// Complete serializable state of an Rng stream (the four xoshiro words
// plus the Box–Muller cache). Lets checkpoint/resume freeze a stream
// mid-flight and restart it bit-exactly (src/distributed/checkpoint).
struct RngState {
  uint64_t s[4] = {0, 0, 0, 0};
  bool has_cached_normal = false;
  double cached_normal = 0.0;
};

// Deterministic pseudo-random generator (xoshiro256++).
//
// Not thread-safe; use one instance per thread or component.
class Rng {
 public:
  // Seeds the stream via SplitMix64 expansion of `seed`.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  // Returns the next raw 64-bit output.
  uint64_t NextU64();

  // Uniform double in [0, 1).
  double Uniform();

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [0, n). Requires n > 0.
  int UniformInt(int n);

  // Standard normal variate (Box–Muller with caching).
  double Normal();

  // Normal variate with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  // Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  // Returns a uniformly random permutation of {0, ..., n-1}.
  std::vector<int> Permutation(int n);

  // Fisher–Yates shuffle of `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (int i = static_cast<int>(items.size()) - 1; i > 0; --i) {
      int j = UniformInt(i + 1);
      std::swap(items[i], items[j]);
    }
  }

  // Samples k distinct indices from {0, ..., n-1}. Requires 0 <= k <= n.
  std::vector<int> SampleWithoutReplacement(int n, int k);

  // Forks a statistically independent child stream. Useful for giving
  // each sub-component its own reproducible stream.
  Rng Fork();

  // Snapshot / restore of the full stream state. Restoring a snapshot
  // makes the stream produce exactly the outputs it would have
  // produced from the snapshot point, including a pending Box–Muller
  // cached normal.
  RngState state() const;
  void set_state(const RngState& state);

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace gradgcl

#endif  // GRADGCL_COMMON_RNG_H_
