#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace gradgcl {

namespace {

// SplitMix64 step, used to expand the user seed into generator state.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
  // Avoid the all-zero state (xoshiro's only invalid state).
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 1;
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  GRADGCL_CHECK(lo <= hi);
  return lo + (hi - lo) * Uniform();
}

int Rng::UniformInt(int n) {
  GRADGCL_CHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t bound = static_cast<uint64_t>(n);
  const uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
  uint64_t r;
  do {
    r = NextU64();
  } while (r >= limit);
  return static_cast<int>(r % bound);
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller. Uniform() can return 0, so nudge away from it.
  double u1 = Uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::Normal(double mean, double stddev) {
  GRADGCL_CHECK(stddev >= 0.0);
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) {
  GRADGCL_CHECK(p >= 0.0 && p <= 1.0);
  return Uniform() < p;
}

std::vector<int> Rng::Permutation(int n) {
  GRADGCL_CHECK(n >= 0);
  std::vector<int> perm(n);
  for (int i = 0; i < n; ++i) perm[i] = i;
  Shuffle(perm);
  return perm;
}

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  GRADGCL_CHECK(k >= 0 && k <= n);
  // Partial Fisher–Yates: O(n) setup, O(k) sampling.
  std::vector<int> pool(n);
  for (int i = 0; i < n; ++i) pool[i] = i;
  for (int i = 0; i < k; ++i) {
    const int j = i + UniformInt(n - i);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

Rng Rng::Fork() { return Rng(NextU64()); }

RngState Rng::state() const {
  RngState snapshot;
  for (int i = 0; i < 4; ++i) snapshot.s[i] = state_[i];
  snapshot.has_cached_normal = has_cached_normal_;
  snapshot.cached_normal = cached_normal_;
  return snapshot;
}

void Rng::set_state(const RngState& state) {
  // Reject the all-zero xoshiro state (never produced by state()).
  GRADGCL_CHECK(state.s[0] != 0 || state.s[1] != 0 || state.s[2] != 0 ||
                state.s[3] != 0);
  for (int i = 0; i < 4; ++i) state_[i] = state.s[i];
  has_cached_normal_ = state.has_cached_normal;
  cached_normal_ = state.cached_normal;
}

}  // namespace gradgcl
