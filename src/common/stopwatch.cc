#include "common/stopwatch.h"

namespace gradgcl {

Stopwatch::Stopwatch() : start_(std::chrono::steady_clock::now()) {}

void Stopwatch::Reset() { start_ = std::chrono::steady_clock::now(); }

double Stopwatch::ElapsedSeconds() const {
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(now - start_).count();
}

double Stopwatch::ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

}  // namespace gradgcl
