#include "common/parallel.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gradgcl {

namespace {

// Set while a thread (worker or caller) executes chunks of a region.
thread_local bool tls_in_region = false;

int HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

// GRADGCL_NUM_THREADS, or the hardware default when unset/invalid.
int EnvNumThreads() {
  const char* env = std::getenv("GRADGCL_NUM_THREADS");
  if (env != nullptr) {
    const int parsed = std::atoi(env);
    if (parsed >= 1) return parsed;
  }
  return HardwareThreads();
}

// Process-wide pool: `num_threads - 1` workers plus the calling thread.
// One region runs at a time (run_mutex_); nested calls never reach the
// pool because ParallelFor executes them inline (tls_in_region).
class ThreadPool {
 public:
  static ThreadPool& Instance() {
    static ThreadPool* pool = new ThreadPool();  // leaked: joined threads
    return *pool;                                // must outlive exit races
  }

  int num_threads() {
    std::lock_guard<std::mutex> config(config_mutex_);
    EnsureStartedLocked();
    return num_threads_;
  }

  // Fast path for ShouldParallelize: avoids the config mutex once the
  // pool is running.
  int cached_num_threads() {
    const int n = cached_threads_.load(std::memory_order_relaxed);
    return n > 0 ? n : num_threads();
  }

  void Resize(int n) {
    std::lock_guard<std::mutex> config(config_mutex_);
    GRADGCL_CHECK_MSG(!tls_in_region,
                      "SetNumThreads called inside a parallel region");
    StopLocked();
    num_threads_ = n >= 1 ? n : HardwareThreads();
    StartLocked();
  }

  void Run(int64_t begin, int64_t end, int64_t grain,
           const std::function<void(int64_t, int64_t)>& fn) {
    {
      std::lock_guard<std::mutex> config(config_mutex_);
      EnsureStartedLocked();
    }
    std::lock_guard<std::mutex> run(run_mutex_);
    if (grain < 1) grain = 1;
    const int threads = cached_threads_.load(std::memory_order_relaxed);
    const int64_t range = end - begin;
    const int64_t max_chunks = (range + grain - 1) / grain;
    const int nchunks =
        static_cast<int>(max_chunks < threads ? max_chunks : threads);
    if (nchunks <= 1 || threads <= 1) {
      tls_in_region = true;
      fn(begin, end);
      tls_in_region = false;
      return;
    }
    Region region;
    region.begin = begin;
    region.end = end;
    region.chunk = (range + nchunks - 1) / nchunks;
    region.nchunks = nchunks;
    region.fn = &fn;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      region_ = region;
      next_chunk_.store(0, std::memory_order_relaxed);
      workers_done_ = 0;
      ++generation_;
    }
    work_cv_.notify_all();
    // The caller works too; nested ParallelFor inside fn runs inline.
    tls_in_region = true;
    RunChunks(region);
    tls_in_region = false;
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return workers_done_ == num_workers_; });
  }

 private:
  // One parallel region: a static partition of [begin, end) into
  // nchunks contiguous chunks of size `chunk` (last one ragged).
  struct Region {
    int64_t begin = 0;
    int64_t end = 0;
    int64_t chunk = 0;
    int nchunks = 0;
    const std::function<void(int64_t, int64_t)>* fn = nullptr;
  };

  void EnsureStartedLocked() {
    if (cached_threads_.load(std::memory_order_relaxed) > 0) return;
    num_threads_ = EnvNumThreads();
    StartLocked();
  }

  void StartLocked() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      num_workers_ = num_threads_ - 1;
      workers_ready_ = 0;
    }
    workers_.reserve(num_threads_ - 1);
    for (int i = 0; i < num_threads_ - 1; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
    // Wait until every worker has registered (and snapshotted the
    // current generation). A region published before a worker's first
    // wait would otherwise be invisible to it, leaving the caller
    // waiting for a check-in that never comes.
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return workers_ready_ == num_workers_; });
    cached_threads_.store(num_threads_, std::memory_order_relaxed);
  }

  void StopLocked() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      shutdown_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& worker : workers_) worker.join();
    workers_.clear();
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = false;
    num_workers_ = 0;
  }

  void WorkerLoop() {
    tls_in_region = true;  // workers always run region chunks inline
    std::unique_lock<std::mutex> lock(mutex_);
    // Start from the pool's current generation: a worker spawned after
    // a resize must not mistake the previous pool's last region (whose
    // fn pointer is long dead) for fresh work.
    uint64_t seen_generation = generation_;
    ++workers_ready_;
    done_cv_.notify_all();
    for (;;) {
      work_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      const Region region = region_;
      lock.unlock();
      RunChunks(region);
      lock.lock();
      if (++workers_done_ == num_workers_) done_cv_.notify_one();
    }
  }

  // Claims chunks until the region is exhausted. Chunk boundaries are a
  // pure function of (range, grain, num_threads); which thread runs a
  // chunk is dynamic, but every chunk writes a disjoint output range in
  // a fixed iteration order, so scheduling cannot affect results.
  void RunChunks(const Region& region) {
    for (;;) {
      const int c = next_chunk_.fetch_add(1, std::memory_order_relaxed);
      if (c >= region.nchunks) break;
      const int64_t chunk_begin = region.begin + c * region.chunk;
      int64_t chunk_end = chunk_begin + region.chunk;
      if (chunk_end > region.end) chunk_end = region.end;
      (*region.fn)(chunk_begin, chunk_end);
    }
  }

  std::mutex config_mutex_;  // guards pool start/resize
  std::mutex run_mutex_;     // serializes top-level regions
  int num_threads_ = 0;
  std::atomic<int> cached_threads_{0};
  std::vector<std::thread> workers_;

  std::mutex mutex_;  // guards region_, generation_, counters below
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  Region region_;
  std::atomic<int> next_chunk_{0};
  uint64_t generation_ = 0;
  int num_workers_ = 0;   // workers of the current pool configuration
  int workers_ready_ = 0;  // workers registered since the last (re)start
  int workers_done_ = 0;
  bool shutdown_ = false;
};

}  // namespace

int NumThreads() { return ThreadPool::Instance().num_threads(); }

void SetNumThreads(int n) { ThreadPool::Instance().Resize(n); }

bool InParallelRegion() { return tls_in_region; }

namespace internal {

bool ShouldParallelize(int64_t range, int64_t grain) {
  if (tls_in_region || range <= (grain < 1 ? 1 : grain)) return false;
  return ThreadPool::Instance().cached_num_threads() > 1;
}

void ParallelForImpl(int64_t begin, int64_t end, int64_t grain,
                     const std::function<void(int64_t, int64_t)>& fn) {
  if (obs::MetricsEnabled()) {
    static obs::Counter* regions = new obs::Counter(
        obs::MetricsRegistry::Instance().GetCounter("parallel/regions"));
    regions->Add(1);
  }
  obs::TraceScope span("parallel/region");
  ThreadPool::Instance().Run(begin, end, grain, fn);
}

}  // namespace internal

}  // namespace gradgcl
