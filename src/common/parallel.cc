#include "common/parallel.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gradgcl {

namespace {

// Set while a thread (worker or caller) executes items of a region.
thread_local bool tls_in_region = false;

int HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

// GRADGCL_NUM_THREADS, or the hardware default when unset/invalid.
int EnvNumThreads() {
  const char* env = std::getenv("GRADGCL_NUM_THREADS");
  if (env != nullptr) {
    const int parsed = std::atoi(env);
    if (parsed >= 1) return parsed;
  }
  return HardwareThreads();
}

// GRADGCL_SPIN_US, or the hardware-aware default: ~100us of spinning
// buys cheap handoff between back-to-back regions on a real multicore,
// but on a single hardware thread a spinning worker only preempts the
// thread doing the work, so park immediately there.
int EnvSpinMicros() {
  const char* env = std::getenv("GRADGCL_SPIN_US");
  if (env != nullptr) {
    const int parsed = std::atoi(env);
    if (parsed >= 0) return parsed;
  }
  return HardwareThreads() > 1 ? 100 : 0;
}

// GRADGCL_PARALLEL_MIN_COST, or the calibrated default: below ~2^23
// estimated FLOPs (a 128x128x128 matmul is 4.2M) the persistent-worker
// handoff plus cache migration still beats any measured gain, so the
// cost model keeps such regions serial. On a single hardware thread
// fan-out can never speed anything up, so the bar rises to 2^27 —
// large enough that the wake overhead disappears into the region (and
// the 2-D GEMM tiling still engages, which pays for itself in cache
// locality alone).
int64_t EnvMinParallelCost() {
  const char* env = std::getenv("GRADGCL_PARALLEL_MIN_COST");
  if (env != nullptr) {
    const long long parsed = std::atoll(env);
    if (parsed >= 0) return static_cast<int64_t>(parsed);
  }
  return HardwareThreads() > 1 ? int64_t{1} << 23 : int64_t{1} << 27;
}

// Polite spin: keeps the core's pipeline from hammering the ticket line.
inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  asm volatile("pause" ::: "memory");
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

// Dispatched-region counters (registered once, bumped only when the
// metrics gate is open — one relaxed atomic load otherwise).
struct ParallelCounters {
  obs::Counter regions;   // regions that fanned out to the pool
  obs::Counter inlined;   // regions the cost model kept serial
  obs::Counter items;     // work items dispatched across all regions
  obs::Counter steals;    // items executed by a pool worker (not the caller)
  obs::Counter parks;     // worker park events (spin window expired)
  static ParallelCounters& Instance() {
    static ParallelCounters* c = new ParallelCounters{
        obs::MetricsRegistry::Instance().GetCounter("parallel/regions"),
        obs::MetricsRegistry::Instance().GetCounter("parallel/inlined_cost"),
        obs::MetricsRegistry::Instance().GetCounter("parallel/items"),
        obs::MetricsRegistry::Instance().GetCounter("parallel/steals"),
        obs::MetricsRegistry::Instance().GetCounter("parallel/parks"),
    };
    return *c;
  }
};

// One parallel region, published to the workers as plain data. Items
// are claimed off the ticket word (below), so workers only read these
// fields between a successful claim and the matching items_done_
// increment — a window during which the caller is provably blocked.
struct Region {
  // 1-D: item i covers [begin + i * chunk, min(end, begin + (i+1) * chunk)).
  int64_t begin = 0;
  int64_t end = 0;
  int64_t chunk = 0;
  // 2-D: item i is tile (i / col_tiles, i % col_tiles) of a
  // row_tiles x col_tiles grid with tile_rows x tile_cols tiles (last
  // tile of each axis ragged).
  int64_t rows = 0;
  int64_t cols = 0;
  int64_t col_tiles = 0;
  int64_t tile_rows = 0;
  int64_t tile_cols = 0;
  bool two_d = false;
  internal::RangeFn fn1 = nullptr;
  internal::TileFn fn2 = nullptr;
  void* ctx = nullptr;
  uint32_t nitems = 0;
};

// The ticket word: epoch in the high 48 bits, items *remaining* in the
// low 16. Publishing a region stores (epoch+1) << 16 | nitems; claiming
// an item CASes the low bits down by one, which atomically validates
// the epoch — a stale worker can never claim (or mis-account) an item
// of a region it did not see published. 16 bits bound nitems (the item
// cap below); 48 epoch bits outlast any realistic process.
constexpr uint64_t kItemBits = 16;
constexpr uint64_t kItemMask = (uint64_t{1} << kItemBits) - 1;
constexpr uint32_t kMaxItems = 4096;  // well under kItemMask

// Load-balance target: a few items per thread so a straggling worker
// never holds the region hostage, without claim-traffic on every row.
constexpr int kItemsPerThread = 4;

// Process-wide pool: `num_threads - 1` persistent workers plus the
// calling thread. One region runs at a time (run_mutex_); nested calls
// never reach the pool because ParallelFor executes them inline
// (tls_in_region).
class ThreadPool {
 public:
  static ThreadPool& Instance() {
    static ThreadPool* pool = new ThreadPool();  // leaked: joined threads
    return *pool;                                // must outlive exit races
  }

  int num_threads() {
    std::lock_guard<std::mutex> config(config_mutex_);
    EnsureStartedLocked();
    return num_threads_;
  }

  // Fast path for ShouldParallelize: avoids the config mutex once the
  // pool is running.
  int cached_num_threads() {
    const int n = cached_threads_.load(std::memory_order_relaxed);
    return n > 0 ? n : num_threads();
  }

  void Resize(int n) {
    GRADGCL_CHECK_MSG(!tls_in_region,
                      "SetNumThreads called inside a parallel region");
    std::lock_guard<std::mutex> config(config_mutex_);
    // Drain any in-flight region before joining its workers.
    std::lock_guard<std::mutex> run(run_mutex_);
    StopLocked();
    num_threads_ = n >= 1 ? n : HardwareThreads();
    StartLocked();
  }

  void Run(Region region) {
    {
      std::lock_guard<std::mutex> config(config_mutex_);
      EnsureStartedLocked();
    }
    std::lock_guard<std::mutex> run(run_mutex_);
    if (region.nitems <= 1 ||
        cached_threads_.load(std::memory_order_relaxed) <= 1) {
      tls_in_region = true;
      RunWholeRegion(region);
      tls_in_region = false;
      return;
    }
    const uint32_t nitems = region.nitems;
    region_ = region;
    items_done_.store(0, std::memory_order_relaxed);
    // Publish: region fields above happen-before this release store of
    // the bumped epoch + fresh item count.
    const uint64_t epoch =
        (ticket_.load(std::memory_order_relaxed) >> kItemBits) + 1;
    ticket_.store(epoch << kItemBits | nitems, std::memory_order_seq_cst);
    // Wake parked workers. seq_cst pairs with the parking protocol: a
    // worker either sees the new ticket in its predicate or has already
    // registered in num_parked_ and receives the notify.
    if (num_parked_.load(std::memory_order_seq_cst) > 0) {
      std::lock_guard<std::mutex> lock(park_mutex_);
      park_cv_.notify_all();
    }
    // The caller works too; nested ParallelFor inside fn runs inline.
    tls_in_region = true;
    ExecuteItems(epoch, /*is_worker=*/false);
    tls_in_region = false;
    AwaitRegionDone(nitems);
  }

  int spin_micros() const { return spin_us_.load(std::memory_order_relaxed); }
  void set_spin_micros(int us) {
    spin_us_.store(us < 0 ? 0 : us, std::memory_order_relaxed);
  }

  int64_t min_parallel_cost() const {
    return min_cost_.load(std::memory_order_relaxed);
  }
  void set_min_parallel_cost(int64_t cost) {
    min_cost_.store(cost < 0 ? 0 : cost, std::memory_order_relaxed);
  }

 private:
  ThreadPool()
      : spin_us_(EnvSpinMicros()), min_cost_(EnvMinParallelCost()) {}

  void EnsureStartedLocked() {
    if (cached_threads_.load(std::memory_order_relaxed) > 0) return;
    num_threads_ = EnvNumThreads();
    StartLocked();
  }

  void StartLocked() {
    workers_.reserve(num_threads_ - 1);
    for (int i = 0; i < num_threads_ - 1; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
    cached_threads_.store(num_threads_, std::memory_order_relaxed);
  }

  void StopLocked() {
    shutdown_.store(true, std::memory_order_seq_cst);
    {
      std::lock_guard<std::mutex> lock(park_mutex_);
      park_cv_.notify_all();
    }
    for (std::thread& worker : workers_) worker.join();
    workers_.clear();
    shutdown_.store(false, std::memory_order_relaxed);
  }

  // Runs every item of `region` on the calling thread (single-thread
  // pools and single-item regions skip the ticket entirely).
  void RunWholeRegion(const Region& region) {
    for (uint32_t i = 0; i < region.nitems; ++i) RunItem(region, i);
  }

  // Maps item id -> subrange / tile and invokes the region function.
  static void RunItem(const Region& region, uint32_t item) {
    if (!region.two_d) {
      const int64_t b = region.begin + static_cast<int64_t>(item) * region.chunk;
      int64_t e = b + region.chunk;
      if (e > region.end) e = region.end;
      region.fn1(region.ctx, b, e);
      return;
    }
    const int64_t rt = item / region.col_tiles;
    const int64_t ct = item % region.col_tiles;
    const int64_t r0 = rt * region.tile_rows;
    int64_t r1 = r0 + region.tile_rows;
    if (r1 > region.rows) r1 = region.rows;
    const int64_t c0 = ct * region.tile_cols;
    int64_t c1 = c0 + region.tile_cols;
    if (c1 > region.cols) c1 = region.cols;
    region.fn2(region.ctx, r0, r1, c0, c1);
  }

  // Claims and executes items of `epoch` until none remain. Claiming
  // CASes the ticket's low bits down, which validates the epoch in the
  // same atomic step; item ids run nitems-1 .. 0 (ids only select a
  // precomputed static chunk, so claim order never affects results).
  // Region fields are read only while holding an unfinished claim —
  // the caller cannot republish region_ until items_done_ reaches
  // nitems, and our claimed item is not yet counted.
  void ExecuteItems(uint64_t epoch, bool is_worker) {
    uint32_t executed = 0;
    uint64_t t = ticket_.load(std::memory_order_acquire);
    for (;;) {
      if ((t >> kItemBits) != epoch || (t & kItemMask) == 0) break;
      if (!ticket_.compare_exchange_weak(t, t - 1, std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
        continue;  // t reloaded by the failed CAS
      }
      const uint32_t item = static_cast<uint32_t>(t & kItemMask) - 1;
      RunItem(region_, item);
      ++executed;
      const uint32_t nitems = region_.nitems;
      if (items_done_.fetch_add(1, std::memory_order_acq_rel) + 1 == nitems) {
        // Last item: release a caller parked in AwaitRegionDone. The
        // lock orders this notify against the caller's predicate check.
        std::lock_guard<std::mutex> lock(done_mutex_);
        done_cv_.notify_one();
      }
      t = ticket_.load(std::memory_order_acquire);
    }
    if (is_worker && executed > 0 && obs::MetricsEnabled()) {
      ParallelCounters::Instance().steals.Add(executed);
    }
  }

  // Caller-side completion wait: spin through the window, then park.
  void AwaitRegionDone(uint32_t nitems) {
    if (items_done_.load(std::memory_order_acquire) >= nitems) return;
    const int spin_us = spin_micros();
    if (spin_us > 0) {
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::microseconds(spin_us);
      for (;;) {
        for (int i = 0; i < 64; ++i) {
          if (items_done_.load(std::memory_order_acquire) >= nitems) return;
          CpuRelax();
        }
        if (std::chrono::steady_clock::now() >= deadline) break;
      }
    }
    std::unique_lock<std::mutex> lock(done_mutex_);
    done_cv_.wait(lock, [&] {
      return items_done_.load(std::memory_order_acquire) >= nitems;
    });
  }

  void WorkerLoop() {
    tls_in_region = true;  // workers always run nested regions inline
    uint64_t seen_epoch = ~uint64_t{0};
    for (;;) {
      if (shutdown_.load(std::memory_order_relaxed)) return;
      const uint64_t epoch =
          ticket_.load(std::memory_order_acquire) >> kItemBits;
      if (epoch != seen_epoch) {
        seen_epoch = epoch;
        ExecuteItems(epoch, /*is_worker=*/true);
        continue;
      }
      if (!SpinForWork(seen_epoch)) Park(seen_epoch);
    }
  }

  // Spins through the window watching for a new epoch or shutdown.
  // Returns true when there is (possibly) fresh work, false to park.
  bool SpinForWork(uint64_t seen_epoch) {
    const int spin_us = spin_micros();
    if (spin_us <= 0) return false;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::microseconds(spin_us);
    for (;;) {
      for (int i = 0; i < 64; ++i) {
        if (shutdown_.load(std::memory_order_relaxed)) return true;
        if ((ticket_.load(std::memory_order_acquire) >> kItemBits) !=
            seen_epoch) {
          return true;
        }
        CpuRelax();
      }
      if (std::chrono::steady_clock::now() >= deadline) return false;
    }
  }

  // Condvar park. The seq_cst fetch_add on num_parked_ pairs with the
  // publisher's seq_cst ticket store + num_parked_ load: either the
  // publisher sees us registered and notifies under the mutex, or our
  // predicate (checked under the same mutex) sees the new ticket.
  void Park(uint64_t seen_epoch) {
    if (obs::MetricsEnabled()) ParallelCounters::Instance().parks.Add(1);
    std::unique_lock<std::mutex> lock(park_mutex_);
    num_parked_.fetch_add(1, std::memory_order_seq_cst);
    park_cv_.wait(lock, [&] {
      return shutdown_.load(std::memory_order_relaxed) ||
             (ticket_.load(std::memory_order_seq_cst) >> kItemBits) !=
                 seen_epoch;
    });
    num_parked_.fetch_sub(1, std::memory_order_relaxed);
  }

  std::mutex config_mutex_;  // guards pool start/resize
  std::mutex run_mutex_;     // serializes top-level regions
  int num_threads_ = 0;
  std::atomic<int> cached_threads_{0};
  std::atomic<int> spin_us_;
  std::atomic<int64_t> min_cost_;
  std::vector<std::thread> workers_;

  Region region_;  // current region; see Region for the access protocol
  std::atomic<uint64_t> ticket_{0};
  std::atomic<uint32_t> items_done_{0};
  std::atomic<bool> shutdown_{false};

  std::atomic<int> num_parked_{0};
  std::mutex park_mutex_;
  std::condition_variable park_cv_;
  std::mutex done_mutex_;
  std::condition_variable done_cv_;
};

// Chunks [0, range) into at most `threads * kItemsPerThread` items of
// at least `grain` iterations. Pure function of its arguments; the
// determinism contract only needs every item to be a contiguous
// subrange executed whole.
uint32_t PlanChunks(int64_t range, int64_t grain, int threads,
                    int64_t* chunk_out) {
  if (grain < 1) grain = 1;
  const int64_t max_items = (range + grain - 1) / grain;
  int64_t target = static_cast<int64_t>(threads) * kItemsPerThread;
  if (target > max_items) target = max_items;
  if (target > kMaxItems) target = kMaxItems;
  if (target < 1) target = 1;
  const int64_t chunk = (range + target - 1) / target;
  *chunk_out = chunk;
  return static_cast<uint32_t>((range + chunk - 1) / chunk);
}

}  // namespace

int NumThreads() { return ThreadPool::Instance().num_threads(); }

void SetNumThreads(int n) { ThreadPool::Instance().Resize(n); }

bool InParallelRegion() { return tls_in_region; }

int SpinMicros() { return ThreadPool::Instance().spin_micros(); }

void SetSpinMicros(int us) { ThreadPool::Instance().set_spin_micros(us); }

namespace internal {

int64_t MinParallelCost() {
  return ThreadPool::Instance().min_parallel_cost();
}

void SetMinParallelCost(int64_t cost) {
  ThreadPool::Instance().set_min_parallel_cost(cost);
}

bool ShouldParallelize(int64_t range, int64_t grain, int64_t total_cost) {
  if (tls_in_region || range <= (grain < 1 ? 1 : grain)) return false;
  if (total_cost >= 0 &&
      total_cost < ThreadPool::Instance().min_parallel_cost()) {
    if (obs::MetricsEnabled()) ParallelCounters::Instance().inlined.Add(1);
    return false;
  }
  return ThreadPool::Instance().cached_num_threads() > 1;
}

bool ShouldParallelize2D(int64_t rows, int64_t cols, int64_t row_grain,
                         int64_t col_grain, int64_t total_cost) {
  if (tls_in_region) return false;
  if (rows <= (row_grain < 1 ? 1 : row_grain) &&
      cols <= (col_grain < 1 ? 1 : col_grain)) {
    return false;
  }
  if (total_cost >= 0 &&
      total_cost < ThreadPool::Instance().min_parallel_cost()) {
    if (obs::MetricsEnabled()) ParallelCounters::Instance().inlined.Add(1);
    return false;
  }
  return ThreadPool::Instance().cached_num_threads() > 1;
}

void ParallelForImpl(int64_t begin, int64_t end, int64_t grain, RangeFn fn,
                     void* ctx) {
  ThreadPool& pool = ThreadPool::Instance();
  Region region;
  region.begin = begin;
  region.end = end;
  region.fn1 = fn;
  region.ctx = ctx;
  region.nitems =
      PlanChunks(end - begin, grain, pool.cached_num_threads(), &region.chunk);
  if (obs::MetricsEnabled()) {
    ParallelCounters& counters = ParallelCounters::Instance();
    counters.regions.Add(1);
    counters.items.Add(region.nitems);
  }
  obs::TraceScope span("parallel/region");
  pool.Run(region);
}

void ParallelFor2DImpl(int64_t rows, int64_t cols, int64_t row_grain,
                       int64_t col_grain, TileFn fn, void* ctx) {
  ThreadPool& pool = ThreadPool::Instance();
  if (row_grain < 1) row_grain = 1;
  if (col_grain < 1) col_grain = 1;
  const int threads = pool.cached_num_threads();
  const int64_t target = static_cast<int64_t>(threads) * kItemsPerThread;
  // Grow the tile grid one split at a time, always splitting the axis
  // whose tiles are currently largest relative to its grain — rows
  // first for tall outputs (cheapest: B-panel packing is shared down a
  // column strip), columns once row tiles approach the grain. Pure
  // function of (shape, grains, threads); tile boundaries never affect
  // bits because each output element lives entirely inside one tile.
  int64_t row_tiles = 1, col_tiles = 1;
  while (row_tiles * col_tiles < target &&
         row_tiles * col_tiles < kMaxItems) {
    const bool can_r = rows / (row_tiles + 1) >= row_grain;
    const bool can_c = cols / (col_tiles + 1) >= col_grain;
    if (!can_r && !can_c) break;
    const double r_ratio =
        static_cast<double>(rows) / (row_tiles + 1) / row_grain;
    const double c_ratio =
        static_cast<double>(cols) / (col_tiles + 1) / col_grain;
    if (can_r && (!can_c || r_ratio >= c_ratio)) {
      ++row_tiles;
    } else {
      ++col_tiles;
    }
  }
  Region region;
  region.two_d = true;
  region.rows = rows;
  region.cols = cols;
  region.col_tiles = col_tiles;
  region.tile_rows = (rows + row_tiles - 1) / row_tiles;
  region.tile_cols = (cols + col_tiles - 1) / col_tiles;
  // Ceil-divide tile sizes can cover the axis in fewer tiles than
  // planned; recompute the actual grid so no empty items exist.
  const int64_t actual_rt = (rows + region.tile_rows - 1) / region.tile_rows;
  const int64_t actual_ct = (cols + region.tile_cols - 1) / region.tile_cols;
  region.col_tiles = actual_ct;
  region.fn2 = fn;
  region.ctx = ctx;
  region.nitems = static_cast<uint32_t>(actual_rt * actual_ct);
  if (obs::MetricsEnabled()) {
    ParallelCounters& counters = ParallelCounters::Instance();
    counters.regions.Add(1);
    counters.items.Add(region.nitems);
  }
  obs::TraceScope span("parallel/region");
  pool.Run(region);
}

}  // namespace internal

}  // namespace gradgcl
