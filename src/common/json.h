// Minimal JSON string escaping shared by the bench report writers
// (BENCH_*.json) and the observability emitters (metrics JSONL,
// Chrome-trace JSON). Header-only: the helper is needed below the
// lowest library layer (obs) and by standalone bench binaries alike.

#ifndef GRADGCL_COMMON_JSON_H_
#define GRADGCL_COMMON_JSON_H_

#include <cstdio>
#include <string>
#include <string_view>

namespace gradgcl {

// Escapes `s` for embedding inside a double-quoted JSON string:
// backslash, double quote, and control characters (U+0000..U+001F) are
// escaped; everything else (including multi-byte UTF-8 sequences like
// the ±/ℓ glyphs in bench labels) passes through verbatim.
inline std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Convenience: `"escaped"` with the surrounding quotes included.
inline std::string JsonString(std::string_view s) {
  return "\"" + JsonEscape(s) + "\"";
}

}  // namespace gradgcl

#endif  // GRADGCL_COMMON_JSON_H_
