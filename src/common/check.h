// Lightweight precondition-checking macros in the spirit of glog's CHECK.
//
// The library does not use exceptions on its hot paths; violated
// preconditions (dimension mismatches, out-of-range indices, invalid
// configuration) abort the process with a file:line diagnostic. Tests
// exercise these paths with gtest death tests.

#ifndef GRADGCL_COMMON_CHECK_H_
#define GRADGCL_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace gradgcl::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr, const char* msg) {
  std::fprintf(stderr, "GRADGCL_CHECK failed at %s:%d: %s%s%s\n", file, line,
               expr, msg[0] != '\0' ? " — " : "", msg);
  std::fflush(stderr);
  std::abort();
}

}  // namespace gradgcl::internal

// Aborts with a diagnostic unless `cond` holds. Always on (also in
// release builds): the cost is negligible next to the numeric work.
#define GRADGCL_CHECK(cond)                                              \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::gradgcl::internal::CheckFailed(__FILE__, __LINE__, #cond, "");   \
    }                                                                    \
  } while (0)

// Like GRADGCL_CHECK but with an explanatory message literal.
#define GRADGCL_CHECK_MSG(cond, msg)                                     \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::gradgcl::internal::CheckFailed(__FILE__, __LINE__, #cond, msg);  \
    }                                                                    \
  } while (0)

// Debug-only check for per-element hot paths (e.g. Matrix::operator()
// bounds): active in debug builds, compiled out under NDEBUG so checked
// element access costs nothing in release kernels. The condition is
// still type-checked (but never evaluated) in release builds.
#ifdef NDEBUG
#define GRADGCL_DCHECK(cond)     \
  do {                           \
    if (false && (cond)) {       \
    }                            \
  } while (0)
#else
#define GRADGCL_DCHECK(cond) GRADGCL_CHECK(cond)
#endif

#endif  // GRADGCL_COMMON_CHECK_H_
