// Deterministic parallel-for substrate on persistent workers.
//
// A lazily-initialized, process-wide pool of persistent workers executes
// parallel regions published as plain structs: a range, a grain, and a
// non-owning function pointer + context — no std::function, no heap
// allocation anywhere on the dispatch path. Workers spin briefly on an
// atomic epoch ticket before parking on a condvar (GRADGCL_SPIN_US
// controls the window; 0 parks immediately), so back-to-back regions
// pay nanoseconds of handoff instead of a wake/sleep round trip per
// call. Work items are claimed dynamically off the ticket word and
// completion is a single atomic countdown — a worker that misses a
// region entirely is harmless, the caller just runs those items itself.
//
// Two region shapes:
//  * ParallelFor(begin, end, grain, [cost,] fn) invokes
//    fn(chunk_begin, chunk_end) over a static contiguous partition of
//    [begin, end); chunks hold at least `grain` iterations.
//  * ParallelFor2D(rows, cols, row_grain, col_grain, cost, fn) invokes
//    fn(r0, r1, c0, c1) over a static 2-D tile grid — the GEMM path,
//    where threading over (M-tile x N-tile) items beats raw row strips
//    once rows alone cannot feed every worker.
//
// Cost model: the overloads taking `cost_per_iter` (an estimate of the
// FLOPs — or comparable work units — per iteration / output element)
// run the region serially inline when the total estimated cost is below
// a calibrated threshold (GRADGCL_PARALLEL_MIN_COST; default 2^23, or
// 2^27 on single-core hosts where fan-out can never pay),
// where dispatch overhead would swamp any speedup. Small kernels
// therefore cost exactly one direct call, at every pool size. The
// legacy no-cost overload always fans out when range > grain (grids of
// coarse units: CV folds, bench cells).
//
// Determinism contract (DESIGN.md §5 "Threading model"): every output
// element must be computed entirely inside one chunk/tile with a
// thread-count-independent iteration order, so results are bit-identical
// for every pool size — chunk and tile boundaries may move, but no
// floating-point sum is ever split across items.
//
// Pool size comes from GRADGCL_NUM_THREADS (default: hardware
// concurrency; "1" restores fully serial execution). SetNumThreads
// reconfigures the pool at runtime — safe concurrently with ParallelFor
// callers on other threads (regions and resizes serialize), not from
// inside a region.
//
// Nested ParallelFor calls (e.g. a parallel k-fold probe inside a
// parallel bench grid cell) run serially inline on the calling worker;
// only the outermost region fans out. ParallelFor is safe to call from
// any thread, including before the pool has started.

#ifndef GRADGCL_COMMON_PARALLEL_H_
#define GRADGCL_COMMON_PARALLEL_H_

#include <cstdint>
#include <type_traits>
#include <utility>

namespace gradgcl {

// Number of threads the pool runs with (>= 1). Starts the pool lazily.
int NumThreads();

// Reconfigures the pool to `n` threads (n <= 0 selects the hardware
// default). Waits for any in-flight region, then joins the old workers;
// safe to call concurrently with ParallelFor from other threads, not
// from inside a region.
void SetNumThreads(int n);

// True when the calling thread is executing inside a parallel region;
// nested ParallelFor calls then run inline.
bool InParallelRegion();

// Spin-before-park window in microseconds. Workers (and callers waiting
// for region completion) spin on the epoch ticket this long before
// falling back to a condvar; 0 restores pure condvar parking — the
// right setting for single-core or oversubscribed machines, where a
// spinning thread only steals cycles from the one doing the work.
// Seeded from GRADGCL_SPIN_US (default: ~100us with >1 hardware
// threads, 0 otherwise).
int SpinMicros();
void SetSpinMicros(int us);

namespace internal {

// Sentinel for "caller gave no cost estimate": skip the cost model.
inline constexpr int64_t kUnknownCost = -1;

// Current parallelization threshold (estimated FLOPs below which a
// cost-hinted region runs serially inline). Seeded from
// GRADGCL_PARALLEL_MIN_COST — default 2^23 with >1 hardware threads,
// 2^27 on a single-core machine where fan-out can never pay. The setter
// exists so tests can force fan-out (0) or force serial (INT64_MAX)
// regardless of the host.
int64_t MinParallelCost();
void SetMinParallelCost(int64_t cost);

// Non-owning handoff: fn pointers invoked with the caller-owned context
// (the address of the caller's lambda, alive for the whole region).
using RangeFn = void (*)(void* ctx, int64_t begin, int64_t end);
using TileFn = void (*)(void* ctx, int64_t r0, int64_t r1, int64_t c0,
                        int64_t c1);

// True when [0, range) should fan out to the pool: more than one
// thread, range > grain, not already inside a region, and (when
// total_cost >= 0) total_cost at or above the parallelization
// threshold.
bool ShouldParallelize(int64_t range, int64_t grain, int64_t total_cost);

// True when an (rows x cols) tile grid should fan out (same gates,
// with at least one axis splittable).
bool ShouldParallelize2D(int64_t rows, int64_t cols, int64_t row_grain,
                         int64_t col_grain, int64_t total_cost);

// Dispatches fn over static contiguous chunks on the pool.
void ParallelForImpl(int64_t begin, int64_t end, int64_t grain, RangeFn fn,
                     void* ctx);

// Dispatches fn over a static (row tile x col tile) grid on the pool.
// Tiles hold at least row_grain rows and col_grain cols (unless the
// whole axis is smaller).
void ParallelFor2DImpl(int64_t rows, int64_t cols, int64_t row_grain,
                       int64_t col_grain, TileFn fn, void* ctx);

// range * cost_per_iter, saturating instead of overflowing.
inline int64_t TotalCost(int64_t range, int64_t cost_per_iter) {
  if (cost_per_iter < 0) return kUnknownCost;
  if (cost_per_iter == 0 || range <= 0) return 0;
  constexpr int64_t kMax = INT64_MAX;
  if (range > kMax / cost_per_iter) return kMax;
  return range * cost_per_iter;
}

template <typename Fn>
void InvokeRange(void* ctx, int64_t begin, int64_t end) {
  (*static_cast<Fn*>(ctx))(begin, end);
}

template <typename Fn>
void InvokeTile(void* ctx, int64_t r0, int64_t r1, int64_t c0, int64_t c1) {
  (*static_cast<Fn*>(ctx))(r0, r1, c0, c1);
}

}  // namespace internal

// Invokes fn(chunk_begin, chunk_end) over a static contiguous partition
// of [begin, end); chunks hold at least `grain` iterations and the
// total estimated cost `(end - begin) * cost_per_iter` gates dispatch
// (see the cost model above). Serial execution (small range or cost,
// single thread, nested call) invokes fn(begin, end) once — a direct
// inlined call with zero dispatch overhead.
template <typename Fn>
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 int64_t cost_per_iter, Fn&& fn) {
  if (end <= begin) return;
  if (!internal::ShouldParallelize(
          end - begin, grain, internal::TotalCost(end - begin, cost_per_iter))) {
    fn(begin, end);
    return;
  }
  internal::ParallelForImpl(begin, end, grain,
                            &internal::InvokeRange<std::remove_reference_t<Fn>>,
                            const_cast<void*>(static_cast<const void*>(&fn)));
}

// Legacy overload without a cost estimate: fans out whenever
// range > grain. For grids of coarse units (folds, bench cells) where
// per-iteration cost is large but unknown.
template <typename Fn>
void ParallelFor(int64_t begin, int64_t end, int64_t grain, Fn&& fn) {
  ParallelFor(begin, end, grain, internal::kUnknownCost,
              std::forward<Fn>(fn));
}

// Invokes fn(r0, r1, c0, c1) over a static 2-D tile partition of the
// (rows x cols) output grid; every tile holds at least row_grain rows
// and col_grain cols (unless an axis is smaller outright), and
// cost_per_cell estimates the FLOPs per output element for the cost
// model. Serial execution invokes fn(0, rows, 0, cols) once.
template <typename Fn>
void ParallelFor2D(int64_t rows, int64_t cols, int64_t row_grain,
                   int64_t col_grain, int64_t cost_per_cell, Fn&& fn) {
  if (rows <= 0 || cols <= 0) return;
  if (!internal::ShouldParallelize2D(
          rows, cols, row_grain, col_grain,
          internal::TotalCost(rows * cols, cost_per_cell))) {
    fn(0, rows, 0, cols);
    return;
  }
  internal::ParallelFor2DImpl(
      rows, cols, row_grain, col_grain,
      &internal::InvokeTile<std::remove_reference_t<Fn>>,
      const_cast<void*>(static_cast<const void*>(&fn)));
}

}  // namespace gradgcl

#endif  // GRADGCL_COMMON_PARALLEL_H_
