// Deterministic parallel-for substrate.
//
// A lazily-initialized, process-wide thread pool executes
// ParallelFor(begin, end, grain, fn) by splitting [begin, end) into at
// most NumThreads() contiguous chunks of at least `grain` iterations
// and invoking fn(chunk_begin, chunk_end) once per chunk. Determinism
// contract (DESIGN.md §5 "Threading model"): every output element must
// be computed entirely inside one chunk with a thread-count-independent
// iteration order, so results are bit-identical for every pool size —
// chunk boundaries may move, but no floating-point sum is ever split
// across chunks.
//
// Pool size comes from GRADGCL_NUM_THREADS (default: hardware
// concurrency; "1" restores fully serial execution). SetNumThreads
// reconfigures the pool at runtime, which the determinism tests and the
// kernel-scaling bench use to compare thread counts in-process.
//
// Nested ParallelFor calls (e.g. a parallel k-fold probe inside a
// parallel bench grid cell) run serially inline on the calling worker;
// only the outermost region fans out. ParallelFor is safe to call from
// any thread, including before the pool has started.

#ifndef GRADGCL_COMMON_PARALLEL_H_
#define GRADGCL_COMMON_PARALLEL_H_

#include <cstdint>
#include <functional>
#include <utility>

namespace gradgcl {

// Number of threads the pool runs with (>= 1). Starts the pool lazily.
int NumThreads();

// Reconfigures the pool to `n` threads (n <= 0 selects the hardware
// default). Joins the old workers first; safe to call between parallel
// regions, not from inside one.
void SetNumThreads(int n);

// True when the calling thread is executing inside a parallel region;
// nested ParallelFor calls then run inline.
bool InParallelRegion();

namespace internal {

// True when [0, range) should fan out to the pool: more than one
// thread, range > grain, and not already inside a region.
bool ShouldParallelize(int64_t range, int64_t grain);

// Dispatches fn over static contiguous chunks on the pool.
void ParallelForImpl(int64_t begin, int64_t end, int64_t grain,
                     const std::function<void(int64_t, int64_t)>& fn);

}  // namespace internal

// Invokes fn(chunk_begin, chunk_end) over a static contiguous partition
// of [begin, end); chunks hold at least `grain` iterations. Serial
// execution (small range, single thread, nested call) invokes
// fn(begin, end) once, with no std::function or allocation overhead.
template <typename Fn>
void ParallelFor(int64_t begin, int64_t end, int64_t grain, Fn&& fn) {
  if (end <= begin) return;
  if (!internal::ShouldParallelize(end - begin, grain)) {
    fn(begin, end);
    return;
  }
  internal::ParallelForImpl(
      begin, end, grain,
      std::function<void(int64_t, int64_t)>(std::forward<Fn>(fn)));
}

}  // namespace gradgcl

#endif  // GRADGCL_COMMON_PARALLEL_H_
