// Wall-clock stopwatch used by the efficiency experiments (Table VIII)
// and the trainer's per-epoch timing hooks.

#ifndef GRADGCL_COMMON_STOPWATCH_H_
#define GRADGCL_COMMON_STOPWATCH_H_

#include <chrono>

namespace gradgcl {

// Monotonic wall-clock stopwatch. Starts running on construction.
class Stopwatch {
 public:
  Stopwatch();

  // Restarts the stopwatch from zero.
  void Reset();

  // Elapsed time since construction or the last Reset, in seconds.
  double ElapsedSeconds() const;

  // Elapsed time in milliseconds.
  double ElapsedMillis() const;

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace gradgcl

#endif  // GRADGCL_COMMON_STOPWATCH_H_
