#include "retrieval/flat_index.h"

#include <cmath>
#include <utility>

#include "common/check.h"
#include "common/parallel.h"
#include "tensor/ops.h"
#include "tensor/simd.h"

namespace gradgcl::retrieval {

FlatIndex FlatIndex::BuildExact(const Matrix& corpus) {
  GRADGCL_CHECK(corpus.rows() >= 1 && corpus.cols() >= 1);
  FlatIndex index;
  index.exact_ = true;
  index.corpus_ = RowNormalize(corpus);
  return index;
}

FlatIndex FlatIndex::FromStore(QuantizedStore store) {
  GRADGCL_CHECK(store.is_open());
  FlatIndex index;
  index.exact_ = false;
  index.store_ = std::move(store);
  return index;
}

int64_t FlatIndex::num_vectors() const {
  return exact_ ? corpus_.rows() : store_.num_vectors();
}

int FlatIndex::dim() const { return exact_ ? corpus_.cols() : store_.dim(); }

std::vector<Neighbor> FlatIndex::Search(const double* query, int k) const {
  const int d = dim();
  const int64_t n = num_vectors();
  std::vector<double> scores(static_cast<size_t>(n));
  if (exact_) {
    // Exact cosine: normalize the query once, then one pinned-chain f64
    // dot per row.
    const simd::KernelTable& kt = simd::Active();
    const double norm_sq = kt.dot(query, query, d);
    const double inv_norm = norm_sq > 0.0 ? 1.0 / std::sqrt(norm_sq) : 0.0;
    std::vector<double> q(query, query + d);
    for (int j = 0; j < d; ++j) q[j] *= inv_norm;
    for (int64_t i = 0; i < n; ++i) {
      scores[i] = kt.dot(q.data(), corpus_.data() + i * d, d);
    }
  } else if (store_.tier() == Tier::kInt8) {
    // Asymmetric scoring against the unit query (normalized up front,
    // exactly like the IVF cell scans, so nprobe == nlist reproduces
    // this path bitwise).
    const simd::KernelTable& kt = simd::Active();
    const double norm_sq = kt.dot(query, query, d);
    const double inv_norm = norm_sq > 0.0 ? 1.0 / std::sqrt(norm_sq) : 0.0;
    std::vector<double> q(query, query + d);
    for (int j = 0; j < d; ++j) q[j] *= inv_norm;
    std::vector<int8_t> codes(static_cast<size_t>(d));
    double query_scale = 0.0;
    double query_bias = 0.0;
    store_.EncodeQuery(q.data(), codes.data(), &query_scale, &query_bias);
    store_.ScoreRowsInt8(codes.data(), query_scale, query_bias, 0, n,
                         scores.data());
  } else {
    // bf16: scan widens row codes on the fly against the unit query.
    const simd::KernelTable& kt = simd::Active();
    const double norm_sq = kt.dot(query, query, d);
    const double inv_norm = norm_sq > 0.0 ? 1.0 / std::sqrt(norm_sq) : 0.0;
    std::vector<double> q(query, query + d);
    for (int j = 0; j < d; ++j) q[j] *= inv_norm;
    store_.ScoreRowsBf16(q.data(), 0, n, scores.data());
  }
  return TopKNeighbors(scores.data(), n, k);
}

std::vector<std::vector<Neighbor>> FlatIndex::SearchBatch(const Matrix& queries,
                                                          int k) const {
  GRADGCL_CHECK(queries.cols() == dim());
  const int nq = queries.rows();
  std::vector<std::vector<Neighbor>> results(nq);
  // Parallel over whole queries only: each result depends on exactly
  // one query's serial scan, so the batch is bit-identical at every
  // thread count.
  ParallelFor(0, nq, /*grain=*/1,
              /*cost_per_iter=*/num_vectors() * dim(),
              [&](int64_t begin, int64_t end) {
                for (int64_t qi = begin; qi < end; ++qi) {
                  results[qi] = Search(queries.data() + qi * queries.cols(), k);
                }
              });
  return results;
}

}  // namespace gradgcl::retrieval
