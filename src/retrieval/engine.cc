#include "retrieval/engine.h"

#include <algorithm>
#include <cstdlib>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/parallel.h"
#include "obs/trace.h"

namespace gradgcl::retrieval {

namespace {

// Process-wide histogram edges (same constraint as serve: re-registering
// a metric name requires identical edges).
const std::vector<double>& LatencyEdgesUs() {
  static const std::vector<double>* edges = new std::vector<double>{
      10.0,     20.0,     50.0,     100.0,    200.0,    500.0,
      1000.0,   2000.0,   5000.0,   10000.0,  20000.0,  50000.0,
      100000.0, 200000.0, 500000.0, 1000000.0};
  return *edges;
}

const std::vector<double>& BatchSizeEdges() {
  static const std::vector<double>* edges = new std::vector<double>{
      1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0};
  return *edges;
}

std::chrono::steady_clock::duration MicrosDuration(double micros) {
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double, std::micro>(micros));
}

// Shard-count resolution mirrors serve (shared ingress idiom, shared
// env knob).
int ResolveNumShards(const RetrievalOptions& options) {
  if (options.num_shards > 0) return options.num_shards;
  if (const char* env = std::getenv("GRADGCL_SERVE_SHARDS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= 1024) {
      return static_cast<int>(v);
    }
  }
  return std::max(1, options.num_workers);
}

int ResolveNprobe(const RetrievalOptions& options, const IvfIndex* ivf) {
  if (ivf == nullptr) return 0;
  if (options.nprobe > 0) return std::min(options.nprobe, ivf->nlist());
  if (const char* env = std::getenv("GRADGCL_RETRIEVAL_NPROBE")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= 1 << 20) {
      return std::min(static_cast<int>(v), ivf->nlist());
    }
  }
  return ivf->nprobe();
}

}  // namespace

const char* RetrievalStatusName(RetrievalStatus status) {
  switch (status) {
    case RetrievalStatus::kOk:
      return "ok";
    case RetrievalStatus::kOverloaded:
      return "overloaded";
    case RetrievalStatus::kShutdown:
      return "shutdown";
  }
  return "?";
}

RetrievalEngine::RetrievalEngine(const IvfIndex& index,
                                 const RetrievalOptions& options)
    : RetrievalEngine(nullptr, &index, options) {}

RetrievalEngine::RetrievalEngine(const FlatIndex& index,
                                 const RetrievalOptions& options)
    : RetrievalEngine(&index, nullptr, options) {}

RetrievalEngine::RetrievalEngine(const FlatIndex* flat, const IvfIndex* ivf,
                                 const RetrievalOptions& options)
    : options_(options),
      flat_(flat),
      ivf_(ivf),
      nprobe_(ResolveNprobe(options, ivf)),
      wait_dur_(MicrosDuration(options.max_wait_micros)),
      steal_poll_(MicrosDuration(
          std::clamp(options.max_wait_micros, 200.0, 2000.0))),
      requests_total_(
          obs::MetricsRegistry::Instance().GetCounter("retrieval/requests")),
      rejected_total_(
          obs::MetricsRegistry::Instance().GetCounter("retrieval/rejected")),
      batches_total_(
          obs::MetricsRegistry::Instance().GetCounter("retrieval/batches")),
      queries_total_(
          obs::MetricsRegistry::Instance().GetCounter("retrieval/queries")),
      steals_total_(
          obs::MetricsRegistry::Instance().GetCounter("retrieval/steals")),
      latency_us_(obs::MetricsRegistry::Instance().GetHistogram(
          "retrieval/latency_us", LatencyEdgesUs())),
      batch_queries_(obs::MetricsRegistry::Instance().GetHistogram(
          "retrieval/batch_queries", BatchSizeEdges())) {
  GRADGCL_CHECK(options_.num_workers >= 0);
  GRADGCL_CHECK(options_.num_shards >= 0);
  GRADGCL_CHECK(options_.max_batch_queries >= 1);
  GRADGCL_CHECK(options_.max_queue_queries >= 1);
  GRADGCL_CHECK(options_.max_wait_micros >= 0.0);
  GRADGCL_CHECK((flat_ != nullptr) != (ivf_ != nullptr));
  const int num_shards = ResolveNumShards(options_);
  shards_.reserve(num_shards);
  for (int i = 0; i < num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->capacity = options_.max_queue_queries / num_shards +
                      (i < options_.max_queue_queries % num_shards ? 1 : 0);
    shard->depth_gauge = obs::MetricsRegistry::Instance().GetGauge(
        "retrieval/queue_depth/shard" + std::to_string(i));
    shard->depth_gauge.Set(0.0);
    shards_.push_back(std::move(shard));
  }
  workers_.reserve(options_.num_workers);
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i % this->num_shards()); });
  }
}

RetrievalEngine::~RetrievalEngine() { Shutdown(); }

int RetrievalEngine::dim() const {
  return flat_ != nullptr ? flat_->dim() : ivf_->dim();
}

RetrievalResult RetrievalEngine::Search(const Matrix& queries, int k) {
  GRADGCL_CHECK_MSG(queries.rows() >= 1, "Search needs >= 1 query row");
  GRADGCL_CHECK(queries.cols() == dim() && k >= 1);
  Request req;
  req.queries = &queries;
  req.k = k;
  req.arrival = Clock::now();
  const int n = queries.rows();
  const int num_shards = this->num_shards();
  static std::atomic<uint32_t> submitter_seq{0};
  thread_local uint32_t tls_cursor =
      submitter_seq.fetch_add(1, std::memory_order_relaxed);
  const uint32_t start = tls_cursor++;
  bool queued = false;
  int queued_shard = -1;
  for (int s_try = 0; s_try < num_shards && !queued; ++s_try) {
    const int index = static_cast<int>((start + s_try) % num_shards);
    Shard& s = *shards_[index];
    std::lock_guard<std::mutex> lock(s.mu);
    if (stopping_.load(std::memory_order_acquire)) {
      rejected_total_.Add(1);
      return RetrievalResult{RetrievalStatus::kShutdown, {}};
    }
    if (s.queued_queries + n > s.capacity) continue;  // overflow to next
    s.queue.push_back(&req);
    s.queued_queries += n;
    s.depth.store(s.queued_queries, std::memory_order_relaxed);
    s.depth_gauge.Set(s.queued_queries);
    s.work_cv.notify_one();
    queued = true;
    queued_shard = index;
  }
  if (!queued) {
    rejected_total_.Add(1);
    return RetrievalResult{RetrievalStatus::kOverloaded, {}};
  }
  // Cross-shard wake protocol: see serve/engine.cc EmbedOn for the
  // seq_cst case analysis; this is the same code against the same
  // shard fields.
  if (options_.num_workers > 0 && queued_shard >= options_.num_workers) {
    work_epoch_.fetch_add(1, std::memory_order_seq_cst);
    Shard& wake = *shards_[queued_shard % options_.num_workers];
    if (wake.parked.load(std::memory_order_seq_cst) > 0 &&
        !wake.wake_pending.exchange(true, std::memory_order_seq_cst)) {
      { std::lock_guard<std::mutex> wake_lock(wake.mu); }
      wake.work_cv.notify_one();
    }
  }
  {
    std::unique_lock<std::mutex> lock(req.done_mu);
    req.done_cv.wait(lock, [&] { return req.done; });
  }
  latency_us_.Observe(std::chrono::duration<double, std::micro>(
                          Clock::now() - req.arrival)
                          .count());
  requests_total_.Add(1);
  RetrievalResult out;
  out.status = req.status;
  out.neighbors = std::move(req.result);
  return out;
}

bool RetrievalEngine::LaunchDueLocked(const Shard& s,
                                      Clock::time_point now) const {
  if (s.queue.empty()) return false;
  if (s.queued_queries >= options_.max_batch_queries) return true;
  if (wait_dur_.count() == 0) return true;  // launch-when-free
  return now >= s.queue.front()->arrival + wait_dur_;
}

void RetrievalEngine::WorkerLoop(int home_index) {
  Shard& home = *shards_[home_index];
  std::unique_lock<std::mutex> lock(home.mu);
  for (;;) {
    const bool stop = stopping_.load(std::memory_order_acquire);
    if (stop && options_.cancel_pending_on_shutdown) {
      CancelShardLocked(home);
      return;
    }
    if (!home.queue.empty() && (stop || LaunchDueLocked(home, Clock::now()))) {
      int queries = 0;
      std::vector<Request*> batch = PopBatchLocked(home, &queries);
      lock.unlock();
      TopUpBatch(&batch, &queries);
      ExecuteBatch(batch);
      lock.lock();
      continue;
    }
    if (stop && home.queue.empty()) return;
    const uint64_t epoch = work_epoch_.load(std::memory_order_acquire);
    lock.unlock();
    const bool stole = TryStealBatch(home_index);
    lock.lock();
    if (stole) continue;
    if (stopping_.load(std::memory_order_acquire)) continue;
    home.wake_pending.store(false, std::memory_order_seq_cst);
    home.parked.fetch_add(1, std::memory_order_seq_cst);
    if (work_epoch_.load(std::memory_order_seq_cst) != epoch) {
      home.parked.fetch_sub(1, std::memory_order_relaxed);
      continue;
    }
    if (!home.queue.empty()) {
      if (LaunchDueLocked(home, Clock::now())) {
        home.parked.fetch_sub(1, std::memory_order_relaxed);
        continue;
      }
      const auto deadline = home.queue.front()->arrival + wait_dur_;
      home.work_cv.wait_until(lock,
                              std::min(deadline, Clock::now() + steal_poll_));
    } else {
      home.work_cv.wait_for(lock, steal_poll_);
    }
    home.parked.fetch_sub(1, std::memory_order_relaxed);
  }
}

std::vector<RetrievalEngine::Request*> RetrievalEngine::PopBatchLocked(
    Shard& s, int* queries_in_batch) {
  std::vector<Request*> batch;
  int queries = 0;
  while (!s.queue.empty() && queries < options_.max_batch_queries) {
    Request* r = s.queue.front();
    const int n = r->queries->rows();
    // Whole requests only; an oversized first request runs alone.
    if (!batch.empty() && queries + n > options_.max_batch_queries) break;
    s.queue.pop_front();
    batch.push_back(r);
    queries += n;
  }
  s.queued_queries -= queries;
  s.depth.store(s.queued_queries, std::memory_order_relaxed);
  s.depth_gauge.Set(s.queued_queries);
  *queries_in_batch += queries;
  return batch;
}

void RetrievalEngine::TopUpBatch(std::vector<Request*>* batch,
                                 int* queries_in_batch) {
  if (batch->empty() || num_shards() == 1) return;
  for (int i = 0; i < num_shards(); ++i) {
    if (*queries_in_batch >= options_.max_batch_queries) return;
    Shard& s = *shards_[i];
    if (s.depth.load(std::memory_order_relaxed) == 0) continue;
    std::lock_guard<std::mutex> lock(s.mu);
    int taken = 0;
    while (!s.queue.empty() &&
           *queries_in_batch < options_.max_batch_queries) {
      Request* r = s.queue.front();
      const int n = r->queries->rows();
      if (*queries_in_batch + n > options_.max_batch_queries) break;
      s.queue.pop_front();
      batch->push_back(r);
      *queries_in_batch += n;
      taken += n;
    }
    if (taken > 0) {
      s.queued_queries -= taken;
      s.depth.store(s.queued_queries, std::memory_order_relaxed);
      s.depth_gauge.Set(s.queued_queries);
    }
  }
}

bool RetrievalEngine::TryStealBatch(int thief_home) {
  const auto now = Clock::now();
  int best = -1;
  Clock::time_point best_arrival{};
  for (int i = 0; i < num_shards(); ++i) {
    Shard& s = *shards_[i];
    if (s.depth.load(std::memory_order_relaxed) == 0) continue;
    std::lock_guard<std::mutex> lock(s.mu);
    if (s.queue.empty()) continue;
    if (!stopping_.load(std::memory_order_relaxed) &&
        !LaunchDueLocked(s, now)) {
      continue;
    }
    const Clock::time_point arrival = s.queue.front()->arrival;
    if (best < 0 || arrival < best_arrival) {
      best = i;
      best_arrival = arrival;
    }
  }
  if (best < 0) return false;
  int queries = 0;
  std::vector<Request*> batch;
  {
    Shard& s = *shards_[best];
    std::lock_guard<std::mutex> lock(s.mu);
    if (s.queue.empty()) return false;
    batch = PopBatchLocked(s, &queries);
  }
  if (best != thief_home) steals_total_.Add(1);
  TopUpBatch(&batch, &queries);
  ExecuteBatch(batch);
  return true;
}

void RetrievalEngine::SignalDone(Request* r, RetrievalStatus status,
                                 std::vector<std::vector<Neighbor>> result) {
  std::lock_guard<std::mutex> lock(r->done_mu);
  r->result = std::move(result);
  r->status = status;
  r->done = true;
  r->done_cv.notify_one();
}

void RetrievalEngine::ExecuteBatch(const std::vector<Request*>& batch) {
  obs::TraceScope span("retrieval/batch");
  // Fan the union's queries out once: a flat work list of (request,
  // row) pairs so ParallelFor amortizes across request boundaries.
  // Each query's scan is serial (index contract), so the fan-out never
  // changes results.
  int total = 0;
  for (const Request* r : batch) total += r->queries->rows();
  std::vector<std::pair<Request*, int>> work;
  work.reserve(total);
  for (Request* r : batch) {
    r->result.resize(r->queries->rows());
    for (int qi = 0; qi < r->queries->rows(); ++qi) work.emplace_back(r, qi);
  }
  const int64_t scan_cost =
      flat_ != nullptr
          ? flat_->num_vectors() * static_cast<int64_t>(flat_->dim())
          : (static_cast<int64_t>(ivf_->nlist()) +
             ivf_->num_vectors() * std::max(1, nprobe_) /
                 std::max(1, ivf_->nlist())) *
                ivf_->dim();
  ParallelFor(0, total, /*grain=*/1, scan_cost,
              [&](int64_t begin, int64_t end) {
                for (int64_t w = begin; w < end; ++w) {
                  Request* r = work[w].first;
                  const int qi = work[w].second;
                  const double* q =
                      r->queries->data() +
                      static_cast<int64_t>(qi) * r->queries->cols();
                  r->result[qi] = flat_ != nullptr
                                      ? flat_->Search(q, r->k)
                                      : ivf_->Search(q, r->k, nprobe_);
                }
              });
  batches_total_.Add(1);
  queries_total_.Add(static_cast<uint64_t>(total));
  batch_queries_.Observe(static_cast<double>(total));
  for (Request* r : batch) {
    SignalDone(r, RetrievalStatus::kOk, std::move(r->result));
  }
}

void RetrievalEngine::CancelShardLocked(Shard& s) {
  while (!s.queue.empty()) {
    Request* r = s.queue.front();
    s.queue.pop_front();
    SignalDone(r, RetrievalStatus::kShutdown, {});
  }
  s.queued_queries = 0;
  s.depth.store(0, std::memory_order_relaxed);
  s.depth_gauge.Set(0.0);
}

void RetrievalEngine::Shutdown() {
  stopping_.store(true, std::memory_order_release);
  for (const std::unique_ptr<Shard>& s : shards_) {
    { std::lock_guard<std::mutex> lock(s->mu); }
    s->work_cv.notify_all();
  }
  for (std::thread& w : workers_) w.join();
  workers_.clear();
  if (options_.cancel_pending_on_shutdown) {
    for (const std::unique_ptr<Shard>& s : shards_) {
      std::lock_guard<std::mutex> lock(s->mu);
      CancelShardLocked(*s);
    }
  } else {
    while (RunOneBatch()) {
    }
  }
}

bool RetrievalEngine::RunOneBatch() {
  int best = -1;
  Clock::time_point best_arrival{};
  for (int i = 0; i < num_shards(); ++i) {
    Shard& s = *shards_[i];
    std::lock_guard<std::mutex> lock(s.mu);
    if (s.queue.empty()) continue;
    const Clock::time_point arrival = s.queue.front()->arrival;
    if (best < 0 || arrival < best_arrival) {
      best = i;
      best_arrival = arrival;
    }
  }
  if (best < 0) return false;
  int queries = 0;
  std::vector<Request*> batch;
  {
    Shard& s = *shards_[best];
    std::lock_guard<std::mutex> lock(s.mu);
    if (s.queue.empty()) return false;
    batch = PopBatchLocked(s, &queries);
  }
  TopUpBatch(&batch, &queries);
  ExecuteBatch(batch);
  return true;
}

int RetrievalEngine::QueueDepth() const {
  int depth = 0;
  for (const std::unique_ptr<Shard>& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    depth += s->queued_queries;
  }
  return depth;
}

}  // namespace gradgcl::retrieval
