// Scalar quantization for the embedding retrieval store
// (src/retrieval/): f64 -> int8 with per-dimension affine parameters,
// plus an optional bf16 tier that keeps 8 bits of mantissa.
//
// int8 tier (the headline):
//  * Parameters are computed deterministically from the corpus: for
//    each dimension d, offset[d] is the midpoint of the corpus range
//    [min_d, max_d] and scale[d] = max(max_d - min_d, eps) / 254, so
//    every corpus value lands in code points [-127, 127] (code -128 is
//    never produced — symmetric range, so L2 in code space never
//    overflows the documented i32 bounds). min/max are commutative
//    reductions, so the parameters are independent of scan order and
//    thread count.
//  * Encode: q = clamp(round((x - offset) / scale), -127, 127).
//    Decode: x_hat = offset + scale * q.
//  * Reconstruction error bound (pinned by tests/retrieval_test.cc):
//    |x - x_hat| <= scale[d] / 2 * (1 + 4 * DBL_EPSILON) for corpus
//    values inside [min_d, max_d]; out-of-range values (novel queries)
//    clamp and the bound becomes the distance to the range edge plus
//    scale[d] / 2.
//  * Scoring is ASYMMETRIC (ADC): corpus rows stay affine int8 codes;
//    the query folds the per-dimension scales into its own encoding —
//    w[d] = x[d] * scale[d], quantized with one query-wide scale
//    s_q = max_d |w[d]| / 127. Then for a row with codes r,
//      x . x_hat_row = sum_d x[d] * offset[d]          (query bias C)
//                    + s_q * dot_i8(q, r)              (+ query rounding)
//    i.e. one exact int8 dot per row reproduces the f64 dot against
//    the RECONSTRUCTED row up to 7-bit query rounding — the ranking
//    error is query-side only, not corpus-size dependent. The dot runs
//    through the int8 kernel-table entries (tensor/simd.h, dot_i8 /
//    l2_i8): exact integer arithmetic, bit-identical across ISAs and
//    thread counts; the (C + s_q * dot) * inv_norm postprocess is a
//    fixed f64 chain. The bench records the resulting recall against
//    the exact f64 ranking.
//
// bf16 tier: round-to-nearest-even truncation of float(x) to its top
// 16 bits. Relative error <= 2^-8 per element; 2 bytes/dim instead of
// 1, scanned by on-the-fly widening (no integer kernel). The accuracy
// rung between int8 and f64 on the recall/QPS curve.

#ifndef GRADGCL_RETRIEVAL_QUANTIZE_H_
#define GRADGCL_RETRIEVAL_QUANTIZE_H_

#include <cstdint>
#include <vector>

#include "tensor/matrix.h"

namespace gradgcl::retrieval {

// Storage tier of a quantized vector block.
enum class Tier : int32_t { kInt8 = 0, kBf16 = 1 };

// "int8" | "bf16" (stable strings for bench JSON / logs).
const char* TierName(Tier tier);

// Per-dimension affine quantization parameters (int8 tier; the bf16
// tier ignores them but stores them for a uniform file layout).
struct QuantizationParams {
  std::vector<double> scale;   // > 0, one per dimension
  std::vector<double> offset;  // one per dimension

  int dim() const { return static_cast<int>(scale.size()); }
};

// Computes per-dimension parameters from the corpus (rows = vectors).
// Deterministic for every thread count: min/max reductions commute.
QuantizationParams ComputeParams(const Matrix& corpus);

// Encodes one row: out[d] = clamp(round((x[d] - offset[d]) / scale[d])).
void QuantizeRowInt8(const QuantizationParams& params, const double* x,
                     int8_t* out);

// Decodes one row: out[d] = offset[d] + scale[d] * q[d].
void DequantizeRowInt8(const QuantizationParams& params, const int8_t* q,
                       double* out);

// bf16 encode/decode (round-to-nearest-even on the f32 halfway bits).
uint16_t EncodeBf16(double x);
double DecodeBf16(uint16_t b);
void QuantizeRowBf16(const double* x, int64_t n, uint16_t* out);

}  // namespace gradgcl::retrieval

#endif  // GRADGCL_RETRIEVAL_QUANTIZE_H_
