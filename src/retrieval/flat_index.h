// FlatIndex: exhaustive-scan retrieval baseline.
//
// Two modes behind one Search interface:
//  * exact f64 — the corpus is row-normalized and kept as f64; scores
//    are exact cosine similarities. This is the ground-truth ranking
//    the bench measures quantized recall against.
//  * quantized — scans a QuantizedStore (int8 through the SIMD kernel
//    table, bf16 by widening); same scan the IVF lists use, just over
//    the whole corpus.
//
// Both modes produce deterministic top-k via eval/similarity's
// TopKNeighbors (score descending, ascending-index ties). SearchBatch
// parallelizes over queries only — never inside one query's scan — so
// results are bit-identical at every GRADGCL_NUM_THREADS, and for the
// int8 tier across ISAs too (integer dots are exact everywhere).

#ifndef GRADGCL_RETRIEVAL_FLAT_INDEX_H_
#define GRADGCL_RETRIEVAL_FLAT_INDEX_H_

#include <cstdint>
#include <vector>

#include "eval/similarity.h"
#include "retrieval/store.h"
#include "tensor/matrix.h"

namespace gradgcl::retrieval {

using gradgcl::Neighbor;

class FlatIndex {
 public:
  // Exact f64 baseline: copies and row-normalizes `corpus`.
  static FlatIndex BuildExact(const Matrix& corpus);

  // Quantized scan over `store` (built by the caller, typically from a
  // row-normalized corpus so the affine params cover the query range).
  static FlatIndex FromStore(QuantizedStore store);

  int64_t num_vectors() const;
  int dim() const;
  bool exact() const { return exact_; }
  Tier tier() const { return store_.tier(); }
  const QuantizedStore& store() const { return store_; }

  // Top-k nearest rows of one query (dim() values, any norm — the
  // query is normalized internally). Deterministic ordering contract
  // per TopKNeighbors.
  std::vector<Neighbor> Search(const double* query, int k) const;

  // One Search per row of `queries`, parallelized over queries.
  std::vector<std::vector<Neighbor>> SearchBatch(const Matrix& queries,
                                                 int k) const;

 private:
  FlatIndex() = default;

  bool exact_ = false;
  Matrix corpus_;         // normalized rows (exact mode only)
  QuantizedStore store_;  // quantized mode only
};

}  // namespace gradgcl::retrieval

#endif  // GRADGCL_RETRIEVAL_FLAT_INDEX_H_
