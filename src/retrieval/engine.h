// RetrievalEngine: batched nearest-neighbor serving over a retrieval
// index, behind the same ingress machinery as serve::EmbeddingEngine
// (DESIGN.md §8): sharded mutex+deque ingress with thread-local
// round-robin submission and overflow, exact admission-budget
// partitioning, size-or-deadline batch launch, deadline-respecting
// work stealing with the parked/wake_pending/work_epoch park protocol,
// per-request completion condvars, and a drain-or-cancel Shutdown().
// The machinery is mirrored rather than shared so the TSAN-proven
// serve engine stays untouched; the differences are the work unit
// (query rows instead of graphs) and the batch executor (index scans
// instead of a model forward).
//
// A batch is the disjoint union of whole requests; execution fans the
// union's queries out over the worker's ParallelFor (each query's scan
// is serial), so results are bit-identical whatever the sharding,
// coalescing, stealing, worker count, or timing — batching is a
// throughput knob, never a correctness one (same contract as serve).
//
// Knobs: GRADGCL_RETRIEVAL_NPROBE overrides the IVF probe width when
// RetrievalOptions::nprobe == 0; GRADGCL_SERVE_SHARDS resolves the
// shard count exactly as in serve (shared ingress idiom).
//
// Observability: retrieval/requests, retrieval/rejected,
// retrieval/batches, retrieval/queries, retrieval/steals counters,
// per-shard retrieval/queue_depth/shard<i> gauges, and the
// retrieval/latency_us + retrieval/batch_queries histograms; each
// batch runs under a "retrieval/batch" trace span.

#ifndef GRADGCL_RETRIEVAL_ENGINE_H_
#define GRADGCL_RETRIEVAL_ENGINE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "retrieval/flat_index.h"
#include "retrieval/ivf_index.h"

namespace gradgcl::retrieval {

struct RetrievalOptions {
  // Worker threads executing batches. 0 = callers pump with
  // RunOneBatch() (deterministic tests).
  int num_workers = 1;
  // Ingress shards. 0 = auto: GRADGCL_SERVE_SHARDS when set, else one
  // shard per worker.
  int num_shards = 0;
  // A batch launches once this many queries are pending in a shard...
  int max_batch_queries = 64;
  // ...or once the shard's oldest pending request has waited this long.
  double max_wait_micros = 200.0;
  // Admission bound, partitioned evenly across shards.
  int max_queue_queries = 4096;
  // IVF probe width. 0 = GRADGCL_RETRIEVAL_NPROBE when set, else the
  // index's own default. Ignored for flat indexes.
  int nprobe = 0;
  // true: pending requests complete with kShutdown at Shutdown();
  // false (default): the queues are drained first.
  bool cancel_pending_on_shutdown = false;
};

enum class RetrievalStatus {
  kOk = 0,
  kOverloaded,  // admission control rejected the request
  kShutdown,    // engine stopped (at submit, or cancelled while queued)
};

// Stable names for logs / bench JSON.
const char* RetrievalStatusName(RetrievalStatus status);

// Outcome of one Search() call.
struct RetrievalResult {
  RetrievalStatus status = RetrievalStatus::kOk;
  // One top-k list per query row; empty unless status == kOk.
  std::vector<std::vector<Neighbor>> neighbors;
};

class RetrievalEngine {
 public:
  // Serves `index` (caller-owned; must outlive the engine).
  RetrievalEngine(const IvfIndex& index, const RetrievalOptions& options);
  RetrievalEngine(const FlatIndex& index, const RetrievalOptions& options);

  ~RetrievalEngine();

  RetrievalEngine(const RetrievalEngine&) = delete;
  RetrievalEngine& operator=(const RetrievalEngine&) = delete;

  // Top-k search for every row of `queries` (>= 1 row, dim() columns),
  // blocking until the result is ready or the request is rejected.
  // Safe from any thread except the engine's own workers.
  RetrievalResult Search(const Matrix& queries, int k);

  // Stops admission, drains or cancels the shards per the options, and
  // joins the workers. Idempotent.
  void Shutdown();

  // Pops and executes one pending batch inline (oldest-arrival shard
  // first, with cross-shard top-up). False when every shard is empty.
  // The manual pump for num_workers == 0.
  bool RunOneBatch();

  // Pending queries across all shards (diagnostics; racy by nature).
  int QueueDepth() const;

  const RetrievalOptions& options() const { return options_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }
  int dim() const;
  // Probe width resolved at construction (IVF only; 0 for flat).
  int resolved_nprobe() const { return nprobe_; }

 private:
  using Clock = std::chrono::steady_clock;

  // One in-flight request, owned by the submitting Search() frame.
  struct Request {
    const Matrix* queries = nullptr;
    int k = 0;
    std::vector<std::vector<Neighbor>> result;
    RetrievalStatus status = RetrievalStatus::kOk;
    Clock::time_point arrival;
    std::mutex done_mu;
    std::condition_variable done_cv;
    bool done = false;
  };

  // One ingress shard (same protocol as serve::EmbeddingEngine::Shard;
  // see serve/engine.h for the field-by-field rationale).
  struct Shard {
    mutable std::mutex mu;
    std::condition_variable work_cv;
    std::deque<Request*> queue;
    int queued_queries = 0;  // authoritative, guarded by mu
    int capacity = 0;
    std::atomic<int> depth{0};
    std::atomic<int> parked{0};
    std::atomic<bool> wake_pending{false};
    obs::Gauge depth_gauge;
  };

  RetrievalEngine(const FlatIndex* flat, const IvfIndex* ivf,
                  const RetrievalOptions& options);

  void WorkerLoop(int home_index);
  bool LaunchDueLocked(const Shard& s, Clock::time_point now) const;
  std::vector<Request*> PopBatchLocked(Shard& s, int* queries_in_batch);
  void TopUpBatch(std::vector<Request*>* batch, int* queries_in_batch);
  bool TryStealBatch(int thief_home);
  void ExecuteBatch(const std::vector<Request*>& batch);
  void CancelShardLocked(Shard& s);
  static void SignalDone(Request* r, RetrievalStatus status,
                         std::vector<std::vector<Neighbor>> result);

  const RetrievalOptions options_;
  const FlatIndex* flat_;  // exactly one of flat_ / ivf_ is non-null
  const IvfIndex* ivf_;
  int nprobe_ = 0;
  const Clock::duration wait_dur_;
  const Clock::duration steal_poll_;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> work_epoch_{0};
  std::atomic<bool> stopping_{false};
  std::vector<std::thread> workers_;

  obs::Counter requests_total_;
  obs::Counter rejected_total_;
  obs::Counter batches_total_;
  obs::Counter queries_total_;
  obs::Counter steals_total_;
  obs::Histogram latency_us_;
  obs::Histogram batch_queries_;
};

}  // namespace gradgcl::retrieval

#endif  // GRADGCL_RETRIEVAL_ENGINE_H_
