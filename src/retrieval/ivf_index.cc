#include "retrieval/ivf_index.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "tensor/ops.h"
#include "tensor/simd.h"

namespace gradgcl::retrieval {

namespace {

// Same total order as eval/similarity's TopKNeighbors: score
// descending, ascending index on ties.
inline bool Better(const Neighbor& a, const Neighbor& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.index < b.index;
}

// Bounded top-k accumulator over candidates pushed in any order; the
// total order makes the kept set (and its sorted output) unique
// regardless of push order.
class TopKHeap {
 public:
  explicit TopKHeap(int k) : k_(k) { heap_.reserve(k); }

  void Push(const Neighbor& cand) {
    if (static_cast<int>(heap_.size()) < k_) {
      heap_.push_back(cand);
      std::push_heap(heap_.begin(), heap_.end(), Better);
    } else if (Better(cand, heap_.front())) {
      std::pop_heap(heap_.begin(), heap_.end(), Better);
      heap_.back() = cand;
      std::push_heap(heap_.begin(), heap_.end(), Better);
    }
  }

  std::vector<Neighbor> Sorted() && {
    std::sort_heap(heap_.begin(), heap_.end(), Better);
    return std::move(heap_);
  }

 private:
  int k_;
  std::vector<Neighbor> heap_;
};

// Nearest centroid of one unit row: max dot, ascending-index ties
// (strict > keeps the earliest argmax).
int NearestCentroid(const Matrix& centroids, const double* row) {
  const simd::KernelTable& kt = simd::Active();
  const int d = centroids.cols();
  int best = 0;
  double best_dot = kt.dot(centroids.data(), row, d);
  for (int c = 1; c < centroids.rows(); ++c) {
    const double dot = kt.dot(centroids.data() + static_cast<int64_t>(c) * d,
                              row, d);
    if (dot > best_dot) {
      best_dot = dot;
      best = c;
    }
  }
  return best;
}

}  // namespace

IvfIndex IvfIndex::Build(const Matrix& corpus, const IvfConfig& config) {
  const int n = corpus.rows();
  const int d = corpus.cols();
  GRADGCL_CHECK(n >= 1 && d >= 1);
  GRADGCL_CHECK(config.nlist >= 1 && config.kmeans_iters >= 0);
  const int nlist = std::min(config.nlist, n);

  const Matrix normalized = RowNormalize(corpus);

  // Seeded init: nlist distinct corpus rows from a fixed Rng stream.
  Rng rng(config.seed);
  const std::vector<int> init = rng.SampleWithoutReplacement(n, nlist);
  Matrix centroids(nlist, d);
  for (int c = 0; c < nlist; ++c) {
    const double* src = normalized.data() + static_cast<int64_t>(init[c]) * d;
    std::copy(src, src + d, centroids.data() + static_cast<int64_t>(c) * d);
  }

  // Lloyd iterations, spherical. The assignment step is parallel but
  // per-point independent; accumulation is serial in ascending row
  // order — one fixed f64 chain per centroid, so the result is
  // bit-identical at every thread count.
  std::vector<int> assign(n, 0);
  auto AssignAll = [&] {
    ParallelFor(0, n, /*grain=*/16,
                /*cost_per_iter=*/static_cast<int64_t>(nlist) * d,
                [&](int64_t begin, int64_t end) {
                  for (int64_t i = begin; i < end; ++i) {
                    assign[i] = NearestCentroid(
                        centroids, normalized.data() + i * d);
                  }
                });
  };
  for (int iter = 0; iter < config.kmeans_iters; ++iter) {
    AssignAll();
    Matrix sums = Matrix::Zeros(nlist, d);
    std::vector<int64_t> counts(nlist, 0);
    for (int i = 0; i < n; ++i) {
      const double* row = normalized.data() + static_cast<int64_t>(i) * d;
      double* sum = sums.data() + static_cast<int64_t>(assign[i]) * d;
      for (int j = 0; j < d; ++j) sum[j] += row[j];
      ++counts[assign[i]];
    }
    for (int c = 0; c < nlist; ++c) {
      if (counts[c] == 0) continue;  // empty cell keeps its centroid
      const double* sum = sums.data() + static_cast<int64_t>(c) * d;
      double norm_sq = 0.0;
      for (int j = 0; j < d; ++j) norm_sq += sum[j] * sum[j];
      if (norm_sq <= 0.0) continue;
      const double inv = 1.0 / std::sqrt(norm_sq);
      double* dst = centroids.data() + static_cast<int64_t>(c) * d;
      for (int j = 0; j < d; ++j) dst[j] = sum[j] * inv;
    }
  }
  AssignAll();  // final assignment against the converged centroids

  // Group rows by cell, stable in ascending corpus order.
  IvfIndex index;
  index.centroids_ = std::move(centroids);
  index.list_offsets_.assign(nlist + 1, 0);
  for (int i = 0; i < n; ++i) ++index.list_offsets_[assign[i] + 1];
  for (int c = 0; c < nlist; ++c) {
    index.list_offsets_[c + 1] += index.list_offsets_[c];
  }
  index.ids_.resize(n);
  std::vector<int64_t> cursor(index.list_offsets_.begin(),
                              index.list_offsets_.end() - 1);
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) {
    const int64_t pos = cursor[assign[i]]++;
    index.ids_[pos] = i;
    order[pos] = i;
  }
  const Matrix grouped = normalized.Gather(order);
  // Corpus-wide params (min/max commute, so grouping doesn't change
  // them) keep every cell in one code space — a query is encoded once.
  index.store_ = QuantizedStore::BuildWithParams(
      grouped, ComputeParams(normalized), config.tier);
  index.set_nprobe(config.nprobe);
  return index;
}

IvfIndex IvfIndex::BuildFromStore(const QuantizedStore& corpus,
                                  const IvfConfig& config) {
  GRADGCL_CHECK(corpus.is_open());
  GRADGCL_CHECK(corpus.num_vectors() >= 1);
  GRADGCL_CHECK(config.nlist >= 1 && config.kmeans_iters >= 0);
  const int64_t n = corpus.num_vectors();
  const int d = corpus.dim();
  GRADGCL_CHECK_MSG(n <= INT32_MAX, "store too large for k-means indexing");
  const int nlist = static_cast<int>(std::min<int64_t>(config.nlist, n));

  // Decode-and-renormalize one row into `out`: the unit vector the
  // store's cosine scans effectively compare against.
  const auto unit_row = [&corpus, d](int64_t i, double* out) {
    corpus.DecodeRow(i, out);
    const double inv = corpus.inv_norm(i);
    for (int j = 0; j < d; ++j) out[j] *= inv;
  };

  // Seeded init: same stream as Build.
  Rng rng(config.seed);
  const std::vector<int> init =
      rng.SampleWithoutReplacement(static_cast<int>(n), nlist);
  Matrix centroids(nlist, d);
  for (int c = 0; c < nlist; ++c) {
    unit_row(init[c], centroids.data() + static_cast<int64_t>(c) * d);
  }

  // Lloyd iterations, spherical, identical structure to Build — but
  // each point is decoded into a worker-local row buffer on demand, so
  // the corpus is never resident in f64. Assignment stays per-point
  // independent (bit-identical at every thread count); accumulation is
  // serial in ascending row order.
  std::vector<int> assign(static_cast<size_t>(n), 0);
  auto AssignAll = [&] {
    ParallelFor(0, n, /*grain=*/16,
                /*cost_per_iter=*/static_cast<int64_t>(nlist) * d,
                [&](int64_t begin, int64_t end) {
                  std::vector<double> row(static_cast<size_t>(d));
                  for (int64_t i = begin; i < end; ++i) {
                    unit_row(i, row.data());
                    assign[i] = NearestCentroid(centroids, row.data());
                  }
                });
  };
  std::vector<double> row(static_cast<size_t>(d));
  for (int iter = 0; iter < config.kmeans_iters; ++iter) {
    AssignAll();
    Matrix sums = Matrix::Zeros(nlist, d);
    std::vector<int64_t> counts(nlist, 0);
    for (int64_t i = 0; i < n; ++i) {
      unit_row(i, row.data());
      double* sum = sums.data() + static_cast<int64_t>(assign[i]) * d;
      for (int j = 0; j < d; ++j) sum[j] += row[j];
      ++counts[assign[i]];
    }
    for (int c = 0; c < nlist; ++c) {
      if (counts[c] == 0) continue;  // empty cell keeps its centroid
      const double* sum = sums.data() + static_cast<int64_t>(c) * d;
      double norm_sq = 0.0;
      for (int j = 0; j < d; ++j) norm_sq += sum[j] * sum[j];
      if (norm_sq <= 0.0) continue;
      const double inv = 1.0 / std::sqrt(norm_sq);
      double* dst = centroids.data() + static_cast<int64_t>(c) * d;
      for (int j = 0; j < d; ++j) dst[j] = sum[j] * inv;
    }
  }
  AssignAll();

  // Group rows by cell, stable in ascending row order, and copy the
  // quantized rows verbatim — codes, inv_norms, and params all survive
  // bit-for-bit.
  IvfIndex index;
  index.centroids_ = std::move(centroids);
  index.list_offsets_.assign(nlist + 1, 0);
  for (int64_t i = 0; i < n; ++i) ++index.list_offsets_[assign[i] + 1];
  for (int c = 0; c < nlist; ++c) {
    index.list_offsets_[c + 1] += index.list_offsets_[c];
  }
  index.ids_.resize(static_cast<size_t>(n));
  std::vector<int64_t> cursor(index.list_offsets_.begin(),
                              index.list_offsets_.end() - 1);
  std::vector<int64_t> order(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const int64_t pos = cursor[assign[i]]++;
    index.ids_[pos] = i;
    order[pos] = i;
  }
  index.store_ = QuantizedStore::GatherRows(corpus, order);
  index.set_nprobe(config.nprobe);
  return index;
}

void IvfIndex::set_nprobe(int nprobe) {
  nprobe_ = std::clamp(nprobe, 1, nlist());
}

std::vector<Neighbor> IvfIndex::Search(const double* query, int k,
                                       int nprobe_override) const {
  const int d = dim();
  const int cells = nlist();
  const int probe =
      std::clamp(nprobe_override > 0 ? nprobe_override : nprobe_, 1, cells);

  // Normalize the query once; both the centroid scan and the cell
  // scans use the unit query.
  const simd::KernelTable& kt = simd::Active();
  const double norm_sq = kt.dot(query, query, d);
  const double inv_norm = norm_sq > 0.0 ? 1.0 / std::sqrt(norm_sq) : 0.0;
  std::vector<double> q(query, query + d);
  for (int j = 0; j < d; ++j) q[j] *= inv_norm;

  std::vector<double> centroid_scores(cells);
  for (int c = 0; c < cells; ++c) {
    centroid_scores[c] =
        kt.dot(q.data(), centroids_.data() + static_cast<int64_t>(c) * d, d);
  }
  const std::vector<Neighbor> probed =
      TopKNeighbors(centroid_scores.data(), cells, probe);

  std::vector<int8_t> codes;
  double query_scale = 0.0;
  double query_bias = 0.0;
  if (tier() == Tier::kInt8) {
    codes.resize(static_cast<size_t>(d));
    store_.EncodeQuery(q.data(), codes.data(), &query_scale, &query_bias);
  }

  int64_t max_cell = 0;
  for (const Neighbor& cell : probed) {
    max_cell = std::max(max_cell, list_offsets_[cell.index + 1] -
                                      list_offsets_[cell.index]);
  }
  std::vector<double> scores(static_cast<size_t>(max_cell));
  TopKHeap heap(std::min<int64_t>(k, num_vectors()));
  for (const Neighbor& cell : probed) {
    const int64_t begin = list_offsets_[cell.index];
    const int64_t end = list_offsets_[cell.index + 1];
    if (begin == end) continue;
    if (tier() == Tier::kInt8) {
      store_.ScoreRowsInt8(codes.data(), query_scale, query_bias, begin, end,
                           scores.data());
    } else {
      store_.ScoreRowsBf16(q.data(), begin, end, scores.data());
    }
    for (int64_t r = begin; r < end; ++r) {
      heap.Push(Neighbor{ids_[r], scores[r - begin]});
    }
  }
  return std::move(heap).Sorted();
}

std::vector<std::vector<Neighbor>> IvfIndex::SearchBatch(
    const Matrix& queries, int k, int nprobe_override) const {
  GRADGCL_CHECK(queries.cols() == dim());
  const int nq = queries.rows();
  const int probe =
      std::clamp(nprobe_override > 0 ? nprobe_override : nprobe_, 1, nlist());
  std::vector<std::vector<Neighbor>> results(nq);
  const int64_t cost =
      (static_cast<int64_t>(nlist()) +
       num_vectors() * probe / std::max(1, nlist())) *
      dim();
  ParallelFor(0, nq, /*grain=*/1, cost, [&](int64_t begin, int64_t end) {
    for (int64_t qi = begin; qi < end; ++qi) {
      results[qi] = Search(queries.data() + qi * queries.cols(), k,
                           nprobe_override);
    }
  });
  return results;
}

}  // namespace gradgcl::retrieval
