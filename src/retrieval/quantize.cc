#include "retrieval/quantize.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/check.h"

namespace gradgcl::retrieval {

const char* TierName(Tier tier) {
  switch (tier) {
    case Tier::kInt8:
      return "int8";
    case Tier::kBf16:
      return "bf16";
  }
  return "?";
}

QuantizationParams ComputeParams(const Matrix& corpus) {
  const int n = corpus.rows();
  const int d = corpus.cols();
  GRADGCL_CHECK(n >= 1 && d >= 1);
  std::vector<double> lo(d, corpus(0, 0));
  std::vector<double> hi(d, corpus(0, 0));
  for (int j = 0; j < d; ++j) {
    lo[j] = hi[j] = corpus(0, j);
  }
  for (int i = 1; i < n; ++i) {
    const double* row = corpus.data() + static_cast<int64_t>(i) * d;
    for (int j = 0; j < d; ++j) {
      lo[j] = std::min(lo[j], row[j]);
      hi[j] = std::max(hi[j], row[j]);
    }
  }
  QuantizationParams params;
  params.scale.resize(d);
  params.offset.resize(d);
  // A degenerate (constant) dimension still gets a positive scale so
  // encode/decode stay well-defined; every code in it is 0.
  constexpr double kMinRange = 1e-30;
  for (int j = 0; j < d; ++j) {
    GRADGCL_CHECK(std::isfinite(lo[j]) && std::isfinite(hi[j]));
    params.offset[j] = 0.5 * (lo[j] + hi[j]);
    params.scale[j] = std::max(hi[j] - lo[j], kMinRange) / 254.0;
  }
  return params;
}

void QuantizeRowInt8(const QuantizationParams& params, const double* x,
                     int8_t* out) {
  const int d = params.dim();
  for (int j = 0; j < d; ++j) {
    const double u = (x[j] - params.offset[j]) / params.scale[j];
    const double r = std::nearbyint(std::clamp(u, -127.0, 127.0));
    out[j] = static_cast<int8_t>(r);
  }
}

void DequantizeRowInt8(const QuantizationParams& params, const int8_t* q,
                       double* out) {
  const int d = params.dim();
  for (int j = 0; j < d; ++j) {
    out[j] = params.offset[j] + params.scale[j] * static_cast<double>(q[j]);
  }
}

uint16_t EncodeBf16(double x) {
  const uint32_t bits = std::bit_cast<uint32_t>(static_cast<float>(x));
  // inf/NaN truncate directly — the rounding add below could carry a
  // NaN's mantissa into the exponent.
  if ((bits & 0x7F800000u) == 0x7F800000u) {
    return static_cast<uint16_t>(bits >> 16);
  }
  // Round to nearest even on the truncated half: add 0x7FFF plus the
  // low bit of the kept half.
  const uint32_t rounded = bits + 0x7FFFu + ((bits >> 16) & 1u);
  return static_cast<uint16_t>(rounded >> 16);
}

double DecodeBf16(uint16_t b) {
  return static_cast<double>(
      std::bit_cast<float>(static_cast<uint32_t>(b) << 16));
}

void QuantizeRowBf16(const double* x, int64_t n, uint16_t* out) {
  for (int64_t j = 0; j < n; ++j) out[j] = EncodeBf16(x[j]);
}

}  // namespace gradgcl::retrieval
