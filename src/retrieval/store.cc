#include "retrieval/store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

#include "common/check.h"
#include "tensor/simd.h"

namespace gradgcl::retrieval {

namespace {

inline int64_t AlignUp64(int64_t n) { return (n + 63) & ~int64_t{63}; }

inline int64_t BytesPerCode(Tier tier) {
  return tier == Tier::kInt8 ? 1 : 2;
}

// Expected layout offsets for a given (dim, tier); every reader and
// writer derives them from these two fields alone, so a header whose
// stored offsets disagree is structurally corrupt.
struct Layout {
  int64_t row_stride;
  int64_t vectors_offset;
};

Layout LayoutFor(int dim, Tier tier) {
  Layout l;
  l.row_stride = AlignUp64(static_cast<int64_t>(dim) * BytesPerCode(tier));
  l.vectors_offset =
      AlignUp64(static_cast<int64_t>(sizeof(StoreHeader)) + 16 * dim);
  return l;
}

// 1 / ||decode(row)|| with a fixed ascending accumulation chain — the
// ONE definition both the bulk builder and the streaming writer use,
// so their outputs are byte-identical.
double DecodedInvNorm(const QuantizationParams& params, Tier tier,
                      const unsigned char* row, int d) {
  double norm_sq = 0.0;
  if (tier == Tier::kInt8) {
    const int8_t* q = reinterpret_cast<const int8_t*>(row);
    for (int j = 0; j < d; ++j) {
      const double v =
          params.offset[j] + params.scale[j] * static_cast<double>(q[j]);
      norm_sq += v * v;
    }
  } else {
    const uint16_t* q = reinterpret_cast<const uint16_t*>(row);
    for (int j = 0; j < d; ++j) {
      const double v = DecodeBf16(q[j]);
      norm_sq += v * v;
    }
  }
  return norm_sq > 0.0 ? 1.0 / std::sqrt(norm_sq) : 0.0;
}

}  // namespace

QuantizedStore::~QuantizedStore() { CloseMapping(); }

QuantizedStore::QuantizedStore(QuantizedStore&& other) noexcept {
  *this = std::move(other);
}

QuantizedStore& QuantizedStore::operator=(QuantizedStore&& other) noexcept {
  if (this == &other) return *this;
  CloseMapping();
  tier_ = other.tier_;
  dim_ = other.dim_;
  num_vectors_ = other.num_vectors_;
  row_stride_ = other.row_stride_;
  params_ = std::move(other.params_);
  owned_data_ = std::move(other.owned_data_);
  owned_inv_norms_ = std::move(other.owned_inv_norms_);
  mapped_base_ = other.mapped_base_;
  mapped_size_ = other.mapped_size_;
  mapped_fd_ = other.mapped_fd_;
  data_ = other.data_;
  inv_norms_ = other.inv_norms_;
  other.mapped_base_ = nullptr;
  other.mapped_size_ = 0;
  other.mapped_fd_ = -1;
  other.data_ = nullptr;
  other.inv_norms_ = nullptr;
  other.num_vectors_ = -1;
  other.dim_ = 0;
  return *this;
}

void QuantizedStore::CloseMapping() {
  if (mapped_base_ != nullptr) {
    ::munmap(const_cast<unsigned char*>(mapped_base_),
             static_cast<size_t>(mapped_size_));
    mapped_base_ = nullptr;
    mapped_size_ = 0;
  }
  if (mapped_fd_ >= 0) {
    ::close(mapped_fd_);
    mapped_fd_ = -1;
  }
}

void QuantizedStore::InitLayout(int dim, Tier tier) {
  const Layout l = LayoutFor(dim, tier);
  dim_ = dim;
  tier_ = tier;
  row_stride_ = l.row_stride;
}

QuantizedStore QuantizedStore::Build(const Matrix& corpus, Tier tier) {
  return BuildWithParams(corpus, ComputeParams(corpus), tier);
}

QuantizedStore QuantizedStore::BuildWithParams(const Matrix& corpus,
                                               const QuantizationParams& params,
                                               Tier tier) {
  const int n = corpus.rows();
  const int d = corpus.cols();
  GRADGCL_CHECK(d >= 1 && d <= kMaxStoreDim);
  GRADGCL_CHECK(params.dim() == d);
  QuantizedStore store;
  store.InitLayout(d, tier);
  store.params_ = params;
  store.num_vectors_ = n;
  store.owned_data_.assign(static_cast<size_t>(n) * store.row_stride_, 0);
  store.owned_inv_norms_.resize(n);
  for (int i = 0; i < n; ++i) {
    const double* row = corpus.data() + static_cast<int64_t>(i) * d;
    unsigned char* out = store.owned_data_.data() +
                         static_cast<int64_t>(i) * store.row_stride_;
    if (tier == Tier::kInt8) {
      QuantizeRowInt8(params, row, reinterpret_cast<int8_t*>(out));
    } else {
      QuantizeRowBf16(row, d, reinterpret_cast<uint16_t*>(out));
    }
    store.owned_inv_norms_[i] = DecodedInvNorm(params, tier, out, d);
  }
  store.data_ = store.owned_data_.data();
  store.inv_norms_ = store.owned_inv_norms_.data();
  return store;
}

QuantizedStore QuantizedStore::GatherRows(const QuantizedStore& src,
                                          const std::vector<int64_t>& order) {
  GRADGCL_CHECK(src.is_open());
  QuantizedStore store;
  store.InitLayout(src.dim_, src.tier_);
  store.params_ = src.params_;
  const int64_t n = static_cast<int64_t>(order.size());
  store.num_vectors_ = n;
  store.owned_data_.assign(static_cast<size_t>(n * store.row_stride_), 0);
  store.owned_inv_norms_.resize(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const int64_t r = order[static_cast<size_t>(i)];
    GRADGCL_CHECK(r >= 0 && r < src.num_vectors_);
    std::memcpy(store.owned_data_.data() + i * store.row_stride_,
                src.data_ + r * src.row_stride_,
                static_cast<size_t>(store.row_stride_));
    store.owned_inv_norms_[static_cast<size_t>(i)] = src.inv_norms_[r];
  }
  store.data_ = store.owned_data_.data();
  store.inv_norms_ = store.owned_inv_norms_.data();
  return store;
}

bool QuantizedStore::ValidateAndAdopt(const unsigned char* base, int64_t size) {
  // Every field is checked in int64 arithmetic against the real file
  // extent before any allocation or out-of-header dereference.
  if (size < static_cast<int64_t>(sizeof(StoreHeader))) return false;
  StoreHeader header;
  std::memcpy(&header, base, sizeof(header));
  if (std::memcmp(header.magic, kStoreMagic, 4) != 0) return false;
  if (header.version != kStoreFormatVersion) return false;
  if (header.tier != static_cast<int32_t>(Tier::kInt8) &&
      header.tier != static_cast<int32_t>(Tier::kBf16)) {
    return false;
  }
  const Tier tier = static_cast<Tier>(header.tier);
  if (header.dim < 1 || header.dim > kMaxStoreDim) return false;
  if (header.num_vectors < 0 || header.num_vectors > kMaxStoreVectors) {
    return false;
  }
  const Layout layout = LayoutFor(header.dim, tier);
  if (header.row_stride != layout.row_stride) return false;
  if (header.vectors_offset != static_cast<uint64_t>(layout.vectors_offset)) {
    return false;
  }
  // vectors_offset <= 64 + 16 * 32767 + 63 and row_stride <= 65600, so
  // num_vectors * row_stride is the only product that can overflow.
  if (header.num_vectors != 0 &&
      header.row_stride >
          (INT64_MAX - layout.vectors_offset) / header.num_vectors) {
    return false;
  }
  const int64_t norms_offset =
      layout.vectors_offset + header.num_vectors * header.row_stride;
  if (header.norms_offset != static_cast<uint64_t>(norms_offset)) return false;
  if (header.num_vectors > (INT64_MAX - norms_offset) / 8) return false;
  const int64_t total = norms_offset + 8 * header.num_vectors;
  if (size != total) return false;

  InitLayout(header.dim, tier);
  num_vectors_ = header.num_vectors;
  params_.scale.assign(
      reinterpret_cast<const double*>(base + sizeof(StoreHeader)),
      reinterpret_cast<const double*>(base + sizeof(StoreHeader)) + dim_);
  params_.offset.assign(
      reinterpret_cast<const double*>(base + sizeof(StoreHeader)) + dim_,
      reinterpret_cast<const double*>(base + sizeof(StoreHeader)) + 2 * dim_);
  for (double s : params_.scale) {
    if (!(s > 0.0) || !std::isfinite(s)) return false;
  }
  for (double o : params_.offset) {
    if (!std::isfinite(o)) return false;
  }
  data_ = base + layout.vectors_offset;
  inv_norms_ = reinterpret_cast<const double*>(base + norms_offset);
  return true;
}

bool QuantizedStore::Map(const std::string& path) {
  CloseMapping();
  num_vectors_ = -1;
  dim_ = 0;
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return false;
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
    ::close(fd);
    return false;
  }
  void* base =
      ::mmap(nullptr, static_cast<size_t>(st.st_size), PROT_READ, MAP_PRIVATE,
             fd, 0);
  if (base == MAP_FAILED) {
    ::close(fd);
    return false;
  }
  mapped_base_ = static_cast<const unsigned char*>(base);
  mapped_size_ = st.st_size;
  mapped_fd_ = fd;
  if (!ValidateAndAdopt(mapped_base_, mapped_size_)) {
    CloseMapping();
    num_vectors_ = -1;
    dim_ = 0;
    return false;
  }
  return true;
}

bool QuantizedStore::Load(const std::string& path) {
  if (!Map(path)) return false;
  // Copy the validated blocks into owned memory and drop the mapping.
  owned_data_.assign(data_, data_ + num_vectors_ * row_stride_);
  owned_inv_norms_.assign(inv_norms_, inv_norms_ + num_vectors_);
  CloseMapping();
  data_ = owned_data_.data();
  inv_norms_ = owned_inv_norms_.data();
  return true;
}

bool QuantizedStore::Save(const std::string& path) const {
  GRADGCL_CHECK(is_open());
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const Layout layout = LayoutFor(dim_, tier_);
  StoreHeader header{};
  std::memcpy(header.magic, kStoreMagic, 4);
  header.version = kStoreFormatVersion;
  header.tier = static_cast<int32_t>(tier_);
  header.dim = dim_;
  header.num_vectors = num_vectors_;
  header.row_stride = layout.row_stride;
  header.vectors_offset = static_cast<uint64_t>(layout.vectors_offset);
  header.norms_offset = static_cast<uint64_t>(layout.vectors_offset +
                                              num_vectors_ * row_stride_);
  bool ok = std::fwrite(&header, sizeof(header), 1, f) == 1;
  ok = ok && std::fwrite(params_.scale.data(), sizeof(double), dim_, f) ==
                 static_cast<size_t>(dim_);
  ok = ok && std::fwrite(params_.offset.data(), sizeof(double), dim_, f) ==
                 static_cast<size_t>(dim_);
  const int64_t pad = layout.vectors_offset -
                      (static_cast<int64_t>(sizeof(StoreHeader)) + 16 * dim_);
  const unsigned char zeros[64] = {};
  if (pad > 0) {
    ok = ok && std::fwrite(zeros, 1, static_cast<size_t>(pad), f) ==
                   static_cast<size_t>(pad);
  }
  if (num_vectors_ > 0) {
    ok = ok && std::fwrite(data_, 1,
                           static_cast<size_t>(num_vectors_ * row_stride_),
                           f) == static_cast<size_t>(num_vectors_ * row_stride_);
    ok = ok &&
         std::fwrite(inv_norms_, sizeof(double), num_vectors_, f) ==
             static_cast<size_t>(num_vectors_);
  }
  ok = std::fclose(f) == 0 && ok;
  return ok;
}

void QuantizedStore::EncodeQuery(const double* query, int8_t* out,
                                 double* query_scale,
                                 double* query_bias) const {
  GRADGCL_CHECK(tier_ == Tier::kInt8);
  // Asymmetric (ADC) encode: fold the per-dimension scales into the
  // query, w[d] = query[d] * scale[d], then quantize w with ONE
  // query-wide scale s_q = max|w| / 127. The query-constant bias
  // sum_d query[d] * offset[d] accounts for the affine offsets, so
  //   query . decode(row) = bias + s_q * dot_i8(out, row_codes)
  // up to 7-bit query rounding only. All chains are serial ascending-d
  // f64, so the encoding is bit-identical at every thread count.
  double bias = 0.0;
  double max_abs = 0.0;
  for (int j = 0; j < dim_; ++j) {
    bias += query[j] * params_.offset[j];
    const double w = std::fabs(query[j] * params_.scale[j]);
    if (w > max_abs) max_abs = w;
  }
  const double s_q = max_abs > 0.0 ? max_abs / 127.0 : 0.0;
  const double inv_s_q = s_q > 0.0 ? 1.0 / s_q : 0.0;
  for (int j = 0; j < dim_; ++j) {
    const double u = query[j] * params_.scale[j] * inv_s_q;
    out[j] = static_cast<int8_t>(
        std::nearbyint(std::clamp(u, -127.0, 127.0)));
  }
  *query_scale = s_q;
  *query_bias = bias;
}

void QuantizedStore::ScoreRowsInt8(const int8_t* query, double query_scale,
                                   double query_bias, int64_t begin,
                                   int64_t end, double* scores) const {
  GRADGCL_DCHECK(tier_ == Tier::kInt8 && begin >= 0 && end <= num_vectors_);
  // One table reference per scan; the postprocess (bias + s_q * dot)
  // * inv_norm is a fixed three-rounding chain, so scores are
  // bit-identical at every thread count and across every table
  // (integer dots are exact everywhere).
  const simd::KernelTable& kt = simd::Active();
  for (int64_t i = begin; i < end; ++i) {
    const double dot = static_cast<double>(kt.dot_i8(RowInt8(i), query, dim_));
    scores[i - begin] = (query_bias + query_scale * dot) * inv_norms_[i];
  }
}

void QuantizedStore::ScoreRowsBf16(const double* query, int64_t begin,
                                   int64_t end, double* scores) const {
  GRADGCL_DCHECK(tier_ == Tier::kBf16 && begin >= 0 && end <= num_vectors_);
  for (int64_t i = begin; i < end; ++i) {
    const uint16_t* row = RowBf16(i);
    double dot = 0.0;
    for (int j = 0; j < dim_; ++j) dot += DecodeBf16(row[j]) * query[j];
    scores[i - begin] = dot * inv_norms_[i];
  }
}

void QuantizedStore::DecodeRow(int64_t i, double* out) const {
  GRADGCL_CHECK(i >= 0 && i < num_vectors_);
  if (tier_ == Tier::kInt8) {
    DequantizeRowInt8(params_, RowInt8(i), out);
  } else {
    const uint16_t* row = RowBf16(i);
    for (int j = 0; j < dim_; ++j) out[j] = DecodeBf16(row[j]);
  }
}

StoreWriter::StoreWriter(std::string path, QuantizationParams params,
                         Tier tier)
    : path_(std::move(path)), params_(std::move(params)), tier_(tier) {
  GRADGCL_CHECK(params_.dim() >= 1 && params_.dim() <= kMaxStoreDim);
  const Layout layout = LayoutFor(params_.dim(), tier_);
  row_stride_ = layout.row_stride;
  row_buf_.assign(static_cast<size_t>(row_stride_), 0);
  file_ = std::fopen(path_.c_str(), "wb");
  if (file_ == nullptr) {
    ok_ = false;
    return;
  }
  // Placeholder header (patched by Finalize), params, pad to the
  // vector block.
  const StoreHeader zero_header{};
  ok_ = std::fwrite(&zero_header, sizeof(zero_header), 1, file_) == 1;
  const int d = params_.dim();
  ok_ = ok_ && std::fwrite(params_.scale.data(), sizeof(double), d, file_) ==
                   static_cast<size_t>(d);
  ok_ = ok_ && std::fwrite(params_.offset.data(), sizeof(double), d, file_) ==
                   static_cast<size_t>(d);
  const int64_t pad = layout.vectors_offset -
                      (static_cast<int64_t>(sizeof(StoreHeader)) + 16 * d);
  const unsigned char zeros[64] = {};
  if (pad > 0) {
    ok_ = ok_ && std::fwrite(zeros, 1, static_cast<size_t>(pad), file_) ==
                     static_cast<size_t>(pad);
  }
}

StoreWriter::~StoreWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

bool StoreWriter::Append(const double* row) {
  GRADGCL_CHECK(!finalized_);
  if (!ok_) return false;
  const int d = params_.dim();
  std::memset(row_buf_.data(), 0, row_buf_.size());
  if (tier_ == Tier::kInt8) {
    QuantizeRowInt8(params_, row, reinterpret_cast<int8_t*>(row_buf_.data()));
  } else {
    QuantizeRowBf16(row, d, reinterpret_cast<uint16_t*>(row_buf_.data()));
  }
  inv_norms_.push_back(DecodedInvNorm(params_, tier_, row_buf_.data(), d));
  ok_ = std::fwrite(row_buf_.data(), 1, row_buf_.size(), file_) ==
        row_buf_.size();
  if (ok_) ++rows_;
  return ok_;
}

bool StoreWriter::Finalize() {
  GRADGCL_CHECK(!finalized_);
  finalized_ = true;
  if (!ok_ || file_ == nullptr) return false;
  if (!inv_norms_.empty()) {
    ok_ = std::fwrite(inv_norms_.data(), sizeof(double), inv_norms_.size(),
                      file_) == inv_norms_.size();
  }
  const Layout layout = LayoutFor(params_.dim(), tier_);
  StoreHeader header{};
  std::memcpy(header.magic, kStoreMagic, 4);
  header.version = kStoreFormatVersion;
  header.tier = static_cast<int32_t>(tier_);
  header.dim = params_.dim();
  header.num_vectors = rows_;
  header.row_stride = row_stride_;
  header.vectors_offset = static_cast<uint64_t>(layout.vectors_offset);
  header.norms_offset =
      static_cast<uint64_t>(layout.vectors_offset + rows_ * row_stride_);
  ok_ = ok_ && std::fseek(file_, 0, SEEK_SET) == 0;
  ok_ = ok_ && std::fwrite(&header, sizeof(header), 1, file_) == 1;
  ok_ = std::fclose(file_) == 0 && ok_;
  file_ = nullptr;
  return ok_;
}

}  // namespace gradgcl::retrieval
