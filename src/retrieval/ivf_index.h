// IvfIndex: inverted-file retrieval over a quantized store.
//
// Build partitions the (row-normalized) corpus into nlist cells with
// spherical k-means, groups rows by cell into one contiguous
// QuantizedStore (corpus-wide quantization params), and keeps the f64
// centroids. Search scores the query against every centroid, probes
// the top-`nprobe` cells (ascending-index ties, like every top-k
// here), scans their contiguous row ranges through the store kernels,
// and merges candidates under the (score, original-index) total order
// — so the result set is unique no matter the probe order.
//
// Determinism contract (pinned by tests/retrieval_test.cc):
//  * k-means is bit-identical across GRADGCL_NUM_THREADS: the seeded
//    init draws from a fixed Rng stream, the assignment step is
//    parallel but each point's nearest centroid depends only on that
//    point, and centroid accumulation is serial in ascending row order
//    (a fixed f64 reduction chain).
//  * Search parallelizes over queries only; one query's centroid scan,
//    cell scans, and merge are serial. int8 scans are additionally
//    bit-identical across ISAs (exact integer dots).
//
// nprobe trades recall for speed: nprobe == nlist degenerates to the
// flat scan (same scores, same ranking — pinned by test). The env knob
// GRADGCL_RETRIEVAL_NPROBE (read by the serving engine / bench)
// selects the operating point.

#ifndef GRADGCL_RETRIEVAL_IVF_INDEX_H_
#define GRADGCL_RETRIEVAL_IVF_INDEX_H_

#include <cstdint>
#include <vector>

#include "eval/similarity.h"
#include "retrieval/store.h"
#include "tensor/matrix.h"

namespace gradgcl::retrieval {

using gradgcl::Neighbor;

struct IvfConfig {
  int nlist = 64;          // number of k-means cells (clamped to rows)
  int nprobe = 8;          // cells scanned per query (clamped to nlist)
  int kmeans_iters = 10;   // Lloyd iterations
  uint64_t seed = 42;      // centroid init stream
  Tier tier = Tier::kInt8; // storage tier of the cell store
};

class IvfIndex {
 public:
  // Builds over `corpus` (rows = vectors; normalized internally).
  static IvfIndex Build(const Matrix& corpus, const IvfConfig& config);

  // Builds over an existing (typically mmap'd) store without ever
  // materializing an f64 corpus matrix: k-means runs on rows decoded
  // one at a time (renormalized via the stored inv_norms), and the
  // cell-grouped store copies quantized codes verbatim
  // (QuantizedStore::GatherRows) — params and codes are preserved
  // exactly, so a full probe scores bit-identically to scanning the
  // source store directly. Peak extra memory is O(nlist * dim +
  // num_vectors), never O(num_vectors * dim) doubles. config.tier is
  // ignored (the store's tier wins).
  static IvfIndex BuildFromStore(const QuantizedStore& corpus,
                                 const IvfConfig& config);

  int64_t num_vectors() const { return store_.num_vectors(); }
  int dim() const { return store_.dim(); }
  int nlist() const { return centroids_.rows(); }
  int nprobe() const { return nprobe_; }
  Tier tier() const { return store_.tier(); }
  const Matrix& centroids() const { return centroids_; }
  const QuantizedStore& store() const { return store_; }

  // Rows assigned to cell c live at store rows
  // [list_offsets()[c], list_offsets()[c + 1]); ids()[r] maps a store
  // row back to its original corpus index.
  const std::vector<int64_t>& list_offsets() const { return list_offsets_; }
  const std::vector<int64_t>& ids() const { return ids_; }

  // Sets the default probe width (clamped to [1, nlist]).
  void set_nprobe(int nprobe);

  // Top-k original-corpus indices for one query; `nprobe_override > 0`
  // widens/narrows the probe for this call only.
  std::vector<Neighbor> Search(const double* query, int k,
                               int nprobe_override = 0) const;

  // One Search per row of `queries`, parallelized over queries.
  std::vector<std::vector<Neighbor>> SearchBatch(const Matrix& queries, int k,
                                                 int nprobe_override = 0) const;

 private:
  IvfIndex() = default;

  Matrix centroids_;                  // nlist x dim, unit rows (f64)
  QuantizedStore store_;              // rows grouped by cell
  std::vector<int64_t> list_offsets_; // nlist + 1 CSR offsets
  std::vector<int64_t> ids_;          // store row -> corpus index
  int nprobe_ = 8;
};

}  // namespace gradgcl::retrieval

#endif  // GRADGCL_RETRIEVAL_IVF_INDEX_H_
