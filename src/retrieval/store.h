// Quantized embedding store: the on-disk / in-RAM vector container the
// retrieval indexes scan.
//
// File layout (<path>, little-endian, all blocks 8-byte aligned, the
// vector block 64-byte aligned for the SIMD kernels):
//
//   [StoreHeader, 64 bytes]
//   [scale:  f64[dim]]
//   [offset: f64[dim]]
//   [vectors: num_vectors rows x row_stride bytes]   at vectors_offset
//   [inv_norms: f64[num_vectors]]                    at norms_offset
//
// row_stride is the per-row byte width (dim for int8, 2*dim for bf16)
// rounded up to 64, so every row starts cache-line aligned; padding
// bytes are written as zero and never read back (the kernels take the
// logical dim). inv_norms[i] = 1 / ||decode(row_i)|| in f64 (0 for an
// all-zero row) — the per-vector cosine correction the scans multiply
// in, computed against the RECONSTRUCTED row so scores are cosines
// against what the store actually holds.
//
// Persistence follows the src/data/ shard idioms:
//  * StoreWriter appends row by row with O(1) memory beyond the norm
//    array (8 bytes per vector), patches the header on Finalize.
//  * QuantizedStore::Map mmaps a store read-only and scans it zero-copy;
//    QuantizedStore::Load reads it into owned memory (small corpora /
//    tests). Both validate every header field in int64 arithmetic
//    against the real file size BEFORE any allocation or dereference,
//    mirroring data/shard_reader: corrupt or truncated input of any
//    shape yields a clean `false`, never an abort or a lying-header
//    allocation (pinned by the corruption battery in
//    tests/retrieval_test.cc).
//
// Scans (ScoreRows) are const and thread-safe; the retrieval indexes
// parallelize over queries, never inside one query's scan, so results
// are bit-identical at every GRADGCL_NUM_THREADS.

#ifndef GRADGCL_RETRIEVAL_STORE_H_
#define GRADGCL_RETRIEVAL_STORE_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "retrieval/quantize.h"
#include "tensor/matrix.h"

namespace gradgcl::retrieval {

inline constexpr char kStoreMagic[4] = {'G', 'G', 'Q', 'S'};
inline constexpr uint32_t kStoreFormatVersion = 1;

// Fixed store header. Reserved words keep it at 64 bytes so the scale
// block starts 8-byte (and the header itself cache-line) aligned.
struct StoreHeader {
  char magic[4];
  uint32_t version;
  int32_t tier;        // Tier enum value
  int32_t dim;         // > 0, <= kMaxStoreDim
  int64_t num_vectors; // >= 0
  int64_t row_stride;  // bytes per row, 64-aligned
  uint64_t vectors_offset;
  uint64_t norms_offset;
  uint64_t reserved0;
  uint64_t reserved1;
};
static_assert(sizeof(StoreHeader) == 64);

// Caps keep a lying header from sizing an allocation: dim is bounded
// by the int8 kernels' overflow contract (tensor/simd.h kMaxInt8Dim)
// and num_vectors by an addressability sanity bound.
inline constexpr int64_t kMaxStoreDim = 32767;
inline constexpr int64_t kMaxStoreVectors = int64_t{1} << 40;

// A quantized vector block, either owned or memory-mapped.
class QuantizedStore {
 public:
  QuantizedStore() = default;
  ~QuantizedStore();

  QuantizedStore(QuantizedStore&& other) noexcept;
  QuantizedStore& operator=(QuantizedStore&& other) noexcept;
  QuantizedStore(const QuantizedStore&) = delete;
  QuantizedStore& operator=(const QuantizedStore&) = delete;

  // Quantizes `corpus` rows (params computed from the corpus itself)
  // into an owned block. Deterministic for every thread count.
  static QuantizedStore Build(const Matrix& corpus, Tier tier);

  // As Build, but with caller-supplied params (the IVF index quantizes
  // per-list slices under the corpus-wide params).
  static QuantizedStore BuildWithParams(const Matrix& corpus,
                                        const QuantizationParams& params,
                                        Tier tier);

  // Builds an owned store holding rows order[0..k) of `src`, in that
  // order, copying quantized codes and inv_norms verbatim (params
  // preserved, nothing re-quantized, no f64 rows materialized). This
  // is how IvfIndex::BuildFromStore groups an mmap'd corpus by cell.
  static QuantizedStore GatherRows(const QuantizedStore& src,
                                   const std::vector<int64_t>& order);

  // Maps `path` read-only (zero-copy scans; the page cache owns the
  // bytes). Returns false on I/O error or any structural corruption.
  bool Map(const std::string& path);

  // Reads `path` into owned memory. Same validation as Map.
  bool Load(const std::string& path);

  // Writes the store to `path`. Returns false on I/O failure.
  bool Save(const std::string& path) const;

  bool is_open() const { return num_vectors_ >= 0 && dim_ > 0; }
  int64_t num_vectors() const { return num_vectors_; }
  int dim() const { return dim_; }
  Tier tier() const { return tier_; }
  int64_t row_stride() const { return row_stride_; }
  const QuantizationParams& params() const { return params_; }
  bool mapped() const { return mapped_base_ != nullptr; }

  const int8_t* RowInt8(int64_t i) const {
    return reinterpret_cast<const int8_t*>(data_ + i * row_stride_);
  }
  const uint16_t* RowBf16(int64_t i) const {
    return reinterpret_cast<const uint16_t*>(data_ + i * row_stride_);
  }
  double inv_norm(int64_t i) const { return inv_norms_[i]; }

  // Encodes one unit-norm f64 query for asymmetric int8 scoring
  // (retrieval/quantize.h): out[d] = round(query[d] * scale[d] / s_q)
  // with s_q = max_d |query[d] * scale[d]| / 127. Writes s_q to
  // *query_scale and the query-constant bias sum_d query[d] * offset[d]
  // to *query_bias. `out` must hold dim() codes. int8 tier only.
  void EncodeQuery(const double* query, int8_t* out, double* query_scale,
                   double* query_bias) const;

  // Scores a query against rows [begin, end), one cosine-style score
  // per row (cosine between the unit query and the reconstructed row):
  //   int8: (query_bias + query_scale * dot_i8(q, row)) * inv_norm(row)
  //   bf16: dot_f64(widen(row), query) * inv_norm(row)
  // The int8 dot is exact integer arithmetic and the postprocess a
  // fixed two-op f64 chain, so scores are bit-identical across ISAs
  // and thread counts.
  void ScoreRowsInt8(const int8_t* query, double query_scale,
                     double query_bias, int64_t begin, int64_t end,
                     double* scores) const;
  void ScoreRowsBf16(const double* query, int64_t begin, int64_t end,
                     double* scores) const;

  // Reconstructs row i to f64 (tests, debugging).
  void DecodeRow(int64_t i, double* out) const;

 private:
  void CloseMapping();
  void InitLayout(int dim, Tier tier);
  bool ValidateAndAdopt(const unsigned char* base, int64_t size);

  Tier tier_ = Tier::kInt8;
  int dim_ = 0;
  int64_t num_vectors_ = -1;
  int64_t row_stride_ = 0;
  QuantizationParams params_;

  // Owned storage (Build / Load).
  std::vector<unsigned char> owned_data_;
  std::vector<double> owned_inv_norms_;

  // Mapped storage (Map). data_ / inv_norms_ point into whichever is
  // active.
  const unsigned char* mapped_base_ = nullptr;
  int64_t mapped_size_ = 0;
  int mapped_fd_ = -1;

  const unsigned char* data_ = nullptr;
  const double* inv_norms_ = nullptr;
};

// Streaming writer: append rows one at a time, Finalize patches the
// header and appends the norm block. Peak RAM is one encoded row plus
// 8 bytes per appended vector.
class StoreWriter {
 public:
  StoreWriter(std::string path, QuantizationParams params, Tier tier);
  ~StoreWriter();

  StoreWriter(const StoreWriter&) = delete;
  StoreWriter& operator=(const StoreWriter&) = delete;

  // Appends one f64 row (params.dim() values). False on I/O failure.
  bool Append(const double* row);

  // Patches the header, writes the norm block. Exactly once; no Append
  // after. False on I/O failure.
  bool Finalize();

  bool ok() const { return ok_; }
  int64_t rows_written() const { return rows_; }

 private:
  std::string path_;
  QuantizationParams params_;
  Tier tier_;
  int64_t row_stride_ = 0;
  std::FILE* file_ = nullptr;
  bool ok_ = true;
  bool finalized_ = false;
  int64_t rows_ = 0;
  std::vector<unsigned char> row_buf_;
  std::vector<double> inv_norms_;
};

}  // namespace gradgcl::retrieval

#endif  // GRADGCL_RETRIEVAL_STORE_H_
