#include "distributed/comm.h"

#include <chrono>
#include <cstring>

#include "common/check.h"
#include "distributed/ring_allreduce.h"

namespace gradgcl {
namespace dist {

const char* CommStatusName(CommStatus status) {
  switch (status) {
    case CommStatus::kOk:
      return "ok";
    case CommStatus::kTimeout:
      return "timeout";
    case CommStatus::kPeerDead:
      return "peer_dead";
    case CommStatus::kProtocol:
      return "protocol";
  }
  return "unknown";
}

CommStatus CommBackend::SendRecv(const void* send, int64_t send_n, void* recv,
                                 int64_t recv_n) {
  // Correct only for transports whose SendNext never blocks on the
  // receiver (ThreadComm's unbounded mailboxes). SocketComm overrides.
  const CommStatus s = SendNext(send, send_n);
  if (s != CommStatus::kOk) return s;
  return RecvPrev(recv, recv_n);
}

CommStatus CommBackend::Broadcast(void* bytes, int64_t n, int root) {
  GRADGCL_CHECK(root >= 0 && root < world_size());
  GRADGCL_CHECK(n >= 0);
  if (world_size() == 1 || n == 0) return CommStatus::kOk;
  // Relay around the ring: root sends, every other rank receives and
  // forwards (except the rank just before root, which only receives).
  const int pos = (rank() - root + world_size()) % world_size();
  if (pos == 0) return SendNext(bytes, n);
  const CommStatus s = RecvPrev(bytes, n);
  if (s != CommStatus::kOk) return s;
  if (pos < world_size() - 1) return SendNext(bytes, n);
  return CommStatus::kOk;
}

CommStatus CommBackend::Barrier() {
  if (world_size() == 1) return CommStatus::kOk;
  // Two token laps: the first collects entry (token back at rank 0
  // proves every rank has entered), the second releases.
  unsigned char token = 0;
  for (int lap = 0; lap < 2; ++lap) {
    CommStatus s;
    if (rank() == 0) {
      s = SendNext(&token, 1);
      if (s != CommStatus::kOk) return s;
      s = RecvPrev(&token, 1);
    } else {
      s = RecvPrev(&token, 1);
      if (s != CommStatus::kOk) return s;
      s = SendNext(&token, 1);
    }
    if (s != CommStatus::kOk) return s;
  }
  return CommStatus::kOk;
}

CommStatus CommBackend::AllReduceSum(double* data, int64_t n,
                                     int64_t bucket_bytes) {
  return RingAllReduceSum(*this, data, n, bucket_bytes);
}

// --- ThreadComm -----------------------------------------------------------

ThreadComm::ThreadComm(std::shared_ptr<internal::ThreadRingShared> shared,
                       int rank)
    : shared_(std::move(shared)), rank_(rank) {
  GRADGCL_CHECK(shared_ != nullptr);
  GRADGCL_CHECK(rank_ >= 0 && rank_ < static_cast<int>(shared_->edges.size()));
}

CommStatus ThreadComm::SendNext(const void* bytes, int64_t n) {
  GRADGCL_CHECK(n >= 0);
  if (n == 0) return CommStatus::kOk;
  internal::Mailbox& edge = shared_->edges[rank_];
  std::lock_guard<std::mutex> lock(edge.mu);
  if (edge.dead) return CommStatus::kPeerDead;
  const auto* p = static_cast<const unsigned char*>(bytes);
  edge.queue.emplace_back(p, p + n);
  edge.cv.notify_all();
  return CommStatus::kOk;
}

CommStatus ThreadComm::RecvPrev(void* bytes, int64_t n) {
  GRADGCL_CHECK(n >= 0);
  if (n == 0) return CommStatus::kOk;
  const int world = world_size();
  internal::Mailbox& edge = shared_->edges[(rank_ - 1 + world) % world];
  std::unique_lock<std::mutex> lock(edge.mu);
  const bool ready = edge.cv.wait_for(
      lock, std::chrono::milliseconds(timeout_millis()),
      [&edge] { return edge.dead || !edge.queue.empty(); });
  if (edge.dead) return CommStatus::kPeerDead;
  if (!ready) return CommStatus::kTimeout;
  std::vector<unsigned char> msg = std::move(edge.queue.front());
  edge.queue.pop_front();
  lock.unlock();
  if (static_cast<int64_t>(msg.size()) != n) return CommStatus::kProtocol;
  std::memcpy(bytes, msg.data(), static_cast<size_t>(n));
  return CommStatus::kOk;
}

void ThreadComm::Abort() {
  for (internal::Mailbox& edge : shared_->edges) {
    std::lock_guard<std::mutex> lock(edge.mu);
    edge.dead = true;
    edge.cv.notify_all();
  }
}

std::vector<std::unique_ptr<CommBackend>> CreateThreadRing(int world_size) {
  GRADGCL_CHECK(world_size >= 1);
  auto shared = std::make_shared<internal::ThreadRingShared>(world_size);
  std::vector<std::unique_ptr<CommBackend>> ring;
  ring.reserve(world_size);
  for (int r = 0; r < world_size; ++r) {
    ring.push_back(std::make_unique<ThreadComm>(shared, r));
  }
  return ring;
}

}  // namespace dist
}  // namespace gradgcl
