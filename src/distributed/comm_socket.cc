#include "distributed/comm_socket.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <chrono>
#include <cstring>

#include "common/check.h"

namespace gradgcl {
namespace dist {

namespace {

using Clock = std::chrono::steady_clock;

void SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  GRADGCL_CHECK(flags >= 0);
  GRADGCL_CHECK(fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0);
}

// Milliseconds left until `deadline`, clamped to >= 0.
int RemainingMillis(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  return left.count() > 0 ? static_cast<int>(left.count()) : 0;
}

bool IsPeerDeadErrno(int e) {
  return e == EPIPE || e == ECONNRESET || e == EBADF || e == ENOTCONN;
}

}  // namespace

SocketComm::SocketComm(int rank, int world_size, int send_fd, int recv_fd)
    : rank_(rank), world_(world_size), send_fd_(send_fd), recv_fd_(recv_fd) {
  GRADGCL_CHECK(rank >= 0 && rank < world_size);
  GRADGCL_CHECK(send_fd >= 0 && recv_fd >= 0);
}

SocketComm::~SocketComm() { CloseEndpoints(); }

void SocketComm::CloseEndpoints() {
  if (send_fd_ >= 0) {
    close(send_fd_);
    send_fd_ = -1;
  }
  if (recv_fd_ >= 0) {
    close(recv_fd_);
    recv_fd_ = -1;
  }
}

void SocketComm::Abort() {
  // shutdown (not close) so a concurrent poll on these fds in another
  // thread wakes with POLLHUP instead of racing a reused descriptor.
  if (send_fd_ >= 0) shutdown(send_fd_, SHUT_RDWR);
  if (recv_fd_ >= 0) shutdown(recv_fd_, SHUT_RDWR);
}

CommStatus SocketComm::SendRecv(const void* send, int64_t send_n, void* recv,
                                int64_t recv_n) {
  GRADGCL_CHECK(send_n >= 0 && recv_n >= 0);
  const auto* send_p = static_cast<const unsigned char*>(send);
  auto* recv_p = static_cast<unsigned char*>(recv);
  int64_t sent = 0;
  int64_t received = 0;
  const auto deadline = Clock::now() + std::chrono::milliseconds(
                                           timeout_millis());
  while (sent < send_n || received < recv_n) {
    if (send_fd_ < 0 || recv_fd_ < 0) return CommStatus::kPeerDead;
    bool progressed = false;
    if (sent < send_n) {
      const ssize_t k = ::send(send_fd_, send_p + sent,
                               static_cast<size_t>(send_n - sent),
                               MSG_NOSIGNAL);
      if (k > 0) {
        sent += k;
        progressed = true;
      } else if (k < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                 errno != EINTR) {
        return IsPeerDeadErrno(errno) ? CommStatus::kPeerDead
                                      : CommStatus::kProtocol;
      }
    }
    if (received < recv_n) {
      const ssize_t k = ::recv(recv_fd_, recv_p + received,
                               static_cast<size_t>(recv_n - received), 0);
      if (k > 0) {
        received += k;
        progressed = true;
      } else if (k == 0) {
        return CommStatus::kPeerDead;  // orderly EOF: peer closed/aborted
      } else if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
        return IsPeerDeadErrno(errno) ? CommStatus::kPeerDead
                                      : CommStatus::kProtocol;
      }
    }
    if (progressed || (sent >= send_n && received >= recv_n)) continue;
    // Both directions blocked: wait for whichever becomes ready.
    struct pollfd fds[2];
    int nfds = 0;
    if (sent < send_n) {
      fds[nfds].fd = send_fd_;
      fds[nfds].events = POLLOUT;
      ++nfds;
    }
    if (received < recv_n) {
      fds[nfds].fd = recv_fd_;
      fds[nfds].events = POLLIN;
      ++nfds;
    }
    const int wait = RemainingMillis(deadline);
    if (wait == 0) return CommStatus::kTimeout;
    const int ready = poll(fds, static_cast<nfds_t>(nfds), wait);
    if (ready == 0) return CommStatus::kTimeout;
    if (ready < 0 && errno != EINTR) return CommStatus::kProtocol;
    // POLLHUP/POLLERR fall through: the next send/recv attempt reports
    // the precise status.
  }
  return CommStatus::kOk;
}

CommStatus SocketComm::SendNext(const void* bytes, int64_t n) {
  return SendRecv(bytes, n, nullptr, 0);
}

CommStatus SocketComm::RecvPrev(void* bytes, int64_t n) {
  return SendRecv(nullptr, 0, bytes, n);
}

std::vector<std::unique_ptr<SocketComm>> CreateSocketRing(int world_size) {
  GRADGCL_CHECK(world_size >= 1);
  // Edge e carries rank e -> rank (e+1) % world. fds[e][0] is the
  // sender's end, fds[e][1] the receiver's.
  std::vector<std::array<int, 2>> edges(world_size);
  for (int e = 0; e < world_size; ++e) {
    int pair[2];
    GRADGCL_CHECK_MSG(socketpair(AF_UNIX, SOCK_STREAM, 0, pair) == 0,
                      "socketpair failed");
    SetNonBlocking(pair[0]);
    SetNonBlocking(pair[1]);
    edges[e] = {pair[0], pair[1]};
  }
  std::vector<std::unique_ptr<SocketComm>> ring;
  ring.reserve(world_size);
  for (int r = 0; r < world_size; ++r) {
    const int prev_edge = (r - 1 + world_size) % world_size;
    ring.push_back(std::make_unique<SocketComm>(
        r, world_size, /*send_fd=*/edges[r][0],
        /*recv_fd=*/edges[prev_edge][1]));
  }
  return ring;
}

}  // namespace dist
}  // namespace gradgcl
