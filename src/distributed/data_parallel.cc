#include "distributed/data_parallel.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "common/check.h"
#include "common/stopwatch.h"
#include "distributed/comm_socket.h"
#include "distributed/ring_allreduce.h"
#include "tensor/pool.h"
#include "train/scheduler.h"

namespace gradgcl {
namespace dist {

namespace {

bool IsPow2(int64_t x) { return x > 0 && (x & (x - 1)) == 0; }

// Where a rank's micro-batches come from. `owned` lists the epoch-plan
// batch indices this rank will evaluate, in consumption order; Loss is
// then called exactly once per owned index, in that order.
class MicroBatchRunner {
 public:
  virtual ~MicroBatchRunner() = default;
  virtual void BeginEpoch(const std::vector<std::vector<int>>& plan,
                          const std::vector<int64_t>& owned) = 0;
  virtual Variable Loss(GraphSslModel& model, int64_t batch_index,
                        Rng& rng) = 0;
};

class InRamRunner : public MicroBatchRunner {
 public:
  explicit InRamRunner(const std::vector<Graph>& dataset)
      : dataset_(dataset) {}

  void BeginEpoch(const std::vector<std::vector<int>>& plan,
                  const std::vector<int64_t>& /*owned*/) override {
    plan_ = &plan;
  }

  Variable Loss(GraphSslModel& model, int64_t batch_index,
                Rng& rng) override {
    return model.BatchLoss(dataset_, (*plan_)[static_cast<size_t>(batch_index)],
                           rng);
  }

 private:
  const std::vector<Graph>& dataset_;
  const std::vector<std::vector<int>>* plan_ = nullptr;
};

class StreamedRunner : public MicroBatchRunner {
 public:
  explicit StreamedRunner(GraphBatchSource& source) : source_(source) {}

  void BeginEpoch(const std::vector<std::vector<int>>& plan,
                  const std::vector<int64_t>& owned) override {
    // The source only ever sees this rank's slots, in consumption
    // order — the sub-plan of the global epoch plan.
    std::vector<std::vector<int>> sub;
    sub.reserve(owned.size());
    for (int64_t b : owned) sub.push_back(plan[static_cast<size_t>(b)]);
    source_.BeginEpoch(sub);
  }

  Variable Loss(GraphSslModel& model, int64_t /*batch_index*/,
                Rng& rng) override {
    GRADGCL_CHECK_MSG(source_.NextBatch(&gathered_),
                      "streaming batch source failed (corrupt shard?)");
    iota_.resize(gathered_.size());
    for (size_t k = 0; k < iota_.size(); ++k) iota_[k] = static_cast<int>(k);
    return model.BatchLoss(gathered_, iota_, rng);
  }

 private:
  GraphBatchSource& source_;
  std::vector<Graph> gathered_;
  std::vector<int> iota_;
};

int64_t FlatParamSize(const std::vector<Variable>& params) {
  int64_t total = 0;
  for (const Variable& p : params) total += p.value().size();
  return total;
}

void FlattenValues(const std::vector<Variable>& params, double* out) {
  for (const Variable& p : params) {
    std::memcpy(out, p.value().data(), sizeof(double) * p.value().size());
    out += p.value().size();
  }
}

void UnflattenValues(const double* in, std::vector<Variable>& params) {
  for (Variable& p : params) {
    Matrix value = Matrix::Uninitialized(p.rows(), p.cols());
    std::memcpy(value.data(), in, sizeof(double) * value.size());
    in += value.size();
    p.set_value(std::move(value));
  }
}

TrainCheckpoint MakeCheckpoint(int64_t global_step, int64_t epoch,
                               int64_t window, const RngState& plan_rng,
                               int accum,
                               const std::vector<Variable>& params,
                               const Adam& optimizer) {
  TrainCheckpoint ckpt;
  ckpt.global_step = global_step;
  ckpt.epoch = epoch;
  ckpt.window = window;
  ckpt.adam_t = optimizer.step_count();
  ckpt.plan_rng = plan_rng;
  ckpt.accum = accum;
  ckpt.params.reserve(params.size());
  for (const Variable& p : params) ckpt.params.push_back(p.value());
  ckpt.adam_m = optimizer.first_moments();
  ckpt.adam_v = optimizer.second_moments();
  return ckpt;
}

DistResult RunCore(GraphSslModel& model, MicroBatchRunner& runner, int64_t n,
                   DistOptions opt, CommBackend* comm) {
  const int W = comm != nullptr ? comm->world_size() : 1;
  const int rank = comm != nullptr ? comm->rank() : 0;
  if (opt.world_size > 0) {
    GRADGCL_CHECK_MSG(opt.world_size == W,
                      "options.world_size must match the comm ring");
  }
  const int A = opt.micro_batches_per_step;
  GRADGCL_CHECK_MSG(IsPow2(W), "world size must be a power of two");
  GRADGCL_CHECK_MSG(IsPow2(A),
                    "micro_batches_per_step must be a power of two");
  GRADGCL_CHECK_MSG(A % W == 0,
                    "micro_batches_per_step must be divisible by world size");
  const int B = A / W;  // slots owned by this rank per window
  if (opt.bucket_bytes <= 0) opt.bucket_bytes = ResolveDistBucketBytes();
  if (comm != nullptr) comm->set_timeout_millis(opt.timeout_millis);
  GRADGCL_CHECK(n >= 2);

  const TrainOptions& t = opt.train;
  Adam optimizer(model.parameters(), t.lr, 0.9, 0.999, 1e-8, t.weight_decay);
  std::vector<Variable> params = model.parameters();
  const int64_t P = FlatParamSize(params);
  Rng plan_rng(t.seed);
  int64_t global_step = 0;
  int64_t start_epoch = 0;
  int64_t start_window = 0;

  DistResult result;
  // Rank-private arenas: slot gradients, the loss table, and the
  // all-reduce staging inside RingAllReduceSum are all owned by this
  // rank's thread; only the comm ring is shared.
  std::vector<std::vector<double>> slot_grads(
      static_cast<size_t>(B), std::vector<double>(static_cast<size_t>(P)));
  std::vector<double*> slot_ptrs(static_cast<size_t>(B));
  std::vector<double> loss_buf(static_cast<size_t>(A));

  if (opt.resume) {
    TrainCheckpoint ckpt;
    GRADGCL_CHECK_MSG(LoadCheckpoint(opt.checkpoint_path, &ckpt),
                      "failed to load checkpoint");
    GRADGCL_CHECK_MSG(ckpt.accum == A,
                      "checkpoint micro_batches_per_step mismatch");
    GRADGCL_CHECK_MSG(ckpt.params.size() == params.size(),
                      "checkpoint parameter count mismatch");
    for (size_t k = 0; k < params.size(); ++k) {
      GRADGCL_CHECK_MSG(ckpt.params[k].rows() == params[k].rows() &&
                            ckpt.params[k].cols() == params[k].cols(),
                        "checkpoint parameter shape mismatch");
      params[k].set_value(ckpt.params[k]);
    }
    GRADGCL_CHECK(ckpt.adam_t <= INT32_MAX);
    optimizer.RestoreState(std::move(ckpt.adam_m), std::move(ckpt.adam_v),
                           static_cast<int>(ckpt.adam_t));
    plan_rng.set_state(ckpt.plan_rng);
    global_step = ckpt.global_step;
    start_epoch = ckpt.epoch;
    start_window = ckpt.window;
  } else if (comm != nullptr && W > 1) {
    // Replicas must start bit-identical: rank 0's initial parameters
    // win (models are usually seeded identically anyway).
    std::vector<double> flat(static_cast<size_t>(P));
    if (rank == 0) FlattenValues(params, flat.data());
    const CommStatus st = comm->Broadcast(flat.data(), P * 8, /*root=*/0);
    if (st != CommStatus::kOk) {
      result.status = st;
      return result;
    }
    if (rank != 0) UnflattenValues(flat.data(), params);
  }

  const auto save_checkpoint = [&](int64_t epoch, int64_t window,
                                   const RngState& epoch_rng) {
    if (opt.checkpoint_path.empty() || rank != 0) return;
    GRADGCL_CHECK_MSG(
        SaveCheckpoint(opt.checkpoint_path,
                       MakeCheckpoint(global_step, epoch, window, epoch_rng, A,
                                      params, optimizer)),
        "checkpoint save failed");
  };

  for (int64_t epoch = start_epoch; epoch < t.epochs; ++epoch) {
    // Plan stream state at epoch start: what a checkpoint inside this
    // epoch records, so resume can regenerate the identical plan.
    const RngState epoch_rng = plan_rng.state();
    const std::vector<std::vector<int>> plan =
        MakeMiniBatches(static_cast<int>(n), t.batch_size, plan_rng);
    const int64_t num_batches = static_cast<int64_t>(plan.size());
    const int64_t windows = (num_batches + A - 1) / A;
    const int64_t w0 = epoch == start_epoch ? start_window : 0;
    if (w0 >= windows) continue;  // epoch finished before the checkpoint

    std::vector<int64_t> owned;
    for (int64_t w = w0; w < windows; ++w) {
      for (int j = 0; j < B; ++j) {
        const int64_t b = w * A + static_cast<int64_t>(rank) * B + j;
        if (b < num_batches) owned.push_back(b);
      }
    }
    runner.BeginEpoch(plan, owned);

    Stopwatch epoch_watch;
    double epoch_loss = 0.0;
    int64_t epoch_steps = 0;
    optimizer.set_lr(ScheduledLr(t.schedule, t.lr, static_cast<int>(epoch),
                                 t.epochs));
    for (int64_t w = w0; w < windows; ++w) {
      const int64_t m = std::min<int64_t>(A, num_batches - w * A);
      std::fill(loss_buf.begin(), loss_buf.end(), 0.0);
      for (int j = 0; j < B; ++j) {
        const int64_t slot = static_cast<int64_t>(rank) * B + j;
        const int64_t b = w * A + slot;
        if (b >= num_batches) {
          // Trailing empty slot: an exact-zero contribution, identical
          // at every world size, keeps the reduction tree's shape a
          // pure function of A.
          std::fill(slot_grads[j].begin(), slot_grads[j].end(), 0.0);
          continue;
        }
        Rng batch_rng(BatchStreamSeed(t.seed, epoch, b));
        TapeScope tape;  // step-scoped pooling, as in TrainGraphSsl
        optimizer.ZeroGrad();
        Variable loss = runner.Loss(model, b, batch_rng);
        Backward(loss);
        double* out = slot_grads[j].data();
        for (const Variable& p : params) {
          std::memcpy(out, p.grad().data(),
                      sizeof(double) * p.grad().size());
          out += p.grad().size();
        }
        loss_buf[slot] = loss.scalar();
      }
      // Local fixed tree over this rank's aligned slot block — an
      // exact subtree of the global A-slot tree.
      for (int j = 0; j < B; ++j) slot_ptrs[j] = slot_grads[j].data();
      TreeReduceInPlace(slot_ptrs.data(), B, P);
      double* grad_sum = slot_grads[0].data();
      if (comm != nullptr && W > 1) {
        CommStatus st = comm->AllReduceSum(grad_sum, P, opt.bucket_bytes);
        if (st == CommStatus::kOk) {
          // Loss slots are disjoint across ranks (zeros elsewhere), so
          // the tree sum is exact and W-invariant.
          st = comm->AllReduceSum(loss_buf.data(), A, opt.bucket_bytes);
        }
        if (st != CommStatus::kOk) {
          // No partial update: parameters still hold the last
          // completed step's values.
          result.status = st;
          result.steps_completed = global_step;
          return result;
        }
      }
      double window_loss = 0.0;
      for (int64_t s = 0; s < m; ++s) window_loss += loss_buf[s];
      window_loss /= static_cast<double>(m);
      const double inv = 1.0 / static_cast<double>(m);
      for (int64_t k = 0; k < P; ++k) grad_sum[k] *= inv;
      const double* in = grad_sum;
      for (Variable& p : params) {
        Matrix g = Matrix::Uninitialized(p.rows(), p.cols());
        std::memcpy(g.data(), in, sizeof(double) * g.size());
        in += g.size();
        p.set_grad(std::move(g));
      }
      optimizer.Step();
      model.PostStep();

      result.step_losses.push_back(window_loss);
      epoch_loss += window_loss;
      ++epoch_steps;
      ++global_step;
      if (opt.checkpoint_every_steps > 0 &&
          global_step % opt.checkpoint_every_steps == 0) {
        save_checkpoint(epoch, w + 1, epoch_rng);
      }
      if (opt.stop_at_step >= 0 && global_step >= opt.stop_at_step) {
        save_checkpoint(epoch, w + 1, epoch_rng);
        result.steps_completed = global_step;
        if (epoch_steps > 0) {
          EpochStats stats;
          stats.epoch = static_cast<int>(epoch);
          stats.loss = epoch_loss / static_cast<double>(epoch_steps);
          stats.seconds = epoch_watch.ElapsedSeconds();
          result.history.push_back(stats);
        }
        return result;
      }
    }
    EpochStats stats;
    stats.epoch = static_cast<int>(epoch);
    stats.loss = epoch_steps > 0 ? epoch_loss / static_cast<double>(epoch_steps)
                                 : 0.0;
    stats.seconds = epoch_watch.ElapsedSeconds();
    result.history.push_back(stats);
  }
  // Final checkpoint so a later resume is a no-op continuation.
  {
    const RngState final_rng = plan_rng.state();
    save_checkpoint(t.epochs, 0, final_rng);
  }
  result.steps_completed = global_step;
  return result;
}

}  // namespace

DataParallelTrainer::DataParallelTrainer(const DistOptions& options)
    : options_(options) {}

DistResult DataParallelTrainer::Run(GraphSslModel& model,
                                    const std::vector<Graph>& dataset,
                                    CommBackend* comm) {
  InRamRunner runner(dataset);
  return RunCore(model, runner, static_cast<int64_t>(dataset.size()),
                 options_, comm);
}

DistResult DataParallelTrainer::RunStreamed(GraphSslModel& model,
                                            GraphBatchSource& source,
                                            CommBackend* comm) {
  StreamedRunner runner(source);
  return RunCore(model, runner, source.num_graphs(), options_, comm);
}

int ResolveDistRanks() {
  const char* env = std::getenv("GRADGCL_DIST_RANKS");
  if (env == nullptr) return 1;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || v < 1 || v > 64 || !IsPow2(v)) return 1;
  return static_cast<int>(v);
}

DistBackend ResolveDistBackend() {
  const char* env = std::getenv("GRADGCL_DIST_BACKEND");
  if (env != nullptr && std::strcmp(env, "socket") == 0) {
    return DistBackend::kSocket;
  }
  return DistBackend::kThread;
}

int64_t ResolveDistBucketBytes() {
  const char* env = std::getenv("GRADGCL_DIST_BUCKET_BYTES");
  if (env == nullptr) return 1 << 20;
  char* end = nullptr;
  const long long v = std::strtoll(env, &end, 10);
  if (end == env || *end != '\0' || v < 8) return 1 << 20;
  return static_cast<int64_t>(v);
}

namespace {

std::vector<std::unique_ptr<CommBackend>> CreateRing(DistBackend backend,
                                                     int world) {
  if (backend == DistBackend::kSocket) {
    std::vector<std::unique_ptr<CommBackend>> ring;
    ring.reserve(world);
    for (auto& endpoint : CreateSocketRing(world)) {
      ring.push_back(std::move(endpoint));
    }
    return ring;
  }
  return CreateThreadRing(world);
}

}  // namespace

std::vector<DistResult> RunDataParallelRanks(
    const DistOptions& options, DistBackend backend,
    const std::function<std::unique_ptr<GraphSslModel>(int rank)>&
        model_factory,
    const std::vector<Graph>& dataset) {
  DistOptions opt = options;
  const int W = opt.world_size > 0 ? opt.world_size : ResolveDistRanks();
  opt.world_size = W;
  auto ring = CreateRing(backend, W);
  std::vector<DistResult> results(static_cast<size_t>(W));
  std::vector<std::thread> ranks;
  ranks.reserve(W);
  for (int r = 0; r < W; ++r) {
    ranks.emplace_back([&, r] {
      std::unique_ptr<GraphSslModel> model = model_factory(r);
      DataParallelTrainer trainer(opt);
      results[static_cast<size_t>(r)] =
          trainer.Run(*model, dataset, ring[static_cast<size_t>(r)].get());
    });
  }
  for (std::thread& th : ranks) th.join();
  return results;
}

std::vector<DistResult> RunDataParallelRanksStreamed(
    const DistOptions& options, DistBackend backend,
    const std::function<std::unique_ptr<GraphSslModel>(int rank)>&
        model_factory,
    const std::function<std::unique_ptr<GraphBatchSource>(int rank)>&
        source_factory) {
  DistOptions opt = options;
  const int W = opt.world_size > 0 ? opt.world_size : ResolveDistRanks();
  opt.world_size = W;
  auto ring = CreateRing(backend, W);
  std::vector<DistResult> results(static_cast<size_t>(W));
  std::vector<std::thread> ranks;
  ranks.reserve(W);
  for (int r = 0; r < W; ++r) {
    ranks.emplace_back([&, r] {
      std::unique_ptr<GraphSslModel> model = model_factory(r);
      std::unique_ptr<GraphBatchSource> source = source_factory(r);
      DataParallelTrainer trainer(opt);
      results[static_cast<size_t>(r)] = trainer.RunStreamed(
          *model, *source, ring[static_cast<size_t>(r)].get());
    });
  }
  for (std::thread& th : ranks) th.join();
  return results;
}

}  // namespace dist
}  // namespace gradgcl
