// Versioned training checkpoints for the data-parallel trainer.
//
// A checkpoint freezes everything the trainer needs to continue a run
// bit-exactly: model parameters, Adam moment estimates and step count,
// the plan-Rng state at the start of the checkpointed epoch, and the
// (epoch, window, global step) cursor. Resume restores the Rng,
// replays the epoch's batch plan deterministically (plans are a pure
// function of the restored stream), and continues from the saved
// window — the resumed trajectory is bit-identical to an uninterrupted
// run, pinned by tests.
//
// On-disk format "GGCK" v1 (little-endian, host doubles):
//
//   offset  size  field
//        0     4  magic "GGCK"
//        4     4  u32 version (1)
//        8     8  i64 global_step      completed optimizer steps
//       16     8  i64 epoch            epoch containing the next window
//       24     8  i64 window           next window within `epoch`
//       32     8  i64 adam_t           Adam step count
//       40    32  u64 rng_s[4]         plan-Rng xoshiro words (epoch start)
//       72     4  u32 rng_has_cached   0 or 1 (Box–Muller cache flag)
//       76     4  u32 reserved         must be 0
//       80     8  f64 rng_cached       cached normal (0.0 if none)
//       88     4  i32 accum            micro-batches per step at save time
//       92     4  i32 tensor_count
//       96    8k  shape table: tensor_count x (i32 rows, i32 cols)
//        ...       payload: all params, then all Adam m, then all Adam v,
//                  each tensor rows*cols doubles in parameter order
//
// Loading follows the hardened nn/serialize discipline: the file is
// mmap'd read-only and every header and shape-table field is validated
// in int64 arithmetic against the true file size BEFORE any allocation
// — a corrupt file is rejected with zero heap allocations (pinned by
// the byte-patch battery in tests/distributed_test.cc). Saving writes
// to `path.tmp` and renames, so a crash mid-save never clobbers the
// previous checkpoint.

#ifndef GRADGCL_DISTRIBUTED_CHECKPOINT_H_
#define GRADGCL_DISTRIBUTED_CHECKPOINT_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "tensor/matrix.h"

namespace gradgcl {
namespace dist {

struct TrainCheckpoint {
  int64_t global_step = 0;  // optimizer steps completed
  int64_t epoch = 0;        // epoch containing the next window to run
  int64_t window = 0;       // next window within `epoch`
  int64_t adam_t = 0;
  RngState plan_rng;        // plan stream state at the START of `epoch`
  int accum = 0;            // micro_batches_per_step (sanity-checked on resume)
  std::vector<Matrix> params;
  std::vector<Matrix> adam_m;
  std::vector<Matrix> adam_v;
};

// Writes `ckpt` to `path` (via rename of `path.tmp`). Returns false on
// I/O failure.
bool SaveCheckpoint(const std::string& path, const TrainCheckpoint& ckpt);

// Loads `path` into `out`. Returns false (allocating nothing) if the
// file is missing, truncated, or structurally corrupt in any header or
// shape-table field.
bool LoadCheckpoint(const std::string& path, TrainCheckpoint* out);

}  // namespace dist
}  // namespace gradgcl

#endif  // GRADGCL_DISTRIBUTED_CHECKPOINT_H_
