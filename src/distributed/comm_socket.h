// Unix-domain-socket transport for the distributed comm ring.
//
// CreateSocketRing builds one connected socketpair per ring edge and
// hands each rank an endpoint owning exactly two descriptors: a send
// fd to the next rank and a receive fd from the previous one. The
// endpoints work unchanged whether the ranks run as threads in one
// process or as fork()ed processes (each process must close the
// endpoints it does not own — CloseEndpoints — so peer death is
// observable as EOF).
//
// All descriptors are non-blocking; sends and receives run poll()-based
// progress loops against the backend's timeout, and SendRecv is a true
// full-duplex loop so simultaneous large exchanges cannot deadlock on
// kernel socket buffers. A closed or shutdown peer surfaces
// CommStatus::kPeerDead (EOF / EPIPE / ECONNRESET); a stalled one
// surfaces kTimeout.

#ifndef GRADGCL_DISTRIBUTED_COMM_SOCKET_H_
#define GRADGCL_DISTRIBUTED_COMM_SOCKET_H_

#include <memory>
#include <vector>

#include "distributed/comm.h"

namespace gradgcl {
namespace dist {

class SocketComm : public CommBackend {
 public:
  // Takes ownership of both descriptors.
  SocketComm(int rank, int world_size, int send_fd, int recv_fd);
  ~SocketComm() override;

  SocketComm(const SocketComm&) = delete;
  SocketComm& operator=(const SocketComm&) = delete;

  int rank() const override { return rank_; }
  int world_size() const override { return world_; }
  const char* name() const override { return "socket"; }

  CommStatus SendNext(const void* bytes, int64_t n) override;
  CommStatus RecvPrev(void* bytes, int64_t n) override;
  CommStatus SendRecv(const void* send, int64_t send_n, void* recv,
                      int64_t recv_n) override;

  // Shuts down both descriptors. Adjacent ranks observe EOF
  // immediately; non-adjacent ranks drain with kTimeout once the ring
  // stops making progress. Safe from any thread; idempotent.
  void Abort() override;

  // Closes both descriptors without shutdown. In a fork()-per-rank
  // setup every process must call this on the endpoints of the ranks
  // it does NOT run, so that a dead rank's descriptors are not kept
  // open by bystanders (which would mask EOF).
  void CloseEndpoints();

 private:
  int rank_;
  int world_;
  int send_fd_;
  int recv_fd_;
};

// Builds a connected ring of `world_size` socket endpoints in the
// calling process; hand endpoint i to rank i's thread or child process.
std::vector<std::unique_ptr<SocketComm>> CreateSocketRing(int world_size);

}  // namespace dist
}  // namespace gradgcl

#endif  // GRADGCL_DISTRIBUTED_COMM_SOCKET_H_
