// Bucketed ring all-reduce with a fixed reduction tree.
//
// The repo's determinism contract requires the reduced gradient to be
// a pure function of the data and the bucket layout — never of world
// size, message arrival order, or scheduling. Classic ring
// reduce-scatter breaks that: it accumulates partial sums along the
// ring, so the floating-point association rotates with the chunk index
// and changes with W. This implementation instead ships *raw*
// contributions and reduces them only at the chunk's owner, in a fixed
// order:
//
//  1. Collect phase (W-1 steps). Chunk c of each bucket is owned by
//     rank c. At step s, rank r sends one message: its own raw
//     contribution for chunk (r-s) mod W followed by the message it
//     received at step s-1 (which holds ranks r-1..r-s+1's raw
//     contributions for the same chunk). After step W-1, rank r holds
//     all W raw contributions for its chunk r.
//  2. Owner reduction. The owner sums the W contributions elementwise
//     with a stride-doubling pairwise tree in absolute rank order
//     (TreeReduceInPlace) — the same tree at every W, and the same
//     tree shape the data-parallel trainer uses over its
//     gradient-accumulation slots, which is what composes rank-local
//     partial sums into a W-independent total.
//  3. All-gather phase (W-1 steps). Reduced chunks circulate the ring:
//     at step s, rank r sends chunk (r-s+1) mod W and receives chunk
//     (r-s) mod W.
//
// Per-rank traffic is (W-1)/W of the data per phase — identical to the
// classic ring — and all staging lives in rank-private buffers. The
// vector is processed in buckets of `bucket_bytes` so staging stays
// bounded for arbitrarily large gradients (GRADGCL_DIST_BUCKET_BYTES).

#ifndef GRADGCL_DISTRIBUTED_RING_ALLREDUCE_H_
#define GRADGCL_DISTRIBUTED_RING_ALLREDUCE_H_

#include <cstdint>

#include "distributed/comm.h"

namespace gradgcl {
namespace dist {

// Elementwise sum of `count` equal-length buffers with a
// stride-doubling pairwise tree in index order; the result lands in
// bufs[0] and the other buffers are clobbered with partial sums. For
// power-of-two counts this is exactly the recursive-halving tree, so a
// contiguous aligned sub-block of size 2^k is an exact subtree —
// rank-local reductions compose into the global tree bit-for-bit.
void TreeReduceInPlace(double** bufs, int count, int64_t n);

// All-reduces data[0..n) (elementwise sum across all ranks of `comm`)
// with the fixed-tree schedule above. All ranks end with bit-identical
// sums; the result is invariant to world size for rank-partials that
// are aligned sub-blocks of one global tree (see data_parallel.h).
// bucket_bytes < 8 is clamped to one double per bucket.
CommStatus RingAllReduceSum(CommBackend& comm, double* data, int64_t n,
                            int64_t bucket_bytes);

}  // namespace dist
}  // namespace gradgcl

#endif  // GRADGCL_DISTRIBUTED_RING_ALLREDUCE_H_
