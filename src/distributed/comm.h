// Rank-to-rank communication for data-parallel training.
//
// A CommBackend connects one rank into a fixed ring of `world_size`
// ranks and exposes exactly the transport the deterministic collectives
// need: blocking byte transfer to the next rank and from the previous
// rank, plus a full-duplex SendRecv used by the all-reduce so large
// simultaneous exchanges cannot deadlock on transport buffering.
// Collectives (Broadcast / Barrier / AllReduceSum) are implemented once
// here on top of that ring interface, so every backend gets the same
// deterministic schedule — the reduction order is a pure function of
// the data layout and world size, never of message arrival order
// (ring_allreduce.h).
//
// Two transports ship:
//  - ThreadComm (this header): in-process ranks on threads, exchanging
//    through per-edge mailboxes in shared memory. Each rank keeps its
//    own staging arenas (and its own TapeScope matrix arenas), so
//    nothing but the mailboxes is shared.
//  - SocketComm (comm_socket.h): local Unix-domain-socket pairs, usable
//    from threads or from fork()ed processes.
//
// Every operation returns a typed CommStatus instead of blocking
// forever: a dead peer surfaces kPeerDead, a silent one kTimeout within
// the configured timeout. Callers must not touch model state after a
// non-kOk status — the data-parallel trainer guarantees no partial
// parameter update by only applying gradients after a fully successful
// all-reduce.

#ifndef GRADGCL_DISTRIBUTED_COMM_H_
#define GRADGCL_DISTRIBUTED_COMM_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

namespace gradgcl {
namespace dist {

// Outcome of a communication operation.
enum class CommStatus {
  kOk = 0,
  kTimeout,   // peer alive but no progress within timeout_millis
  kPeerDead,  // peer closed / aborted its endpoint
  kProtocol,  // framing violation (message size mismatch)
};

const char* CommStatusName(CommStatus status);

// One rank's endpoint in a fixed ring. Not thread-safe: each rank owns
// its backend and calls it from its own thread/process. Abort() is the
// one exception — it may be called from any thread (fault injection,
// teardown) and causes every pending and future operation on the ring
// to fail fast with kPeerDead.
class CommBackend {
 public:
  virtual ~CommBackend() = default;

  virtual int rank() const = 0;
  virtual int world_size() const = 0;
  virtual const char* name() const = 0;  // "thread" | "socket"

  // Blocking transfer of exactly `n` bytes to rank (rank+1)%W / from
  // rank (rank-1+W)%W. n == 0 succeeds immediately.
  virtual CommStatus SendNext(const void* bytes, int64_t n) = 0;
  virtual CommStatus RecvPrev(void* bytes, int64_t n) = 0;

  // Full-duplex step: send `send_n` bytes to next while receiving
  // `recv_n` bytes from prev. Backends whose SendNext can block on
  // transport buffering (sockets) must override this with a progress
  // loop; the default issues SendNext then RecvPrev, which is correct
  // for backends with unbounded send buffering (ThreadComm).
  virtual CommStatus SendRecv(const void* send, int64_t send_n, void* recv,
                              int64_t recv_n);

  // Marks the ring dead. All ranks' pending/future operations return
  // kPeerDead promptly. Safe from any thread; idempotent.
  virtual void Abort() = 0;

  // Per-operation deadline for blocking receives (and socket sends).
  void set_timeout_millis(int64_t ms) { timeout_millis_ = ms; }
  int64_t timeout_millis() const { return timeout_millis_; }

  // --- Ring collectives (deterministic; implemented in comm.cc) -----------

  // Copies root's `n` bytes into every rank's buffer by forwarding
  // around the ring (root -> root+1 -> ... -> root-1).
  CommStatus Broadcast(void* bytes, int64_t n, int root);

  // Blocks until every rank has entered the barrier (two token laps).
  CommStatus Barrier();

  // Elementwise sum of every rank's `data[0..n)` with a reduction order
  // that is a pure function of (n, world_size, bucket_bytes) — see
  // ring_allreduce.h. All ranks end with bit-identical sums.
  CommStatus AllReduceSum(double* data, int64_t n, int64_t bucket_bytes);

 private:
  int64_t timeout_millis_ = 30000;
};

namespace internal {

// One directed ring edge: rank e -> rank (e+1)%W. Messages are copied
// whole into the queue, so a sender never blocks (unbounded buffer).
struct Mailbox {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::vector<unsigned char>> queue;
  bool dead = false;
};

struct ThreadRingShared {
  explicit ThreadRingShared(int world) : edges(world) {}
  std::vector<Mailbox> edges;
};

}  // namespace internal

// In-process transport: ranks are threads, edges are mailboxes.
class ThreadComm : public CommBackend {
 public:
  ThreadComm(std::shared_ptr<internal::ThreadRingShared> shared, int rank);

  int rank() const override { return rank_; }
  int world_size() const override {
    return static_cast<int>(shared_->edges.size());
  }
  const char* name() const override { return "thread"; }

  CommStatus SendNext(const void* bytes, int64_t n) override;
  CommStatus RecvPrev(void* bytes, int64_t n) override;
  void Abort() override;

 private:
  std::shared_ptr<internal::ThreadRingShared> shared_;
  int rank_;
};

// Builds a connected ring of `world_size` in-process endpoints; hand
// endpoint i to rank i's thread.
std::vector<std::unique_ptr<CommBackend>> CreateThreadRing(int world_size);

}  // namespace dist
}  // namespace gradgcl

#endif  // GRADGCL_DISTRIBUTED_COMM_H_
