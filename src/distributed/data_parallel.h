// Deterministic data-parallel training over a comm ring.
//
// Contrastive losses couple every graph in a batch (InfoNCE negatives),
// so splitting one batch across ranks can never be bitwise-equal to
// full-batch backprop. The unit of parallelism here is therefore the
// *micro-batch*: each global optimizer step consumes a window of
// `micro_batches_per_step` (A) consecutive batches from the epoch plan,
// and rank r of W owns the contiguous slot block
// [r*A/W, (r+1)*A/W). The window's total gradient is defined as a
// stride-doubling pairwise tree over the A slots (empty trailing slots
// contribute exact zeros), reduced in slot order — a pure function of
// the window, independent of W. Because A and W are powers of two and
// W divides A, each rank's block is an aligned subtree: ranks reduce
// their own slots locally with the same tree, then combine partials
// across ranks in absolute rank order inside the fixed-tree ring
// all-reduce (ring_allreduce.h). Result: 1-, 2-, and 4-rank training
// produce bit-identical parameters and loss trajectories, pinned by
// tests over both transports.
//
// Batch plans come from the same Rng(seed)-driven MakeMiniBatches
// stream as the single-process trainers, replicated identically on
// every rank; per-batch randomness comes from the per-batch streams
// (train/trainer.h BatchStreamSeed), so ranks never need to know each
// other's Rng consumption. With W = 1 and A = 1 this loop degenerates
// exactly to TrainGraphSsl, completing the equivalence chain to the
// single-process path.
//
// Fault model: gradients are applied only after a fully successful
// all-reduce, so a rank death mid-step (CommStatus::kPeerDead /
// kTimeout within the configured timeout) leaves every survivor's
// parameters exactly as they were after the last completed step — no
// partial update, no hang. Checkpoint/resume (checkpoint.h) is
// bit-exact at any step boundary.
//
// Model requirement: PostStep() must evolve replicated state only as a
// function of parameters/gradients (GraphCL, InfoGraph, BGRL's EMA).
// Models whose PostStep consumes rank-local batch statistics (JOAO's
// augmentation-distribution update) would diverge across ranks and are
// not supported by this trainer.
//
// Env knobs (read when the corresponding option is 0 / empty):
//   GRADGCL_DIST_RANKS        world size for RunDataParallelRanks
//   GRADGCL_DIST_BACKEND      "thread" (default) | "socket"
//   GRADGCL_DIST_BUCKET_BYTES all-reduce bucket size (default 1 MiB)

#ifndef GRADGCL_DISTRIBUTED_DATA_PARALLEL_H_
#define GRADGCL_DISTRIBUTED_DATA_PARALLEL_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "distributed/checkpoint.h"
#include "distributed/comm.h"
#include "train/trainer.h"

namespace gradgcl {
namespace dist {

struct DistOptions {
  TrainOptions train;
  // 0 resolves GRADGCL_DIST_RANKS (default 1). Must be a power of two.
  int world_size = 0;
  // Micro-batches per optimizer step (A). Power of two, divisible by
  // the world size. A = 1, W = 1 reproduces TrainGraphSsl exactly.
  int micro_batches_per_step = 4;
  // 0 resolves GRADGCL_DIST_BUCKET_BYTES (default 1 MiB).
  int64_t bucket_bytes = 0;
  // Deadline for every blocking comm operation.
  int64_t timeout_millis = 30000;
  // Empty disables checkpointing. Rank 0 writes; on resume all ranks
  // read the same file.
  std::string checkpoint_path;
  // Save every k optimizer steps (0 = only at stop/end of training).
  int64_t checkpoint_every_steps = 0;
  // Stop (after saving, if a path is set) once global_step reaches this
  // value; < 0 runs to completion. Used by kill-and-resume tests.
  int64_t stop_at_step = -1;
  // Load checkpoint_path before training and continue from its cursor.
  bool resume = false;
};

struct DistResult {
  CommStatus status = CommStatus::kOk;  // non-kOk: aborted, params intact
  int64_t steps_completed = 0;          // global optimizer steps at return
  std::vector<double> step_losses;      // per-step mean loss, this call only
  std::vector<EpochStats> history;      // epochs processed in this call
};

class DataParallelTrainer {
 public:
  explicit DataParallelTrainer(const DistOptions& options);

  // Trains `model` as one rank of `comm`'s ring (comm == nullptr: the
  // single-rank degenerate case, no communication). All ranks must use
  // identical options; parameters are broadcast from rank 0 before the
  // first step so replicas start bit-identical.
  DistResult Run(GraphSslModel& model, const std::vector<Graph>& dataset,
                 CommBackend* comm = nullptr);

  // Streaming twin over a GraphBatchSource (the rank consumes only its
  // own slots' batches; bit-identical to Run on an equivalent source).
  DistResult RunStreamed(GraphSslModel& model, GraphBatchSource& source,
                         CommBackend* comm = nullptr);

  const DistOptions& options() const { return options_; }

 private:
  DistOptions options_;
};

// --- Env knob resolution --------------------------------------------------

enum class DistBackend { kThread, kSocket };

// GRADGCL_DIST_RANKS: power of two in [1, 64]; anything else => 1.
int ResolveDistRanks();
// GRADGCL_DIST_BACKEND: "socket" => kSocket; anything else => kThread.
DistBackend ResolveDistBackend();
// GRADGCL_DIST_BUCKET_BYTES: >= 8; anything else => 1 MiB.
int64_t ResolveDistBucketBytes();

// --- Multi-rank harness ---------------------------------------------------

// Runs world_size rank threads over a fresh ring of `backend`
// endpoints; `model_factory(rank)` builds each rank's replica inside
// its own thread (per-rank arenas). Returns one result per rank — on
// success all ranks report bit-identical losses and hold bit-identical
// parameters.
std::vector<DistResult> RunDataParallelRanks(
    const DistOptions& options, DistBackend backend,
    const std::function<std::unique_ptr<GraphSslModel>(int rank)>&
        model_factory,
    const std::vector<Graph>& dataset);

// Streamed variant: `source_factory(rank)` builds each rank's batch
// source (each rank consumes only its own slots through it).
std::vector<DistResult> RunDataParallelRanksStreamed(
    const DistOptions& options, DistBackend backend,
    const std::function<std::unique_ptr<GraphSslModel>(int rank)>&
        model_factory,
    const std::function<std::unique_ptr<GraphBatchSource>(int rank)>&
        source_factory);

}  // namespace dist
}  // namespace gradgcl

#endif  // GRADGCL_DISTRIBUTED_DATA_PARALLEL_H_
