#include "distributed/ring_allreduce.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/check.h"

namespace gradgcl {
namespace dist {

void TreeReduceInPlace(double** bufs, int count, int64_t n) {
  GRADGCL_CHECK(count >= 1 && n >= 0);
  for (int stride = 1; stride < count; stride *= 2) {
    for (int i = 0; i + stride < count; i += 2 * stride) {
      double* dst = bufs[i];
      const double* src = bufs[i + stride];
      for (int64_t k = 0; k < n; ++k) dst[k] += src[k];
    }
  }
}

namespace {

// Chunk c of a length-`len` bucket: [Split(c), Split(c+1)). Pure
// function of (len, world, c), shared by every rank.
int64_t Split(int64_t len, int world, int c) {
  return len * c / world;
}

// One bucket's all-reduce; staging buffers are caller-provided so a
// multi-bucket sweep reuses them (rank-private arenas).
CommStatus AllReduceBucket(CommBackend& comm, double* data, int64_t len,
                           std::vector<double>& msg,
                           std::vector<double>& recv_msg,
                           std::vector<double>& send_buf) {
  const int world = comm.world_size();
  const int rank = comm.rank();

  // --- Phase 1: collect raw contributions at each chunk's owner. ---
  // After step s, recv_msg holds s raw blocks for chunk (rank-1-s+1) =
  // (rank-s) mod... the blocks received at step s are for chunk
  // (rank-1-s) mod world, in source order [rank-1, ..., rank-s].
  msg.clear();
  for (int s = 1; s < world; ++s) {
    const int send_chunk = ((rank - s) % world + world) % world;
    const int recv_chunk = ((rank - 1 - s) % world + world) % world;
    const int64_t send_len = Split(len, world, send_chunk + 1) -
                             Split(len, world, send_chunk);
    const int64_t recv_len = Split(len, world, recv_chunk + 1) -
                             Split(len, world, recv_chunk);
    // Outgoing message: own raw block for send_chunk, then the message
    // received last step (ranks rank-1..rank-s+1's blocks, same chunk).
    // Tiny buckets can make chunks (and thus whole messages) empty;
    // skip the copies rather than hand memcpy a null vector base.
    send_buf.resize(static_cast<size_t>(s) * send_len);
    if (send_len > 0) {
      std::memcpy(send_buf.data(), data + Split(len, world, send_chunk),
                  sizeof(double) * static_cast<size_t>(send_len));
    }
    if (s > 1 && !msg.empty()) {
      std::memcpy(send_buf.data() + send_len, msg.data(),
                  sizeof(double) * msg.size());
    }
    recv_msg.resize(static_cast<size_t>(s) * recv_len);
    const CommStatus st = comm.SendRecv(
        send_buf.data(), static_cast<int64_t>(send_buf.size() * 8),
        recv_msg.data(), static_cast<int64_t>(recv_msg.size() * 8));
    if (st != CommStatus::kOk) return st;
    msg.swap(recv_msg);
  }

  // msg now holds world-1 raw blocks for chunk `rank`, source order
  // [rank-1, rank-2, ..., rank+1]. Reduce all world contributions in
  // absolute rank order with the fixed tree.
  const int64_t own_begin = Split(len, world, rank);
  const int64_t own_len = Split(len, world, rank + 1) - own_begin;
  std::vector<double*> by_rank(static_cast<size_t>(world));
  by_rank[static_cast<size_t>(rank)] = data + own_begin;
  for (int j = 0; j < world - 1; ++j) {
    const int src = ((rank - 1 - j) % world + world) % world;
    by_rank[static_cast<size_t>(src)] = msg.data() + j * own_len;
  }
  TreeReduceInPlace(by_rank.data(), world, own_len);
  if (own_len > 0 && by_rank[0] != data + own_begin) {
    std::memcpy(data + own_begin, by_rank[0],
                sizeof(double) * static_cast<size_t>(own_len));
  }

  // --- Phase 2: ring all-gather of reduced chunks. ---
  for (int s = 1; s < world; ++s) {
    const int send_chunk = ((rank - s + 1) % world + world) % world;
    const int recv_chunk = ((rank - s) % world + world) % world;
    const int64_t send_begin = Split(len, world, send_chunk);
    const int64_t send_len = Split(len, world, send_chunk + 1) - send_begin;
    const int64_t recv_begin = Split(len, world, recv_chunk);
    const int64_t recv_len = Split(len, world, recv_chunk + 1) - recv_begin;
    const CommStatus st =
        comm.SendRecv(data + send_begin, send_len * 8, data + recv_begin,
                      recv_len * 8);
    if (st != CommStatus::kOk) return st;
  }
  return CommStatus::kOk;
}

}  // namespace

CommStatus RingAllReduceSum(CommBackend& comm, double* data, int64_t n,
                            int64_t bucket_bytes) {
  GRADGCL_CHECK(n >= 0);
  if (comm.world_size() == 1 || n == 0) return CommStatus::kOk;
  const int64_t per_bucket = std::max<int64_t>(1, bucket_bytes / 8);
  // Rank-private staging, reused across buckets.
  std::vector<double> msg;
  std::vector<double> recv_msg;
  std::vector<double> send_buf;
  for (int64_t begin = 0; begin < n; begin += per_bucket) {
    const int64_t len = std::min(per_bucket, n - begin);
    const CommStatus st =
        AllReduceBucket(comm, data + begin, len, msg, recv_msg, send_buf);
    if (st != CommStatus::kOk) return st;
  }
  return CommStatus::kOk;
}

}  // namespace dist
}  // namespace gradgcl
