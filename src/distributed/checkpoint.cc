#include "distributed/checkpoint.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "common/check.h"

namespace gradgcl {
namespace dist {

namespace {

constexpr char kMagic[4] = {'G', 'G', 'C', 'K'};
constexpr uint32_t kVersion = 1;
constexpr int64_t kHeaderBytes = 96;
constexpr int32_t kMaxTensors = 1 << 20;
constexpr int32_t kMaxDim = 1 << 30;

template <typename T>
T ReadAs(const unsigned char* base, int64_t offset) {
  T v;
  std::memcpy(&v, base + offset, sizeof(T));
  return v;
}

template <typename T>
void PutAs(unsigned char* base, int64_t offset, T v) {
  std::memcpy(base + offset, &v, sizeof(T));
}

// RAII mapping so every rejection path unmaps/closes without cleanup
// boilerplate (and without allocating).
struct Mapping {
  const unsigned char* base = nullptr;
  int64_t size = 0;
  int fd = -1;
  ~Mapping() {
    if (base != nullptr) {
      ::munmap(const_cast<unsigned char*>(base), static_cast<size_t>(size));
    }
    if (fd >= 0) ::close(fd);
  }
};

}  // namespace

bool SaveCheckpoint(const std::string& path, const TrainCheckpoint& ckpt) {
  const size_t count = ckpt.params.size();
  GRADGCL_CHECK(ckpt.adam_m.size() == count && ckpt.adam_v.size() == count);
  GRADGCL_CHECK(count <= static_cast<size_t>(kMaxTensors));
  GRADGCL_CHECK(ckpt.global_step >= 0 && ckpt.epoch >= 0 && ckpt.window >= 0);
  GRADGCL_CHECK(ckpt.adam_t >= 0 && ckpt.accum >= 1);
  for (size_t k = 0; k < count; ++k) {
    GRADGCL_CHECK(ckpt.params[k].rows() >= 1 && ckpt.params[k].cols() >= 1);
    GRADGCL_CHECK(ckpt.adam_m[k].rows() == ckpt.params[k].rows() &&
                  ckpt.adam_m[k].cols() == ckpt.params[k].cols());
    GRADGCL_CHECK(ckpt.adam_v[k].rows() == ckpt.params[k].rows() &&
                  ckpt.adam_v[k].cols() == ckpt.params[k].cols());
  }

  const std::string tmp = path + ".tmp";
  FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;

  unsigned char header[kHeaderBytes] = {0};
  std::memcpy(header, kMagic, 4);
  PutAs<uint32_t>(header, 4, kVersion);
  PutAs<int64_t>(header, 8, ckpt.global_step);
  PutAs<int64_t>(header, 16, ckpt.epoch);
  PutAs<int64_t>(header, 24, ckpt.window);
  PutAs<int64_t>(header, 32, ckpt.adam_t);
  for (int i = 0; i < 4; ++i) {
    PutAs<uint64_t>(header, 40 + 8 * i, ckpt.plan_rng.s[i]);
  }
  PutAs<uint32_t>(header, 72, ckpt.plan_rng.has_cached_normal ? 1u : 0u);
  PutAs<uint32_t>(header, 76, 0u);
  PutAs<double>(header, 80, ckpt.plan_rng.cached_normal);
  PutAs<int32_t>(header, 88, ckpt.accum);
  PutAs<int32_t>(header, 92, static_cast<int32_t>(count));

  bool ok = std::fwrite(header, 1, kHeaderBytes, f) ==
            static_cast<size_t>(kHeaderBytes);
  for (size_t k = 0; ok && k < count; ++k) {
    const int32_t shape[2] = {ckpt.params[k].rows(), ckpt.params[k].cols()};
    ok = std::fwrite(shape, sizeof(int32_t), 2, f) == 2;
  }
  for (const auto* group : {&ckpt.params, &ckpt.adam_m, &ckpt.adam_v}) {
    for (size_t k = 0; ok && k < count; ++k) {
      const Matrix& m = (*group)[k];
      ok = std::fwrite(m.data(), sizeof(double),
                       static_cast<size_t>(m.size()),
                       f) == static_cast<size_t>(m.size());
    }
  }
  ok = (std::fflush(f) == 0) && ok;
  ok = (std::fclose(f) == 0) && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

bool LoadCheckpoint(const std::string& path, TrainCheckpoint* out) {
  GRADGCL_CHECK(out != nullptr);
  Mapping map;
  map.fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (map.fd < 0) return false;
  struct stat st;
  if (::fstat(map.fd, &st) != 0 || st.st_size < kHeaderBytes) return false;
  map.size = static_cast<int64_t>(st.st_size);
  void* base = ::mmap(nullptr, static_cast<size_t>(map.size), PROT_READ,
                      MAP_PRIVATE, map.fd, 0);
  if (base == MAP_FAILED) return false;
  map.base = static_cast<const unsigned char*>(base);
  const unsigned char* b = map.base;
  const int64_t size = map.size;

  // --- Structural validation: every field checked in int64 arithmetic
  // against the true file size before anything is allocated. ---
  if (std::memcmp(b, kMagic, 4) != 0) return false;
  if (ReadAs<uint32_t>(b, 4) != kVersion) return false;
  const int64_t global_step = ReadAs<int64_t>(b, 8);
  const int64_t epoch = ReadAs<int64_t>(b, 16);
  const int64_t window = ReadAs<int64_t>(b, 24);
  const int64_t adam_t = ReadAs<int64_t>(b, 32);
  if (global_step < 0 || epoch < 0 || window < 0) return false;
  if (adam_t < 0 || adam_t > global_step) return false;
  uint64_t rng_s[4];
  for (int i = 0; i < 4; ++i) rng_s[i] = ReadAs<uint64_t>(b, 40 + 8 * i);
  if (rng_s[0] == 0 && rng_s[1] == 0 && rng_s[2] == 0 && rng_s[3] == 0) {
    return false;  // invalid xoshiro state, never produced by a save
  }
  const uint32_t has_cached = ReadAs<uint32_t>(b, 72);
  if (has_cached > 1) return false;
  if (ReadAs<uint32_t>(b, 76) != 0) return false;  // reserved
  const int32_t accum = ReadAs<int32_t>(b, 88);
  const int32_t count = ReadAs<int32_t>(b, 92);
  if (accum < 1 || accum > kMaxTensors) return false;
  if (count < 0 || count > kMaxTensors) return false;
  const int64_t table_bytes = 8LL * count;
  if (kHeaderBytes + table_bytes > size) return false;
  int64_t total = 0;  // doubles across one tensor group
  for (int32_t k = 0; k < count; ++k) {
    const int32_t rows = ReadAs<int32_t>(b, kHeaderBytes + 8LL * k);
    const int32_t cols = ReadAs<int32_t>(b, kHeaderBytes + 8LL * k + 4);
    if (rows < 1 || cols < 1 || rows > kMaxDim || cols > kMaxDim) return false;
    const int64_t n = static_cast<int64_t>(rows) * cols;
    if (n > size / 8) return false;
    total += n;
    if (total > size / 8) return false;  // monotone: no int64 overflow
  }
  // Exact size: header + shape table + three payload groups.
  if (kHeaderBytes + table_bytes + 24 * total != size) return false;

  // --- Allocate and copy. ---
  out->global_step = global_step;
  out->epoch = epoch;
  out->window = window;
  out->adam_t = adam_t;
  for (int i = 0; i < 4; ++i) out->plan_rng.s[i] = rng_s[i];
  out->plan_rng.has_cached_normal = has_cached == 1;
  out->plan_rng.cached_normal = ReadAs<double>(b, 80);
  out->accum = accum;
  const unsigned char* payload = b + kHeaderBytes + table_bytes;
  for (auto* group : {&out->params, &out->adam_m, &out->adam_v}) {
    group->clear();
    group->reserve(static_cast<size_t>(count));
    for (int32_t k = 0; k < count; ++k) {
      const int32_t rows = ReadAs<int32_t>(b, kHeaderBytes + 8LL * k);
      const int32_t cols = ReadAs<int32_t>(b, kHeaderBytes + 8LL * k + 4);
      Matrix m = Matrix::Uninitialized(rows, cols);
      std::memcpy(m.data(), payload, sizeof(double) * m.size());
      payload += sizeof(double) * m.size();
      group->push_back(std::move(m));
    }
  }
  return true;
}

}  // namespace dist
}  // namespace gradgcl
