#include "augment/augment.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace gradgcl {

std::vector<AugmentKind> AllAugmentKinds() {
  return {AugmentKind::kNodeDrop, AugmentKind::kEdgePerturb,
          AugmentKind::kAttrMask, AugmentKind::kSubgraph};
}

std::string AugmentKindName(AugmentKind kind) {
  switch (kind) {
    case AugmentKind::kIdentity:
      return "Identity";
    case AugmentKind::kNodeDrop:
      return "NodeDrop";
    case AugmentKind::kEdgePerturb:
      return "EdgePerturb";
    case AugmentKind::kAttrMask:
      return "AttrMask";
    case AugmentKind::kSubgraph:
      return "Subgraph";
  }
  GRADGCL_CHECK_MSG(false, "unknown AugmentKind");
  return "";
}

Graph Augment(const Graph& g, AugmentKind kind, double strength, Rng& rng) {
  GRADGCL_CHECK(strength >= 0.0 && strength < 1.0);
  switch (kind) {
    case AugmentKind::kIdentity:
      return g;
    case AugmentKind::kNodeDrop:
      return NodeDrop(g, strength, rng);
    case AugmentKind::kEdgePerturb:
      return EdgePerturb(g, strength, rng);
    case AugmentKind::kAttrMask:
      return AttrMask(g, strength, rng);
    case AugmentKind::kSubgraph:
      return SubgraphSample(g, strength, rng);
  }
  GRADGCL_CHECK_MSG(false, "unknown AugmentKind");
  return g;
}

Graph NodeDrop(const Graph& g, double strength, Rng& rng) {
  GRADGCL_CHECK(g.num_nodes > 0);
  std::vector<int> keep;
  keep.reserve(g.num_nodes);
  for (int i = 0; i < g.num_nodes; ++i) {
    if (!rng.Bernoulli(strength)) keep.push_back(i);
  }
  if (keep.empty()) keep.push_back(rng.UniformInt(g.num_nodes));
  return InducedSubgraph(g, keep);
}

Graph EdgePerturb(const Graph& g, double strength, Rng& rng) {
  Graph out = g;
  out.edges.clear();
  std::set<std::pair<int, int>> present;
  int removed = 0;
  for (auto [u, v] : g.edges) {
    if (rng.Bernoulli(strength)) {
      ++removed;
      continue;
    }
    if (u > v) std::swap(u, v);
    if (present.insert({u, v}).second) out.edges.emplace_back(u, v);
  }
  // Add the same expected number of fresh random edges.
  if (g.num_nodes >= 2) {
    for (int k = 0; k < removed; ++k) {
      int u = rng.UniformInt(g.num_nodes);
      int v = rng.UniformInt(g.num_nodes);
      if (u == v) continue;
      if (u > v) std::swap(u, v);
      if (present.insert({u, v}).second) out.edges.emplace_back(u, v);
    }
  }
  return out;
}

Graph EdgeDrop(const Graph& g, double strength, Rng& rng) {
  Graph out = g;
  out.edges.clear();
  for (const auto& e : g.edges) {
    if (!rng.Bernoulli(strength)) out.edges.push_back(e);
  }
  return out;
}

Graph AttrMask(const Graph& g, double strength, Rng& rng) {
  Graph out = g;
  for (int j = 0; j < out.features.cols(); ++j) {
    if (rng.Bernoulli(strength)) {
      for (int i = 0; i < out.features.rows(); ++i) out.features(i, j) = 0.0;
    }
  }
  return out;
}

Graph SubgraphSample(const Graph& g, double strength, Rng& rng) {
  GRADGCL_CHECK(g.num_nodes > 0);
  const int target =
      std::max(1, static_cast<int>(g.num_nodes * (1.0 - strength)));
  CsrAdjacency csr = BuildCsr(g);
  std::vector<bool> in_set(g.num_nodes, false);
  std::vector<int> keep;
  int current = rng.UniformInt(g.num_nodes);
  in_set[current] = true;
  keep.push_back(current);
  // Random walk with restart-on-dead-end until the target size.
  int guard = 0;
  const int max_steps = 50 * g.num_nodes;
  while (static_cast<int>(keep.size()) < target && guard++ < max_steps) {
    const int deg = csr.offsets[current + 1] - csr.offsets[current];
    if (deg == 0) {
      current = rng.UniformInt(g.num_nodes);
    } else {
      current = csr.neighbors[csr.offsets[current] + rng.UniformInt(deg)];
    }
    if (!in_set[current]) {
      in_set[current] = true;
      keep.push_back(current);
    }
  }
  std::sort(keep.begin(), keep.end());
  return InducedSubgraph(g, keep);
}

Graph AdaptiveEdgeDrop(const Graph& g, double strength, Rng& rng) {
  if (g.edges.empty()) return g;
  std::vector<int> deg = Degrees(g);
  // Edge importance = log(1 + min endpoint degree); drop probability is
  // inversely proportional, normalised so the mean equals `strength`.
  std::vector<double> weight(g.edges.size());
  double total = 0.0;
  for (size_t e = 0; e < g.edges.size(); ++e) {
    const auto& [u, v] = g.edges[e];
    weight[e] = 1.0 / std::max(1.0, std::log1p(std::min(deg[u], deg[v])) + 1.0);
    total += weight[e];
  }
  const double scale = strength * g.edges.size() / total;
  Graph out = g;
  out.edges.clear();
  for (size_t e = 0; e < g.edges.size(); ++e) {
    const double p = std::min(0.95, weight[e] * scale);
    if (!rng.Bernoulli(p)) out.edges.push_back(g.edges[e]);
  }
  return out;
}

}  // namespace gradgcl
