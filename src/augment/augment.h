// Graph data augmentations — the perturbation family Pert(·) from the
// paper's Sec. II-C used by GraphCL / JOAO (graph level) and GRACE /
// GCA / BGRL / COSTA / SGCL (node level):
//   node dropping, edge perturbation, attribute masking, random-walk
//   subgraph sampling, and GCA's degree-adaptive edge dropping.
// SimGRACE's encoder perturbation lives in nn/module.h (PerturbState),
// since it acts on weights rather than data.

#ifndef GRADGCL_AUGMENT_AUGMENT_H_
#define GRADGCL_AUGMENT_AUGMENT_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "graph/graph.h"

namespace gradgcl {

// Augmentation family, matching GraphCL's menu.
enum class AugmentKind {
  kIdentity,
  kNodeDrop,
  kEdgePerturb,
  kAttrMask,
  kSubgraph,
};

// All non-identity kinds, in GraphCL's order (used by JOAO's sampler
// and the Fig. 12(a) ablation).
std::vector<AugmentKind> AllAugmentKinds();

// Human-readable name ("NodeDrop", ...).
std::string AugmentKindName(AugmentKind kind);

// Applies one augmentation with the given strength (the fraction of
// nodes / edges / attributes affected, in [0, 1)). The result is a
// valid standalone graph; label and feature width carry over.
Graph Augment(const Graph& g, AugmentKind kind, double strength, Rng& rng);

// Drops each node independently with probability `strength` (at least
// one node always survives); edges incident to dropped nodes vanish.
Graph NodeDrop(const Graph& g, double strength, Rng& rng);

// Removes each edge with probability `strength` and adds the same
// expected number of random new edges.
Graph EdgePerturb(const Graph& g, double strength, Rng& rng);

// Removes each edge with probability `strength` (no additions) — the
// edge-removal view used by GRACE / BGRL / SGCL.
Graph EdgeDrop(const Graph& g, double strength, Rng& rng);

// Zeroes each feature column independently with probability `strength`
// (column-wise masking, as in GRACE).
Graph AttrMask(const Graph& g, double strength, Rng& rng);

// Random-walk induced subgraph keeping ~(1 - strength) of the nodes.
Graph SubgraphSample(const Graph& g, double strength, Rng& rng);

// GCA-style adaptive edge dropping: edges incident to low-degree nodes
// are dropped with higher probability (centrality-aware), average drop
// rate `strength`.
Graph AdaptiveEdgeDrop(const Graph& g, double strength, Rng& rng);

}  // namespace gradgcl

#endif  // GRADGCL_AUGMENT_AUGMENT_H_
