#include "eval/probes.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "autograd/ops.h"
#include "tensor/ops.h"
#include "train/optimizer.h"

namespace gradgcl {

namespace {

// Multiclass hinge loss (Crammer–Singer): mean_i max(0, 1 + max_{c≠y}
// z_c − z_y), built from autograd primitives with a one-hot trick.
Variable MulticlassHinge(const Variable& logits,
                         const std::vector<int>& labels) {
  const int n = logits.rows();
  const int c = logits.cols();
  // One-hot matrix of labels (constant).
  Matrix onehot(n, c, 0.0);
  for (int i = 0; i < n; ++i) onehot(i, labels[i]) = 1.0;
  // z_y per row.
  Variable zy = ag::SumRows(ag::Hadamard(logits, Variable(onehot)));  // n x 1
  // Margins: 1 + z_c − z_y for c != y, 0 on the label column.
  // Build (logits − zy·1ᵀ + 1) then zero the label column via mask.
  Matrix neg_onehot(n, c, 1.0);
  neg_onehot -= onehot;
  Variable spread = ag::Sub(logits, ag::MatMul(zy, Variable(Matrix(1, c, 1.0))));
  Variable margins =
      ag::Hadamard(ag::ScalarAdd(spread, 1.0), Variable(neg_onehot));
  // Hinge and average of per-sample max (approximated by the sum of
  // positive margins, the standard Weston–Watkins variant).
  return ag::Mean(ag::SumRows(ag::Relu(margins)));
}

}  // namespace

LinearProbe::LinearProbe(Matrix weight, Matrix bias)
    : weight_(std::move(weight)), bias_(std::move(bias)) {}

LinearProbe LinearProbe::Fit(const Matrix& features,
                             const std::vector<int>& labels, int num_classes,
                             const ProbeOptions& options) {
  GRADGCL_CHECK(features.rows() == static_cast<int>(labels.size()));
  GRADGCL_CHECK(features.rows() > 0 && num_classes >= 2);
  for (int y : labels) GRADGCL_CHECK(y >= 0 && y < num_classes);

  Rng rng(options.seed);
  Variable weight(Matrix::GlorotUniform(features.cols(), num_classes, rng),
                  /*requires_grad=*/true);
  Variable bias(Matrix::Zeros(1, num_classes), /*requires_grad=*/true);
  Adam optimizer({weight, bias}, options.lr, 0.9, 0.999, 1e-8,
                 options.weight_decay);
  const Variable x(features);

  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    optimizer.ZeroGrad();
    Variable logits = ag::AddRowBroadcast(ag::MatMul(x, weight), bias);
    Variable loss = options.kind == ProbeKind::kLogistic
                        ? ag::SoftmaxCrossEntropy(logits, labels)
                        : MulticlassHinge(logits, labels);
    Backward(loss);
    optimizer.Step();
  }
  return LinearProbe(weight.value(), bias.value());
}

Matrix LinearProbe::Scores(const Matrix& features) const {
  GRADGCL_CHECK(features.cols() == weight_.rows());
  return AddRowBroadcast(MatMul(features, weight_), bias_);
}

std::vector<int> LinearProbe::Predict(const Matrix& features) const {
  const Matrix scores = Scores(features);
  std::vector<int> predictions(scores.rows());
  for (int i = 0; i < scores.rows(); ++i) {
    int argmax = 0;
    for (int j = 1; j < scores.cols(); ++j) {
      if (scores(i, j) > scores(i, argmax)) argmax = j;
    }
    predictions[i] = argmax;
  }
  return predictions;
}

double Accuracy(const std::vector<int>& predictions,
                const std::vector<int>& labels) {
  GRADGCL_CHECK(predictions.size() == labels.size() && !labels.empty());
  int correct = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (predictions[i] == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / labels.size();
}

Matrix ConfusionMatrix(const std::vector<int>& predictions,
                       const std::vector<int>& labels, int num_classes) {
  GRADGCL_CHECK(predictions.size() == labels.size());
  GRADGCL_CHECK(num_classes >= 2);
  Matrix confusion(num_classes, num_classes, 0.0);
  for (size_t i = 0; i < labels.size(); ++i) {
    GRADGCL_CHECK(labels[i] >= 0 && labels[i] < num_classes);
    GRADGCL_CHECK(predictions[i] >= 0 && predictions[i] < num_classes);
    confusion(labels[i], predictions[i]) += 1.0;
  }
  return confusion;
}

double MacroF1(const std::vector<int>& predictions,
               const std::vector<int>& labels, int num_classes) {
  const Matrix confusion = ConfusionMatrix(predictions, labels, num_classes);
  double total_f1 = 0.0;
  int counted = 0;
  for (int c = 0; c < num_classes; ++c) {
    const double tp = confusion(c, c);
    double fp = 0.0, fn = 0.0;
    for (int o = 0; o < num_classes; ++o) {
      if (o == c) continue;
      fp += confusion(o, c);
      fn += confusion(c, o);
    }
    if (tp + fp + fn == 0.0) continue;  // class absent everywhere
    total_f1 += 2.0 * tp / (2.0 * tp + fp + fn);
    ++counted;
  }
  return counted > 0 ? total_f1 / counted : 0.0;
}

double RocAuc(const std::vector<double>& scores,
              const std::vector<int>& labels) {
  GRADGCL_CHECK(scores.size() == labels.size() && !labels.empty());
  int num_pos = 0;
  for (int y : labels) {
    GRADGCL_CHECK_MSG(y == 0 || y == 1, "RocAuc needs binary labels");
    num_pos += y;
  }
  const int num_neg = static_cast<int>(labels.size()) - num_pos;
  if (num_pos == 0 || num_neg == 0) return 0.5;

  // Midrank-based AUC: (sum of positive ranks − n_pos(n_pos+1)/2) /
  // (n_pos · n_neg).
  std::vector<int> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return scores[a] < scores[b]; });
  std::vector<double> ranks(scores.size());
  size_t i = 0;
  while (i < order.size()) {
    size_t j = i;
    while (j + 1 < order.size() &&
           scores[order[j + 1]] == scores[order[i]]) {
      ++j;
    }
    const double midrank = (static_cast<double>(i) + j) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = midrank;
    i = j + 1;
  }
  double pos_rank_sum = 0.0;
  for (size_t k = 0; k < labels.size(); ++k) {
    if (labels[k] == 1) pos_rank_sum += ranks[k];
  }
  return (pos_rank_sum - num_pos * (num_pos + 1.0) / 2.0) /
         (static_cast<double>(num_pos) * num_neg);
}

}  // namespace gradgcl
