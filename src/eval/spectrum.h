// Spectrum diagnostics of a representation matrix — the analysis
// behind the paper's Figs. 1 and 5 (sorted log singular values of the
// representation covariance, collapse indicators).

#ifndef GRADGCL_EVAL_SPECTRUM_H_
#define GRADGCL_EVAL_SPECTRUM_H_

#include <string>
#include <vector>

#include "tensor/matrix.h"

namespace gradgcl {

// Full spectrum report of one representation matrix.
struct SpectrumReport {
  // Sorted (descending) singular values of the covariance (Eq. 5).
  std::vector<double> singular_values;
  // log10 of the values, floored at `floor_log10` for collapsed dims.
  std::vector<double> log10_values;
  // Number of dimensions with σ >= 1e-6 · σ_max ("surviving" dims).
  int surviving_dims = 0;
  // Entropy-based effective rank of the spectrum.
  double effective_rank = 0.0;
};

// Computes the report; `floor_log10` clamps log10 of zero values.
SpectrumReport AnalyzeSpectrum(const Matrix& representations,
                               double floor_log10 = -12.0);

// Renders the log spectrum as a TSV line "v0<TAB>v1<TAB>..." for the
// figure benches.
std::string SpectrumTsv(const SpectrumReport& report);

}  // namespace gradgcl

#endif  // GRADGCL_EVAL_SPECTRUM_H_
