// Instance-wise similarity analysis — the quantities behind the
// paper's Figs. 3 and 6: pairwise cosine-similarity heatmaps of
// representations vs gradient features, their intra/inter-class block
// structure, and a diversity measure showing how gradient contrast
// spreads similarity mass.

#ifndef GRADGCL_EVAL_SIMILARITY_H_
#define GRADGCL_EVAL_SIMILARITY_H_

#include <string>
#include <vector>

#include "tensor/matrix.h"

namespace gradgcl {

// Block-structure summary of a class-sorted similarity matrix.
struct SimilarityReport {
  // Mean cosine similarity among same-class pairs (off-diagonal).
  double intra_class_mean = 0.0;
  // Mean cosine similarity among different-class pairs.
  double inter_class_mean = 0.0;
  // intra − inter: large gap = hard block structure (Fig. 3a),
  // small gap with high variance = diverse similarities (Fig. 3b).
  double block_contrast = 0.0;
  // Standard deviation of all off-diagonal similarities (diversity).
  double similarity_stddev = 0.0;
  // Shannon entropy of the off-diagonal similarity histogram (16 bins
  // over [-1, 1]); higher = more diverse similarity structure.
  double similarity_entropy = 0.0;
};

// Analyses the pairwise cosine similarities of `embeddings` rows with
// the given class labels.
SimilarityReport AnalyzeSimilarity(const Matrix& embeddings,
                                   const std::vector<int>& labels);

// One retrieved neighbor: corpus row index plus its score.
struct Neighbor {
  int64_t index = -1;
  double score = 0.0;
};

// Deterministic top-k selection over a score array: returns the k
// highest-scoring entries ordered by score descending, with ties
// broken by ascending index. The (score, index) comparator is a total
// order, so the selected set and its order are unique regardless of
// scan or insertion order — bit-identical across thread counts and
// platforms. k > n returns all n entries. O(n log k), no allocation
// beyond the k-entry result.
std::vector<Neighbor> TopKNeighbors(const double* scores, int64_t n, int k);

// Index-only variant of TopKNeighbors (same ordering contract).
std::vector<int64_t> TopKIndices(const double* scores, int64_t n, int k);

// Coarse ASCII heatmap of the class-sorted similarity matrix, with
// `cells` x `cells` blocks averaged and rendered as shade characters.
// Used by the figure benches to make the block structure visible in
// terminal output.
std::string AsciiSimilarityHeatmap(const Matrix& embeddings,
                                   const std::vector<int>& labels,
                                   int cells = 24);

}  // namespace gradgcl

#endif  // GRADGCL_EVAL_SIMILARITY_H_
