#include "eval/tsne.h"

#include <algorithm>
#include <cmath>

#include "tensor/ops.h"

namespace gradgcl {

namespace {

// Row-conditional affinities p_{j|i} at the sigma solving for the
// requested perplexity (binary search on log-scale beta = 1/(2σ²)).
Matrix ConditionalAffinities(const Matrix& d2, double perplexity) {
  const int n = d2.rows();
  Matrix p(n, n, 0.0);
  const double target_entropy = std::log(perplexity);
  for (int i = 0; i < n; ++i) {
    double beta_lo = 0.0, beta_hi = 1e12, beta = 1.0;
    for (int iter = 0; iter < 64; ++iter) {
      // Entropy of the affinity row at the current beta.
      double sum = 0.0;
      double weighted = 0.0;
      for (int j = 0; j < n; ++j) {
        if (j == i) continue;
        const double w = std::exp(-beta * d2(i, j));
        sum += w;
        weighted += w * d2(i, j);
      }
      if (sum <= 0.0) {
        beta_hi = beta;
        beta = (beta_lo + beta_hi) / 2.0;
        continue;
      }
      const double entropy = std::log(sum) + beta * weighted / sum;
      if (std::abs(entropy - target_entropy) < 1e-5) break;
      if (entropy > target_entropy) {
        beta_lo = beta;
        beta = beta_hi > 1e11 ? beta * 2.0 : (beta_lo + beta_hi) / 2.0;
      } else {
        beta_hi = beta;
        beta = (beta_lo + beta_hi) / 2.0;
      }
    }
    double sum = 0.0;
    for (int j = 0; j < n; ++j) {
      if (j == i) continue;
      p(i, j) = std::exp(-beta * d2(i, j));
      sum += p(i, j);
    }
    if (sum > 0.0) {
      for (int j = 0; j < n; ++j) p(i, j) /= sum;
    }
  }
  return p;
}

}  // namespace

Matrix Tsne(const Matrix& x, const TsneOptions& options) {
  const int n = x.rows();
  GRADGCL_CHECK(n >= 4);
  GRADGCL_CHECK(options.perplexity > 1.0 &&
                options.perplexity < static_cast<double>(n));

  // Symmetrised input affinities P.
  const Matrix d2 = SquaredDistanceMatrix(x, x);
  Matrix p = ConditionalAffinities(d2, options.perplexity);
  Matrix p_sym(n, n, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      p_sym(i, j) = std::max((p(i, j) + p(j, i)) / (2.0 * n), 1e-12);
    }
  }

  Rng rng(options.seed);
  Matrix y = Matrix::RandomNormal(n, options.output_dim, rng, 0.0, 1e-2);
  Matrix velocity(n, options.output_dim, 0.0);

  for (int iter = 0; iter < options.iterations; ++iter) {
    const double exaggeration =
        iter < options.exaggeration_iters ? options.exaggeration : 1.0;

    // Student-t low-dimensional affinities Q (unnormalised weights W).
    const Matrix yd2 = SquaredDistanceMatrix(y, y);
    Matrix w(n, n, 0.0);
    double w_sum = 0.0;
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (i == j) continue;
        w(i, j) = 1.0 / (1.0 + yd2(i, j));
        w_sum += w(i, j);
      }
    }

    // Gradient: 4 Σ_j (e·P_ij − Q_ij) w_ij (y_i − y_j).
    Matrix grad(n, options.output_dim, 0.0);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (i == j) continue;
        const double q = w(i, j) / w_sum;
        const double coeff =
            4.0 * (exaggeration * p_sym(i, j) - q) * w(i, j);
        for (int d = 0; d < options.output_dim; ++d) {
          grad(i, d) += coeff * (y(i, d) - y(j, d));
        }
      }
    }

    for (int i = 0; i < n; ++i) {
      for (int d = 0; d < options.output_dim; ++d) {
        velocity(i, d) = options.momentum * velocity(i, d) -
                         options.learning_rate * grad(i, d);
        y(i, d) += velocity(i, d);
      }
    }
  }
  return y;
}

double SilhouetteScore(const Matrix& points, const std::vector<int>& labels) {
  const int n = points.rows();
  GRADGCL_CHECK(static_cast<int>(labels.size()) == n && n >= 2);
  const Matrix d2 = SquaredDistanceMatrix(points, points);
  const int num_classes =
      1 + *std::max_element(labels.begin(), labels.end());

  double total = 0.0;
  int counted = 0;
  for (int i = 0; i < n; ++i) {
    std::vector<double> class_sum(num_classes, 0.0);
    std::vector<int> class_count(num_classes, 0);
    for (int j = 0; j < n; ++j) {
      if (j == i) continue;
      class_sum[labels[j]] += std::sqrt(d2(i, j));
      ++class_count[labels[j]];
    }
    if (class_count[labels[i]] == 0) continue;  // singleton cluster
    const double a = class_sum[labels[i]] / class_count[labels[i]];
    double b = 1e300;
    for (int c = 0; c < num_classes; ++c) {
      if (c == labels[i] || class_count[c] == 0) continue;
      b = std::min(b, class_sum[c] / class_count[c]);
    }
    if (b >= 1e300) continue;  // only one populated class
    total += (b - a) / std::max(a, b);
    ++counted;
  }
  return counted > 0 ? total / counted : 0.0;
}

}  // namespace gradgcl
