// k-fold cross-validated probe evaluation — the paper's protocol for
// unsupervised graph classification (10-fold SVM on frozen embeddings,
// mean accuracy ± std over multiple evaluation seeds).

#ifndef GRADGCL_EVAL_CROSS_VALIDATION_H_
#define GRADGCL_EVAL_CROSS_VALIDATION_H_

#include <vector>

#include "eval/probes.h"

namespace gradgcl {

// Mean ± standard deviation of a set of scores.
struct ScoreSummary {
  double mean = 0.0;
  double stddev = 0.0;
  int count = 0;
};

ScoreSummary Summarize(const std::vector<double>& scores);

// Shuffled k-fold index split of n items.
std::vector<std::vector<int>> KFoldSplits(int n, int folds, Rng& rng);

// k-fold cross-validated probe accuracy on frozen embeddings.
// Each fold trains a probe on the other folds and scores this one;
// returns the summary over folds.
ScoreSummary CrossValidateAccuracy(const Matrix& embeddings,
                                   const std::vector<int>& labels,
                                   int num_classes, int folds,
                                   const ProbeOptions& options, uint64_t seed);

}  // namespace gradgcl

#endif  // GRADGCL_EVAL_CROSS_VALIDATION_H_
