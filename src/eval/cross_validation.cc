#include "eval/cross_validation.h"

#include <cmath>

#include "common/parallel.h"

namespace gradgcl {

ScoreSummary Summarize(const std::vector<double>& scores) {
  ScoreSummary summary;
  summary.count = static_cast<int>(scores.size());
  if (scores.empty()) return summary;
  double sum = 0.0;
  for (double s : scores) sum += s;
  summary.mean = sum / scores.size();
  double var = 0.0;
  for (double s : scores) {
    const double d = s - summary.mean;
    var += d * d;
  }
  summary.stddev = scores.size() > 1
                       ? std::sqrt(var / (scores.size() - 1))
                       : 0.0;
  return summary;
}

std::vector<std::vector<int>> KFoldSplits(int n, int folds, Rng& rng) {
  GRADGCL_CHECK(folds >= 2 && n >= folds);
  std::vector<int> perm = rng.Permutation(n);
  std::vector<std::vector<int>> splits(folds);
  for (int i = 0; i < n; ++i) splits[i % folds].push_back(perm[i]);
  return splits;
}

ScoreSummary CrossValidateAccuracy(const Matrix& embeddings,
                                   const std::vector<int>& labels,
                                   int num_classes, int folds,
                                   const ProbeOptions& options,
                                   uint64_t seed) {
  GRADGCL_CHECK(embeddings.rows() == static_cast<int>(labels.size()));
  Rng rng(seed);
  const std::vector<std::vector<int>> splits =
      KFoldSplits(embeddings.rows(), folds, rng);

  // Folds are independent (frozen embeddings, per-fold probe with its
  // own seed), so they parallelize; each fold writes only its slot and
  // computes exactly what the serial loop did, keeping the summary
  // bit-identical for every thread count.
  std::vector<double> fold_accuracies(folds, 0.0);
  ParallelFor(0, folds, 1, [&](int64_t f0, int64_t f1) {
    for (int64_t fold = f0; fold < f1; ++fold) {
      std::vector<int> train_idx;
      for (int other = 0; other < folds; ++other) {
        if (other == fold) continue;
        train_idx.insert(train_idx.end(), splits[other].begin(),
                         splits[other].end());
      }
      const std::vector<int>& test_idx = splits[fold];

      Matrix train_x = embeddings.Gather(train_idx);
      std::vector<int> train_y;
      train_y.reserve(train_idx.size());
      for (int i : train_idx) train_y.push_back(labels[i]);

      LinearProbe probe =
          LinearProbe::Fit(train_x, train_y, num_classes, options);

      Matrix test_x = embeddings.Gather(test_idx);
      std::vector<int> test_y;
      test_y.reserve(test_idx.size());
      for (int i : test_idx) test_y.push_back(labels[i]);

      fold_accuracies[fold] = Accuracy(probe.Predict(test_x), test_y);
    }
  });
  return Summarize(fold_accuracies);
}

}  // namespace gradgcl
