// Exact (O(n²)) t-SNE — the visualisation behind the paper's Fig. 2.
// At the few-hundred-point scale of this library's experiments the
// Barnes–Hut approximation is unnecessary. The figure bench emits the
// 2-D coordinates plus a silhouette score so "gradients are more
// diverse yet still class-informative" becomes a measured claim.

#ifndef GRADGCL_EVAL_TSNE_H_
#define GRADGCL_EVAL_TSNE_H_

#include <vector>

#include "common/rng.h"
#include "tensor/matrix.h"

namespace gradgcl {

// t-SNE hyperparameters.
struct TsneOptions {
  int output_dim = 2;
  double perplexity = 20.0;
  int iterations = 300;
  double learning_rate = 100.0;
  double momentum = 0.8;
  // Early exaggeration factor and duration (iterations).
  double exaggeration = 4.0;
  int exaggeration_iters = 50;
  uint64_t seed = 11;
};

// Embeds the rows of `x` into options.output_dim dimensions.
Matrix Tsne(const Matrix& x, const TsneOptions& options);

// Mean silhouette coefficient of `points` under `labels` (Euclidean).
// 1 = perfectly separated clusters, 0 = overlapping, < 0 = mixed.
double SilhouetteScore(const Matrix& points, const std::vector<int>& labels);

}  // namespace gradgcl

#endif  // GRADGCL_EVAL_TSNE_H_
