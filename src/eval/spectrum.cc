#include "eval/spectrum.h"

#include <cmath>
#include <cstdio>

#include "tensor/linalg.h"

namespace gradgcl {

SpectrumReport AnalyzeSpectrum(const Matrix& representations,
                               double floor_log10) {
  SpectrumReport report;
  report.singular_values = CovarianceSpectrum(representations);
  report.log10_values.reserve(report.singular_values.size());
  const double floor_value = std::pow(10.0, floor_log10);
  for (double v : report.singular_values) {
    report.log10_values.push_back(std::log10(std::max(v, floor_value)));
  }
  report.surviving_dims = RankAtThreshold(report.singular_values, 1e-6);
  report.effective_rank = EffectiveRank(report.singular_values);
  return report;
}

std::string SpectrumTsv(const SpectrumReport& report) {
  std::string out;
  char buf[32];
  for (size_t i = 0; i < report.log10_values.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%s%.4f", i == 0 ? "" : "\t",
                  report.log10_values[i]);
    out += buf;
  }
  return out;
}

}  // namespace gradgcl
