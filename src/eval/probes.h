// Downstream probes applied to frozen embeddings, mirroring the
// paper's evaluation protocol: a linear SVM for unsupervised graph
// classification (smaller TU datasets), an SGD linear classifier for
// the larger ones, a logistic-regression probe for node classification
// and transfer-learning fine-tuning, plus accuracy and ROC-AUC.

#ifndef GRADGCL_EVAL_PROBES_H_
#define GRADGCL_EVAL_PROBES_H_

#include <vector>

#include "tensor/matrix.h"

namespace gradgcl {

// Probe flavour.
enum class ProbeKind {
  kLogistic,   // multinomial logistic regression (softmax CE)
  kLinearSvm,  // multiclass hinge (Crammer–Singer style), L2-regularised
};

// Probe training hyperparameters.
struct ProbeOptions {
  ProbeKind kind = ProbeKind::kLinearSvm;
  int epochs = 120;
  double lr = 0.1;
  double weight_decay = 1e-4;
  uint64_t seed = 3;
};

// A trained linear probe: scores = features * weight + bias.
class LinearProbe {
 public:
  // Trains on (features[i], labels[i]); labels in [0, num_classes).
  static LinearProbe Fit(const Matrix& features,
                         const std::vector<int>& labels, int num_classes,
                         const ProbeOptions& options);

  // Class scores, one row per input row.
  Matrix Scores(const Matrix& features) const;

  // Argmax predictions.
  std::vector<int> Predict(const Matrix& features) const;

  int num_classes() const { return weight_.cols(); }

 private:
  LinearProbe(Matrix weight, Matrix bias);
  Matrix weight_;  // dim x classes
  Matrix bias_;    // 1 x classes
};

// Fraction of positions where predictions equal labels.
double Accuracy(const std::vector<int>& predictions,
                const std::vector<int>& labels);

// Area under the ROC curve for binary labels (0/1) given real-valued
// scores; ties are handled by midrank. Returns 0.5 for degenerate
// single-class inputs.
double RocAuc(const std::vector<double>& scores,
              const std::vector<int>& labels);

// num_classes x num_classes confusion matrix: entry (t, p) counts
// samples of true class t predicted as class p.
Matrix ConfusionMatrix(const std::vector<int>& predictions,
                       const std::vector<int>& labels, int num_classes);

// Macro-averaged F1 over classes (classes absent from both predictions
// and labels contribute F1 = 0 and are skipped from the average).
double MacroF1(const std::vector<int>& predictions,
               const std::vector<int>& labels, int num_classes);

}  // namespace gradgcl

#endif  // GRADGCL_EVAL_PROBES_H_
