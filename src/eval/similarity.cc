#include "eval/similarity.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "tensor/ops.h"

namespace gradgcl {

namespace {

// Indices sorted by class label (stable within a class).
std::vector<int> ClassSortedOrder(const std::vector<int>& labels) {
  std::vector<int> order(labels.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](int a, int b) { return labels[a] < labels[b]; });
  return order;
}

// Total-order rank: higher score first, ascending index on ties.
inline bool BetterNeighbor(const Neighbor& a, const Neighbor& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.index < b.index;
}

}  // namespace

std::vector<Neighbor> TopKNeighbors(const double* scores, int64_t n, int k) {
  GRADGCL_CHECK(n >= 0 && k >= 0);
  if (k > n) k = static_cast<int>(n);
  std::vector<Neighbor> heap;
  if (k == 0) return heap;
  heap.reserve(k);
  // Max-heap under BetterNeighbor-as-less-than: the root is the worst
  // kept entry, so each candidate is one comparison against the root.
  for (int64_t i = 0; i < n; ++i) {
    const Neighbor cand{i, scores[i]};
    if (static_cast<int>(heap.size()) < k) {
      heap.push_back(cand);
      std::push_heap(heap.begin(), heap.end(), BetterNeighbor);
    } else if (BetterNeighbor(cand, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), BetterNeighbor);
      heap.back() = cand;
      std::push_heap(heap.begin(), heap.end(), BetterNeighbor);
    }
  }
  std::sort_heap(heap.begin(), heap.end(), BetterNeighbor);
  return heap;
}

std::vector<int64_t> TopKIndices(const double* scores, int64_t n, int k) {
  const std::vector<Neighbor> neighbors = TopKNeighbors(scores, n, k);
  std::vector<int64_t> indices(neighbors.size());
  for (size_t i = 0; i < neighbors.size(); ++i) indices[i] = neighbors[i].index;
  return indices;
}

SimilarityReport AnalyzeSimilarity(const Matrix& embeddings,
                                   const std::vector<int>& labels) {
  const int n = embeddings.rows();
  GRADGCL_CHECK(static_cast<int>(labels.size()) == n && n >= 2);
  const Matrix sim = CosineSimilarityMatrix(embeddings, embeddings);

  SimilarityReport report;
  double intra_sum = 0.0, inter_sum = 0.0, all_sum = 0.0, all_sq = 0.0;
  int intra_count = 0, inter_count = 0;
  std::vector<int> histogram(16, 0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      const double s = sim(i, j);
      all_sum += s;
      all_sq += s * s;
      const int bin = std::clamp(
          static_cast<int>((s + 1.0) / 2.0 * 16.0), 0, 15);
      ++histogram[bin];
      if (labels[i] == labels[j]) {
        intra_sum += s;
        ++intra_count;
      } else {
        inter_sum += s;
        ++inter_count;
      }
    }
  }
  const int total = intra_count + inter_count;
  if (intra_count > 0) report.intra_class_mean = intra_sum / intra_count;
  if (inter_count > 0) report.inter_class_mean = inter_sum / inter_count;
  report.block_contrast = report.intra_class_mean - report.inter_class_mean;
  const double mean = all_sum / total;
  report.similarity_stddev = std::sqrt(std::max(0.0, all_sq / total - mean * mean));
  for (int count : histogram) {
    if (count == 0) continue;
    const double p = static_cast<double>(count) / total;
    report.similarity_entropy -= p * std::log(p);
  }
  return report;
}

std::string AsciiSimilarityHeatmap(const Matrix& embeddings,
                                   const std::vector<int>& labels,
                                   int cells) {
  const int n = embeddings.rows();
  GRADGCL_CHECK(static_cast<int>(labels.size()) == n && n >= 2 && cells >= 2);
  cells = std::min(cells, n);
  const std::vector<int> order = ClassSortedOrder(labels);
  const Matrix sorted = embeddings.Gather(order);
  const Matrix sim = CosineSimilarityMatrix(sorted, sorted);

  // Block-average into cells x cells, then map [-1, 1] to shades.
  static const char* kShades = " .:-=+*#%@";
  std::string out;
  for (int bi = 0; bi < cells; ++bi) {
    const int r0 = bi * n / cells;
    const int r1 = (bi + 1) * n / cells;
    for (int bj = 0; bj < cells; ++bj) {
      const int c0 = bj * n / cells;
      const int c1 = (bj + 1) * n / cells;
      double sum = 0.0;
      int count = 0;
      for (int r = r0; r < r1; ++r) {
        for (int c = c0; c < c1; ++c) {
          sum += sim(r, c);
          ++count;
        }
      }
      const double avg = count > 0 ? sum / count : 0.0;
      const int shade = std::clamp(
          static_cast<int>((avg + 1.0) / 2.0 * 10.0), 0, 9);
      out += kShades[shade];
    }
    out += '\n';
  }
  return out;
}

}  // namespace gradgcl
