// Dense row-major matrix of doubles — the numeric substrate for the
// whole library (autograd, GNN layers, evaluation, linear algebra).
//
// Design notes:
//  * A Matrix with one of its dimensions equal to 1 doubles as a row or
//    column vector; there is no separate Vector type.
//  * Storage is a contiguous owned buffer; element (i, j) lives at
//    data()[i * cols() + j]. Buffers allocated while a TapeScope is
//    active (tensor/pool.h) are recycled through the process-wide
//    MatrixPool instead of hitting the heap; they return to the pool
//    when the Matrix is destroyed.
//  * Uninitialized(rows, cols) skips the zero fill for buffers that are
//    fully overwritten anyway (transpose, gather, matmul outputs) —
//    the default (rows, cols, fill) constructor still fills.
//  * Shapes are validated with GRADGCL_CHECK; mismatches abort rather
//    than throw (see common/check.h).

#ifndef GRADGCL_TENSOR_MATRIX_H_
#define GRADGCL_TENSOR_MATRIX_H_

#include <initializer_list>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace gradgcl {

// Dense row-major matrix of doubles.
class Matrix {
 public:
  // Creates an empty 0x0 matrix.
  Matrix() = default;

  // Creates a rows x cols matrix with every element set to `fill`.
  Matrix(int rows, int cols, double fill = 0.0);

  // Creates a matrix from nested initializer lists; all rows must have
  // the same length. Example: Matrix m{{1, 2}, {3, 4}};
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  Matrix(const Matrix& other);
  Matrix& operator=(const Matrix& other);
  Matrix(Matrix&& other) noexcept;
  Matrix& operator=(Matrix&& other) noexcept;
  ~Matrix();

  // --- Factory functions -------------------------------------------------

  // A rows x cols matrix with UNINITIALIZED contents (pool-backed
  // inside a TapeScope). Only for buffers every element of which is
  // about to be overwritten.
  static Matrix Uninitialized(int rows, int cols);

  // Identity matrix of size n x n.
  static Matrix Identity(int n);

  // Matrix of zeros / ones.
  static Matrix Zeros(int rows, int cols);
  static Matrix Ones(int rows, int cols);

  // Elementwise i.i.d. N(mean, stddev^2) entries.
  static Matrix RandomNormal(int rows, int cols, Rng& rng, double mean = 0.0,
                             double stddev = 1.0);

  // Elementwise i.i.d. Uniform(lo, hi) entries.
  static Matrix RandomUniform(int rows, int cols, Rng& rng, double lo = 0.0,
                              double hi = 1.0);

  // Glorot/Xavier-uniform initialisation for an (in, out) weight matrix.
  static Matrix GlorotUniform(int rows, int cols, Rng& rng);

  // Column vector (n x 1) from values.
  static Matrix ColumnVector(const std::vector<double>& values);

  // Row vector (1 x n) from values.
  static Matrix RowVector(const std::vector<double>& values);

  // --- Shape and element access ------------------------------------------

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  // Total number of elements.
  int size() const { return rows_ * cols_; }
  bool empty() const { return size() == 0; }

  // Bounds are checked in debug builds only (GRADGCL_DCHECK): checked
  // access in release builds taxed every hot loop not using data().
  double& operator()(int i, int j) {
    GRADGCL_DCHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<size_t>(i) * cols_ + j];
  }
  double operator()(int i, int j) const {
    GRADGCL_DCHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<size_t>(i) * cols_ + j];
  }

  // Unchecked flat access for hot loops.
  double* data() { return data_; }
  const double* data() const { return data_; }
  double& at_flat(int idx) { return data_[idx]; }
  double at_flat(int idx) const { return data_[idx]; }

  // --- Structural operations ----------------------------------------------

  // Returns the transposed matrix.
  Matrix Transposed() const;

  // Returns row i as a 1 x cols matrix.
  Matrix Row(int i) const;

  // Returns column j as a rows x 1 matrix.
  Matrix Col(int j) const;

  // Copies `row` (1 x cols) into row i.
  void SetRow(int i, const Matrix& row);

  // Returns rows [begin, end) as an (end-begin) x cols matrix.
  Matrix RowSlice(int begin, int end) const;

  // Returns the rows selected by `indices`, in order.
  Matrix Gather(const std::vector<int>& indices) const;

  // Reshapes in place; rows*cols must equal size().
  void Reshape(int rows, int cols);

  // --- Elementwise and scalar operations ----------------------------------

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double s);

  // Sets every element to `value`.
  void Fill(double value);

  // Frobenius norm.
  double FrobeniusNorm() const;

  // Sum / mean / min / max over all elements.
  double Sum() const;
  double Mean() const;
  double Min() const;
  double Max() const;

  // True if all elements are finite (no NaN / inf).
  bool AllFinite() const;

  // Human-readable rendering, mainly for test failure messages.
  std::string ToString(int max_rows = 8, int max_cols = 8) const;

 private:
  // Takes ownership of an uninitialized buffer for rows x cols
  // (pooled when a TapeScope is active on this thread).
  void Allocate(int rows, int cols);
  // Returns the buffer to the pool / heap and resets to empty.
  void Free() noexcept;

  int rows_ = 0;
  int cols_ = 0;
  double* data_ = nullptr;
  size_t capacity_ = 0;  // doubles the buffer can hold (>= size())
  bool pooled_ = false;  // buffer came from (and returns to) the pool
};

// Equality within absolute tolerance `tol` (shape must match exactly).
bool AllClose(const Matrix& a, const Matrix& b, double tol = 1e-9);

}  // namespace gradgcl

#endif  // GRADGCL_TENSOR_MATRIX_H_
