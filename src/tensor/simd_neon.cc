// NEON (aarch64) kernel table. float64x2_t is baseline on aarch64, so
// this TU needs no extra -march flags and no runtime CPU check — the
// define is set by the build only on aarch64 targets.
//
// Same contract structure as the AVX2 table with vector width W = 2:
// gemm/gemm_transa keep one FMA chain per output element (vfmaq_f64 in
// the vector body, std::fma in remainders); dot/sum/sumsq/gemm_transb
// use two lane chains stepping k by 2 combined as l0 + l1, then the
// ordered scalar tail; elementwise and Adam are mul/add/sub/div/sqrt
// only and bit-identical to the scalar table.

#include "tensor/simd.h"

#if defined(GRADGCL_SIMD_NEON)

#include <arm_neon.h>

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "tensor/simd_detail.h"

namespace gradgcl {
namespace simd {
namespace {

double DotNeon(const double* x, const double* y, int64_t n) {
  float64x2_t acc = vdupq_n_f64(0.0);
  int64_t i = 0;
  for (; i + 2 <= n; i += 2) {
    acc = vfmaq_f64(acc, vld1q_f64(x + i), vld1q_f64(y + i));
  }
  double total = vgetq_lane_f64(acc, 0) + vgetq_lane_f64(acc, 1);
  for (; i < n; ++i) total = std::fma(x[i], y[i], total);
  return total;
}

double SumNeon(const double* x, int64_t n) {
  float64x2_t acc = vdupq_n_f64(0.0);
  int64_t i = 0;
  for (; i + 2 <= n; i += 2) acc = vaddq_f64(acc, vld1q_f64(x + i));
  double total = vgetq_lane_f64(acc, 0) + vgetq_lane_f64(acc, 1);
  for (; i < n; ++i) total += x[i];
  return total;
}

double SumSqNeon(const double* x, int64_t n) { return DotNeon(x, x, n); }

// Row strip of C += av * B[kk] with one FMA chain per element, kk
// ascending: the j loop is 2-wide vfmaq with a std::fma scalar tail,
// both single-rounded, so every element sees the same chain.
inline void FmaRow(double* crow, const double* brow, double av, int64_t m) {
  const float64x2_t avv = vdupq_n_f64(av);
  int64_t j = 0;
  for (; j + 2 <= m; j += 2) {
    vst1q_f64(crow + j, vfmaq_f64(vld1q_f64(crow + j), avv, vld1q_f64(brow + j)));
  }
  for (; j < m; ++j) crow[j] = std::fma(av, brow[j], crow[j]);
}

void ScaleNeon(double* x, int64_t n, double s);

void GemmNeon(const double* a, int64_t lda, const double* b, int64_t ldb,
              double* c, int64_t ldc, int64_t rows, int64_t k, int64_t m,
              const double* row_scale, double post) {
  for (int64_t i = 0; i < rows; ++i) {
    std::fill(c + i * ldc, c + i * ldc + m, 0.0);
  }
  for (int64_t kb = 0; kb < k; kb += detail::kScalarKBlock) {
    const int64_t kend = std::min(k, kb + detail::kScalarKBlock);
    for (int64_t i = 0; i < rows; ++i) {
      const double* arow = a + i * lda;
      double* crow = c + i * ldc;
      for (int64_t kk = kb; kk < kend; ++kk) {
        const double av =
            row_scale == nullptr ? arow[kk] : arow[kk] * row_scale[i];
        FmaRow(crow, b + kk * ldb, av, m);
      }
    }
  }
  if (post != 1.0) {
    for (int64_t i = 0; i < rows; ++i) ScaleNeon(c + i * ldc, m, post);
  }
}

void GemmTransANeon(const double* a, int64_t lda, const double* b, int64_t ldb,
                    double* c, int64_t ldc, int64_t i0, int64_t i1, int64_t k,
                    int64_t m) {
  for (int64_t i = i0; i < i1; ++i) {
    std::fill(c + i * ldc, c + i * ldc + m, 0.0);
  }
  for (int64_t kb = 0; kb < k; kb += detail::kScalarKBlock) {
    const int64_t kend = std::min(k, kb + detail::kScalarKBlock);
    for (int64_t i = i0; i < i1; ++i) {
      double* crow = c + i * ldc;
      for (int64_t kk = kb; kk < kend; ++kk) {
        FmaRow(crow, b + kk * ldb, a[kk * lda + i], m);
      }
    }
  }
}

void GemmTransBNeon(const double* a, const double* b, double* c, int64_t ldc,
                    int64_t rows, int64_t k, int64_t m, double scale) {
  for (int64_t jb = 0; jb < m; jb += detail::kScalarKBlock) {
    const int64_t jend = std::min(m, jb + detail::kScalarKBlock);
    for (int64_t i = 0; i < rows; ++i) {
      const double* arow = a + i * k;
      double* crow = c + i * ldc;
      for (int64_t j = jb; j < jend; ++j) {
        crow[j] = DotNeon(arow, b + j * k, k) * scale;
      }
    }
  }
}

void AddNeon(double* y, const double* x, int64_t n) {
  int64_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(y + i, vaddq_f64(vld1q_f64(y + i), vld1q_f64(x + i)));
  }
  for (; i < n; ++i) y[i] += x[i];
}

void SubNeon(double* y, const double* x, int64_t n) {
  int64_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(y + i, vsubq_f64(vld1q_f64(y + i), vld1q_f64(x + i)));
  }
  for (; i < n; ++i) y[i] -= x[i];
}

void ScaleNeon(double* x, int64_t n, double s) {
  const float64x2_t sv = vdupq_n_f64(s);
  int64_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(x + i, vmulq_f64(vld1q_f64(x + i), sv));
  }
  for (; i < n; ++i) x[i] *= s;
}

void HadamardNeon(double* out, const double* a, const double* b, int64_t n) {
  int64_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(out + i, vmulq_f64(vld1q_f64(a + i), vld1q_f64(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] * b[i];
}

// Mirrors detail::AdamScalar operation-for-operation (no FMA).
void AdamNeon(double* w, double* m, double* v, const double* g, int64_t n,
              const AdamArgs& args) {
  const float64x2_t b1 = vdupq_n_f64(args.beta1);
  const float64x2_t b2 = vdupq_n_f64(args.beta2);
  const float64x2_t omb1 = vdupq_n_f64(1.0 - args.beta1);
  const float64x2_t omb2 = vdupq_n_f64(1.0 - args.beta2);
  const float64x2_t bc1 = vdupq_n_f64(args.bc1);
  const float64x2_t bc2 = vdupq_n_f64(args.bc2);
  const float64x2_t lr = vdupq_n_f64(args.lr);
  const float64x2_t eps = vdupq_n_f64(args.eps);
  const float64x2_t wd = vdupq_n_f64(args.weight_decay);
  const bool decay = args.weight_decay > 0.0;
  int64_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t gv = vld1q_f64(g + i);
    const float64x2_t mv =
        vaddq_f64(vmulq_f64(b1, vld1q_f64(m + i)), vmulq_f64(omb1, gv));
    vst1q_f64(m + i, mv);
    const float64x2_t vv = vaddq_f64(vmulq_f64(b2, vld1q_f64(v + i)),
                                     vmulq_f64(vmulq_f64(omb2, gv), gv));
    vst1q_f64(v + i, vv);
    const float64x2_t m_hat = vdivq_f64(mv, bc1);
    const float64x2_t v_hat = vdivq_f64(vv, bc2);
    float64x2_t delta =
        vdivq_f64(m_hat, vaddq_f64(vsqrtq_f64(v_hat), eps));
    const float64x2_t wv = vld1q_f64(w + i);
    if (decay) delta = vaddq_f64(delta, vmulq_f64(wd, wv));
    vst1q_f64(w + i, vsubq_f64(wv, vmulq_f64(lr, delta)));
  }
  detail::AdamScalar(w + i, m + i, v + i, g + i, n - i, args);
}

// int8 retrieval kernels: 16 bytes per step; vmull_s8 widens 8x8->16,
// vpadalq_s16 pair-accumulates into i32x4. Exact integer arithmetic,
// so the result is bit-identical to the scalar reference.
int32_t DotI8Neon(const int8_t* x, const int8_t* y, int64_t n) {
  int32x4_t acc = vdupq_n_s32(0);
  int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const int8x16_t xv = vld1q_s8(x + i);
    const int8x16_t yv = vld1q_s8(y + i);
    acc = vpadalq_s16(acc, vmull_s8(vget_low_s8(xv), vget_low_s8(yv)));
    acc = vpadalq_s16(acc, vmull_s8(vget_high_s8(xv), vget_high_s8(yv)));
  }
  int32_t total = vaddvq_s32(acc);
  for (; i < n; ++i) {
    total += static_cast<int32_t>(x[i]) * static_cast<int32_t>(y[i]);
  }
  return total;
}

int32_t L2I8Neon(const int8_t* x, const int8_t* y, int64_t n) {
  int32x4_t acc = vdupq_n_s32(0);
  int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const int8x16_t xv = vld1q_s8(x + i);
    const int8x16_t yv = vld1q_s8(y + i);
    const int16x8_t dlo = vsubl_s8(vget_low_s8(xv), vget_low_s8(yv));
    const int16x8_t dhi = vsubl_s8(vget_high_s8(xv), vget_high_s8(yv));
    acc = vmlal_s16(acc, vget_low_s16(dlo), vget_low_s16(dlo));
    acc = vmlal_s16(acc, vget_high_s16(dlo), vget_high_s16(dlo));
    acc = vmlal_s16(acc, vget_low_s16(dhi), vget_low_s16(dhi));
    acc = vmlal_s16(acc, vget_high_s16(dhi), vget_high_s16(dhi));
  }
  int32_t total = vaddvq_s32(acc);
  for (; i < n; ++i) {
    const int32_t d = static_cast<int32_t>(x[i]) - static_cast<int32_t>(y[i]);
    total += d * d;
  }
  return total;
}

const KernelTable kNeonTable = {
    Isa::kNeon,   GemmNeon, GemmTransANeon, GemmTransBNeon, DotNeon,
    SumNeon,      SumSqNeon, AddNeon,       SubNeon,        ScaleNeon,
    HadamardNeon, AdamNeon, DotI8Neon,      L2I8Neon,
};

}  // namespace

const KernelTable* NeonTable() { return &kNeonTable; }

}  // namespace simd
}  // namespace gradgcl

#endif  // GRADGCL_SIMD_NEON
