// AVX2+FMA kernel table. This TU alone is compiled with -mavx2 -mfma
// (and -ffp-contract=off, so the compiler cannot contract the scalar
// remainder code into FMAs behind our back); it is entered only after
// the dispatcher's runtime CPU check, keeping the default build
// portable.
//
// Rounding contracts implemented here (see simd.h):
//  * gemm / gemm_transa: one FMA chain per output element, kk
//    ascending. The 4x8 register microkernel, the partial-tile masked
//    variants, and the std::fma scalar remainders all produce that
//    exact chain, so tile boundaries never show up in the bits and the
//    result is invariant to the k-panel split and the thread count.
//  * dot / sum / sumsq / gemm_transb: four lane chains stepping k by 4,
//    combined as ((l0 + l1) + (l2 + l3)), then the scalar tail appended
//    in order (std::fma for dot-like kernels, plain add for sum).
//  * Elementwise + Adam: mul/add/sub/div/sqrt only — bit-identical to
//    the scalar table.

#include "tensor/simd.h"

#if defined(GRADGCL_SIMD_AVX2)

#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "tensor/simd_detail.h"

namespace gradgcl {
namespace simd {
namespace {

// Microkernel tile: 4 output rows x 8 output columns (two 4-lane
// accumulators per row -> 8 ymm accumulators, leaving registers for the
// packed-B panel and the broadcast A values).
constexpr int64_t kMr = 4;
constexpr int64_t kNr = 8;
// k-panel packed per (jb, kb) block: 128 x 8 doubles = 8 KiB, resident
// in L1 while every strip row streams over it.
constexpr int64_t kKc = 128;

// Lane-combine order pinned by the contract: ((l0 + l1) + (l2 + l3)).
inline double HSum(__m256d v) {
  alignas(32) double lane[4];
  _mm256_store_pd(lane, v);
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

// Mask selecting the first `w` of 4 lanes (w in [0, 4]).
inline __m256i LaneMask(int64_t w) {
  alignas(32) int64_t bits[4];
  for (int64_t l = 0; l < 4; ++l) bits[l] = l < w ? int64_t{-1} : int64_t{0};
  return _mm256_load_si256(reinterpret_cast<const __m256i*>(bits));
}

// Packs the kw x jw panel of B (row stride ldb) into `pack` with row
// stride kNr, zero-padding columns jw..kNr. Padding lanes feed dead
// accumulator lanes that are never stored back.
inline void PackB(const double* b, int64_t ldb, int64_t kw, int64_t jw,
                  double* pack) {
  for (int64_t kk = 0; kk < kw; ++kk) {
    const double* brow = b + kk * ldb;
    double* prow = pack + kk * kNr;
    int64_t j = 0;
    for (; j < jw; ++j) prow[j] = brow[j];
    for (; j < kNr; ++j) prow[j] = 0.0;
  }
}

// R x jw microkernel over one packed k-panel. Accumulates into C
// (load/store partial sums, exact), so chaining panels kb-ascending
// continues each element's single FMA chain. TransA reads A down a
// column (a[kk * lda + r]); otherwise along a row (a[r * lda + kk]).
// Scaled rounds a * row_scale[r] first, like a stored ScaleRows
// intermediate.
template <int R, bool TransA, bool Scaled>
inline void MicroKernel(const double* a, int64_t lda, const double* row_scale,
                        const double* pack, int64_t kw, double* c, int64_t ldc,
                        int64_t jw) {
  __m256d acc[R][2];
  const bool full = jw == kNr;
  __m256i mlo = _mm256_setzero_si256();
  __m256i mhi = _mm256_setzero_si256();
  if (full) {
    for (int r = 0; r < R; ++r) {
      acc[r][0] = _mm256_loadu_pd(c + r * ldc);
      acc[r][1] = _mm256_loadu_pd(c + r * ldc + 4);
    }
  } else {
    mlo = LaneMask(std::min<int64_t>(jw, 4));
    mhi = LaneMask(std::max<int64_t>(jw - 4, 0));
    for (int r = 0; r < R; ++r) {
      acc[r][0] = _mm256_maskload_pd(c + r * ldc, mlo);
      acc[r][1] = _mm256_maskload_pd(c + r * ldc + 4, mhi);
    }
  }
  for (int64_t kk = 0; kk < kw; ++kk) {
    const __m256d b0 = _mm256_load_pd(pack + kk * kNr);
    const __m256d b1 = _mm256_load_pd(pack + kk * kNr + 4);
    for (int r = 0; r < R; ++r) {
      double av = TransA ? a[kk * lda + r] : a[r * lda + kk];
      if (Scaled) av *= row_scale[r];
      const __m256d avv = _mm256_set1_pd(av);
      acc[r][0] = _mm256_fmadd_pd(avv, b0, acc[r][0]);
      acc[r][1] = _mm256_fmadd_pd(avv, b1, acc[r][1]);
    }
  }
  if (full) {
    for (int r = 0; r < R; ++r) {
      _mm256_storeu_pd(c + r * ldc, acc[r][0]);
      _mm256_storeu_pd(c + r * ldc + 4, acc[r][1]);
    }
  } else {
    for (int r = 0; r < R; ++r) {
      _mm256_maskstore_pd(c + r * ldc, mlo, acc[r][0]);
      _mm256_maskstore_pd(c + r * ldc + 4, mhi, acc[r][1]);
    }
  }
}

template <bool TransA, bool Scaled>
inline void MicroKernelDispatch(int64_t r, const double* a, int64_t lda,
                                const double* row_scale, const double* pack,
                                int64_t kw, double* c, int64_t ldc,
                                int64_t jw) {
  switch (r) {
    case 3:
      MicroKernel<3, TransA, Scaled>(a, lda, row_scale, pack, kw, c, ldc, jw);
      break;
    case 2:
      MicroKernel<2, TransA, Scaled>(a, lda, row_scale, pack, kw, c, ldc, jw);
      break;
    case 1:
      MicroKernel<1, TransA, Scaled>(a, lda, row_scale, pack, kw, c, ldc, jw);
      break;
    default:
      break;
  }
}

void ScaleAvx2(double* x, int64_t n, double s);

template <bool Scaled>
void GemmAvx2Impl(const double* a, int64_t lda, const double* b, int64_t ldb,
                  double* c, int64_t ldc, int64_t rows, int64_t k, int64_t m,
                  const double* row_scale, double post) {
  // Fixed thread-local pack scratch: the GEMM allocates nothing, so the
  // pool's zero-alloc steady state (tests/pool_test.cc) is preserved.
  alignas(64) static thread_local double pack[kKc * kNr];
  for (int64_t i = 0; i < rows; ++i) {
    std::fill(c + i * ldc, c + i * ldc + m, 0.0);
  }
  for (int64_t jb = 0; jb < m; jb += kNr) {
    const int64_t jw = std::min(kNr, m - jb);
    for (int64_t kb = 0; kb < k; kb += kKc) {
      const int64_t kw = std::min(kKc, k - kb);
      PackB(b + kb * ldb + jb, ldb, kw, jw, pack);
      int64_t i = 0;
      for (; i + kMr <= rows; i += kMr) {
        MicroKernel<kMr, false, Scaled>(a + i * lda + kb, lda,
                                        Scaled ? row_scale + i : nullptr, pack,
                                        kw, c + i * ldc + jb, ldc, jw);
      }
      MicroKernelDispatch<false, Scaled>(rows - i, a + i * lda + kb, lda,
                                         Scaled ? row_scale + i : nullptr,
                                         pack, kw, c + i * ldc + jb, ldc, jw);
    }
  }
  if (post != 1.0) {
    for (int64_t i = 0; i < rows; ++i) ScaleAvx2(c + i * ldc, m, post);
  }
}

void GemmAvx2(const double* a, int64_t lda, const double* b, int64_t ldb,
              double* c, int64_t ldc, int64_t rows, int64_t k, int64_t m,
              const double* row_scale, double post) {
  if (row_scale == nullptr) {
    GemmAvx2Impl<false>(a, lda, b, ldb, c, ldc, rows, k, m, nullptr, post);
  } else {
    GemmAvx2Impl<true>(a, lda, b, ldb, c, ldc, rows, k, m, row_scale, post);
  }
}

void GemmTransAAvx2(const double* a, int64_t lda, const double* b, int64_t ldb,
                    double* c, int64_t ldc, int64_t i0, int64_t i1, int64_t k,
                    int64_t m) {
  alignas(64) static thread_local double pack[kKc * kNr];
  for (int64_t i = i0; i < i1; ++i) {
    std::fill(c + i * ldc, c + i * ldc + m, 0.0);
  }
  for (int64_t jb = 0; jb < m; jb += kNr) {
    const int64_t jw = std::min(kNr, m - jb);
    for (int64_t kb = 0; kb < k; kb += kKc) {
      const int64_t kw = std::min(kKc, k - kb);
      PackB(b + kb * ldb + jb, ldb, kw, jw, pack);
      int64_t i = i0;
      for (; i + kMr <= i1; i += kMr) {
        MicroKernel<kMr, true, false>(a + kb * lda + i, lda, nullptr, pack, kw,
                                      c + i * ldc + jb, ldc, jw);
      }
      MicroKernelDispatch<true, false>(i1 - i, a + kb * lda + i, lda, nullptr,
                                       pack, kw, c + i * ldc + jb, ldc, jw);
    }
  }
}

double DotAvx2(const double* x, const double* y, int64_t n) {
  __m256d acc = _mm256_setzero_pd();
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_fmadd_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i), acc);
  }
  double total = HSum(acc);
  for (; i < n; ++i) total = std::fma(x[i], y[i], total);
  return total;
}

double SumAvx2(const double* x, int64_t n) {
  __m256d acc = _mm256_setzero_pd();
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(x + i));
  }
  double total = HSum(acc);
  for (; i < n; ++i) total += x[i];
  return total;
}

double SumSqAvx2(const double* x, int64_t n) { return DotAvx2(x, x, n); }

void GemmTransBAvx2(const double* a, const double* b, double* c, int64_t ldc,
                    int64_t rows, int64_t k, int64_t m, double scale) {
  // 2x4 register tile of independent dot chains for latency hiding;
  // each (i, j) pair owns one accumulator vector, so its bits match a
  // standalone DotAvx2 exactly.
  const int64_t ktail = k - k % 4;
  int64_t i = 0;
  for (; i + 2 <= rows; i += 2) {
    const double* a0 = a + i * k;
    const double* a1 = a0 + k;
    double* c0 = c + i * ldc;
    double* c1 = c0 + ldc;
    int64_t j = 0;
    for (; j + 4 <= m; j += 4) {
      __m256d acc0[4], acc1[4];
      for (int q = 0; q < 4; ++q) {
        acc0[q] = _mm256_setzero_pd();
        acc1[q] = _mm256_setzero_pd();
      }
      for (int64_t kk = 0; kk < ktail; kk += 4) {
        const __m256d av0 = _mm256_loadu_pd(a0 + kk);
        const __m256d av1 = _mm256_loadu_pd(a1 + kk);
        for (int q = 0; q < 4; ++q) {
          const __m256d bv = _mm256_loadu_pd(b + (j + q) * k + kk);
          acc0[q] = _mm256_fmadd_pd(av0, bv, acc0[q]);
          acc1[q] = _mm256_fmadd_pd(av1, bv, acc1[q]);
        }
      }
      for (int q = 0; q < 4; ++q) {
        const double* brow = b + (j + q) * k;
        double d0 = HSum(acc0[q]);
        double d1 = HSum(acc1[q]);
        for (int64_t kk = ktail; kk < k; ++kk) {
          d0 = std::fma(a0[kk], brow[kk], d0);
          d1 = std::fma(a1[kk], brow[kk], d1);
        }
        c0[j + q] = d0 * scale;
        c1[j + q] = d1 * scale;
      }
    }
    for (; j < m; ++j) {
      const double* brow = b + j * k;
      c0[j] = DotAvx2(a0, brow, k) * scale;
      c1[j] = DotAvx2(a1, brow, k) * scale;
    }
  }
  if (i < rows) {
    const double* arow = a + i * k;
    double* crow = c + i * ldc;
    for (int64_t j = 0; j < m; ++j) {
      crow[j] = DotAvx2(arow, b + j * k, k) * scale;
    }
  }
}

void AddAvx2(double* y, const double* x, int64_t n) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        y + i, _mm256_add_pd(_mm256_loadu_pd(y + i), _mm256_loadu_pd(x + i)));
  }
  for (; i < n; ++i) y[i] += x[i];
}

void SubAvx2(double* y, const double* x, int64_t n) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        y + i, _mm256_sub_pd(_mm256_loadu_pd(y + i), _mm256_loadu_pd(x + i)));
  }
  for (; i < n; ++i) y[i] -= x[i];
}

void ScaleAvx2(double* x, int64_t n, double s) {
  const __m256d sv = _mm256_set1_pd(s);
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(x + i, _mm256_mul_pd(_mm256_loadu_pd(x + i), sv));
  }
  for (; i < n; ++i) x[i] *= s;
}

void HadamardAvx2(double* out, const double* a, const double* b, int64_t n) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, _mm256_mul_pd(_mm256_loadu_pd(a + i),
                                            _mm256_loadu_pd(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] * b[i];
}

// Mirrors detail::AdamScalar operation-for-operation (no FMA), so the
// update is bit-identical to the scalar table.
void AdamAvx2(double* w, double* m, double* v, const double* g, int64_t n,
              const AdamArgs& args) {
  const __m256d b1 = _mm256_set1_pd(args.beta1);
  const __m256d b2 = _mm256_set1_pd(args.beta2);
  const __m256d omb1 = _mm256_set1_pd(1.0 - args.beta1);
  const __m256d omb2 = _mm256_set1_pd(1.0 - args.beta2);
  const __m256d bc1 = _mm256_set1_pd(args.bc1);
  const __m256d bc2 = _mm256_set1_pd(args.bc2);
  const __m256d lr = _mm256_set1_pd(args.lr);
  const __m256d eps = _mm256_set1_pd(args.eps);
  const __m256d wd = _mm256_set1_pd(args.weight_decay);
  const bool decay = args.weight_decay > 0.0;
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d gv = _mm256_loadu_pd(g + i);
    const __m256d mv = _mm256_add_pd(_mm256_mul_pd(b1, _mm256_loadu_pd(m + i)),
                                     _mm256_mul_pd(omb1, gv));
    _mm256_storeu_pd(m + i, mv);
    const __m256d vv =
        _mm256_add_pd(_mm256_mul_pd(b2, _mm256_loadu_pd(v + i)),
                      _mm256_mul_pd(_mm256_mul_pd(omb2, gv), gv));
    _mm256_storeu_pd(v + i, vv);
    const __m256d m_hat = _mm256_div_pd(mv, bc1);
    const __m256d v_hat = _mm256_div_pd(vv, bc2);
    __m256d delta =
        _mm256_div_pd(m_hat, _mm256_add_pd(_mm256_sqrt_pd(v_hat), eps));
    const __m256d wv = _mm256_loadu_pd(w + i);
    if (decay) delta = _mm256_add_pd(delta, _mm256_mul_pd(wd, wv));
    _mm256_storeu_pd(w + i, _mm256_sub_pd(wv, _mm256_mul_pd(lr, delta)));
  }
  detail::AdamScalar(w + i, m + i, v + i, g + i, n - i, args);
}

// int8 retrieval kernels: 32 bytes per step, each 16-byte half
// sign-extended to i16x16 and pair-summed into i32 lanes with
// _mm256_madd_epi16. All arithmetic is exact integer math, so the
// result equals the scalar reference bit-for-bit regardless of lane
// layout. Per-lane bound at n = kMaxInt8Dim: each madd lane adds at
// most 2 * 254^2 per step over n/32 steps — far below 2^31.
inline int32_t HSumI32(__m256i v) {
  alignas(32) int32_t lane[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lane), v);
  return lane[0] + lane[1] + lane[2] + lane[3] + lane[4] + lane[5] + lane[6] +
         lane[7];
}

int32_t DotI8Avx2(const int8_t* x, const int8_t* y, int64_t n) {
  __m256i acc = _mm256_setzero_si256();
  int64_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i xv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    const __m256i yv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y + i));
    const __m256i xlo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(xv));
    const __m256i ylo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(yv));
    const __m256i xhi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(xv, 1));
    const __m256i yhi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(yv, 1));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(xlo, ylo));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(xhi, yhi));
  }
  int32_t total = HSumI32(acc);
  for (; i < n; ++i) {
    total += static_cast<int32_t>(x[i]) * static_cast<int32_t>(y[i]);
  }
  return total;
}

int32_t L2I8Avx2(const int8_t* x, const int8_t* y, int64_t n) {
  __m256i acc = _mm256_setzero_si256();
  int64_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i xv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    const __m256i yv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y + i));
    const __m256i dlo = _mm256_sub_epi16(
        _mm256_cvtepi8_epi16(_mm256_castsi256_si128(xv)),
        _mm256_cvtepi8_epi16(_mm256_castsi256_si128(yv)));
    const __m256i dhi = _mm256_sub_epi16(
        _mm256_cvtepi8_epi16(_mm256_extracti128_si256(xv, 1)),
        _mm256_cvtepi8_epi16(_mm256_extracti128_si256(yv, 1)));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(dlo, dlo));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(dhi, dhi));
  }
  int32_t total = HSumI32(acc);
  for (; i < n; ++i) {
    const int32_t d = static_cast<int32_t>(x[i]) - static_cast<int32_t>(y[i]);
    total += d * d;
  }
  return total;
}

const KernelTable kAvx2Table = {
    Isa::kAvx2,   GemmAvx2, GemmTransAAvx2, GemmTransBAvx2, DotAvx2,
    SumAvx2,      SumSqAvx2, AddAvx2,       SubAvx2,        ScaleAvx2,
    HadamardAvx2, AdamAvx2, DotI8Avx2,      L2I8Avx2,
};

}  // namespace

const KernelTable* Avx2Table() { return &kAvx2Table; }

}  // namespace simd
}  // namespace gradgcl

#endif  // GRADGCL_SIMD_AVX2
