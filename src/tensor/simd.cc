#include "tensor/simd.h"

#include <atomic>
#include <cstdint>
#include <cstdlib>

#include "tensor/simd_detail.h"

namespace gradgcl {
namespace simd {

namespace {

bool EnvFlagDefaultOn(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr) return true;
  return !(v[0] == '0' && v[1] == '\0');
}

std::atomic<bool> g_simd_enabled{EnvFlagDefaultOn("GRADGCL_SIMD")};

const KernelTable kScalarTable = {
    Isa::kScalar,
    detail::GemmScalar,
    detail::GemmTransAScalar,
    detail::GemmTransBScalar,
    detail::DotScalar,
    detail::SumScalar,
    detail::SumSqScalar,
    detail::AddScalar,
    detail::SubScalar,
    detail::ScaleScalar,
    detail::HadamardScalar,
    detail::AdamScalar,
    detail::DotI8Scalar,
    detail::L2I8Scalar,
};

#if defined(GRADGCL_SIMD_AVX2)
// The AVX2 TU is compiled into every x86-64 build; whether it may run
// is a one-time CPU check so old machines fall back to scalar instead
// of faulting on an illegal instruction.
bool CpuHasAvx2Fma() {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}
#endif

}  // namespace

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kAvx2:
      return "avx2";
    case Isa::kNeon:
      return "neon";
    default:
      return "scalar";
  }
}

bool Enabled() { return g_simd_enabled.load(std::memory_order_relaxed); }

void SetEnabled(bool enabled) {
  g_simd_enabled.store(enabled, std::memory_order_relaxed);
}

Isa CompiledIsa() {
#if defined(GRADGCL_SIMD_AVX2)
  static const bool avx2 = CpuHasAvx2Fma();
  if (avx2) return Isa::kAvx2;
#endif
#if defined(GRADGCL_SIMD_NEON)
  // NEON is baseline on aarch64: no runtime check needed.
  return Isa::kNeon;
#endif
  return Isa::kScalar;
}

Isa ActiveIsa() { return Enabled() ? CompiledIsa() : Isa::kScalar; }

bool IsAligned64(const void* p) {
  return reinterpret_cast<uintptr_t>(p) % 64 == 0;
}

const KernelTable& Active() {
  switch (ActiveIsa()) {
#if defined(GRADGCL_SIMD_AVX2)
    case Isa::kAvx2:
      return *Avx2Table();
#endif
#if defined(GRADGCL_SIMD_NEON)
    case Isa::kNeon:
      return *NeonTable();
#endif
    default:
      return kScalarTable;
  }
}

}  // namespace simd
}  // namespace gradgcl
