#include "tensor/sparse.h"

#include <algorithm>

#include "common/parallel.h"

namespace gradgcl {

SparseMatrix::SparseMatrix(int rows, int cols, std::vector<Triplet> triplets)
    : rows_(rows), cols_(cols) {
  GRADGCL_CHECK(rows >= 0 && cols >= 0);
  for (const Triplet& t : triplets) {
    GRADGCL_CHECK(t.row >= 0 && t.row < rows && t.col >= 0 && t.col < cols);
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  row_offsets_.assign(rows + 1, 0);
  col_indices_.reserve(triplets.size());
  values_.reserve(triplets.size());
  for (size_t i = 0; i < triplets.size();) {
    size_t j = i;
    double sum = 0.0;
    while (j < triplets.size() && triplets[j].row == triplets[i].row &&
           triplets[j].col == triplets[i].col) {
      sum += triplets[j].value;
      ++j;
    }
    col_indices_.push_back(triplets[i].col);
    values_.push_back(sum);
    ++row_offsets_[triplets[i].row + 1];
    i = j;
  }
  for (int r = 0; r < rows; ++r) row_offsets_[r + 1] += row_offsets_[r];
}

Matrix SparseMatrix::Multiply(const Matrix& x) const {
  GRADGCL_CHECK_MSG(x.rows() == cols_, "SparseMatrix::Multiply shape mismatch");
  const int64_t cols = x.cols();
  Matrix y(rows_, x.cols(), 0.0);
  const double* xdata = x.data();
  double* ydata = y.data();
  // The GCN/GIN aggregation hot path. Row-parallel over CSR rows: each
  // output row is one chunk's private accumulation in CSR order, so
  // results are bit-identical for every thread count. Grain assumes the
  // average row density; skewed rows just make chunks uneven.
  const int64_t avg_row_work =
      rows_ > 0 ? (static_cast<int64_t>(nnz()) * cols) / rows_ : 0;
  constexpr int64_t kMinWorkPerChunk = 1 << 15;
  const int64_t grain =
      avg_row_work > 0 ? std::max<int64_t>(1, kMinWorkPerChunk / avg_row_work)
                       : rows_;
  // Cost hint: 2 FLOPs (madd) per stored value per output column,
  // averaged over rows for the per-iteration estimate.
  ParallelFor(0, rows_, grain, /*cost_per_iter=*/2 * avg_row_work,
              [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      double* yrow = ydata + r * cols;
      for (int k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
        const double v = values_[k];
        const double* xrow =
            xdata + static_cast<int64_t>(col_indices_[k]) * cols;
        for (int64_t j = 0; j < cols; ++j) yrow[j] += v * xrow[j];
      }
    }
  });
  return y;
}

Matrix SparseMatrix::MultiplyTransposed(const Matrix& x) const {
  GRADGCL_CHECK_MSG(x.rows() == rows_,
                    "SparseMatrix::MultiplyTransposed shape mismatch");
  // Stays serial: the CSR walk scatters into arbitrary output rows, so
  // row-parallelism would race and per-thread buffers would change the
  // accumulation order with the thread count (DESIGN.md §5).
  Matrix y(cols_, x.cols(), 0.0);
  for (int r = 0; r < rows_; ++r) {
    const double* xrow = x.data() + static_cast<size_t>(r) * x.cols();
    for (int k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
      const double v = values_[k];
      double* yrow = y.data() + static_cast<size_t>(col_indices_[k]) * x.cols();
      for (int j = 0; j < x.cols(); ++j) yrow[j] += v * xrow[j];
    }
  }
  return y;
}

Matrix SparseMatrix::ToDense() const {
  Matrix d(rows_, cols_, 0.0);
  for (int r = 0; r < rows_; ++r) {
    for (int k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
      d(r, col_indices_[k]) += values_[k];
    }
  }
  return d;
}

}  // namespace gradgcl
