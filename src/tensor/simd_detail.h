// Internal to the SIMD layer: the scalar reference kernels, shared by
// the scalar KernelTable (tensor/simd.cc) and the vector TUs (scalar
// remainder paths must round exactly like the pure-scalar table where
// the contract says "bit-identical"). Every function here is inline and
// header-defined so each TU compiles it under -ffp-contract=off with
// identical IEEE semantics. Not part of the public simd.h surface.

#ifndef GRADGCL_TENSOR_SIMD_DETAIL_H_
#define GRADGCL_TENSOR_SIMD_DETAIL_H_

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "tensor/simd.h"

namespace gradgcl {
namespace simd {
namespace detail {

// k-block for the scalar ikj GEMM: 32 rows of B x 512 doubles =
// 128 KiB, sized for L2 residency while a strip of output rows streams
// over the block. Per-element accumulation stays kk-ascending across
// blocks, so the blocking never changes bits.
inline constexpr int64_t kScalarKBlock = 32;

inline void GemmScalar(const double* a, int64_t lda, const double* b,
                       int64_t ldb, double* c, int64_t ldc, int64_t rows,
                       int64_t k, int64_t m, const double* row_scale,
                       double post) {
  for (int64_t i = 0; i < rows; ++i) {
    std::fill(c + i * ldc, c + i * ldc + m, 0.0);
  }
  for (int64_t kb = 0; kb < k; kb += kScalarKBlock) {
    const int64_t kend = std::min(k, kb + kScalarKBlock);
    for (int64_t i = 0; i < rows; ++i) {
      const double* arow = a + i * lda;
      double* crow = c + i * ldc;
      if (row_scale == nullptr) {
        for (int64_t kk = kb; kk < kend; ++kk) {
          const double av = arow[kk];
          const double* brow = b + kk * ldb;
          for (int64_t j = 0; j < m; ++j) crow[j] += av * brow[j];
        }
      } else {
        const double si = row_scale[i];
        for (int64_t kk = kb; kk < kend; ++kk) {
          const double av = arow[kk] * si;
          const double* brow = b + kk * ldb;
          for (int64_t j = 0; j < m; ++j) crow[j] += av * brow[j];
        }
      }
    }
  }
  if (post != 1.0) {
    for (int64_t i = 0; i < rows; ++i) {
      double* crow = c + i * ldc;
      for (int64_t j = 0; j < m; ++j) crow[j] *= post;
    }
  }
}

inline void GemmTransAScalar(const double* a, int64_t lda, const double* b,
                             int64_t ldb, double* c, int64_t ldc, int64_t i0,
                             int64_t i1, int64_t k, int64_t m) {
  for (int64_t i = i0; i < i1; ++i) {
    std::fill(c + i * ldc, c + i * ldc + m, 0.0);
  }
  for (int64_t kb = 0; kb < k; kb += kScalarKBlock) {
    const int64_t kend = std::min(k, kb + kScalarKBlock);
    for (int64_t i = i0; i < i1; ++i) {
      double* crow = c + i * ldc;
      for (int64_t kk = kb; kk < kend; ++kk) {
        const double av = a[kk * lda + i];
        const double* brow = b + kk * ldb;
        for (int64_t j = 0; j < m; ++j) crow[j] += av * brow[j];
      }
    }
  }
}

inline double DotScalar(const double* x, const double* y, int64_t n) {
  double s = 0.0;
  for (int64_t i = 0; i < n; ++i) s += x[i] * y[i];
  return s;
}

inline void GemmTransBScalar(const double* a, const double* b, double* c,
                             int64_t ldc, int64_t rows, int64_t k, int64_t m,
                             double scale) {
  // A tile of B rows is reused across the whole strip of A rows before
  // moving on; each dot completes before the scale is rounded in.
  for (int64_t jb = 0; jb < m; jb += kScalarKBlock) {
    const int64_t jend = std::min(m, jb + kScalarKBlock);
    for (int64_t i = 0; i < rows; ++i) {
      const double* arow = a + i * k;
      double* crow = c + i * ldc;
      for (int64_t j = jb; j < jend; ++j) {
        crow[j] = DotScalar(arow, b + j * k, k) * scale;
      }
    }
  }
}

inline double SumScalar(const double* x, int64_t n) {
  double s = 0.0;
  for (int64_t i = 0; i < n; ++i) s += x[i];
  return s;
}

inline double SumSqScalar(const double* x, int64_t n) {
  return DotScalar(x, x, n);
}

inline void AddScalar(double* y, const double* x, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] += x[i];
}

inline void SubScalar(double* y, const double* x, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] -= x[i];
}

inline void ScaleScalar(double* x, int64_t n, double s) {
  for (int64_t i = 0; i < n; ++i) x[i] *= s;
}

inline void HadamardScalar(double* out, const double* a, const double* b,
                           int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] = a[i] * b[i];
}

inline int32_t DotI8Scalar(const int8_t* x, const int8_t* y, int64_t n) {
  int32_t s = 0;
  for (int64_t i = 0; i < n; ++i) {
    s += static_cast<int32_t>(x[i]) * static_cast<int32_t>(y[i]);
  }
  return s;
}

inline int32_t L2I8Scalar(const int8_t* x, const int8_t* y, int64_t n) {
  int32_t s = 0;
  for (int64_t i = 0; i < n; ++i) {
    const int32_t d = static_cast<int32_t>(x[i]) - static_cast<int32_t>(y[i]);
    s += d * d;
  }
  return s;
}

inline void AdamScalar(double* w, double* m, double* v, const double* g,
                       int64_t n, const AdamArgs& args) {
  const double omb1 = 1.0 - args.beta1;
  const double omb2 = 1.0 - args.beta2;
  for (int64_t i = 0; i < n; ++i) {
    const double gi = g[i];
    m[i] = args.beta1 * m[i] + omb1 * gi;
    v[i] = args.beta2 * v[i] + omb2 * gi * gi;
    const double m_hat = m[i] / args.bc1;
    const double v_hat = v[i] / args.bc2;
    double delta = m_hat / (std::sqrt(v_hat) + args.eps);
    if (args.weight_decay > 0.0) delta += args.weight_decay * w[i];
    w[i] -= args.lr * delta;
  }
}

}  // namespace detail

// Vector tables, defined in their own TUs when the build compiles them
// in (see src/CMakeLists.txt); referenced only by the dispatcher.
#if defined(GRADGCL_SIMD_AVX2)
const KernelTable* Avx2Table();
#endif
#if defined(GRADGCL_SIMD_NEON)
const KernelTable* NeonTable();
#endif

}  // namespace simd
}  // namespace gradgcl

#endif  // GRADGCL_TENSOR_SIMD_DETAIL_H_
