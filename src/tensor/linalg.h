// Dense linear algebra used by the collapse analyses: symmetric Jacobi
// eigendecomposition, singular values, representation covariance
// (paper Eq. 5), and rank diagnostics for Figs. 1 and 5.

#ifndef GRADGCL_TENSOR_LINALG_H_
#define GRADGCL_TENSOR_LINALG_H_

#include <vector>

#include "tensor/matrix.h"

namespace gradgcl {

// Result of a symmetric eigendecomposition A = V diag(λ) V^T.
struct EigenResult {
  // Eigenvalues in descending order.
  std::vector<double> eigenvalues;
  // Column k of `eigenvectors` is the eigenvector for eigenvalues[k].
  Matrix eigenvectors;
};

// Eigendecomposition of a symmetric matrix via the cyclic Jacobi
// method. `a` must be square and (numerically) symmetric.
EigenResult SymmetricEigen(const Matrix& a, int max_sweeps = 64,
                           double tol = 1e-12);

// Singular values of an arbitrary matrix, descending. Computed from
// the eigenvalues of the smaller Gram matrix (A^T A or A A^T), which
// is accurate enough for the spectrum diagnostics used here.
std::vector<double> SingularValues(const Matrix& a);

// Covariance matrix of row-observations (paper Eq. 5):
//   C = (1/n) Σ_i (u_i - ū)(u_i - ū)^T,   u_i = row i of `x`.
Matrix Covariance(const Matrix& x);

// Singular values of the representation covariance — the quantity
// plotted (log-scale, sorted) in the paper's Figs. 1 and 5.
std::vector<double> CovarianceSpectrum(const Matrix& representations);

// Number of values >= threshold * max(values). A direct reading of
// "how many dimensions survived" from a spectrum.
int RankAtThreshold(const std::vector<double>& values, double threshold);

// Effective rank: exp(entropy of the normalised spectrum). Smooth
// scalar summary of dimensional collapse (higher = less collapsed).
double EffectiveRank(const std::vector<double>& values);

// Solves the linear system a * x = b for square `a` via Gaussian
// elimination with partial pivoting. Aborts if `a` is singular.
Matrix SolveLinear(const Matrix& a, const Matrix& b);

}  // namespace gradgcl

#endif  // GRADGCL_TENSOR_LINALG_H_
