// Step-scoped memory substrate for Matrix storage.
//
// Every training step rebuilds the autograd DAG, and before this pool
// existed every op heap-allocated fresh value/grad buffers that were
// freed when the tape died — pure allocator churn at a fixed working
// set. MatrixPool recycles those buffers: Acquire() hands out a
// size-bucketed buffer (power-of-two capacities) from a free list,
// falling back to the heap only on a pool miss, and Release() returns
// it to the free list when the owning Matrix dies. At steady state a
// training step performs zero heap allocations for matrix storage
// (tests/pool_test.cc enforces this).
//
// Lifecycle rules:
//  * Pooled allocation is opt-in per thread via TapeScope: Matrix
//    buffers created while a TapeScope is active on the current thread
//    come from the pool; everything else (model parameters, optimizer
//    state, datasets) uses plain heap buffers and is therefore
//    pool-exempt — long-lived state never pins a recycled buffer and
//    survives any number of scope open/close cycles.
//  * Buffers return to the pool via RAII (Matrix destruction), never
//    by scope reset: a pooled Matrix that outlives its TapeScope (the
//    loss scalar, a cached EMA target) stays valid; closing the scope
//    only stops *new* allocations from being pooled.
//  * The pool is thread-safe (one mutex; acquire/release are rare next
//    to the numeric work) and the singleton is intentionally leaked so
//    static-destruction order can never invalidate a live buffer.
//
// Instrumentation: the pool keeps process-wide counters of every
// matrix-buffer heap allocation (pooled misses and unpooled allocs
// alike), bytes, and pool hits. Setting GRADGCL_PROFILE_ALLOC=1 in the
// environment makes every TapeScope print its per-step allocation
// delta to stderr; benches read the counters directly
// (bench_table8_efficiency writes BENCH_alloc.json from them).

#ifndef GRADGCL_TENSOR_POOL_H_
#define GRADGCL_TENSOR_POOL_H_

#include <cstddef>
#include <cstdint>

namespace gradgcl {

// Process-wide allocation counters (relaxed atomics internally; a
// snapshot is not a consistent cut across threads, which is fine for
// profiling).
struct PoolStats {
  uint64_t heap_allocs = 0;  // matrix buffers taken from the heap
  uint64_t heap_bytes = 0;   // bytes of those heap allocations
  uint64_t pool_hits = 0;    // pooled acquires served from a free list
  uint64_t acquires = 0;     // pooled acquires total (hits + misses)
};

// Size-bucketed free lists of matrix buffers. See file comment.
class MatrixPool {
 public:
  // The process-wide pool (leaked singleton, see file comment).
  static MatrixPool& Instance();

  // Returns a buffer with capacity >= n doubles (capacity is the
  // power-of-two bucket size, reported through *capacity and required
  // verbatim by Release). Contents are uninitialized.
  double* Acquire(size_t n, size_t* capacity);

  // Returns a buffer obtained from Acquire to its free list.
  void Release(double* ptr, size_t capacity) noexcept;

  // Unpooled allocation of exactly n doubles, counted in the stats so
  // the profiler sees every matrix-buffer heap allocation. Pairs with
  // HeapFree.
  static double* HeapAlloc(size_t n);
  static void HeapFree(double* ptr) noexcept;

  PoolStats stats() const;
  void ResetStats();

  // Frees every cached buffer (free lists only; live buffers are
  // untouched). Mainly for tests that measure from a cold pool.
  void Trim();

  // Number of buffers / bytes currently cached in free lists.
  size_t CachedBuffers() const;
  size_t CachedBytes() const;

  MatrixPool(const MatrixPool&) = delete;
  MatrixPool& operator=(const MatrixPool&) = delete;

 private:
  MatrixPool();
  ~MatrixPool();

  struct Impl;
  Impl* impl_;
};

// Master switch for pooled allocation (default on; GRADGCL_POOL=0
// disables). With pooling off TapeScope still tracks per-step stats,
// so the unpooled baseline is measurable in the same process.
bool PoolingEnabled();
void SetPoolingEnabled(bool enabled);

// Switch for the fused GradGCL loss kernels (CosineGram,
// MaskedExpRowSum, ScaleRowsMatMul, ...; default on, GRADGCL_FUSED=0
// falls back to the unfused op compositions). Both paths are
// bit-identical — the switch exists for A/B benchmarking and the
// equivalence tests.
bool FusedKernelsEnabled();
void SetFusedKernelsEnabled(bool enabled);

// RAII marker the trainer opens around each optimization step: while
// a TapeScope is active on the current thread (and PoolingEnabled()),
// Matrix buffers allocated on this thread come from the pool. Scopes
// nest; the outermost one reports the step's allocation delta when
// GRADGCL_PROFILE_ALLOC=1.
class TapeScope {
 public:
  TapeScope();
  ~TapeScope();

  TapeScope(const TapeScope&) = delete;
  TapeScope& operator=(const TapeScope&) = delete;

  // True when a TapeScope is active on the calling thread.
  static bool Active();

 private:
  bool prev_;
  PoolStats entry_;  // snapshot for the GRADGCL_PROFILE_ALLOC report
};

}  // namespace gradgcl

#endif  // GRADGCL_TENSOR_POOL_H_
