// Free-function numeric kernels on Matrix: BLAS-lite products,
// elementwise maps, reductions, row-wise normalisation, softmax, and
// pairwise similarity matrices. These are the raw (non-differentiable)
// kernels; autograd/ops.h wraps the ones that need gradients.

#ifndef GRADGCL_TENSOR_OPS_H_
#define GRADGCL_TENSOR_OPS_H_

#include <vector>

#include "common/parallel.h"
#include "tensor/matrix.h"

namespace gradgcl {

// --- Products -------------------------------------------------------------

// Returns a * b. Requires a.cols() == b.rows().
Matrix MatMul(const Matrix& a, const Matrix& b);

// Returns a^T * b without materialising the transpose.
Matrix MatMulTransA(const Matrix& a, const Matrix& b);

// Returns a * b^T without materialising the transpose.
Matrix MatMulTransB(const Matrix& a, const Matrix& b);

// Elementwise (Hadamard) product.
Matrix Hadamard(const Matrix& a, const Matrix& b);

// --- Fused kernels ----------------------------------------------------------
// Each computes the same bits as its unfused composition (same
// per-element accumulation order, same rounding sequence) while
// touching memory once; autograd/ops.h builds the matching fused tape
// nodes on top. See DESIGN.md "Memory model".

// a * b^T * scale — fuses MatMulTransB with the trailing scalar scale
// (the 1/τ of the similarity Gram matrix).
Matrix MatMulTransBScaled(const Matrix& a, const Matrix& b, double scale);

// One sweep over a square matrix s: *exp_out gets exp(s) with the
// diagonal forced to 0.0 (the off-diagonal mask, without materialising
// a mask matrix), *rowsum_out its n x 1 row sums — bit-identical to
// RowSum(Hadamard(Exp(s), offdiag_mask)).
void MaskedExpRowSum(const Matrix& s, Matrix* exp_out, Matrix* rowsum_out);

// (diag(row_scale) a) * b * post without materialising the scaled-rows
// intermediate — the α·û negative term of the InfoNCE gradient
// features. row_scale is rows(a) x 1.
Matrix ScaleRowsMatMulScaled(const Matrix& a, const Matrix& row_scale,
                             const Matrix& b, double post);

// Elementwise logistic sigmoid of a square matrix with the diagonal
// forced to 0.0 — bit-identical to Hadamard(sigmoid(s), offdiag_mask).
Matrix OffDiagSigmoid(const Matrix& s);

// --- Elementwise arithmetic -------------------------------------------------

Matrix operator+(const Matrix& a, const Matrix& b);
Matrix operator-(const Matrix& a, const Matrix& b);
Matrix operator*(const Matrix& a, double s);
Matrix operator*(double s, const Matrix& a);

// Minimum elements per chunk before an elementwise kernel fans out to
// the thread pool; below this the dispatch overhead dominates.
inline constexpr int64_t kElementwiseGrain = 1 << 14;

// Applies `fn` elementwise. Templated so callers' lambdas inline into
// the loop (the old std::function signature paid an indirect call per
// element); large matrices are chunk-parallel, which is deterministic
// because fn is applied independently per element. `cost_per_elem`
// feeds the cost model (common/parallel.h): the FLOP-equivalent cost
// of one fn application — transcendental wrappers pass ~16, cheap
// arithmetic keeps the default.
template <typename Fn>
Matrix Map(const Matrix& a, Fn&& fn, int64_t cost_per_elem = 2) {
  Matrix out = Matrix::Uninitialized(a.rows(), a.cols());
  const double* src = a.data();
  double* dst = out.data();
  ParallelFor(0, a.size(), kElementwiseGrain, cost_per_elem,
              [&](int64_t begin, int64_t end) {
                for (int64_t i = begin; i < end; ++i) dst[i] = fn(src[i]);
              });
  return out;
}

// Elementwise exp / log / tanh / sqrt / abs.
Matrix Exp(const Matrix& a);
Matrix Log(const Matrix& a);
Matrix Tanh(const Matrix& a);
Matrix Sqrt(const Matrix& a);
Matrix Abs(const Matrix& a);

// Elementwise max(a, 0).
Matrix Relu(const Matrix& a);

// --- Reductions -------------------------------------------------------------

// Column vector (rows x 1) of per-row sums / means / max.
Matrix RowSum(const Matrix& a);
Matrix RowMean(const Matrix& a);
Matrix RowMax(const Matrix& a);

// Row vector (1 x cols) of per-column sums / means.
Matrix ColSum(const Matrix& a);
Matrix ColMean(const Matrix& a);

// --- Row geometry -------------------------------------------------------------

// Column vector of per-row L2 norms.
Matrix RowNorms(const Matrix& a);

// Rows scaled to unit L2 norm; rows with norm < eps are left as zero.
Matrix RowNormalize(const Matrix& a, double eps = 1e-12);

// Numerically stable row-wise softmax.
Matrix RowSoftmax(const Matrix& a);

// Pairwise cosine-similarity matrix: out(i, j) = cos(a_i, b_j).
// a is n x d, b is m x d, result is n x m.
Matrix CosineSimilarityMatrix(const Matrix& a, const Matrix& b);

// Pairwise squared Euclidean distances: out(i, j) = |a_i - b_j|^2.
Matrix SquaredDistanceMatrix(const Matrix& a, const Matrix& b);

// Broadcast-adds a 1 x cols row vector to every row of a.
Matrix AddRowBroadcast(const Matrix& a, const Matrix& row);

// --- Segment reductions -----------------------------------------------------
// Raw readout kernels over batched graphs: rows of `a` grouped by
// segments[i] (0-based, < num_segments) into num_segments output rows.
// Accumulation runs in ascending row order, so the rounding sequence is
// independent of how rows were batched together — the property the
// serving path relies on to return bit-identical embeddings regardless
// of micro-batch composition. autograd's SegmentSum/SegmentMean wrap
// these for their forward values (bit-equality by construction).

// out(s, :) = Σ_{i: segments[i] == s} a(i, :).
Matrix SegmentSum(const Matrix& a, const std::vector<int>& segments,
                  int num_segments);

// Segment sums scaled by 1/|segment|; empty segments yield zero rows.
Matrix SegmentMean(const Matrix& a, const std::vector<int>& segments,
                   int num_segments);

// Broadcast-multiplies each row i of a by scale(i, 0).
Matrix ScaleRows(const Matrix& a, const Matrix& scale);

// Stacks b below a (column counts must match).
Matrix VStack(const Matrix& a, const Matrix& b);

// Concatenates b to the right of a (row counts must match).
Matrix HStack(const Matrix& a, const Matrix& b);

}  // namespace gradgcl

#endif  // GRADGCL_TENSOR_OPS_H_
