// CSR sparse matrix used for (normalised) graph adjacency operators.
//
// GNN layers apply  H' = S · H  where S is a batched block-diagonal
// adjacency with O(E) non-zeros; materialising it densely would be
// quadratic in the batch's node count. SparseMatrix supports exactly
// the operations the library needs: sparse × dense products (and the
// transposed product required by backprop) plus construction from
// triplets.

#ifndef GRADGCL_TENSOR_SPARSE_H_
#define GRADGCL_TENSOR_SPARSE_H_

#include <vector>

#include "tensor/matrix.h"

namespace gradgcl {

// One entry of a sparse matrix under construction.
struct Triplet {
  int row = 0;
  int col = 0;
  double value = 0.0;
};

// Immutable CSR sparse matrix.
class SparseMatrix {
 public:
  // Creates an empty 0x0 matrix.
  SparseMatrix() = default;

  // Builds from triplets; duplicate (row, col) entries are summed.
  SparseMatrix(int rows, int cols, std::vector<Triplet> triplets);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int nnz() const { return static_cast<int>(values_.size()); }

  // y = this * x  (dense x with x.rows() == cols()).
  Matrix Multiply(const Matrix& x) const;

  // y = this^T * x  (dense x with x.rows() == rows()).
  Matrix MultiplyTransposed(const Matrix& x) const;

  // Densifies; intended for tests and tiny graphs only.
  Matrix ToDense() const;

  // CSR internals (used by iteration-heavy algorithms, e.g. WL).
  const std::vector<int>& row_offsets() const { return row_offsets_; }
  const std::vector<int>& col_indices() const { return col_indices_; }
  const std::vector<double>& values() const { return values_; }

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<int> row_offsets_;   // size rows_ + 1
  std::vector<int> col_indices_;   // size nnz
  std::vector<double> values_;     // size nnz
};

}  // namespace gradgcl

#endif  // GRADGCL_TENSOR_SPARSE_H_
