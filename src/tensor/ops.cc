#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "common/parallel.h"

namespace gradgcl {

namespace {

// Rows of b (resp. columns of the k-dimension) processed per cache
// block: 32 rows x 512 doubles = 128 KiB, sized for L2 residency while
// a strip of output rows streams over the block.
constexpr int kKBlock = 32;

// Row grain so each chunk carries at least ~2^15 multiply-adds.
int64_t RowGrain(int64_t work_per_row) {
  constexpr int64_t kMinWorkPerChunk = 1 << 15;
  if (work_per_row <= 0) return 1;
  const int64_t grain = kMinWorkPerChunk / work_per_row;
  return grain < 1 ? 1 : grain;
}

}  // namespace

Matrix MatMul(const Matrix& a, const Matrix& b) {
  GRADGCL_CHECK_MSG(a.cols() == b.rows(), "MatMul shape mismatch");
  const int64_t n = a.rows(), k = a.cols(), m = b.cols();
  Matrix out = Matrix::Uninitialized(a.rows(), b.cols());
  const double* adata = a.data();
  const double* bdata = b.data();
  double* odata = out.data();
  // Row-parallel, k-blocked ikj: each chunk owns a strip of output
  // rows; a k-block of b stays cache-hot while the strip streams over
  // it. Per output element the accumulation order is kk ascending for
  // any blocking/thread count, so results are bit-identical. Each
  // chunk zeroes its own strip, so the output can start uninitialized.
  ParallelFor(0, n, RowGrain(k * m), [&](int64_t r0, int64_t r1) {
    std::fill(odata + r0 * m, odata + r1 * m, 0.0);
    for (int64_t kb = 0; kb < k; kb += kKBlock) {
      const int64_t kend = std::min(k, kb + kKBlock);
      for (int64_t i = r0; i < r1; ++i) {
        const double* arow = adata + i * k;
        double* orow = odata + i * m;
        for (int64_t kk = kb; kk < kend; ++kk) {
          const double av = arow[kk];
          if (av == 0.0) continue;
          const double* brow = bdata + kk * m;
          for (int64_t j = 0; j < m; ++j) orow[j] += av * brow[j];
        }
      }
    }
  });
  return out;
}

Matrix MatMulTransA(const Matrix& a, const Matrix& b) {
  GRADGCL_CHECK_MSG(a.rows() == b.rows(), "MatMulTransA shape mismatch");
  const int64_t n = a.cols(), k = a.rows(), m = b.cols();
  Matrix out = Matrix::Uninitialized(a.cols(), b.cols());
  const double* adata = a.data();
  const double* bdata = b.data();
  double* odata = out.data();
  // Each chunk owns a fixed-order strip of output rows (a column strip
  // of a), zeroes it, and accumulates over kk ascending — never
  // splitting a sum across chunks — so the reduction order is
  // thread-count-invariant. k-blocking keeps the strip's output rows
  // hot across the block.
  ParallelFor(0, n, RowGrain(k * m), [&](int64_t i0, int64_t i1) {
    std::fill(odata + i0 * m, odata + i1 * m, 0.0);
    for (int64_t kb = 0; kb < k; kb += kKBlock) {
      const int64_t kend = std::min(k, kb + kKBlock);
      for (int64_t i = i0; i < i1; ++i) {
        double* orow = odata + i * m;
        for (int64_t kk = kb; kk < kend; ++kk) {
          const double av = adata[kk * n + i];
          if (av == 0.0) continue;
          const double* brow = bdata + kk * m;
          for (int64_t j = 0; j < m; ++j) orow[j] += av * brow[j];
        }
      }
    }
  });
  return out;
}

Matrix MatMulTransB(const Matrix& a, const Matrix& b) {
  GRADGCL_CHECK_MSG(a.cols() == b.cols(), "MatMulTransB shape mismatch");
  const int64_t n = a.rows(), k = a.cols(), m = b.rows();
  Matrix out = Matrix::Uninitialized(a.rows(), b.rows());
  const double* adata = a.data();
  const double* bdata = b.data();
  double* odata = out.data();
  // Row-parallel dot products; a tile of b rows is reused across the
  // whole strip of a rows before moving on.
  ParallelFor(0, n, RowGrain(k * m), [&](int64_t r0, int64_t r1) {
    for (int64_t jb = 0; jb < m; jb += kKBlock) {
      const int64_t jend = std::min(m, jb + kKBlock);
      for (int64_t i = r0; i < r1; ++i) {
        const double* arow = adata + i * k;
        double* orow = odata + i * m;
        for (int64_t j = jb; j < jend; ++j) {
          const double* brow = bdata + j * k;
          double dot = 0.0;
          for (int64_t kk = 0; kk < k; ++kk) dot += arow[kk] * brow[kk];
          orow[j] = dot;
        }
      }
    }
  });
  return out;
}

Matrix MatMulTransBScaled(const Matrix& a, const Matrix& b, double scale) {
  GRADGCL_CHECK_MSG(a.cols() == b.cols(), "MatMulTransBScaled shape mismatch");
  const int64_t n = a.rows(), k = a.cols(), m = b.rows();
  Matrix out = Matrix::Uninitialized(a.rows(), b.rows());
  const double* adata = a.data();
  const double* bdata = b.data();
  double* odata = out.data();
  // Same loop as MatMulTransB; each dot product completes before the
  // scale is applied, so the bits match ScalarMul(MatMulTransB(a, b)).
  ParallelFor(0, n, RowGrain(k * m), [&](int64_t r0, int64_t r1) {
    for (int64_t jb = 0; jb < m; jb += kKBlock) {
      const int64_t jend = std::min(m, jb + kKBlock);
      for (int64_t i = r0; i < r1; ++i) {
        const double* arow = adata + i * k;
        double* orow = odata + i * m;
        for (int64_t j = jb; j < jend; ++j) {
          const double* brow = bdata + j * k;
          double dot = 0.0;
          for (int64_t kk = 0; kk < k; ++kk) dot += arow[kk] * brow[kk];
          orow[j] = dot * scale;
        }
      }
    }
  });
  return out;
}

void MaskedExpRowSum(const Matrix& s, Matrix* exp_out, Matrix* rowsum_out) {
  GRADGCL_CHECK(s.rows() == s.cols());
  GRADGCL_CHECK(exp_out != nullptr && rowsum_out != nullptr);
  const int64_t n = s.rows();
  Matrix e = Matrix::Uninitialized(s.rows(), s.cols());
  Matrix rs = Matrix::Uninitialized(s.rows(), 1);
  const double* sdata = s.data();
  double* edata = e.data();
  double* rdata = rs.data();
  // The unfused path stores exp(s_ii) * 0.0 == +0.0 on the diagonal and
  // its RowSum adds that zero in place; summing the stored row in the
  // same j-ascending order reproduces those bits exactly.
  ParallelFor(0, n, RowGrain(n), [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      const double* srow = sdata + i * n;
      double* erow = edata + i * n;
      double sum = 0.0;
      for (int64_t j = 0; j < n; ++j) {
        const double v = j == i ? 0.0 : std::exp(srow[j]);
        erow[j] = v;
        sum += v;
      }
      rdata[i] = sum;
    }
  });
  *exp_out = std::move(e);
  *rowsum_out = std::move(rs);
}

Matrix ScaleRowsMatMulScaled(const Matrix& a, const Matrix& row_scale,
                             const Matrix& b, double post) {
  GRADGCL_CHECK(row_scale.rows() == a.rows() && row_scale.cols() == 1);
  GRADGCL_CHECK_MSG(a.cols() == b.rows(), "ScaleRowsMatMulScaled mismatch");
  const int64_t n = a.rows(), k = a.cols(), m = b.cols();
  Matrix out = Matrix::Uninitialized(a.rows(), b.cols());
  const double* adata = a.data();
  const double* sdata = row_scale.data();
  const double* bdata = b.data();
  double* odata = out.data();
  // MatMul's k-blocked ikj loop with the row scale folded into av (the
  // product a(i, kk) * s_i is rounded first, exactly like the stored
  // ScaleRows intermediate) and the post scale applied once per output
  // element after its accumulation completes — both bit-identical to
  // ScalarMul(MatMul(ScaleRows(a, row_scale), b), post).
  ParallelFor(0, n, RowGrain(k * m), [&](int64_t r0, int64_t r1) {
    std::fill(odata + r0 * m, odata + r1 * m, 0.0);
    for (int64_t kb = 0; kb < k; kb += kKBlock) {
      const int64_t kend = std::min(k, kb + kKBlock);
      for (int64_t i = r0; i < r1; ++i) {
        const double* arow = adata + i * k;
        const double si = sdata[i];
        double* orow = odata + i * m;
        for (int64_t kk = kb; kk < kend; ++kk) {
          const double av = arow[kk] * si;
          if (av == 0.0) continue;
          const double* brow = bdata + kk * m;
          for (int64_t j = 0; j < m; ++j) orow[j] += av * brow[j];
        }
      }
    }
    for (int64_t idx = r0 * m; idx < r1 * m; ++idx) odata[idx] *= post;
  });
  return out;
}

Matrix OffDiagSigmoid(const Matrix& s) {
  GRADGCL_CHECK(s.rows() == s.cols());
  const int64_t n = s.rows();
  Matrix out = Matrix::Uninitialized(s.rows(), s.cols());
  const double* sdata = s.data();
  double* odata = out.data();
  // sigmoid(s_ii) * 0.0 == +0.0 in the unfused mask path.
  ParallelFor(0, n, RowGrain(n), [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      const double* srow = sdata + i * n;
      double* orow = odata + i * n;
      for (int64_t j = 0; j < n; ++j) {
        orow[j] = j == i ? 0.0 : 1.0 / (1.0 + std::exp(-srow[j]));
      }
    }
  });
  return out;
}

Matrix Hadamard(const Matrix& a, const Matrix& b) {
  GRADGCL_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  Matrix out = Matrix::Uninitialized(a.rows(), a.cols());
  const double* adata = a.data();
  const double* bdata = b.data();
  double* odata = out.data();
  ParallelFor(0, a.size(), kElementwiseGrain,
              [&](int64_t begin, int64_t end) {
                for (int64_t i = begin; i < end; ++i) {
                  odata[i] = adata[i] * bdata[i];
                }
              });
  return out;
}

Matrix operator+(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  out += b;
  return out;
}

Matrix operator-(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  out -= b;
  return out;
}

Matrix operator*(const Matrix& a, double s) {
  Matrix out = a;
  out *= s;
  return out;
}

Matrix operator*(double s, const Matrix& a) { return a * s; }

Matrix Exp(const Matrix& a) {
  return Map(a, [](double v) { return std::exp(v); });
}

Matrix Log(const Matrix& a) {
  return Map(a, [](double v) { return std::log(v); });
}

Matrix Tanh(const Matrix& a) {
  return Map(a, [](double v) { return std::tanh(v); });
}

Matrix Sqrt(const Matrix& a) {
  return Map(a, [](double v) { return std::sqrt(v); });
}

Matrix Abs(const Matrix& a) {
  return Map(a, [](double v) { return std::abs(v); });
}

Matrix Relu(const Matrix& a) {
  return Map(a, [](double v) { return v > 0.0 ? v : 0.0; });
}

// Row-wise kernels parallelize over rows: every output element is a
// reduction along one row, computed entirely inside one chunk in index
// order, so any thread count produces identical bits. Column-wise
// reductions (ColSum/ColMean) stay serial — chunk-local partial sums
// would make the reduction order depend on the thread count.

Matrix RowSum(const Matrix& a) {
  const int64_t cols = a.cols();
  Matrix out = Matrix::Uninitialized(a.rows(), 1);
  const double* adata = a.data();
  double* odata = out.data();
  ParallelFor(0, a.rows(), RowGrain(cols), [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      const double* arow = adata + i * cols;
      double sum = 0.0;
      for (int64_t j = 0; j < cols; ++j) sum += arow[j];
      odata[i] = sum;
    }
  });
  return out;
}

Matrix RowMean(const Matrix& a) {
  GRADGCL_CHECK(a.cols() > 0);
  Matrix out = RowSum(a);
  out *= 1.0 / a.cols();
  return out;
}

Matrix RowMax(const Matrix& a) {
  GRADGCL_CHECK(a.cols() > 0);
  const int64_t cols = a.cols();
  Matrix out = Matrix::Uninitialized(a.rows(), 1);
  const double* adata = a.data();
  double* odata = out.data();
  ParallelFor(0, a.rows(), RowGrain(cols), [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      const double* arow = adata + i * cols;
      double best = arow[0];
      for (int64_t j = 1; j < cols; ++j) best = std::max(best, arow[j]);
      odata[i] = best;
    }
  });
  return out;
}

Matrix ColSum(const Matrix& a) {
  Matrix out(1, a.cols(), 0.0);
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < a.cols(); ++j) out(0, j) += a(i, j);
  }
  return out;
}

Matrix ColMean(const Matrix& a) {
  GRADGCL_CHECK(a.rows() > 0);
  Matrix out = ColSum(a);
  out *= 1.0 / a.rows();
  return out;
}

Matrix RowNorms(const Matrix& a) {
  const int64_t cols = a.cols();
  Matrix out = Matrix::Uninitialized(a.rows(), 1);
  const double* adata = a.data();
  double* odata = out.data();
  ParallelFor(0, a.rows(), RowGrain(cols), [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      const double* arow = adata + i * cols;
      double sum = 0.0;
      for (int64_t j = 0; j < cols; ++j) sum += arow[j] * arow[j];
      odata[i] = std::sqrt(sum);
    }
  });
  return out;
}

Matrix RowNormalize(const Matrix& a, double eps) {
  const int64_t cols = a.cols();
  Matrix out = a;
  double* odata = out.data();
  ParallelFor(0, a.rows(), RowGrain(cols), [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      double* orow = odata + i * cols;
      double sum = 0.0;
      for (int64_t j = 0; j < cols; ++j) sum += orow[j] * orow[j];
      const double norm = std::sqrt(sum);
      if (norm < eps) continue;
      const double inv = 1.0 / norm;
      for (int64_t j = 0; j < cols; ++j) orow[j] *= inv;
    }
  });
  return out;
}

Matrix RowSoftmax(const Matrix& a) {
  GRADGCL_CHECK(a.cols() > 0);
  const int64_t cols = a.cols();
  Matrix out = Matrix::Uninitialized(a.rows(), a.cols());
  const double* adata = a.data();
  double* odata = out.data();
  ParallelFor(0, a.rows(), RowGrain(cols), [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      const double* arow = adata + i * cols;
      double* orow = odata + i * cols;
      double mx = arow[0];
      for (int64_t j = 1; j < cols; ++j) mx = std::max(mx, arow[j]);
      double z = 0.0;
      for (int64_t j = 0; j < cols; ++j) {
        const double e = std::exp(arow[j] - mx);
        orow[j] = e;
        z += e;
      }
      const double inv = 1.0 / z;
      for (int64_t j = 0; j < cols; ++j) orow[j] *= inv;
    }
  });
  return out;
}

Matrix CosineSimilarityMatrix(const Matrix& a, const Matrix& b) {
  GRADGCL_CHECK(a.cols() == b.cols());
  return MatMulTransB(RowNormalize(a), RowNormalize(b));
}

Matrix SquaredDistanceMatrix(const Matrix& a, const Matrix& b) {
  GRADGCL_CHECK(a.cols() == b.cols());
  const Matrix dots = MatMulTransB(a, b);
  const Matrix a2 = RowNorms(a);
  const Matrix b2 = RowNorms(b);
  const int64_t m = b.rows();
  Matrix out = Matrix::Uninitialized(a.rows(), b.rows());
  const double* ddata = dots.data();
  double* odata = out.data();
  ParallelFor(0, a.rows(), RowGrain(m), [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      const double ai = a2.at_flat(i) * a2.at_flat(i);
      const double* drow = ddata + i * m;
      double* orow = odata + i * m;
      for (int64_t j = 0; j < m; ++j) {
        const double bj = b2.at_flat(j) * b2.at_flat(j);
        orow[j] = std::max(0.0, ai + bj - 2.0 * drow[j]);
      }
    }
  });
  return out;
}

Matrix AddRowBroadcast(const Matrix& a, const Matrix& row) {
  GRADGCL_CHECK(row.rows() == 1 && row.cols() == a.cols());
  const int64_t cols = a.cols();
  Matrix out = a;
  const double* rdata = row.data();
  double* odata = out.data();
  ParallelFor(0, a.rows(), RowGrain(cols), [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      double* orow = odata + i * cols;
      for (int64_t j = 0; j < cols; ++j) orow[j] += rdata[j];
    }
  });
  return out;
}

Matrix ScaleRows(const Matrix& a, const Matrix& scale) {
  GRADGCL_CHECK(scale.rows() == a.rows() && scale.cols() == 1);
  const int64_t cols = a.cols();
  Matrix out = a;
  const double* sdata = scale.data();
  double* odata = out.data();
  ParallelFor(0, a.rows(), RowGrain(cols), [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      const double s = sdata[i];
      double* orow = odata + i * cols;
      for (int64_t j = 0; j < cols; ++j) orow[j] *= s;
    }
  });
  return out;
}

Matrix VStack(const Matrix& a, const Matrix& b) {
  GRADGCL_CHECK(a.cols() == b.cols());
  Matrix out = Matrix::Uninitialized(a.rows() + b.rows(), a.cols());
  std::copy(a.data(), a.data() + a.size(), out.data());
  std::copy(b.data(), b.data() + b.size(), out.data() + a.size());
  return out;
}

Matrix HStack(const Matrix& a, const Matrix& b) {
  GRADGCL_CHECK(a.rows() == b.rows());
  Matrix out = Matrix::Uninitialized(a.rows(), a.cols() + b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < a.cols(); ++j) out(i, j) = a(i, j);
    for (int j = 0; j < b.cols(); ++j) out(i, a.cols() + j) = b(i, j);
  }
  return out;
}

}  // namespace gradgcl
