#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

namespace gradgcl {

Matrix MatMul(const Matrix& a, const Matrix& b) {
  GRADGCL_CHECK_MSG(a.cols() == b.rows(), "MatMul shape mismatch");
  const int n = a.rows(), k = a.cols(), m = b.cols();
  Matrix out(n, m, 0.0);
  // ikj loop order: streams through b and out rows contiguously.
  for (int i = 0; i < n; ++i) {
    const double* arow = a.data() + static_cast<size_t>(i) * k;
    double* orow = out.data() + static_cast<size_t>(i) * m;
    for (int kk = 0; kk < k; ++kk) {
      const double av = arow[kk];
      if (av == 0.0) continue;
      const double* brow = b.data() + static_cast<size_t>(kk) * m;
      for (int j = 0; j < m; ++j) orow[j] += av * brow[j];
    }
  }
  return out;
}

Matrix MatMulTransA(const Matrix& a, const Matrix& b) {
  GRADGCL_CHECK_MSG(a.rows() == b.rows(), "MatMulTransA shape mismatch");
  const int n = a.cols(), k = a.rows(), m = b.cols();
  Matrix out(n, m, 0.0);
  for (int kk = 0; kk < k; ++kk) {
    const double* arow = a.data() + static_cast<size_t>(kk) * n;
    const double* brow = b.data() + static_cast<size_t>(kk) * m;
    for (int i = 0; i < n; ++i) {
      const double av = arow[i];
      if (av == 0.0) continue;
      double* orow = out.data() + static_cast<size_t>(i) * m;
      for (int j = 0; j < m; ++j) orow[j] += av * brow[j];
    }
  }
  return out;
}

Matrix MatMulTransB(const Matrix& a, const Matrix& b) {
  GRADGCL_CHECK_MSG(a.cols() == b.cols(), "MatMulTransB shape mismatch");
  const int n = a.rows(), k = a.cols(), m = b.rows();
  Matrix out(n, m);
  for (int i = 0; i < n; ++i) {
    const double* arow = a.data() + static_cast<size_t>(i) * k;
    for (int j = 0; j < m; ++j) {
      const double* brow = b.data() + static_cast<size_t>(j) * k;
      double dot = 0.0;
      for (int kk = 0; kk < k; ++kk) dot += arow[kk] * brow[kk];
      out(i, j) = dot;
    }
  }
  return out;
}

Matrix Hadamard(const Matrix& a, const Matrix& b) {
  GRADGCL_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  Matrix out(a.rows(), a.cols());
  for (int i = 0; i < a.size(); ++i) out.at_flat(i) = a.at_flat(i) * b.at_flat(i);
  return out;
}

Matrix operator+(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  out += b;
  return out;
}

Matrix operator-(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  out -= b;
  return out;
}

Matrix operator*(const Matrix& a, double s) {
  Matrix out = a;
  out *= s;
  return out;
}

Matrix operator*(double s, const Matrix& a) { return a * s; }

Matrix Map(const Matrix& a, const std::function<double(double)>& fn) {
  Matrix out(a.rows(), a.cols());
  for (int i = 0; i < a.size(); ++i) out.at_flat(i) = fn(a.at_flat(i));
  return out;
}

Matrix Exp(const Matrix& a) {
  return Map(a, [](double v) { return std::exp(v); });
}

Matrix Log(const Matrix& a) {
  return Map(a, [](double v) { return std::log(v); });
}

Matrix Tanh(const Matrix& a) {
  return Map(a, [](double v) { return std::tanh(v); });
}

Matrix Sqrt(const Matrix& a) {
  return Map(a, [](double v) { return std::sqrt(v); });
}

Matrix Abs(const Matrix& a) {
  return Map(a, [](double v) { return std::abs(v); });
}

Matrix Relu(const Matrix& a) {
  return Map(a, [](double v) { return v > 0.0 ? v : 0.0; });
}

Matrix RowSum(const Matrix& a) {
  Matrix out(a.rows(), 1, 0.0);
  for (int i = 0; i < a.rows(); ++i) {
    double sum = 0.0;
    for (int j = 0; j < a.cols(); ++j) sum += a(i, j);
    out(i, 0) = sum;
  }
  return out;
}

Matrix RowMean(const Matrix& a) {
  GRADGCL_CHECK(a.cols() > 0);
  Matrix out = RowSum(a);
  out *= 1.0 / a.cols();
  return out;
}

Matrix RowMax(const Matrix& a) {
  GRADGCL_CHECK(a.cols() > 0);
  Matrix out(a.rows(), 1);
  for (int i = 0; i < a.rows(); ++i) {
    double best = a(i, 0);
    for (int j = 1; j < a.cols(); ++j) best = std::max(best, a(i, j));
    out(i, 0) = best;
  }
  return out;
}

Matrix ColSum(const Matrix& a) {
  Matrix out(1, a.cols(), 0.0);
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < a.cols(); ++j) out(0, j) += a(i, j);
  }
  return out;
}

Matrix ColMean(const Matrix& a) {
  GRADGCL_CHECK(a.rows() > 0);
  Matrix out = ColSum(a);
  out *= 1.0 / a.rows();
  return out;
}

Matrix RowNorms(const Matrix& a) {
  Matrix out(a.rows(), 1);
  for (int i = 0; i < a.rows(); ++i) {
    double sum = 0.0;
    for (int j = 0; j < a.cols(); ++j) sum += a(i, j) * a(i, j);
    out(i, 0) = std::sqrt(sum);
  }
  return out;
}

Matrix RowNormalize(const Matrix& a, double eps) {
  Matrix out = a;
  for (int i = 0; i < a.rows(); ++i) {
    double sum = 0.0;
    for (int j = 0; j < a.cols(); ++j) sum += a(i, j) * a(i, j);
    const double norm = std::sqrt(sum);
    if (norm < eps) continue;
    const double inv = 1.0 / norm;
    for (int j = 0; j < a.cols(); ++j) out(i, j) *= inv;
  }
  return out;
}

Matrix RowSoftmax(const Matrix& a) {
  GRADGCL_CHECK(a.cols() > 0);
  Matrix out(a.rows(), a.cols());
  for (int i = 0; i < a.rows(); ++i) {
    double mx = a(i, 0);
    for (int j = 1; j < a.cols(); ++j) mx = std::max(mx, a(i, j));
    double z = 0.0;
    for (int j = 0; j < a.cols(); ++j) {
      const double e = std::exp(a(i, j) - mx);
      out(i, j) = e;
      z += e;
    }
    const double inv = 1.0 / z;
    for (int j = 0; j < a.cols(); ++j) out(i, j) *= inv;
  }
  return out;
}

Matrix CosineSimilarityMatrix(const Matrix& a, const Matrix& b) {
  GRADGCL_CHECK(a.cols() == b.cols());
  return MatMulTransB(RowNormalize(a), RowNormalize(b));
}

Matrix SquaredDistanceMatrix(const Matrix& a, const Matrix& b) {
  GRADGCL_CHECK(a.cols() == b.cols());
  const Matrix dots = MatMulTransB(a, b);
  Matrix a2 = RowNorms(a);
  Matrix b2 = RowNorms(b);
  Matrix out(a.rows(), b.rows());
  for (int i = 0; i < a.rows(); ++i) {
    const double ai = a2(i, 0) * a2(i, 0);
    for (int j = 0; j < b.rows(); ++j) {
      const double bj = b2(j, 0) * b2(j, 0);
      out(i, j) = std::max(0.0, ai + bj - 2.0 * dots(i, j));
    }
  }
  return out;
}

Matrix AddRowBroadcast(const Matrix& a, const Matrix& row) {
  GRADGCL_CHECK(row.rows() == 1 && row.cols() == a.cols());
  Matrix out = a;
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < a.cols(); ++j) out(i, j) += row(0, j);
  }
  return out;
}

Matrix ScaleRows(const Matrix& a, const Matrix& scale) {
  GRADGCL_CHECK(scale.rows() == a.rows() && scale.cols() == 1);
  Matrix out = a;
  for (int i = 0; i < a.rows(); ++i) {
    const double s = scale(i, 0);
    for (int j = 0; j < a.cols(); ++j) out(i, j) *= s;
  }
  return out;
}

Matrix VStack(const Matrix& a, const Matrix& b) {
  GRADGCL_CHECK(a.cols() == b.cols());
  Matrix out(a.rows() + b.rows(), a.cols());
  std::copy(a.data(), a.data() + a.size(), out.data());
  std::copy(b.data(), b.data() + b.size(), out.data() + a.size());
  return out;
}

Matrix HStack(const Matrix& a, const Matrix& b) {
  GRADGCL_CHECK(a.rows() == b.rows());
  Matrix out(a.rows(), a.cols() + b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < a.cols(); ++j) out(i, j) = a(i, j);
    for (int j = 0; j < b.cols(); ++j) out(i, a.cols() + j) = b(i, j);
  }
  return out;
}

}  // namespace gradgcl
