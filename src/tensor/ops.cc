#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "common/parallel.h"
#include "tensor/simd.h"

namespace gradgcl {

namespace {

// Row grain so each chunk carries at least ~2^15 multiply-adds.
int64_t RowGrain(int64_t work_per_row) {
  constexpr int64_t kMinWorkPerChunk = 1 << 15;
  if (work_per_row <= 0) return 1;
  const int64_t grain = kMinWorkPerChunk / work_per_row;
  return grain < 1 ? 1 : grain;
}

// Cost-model hint (common/parallel.h) for transcendental-heavy
// elementwise work: exp/log/tanh cost roughly this many FLOP
// equivalents each.
constexpr int64_t kTranscendentalCost = 16;

// GEMM tile grains for ParallelFor2D: at least 8 output rows (two
// 3/2-row microkernel passes plus slack) and 64 output columns (eight
// kNr=8 B panels) per tile, so each tile amortizes its panel packs.
constexpr int64_t kGemmRowGrain = 8;
constexpr int64_t kGemmColGrain = 64;

}  // namespace

// The dense products below parallelize over 2-D (row-strip x
// column-strip) tiles of the output and hand each tile to the active
// SIMD kernel table (tensor/simd.h) via pointer offsets — C(r0:r1,
// c0:c1) = A(r0:r1, :) * B(:, c0:c1) with the original leading
// dimensions. Per output element the accumulation order is fixed by
// the kernel's blocking — kk ascending, never split across tiles, and
// independent of which SIMD lane or tile the element lands in — so
// results are bit-identical for any thread count in either SIMD mode.
// Each ParallelFor2D passes cost_per_cell = 2k (one madd per k step),
// which keeps small products (matmul_64/128) on the direct serial
// call. Matrix buffers are 64-byte aligned by construction
// (tensor/pool.cc); tile-offset pointers may not be, so the kernels
// use unaligned vector loads.

Matrix MatMul(const Matrix& a, const Matrix& b) {
  GRADGCL_CHECK_MSG(a.cols() == b.rows(), "MatMul shape mismatch");
  const int64_t n = a.rows(), k = a.cols(), m = b.cols();
  Matrix out = Matrix::Uninitialized(a.rows(), b.cols());
  const double* adata = a.data();
  const double* bdata = b.data();
  double* odata = out.data();
  GRADGCL_DCHECK(simd::IsAligned64(adata) && simd::IsAligned64(bdata) &&
                 simd::IsAligned64(odata));
  const simd::KernelTable& kt = simd::Active();
  ParallelFor2D(n, m, kGemmRowGrain, kGemmColGrain, /*cost_per_cell=*/2 * k,
                [&](int64_t r0, int64_t r1, int64_t c0, int64_t c1) {
                  kt.gemm(adata + r0 * k, k, bdata + c0, m,
                          odata + r0 * m + c0, m, r1 - r0, k, c1 - c0,
                          /*row_scale=*/nullptr, /*post=*/1.0);
                });
  return out;
}

Matrix MatMulTransA(const Matrix& a, const Matrix& b) {
  GRADGCL_CHECK_MSG(a.rows() == b.rows(), "MatMulTransA shape mismatch");
  const int64_t n = a.cols(), k = a.rows(), m = b.cols();
  Matrix out = Matrix::Uninitialized(a.cols(), b.cols());
  const double* adata = a.data();
  const double* bdata = b.data();
  double* odata = out.data();
  GRADGCL_DCHECK(simd::IsAligned64(adata) && simd::IsAligned64(bdata) &&
                 simd::IsAligned64(odata));
  const simd::KernelTable& kt = simd::Active();
  // Each tile owns output rows [r0, r1) (a column strip of a) and
  // output columns [c0, c1) (a column strip of b).
  ParallelFor2D(n, m, kGemmRowGrain, kGemmColGrain, /*cost_per_cell=*/2 * k,
                [&](int64_t r0, int64_t r1, int64_t c0, int64_t c1) {
                  kt.gemm_transa(adata, n, bdata + c0, m, odata + c0, m, r0,
                                 r1, k, c1 - c0);
                });
  return out;
}

Matrix MatMulTransB(const Matrix& a, const Matrix& b) {
  GRADGCL_CHECK_MSG(a.cols() == b.cols(), "MatMulTransB shape mismatch");
  const int64_t n = a.rows(), k = a.cols(), m = b.rows();
  Matrix out = Matrix::Uninitialized(a.rows(), b.rows());
  const double* adata = a.data();
  const double* bdata = b.data();
  double* odata = out.data();
  GRADGCL_DCHECK(simd::IsAligned64(adata) && simd::IsAligned64(bdata) &&
                 simd::IsAligned64(odata));
  const simd::KernelTable& kt = simd::Active();
  // Output column c is b's row c, so a column tile starts at row c0 of
  // b — each output element is one complete dot product.
  ParallelFor2D(n, m, kGemmRowGrain, kGemmColGrain, /*cost_per_cell=*/2 * k,
                [&](int64_t r0, int64_t r1, int64_t c0, int64_t c1) {
                  kt.gemm_transb(adata + r0 * k, bdata + c0 * k,
                                 odata + r0 * m + c0, m, r1 - r0, k, c1 - c0,
                                 /*scale=*/1.0);
                });
  return out;
}

Matrix MatMulTransBScaled(const Matrix& a, const Matrix& b, double scale) {
  GRADGCL_CHECK_MSG(a.cols() == b.cols(), "MatMulTransBScaled shape mismatch");
  const int64_t n = a.rows(), k = a.cols(), m = b.rows();
  Matrix out = Matrix::Uninitialized(a.rows(), b.rows());
  const double* adata = a.data();
  const double* bdata = b.data();
  double* odata = out.data();
  const simd::KernelTable& kt = simd::Active();
  // Same dot kernel as MatMulTransB; each dot product completes before
  // the scale is applied, so the bits match ScalarMul(MatMulTransB(a,
  // b)) in either SIMD mode.
  ParallelFor2D(n, m, kGemmRowGrain, kGemmColGrain, /*cost_per_cell=*/2 * k,
                [&](int64_t r0, int64_t r1, int64_t c0, int64_t c1) {
                  kt.gemm_transb(adata + r0 * k, bdata + c0 * k,
                                 odata + r0 * m + c0, m, r1 - r0, k, c1 - c0,
                                 scale);
                });
  return out;
}

void MaskedExpRowSum(const Matrix& s, Matrix* exp_out, Matrix* rowsum_out) {
  GRADGCL_CHECK(s.rows() == s.cols());
  GRADGCL_CHECK(exp_out != nullptr && rowsum_out != nullptr);
  const int64_t n = s.rows();
  Matrix e = Matrix::Uninitialized(s.rows(), s.cols());
  Matrix rs = Matrix::Uninitialized(s.rows(), 1);
  const double* sdata = s.data();
  double* edata = e.data();
  double* rdata = rs.data();
  const simd::KernelTable& kt = simd::Active();
  // The unfused path stores exp(s_ii) * 0.0 == +0.0 on the diagonal and
  // its RowSum adds that zero in place; summing the stored row with the
  // same `sum` kernel RowSum uses reproduces those bits exactly.
  ParallelFor(0, n, RowGrain(n), /*cost_per_iter=*/n * kTranscendentalCost,
              [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      const double* srow = sdata + i * n;
      double* erow = edata + i * n;
      for (int64_t j = 0; j < n; ++j) {
        erow[j] = j == i ? 0.0 : std::exp(srow[j]);
      }
      rdata[i] = kt.sum(erow, n);
    }
  });
  *exp_out = std::move(e);
  *rowsum_out = std::move(rs);
}

Matrix ScaleRowsMatMulScaled(const Matrix& a, const Matrix& row_scale,
                             const Matrix& b, double post) {
  GRADGCL_CHECK(row_scale.rows() == a.rows() && row_scale.cols() == 1);
  GRADGCL_CHECK_MSG(a.cols() == b.rows(), "ScaleRowsMatMulScaled mismatch");
  const int64_t n = a.rows(), k = a.cols(), m = b.cols();
  Matrix out = Matrix::Uninitialized(a.rows(), b.cols());
  const double* adata = a.data();
  const double* sdata = row_scale.data();
  const double* bdata = b.data();
  double* odata = out.data();
  const simd::KernelTable& kt = simd::Active();
  // MatMul's gemm kernel with the row scale folded into av (the product
  // a(i, kk) * s_i is rounded first, exactly like the stored ScaleRows
  // intermediate) and the post scale applied once per output element
  // after its accumulation completes — bit-identical to
  // ScalarMul(MatMul(ScaleRows(a, row_scale), b), post) in either SIMD
  // mode.
  ParallelFor2D(n, m, kGemmRowGrain, kGemmColGrain, /*cost_per_cell=*/2 * k,
                [&](int64_t r0, int64_t r1, int64_t c0, int64_t c1) {
                  kt.gemm(adata + r0 * k, k, bdata + c0, m,
                          odata + r0 * m + c0, m, r1 - r0, k, c1 - c0,
                          sdata + r0, post);
                });
  return out;
}

Matrix OffDiagSigmoid(const Matrix& s) {
  GRADGCL_CHECK(s.rows() == s.cols());
  const int64_t n = s.rows();
  Matrix out = Matrix::Uninitialized(s.rows(), s.cols());
  const double* sdata = s.data();
  double* odata = out.data();
  // sigmoid(s_ii) * 0.0 == +0.0 in the unfused mask path.
  ParallelFor(0, n, RowGrain(n), /*cost_per_iter=*/n * kTranscendentalCost,
              [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      const double* srow = sdata + i * n;
      double* orow = odata + i * n;
      for (int64_t j = 0; j < n; ++j) {
        orow[j] = j == i ? 0.0 : 1.0 / (1.0 + std::exp(-srow[j]));
      }
    }
  });
  return out;
}

Matrix Hadamard(const Matrix& a, const Matrix& b) {
  GRADGCL_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  Matrix out = Matrix::Uninitialized(a.rows(), a.cols());
  const double* adata = a.data();
  const double* bdata = b.data();
  double* odata = out.data();
  const simd::KernelTable& kt = simd::Active();
  ParallelFor(0, a.size(), kElementwiseGrain, /*cost_per_iter=*/2,
              [&](int64_t begin, int64_t end) {
                kt.hadamard(odata + begin, adata + begin, bdata + begin,
                            end - begin);
              });
  return out;
}

Matrix operator+(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  out += b;
  return out;
}

Matrix operator-(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  out -= b;
  return out;
}

Matrix operator*(const Matrix& a, double s) {
  Matrix out = a;
  out *= s;
  return out;
}

Matrix operator*(double s, const Matrix& a) { return a * s; }

Matrix Exp(const Matrix& a) {
  return Map(a, [](double v) { return std::exp(v); }, kTranscendentalCost);
}

Matrix Log(const Matrix& a) {
  return Map(a, [](double v) { return std::log(v); }, kTranscendentalCost);
}

Matrix Tanh(const Matrix& a) {
  return Map(a, [](double v) { return std::tanh(v); }, kTranscendentalCost);
}

Matrix Sqrt(const Matrix& a) {
  return Map(a, [](double v) { return std::sqrt(v); }, kTranscendentalCost);
}

Matrix Abs(const Matrix& a) {
  return Map(a, [](double v) { return std::abs(v); });
}

Matrix Relu(const Matrix& a) {
  return Map(a, [](double v) { return v > 0.0 ? v : 0.0; });
}

// Row-wise kernels parallelize over rows: every output element is a
// reduction along one row, computed entirely inside one chunk with the
// active table's fixed lane order, so any thread count produces
// identical bits. Column-wise reductions (ColSum/ColMean) use a
// fixed-shape binary reduction tree over 64-row leaf blocks — the tree
// shape depends only on the row count, never on the thread count, so
// they parallelize without breaking the bit-identity contract.

Matrix RowSum(const Matrix& a) {
  const int64_t cols = a.cols();
  Matrix out = Matrix::Uninitialized(a.rows(), 1);
  const double* adata = a.data();
  double* odata = out.data();
  const simd::KernelTable& kt = simd::Active();
  ParallelFor(0, a.rows(), RowGrain(cols), /*cost_per_iter=*/cols,
              [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      odata[i] = kt.sum(adata + i * cols, cols);
    }
  });
  return out;
}

Matrix RowMean(const Matrix& a) {
  GRADGCL_CHECK(a.cols() > 0);
  Matrix out = RowSum(a);
  out *= 1.0 / a.cols();
  return out;
}

Matrix RowMax(const Matrix& a) {
  GRADGCL_CHECK(a.cols() > 0);
  const int64_t cols = a.cols();
  Matrix out = Matrix::Uninitialized(a.rows(), 1);
  const double* adata = a.data();
  double* odata = out.data();
  ParallelFor(0, a.rows(), RowGrain(cols), /*cost_per_iter=*/cols,
              [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      const double* arow = adata + i * cols;
      double best = arow[0];
      for (int64_t j = 1; j < cols; ++j) best = std::max(best, arow[j]);
      odata[i] = best;
    }
  });
  return out;
}

// Leaf size of the ColSum reduction tree. A pure function of the
// matrix shape (NOT the thread count): rows are summed i-ascending
// inside fixed 64-row blocks, and block partials combine pairwise —
// ((b0+b1)+(b2+b3))+... — the same fixed-shape combine the SIMD lane
// chains pin. Leaves and combine strips may execute on any thread in
// any order; the per-column reduction order never changes, so ColSum
// is bit-identical for every pool size (including 1) and both values
// of GRADGCL_POOL.
namespace {
constexpr int64_t kColReduceBlock = 64;
}  // namespace

Matrix ColSum(const Matrix& a) {
  const int64_t rows = a.rows(), cols = a.cols();
  Matrix out = Matrix::Uninitialized(1, cols);
  double* odata = out.data();
  if (rows == 0) {
    std::fill(odata, odata + cols, 0.0);
    return out;
  }
  const double* adata = a.data();
  const int64_t nblocks = (rows + kColReduceBlock - 1) / kColReduceBlock;
  // Scratch rides the pool inside a TapeScope, keeping the training
  // step zero-alloc.
  Matrix partial = Matrix::Uninitialized(nblocks, cols);
  double* pdata = partial.data();
  // Leaves: block b sums its rows i-ascending into one partial row.
  ParallelFor(0, nblocks, 1, /*cost_per_iter=*/kColReduceBlock * cols,
              [&](int64_t b0, int64_t b1) {
    for (int64_t b = b0; b < b1; ++b) {
      const int64_t r0 = b * kColReduceBlock;
      const int64_t r1 = std::min(rows, r0 + kColReduceBlock);
      double* prow = pdata + b * cols;
      std::copy(adata + r0 * cols, adata + (r0 + 1) * cols, prow);
      for (int64_t i = r0 + 1; i < r1; ++i) {
        const double* arow = adata + i * cols;
        for (int64_t j = 0; j < cols; ++j) prow[j] += arow[j];
      }
    }
  });
  // Tree combine: each column strip walks the whole fixed tree
  // (stride-doubling pairwise adds); per-column order is independent
  // of the strip partition.
  ParallelFor(0, cols, 256, /*cost_per_iter=*/nblocks,
              [&](int64_t c0, int64_t c1) {
    for (int64_t stride = 1; stride < nblocks; stride *= 2) {
      for (int64_t b = 0; b + stride < nblocks; b += 2 * stride) {
        double* dst = pdata + b * cols;
        const double* src = pdata + (b + stride) * cols;
        for (int64_t j = c0; j < c1; ++j) dst[j] += src[j];
      }
    }
  });
  std::copy(pdata, pdata + cols, odata);
  return out;
}

Matrix ColMean(const Matrix& a) {
  GRADGCL_CHECK(a.rows() > 0);
  Matrix out = ColSum(a);
  out *= 1.0 / a.rows();
  return out;
}

Matrix RowNorms(const Matrix& a) {
  const int64_t cols = a.cols();
  Matrix out = Matrix::Uninitialized(a.rows(), 1);
  const double* adata = a.data();
  double* odata = out.data();
  const simd::KernelTable& kt = simd::Active();
  ParallelFor(0, a.rows(), RowGrain(cols), /*cost_per_iter=*/2 * cols,
              [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      odata[i] = std::sqrt(kt.sumsq(adata + i * cols, cols));
    }
  });
  return out;
}

Matrix RowNormalize(const Matrix& a, double eps) {
  const int64_t cols = a.cols();
  Matrix out = a;
  double* odata = out.data();
  const simd::KernelTable& kt = simd::Active();
  // Same sumsq kernel as RowNorms, so both see the same norm bits.
  ParallelFor(0, a.rows(), RowGrain(cols), /*cost_per_iter=*/3 * cols,
              [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      double* orow = odata + i * cols;
      const double norm = std::sqrt(kt.sumsq(orow, cols));
      if (norm < eps) continue;
      kt.scale(orow, cols, 1.0 / norm);
    }
  });
  return out;
}

Matrix RowSoftmax(const Matrix& a) {
  GRADGCL_CHECK(a.cols() > 0);
  const int64_t cols = a.cols();
  Matrix out = Matrix::Uninitialized(a.rows(), a.cols());
  const double* adata = a.data();
  double* odata = out.data();
  ParallelFor(0, a.rows(), RowGrain(cols),
              /*cost_per_iter=*/cols * (kTranscendentalCost + 4),
              [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      const double* arow = adata + i * cols;
      double* orow = odata + i * cols;
      double mx = arow[0];
      for (int64_t j = 1; j < cols; ++j) mx = std::max(mx, arow[j]);
      double z = 0.0;
      for (int64_t j = 0; j < cols; ++j) {
        const double e = std::exp(arow[j] - mx);
        orow[j] = e;
        z += e;
      }
      const double inv = 1.0 / z;
      for (int64_t j = 0; j < cols; ++j) orow[j] *= inv;
    }
  });
  return out;
}

Matrix CosineSimilarityMatrix(const Matrix& a, const Matrix& b) {
  GRADGCL_CHECK(a.cols() == b.cols());
  return MatMulTransB(RowNormalize(a), RowNormalize(b));
}

Matrix SquaredDistanceMatrix(const Matrix& a, const Matrix& b) {
  GRADGCL_CHECK(a.cols() == b.cols());
  const Matrix dots = MatMulTransB(a, b);
  const Matrix a2 = RowNorms(a);
  const Matrix b2 = RowNorms(b);
  const int64_t m = b.rows();
  Matrix out = Matrix::Uninitialized(a.rows(), b.rows());
  const double* ddata = dots.data();
  double* odata = out.data();
  ParallelFor(0, a.rows(), RowGrain(m), /*cost_per_iter=*/6 * m,
              [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      const double ai = a2.at_flat(i) * a2.at_flat(i);
      const double* drow = ddata + i * m;
      double* orow = odata + i * m;
      for (int64_t j = 0; j < m; ++j) {
        const double bj = b2.at_flat(j) * b2.at_flat(j);
        orow[j] = std::max(0.0, ai + bj - 2.0 * drow[j]);
      }
    }
  });
  return out;
}

Matrix AddRowBroadcast(const Matrix& a, const Matrix& row) {
  GRADGCL_CHECK(row.rows() == 1 && row.cols() == a.cols());
  const int64_t cols = a.cols();
  Matrix out = a;
  const double* rdata = row.data();
  double* odata = out.data();
  const simd::KernelTable& kt = simd::Active();
  ParallelFor(0, a.rows(), RowGrain(cols), /*cost_per_iter=*/cols,
              [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      kt.add(odata + i * cols, rdata, cols);
    }
  });
  return out;
}

Matrix SegmentSum(const Matrix& a, const std::vector<int>& segments,
                  int num_segments) {
  GRADGCL_CHECK(static_cast<int>(segments.size()) == a.rows());
  Matrix out(num_segments, a.cols(), 0.0);
  const int64_t cols = a.cols();
  const double* src = a.data();
  double* dst = out.data();
  for (int i = 0; i < a.rows(); ++i) {
    const int s = segments[i];
    GRADGCL_CHECK(s >= 0 && s < num_segments);
    const double* row = src + i * cols;
    double* acc = dst + s * cols;
    for (int64_t j = 0; j < cols; ++j) acc[j] += row[j];
  }
  return out;
}

Matrix SegmentMean(const Matrix& a, const std::vector<int>& segments,
                   int num_segments) {
  GRADGCL_CHECK(static_cast<int>(segments.size()) == a.rows());
  std::vector<double> counts(num_segments, 0.0);
  for (int s : segments) {
    GRADGCL_CHECK(s >= 0 && s < num_segments);
    counts[s] += 1.0;
  }
  Matrix out = SegmentSum(a, segments, num_segments);
  const int64_t cols = a.cols();
  double* dst = out.data();
  for (int s = 0; s < num_segments; ++s) {
    if (counts[s] > 0.0) {
      const double inv = 1.0 / counts[s];
      double* row = dst + s * cols;
      for (int64_t j = 0; j < cols; ++j) row[j] *= inv;
    }
  }
  return out;
}

Matrix ScaleRows(const Matrix& a, const Matrix& scale) {
  GRADGCL_CHECK(scale.rows() == a.rows() && scale.cols() == 1);
  const int64_t cols = a.cols();
  Matrix out = a;
  const double* sdata = scale.data();
  double* odata = out.data();
  const simd::KernelTable& kt = simd::Active();
  ParallelFor(0, a.rows(), RowGrain(cols), /*cost_per_iter=*/cols,
              [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      kt.scale(odata + i * cols, cols, sdata[i]);
    }
  });
  return out;
}

Matrix VStack(const Matrix& a, const Matrix& b) {
  GRADGCL_CHECK(a.cols() == b.cols());
  Matrix out = Matrix::Uninitialized(a.rows() + b.rows(), a.cols());
  std::copy(a.data(), a.data() + a.size(), out.data());
  std::copy(b.data(), b.data() + b.size(), out.data() + a.size());
  return out;
}

Matrix HStack(const Matrix& a, const Matrix& b) {
  GRADGCL_CHECK(a.rows() == b.rows());
  Matrix out = Matrix::Uninitialized(a.rows(), a.cols() + b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < a.cols(); ++j) out(i, j) = a(i, j);
    for (int j = 0; j < b.cols(); ++j) out(i, a.cols() + j) = b(i, j);
  }
  return out;
}

}  // namespace gradgcl
