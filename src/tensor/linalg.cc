#include "tensor/linalg.h"

#include <algorithm>
#include <cmath>

#include "tensor/ops.h"

namespace gradgcl {

EigenResult SymmetricEigen(const Matrix& a, int max_sweeps, double tol) {
  const int n = a.rows();
  GRADGCL_CHECK_MSG(a.cols() == n, "SymmetricEigen requires a square matrix");
  Matrix d = a;                 // working copy, converges to diagonal
  Matrix v = Matrix::Identity(n);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    // Sum of magnitudes of off-diagonal elements (upper triangle).
    double off = 0.0;
    for (int p = 0; p < n - 1; ++p) {
      for (int q = p + 1; q < n; ++q) off += std::abs(d(p, q));
    }
    if (off < tol) break;

    for (int p = 0; p < n - 1; ++p) {
      for (int q = p + 1; q < n; ++q) {
        const double apq = d(p, q);
        if (std::abs(apq) < tol * 1e-3) continue;
        const double app = d(p, p);
        const double aqq = d(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        // Stable tangent of the rotation angle.
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        // Apply the Jacobi rotation J(p, q, θ) on both sides of d.
        for (int k = 0; k < n; ++k) {
          const double dkp = d(k, p);
          const double dkq = d(k, q);
          d(k, p) = c * dkp - s * dkq;
          d(k, q) = s * dkp + c * dkq;
        }
        for (int k = 0; k < n; ++k) {
          const double dpk = d(p, k);
          const double dqk = d(q, k);
          d(p, k) = c * dpk - s * dqk;
          d(q, k) = s * dpk + c * dqk;
        }
        // Accumulate eigenvectors.
        for (int k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs by descending eigenvalue.
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](int i, int j) { return d(i, i) > d(j, j); });

  EigenResult result;
  result.eigenvalues.resize(n);
  result.eigenvectors = Matrix(n, n);
  for (int k = 0; k < n; ++k) {
    result.eigenvalues[k] = d(order[k], order[k]);
    for (int r = 0; r < n; ++r) result.eigenvectors(r, k) = v(r, order[k]);
  }
  return result;
}

std::vector<double> SingularValues(const Matrix& a) {
  GRADGCL_CHECK(a.rows() > 0 && a.cols() > 0);
  // Work with the smaller Gram matrix.
  const bool tall = a.rows() >= a.cols();
  const Matrix gram = tall ? MatMulTransA(a, a) : MatMulTransB(a, a);
  EigenResult eig = SymmetricEigen(gram);
  std::vector<double> sv(eig.eigenvalues.size());
  for (size_t i = 0; i < sv.size(); ++i) {
    sv[i] = std::sqrt(std::max(0.0, eig.eigenvalues[i]));
  }
  return sv;
}

Matrix Covariance(const Matrix& x) {
  GRADGCL_CHECK(x.rows() > 0);
  const int n = x.rows();
  const Matrix mean = ColMean(x);
  Matrix centered = x;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < x.cols(); ++j) centered(i, j) -= mean(0, j);
  }
  Matrix cov = MatMulTransA(centered, centered);
  cov *= 1.0 / n;
  return cov;
}

std::vector<double> CovarianceSpectrum(const Matrix& representations) {
  const Matrix cov = Covariance(representations);
  EigenResult eig = SymmetricEigen(cov);
  // Covariance is PSD; clamp tiny negative numerical noise to zero.
  // For a symmetric PSD matrix, singular values equal eigenvalues.
  std::vector<double> spectrum = eig.eigenvalues;
  for (double& v : spectrum) v = std::max(0.0, v);
  std::sort(spectrum.begin(), spectrum.end(), std::greater<double>());
  return spectrum;
}

int RankAtThreshold(const std::vector<double>& values, double threshold) {
  if (values.empty()) return 0;
  const double mx = *std::max_element(values.begin(), values.end());
  if (mx <= 0.0) return 0;
  int count = 0;
  for (double v : values) {
    if (v >= threshold * mx) ++count;
  }
  return count;
}

double EffectiveRank(const std::vector<double>& values) {
  double total = 0.0;
  for (double v : values) total += std::max(0.0, v);
  if (total <= 0.0) return 0.0;
  double entropy = 0.0;
  for (double v : values) {
    if (v <= 0.0) continue;
    const double p = v / total;
    entropy -= p * std::log(p);
  }
  return std::exp(entropy);
}

Matrix SolveLinear(const Matrix& a, const Matrix& b) {
  const int n = a.rows();
  GRADGCL_CHECK(a.cols() == n && b.rows() == n);
  Matrix lu = a;
  Matrix x = b;
  std::vector<int> perm(n);
  for (int i = 0; i < n; ++i) perm[i] = i;

  for (int col = 0; col < n; ++col) {
    // Partial pivot.
    int pivot = col;
    for (int r = col + 1; r < n; ++r) {
      if (std::abs(lu(r, col)) > std::abs(lu(pivot, col))) pivot = r;
    }
    GRADGCL_CHECK_MSG(std::abs(lu(pivot, col)) > 1e-14,
                      "SolveLinear: singular matrix");
    if (pivot != col) {
      for (int j = 0; j < n; ++j) std::swap(lu(col, j), lu(pivot, j));
      for (int j = 0; j < x.cols(); ++j) std::swap(x(col, j), x(pivot, j));
    }
    const double inv = 1.0 / lu(col, col);
    for (int r = col + 1; r < n; ++r) {
      const double f = lu(r, col) * inv;
      if (f == 0.0) continue;
      for (int j = col; j < n; ++j) lu(r, j) -= f * lu(col, j);
      for (int j = 0; j < x.cols(); ++j) x(r, j) -= f * x(col, j);
    }
  }
  // Back substitution.
  for (int col = n - 1; col >= 0; --col) {
    const double inv = 1.0 / lu(col, col);
    for (int j = 0; j < x.cols(); ++j) {
      double sum = x(col, j);
      for (int k = col + 1; k < n; ++k) sum -= lu(col, k) * x(k, j);
      x(col, j) = sum * inv;
    }
  }
  return x;
}

}  // namespace gradgcl
