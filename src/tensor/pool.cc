#include "tensor/pool.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <new>
#include <vector>

#include "common/check.h"
#include "obs/metrics.h"

namespace gradgcl {

namespace {

// Every matrix buffer — pooled or plain heap — is allocated 64-byte
// aligned so the SIMD kernels (tensor/simd.h) can rely on cache-line-
// aligned base pointers. Alignment must match between allocation and
// deallocation (aligned operator delete).
constexpr std::align_val_t kBufferAlignment{64};

double* AlignedAlloc(size_t n) {
  return static_cast<double*>(
      ::operator new(n * sizeof(double), kBufferAlignment));
}

void AlignedFree(double* ptr) noexcept {
  ::operator delete(ptr, kBufferAlignment);
}

// Smallest bucket: 32 doubles (256 bytes). Anything smaller rounds up;
// the waste is capped and tiny matrices (scalars, n x 1 coefficient
// vectors) all share one hot bucket.
constexpr size_t kMinBucketDoubles = 32;

// log2 of the power-of-two capacity that fits n doubles.
int BucketIndex(size_t n) {
  size_t cap = kMinBucketDoubles;
  int idx = 5;  // 2^5 == kMinBucketDoubles
  while (cap < n) {
    cap <<= 1;
    ++idx;
  }
  return idx;
}

std::atomic<uint64_t> g_heap_allocs{0};
std::atomic<uint64_t> g_heap_bytes{0};
std::atomic<uint64_t> g_pool_hits{0};
std::atomic<uint64_t> g_acquires{0};

bool EnvFlagDefaultOn(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr) return true;
  return !(v[0] == '0' && v[1] == '\0');
}

bool EnvFlagDefaultOff(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && !(v[0] == '0' && v[1] == '\0');
}

std::atomic<bool> g_pooling_enabled{EnvFlagDefaultOn("GRADGCL_POOL")};
std::atomic<bool> g_fused_enabled{EnvFlagDefaultOn("GRADGCL_FUSED")};

bool ProfileAllocEnabled() {
  static const bool enabled = EnvFlagDefaultOff("GRADGCL_PROFILE_ALLOC");
  return enabled;
}

thread_local bool t_tape_scope_active = false;

// Registry handles for the per-step pool traffic, registered once on
// the first instrumented step (registration locks; Add is wait-free).
struct PoolMetrics {
  obs::Counter heap_allocs, heap_bytes, pool_hits, acquires;

  PoolMetrics() {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Instance();
    heap_allocs = reg.GetCounter("pool/heap_allocs");
    heap_bytes = reg.GetCounter("pool/heap_bytes");
    pool_hits = reg.GetCounter("pool/hits");
    acquires = reg.GetCounter("pool/acquires");
  }
};

PoolMetrics& GetPoolMetrics() {
  static PoolMetrics* metrics = new PoolMetrics;  // leaked
  return *metrics;
}

}  // namespace

struct MatrixPool::Impl {
  mutable std::mutex mu;
  // buckets[i] caches buffers of capacity 2^i doubles.
  std::vector<std::vector<double*>> buckets =
      std::vector<std::vector<double*>>(64);
};

MatrixPool::MatrixPool() : impl_(new Impl) {}

MatrixPool::~MatrixPool() { delete impl_; }

MatrixPool& MatrixPool::Instance() {
  // Leaked on purpose: Matrix destructors of objects with static
  // storage duration may release buffers after main() returns.
  static MatrixPool* pool = new MatrixPool;
  return *pool;
}

double* MatrixPool::Acquire(size_t n, size_t* capacity) {
  GRADGCL_CHECK(n > 0 && capacity != nullptr);
  const int idx = BucketIndex(n);
  const size_t cap = size_t{1} << idx;
  *capacity = cap;
  g_acquires.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    std::vector<double*>& bucket = impl_->buckets[idx];
    if (!bucket.empty()) {
      double* ptr = bucket.back();
      bucket.pop_back();
      g_pool_hits.fetch_add(1, std::memory_order_relaxed);
      return ptr;
    }
  }
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  g_heap_bytes.fetch_add(cap * sizeof(double), std::memory_order_relaxed);
  return AlignedAlloc(cap);
}

void MatrixPool::Release(double* ptr, size_t capacity) noexcept {
  const int idx = BucketIndex(capacity);
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->buckets[idx].push_back(ptr);
}

double* MatrixPool::HeapAlloc(size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  g_heap_bytes.fetch_add(n * sizeof(double), std::memory_order_relaxed);
  return AlignedAlloc(n);
}

void MatrixPool::HeapFree(double* ptr) noexcept { AlignedFree(ptr); }

PoolStats MatrixPool::stats() const {
  PoolStats s;
  s.heap_allocs = g_heap_allocs.load(std::memory_order_relaxed);
  s.heap_bytes = g_heap_bytes.load(std::memory_order_relaxed);
  s.pool_hits = g_pool_hits.load(std::memory_order_relaxed);
  s.acquires = g_acquires.load(std::memory_order_relaxed);
  return s;
}

void MatrixPool::ResetStats() {
  g_heap_allocs.store(0, std::memory_order_relaxed);
  g_heap_bytes.store(0, std::memory_order_relaxed);
  g_pool_hits.store(0, std::memory_order_relaxed);
  g_acquires.store(0, std::memory_order_relaxed);
}

void MatrixPool::Trim() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (std::vector<double*>& bucket : impl_->buckets) {
    for (double* ptr : bucket) AlignedFree(ptr);
    bucket.clear();
  }
}

size_t MatrixPool::CachedBuffers() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  size_t count = 0;
  for (const std::vector<double*>& bucket : impl_->buckets) {
    count += bucket.size();
  }
  return count;
}

size_t MatrixPool::CachedBytes() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  size_t bytes = 0;
  for (size_t i = 0; i < impl_->buckets.size(); ++i) {
    bytes += impl_->buckets[i].size() * (size_t{1} << i) * sizeof(double);
  }
  return bytes;
}

bool PoolingEnabled() {
  return g_pooling_enabled.load(std::memory_order_relaxed);
}

void SetPoolingEnabled(bool enabled) {
  g_pooling_enabled.store(enabled, std::memory_order_relaxed);
}

bool FusedKernelsEnabled() {
  return g_fused_enabled.load(std::memory_order_relaxed);
}

void SetFusedKernelsEnabled(bool enabled) {
  g_fused_enabled.store(enabled, std::memory_order_relaxed);
}

TapeScope::TapeScope() : prev_(t_tape_scope_active) {
  t_tape_scope_active = true;
  if (!prev_ && (ProfileAllocEnabled() || obs::MetricsEnabled())) {
    entry_ = MatrixPool::Instance().stats();
  }
}

TapeScope::~TapeScope() {
  t_tape_scope_active = prev_;
  if (prev_) return;
  const bool profile = ProfileAllocEnabled();
  const bool metrics = obs::MetricsEnabled();
  if (!profile && !metrics) return;
  const PoolStats now = MatrixPool::Instance().stats();
  if (metrics) {
    PoolMetrics& pm = GetPoolMetrics();
    pm.heap_allocs.Add(now.heap_allocs - entry_.heap_allocs);
    pm.heap_bytes.Add(now.heap_bytes - entry_.heap_bytes);
    pm.pool_hits.Add(now.pool_hits - entry_.pool_hits);
    pm.acquires.Add(now.acquires - entry_.acquires);
  }
  if (profile) {
    std::fprintf(stderr,
                 "[gradgcl alloc] step: %llu heap allocs (%llu bytes), "
                 "%llu pool hits\n",
                 static_cast<unsigned long long>(now.heap_allocs -
                                                 entry_.heap_allocs),
                 static_cast<unsigned long long>(now.heap_bytes -
                                                 entry_.heap_bytes),
                 static_cast<unsigned long long>(now.pool_hits -
                                                 entry_.pool_hits));
  }
}

bool TapeScope::Active() { return t_tape_scope_active; }

}  // namespace gradgcl
