// Portable SIMD kernel layer for the dense tensor hot path.
//
// One KernelTable per instruction set (scalar always; AVX2+FMA and NEON
// when the build compiles them in) holds the strip-level kernels that
// tensor/ops.cc, tensor/matrix.cc, and train/optimizer.cc run inside
// their ParallelFor chunks. Dispatch is resolved at runtime from CPU
// capability plus the GRADGCL_SIMD kill-switch (default on; =0 forces
// the scalar table), so a single binary stays portable — the default
// build never raises the baseline -march, only the isolated AVX2 TU is
// compiled with -mavx2 -mfma.
//
// Determinism contract (see DESIGN.md "Vectorization model"):
//  * Thread-count invariance is inherited from the callers: threads
//    partition output rows, every kernel below computes whole output
//    elements, so the reduction order never depends on the chunking.
//    This holds for every table — SIMD on or off.
//  * Within one table, the per-element rounding sequence is fixed:
//    - gemm/gemm_transa: one accumulation chain per output element,
//      k ascending. The scalar table rounds mul then add; the vector
//      tables use a single-rounded FMA per step (scalar remainders use
//      std::fma so edge tiles match interior tiles bit-for-bit).
//    - dot/sum/sumsq (and gemm_transb, which is a dot per element):
//      W independent lane chains stepping k by the vector width W,
//      combined as ((l0 + l1) + (l2 + l3)) for W = 4 (l0 + l1 for
//      W = 2), then the scalar tail appended in order.
//    - Elementwise kernels and the Adam update use only mul/add/sub/
//      div/sqrt — one rounding per operation, no FMA — so every table
//      produces bit-identical elementwise results.
//  * Fused kernels and their unfused compositions share these
//    primitives, so the fused == unfused bit-equality pinned by
//    tests/pool_test.cc holds in either SIMD mode.
//
//  * The int8 retrieval kernels (dot_i8 / l2_i8) accumulate in exact
//    integer arithmetic, so every table returns the identical int32 —
//    no reduction-order caveat at all.
//
// SIMD-vs-scalar agreement is therefore bitwise for elementwise kernels,
// the optimizer update, and the int8 kernels, and tight-ULP (different
// but fixed reduction orders) for GEMM and the f64 reductions;
// tests/simd_test.cc pins both.

#ifndef GRADGCL_TENSOR_SIMD_H_
#define GRADGCL_TENSOR_SIMD_H_

#include <cstdint>

namespace gradgcl {
namespace simd {

enum class Isa { kScalar, kAvx2, kNeon };

// "scalar" | "avx2" | "neon" (stable strings, used in bench JSON).
const char* IsaName(Isa isa);

// GRADGCL_SIMD kill-switch (default on; the env var seeds the initial
// value, SetEnabled flips it at runtime for A/B tests and benches).
bool Enabled();
void SetEnabled(bool enabled);

// Best ISA this binary was built with *and* the CPU supports; the
// scalar table when neither vector TU applies.
Isa CompiledIsa();

// CompiledIsa() when Enabled(), else Isa::kScalar.
Isa ActiveIsa();

// True when p is 64-byte aligned (nullptr counts as aligned). Matrix
// buffers satisfy this by construction (tensor/pool.cc).
bool IsAligned64(const void* p);

// Constants shared by Adam::Step and the per-table update kernels.
struct AdamArgs {
  double beta1 = 0.9;
  double beta2 = 0.999;
  double bc1 = 1.0;  // 1 - beta1^t
  double bc2 = 1.0;  // 1 - beta2^t
  double lr = 1e-3;
  double eps = 1e-8;
  double weight_decay = 0.0;
};

// Strip-level kernels. Callers hold one reference per operation (one
// atomic load) and invoke entries from inside their ParallelFor chunks;
// every pointer below may be unaligned at a strip offset, so kernels
// use unaligned vector loads internally.
struct KernelTable {
  Isa isa;

  // C = (diag(row_scale) A) B * post over a strip of `rows` output
  // rows: A is rows x k (leading dimension lda), B is k x m (ldb),
  // C is rows x m (ldc). row_scale == nullptr means no row scaling
  // (plain MatMul); row scaling rounds a(i, kk) * row_scale[i] first,
  // exactly like a stored ScaleRows intermediate. post is applied once
  // per element after its accumulation completes (skipped as an exact
  // identity when post == 1.0). Zeroes the strip itself.
  void (*gemm)(const double* a, int64_t lda, const double* b, int64_t ldb,
               double* c, int64_t ldc, int64_t rows, int64_t k, int64_t m,
               const double* row_scale, double post);

  // C rows [i0, i1) of A^T B: A is k x lda (output row i reads column i
  // of A), B is k x m (ldb), C is indexed from its base pointer (ldc).
  void (*gemm_transa)(const double* a, int64_t lda, const double* b,
                      int64_t ldb, double* c, int64_t ldc, int64_t i0,
                      int64_t i1, int64_t k, int64_t m);

  // C = A B^T * scale over a strip: A is rows x k, B is m x k, C is
  // rows x m (ldc). Each element is dot(a_i, b_j) — same lane chains as
  // `dot` — with the scale rounded in after the dot completes.
  void (*gemm_transb)(const double* a, const double* b, double* c,
                      int64_t ldc, int64_t rows, int64_t k, int64_t m,
                      double scale);

  double (*dot)(const double* x, const double* y, int64_t n);
  double (*sum)(const double* x, int64_t n);
  double (*sumsq)(const double* x, int64_t n);

  // y += x / y -= x / x *= s / out = a ⊙ b, one rounding per element.
  void (*add)(double* y, const double* x, int64_t n);
  void (*sub)(double* y, const double* x, int64_t n);
  void (*scale)(double* x, int64_t n, double s);
  void (*hadamard)(double* out, const double* a, const double* b, int64_t n);

  // One Adam step over n contiguous parameters (w, m, v updated in
  // place); bit-identical across tables (mul/add/div/sqrt only).
  void (*adam)(double* w, double* m, double* v, const double* g, int64_t n,
               const AdamArgs& args);

  // Quantized retrieval kernels (src/retrieval/): int8 dot product
  // sum(x[i] * y[i]) and squared L2 distance sum((x[i] - y[i])^2) with
  // int32 accumulation. Integer arithmetic is associative, so every
  // table — whatever its lane layout — produces the exact same value:
  // int8 kernels are bit-identical across ISAs AND thread counts by
  // construction, with no pinned-chain caveats. Callers guarantee
  // n <= kMaxInt8Dim so the i32 accumulator cannot overflow
  // (|dot| <= n * 127^2, l2 <= n * 254^2 < 2^31 at the cap).
  int32_t (*dot_i8)(const int8_t* x, const int8_t* y, int64_t n);
  int32_t (*l2_i8)(const int8_t* x, const int8_t* y, int64_t n);
};

// Largest vector length the int8 kernels accept without risking i32
// accumulator overflow: 32767 * 254^2 = 2,114,195,772 < 2^31 - 1.
inline constexpr int64_t kMaxInt8Dim = 32767;

// The table for ActiveIsa(). Cheap (atomic load + branch); callers
// still hoist it out of inner loops.
const KernelTable& Active();

}  // namespace simd
}  // namespace gradgcl

#endif  // GRADGCL_TENSOR_SIMD_H_
