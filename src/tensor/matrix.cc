#include "tensor/matrix.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>

#include "tensor/pool.h"
#include "tensor/simd.h"

namespace gradgcl {

void Matrix::Allocate(int rows, int cols) {
  GRADGCL_CHECK(rows >= 0 && cols >= 0);
  rows_ = rows;
  cols_ = cols;
  const size_t n = static_cast<size_t>(rows) * cols;
  if (n == 0) {
    data_ = nullptr;
    capacity_ = 0;
    pooled_ = false;
    return;
  }
  if (TapeScope::Active() && PoolingEnabled()) {
    data_ = MatrixPool::Instance().Acquire(n, &capacity_);
    pooled_ = true;
  } else {
    data_ = MatrixPool::HeapAlloc(n);
    capacity_ = n;
    pooled_ = false;
  }
}

void Matrix::Free() noexcept {
  if (data_ != nullptr) {
    if (pooled_) {
      MatrixPool::Instance().Release(data_, capacity_);
    } else {
      MatrixPool::HeapFree(data_);
    }
  }
  rows_ = 0;
  cols_ = 0;
  data_ = nullptr;
  capacity_ = 0;
  pooled_ = false;
}

Matrix::Matrix(int rows, int cols, double fill) {
  Allocate(rows, cols);
  Fill(fill);
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  const int r = static_cast<int>(rows.size());
  const int c = r > 0 ? static_cast<int>(rows.begin()->size()) : 0;
  Allocate(r, c);
  double* dst = data_;
  for (const auto& row : rows) {
    GRADGCL_CHECK_MSG(static_cast<int>(row.size()) == cols_,
                      "ragged initializer list");
    dst = std::copy(row.begin(), row.end(), dst);
  }
}

Matrix::Matrix(const Matrix& other) {
  Allocate(other.rows_, other.cols_);
  if (other.data_ != nullptr) {
    std::memcpy(data_, other.data_, sizeof(double) * size());
  }
}

Matrix& Matrix::operator=(const Matrix& other) {
  if (this == &other) return *this;
  const size_t n = static_cast<size_t>(other.rows_) * other.cols_;
  // Reuse the existing buffer when it is big enough: assignment into a
  // warm Matrix then costs a copy, not an allocation.
  if (n > 0 && capacity_ >= n) {
    rows_ = other.rows_;
    cols_ = other.cols_;
    std::memcpy(data_, other.data_, sizeof(double) * n);
    return *this;
  }
  Free();
  Allocate(other.rows_, other.cols_);
  if (other.data_ != nullptr) {
    std::memcpy(data_, other.data_, sizeof(double) * n);
  }
  return *this;
}

Matrix::Matrix(Matrix&& other) noexcept
    : rows_(other.rows_),
      cols_(other.cols_),
      data_(other.data_),
      capacity_(other.capacity_),
      pooled_(other.pooled_) {
  other.rows_ = 0;
  other.cols_ = 0;
  other.data_ = nullptr;
  other.capacity_ = 0;
  other.pooled_ = false;
}

Matrix& Matrix::operator=(Matrix&& other) noexcept {
  if (this == &other) return *this;
  Free();
  rows_ = other.rows_;
  cols_ = other.cols_;
  data_ = other.data_;
  capacity_ = other.capacity_;
  pooled_ = other.pooled_;
  other.rows_ = 0;
  other.cols_ = 0;
  other.data_ = nullptr;
  other.capacity_ = 0;
  other.pooled_ = false;
  return *this;
}

Matrix::~Matrix() { Free(); }

Matrix Matrix::Uninitialized(int rows, int cols) {
  Matrix m;
  m.Allocate(rows, cols);
  return m;
}

Matrix Matrix::Identity(int n) {
  Matrix m(n, n, 0.0);
  for (int i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Zeros(int rows, int cols) { return Matrix(rows, cols, 0.0); }

Matrix Matrix::Ones(int rows, int cols) { return Matrix(rows, cols, 1.0); }

Matrix Matrix::RandomNormal(int rows, int cols, Rng& rng, double mean,
                            double stddev) {
  Matrix m(rows, cols);
  for (int i = 0; i < m.size(); ++i) m.at_flat(i) = rng.Normal(mean, stddev);
  return m;
}

Matrix Matrix::RandomUniform(int rows, int cols, Rng& rng, double lo,
                             double hi) {
  Matrix m(rows, cols);
  for (int i = 0; i < m.size(); ++i) m.at_flat(i) = rng.Uniform(lo, hi);
  return m;
}

Matrix Matrix::GlorotUniform(int rows, int cols, Rng& rng) {
  const double limit = std::sqrt(6.0 / (rows + cols));
  return RandomUniform(rows, cols, rng, -limit, limit);
}

Matrix Matrix::ColumnVector(const std::vector<double>& values) {
  Matrix m = Uninitialized(static_cast<int>(values.size()), 1);
  std::copy(values.begin(), values.end(), m.data());
  return m;
}

Matrix Matrix::RowVector(const std::vector<double>& values) {
  Matrix m = Uninitialized(1, static_cast<int>(values.size()));
  std::copy(values.begin(), values.end(), m.data());
  return m;
}

Matrix Matrix::Transposed() const {
  Matrix t = Uninitialized(cols_, rows_);
  for (int i = 0; i < rows_; ++i) {
    for (int j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
  }
  return t;
}

Matrix Matrix::Row(int i) const {
  GRADGCL_CHECK(i >= 0 && i < rows_);
  Matrix r = Uninitialized(1, cols_);
  std::copy(data_ + static_cast<size_t>(i) * cols_,
            data_ + static_cast<size_t>(i + 1) * cols_, r.data());
  return r;
}

Matrix Matrix::Col(int j) const {
  GRADGCL_CHECK(j >= 0 && j < cols_);
  Matrix c = Uninitialized(rows_, 1);
  for (int i = 0; i < rows_; ++i) c(i, 0) = (*this)(i, j);
  return c;
}

void Matrix::SetRow(int i, const Matrix& row) {
  GRADGCL_CHECK(i >= 0 && i < rows_);
  GRADGCL_CHECK(row.rows() == 1 && row.cols() == cols_);
  std::copy(row.data(), row.data() + cols_,
            data_ + static_cast<size_t>(i) * cols_);
}

Matrix Matrix::RowSlice(int begin, int end) const {
  GRADGCL_CHECK(begin >= 0 && begin <= end && end <= rows_);
  Matrix out = Uninitialized(end - begin, cols_);
  std::copy(data_ + static_cast<size_t>(begin) * cols_,
            data_ + static_cast<size_t>(end) * cols_, out.data());
  return out;
}

Matrix Matrix::Gather(const std::vector<int>& indices) const {
  Matrix out = Uninitialized(static_cast<int>(indices.size()), cols_);
  for (int i = 0; i < out.rows(); ++i) {
    const int src = indices[i];
    GRADGCL_CHECK(src >= 0 && src < rows_);
    std::copy(data_ + static_cast<size_t>(src) * cols_,
              data_ + static_cast<size_t>(src + 1) * cols_,
              out.data() + static_cast<size_t>(i) * cols_);
  }
  return out;
}

void Matrix::Reshape(int rows, int cols) {
  GRADGCL_CHECK(rows >= 0 && cols >= 0 && rows * cols == size());
  rows_ = rows;
  cols_ = cols;
}

// Serial strided arithmetic routes through the active SIMD table; the
// elementwise kernels are one rounding per element, so the bits never
// depend on the SIMD mode.

Matrix& Matrix::operator+=(const Matrix& other) {
  GRADGCL_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  simd::Active().add(data_, other.data_, size());
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  GRADGCL_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  simd::Active().sub(data_, other.data_, size());
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  simd::Active().scale(data_, size(), s);
  return *this;
}

void Matrix::Fill(double value) {
  std::fill(data_, data_ + size(), value);
}

double Matrix::FrobeniusNorm() const {
  double sum = 0.0;
  for (int i = 0; i < size(); ++i) sum += data_[i] * data_[i];
  return std::sqrt(sum);
}

double Matrix::Sum() const {
  double sum = 0.0;
  for (int i = 0; i < size(); ++i) sum += data_[i];
  return sum;
}

double Matrix::Mean() const {
  GRADGCL_CHECK(size() > 0);
  return Sum() / size();
}

double Matrix::Min() const {
  GRADGCL_CHECK(size() > 0);
  return *std::min_element(data_, data_ + size());
}

double Matrix::Max() const {
  GRADGCL_CHECK(size() > 0);
  return *std::max_element(data_, data_ + size());
}

bool Matrix::AllFinite() const {
  for (int i = 0; i < size(); ++i) {
    if (!std::isfinite(data_[i])) return false;
  }
  return true;
}

std::string Matrix::ToString(int max_rows, int max_cols) const {
  std::string out = "Matrix " + std::to_string(rows_) + "x" +
                    std::to_string(cols_) + " [\n";
  const int show_rows = std::min(rows_, max_rows);
  const int show_cols = std::min(cols_, max_cols);
  char buf[64];
  for (int i = 0; i < show_rows; ++i) {
    out += "  ";
    for (int j = 0; j < show_cols; ++j) {
      std::snprintf(buf, sizeof(buf), "%10.4g ", (*this)(i, j));
      out += buf;
    }
    if (show_cols < cols_) out += "...";
    out += "\n";
  }
  if (show_rows < rows_) out += "  ...\n";
  out += "]";
  return out;
}

bool AllClose(const Matrix& a, const Matrix& b, double tol) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (int i = 0; i < a.size(); ++i) {
    if (std::abs(a.at_flat(i) - b.at_flat(i)) > tol) return false;
  }
  return true;
}

}  // namespace gradgcl
