#include "tensor/matrix.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace gradgcl {

Matrix::Matrix(int rows, int cols, double fill) : rows_(rows), cols_(cols) {
  GRADGCL_CHECK(rows >= 0 && cols >= 0);
  data_.assign(static_cast<size_t>(rows) * cols, fill);
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = static_cast<int>(rows.size());
  cols_ = rows_ > 0 ? static_cast<int>(rows.begin()->size()) : 0;
  data_.reserve(static_cast<size_t>(rows_) * cols_);
  for (const auto& row : rows) {
    GRADGCL_CHECK_MSG(static_cast<int>(row.size()) == cols_,
                      "ragged initializer list");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::Identity(int n) {
  Matrix m(n, n, 0.0);
  for (int i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Zeros(int rows, int cols) { return Matrix(rows, cols, 0.0); }

Matrix Matrix::Ones(int rows, int cols) { return Matrix(rows, cols, 1.0); }

Matrix Matrix::RandomNormal(int rows, int cols, Rng& rng, double mean,
                            double stddev) {
  Matrix m(rows, cols);
  for (int i = 0; i < m.size(); ++i) m.at_flat(i) = rng.Normal(mean, stddev);
  return m;
}

Matrix Matrix::RandomUniform(int rows, int cols, Rng& rng, double lo,
                             double hi) {
  Matrix m(rows, cols);
  for (int i = 0; i < m.size(); ++i) m.at_flat(i) = rng.Uniform(lo, hi);
  return m;
}

Matrix Matrix::GlorotUniform(int rows, int cols, Rng& rng) {
  const double limit = std::sqrt(6.0 / (rows + cols));
  return RandomUniform(rows, cols, rng, -limit, limit);
}

Matrix Matrix::ColumnVector(const std::vector<double>& values) {
  Matrix m(static_cast<int>(values.size()), 1);
  std::copy(values.begin(), values.end(), m.data());
  return m;
}

Matrix Matrix::RowVector(const std::vector<double>& values) {
  Matrix m(1, static_cast<int>(values.size()));
  std::copy(values.begin(), values.end(), m.data());
  return m;
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (int i = 0; i < rows_; ++i) {
    for (int j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
  }
  return t;
}

Matrix Matrix::Row(int i) const {
  GRADGCL_CHECK(i >= 0 && i < rows_);
  Matrix r(1, cols_);
  std::copy(data_.begin() + static_cast<size_t>(i) * cols_,
            data_.begin() + static_cast<size_t>(i + 1) * cols_, r.data());
  return r;
}

Matrix Matrix::Col(int j) const {
  GRADGCL_CHECK(j >= 0 && j < cols_);
  Matrix c(rows_, 1);
  for (int i = 0; i < rows_; ++i) c(i, 0) = (*this)(i, j);
  return c;
}

void Matrix::SetRow(int i, const Matrix& row) {
  GRADGCL_CHECK(i >= 0 && i < rows_);
  GRADGCL_CHECK(row.rows() == 1 && row.cols() == cols_);
  std::copy(row.data(), row.data() + cols_,
            data_.begin() + static_cast<size_t>(i) * cols_);
}

Matrix Matrix::RowSlice(int begin, int end) const {
  GRADGCL_CHECK(begin >= 0 && begin <= end && end <= rows_);
  Matrix out(end - begin, cols_);
  std::copy(data_.begin() + static_cast<size_t>(begin) * cols_,
            data_.begin() + static_cast<size_t>(end) * cols_, out.data());
  return out;
}

Matrix Matrix::Gather(const std::vector<int>& indices) const {
  Matrix out(static_cast<int>(indices.size()), cols_);
  for (int i = 0; i < out.rows(); ++i) {
    const int src = indices[i];
    GRADGCL_CHECK(src >= 0 && src < rows_);
    std::copy(data_.begin() + static_cast<size_t>(src) * cols_,
              data_.begin() + static_cast<size_t>(src + 1) * cols_,
              out.data() + static_cast<size_t>(i) * cols_);
  }
  return out;
}

void Matrix::Reshape(int rows, int cols) {
  GRADGCL_CHECK(rows >= 0 && cols >= 0 && rows * cols == size());
  rows_ = rows;
  cols_ = cols;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  GRADGCL_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (int i = 0; i < size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  GRADGCL_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (int i = 0; i < size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (auto& v : data_) v *= s;
  return *this;
}

void Matrix::Fill(double value) { std::fill(data_.begin(), data_.end(), value); }

double Matrix::FrobeniusNorm() const {
  double sum = 0.0;
  for (double v : data_) sum += v * v;
  return std::sqrt(sum);
}

double Matrix::Sum() const {
  double sum = 0.0;
  for (double v : data_) sum += v;
  return sum;
}

double Matrix::Mean() const {
  GRADGCL_CHECK(size() > 0);
  return Sum() / size();
}

double Matrix::Min() const {
  GRADGCL_CHECK(size() > 0);
  return *std::min_element(data_.begin(), data_.end());
}

double Matrix::Max() const {
  GRADGCL_CHECK(size() > 0);
  return *std::max_element(data_.begin(), data_.end());
}

bool Matrix::AllFinite() const {
  for (double v : data_) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

std::string Matrix::ToString(int max_rows, int max_cols) const {
  std::string out = "Matrix " + std::to_string(rows_) + "x" +
                    std::to_string(cols_) + " [\n";
  const int show_rows = std::min(rows_, max_rows);
  const int show_cols = std::min(cols_, max_cols);
  char buf[64];
  for (int i = 0; i < show_rows; ++i) {
    out += "  ";
    for (int j = 0; j < show_cols; ++j) {
      std::snprintf(buf, sizeof(buf), "%10.4g ", (*this)(i, j));
      out += buf;
    }
    if (show_cols < cols_) out += "...";
    out += "\n";
  }
  if (show_rows < rows_) out += "  ...\n";
  out += "]";
  return out;
}

bool AllClose(const Matrix& a, const Matrix& b, double tol) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (int i = 0; i < a.size(); ++i) {
    if (std::abs(a.at_flat(i) - b.at_flat(i)) > tol) return false;
  }
  return true;
}

}  // namespace gradgcl
