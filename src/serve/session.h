// Frozen-model inference session: the serving half of the encoder.
//
// An InferenceSession holds an immutable copy of a trained
// GraphEncoder's parameters (loaded from an nn/serialize snapshot or
// frozen straight out of a live encoder) and answers embedding queries
// with a tape-free forward pass: no autograd Variables, no tape nodes —
// just the raw tensor kernels the differentiable ops wrap. Because both
// paths run the *same* kernels in the same order (MatMul,
// AddRowBroadcast, SparseMatrix::Multiply, Relu, SegmentSum/Mean), the
// served embeddings are bit-identical to trainer-side
// EmbedGraphs / ForwardNodes inference (tests/serve_test.cc memcmps
// them across thread counts, SIMD modes, and pooling modes).
//
// Determinism contract (DESIGN.md §8 "Serving model"): every kernel in
// the forward computes each output row from that row's inputs alone —
// GEMM runs one accumulation chain per element, the batch operator is
// block-diagonal, and the segment readout accumulates each graph's own
// rows in ascending order. A graph's embedding therefore does not
// depend on which other graphs share its batch, which is what lets the
// micro-batcher (serve/engine.h) coalesce concurrent requests freely.
//
// Sessions are immutable after construction and safe to share across
// any number of threads. Forward intermediates are allocated on pooled
// storage (a TapeScope is opened per call), so steady-state serving
// performs no matrix-buffer heap allocations.

#ifndef GRADGCL_SERVE_SESSION_H_
#define GRADGCL_SERVE_SESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "graph/batch.h"
#include "nn/encoders.h"

namespace gradgcl::serve {

class InferenceSession {
 public:
  // Loads a frozen snapshot written by SaveModule(path, encoder) (or
  // SaveState of the encoder's StateCopy). Returns nullptr when the
  // file is missing/corrupt or the tensor shapes do not match `config`
  // — snapshots are treated as untrusted input.
  static std::unique_ptr<InferenceSession> Load(
      const EncoderConfig& config, const std::string& snapshot_path);

  // Freezes a copy of a live encoder's current parameters (no file
  // round-trip); e.g. straight out of a training loop.
  static std::unique_ptr<InferenceSession> FromEncoder(
      const GraphEncoder& encoder);

  // Freezes an explicit parameter list (Module registration order).
  // Returns nullptr on a shape mismatch against `config`.
  static std::unique_ptr<InferenceSession> FromState(
      const EncoderConfig& config, std::vector<Matrix> state);

  // Graph embeddings (batch.num_graphs x out_dim) through the
  // configured readout — bit-identical to
  // GraphEncoder::ForwardGraphs(batch).value().
  Matrix EmbedGraphs(const GraphBatch& batch) const;

  // Convenience: batches `graphs` and embeds them (one row per graph).
  Matrix EmbedGraphs(const std::vector<Graph>& graphs) const;

  // Node embeddings (batch.total_nodes x out_dim) — bit-identical to
  // GraphEncoder::ForwardNodes(batch).value(), the node-level models'
  // inference path (e.g. Grace::EmbedNodes).
  Matrix EmbedNodes(const GraphBatch& batch) const;

  const EncoderConfig& config() const { return config_; }

  // Scalar parameter count of the frozen state (logging / sanity).
  int64_t NumScalarParameters() const;

 private:
  InferenceSession(const EncoderConfig& config, std::vector<Matrix> state);

  // True when `state` matches the parameter shapes `config` implies.
  static bool StateMatchesConfig(const EncoderConfig& config,
                                 const std::vector<Matrix>& state);

  // The shared tape-free forward over an explicit propagation operator.
  Matrix ForwardNodesRaw(const SparseMatrix& propagate,
                         const Matrix& features) const;

  EncoderConfig config_;
  std::vector<Matrix> params_;  // frozen, Module registration order
};

}  // namespace gradgcl::serve

#endif  // GRADGCL_SERVE_SESSION_H_
