// Multi-model registry with RCU-style snapshot hot-swap.
//
// Production serving needs two things a bare InferenceSession does not
// give: (1) several named models living in one engine process, and
// (2) replacing a model's parameters with a newer training snapshot
// WITHOUT stopping traffic. ModelRegistry provides both, following the
// named-blob + registry pattern of caffe2's core/workspace.cc and
// core/registry.h: names map to stable handles, handles map to
// immutable published snapshots.
//
//  * A ModelSnapshot is immutable: a frozen InferenceSession plus the
//    monotonically increasing version it was published as (1-based per
//    model name). Snapshots are never mutated after Publish.
//  * Publish(name, session) atomically swaps the name's current
//    snapshot pointer (std::atomic<std::shared_ptr>, release store) —
//    the RCU write side. It never blocks readers and never waits for
//    in-flight work.
//  * ModelHandle::Acquire() is the RCU read side: one acquire-load of
//    the shared_ptr pins the snapshot for as long as the caller holds
//    it. A batch that acquired version N keeps computing on version N
//    even if version N+1 is published mid-forward; the old snapshot is
//    reclaimed by shared_ptr refcounting once the last reader drops it.
//    Zero downtime, zero torn reads, no reader-side locks beyond the
//    atomic shared_ptr operation itself.
//  * Handles have stable addresses for the registry's lifetime —
//    engines resolve a name once and then do one Acquire() per batch
//    on the hot path (no map lookups while serving).
//
// Registration (Publish / Find / ModelNames) takes a mutex and may
// allocate; it is the control plane, expected to run at model-rollout
// frequency, not request frequency.

#ifndef GRADGCL_SERVE_REGISTRY_H_
#define GRADGCL_SERVE_REGISTRY_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "serve/session.h"

namespace gradgcl::serve {

// One published model version: immutable after Publish.
struct ModelSnapshot {
  std::shared_ptr<const InferenceSession> session;
  uint64_t version = 0;     // 1-based, monotonic per model name
  std::string model_name;   // the registry key this was published under
};

// Hot-path handle to one named model. Obtained from
// ModelRegistry::Find; valid for the registry's lifetime.
class ModelHandle {
 public:
  ModelHandle(const ModelHandle&) = delete;
  ModelHandle& operator=(const ModelHandle&) = delete;

  // RCU read side: pins the current snapshot. Never returns nullptr
  // for a handle obtained from Find (a handle exists only after its
  // first Publish). Wait-free apart from the atomic shared_ptr op.
  std::shared_ptr<const ModelSnapshot> Acquire() const {
    return snapshot_.load(std::memory_order_acquire);
  }

  const std::string& name() const { return name_; }

  // Version of the currently published snapshot.
  uint64_t CurrentVersion() const { return Acquire()->version; }

 private:
  friend class ModelRegistry;
  explicit ModelHandle(std::string name) : name_(std::move(name)) {}

  const std::string name_;
  std::atomic<std::shared_ptr<const ModelSnapshot>> snapshot_;
};

class ModelRegistry {
 public:
  ModelRegistry();

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  // Publishes `session` (non-null) as the next version of `name`,
  // creating the model on first publish. Returns the new version.
  // In-flight readers holding the previous snapshot keep it alive
  // until they drop it; new Acquire() calls see the new one.
  uint64_t Publish(const std::string& name,
                   std::shared_ptr<const InferenceSession> session);

  // Stable handle for `name`, or nullptr when nothing was ever
  // published under it.
  ModelHandle* Find(const std::string& name) const;

  // Registered model names, sorted.
  std::vector<std::string> ModelNames() const;

 private:
  mutable std::mutex mu_;
  // unique_ptr values keep handle addresses stable across rehashes.
  std::map<std::string, std::unique_ptr<ModelHandle>> models_;
  obs::Counter swaps_total_;  // serve/swaps: one per Publish
};

}  // namespace gradgcl::serve

#endif  // GRADGCL_SERVE_REGISTRY_H_
