// In-process embedding inference engine: dynamic micro-batching with
// admission control over a frozen InferenceSession.
//
// Many client threads call Embed() concurrently; the engine coalesces
// pending requests into disjoint-union batches and runs one tape-free
// forward per batch on a small worker pool. Batching policy
// (DESIGN.md §8 "Serving model"):
//  * A batch launches as soon as max_batch_graphs graphs are pending,
//    or when the OLDEST pending request has waited max_wait_micros —
//    the classic size-or-deadline dynamic batcher. Requests are never
//    split across batches; a request larger than max_batch_graphs runs
//    as its own batch.
//  * Admission control: at most max_queue_graphs graphs may be queued.
//    Submissions beyond that are rejected immediately with
//    kOverloaded — callers get explicit backpressure instead of
//    unbounded queueing.
//  * Shutdown() stops admission (kShutdown), then either drains the
//    queue (default) or cancels pending requests with kShutdown
//    (cancel_pending_on_shutdown), and joins the workers. The
//    destructor calls Shutdown().
//  * Determinism: the forward kernels compute every embedding row
//    independently of its batch-mates (see serve/session.h), so
//    results are bit-identical whatever the coalescing, worker count,
//    GRADGCL_NUM_THREADS, or timing — batching is a pure throughput
//    knob, never a correctness one.
//
// Worker threads block on a condition variable between batches; the
// numeric work inside a batch fans out through the common/parallel
// substrate exactly as trainer-side inference does (top-level regions
// are serialized by the pool, so concurrent workers are safe).
//
// Observability (obs/metrics, obs/trace): every request/batch feeds
//   serve/requests, serve/rejected, serve/batches, serve/graphs
//   counters, the serve/queue_depth gauge, and the serve/latency_us +
//   serve/batch_graphs histograms (p50/p95/p99 via
//   SummarizePercentiles); each batch executes under a "serve/batch"
//   trace span. Serve metrics are always on — they are the product
//   surface of this subsystem, unlike the trainer's gated hooks.

#ifndef GRADGCL_SERVE_ENGINE_H_
#define GRADGCL_SERVE_ENGINE_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "serve/session.h"

namespace gradgcl::serve {

// Engine configuration; defaults serve small-graph traffic sensibly.
struct ServeOptions {
  // Worker threads executing batches. 0 = no workers: callers pump
  // batches with RunOneBatch() (deterministic tests, single-threaded
  // embedding pipelines).
  int num_workers = 1;
  // A batch launches once this many graphs are pending...
  int max_batch_graphs = 16;
  // ...or once the oldest pending request has waited this long.
  double max_wait_micros = 200.0;
  // Admission bound: pending graphs beyond this are rejected.
  int max_queue_graphs = 1024;
  // true: pending requests complete with kShutdown when Shutdown()
  // runs; false (default): the queue is drained before workers exit.
  bool cancel_pending_on_shutdown = false;
};

enum class ServeStatus {
  kOk = 0,
  kOverloaded,  // admission control rejected the request
  kShutdown,    // engine stopped (at submit, or cancelled while queued)
};

// Stable names for logs / bench JSON.
const char* ServeStatusName(ServeStatus status);

// Outcome of one Embed() call.
struct EmbedResult {
  ServeStatus status = ServeStatus::kOk;
  // One row per submitted graph (session out_dim columns); empty
  // unless status == kOk.
  Matrix embeddings;
};

class EmbeddingEngine {
 public:
  // `session` must outlive the engine.
  EmbeddingEngine(const InferenceSession& session, const ServeOptions& options);
  ~EmbeddingEngine();

  EmbeddingEngine(const EmbeddingEngine&) = delete;
  EmbeddingEngine& operator=(const EmbeddingEngine&) = delete;

  // Embeds `graphs` (>= 1), blocking until the result is ready or the
  // request is rejected. Safe to call from any thread except the
  // engine's own workers. Admission failures return immediately.
  EmbedResult Embed(const std::vector<Graph>& graphs);

  // Stops admission, drains or cancels the queue per the options, and
  // joins the workers. Idempotent; later Embed() calls get kShutdown.
  void Shutdown();

  // Pops and executes one pending batch inline on the calling thread,
  // ignoring the size/deadline launch policy. Returns false when the
  // queue is empty. The manual pump for num_workers == 0.
  bool RunOneBatch();

  // Pending graphs currently queued (diagnostics; racy by nature).
  int QueueDepth() const;

  const ServeOptions& options() const { return options_; }

 private:
  // One in-flight request, owned by the submitting Embed() frame.
  struct Request {
    const std::vector<Graph>* graphs = nullptr;
    Matrix result;
    ServeStatus status = ServeStatus::kOk;
    bool done = false;
    std::chrono::steady_clock::time_point arrival;
  };

  void WorkerLoop();
  // Pops whole requests up to max_batch_graphs (>= 1 request).
  std::vector<Request*> PopBatchLocked();
  // Unions a popped batch, runs the forward, scatters rows back, and
  // marks the requests done.
  void ExecuteBatch(const std::vector<Request*>& batch);
  void CancelQueueLocked();

  const InferenceSession& session_;
  const ServeOptions options_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // workers: queue state changed
  std::condition_variable done_cv_;  // clients: some batch completed
  std::deque<Request*> queue_;
  int queued_graphs_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;

  // Metric handles (registered once at construction).
  obs::Counter requests_total_;
  obs::Counter rejected_total_;
  obs::Counter batches_total_;
  obs::Counter graphs_total_;
  obs::Gauge queue_depth_;
  obs::Histogram latency_us_;
  obs::Histogram batch_graphs_;
};

}  // namespace gradgcl::serve

#endif  // GRADGCL_SERVE_ENGINE_H_
