// In-process embedding inference engine: sharded-ingress dynamic
// micro-batching with admission control, deadline-respecting work
// stealing, and RCU model-version hot-swap.
//
// Many client threads call Embed() concurrently; the engine coalesces
// pending requests into disjoint-union batches and runs one tape-free
// forward per batch on a small worker pool. Batching policy
// (DESIGN.md §8 "Serving model"):
//  * Sharded ingress: the queue is split into num_shards independent
//    (mutex + deque) shards. A submitter picks a shard by thread-local
//    round-robin (no shared submit lock), overflowing to the next
//    shard when its slice of the admission budget is full — the single
//    lock-guarded queue this replaces serialized every submission and
//    every batch launch on one mutex and flat-lined at ~183k rps past
//    4 clients.
//  * A batch launches as soon as max_batch_graphs graphs are pending
//    in a shard, or when that shard's OLDEST pending request has
//    waited max_wait_micros — the size-or-deadline contract, enforced
//    per shard. Requests are never split across batches; a request
//    larger than max_batch_graphs runs as its own batch. When a batch
//    launches short of max_batch_graphs, the worker tops it up with
//    pending same-model requests from other shards (oldest shard
//    first) — launching a request early never violates its deadline,
//    and cross-shard gathering keeps batch sizes (and therefore
//    1-core amortization) identical to the single-queue engine.
//  * Work stealing: each worker is homed on shard (worker_index %
//    num_shards) and parks on that shard's condition variable. An
//    idle worker scans the other shards and drains the one whose
//    oldest request is most overdue — but only once that shard's batch
//    is actually due (full, deadline expired, or max_wait_micros ==
//    0), so stealing never launches a filling batch early. Shards
//    with no home worker (num_shards > num_workers) are served by the
//    steal path within a bounded poll interval.
//  * Admission control: max_queue_graphs is partitioned across shards
//    (shard i gets max_queue_graphs/num_shards, remainder to low
//    indices). A submission is rejected with kOverloaded only when NO
//    shard can take it, so total queued graphs never exceed
//    max_queue_graphs and the num_shards == 1 case preserves the
//    original single-queue semantics exactly. A request larger than
//    every per-shard slice is always rejected — size requests within
//    max_queue_graphs / num_shards.
//  * Completion is signaled per request (each Request owns its own
//    mutex + condition variable): finishing a batch wakes exactly the
//    batch's owners, not every blocked client. The previous engine
//    notify_all()'d one shared condvar per batch, stampeding all
//    waiters back onto the global mutex.
//  * Model hot-swap: the engine serves ModelRegistry snapshots. Each
//    batch Acquire()s its model's current snapshot once (RCU read) and
//    runs entirely on that version — publishing a new version mid-
//    batch never mixes parameters, and every kOk EmbedResult carries
//    the model name + version that computed it. One engine serves any
//    number of registered models; a batch only coalesces requests for
//    the same model.
//  * Shutdown() stops admission (kShutdown), then either drains the
//    shards (default) or cancels pending requests with kShutdown
//    (cancel_pending_on_shutdown), and joins the workers. The
//    destructor calls Shutdown().
//  * Determinism: the forward kernels compute every embedding row
//    independently of its batch-mates (see serve/session.h), so
//    results are bit-identical whatever the sharding, coalescing,
//    stealing, worker count, GRADGCL_NUM_THREADS, or timing —
//    batching and sharding are pure throughput knobs, never
//    correctness ones.
//
// Observability (obs/metrics, obs/trace): every request/batch feeds
//   serve/requests, serve/rejected, serve/batches, serve/graphs, and
//   serve/steals counters, per-shard serve/queue_depth/shard<i>
//   gauges, and the serve/latency_us + serve/batch_graphs histograms
//   (p50/p95/p99 via SummarizePercentiles); each batch executes under
//   a "serve/batch" trace span. Serve metrics are always on — they
//   are the product surface of this subsystem, unlike the trainer's
//   gated hooks.

#ifndef GRADGCL_SERVE_ENGINE_H_
#define GRADGCL_SERVE_ENGINE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "serve/registry.h"
#include "serve/session.h"

namespace gradgcl::serve {

// Engine configuration; defaults serve small-graph traffic sensibly.
struct ServeOptions {
  // Worker threads executing batches. 0 = no workers: callers pump
  // batches with RunOneBatch() (deterministic tests, single-threaded
  // embedding pipelines).
  int num_workers = 1;
  // Ingress shards. 0 = auto: GRADGCL_SERVE_SHARDS when set, else one
  // shard per worker (max(1, num_workers)). 1 reproduces the legacy
  // single-queue engine exactly.
  int num_shards = 0;
  // A batch launches once this many graphs are pending in a shard...
  int max_batch_graphs = 16;
  // ...or once the shard's oldest pending request has waited this long.
  double max_wait_micros = 200.0;
  // Admission bound, partitioned evenly across shards; submissions no
  // shard can hold are rejected.
  int max_queue_graphs = 1024;
  // true: pending requests complete with kShutdown when Shutdown()
  // runs; false (default): the queues are drained before workers exit.
  bool cancel_pending_on_shutdown = false;
};

enum class ServeStatus {
  kOk = 0,
  kOverloaded,    // admission control rejected the request
  kShutdown,      // engine stopped (at submit, or cancelled while queued)
  kUnknownModel,  // no model published under the requested name
};

// Stable names for logs / bench JSON.
const char* ServeStatusName(ServeStatus status);

// Outcome of one Embed() call.
struct EmbedResult {
  ServeStatus status = ServeStatus::kOk;
  // One row per submitted graph (session out_dim columns); empty
  // unless status == kOk.
  Matrix embeddings;
  // Snapshot that computed the embeddings (kOk only): the registry
  // name and the 1-based version Acquire()d by this request's batch.
  std::string model_name;
  uint64_t model_version = 0;
};

class EmbeddingEngine {
 public:
  // Single-model engine over a caller-owned session (`session` must
  // outlive the engine). Internally publishes it as version 1 of model
  // "default" in a private registry — results are tagged accordingly.
  EmbeddingEngine(const InferenceSession& session, const ServeOptions& options);

  // Multi-model engine over `registry` (must outlive the engine).
  // `default_model` names the model plain Embed(graphs) serves; it
  // must already be published.
  EmbeddingEngine(const ModelRegistry& registry,
                  const std::string& default_model,
                  const ServeOptions& options);

  ~EmbeddingEngine();

  EmbeddingEngine(const EmbeddingEngine&) = delete;
  EmbeddingEngine& operator=(const EmbeddingEngine&) = delete;

  // Embeds `graphs` (>= 1) with the default model, blocking until the
  // result is ready or the request is rejected. Safe to call from any
  // thread except the engine's own workers. Admission failures return
  // immediately.
  EmbedResult Embed(const std::vector<Graph>& graphs);

  // Same, against a named registry model; kUnknownModel when nothing
  // was published under `model`.
  EmbedResult Embed(const std::string& model,
                    const std::vector<Graph>& graphs);

  // Stops admission, drains or cancels the shards per the options, and
  // joins the workers. Idempotent; later Embed() calls get kShutdown.
  void Shutdown();

  // Pops and executes one pending batch inline on the calling thread
  // (oldest-arrival shard first, with cross-shard top-up), ignoring
  // the size/deadline launch policy. Returns false when every shard is
  // empty. The manual pump for num_workers == 0.
  bool RunOneBatch();

  // Pending graphs currently queued across all shards (diagnostics;
  // racy by nature).
  int QueueDepth() const;

  const ServeOptions& options() const { return options_; }
  // Resolved shard count (options().num_shards == 0 resolves at
  // construction).
  int num_shards() const { return static_cast<int>(shards_.size()); }

 private:
  using Clock = std::chrono::steady_clock;

  // One in-flight request, owned by the submitting Embed() frame.
  // Completion is signaled through the request's own mutex + condvar
  // so only its owner wakes.
  struct Request {
    const std::vector<Graph>* graphs = nullptr;
    ModelHandle* model = nullptr;
    Matrix result;
    ServeStatus status = ServeStatus::kOk;
    uint64_t version = 0;
    Clock::time_point arrival;
    std::mutex done_mu;
    std::condition_variable done_cv;
    bool done = false;
  };

  // One ingress shard: an independent slice of the queue + admission
  // budget with its own lock, so submitters and workers on different
  // shards never contend.
  struct Shard {
    mutable std::mutex mu;
    std::condition_variable work_cv;  // workers homed here
    std::deque<Request*> queue;
    int queued_graphs = 0;  // authoritative, guarded by mu
    int capacity = 0;       // this shard's slice of max_queue_graphs
    // Lock-free mirror of queued_graphs so steal scans skip empty
    // shards without taking their locks.
    std::atomic<int> depth{0};
    // Home workers currently blocked on work_cv (seq_cst, paired with
    // work_epoch_): submitters skip the wake lock + notify entirely
    // while the worker is busy executing — it will rescan before it
    // parks.
    std::atomic<int> parked{0};
    // Collapses concurrent cross-shard wakeups into one notify (one
    // futex syscall instead of one per submitter): the first submitter
    // to latch it notifies, the rest skip. The home worker clears it
    // at every park entry, under its home lock.
    std::atomic<bool> wake_pending{false};
    obs::Gauge depth_gauge;
  };

  EmbeddingEngine(std::unique_ptr<ModelRegistry> own_registry,
                  const ModelRegistry* registry,
                  const std::string& default_model,
                  const ServeOptions& options);

  EmbedResult EmbedOn(ModelHandle* model, const std::vector<Graph>& graphs);

  void WorkerLoop(int home_index);
  // True when `s` has a batch that should launch now: full, past the
  // oldest request's deadline, launch-when-free (max_wait_micros ==
  // 0), or draining at shutdown.
  bool LaunchDueLocked(const Shard& s, Clock::time_point now) const;
  // Pops whole same-model requests up to max_batch_graphs (>= 1
  // request) off the front of `s`.
  std::vector<Request*> PopBatchLocked(Shard& s, int* graphs_in_batch);
  // Fills a short batch with pending same-model requests from other
  // shards, oldest shard front first (early launch, never splits).
  void TopUpBatch(std::vector<Request*>* batch, int* graphs_in_batch);
  // Scans for the most-overdue due shard and drains one batch from it.
  // Returns true when a batch executed. Counts serve/steals when the
  // drained shard is not `thief_home`.
  bool TryStealBatch(int thief_home);
  // Unions a popped batch, acquires the model snapshot, runs the
  // forward, scatters rows back, and signals the requests done.
  void ExecuteBatch(const std::vector<Request*>& batch);
  void CancelShardLocked(Shard& s);
  static void SignalDone(Request* r, ServeStatus status, Matrix result,
                         uint64_t version);

  const ServeOptions options_;
  // Non-null only for the legacy single-session constructor.
  std::unique_ptr<ModelRegistry> own_registry_;
  const ModelRegistry* registry_;  // own_registry_.get() or caller's
  ModelHandle* default_model_;
  const Clock::duration wait_dur_;   // max_wait_micros as a duration
  const Clock::duration steal_poll_; // idle-worker rescan interval

  std::vector<std::unique_ptr<Shard>> shards_;
  // Bumped on every cross-shard wakeup (a submission to a shard with
  // no home worker). A worker re-checks it between its steal scan and
  // parking, so a submission landing in that window is never slept
  // through — without it, work on a workerless shard could wait a full
  // steal_poll_ interval.
  std::atomic<uint64_t> work_epoch_{0};
  std::atomic<bool> stopping_{false};
  std::vector<std::thread> workers_;

  // Metric handles (registered once at construction).
  obs::Counter requests_total_;
  obs::Counter rejected_total_;
  obs::Counter batches_total_;
  obs::Counter graphs_total_;
  obs::Counter steals_total_;
  obs::Histogram latency_us_;
  obs::Histogram batch_graphs_;
};

}  // namespace gradgcl::serve

#endif  // GRADGCL_SERVE_ENGINE_H_
